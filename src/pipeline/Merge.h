//===- pipeline/Merge.h - Deterministic artifact aggregation ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges profile artifacts from repeated runs of one configuration
/// into a single aggregate artifact, the way MRC-construction systems
/// pool sampled profiles across runs (Byrne, "A Survey of Miss-Ratio
/// Curve Construction Techniques"). Histograms and counters sum; the
/// derived statistics (contribution factor, median/mean RCD, miss
/// contribution, classifier verdict) are recomputed from the pooled
/// histograms, which makes the merge exactly sample-count-weighted:
/// merging N identical artifacts reproduces the input's derived values
/// with N-times the evidence. Merging is associative, commutative up
/// to provenance, and deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_MERGE_H
#define CCPROF_PIPELINE_MERGE_H

#include "pipeline/ProfileArtifact.h"

#include <span>
#include <string>

namespace ccprof {

/// Result of a merge attempt.
struct MergeResult {
  ProfileArtifact Merged;
  /// Empty on success; otherwise why the inputs cannot be aggregated
  /// (e.g. different workloads or cache geometries).
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// True when \p A and \p B profile the same (workload, variant, level,
/// mapping, sampler, period, threshold, geometry) — i.e. they differ
/// only in repeat index / seed and may be aggregated.
bool mergeCompatible(const ProfileArtifact &A, const ProfileArtifact &B,
                     std::string *Why = nullptr);

/// Merges \p Artifacts (at least one) into a single artifact.
MergeResult mergeArtifacts(std::span<const ProfileArtifact> Artifacts);

} // namespace ccprof

#endif // CCPROF_PIPELINE_MERGE_H
