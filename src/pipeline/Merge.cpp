//===- pipeline/Merge.cpp - Deterministic artifact aggregation -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/Merge.h"

#include <algorithm>
#include <map>

using namespace ccprof;

namespace {

/// The aggregation identity of a job: everything but the repeat index
/// and seed. Artifacts agreeing on this tuple are repeated draws of
/// one experiment and may be pooled.
auto configKey(const ProfileArtifact &A) {
  const JobSpec &J = A.Provenance.Job;
  return std::make_tuple(J.WorkloadName, static_cast<int>(J.Variant),
                         J.Exact, static_cast<int>(J.Sampler), J.MeanPeriod,
                         J.RcdThreshold, static_cast<int>(J.Level),
                         static_cast<int>(J.Mapping), A.Result.NumSets,
                         A.Result.RcdThreshold);
}

} // namespace

bool ccprof::mergeCompatible(const ProfileArtifact &A,
                             const ProfileArtifact &B, std::string *Why) {
  if (configKey(A) == configKey(B))
    return true;
  if (Why) {
    *Why = "artifacts profile different configurations (" +
           A.Provenance.Job.key() + " vs " + B.Provenance.Job.key() + ")";
  }
  return false;
}

MergeResult ccprof::mergeArtifacts(std::span<const ProfileArtifact> Artifacts) {
  MergeResult Out;
  if (Artifacts.empty()) {
    Out.Error = "nothing to merge";
    return Out;
  }
  for (size_t I = 1; I < Artifacts.size(); ++I)
    if (!mergeCompatible(Artifacts[0], Artifacts[I], &Out.Error))
      return Out;

  ProfileArtifact &Merged = Out.Merged;
  Merged.Provenance = Artifacts[0].Provenance;
  Merged.Provenance.MergedRuns = 0;
  for (const ProfileArtifact &A : Artifacts)
    Merged.Provenance.MergedRuns += A.Provenance.MergedRuns;

  ProfileResult &Result = Merged.Result;
  Result.NumSets = Artifacts[0].Result.NumSets;
  Result.RcdThreshold = Artifacts[0].Result.RcdThreshold;
  for (const ProfileArtifact &A : Artifacts) {
    Result.TraceRefs += A.Result.TraceRefs;
    Result.L1Misses += A.Result.L1Misses;
    Result.Samples += A.Result.Samples;
  }
  Result.L1MissRatio =
      Result.TraceRefs == 0
          ? 0.0
          : static_cast<double>(Result.L1Misses) /
                static_cast<double>(Result.TraceRefs);

  // Pool the loop tables by location, preserving first-appearance
  // order so that merging one artifact is the identity.
  std::map<std::string, size_t> LoopIndex;
  for (const ProfileArtifact &A : Artifacts) {
    for (const LoopConflictReport &Loop : A.Result.Loops) {
      auto [It, Inserted] =
          LoopIndex.try_emplace(Loop.Location, Result.Loops.size());
      if (Inserted) {
        LoopConflictReport Fresh;
        Fresh.Location = Loop.Location;
        Fresh.Loop = Loop.Loop;
        Fresh.PerSetMisses.assign(Result.NumSets, 0);
        Result.Loops.push_back(std::move(Fresh));
      }
      LoopConflictReport &Acc = Result.Loops[It->second];
      Acc.Samples += Loop.Samples;
      Acc.Rcd.merge(Loop.Rcd);
      Acc.Periods.RunLengths.merge(Loop.Periods.RunLengths);
      for (size_t S = 0; S < Loop.PerSetMisses.size() &&
                         S < Acc.PerSetMisses.size();
           ++S)
        Acc.PerSetMisses[S] += Loop.PerSetMisses[S];
      for (const DataStructureReport &Data : Loop.DataStructures) {
        auto Existing = std::find_if(
            Acc.DataStructures.begin(), Acc.DataStructures.end(),
            [&](const DataStructureReport &D) { return D.Name == Data.Name; });
        if (Existing == Acc.DataStructures.end())
          Acc.DataStructures.push_back({Data.Name, Data.Samples, 0.0});
        else
          Existing->Samples += Data.Samples;
      }
    }
  }

  // Recompute every derived statistic from the pooled evidence — this
  // is what makes the merge sample-count-weighted.
  ConflictClassifier Classifier =
      ConflictClassifier::pretrained(Result.RcdThreshold);
  const double SignificanceThreshold = ProfileOptions{}.SignificanceThreshold;
  for (LoopConflictReport &Loop : Result.Loops) {
    Loop.MissContribution =
        Result.Samples == 0
            ? 0.0
            : static_cast<double>(Loop.Samples) /
                  static_cast<double>(Result.Samples);
    Loop.SetsUtilized = static_cast<uint64_t>(
        std::count_if(Loop.PerSetMisses.begin(), Loop.PerSetMisses.end(),
                      [](uint64_t M) { return M > 0; }));
    Loop.ContributionFactor =
        Loop.Samples == 0
            ? 0.0
            : static_cast<double>(Loop.Rcd.countBelow(Result.RcdThreshold)) /
                  static_cast<double>(Loop.Samples);
    Loop.MeanRcd = Loop.Rcd.meanKey();
    Loop.MedianRcd = Loop.Rcd.empty() ? 0 : Loop.Rcd.quantile(0.5);
    ConflictClassifier::Decision Decision =
        Classifier.classify(Loop.ContributionFactor);
    Loop.ConflictProbability = Decision.Probability;
    Loop.Significant = Loop.MissContribution >= SignificanceThreshold;
    Loop.ConflictPredicted = Decision.Conflict && Loop.Significant;
    for (DataStructureReport &Data : Loop.DataStructures)
      Data.Share = Loop.Samples == 0
                       ? 0.0
                       : static_cast<double>(Data.Samples) /
                             static_cast<double>(Loop.Samples);
    std::stable_sort(Loop.DataStructures.begin(), Loop.DataStructures.end(),
                     [](const DataStructureReport &A,
                        const DataStructureReport &B) {
                       return A.Samples > B.Samples;
                     });
  }
  std::stable_sort(Result.Loops.begin(), Result.Loops.end(),
                   [](const LoopConflictReport &A,
                      const LoopConflictReport &B) {
                     return A.Samples > B.Samples;
                   });
  return Out;
}
