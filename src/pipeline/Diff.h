//===- pipeline/Diff.h - Structural profile comparison ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural diff of two profile artifacts: pairs loops by source
/// location and flags the ones whose conflict verdict flipped or whose
/// contribution factor drifted beyond a tolerance. This is the
/// regression-detection primitive — profile a workload before and
/// after a code change (or across two configurations) and the diff
/// says which loops got a conflict they did not have.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_DIFF_H
#define CCPROF_PIPELINE_DIFF_H

#include "pipeline/ProfileArtifact.h"

#include <string>
#include <vector>

namespace ccprof {

/// Knobs of a diff.
struct DiffOptions {
  /// |cf_b - cf_a| above this flags the loop as drifted.
  double CfTolerance = 0.05;
};

/// How one paired loop changed from A to B.
enum class LoopChange {
  Unchanged,      ///< Same verdict, cf within tolerance.
  CfDrift,        ///< Same verdict, cf moved beyond tolerance.
  BecameConflict, ///< clean in A, conflict in B — a regression.
  BecameClean,    ///< conflict in A, clean in B — an improvement.
  OnlyInA,        ///< Loop absent from B.
  OnlyInB,        ///< Loop absent from A.
};

/// One row of the diff.
struct LoopDiff {
  std::string Location;
  LoopChange Change = LoopChange::Unchanged;
  double CfA = 0.0, CfB = 0.0;
  double MissContributionA = 0.0, MissContributionB = 0.0;
  bool ConflictA = false, ConflictB = false;
};

/// Full diff of two artifacts.
struct DiffResult {
  std::vector<LoopDiff> Loops; ///< Changed loops first, then unchanged.
  /// Loops that became conflicts — the count a CI gate cares about.
  size_t Regressions = 0;
  /// Loops whose verdict or cf changed, plus adds/removes.
  size_t Changed = 0;
};

/// Diffs \p B against baseline \p A. Swapping the inputs mirrors the
/// result: directions flip (BecameConflict <-> BecameClean,
/// OnlyInA <-> OnlyInB) and Changed is identical.
DiffResult diffArtifacts(const ProfileArtifact &A, const ProfileArtifact &B,
                         const DiffOptions &Options = {});

/// Human-readable rendering of \p Diff (support/Table).
std::string renderDiff(const DiffResult &Diff, const std::string &NameA,
                       const std::string &NameB);

/// Short machine-stable identifier of \p Change, e.g. "became_conflict"
/// — shared by the JSON rendering and service alert records.
const char *loopChangeId(LoopChange Change);

/// Machine-readable rendering of \p Diff as a JSON object: summary
/// counts plus one entry per paired loop. The structured twin of
/// renderDiff, consumed by `ccprof diff --json`, service alerting,
/// and CI gates.
std::string renderDiffJson(const DiffResult &Diff, const std::string &NameA,
                           const std::string &NameB);

} // namespace ccprof

#endif // CCPROF_PIPELINE_DIFF_H
