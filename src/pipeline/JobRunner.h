//===- pipeline/JobRunner.h - Parallel batch-profiling executor -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a list of profiling jobs across a fixed-size worker thread
/// pool. Two execution strategies share one outcome format:
///
///  * runJobs — the naive path: every job builds its own workload,
///    trace, and miss stream from scratch. Jobs are fully independent,
///    so any thread count produces identical output.
///
///  * runJobsShared — the single-pass multi-configuration engine: jobs
///    are grouped by (workload, variant), each group's trace is
///    generated and canonicalized once, the miss-event stream is
///    computed once per distinct cache configuration (level, geometry,
///    replacement policy, page mapping) through a bounded
///    MissStreamCache, and all sampling-period / sampler / threshold /
///    repeat variants fan out over the cached stream. Output is
///    byte-identical to runJobs: the profiler runs the exact same
///    collect-then-sample phases, just without recomputing the collect
///    phase per job.
///
/// Results land in the slot of their job index, so the output vector is
/// identical no matter how many threads ran or how the scheduler
/// interleaved them. Address canonicalization (trace/Canonicalize.h)
/// removes the remaining process-state dependence, making `--jobs N`
/// output byte-identical to sequential execution for fixed seeds.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_JOBRUNNER_H
#define CCPROF_PIPELINE_JOBRUNNER_H

#include "pipeline/MissStreamCache.h"
#include "pipeline/ProfileArtifact.h"
#include "sim/MrcEngine.h"
#include "sim/PartitionCache.h"

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace ccprof {

/// Result slot of one job: the artifact, or an error description.
struct JobOutcome {
  JobSpec Job;
  ProfileArtifact Artifact;
  /// Empty on success; e.g. "unknown workload 'Foo'" otherwise.
  std::string Error;
  /// True when static screening proved the job's configuration
  /// conflict-free and the simulation was skipped: no artifact was
  /// produced, and Error stays empty.
  bool Skipped = false;
  /// True when the job was answered by the group's single-pass
  /// miss-ratio curve (BatchExecOptions::Mrc) instead of a simulation:
  /// no artifact was produced — the prediction lands in the group's
  /// MrcGroupCurve — and Error stays empty.
  bool MrcPredicted = false;

  bool ok() const { return Error.empty(); }
};

/// Executes one job in the calling thread: run the workload, record
/// its trace, canonicalize addresses, profile, wrap as an artifact.
/// \p TimestampNs stamps the artifact's provenance (0 = deterministic).
JobOutcome runJob(const JobSpec &Job, uint64_t TimestampNs = 0);

/// Runs every job of \p Jobs on \p NumThreads workers (1 = fully
/// sequential in the calling thread). Outcomes are returned in job
/// order regardless of completion order. \p OnJobDone, when set, is
/// invoked after each job completes — serialized under a mutex, so it
/// may write to shared streams — with the finished outcome and the
/// number of jobs completed so far.
std::vector<JobOutcome>
runJobs(std::span<const JobSpec> Jobs, unsigned NumThreads,
        uint64_t TimestampNs = 0,
        const std::function<void(const JobOutcome &, size_t)> &OnJobDone =
            nullptr);

/// Accounting of one shared-trace batch run.
struct SharedBatchStats {
  /// Distinct (workload, variant) groups, i.e. traces generated. The
  /// naive path generates one trace per *job* instead.
  uint64_t TraceGroups = 0;
  /// Miss-stream cache accounting: Misses counts full trace
  /// simulations, Hits counts simulations avoided.
  MissStreamCacheStats Streams;
  /// Windowed shard caches recycled instead of reallocated.
  uint64_t ShardCacheReuses = 0;
  /// Jobs skipped by static screening (BatchExecOptions::StaticScreen).
  uint64_t StaticSkipped = 0;
  /// Groups every member of which was screened out — no trace was
  /// generated at all (the screening payoff).
  uint64_t StaticScreenedGroups = 0;
  /// Groups the screen analyzed but refused to skip: a conflict was
  /// predicted at some swept geometry, the model was incomplete, the
  /// reuse estimator declined, or the predicted curve failed the
  /// stability guard near a swept geometry.
  uint64_t StaticScreenRefusals = 0;
  /// Simulations that took the set-sharded path (ShardExecStats).
  uint64_t ShardedSims = 0;
  /// Sharded simulations that ran with zero helper threads — an
  /// explicit shard count honored on an exhausted budget serializes
  /// every shard replay on one thread. Surfaced so sweeps can tell
  /// "sharded but unhelped" from real parallel runs.
  uint64_t UnhelpedShardedSims = 0;
  /// Groups that ran a single-pass MRC (BatchExecOptions::Mrc).
  uint64_t MrcGroups = 0;
  /// L1 jobs answered by a group curve instead of a simulation.
  uint64_t MrcRoutedJobs = 0;
  /// Shard partitions routed from scratch (route-once misses).
  uint64_t PartitionBuilds = 0;
  /// Shard partitions served from the route-once cache: configurations
  /// that shared an index geometry and skipped their routing pass.
  uint64_t PartitionReuses = 0;
};

/// One (geometry, predicted miss ratio) sample of a group's curve.
struct MrcPoint {
  CacheGeometry Geometry = CacheGeometry(32 * 1024, 64, 8);
  double MissRatio = 0.0;
  /// True when the curve resolved this point exactly (fully-associative
  /// or per-set path) rather than via the binomial correction.
  bool Exact = false;
};

/// The single-pass MRC of one (workload, variant) group of a --mrc
/// batch run: predicted miss ratios at every distinct L1 geometry of
/// the group's routed jobs plus every requested sweep point.
struct MrcGroupCurve {
  std::string WorkloadName;
  WorkloadVariant Variant = WorkloadVariant::Original;
  uint64_t TraceRefs = 0;
  bool Sampled = false;
  /// Final SHARDS rate (1.0 for exact passes).
  double FinalRate = 1.0;
  /// L1 jobs of the group answered by this curve.
  uint64_t RoutedJobs = 0;
  /// Ascending by (sizeBytes, lineBytes, associativity), deduplicated.
  std::vector<MrcPoint> Points;
};

/// Execution shape of a shared-trace batch run. Workers carry
/// job-level parallelism; SimThreads is the *total* thread budget the
/// run may occupy at once — batch workers and set-shard helpers draw
/// from the same ThreadBudget, so nested parallelism can never
/// oversubscribe the machine. A job's simulation fans out across set
/// shards only while idle budget exists (i.e. when pending jobs no
/// longer cover the cores — typically the tail of a run).
struct BatchExecOptions {
  /// Batch worker threads (clamped to the budget and the group count).
  unsigned Workers = 1;
  /// Total simulation thread budget; 0 = hardware_concurrency.
  unsigned SimThreads = 0;
  /// Set shards per simulation; 0 = one shard per granted thread.
  unsigned Shards = 0;
  /// Traces shorter than this never shard (partition overhead).
  uint64_t MinRefsToShard = SimContext::DefaultMinRefsToShard;
  /// Run the static conflict analyzer over each group's access model
  /// first and skip the simulation of the group's L1 jobs when the
  /// sweep is statically proven clean. The screen is sweep-wide and
  /// all-or-nothing: the analyzer runs at *every distinct L1 geometry*
  /// the group's jobs request, each must analyze conflict-free
  /// (complete model, no victim sets), the analytic reuse profile must
  /// be available, and the predicted miss ratio must be stable around
  /// every swept geometry (ScreenStabilityMargin) — a curve sitting on
  /// a capacity cliff could flip a nearby verdict, so the screen
  /// refuses to skip it. Skipped jobs finish with JobOutcome::Skipped
  /// set and no artifact; jobs that do run produce byte-identical
  /// artifacts to an unscreened run. Groups whose members all skip
  /// never generate a trace at all — the screening payoff.
  bool StaticScreen = false;
  /// Stability guard of the sweep screen: the predicted program miss
  /// ratio may move at most this much between each swept geometry and
  /// the same geometry with 10% more sets. The default matches the
  /// reuse estimator's documented 0.05 approximation bound (DESIGN.md
  /// §11): a curve flatter than the modeling error cannot hide a
  /// geometry-sensitive conflict.
  double ScreenStabilityMargin = 0.05;
  /// Route each group's L1 LRU jobs through one single-pass miss-ratio
  /// curve (MrcEngine) instead of per-configuration simulations. Routed
  /// jobs finish with JobOutcome::MrcPredicted and no artifact; the
  /// predictions are collected per group into MrcGroupCurve (the MrcOut
  /// parameter of runJobsShared). Non-LRU and L2 jobs — and everything
  /// when this is false, the default — simulate exactly as before:
  /// exact simulation remains the default and the oracle.
  bool Mrc = false;
  /// Pass configuration when Mrc is set. The reference geometry is
  /// overridden per group with the group's own L1 geometry, so the
  /// routed jobs' points sit on the exact per-set path.
  MrcOptions MrcConfig;
  /// Extra geometries every group curve is sampled at, beyond the
  /// distinct L1 geometries of the routed jobs themselves.
  std::vector<CacheGeometry> MrcSweep;
  /// Route once, replay many: retain each group's shard-partition
  /// arenas in a PartitionCache so every configuration sharing an
  /// index geometry (set count x line size) — ways/policy/store
  /// variants, MRC passes at the reference geometry — routes the trace
  /// exactly once. Artifacts are byte-identical either way; this only
  /// skips redundant routing work.
  bool PartitionReuse = true;
  /// Byte budget of the partition cache (most-recent entry always
  /// kept; see PartitionCache).
  size_t PartitionCacheBytes = PartitionCache::DefaultMaxBytes;
};

/// The miss-stream cache key of \p Job: every field the simulated
/// stream depends on — workload, variant, level, geometries, policy,
/// store handling, and (for physically-indexed levels) the page
/// mapping — and nothing it does not, so period/threshold/seed/repeat
/// variants all map to the same key.
std::string missStreamKeyOf(const JobSpec &Job);

/// Runs \p Jobs with shared-trace reuse (see file comment): workers
/// claim whole (workload, variant) groups, so job-level parallelism
/// still scales across workloads while each group's trace is built
/// exactly once, and each group's miss-stream simulations additionally
/// fan out across set shards whenever the shared thread budget has
/// idle slots. \p StreamCache bounds how many distinct miss streams
/// stay resident; pass nullptr to use a run-local cache of default
/// capacity. Outcomes are byte-identical to runJobs on the same job
/// list at every Workers / SimThreads / Shards combination.
/// \p MrcOut receives one MrcGroupCurve per group that ran an MRC pass
/// (group order, hence deterministic); ignored unless Exec.Mrc.
std::vector<JobOutcome> runJobsShared(
    std::span<const JobSpec> Jobs, const BatchExecOptions &Exec,
    uint64_t TimestampNs = 0,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone = nullptr,
    MissStreamCache *StreamCache = nullptr, SharedBatchStats *StatsOut = nullptr,
    std::vector<MrcGroupCurve> *MrcOut = nullptr);

/// Back-compat shape: \p NumThreads batch workers with a thread budget
/// equal to NumThreads (shard helpers only appear when workers idle).
std::vector<JobOutcome> runJobsShared(
    std::span<const JobSpec> Jobs, unsigned NumThreads,
    uint64_t TimestampNs = 0,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone = nullptr,
    MissStreamCache *StreamCache = nullptr, SharedBatchStats *StatsOut = nullptr);

} // namespace ccprof

#endif // CCPROF_PIPELINE_JOBRUNNER_H
