//===- pipeline/JobRunner.h - Parallel batch-profiling executor -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a list of profiling jobs across a fixed-size worker thread
/// pool. Jobs are independent by construction — each worker builds its
/// own workload, trace, and profiler — and results land in the slot of
/// their job index, so the output vector is identical no matter how
/// many threads ran or how the scheduler interleaved them. Address
/// canonicalization (trace/Canonicalize.h) removes the remaining
/// process-state dependence, making `--jobs N` output byte-identical
/// to sequential execution for fixed seeds.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_JOBRUNNER_H
#define CCPROF_PIPELINE_JOBRUNNER_H

#include "pipeline/ProfileArtifact.h"

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace ccprof {

/// Result slot of one job: the artifact, or an error description.
struct JobOutcome {
  JobSpec Job;
  ProfileArtifact Artifact;
  /// Empty on success; e.g. "unknown workload 'Foo'" otherwise.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Executes one job in the calling thread: run the workload, record
/// its trace, canonicalize addresses, profile, wrap as an artifact.
/// \p TimestampNs stamps the artifact's provenance (0 = deterministic).
JobOutcome runJob(const JobSpec &Job, uint64_t TimestampNs = 0);

/// Runs every job of \p Jobs on \p NumThreads workers (1 = fully
/// sequential in the calling thread). Outcomes are returned in job
/// order regardless of completion order. \p OnJobDone, when set, is
/// invoked after each job completes — serialized under a mutex, so it
/// may write to shared streams — with the finished outcome and the
/// number of jobs completed so far.
std::vector<JobOutcome>
runJobs(std::span<const JobSpec> Jobs, unsigned NumThreads,
        uint64_t TimestampNs = 0,
        const std::function<void(const JobOutcome &, size_t)> &OnJobDone =
            nullptr);

} // namespace ccprof

#endif // CCPROF_PIPELINE_JOBRUNNER_H
