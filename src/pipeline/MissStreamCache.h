//===- pipeline/MissStreamCache.h - Shared miss-stream cache ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LRU-bounded, thread-safe in-memory cache of miss-event streams, the
/// centerpiece of the batch pipeline's single-pass multi-configuration
/// engine. Reference-by-reference cache simulation is by far the most
/// expensive phase of a profiling job, yet its output — the stream of
/// miss events — depends only on (workload, variant, cache level,
/// geometry, replacement policy, page mapping), never on the sampling
/// period, sampler kind, seed, or RCD threshold. A sweep over sampling
/// periods therefore needs the stream exactly once; every further job
/// of the sweep replays the cached stream through its own sampler.
///
/// Streams are handed out as shared_ptr-to-const so an entry evicted
/// under memory pressure stays alive for jobs still profiling against
/// it. Per-entry hit counters (kept even for evicted entries) feed the
/// `ccprof batch` statistics output.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_MISSSTREAMCACHE_H
#define CCPROF_PIPELINE_MISSSTREAMCACHE_H

#include "pmu/PebsEvent.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Accounting of one cache entry (kept after eviction).
struct MissStreamCacheEntryStats {
  std::string Key;
  uint64_t Hits = 0;   ///< Lookups served from this entry.
  uint64_t Events = 0; ///< Stream length (miss events held).
  bool Resident = true;
};

/// Snapshot of the whole cache's accounting.
struct MissStreamCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0; ///< Lookups that had to compute the stream.
  uint64_t Evictions = 0;
  /// One row per key ever inserted, in first-insertion order.
  std::vector<MissStreamCacheEntryStats> Entries;
};

/// Keyed, bounded cache of immutable miss-event streams.
class MissStreamCache {
public:
  using Stream = std::vector<MissEvent>;
  using StreamPtr = std::shared_ptr<const Stream>;

  /// \p MaxEntries bounds resident streams; the least-recently-used
  /// entry is dropped when a new stream would exceed the bound.
  explicit MissStreamCache(size_t MaxEntries = DefaultMaxEntries);

  static constexpr size_t DefaultMaxEntries = 16;

  /// \returns the stream under \p Key, invoking \p Compute (outside the
  /// lock) to produce it on a miss. Concurrent callers with distinct
  /// keys never serialize on each other's compute; racing callers with
  /// the same key may compute twice, but both observe the same stored
  /// stream afterwards, and only the caller whose stream is stored
  /// counts as a miss — the loser's lookup is served from the cache
  /// and is accounted as a hit (globally and per entry).
  StreamPtr getOrCompute(const std::string &Key,
                         const std::function<Stream()> &Compute);

  /// Resident entry count.
  size_t size() const;

  /// Accounting snapshot, including evicted entries.
  MissStreamCacheStats stats() const;

  /// Drops every resident entry (accounting is preserved).
  void clear();

private:
  struct Entry {
    StreamPtr Data;
    std::list<std::string>::iterator RecencyIt;
    size_t AccountIndex; ///< Index into Accounts.
  };

  /// Must be called with Mutex held.
  void evictLeastRecentLocked();

  mutable std::mutex Mutex;
  size_t MaxEntries;
  std::list<std::string> Recency; ///< Front = most recently used.
  std::unordered_map<std::string, Entry> Entries;
  /// Lifetime accounting, one row per key ever inserted.
  std::vector<MissStreamCacheEntryStats> Accounts;
  std::unordered_map<std::string, size_t> AccountIndexOf;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace ccprof

#endif // CCPROF_PIPELINE_MISSSTREAMCACHE_H
