//===- pipeline/JobSpec.h - Batch-profiling job matrix ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One profiling job of the batch pipeline: a fully resolved
/// (workload, variant, sampling config, cache level, page mapping,
/// repeat) tuple. A BatchMatrix is the cross product the paper's
/// evaluation sweeps (Tables 2-4 run six applications under several
/// sampling periods and cache levels); expandMatrix() flattens it into
/// the deterministic job list the JobRunner executes.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_JOBSPEC_H
#define CCPROF_PIPELINE_JOBSPEC_H

#include "core/Profiler.h"
#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace ccprof {

/// One fully resolved profiling job.
struct JobSpec {
  std::string WorkloadName;
  WorkloadVariant Variant = WorkloadVariant::Original;
  bool Exact = false;
  SamplingKind Sampler = SamplingKind::Bursty;
  uint64_t MeanPeriod = 1212;
  uint64_t RcdThreshold = ConflictClassifier::DefaultRcdThreshold;
  ProfileLevel Level = ProfileLevel::L1;
  PagePolicy Mapping = PagePolicy::FirstTouch;
  /// Repeat index within the matrix; repeat R perturbs the sampling
  /// seed deterministically so repeated runs are independent draws.
  uint32_t Repeat = 0;
  /// Base sampling seed; the effective seed is Seed + Repeat.
  uint64_t Seed = SamplingConfig{}.Seed;

  /// The ProfileOptions this job profiles under.
  ProfileOptions toProfileOptions() const;

  /// Filename-safe identity, e.g. "NW-orig-l1-firsttouch-p1212-r0".
  /// Distinct jobs have distinct keys: non-alphanumeric name characters
  /// sanitize to '_', and when that is lossy a short hash of the raw
  /// name is appended so "MKL-FFT" and "MKL_FFT" cannot collide onto
  /// one artifact path.
  std::string key() const;
};

/// The cross product a `ccprof batch` invocation describes.
struct BatchMatrix {
  std::vector<std::string> Workloads;
  std::vector<WorkloadVariant> Variants = {WorkloadVariant::Original};
  std::vector<uint64_t> Periods = {1212};
  std::vector<ProfileLevel> Levels = {ProfileLevel::L1};
  std::vector<PagePolicy> Mappings = {PagePolicy::FirstTouch};
  SamplingKind Sampler = SamplingKind::Bursty;
  uint64_t RcdThreshold = ConflictClassifier::DefaultRcdThreshold;
  uint32_t Repeats = 1;
  uint64_t Seed = SamplingConfig{}.Seed;
  bool Exact = false;
};

/// Flattens \p Matrix into its job list, in deterministic order
/// (workload-major, repeat-minor). Order is part of the batch contract:
/// job N of a matrix is the same job no matter how many threads run it.
std::vector<JobSpec> expandMatrix(const BatchMatrix &Matrix);

/// The workload names `ccprof batch all` expands to: the six case-study
/// applications plus the Fig. 2 symmetrization example.
std::vector<std::string> defaultBatchWorkloads();

/// Short renderings used in keys, filenames, and reports.
std::string levelName(ProfileLevel Level);
std::string mappingName(PagePolicy Mapping);
std::string samplerName(SamplingKind Kind);
std::string variantName(WorkloadVariant Variant);

} // namespace ccprof

#endif // CCPROF_PIPELINE_JOBSPEC_H
