//===- pipeline/ProfileArtifact.h - Persistent profile results -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk product of one profiling job: a versioned binary capsule
/// holding the full ProfileResult (loop table, RCD histograms,
/// contribution factors, per-set miss counts, data-centric attribution)
/// together with the provenance needed to reproduce or safely aggregate
/// it (workload, variant, sampling config, seed, cache level, page
/// mapping, format version, optional timestamp). Artifacts are what the
/// merge and diff layers operate on; treating captured profiles as
/// first-class replayable artifacts follows the snapshot methodology of
/// live cache-inspection tooling (Tarapore et al., "Observing the
/// Invisible").
///
/// Format: little-endian, fixed-width fields via trace/BinaryIO.
/// Writers emit ArtifactMagic, ArtifactVersion, the payload, and (since
/// v2) a trailing CRC-32 of every preceding byte; readers verify the
/// checksum before trusting any field, bound every count against the
/// bytes actually remaining, and reject anything else with a
/// descriptive error. v1 capsules (no checksum) still load.
/// Serialization is fully deterministic: identical results + provenance
/// produce identical bytes, which is what makes `ccprof batch --jobs N`
/// byte-comparable against a sequential run. saveToFile persists via
/// the write-temp-then-rename protocol, so a crash mid-save never
/// leaves a truncated artifact at the final path.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_PROFILEARTIFACT_H
#define CCPROF_PIPELINE_PROFILEARTIFACT_H

#include "core/Profiler.h"
#include "pipeline/JobSpec.h"

#include <iosfwd>
#include <string>
#include <string_view>

namespace ccprof {

/// On-disk format constants.
inline constexpr uint32_t ArtifactMagic = 0xCC9FA27F;
/// Current written version. History: v1 = initial capsule; v2 = same
/// payload plus a trailing CRC-32 over header + payload.
inline constexpr uint32_t ArtifactVersion = 2;
/// Oldest version readFrom still accepts.
inline constexpr uint32_t MinArtifactVersion = 1;
/// Conventional file extension ("ccprof artifact").
inline constexpr const char *ArtifactExtension = ".ccpa";

/// Everything needed to identify, reproduce, and aggregate a profile.
struct ArtifactProvenance {
  JobSpec Job;
  /// Number of artifacts merged into this one; 1 for a raw job output.
  uint32_t MergedRuns = 1;
  /// Nanoseconds since the epoch, or 0 when the producer opted into
  /// fully deterministic output (the batch default).
  uint64_t TimestampNs = 0;
  /// Producing tool, e.g. "ccprof-1".
  std::string Tool = "ccprof-1";
};

/// A profile result plus its provenance: one serializable capsule.
struct ProfileArtifact {
  ArtifactProvenance Provenance;
  ProfileResult Result;
  /// Format version this artifact was decoded from (set by readFrom);
  /// writeTo always emits the current ArtifactVersion. Not serialized
  /// as a field — it mirrors the header.
  uint32_t FormatVersion = ArtifactVersion;

  /// Serializes to a binary stream (current version, checksummed).
  /// \returns false on I/O failure.
  bool writeTo(std::ostream &Out) const;

  /// Deserializes an artifact previously written by writeTo, rejecting
  /// truncated, corrupt, checksum-mismatched, or wrong-version input.
  /// \returns false on failure, describing the cause in \p Error when
  /// non-null.
  static bool readFrom(std::istream &In, ProfileArtifact &Result,
                       std::string *Error = nullptr);

  /// readFrom over an in-memory buffer (the stream overload slurps and
  /// delegates here).
  static bool readFromBytes(std::string_view Bytes, ProfileArtifact &Result,
                            std::string *Error = nullptr);

  /// Convenience file wrappers around writeTo/readFrom. saveToFile is
  /// atomic: it writes `Path + ".tmp"`, flushes, and renames, so an
  /// interrupted save never leaves a partial artifact at \p Path.
  bool saveToFile(const std::string &Path, std::string *Error = nullptr) const;
  static bool loadFromFile(const std::string &Path, ProfileArtifact &Result,
                           std::string *Error = nullptr);
};

} // namespace ccprof

#endif // CCPROF_PIPELINE_PROFILEARTIFACT_H
