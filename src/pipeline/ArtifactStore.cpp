//===- pipeline/ArtifactStore.cpp - Artifact directory layout ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/ArtifactStore.h"

#include "trace/BinaryIO.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace ccprof;
namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string Directory)
    : Directory(std::move(Directory)) {}

bool ArtifactStore::ensureExists(std::string *Error) {
  std::error_code Ec;
  fs::create_directories(Directory, Ec);
  if (Ec) {
    if (Error)
      *Error = "cannot create " + Directory + ": " + Ec.message();
    return false;
  }
  return true;
}

std::string ArtifactStore::pathFor(const ProfileArtifact &Artifact) const {
  return (fs::path(Directory) /
          (Artifact.Provenance.Job.key() + ArtifactExtension))
      .string();
}

std::string ArtifactStore::save(const ProfileArtifact &Artifact,
                                std::string *Error) {
  std::string Path = pathFor(Artifact);
  if (!Artifact.saveToFile(Path, Error))
    return "";
  return Path;
}

namespace {

/// Shared by list/listStaleTemporaries: regular files under \p Dir
/// whose name ends with \p Suffix, sorted.
std::vector<std::string> listBySuffix(const std::string &Dir,
                                      const std::string &Suffix,
                                      std::string *Error) {
  std::vector<std::string> Paths;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec);
  if (Ec) {
    if (Error)
      *Error = "cannot list artifact directory " + Dir + ": " + Ec.message();
    return Paths;
  }
  for (const fs::directory_entry &Entry : It) {
    const std::string Name = Entry.path().filename().string();
    if (Entry.is_regular_file() && Name.size() > Suffix.size() &&
        Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) == 0)
      Paths.push_back(Entry.path().string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

} // namespace

std::vector<std::string> ArtifactStore::list(std::string *Error) const {
  // Match the extension against the full name, not path::extension():
  // "x.ccpa.tmp" must stay invisible here and show up as a stale temp.
  return listBySuffix(Directory, ArtifactExtension, Error);
}

std::vector<std::string> ArtifactStore::listStaleTemporaries() const {
  return listBySuffix(
      Directory, std::string(ArtifactExtension) + bio::AtomicTempSuffix,
      nullptr);
}

std::vector<std::string>
ArtifactStore::cleanStaleTemporaries(std::vector<std::string> *Failed) {
  std::vector<std::string> Removed;
  for (const std::string &Path : listStaleTemporaries()) {
    std::error_code Ec;
    if (fs::remove(Path, Ec)) {
      Removed.push_back(Path);
    } else if (Ec) {
      if (Failed)
        Failed->push_back(Path + ": " + Ec.message());
    }
    // remove() returning false without an error means the file vanished
    // between listing and removal — already clean, nothing to report.
  }
  return Removed;
}

ArtifactValidationReport ArtifactStore::validate(std::string *Error) const {
  ArtifactValidationReport Report;
  std::string ListError;
  std::vector<std::string> Paths = list(&ListError);
  if (!ListError.empty()) {
    if (Error)
      *Error = ListError;
    return Report;
  }
  for (const std::string &Path : Paths) {
    ++Report.Checked;
    // readFrom rather than loadFromFile: the issue row already carries
    // the path, so the reason should not repeat it.
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      Report.Issues.push_back({Path, "cannot open for reading"});
      continue;
    }
    ProfileArtifact Artifact;
    std::string Reason;
    if (!ProfileArtifact::readFrom(In, Artifact, &Reason))
      Report.Issues.push_back({Path, Reason});
  }
  Report.StaleTemporaries = listStaleTemporaries();
  return Report;
}
