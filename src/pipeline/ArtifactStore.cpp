//===- pipeline/ArtifactStore.cpp - Artifact directory layout ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/ArtifactStore.h"

#include "trace/BinaryIO.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace ccprof;
namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string Directory)
    : Directory(std::move(Directory)) {}

bool ArtifactStore::ensureExists(std::string *Error) {
  std::error_code Ec;
  fs::create_directories(Directory, Ec);
  if (Ec) {
    if (Error)
      *Error = "cannot create " + Directory + ": " + Ec.message();
    return false;
  }
  return true;
}

std::string ArtifactStore::pathFor(const ProfileArtifact &Artifact) const {
  return (fs::path(Directory) /
          (Artifact.Provenance.Job.key() + ArtifactExtension))
      .string();
}

std::string ArtifactStore::save(const ProfileArtifact &Artifact,
                                std::string *Error) {
  std::string Path = pathFor(Artifact);
  if (!Artifact.saveToFile(Path, Error))
    return "";
  return Path;
}

namespace {

/// True when \p Name ends with \p Suffix (and is longer than it).
bool hasSuffix(const std::string &Name, const std::string &Suffix) {
  return Name.size() > Suffix.size() &&
         Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
             0;
}

/// Shared by listEntries/listStaleTemporaries: entries under \p Dir
/// whose name ends with \p Suffix, sorted by path. An entry that
/// cannot be examined (stat failure, dangling symlink) is reported
/// with its diagnostic rather than skipped.
std::vector<ArtifactListEntry> listEntriesBySuffix(const std::string &Dir,
                                                   const std::string &Suffix,
                                                   std::string *Error) {
  std::vector<ArtifactListEntry> Entries;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec);
  if (Ec) {
    if (Error)
      *Error = "cannot list artifact directory " + Dir + ": " + Ec.message();
    return Entries;
  }
  for (const fs::directory_entry &Entry : It) {
    const std::string Name = Entry.path().filename().string();
    if (!hasSuffix(Name, Suffix))
      continue;
    std::error_code StatEc;
    const bool Regular = Entry.is_regular_file(StatEc);
    if (StatEc)
      Entries.push_back(
          {Entry.path().string(), "cannot examine: " + StatEc.message()});
    else if (Regular)
      Entries.push_back({Entry.path().string(), ""});
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const ArtifactListEntry &A, const ArtifactListEntry &B) {
              return A.Path < B.Path;
            });
  return Entries;
}

} // namespace

std::vector<ArtifactListEntry>
ArtifactStore::listEntries(std::string *Error) const {
  // Match the extension against the full name, not path::extension():
  // "x.ccpa.tmp" must stay invisible here and show up as a stale temp.
  return listEntriesBySuffix(Directory, ArtifactExtension, Error);
}

std::vector<std::string> ArtifactStore::list(std::string *Error) const {
  std::vector<std::string> Paths;
  for (ArtifactListEntry &Entry : listEntries(Error))
    if (Entry.ok())
      Paths.push_back(std::move(Entry.Path));
  return Paths;
}

std::vector<std::string> ArtifactStore::listStaleTemporaries() const {
  std::vector<std::string> Paths;
  for (ArtifactListEntry &Entry : listEntriesBySuffix(
           Directory, std::string(ArtifactExtension) + bio::AtomicTempSuffix,
           nullptr))
    if (Entry.ok())
      Paths.push_back(std::move(Entry.Path));
  return Paths;
}

std::vector<std::string>
ArtifactStore::cleanStaleTemporaries(std::vector<std::string> *Failed,
                                     unsigned MinAgeSeconds) {
  std::vector<std::string> Removed;
  for (const std::string &Path : listStaleTemporaries()) {
    std::error_code Ec;
    if (MinAgeSeconds > 0) {
      // The age gate: a temp younger than the gate may belong to a
      // writer that is mid-save right now — leave it for a later
      // sweep. fs::file_time_type and the wall clock share an epoch
      // offset we avoid depending on by comparing against the
      // filesystem clock's own now().
      const fs::file_time_type Mtime = fs::last_write_time(Path, Ec);
      if (Ec)
        continue; // Vanished (writer renamed or removed it) — clean.
      const auto Age = fs::file_time_type::clock::now() - Mtime;
      if (Age < std::chrono::seconds(MinAgeSeconds))
        continue;
    }
    if (fs::remove(Path, Ec)) {
      Removed.push_back(Path);
    } else if (Ec) {
      if (Failed)
        Failed->push_back(Path + ": " + Ec.message());
    }
    // remove() returning false without an error means the file vanished
    // between listing and removal — already clean, nothing to report.
  }
  return Removed;
}

ArtifactValidationReport ArtifactStore::validate(std::string *Error) const {
  ArtifactValidationReport Report;
  std::string ListError;
  std::vector<ArtifactListEntry> Entries = listEntries(&ListError);
  if (!ListError.empty()) {
    if (Error)
      *Error = ListError;
    return Report;
  }
  for (const ArtifactListEntry &Entry : Entries) {
    ++Report.Checked;
    // An entry the listing itself could not examine is as corrupt as a
    // failed decode from the consumer's point of view.
    if (!Entry.ok()) {
      Report.Issues.push_back({Entry.Path, Entry.Error});
      continue;
    }
    const std::string &Path = Entry.Path;
    // readFrom rather than loadFromFile: the issue row already carries
    // the path, so the reason should not repeat it.
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      Report.Issues.push_back({Path, "cannot open for reading"});
      continue;
    }
    ProfileArtifact Artifact;
    std::string Reason;
    if (!ProfileArtifact::readFrom(In, Artifact, &Reason))
      Report.Issues.push_back({Path, Reason});
  }
  Report.StaleTemporaries = listStaleTemporaries();
  return Report;
}
