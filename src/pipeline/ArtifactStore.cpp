//===- pipeline/ArtifactStore.cpp - Artifact directory layout ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/ArtifactStore.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

using namespace ccprof;
namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string Directory)
    : Directory(std::move(Directory)) {}

bool ArtifactStore::ensureExists(std::string *Error) {
  std::error_code Ec;
  fs::create_directories(Directory, Ec);
  if (Ec) {
    if (Error)
      *Error = "cannot create " + Directory + ": " + Ec.message();
    return false;
  }
  return true;
}

std::string ArtifactStore::pathFor(const ProfileArtifact &Artifact) const {
  return (fs::path(Directory) /
          (Artifact.Provenance.Job.key() + ArtifactExtension))
      .string();
}

std::string ArtifactStore::save(const ProfileArtifact &Artifact,
                                std::string *Error) {
  std::string Path = pathFor(Artifact);
  if (!Artifact.saveToFile(Path, Error))
    return "";
  return Path;
}

std::vector<std::string> ArtifactStore::list() const {
  std::vector<std::string> Paths;
  std::error_code Ec;
  for (const fs::directory_entry &Entry :
       fs::directory_iterator(Directory, Ec)) {
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ArtifactExtension)
      Paths.push_back(Entry.path().string());
  }
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
