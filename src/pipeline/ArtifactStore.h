//===- pipeline/ArtifactStore.h - Artifact directory layout ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory of profile artifacts, one file per job, named by the
/// job's key ("NW-orig-l1-firsttouch-bursty-p1212-t8-r0.ccpa"). The
/// store is the persistence seam between batch production and the
/// merge/diff consumers: later scaling work (shards, remote backends,
/// artifact caches) replaces this class, not its callers.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_ARTIFACTSTORE_H
#define CCPROF_PIPELINE_ARTIFACTSTORE_H

#include "pipeline/ProfileArtifact.h"

#include <string>
#include <vector>

namespace ccprof {

/// Filesystem-backed artifact collection rooted at one directory.
class ArtifactStore {
public:
  explicit ArtifactStore(std::string Directory);

  /// Creates the root directory (and parents) if needed.
  /// \returns false (with \p Error set) when creation fails.
  bool ensureExists(std::string *Error = nullptr);

  /// The path \p Artifact saves to: root / key + ".ccpa".
  std::string pathFor(const ProfileArtifact &Artifact) const;

  /// Writes \p Artifact to its canonical path.
  /// \returns the path, or empty with \p Error set.
  std::string save(const ProfileArtifact &Artifact,
                   std::string *Error = nullptr);

  /// Artifact file paths currently in the store, sorted by name so the
  /// listing is deterministic across filesystems.
  std::vector<std::string> list() const;

  const std::string &directory() const { return Directory; }

private:
  std::string Directory;
};

} // namespace ccprof

#endif // CCPROF_PIPELINE_ARTIFACTSTORE_H
