//===- pipeline/ArtifactStore.h - Artifact directory layout ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory of profile artifacts, one file per job, named by the
/// job's key ("NW-orig-l1-firsttouch-bursty-p1212-t8-r0.ccpa"). The
/// store is the persistence seam between batch production and the
/// merge/diff consumers: later scaling work (shards, remote backends,
/// artifact caches) replaces this class, not its callers. Saves are
/// atomic (temp + rename via ProfileArtifact::saveToFile), listing
/// surfaces I/O errors instead of conflating them with emptiness, and
/// validate() sweeps the whole store through the checksummed loader —
/// the engine behind `ccprof validate`.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PIPELINE_ARTIFACTSTORE_H
#define CCPROF_PIPELINE_ARTIFACTSTORE_H

#include "pipeline/ProfileArtifact.h"

#include <string>
#include <vector>

namespace ccprof {

/// One unloadable artifact found by ArtifactStore::validate.
struct ArtifactValidationIssue {
  std::string Path;
  std::string Reason;
};

/// One directory entry seen by ArtifactStore::listEntries: the path
/// plus, when the entry could not even be examined (stat failure,
/// dangling symlink), the OS diagnostic. Entries with a non-empty
/// Error are exactly the files list() cannot vouch for — surfaced
/// here instead of silently skipped, so incremental consumers and
/// /stats reporting stay honest about what they did not read.
struct ArtifactListEntry {
  std::string Path;
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Result of sweeping a store through the artifact loader.
struct ArtifactValidationReport {
  /// Artifact files examined.
  size_t Checked = 0;
  /// Files the loader rejected, with the loader's diagnostic.
  std::vector<ArtifactValidationIssue> Issues;
  /// Leftover ".ccpa.tmp" files from interrupted saves. Harmless (the
  /// atomic-write protocol never publishes them) but worth reporting.
  std::vector<std::string> StaleTemporaries;

  bool ok() const { return Issues.empty(); }
};

/// Filesystem-backed artifact collection rooted at one directory.
class ArtifactStore {
public:
  explicit ArtifactStore(std::string Directory);

  /// Creates the root directory (and parents) if needed.
  /// \returns false (with \p Error set) when creation fails.
  bool ensureExists(std::string *Error = nullptr);

  /// The path \p Artifact saves to: root / key + ".ccpa".
  std::string pathFor(const ProfileArtifact &Artifact) const;

  /// Writes \p Artifact to its canonical path atomically (temp +
  /// rename). \returns the path, or empty with \p Error set.
  std::string save(const ProfileArtifact &Artifact,
                   std::string *Error = nullptr);

  /// Artifact file paths currently in the store, sorted by name so the
  /// listing is deterministic across filesystems. A missing or
  /// unreadable directory reports through \p Error (when non-null) and
  /// returns empty — distinguishable from a genuinely empty store,
  /// whose \p Error stays untouched. Entries that cannot be examined
  /// (see listEntries) are excluded; callers that must account for
  /// them use listEntries directly.
  std::vector<std::string> list(std::string *Error = nullptr) const;

  /// Every artifact-suffixed entry in the store, sorted by path, with
  /// per-entry examination errors surfaced instead of skipped: a
  /// dangling symlink or stat failure produces an entry whose Error
  /// holds the OS diagnostic rather than disappearing from the
  /// listing. \p Error reports a directory-level listing failure.
  std::vector<ArtifactListEntry>
  listEntries(std::string *Error = nullptr) const;

  /// Leftover atomic-write temporaries (".ccpa.tmp"), sorted; evidence
  /// of an interrupted save.
  std::vector<std::string> listStaleTemporaries() const;

  /// Temporaries younger than this are presumed owned by a live writer
  /// and are never reaped by cleanStaleTemporaries' default.
  static constexpr unsigned DefaultTempReapAgeSeconds = 60;

  /// Deletes stale temporaries at least \p MinAgeSeconds old and
  /// returns the paths removed. The age gate is what makes reaping
  /// safe under concurrency: a daemon worker's in-flight ".ccpa.tmp"
  /// is brand new, so a concurrent `validate --clean-temps` (or the
  /// service's own periodic sweep) leaves it alone, while genuinely
  /// orphaned temps from a crashed writer age past the gate and get
  /// collected. Pass 0 to reap unconditionally (single-writer
  /// offline cleanup). Temporaries that vanish concurrently are
  /// skipped; a temporary that exists but cannot be removed lands in
  /// \p Failed (when non-null) with the OS diagnostic appended. The
  /// engine behind `ccprof validate --clean-temps`.
  std::vector<std::string>
  cleanStaleTemporaries(std::vector<std::string> *Failed = nullptr,
                        unsigned MinAgeSeconds = DefaultTempReapAgeSeconds);

  /// Loads every artifact in the store, collecting loader rejections
  /// and stale temporaries. \p Error reports a listing failure (the
  /// report is then empty).
  ArtifactValidationReport validate(std::string *Error = nullptr) const;

  const std::string &directory() const { return Directory; }

private:
  std::string Directory;
};

} // namespace ccprof

#endif // CCPROF_PIPELINE_ARTIFACTSTORE_H
