//===- pipeline/MissStreamCache.cpp - Shared miss-stream cache ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/MissStreamCache.h"

#include <cassert>
#include <utility>

using namespace ccprof;

MissStreamCache::MissStreamCache(size_t MaxEntries)
    : MaxEntries(MaxEntries == 0 ? 1 : MaxEntries) {}

MissStreamCache::StreamPtr
MissStreamCache::getOrCompute(const std::string &Key,
                              const std::function<Stream()> &Compute) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      ++Hits;
      ++Accounts[It->second.AccountIndex].Hits;
      // Refresh recency: move to the front of the LRU list.
      Recency.splice(Recency.begin(), Recency, It->second.RecencyIt);
      return It->second.Data;
    }
    ++Misses;
  }

  // Compute outside the lock so a long simulation never blocks lookups
  // of unrelated keys from other workers.
  StreamPtr Data = std::make_shared<const Stream>(Compute());

  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    // A racing caller stored the stream first; its copy wins so every
    // holder shares one buffer. Deterministic content either way. The
    // lookup is ultimately served from the cache, so reclassify our
    // provisional miss as a hit (global and per-entry) — otherwise
    // hit-rate reporting undercounts under contention and Misses
    // overstates the number of streams actually simulated and stored.
    --Misses;
    ++Hits;
    ++Accounts[It->second.AccountIndex].Hits;
    Recency.splice(Recency.begin(), Recency, It->second.RecencyIt);
    return It->second.Data;
  }

  while (Entries.size() >= MaxEntries)
    evictLeastRecentLocked();

  size_t Account;
  auto AcctIt = AccountIndexOf.find(Key);
  if (AcctIt != AccountIndexOf.end()) {
    Account = AcctIt->second; // re-inserted after eviction
    Accounts[Account].Resident = true;
  } else {
    Account = Accounts.size();
    Accounts.push_back({Key, 0, Data->size(), true});
    AccountIndexOf.emplace(Key, Account);
  }
  Accounts[Account].Events = Data->size();

  Recency.push_front(Key);
  Entries.emplace(Key, Entry{Data, Recency.begin(), Account});
  return Data;
}

void MissStreamCache::evictLeastRecentLocked() {
  assert(!Recency.empty() && "evicting from an empty cache");
  const std::string &Victim = Recency.back();
  auto It = Entries.find(Victim);
  assert(It != Entries.end() && "recency list out of sync");
  Accounts[It->second.AccountIndex].Resident = false;
  Entries.erase(It);
  Recency.pop_back();
  ++Evictions;
}

size_t MissStreamCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

MissStreamCacheStats MissStreamCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MissStreamCacheStats Stats;
  Stats.Hits = Hits;
  Stats.Misses = Misses;
  Stats.Evictions = Evictions;
  Stats.Entries = Accounts;
  return Stats;
}

void MissStreamCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Key, E] : Entries)
    Accounts[E.AccountIndex].Resident = false;
  Entries.clear();
  Recency.clear();
}
