//===- pipeline/Diff.cpp - Structural profile comparison -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/Diff.h"

#include "support/Json.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace ccprof;

namespace {

const char *changeName(LoopChange Change) {
  switch (Change) {
  case LoopChange::Unchanged:
    return "unchanged";
  case LoopChange::CfDrift:
    return "cf drift";
  case LoopChange::BecameConflict:
    return "REGRESSION";
  case LoopChange::BecameClean:
    return "improved";
  case LoopChange::OnlyInA:
    return "only in A";
  case LoopChange::OnlyInB:
    return "only in B";
  }
  return "?";
}

bool isChanged(LoopChange Change) {
  return Change != LoopChange::Unchanged;
}

} // namespace

DiffResult ccprof::diffArtifacts(const ProfileArtifact &A,
                                 const ProfileArtifact &B,
                                 const DiffOptions &Options) {
  DiffResult Result;

  // Pair by location. std::map keeps the row order deterministic and
  // symmetric: the same locations sort the same way from either side.
  std::map<std::string, std::pair<const LoopConflictReport *,
                                  const LoopConflictReport *>>
      Paired;
  for (const LoopConflictReport &Loop : A.Result.Loops)
    Paired[Loop.Location].first = &Loop;
  for (const LoopConflictReport &Loop : B.Result.Loops)
    Paired[Loop.Location].second = &Loop;

  for (const auto &[Location, Pair] : Paired) {
    const auto [InA, InB] = Pair;
    LoopDiff Row;
    Row.Location = Location;
    if (InA) {
      Row.CfA = InA->ContributionFactor;
      Row.MissContributionA = InA->MissContribution;
      Row.ConflictA = InA->ConflictPredicted;
    }
    if (InB) {
      Row.CfB = InB->ContributionFactor;
      Row.MissContributionB = InB->MissContribution;
      Row.ConflictB = InB->ConflictPredicted;
    }
    if (!InB)
      Row.Change = LoopChange::OnlyInA;
    else if (!InA)
      Row.Change = LoopChange::OnlyInB;
    else if (!Row.ConflictA && Row.ConflictB)
      Row.Change = LoopChange::BecameConflict;
    else if (Row.ConflictA && !Row.ConflictB)
      Row.Change = LoopChange::BecameClean;
    else if (std::abs(Row.CfB - Row.CfA) > Options.CfTolerance)
      Row.Change = LoopChange::CfDrift;

    if (Row.Change == LoopChange::BecameConflict)
      ++Result.Regressions;
    if (isChanged(Row.Change))
      ++Result.Changed;
    Result.Loops.push_back(std::move(Row));
  }

  // Changed rows first (they are what the reader came for), location
  // order within each group.
  std::stable_sort(Result.Loops.begin(), Result.Loops.end(),
                   [](const LoopDiff &X, const LoopDiff &Y) {
                     return isChanged(X.Change) > isChanged(Y.Change);
                   });
  return Result;
}

const char *ccprof::loopChangeId(LoopChange Change) {
  switch (Change) {
  case LoopChange::Unchanged:
    return "unchanged";
  case LoopChange::CfDrift:
    return "cf_drift";
  case LoopChange::BecameConflict:
    return "became_conflict";
  case LoopChange::BecameClean:
    return "became_clean";
  case LoopChange::OnlyInA:
    return "only_in_a";
  case LoopChange::OnlyInB:
    return "only_in_b";
  }
  return "unknown";
}

std::string ccprof::renderDiffJson(const DiffResult &Diff,
                                   const std::string &NameA,
                                   const std::string &NameB) {
  std::string Out = "{\n  \"a\": " + json::quote(NameA) +
                    ",\n  \"b\": " + json::quote(NameB) +
                    ",\n  \"changed\": " + std::to_string(Diff.Changed) +
                    ",\n  \"regressions\": " +
                    std::to_string(Diff.Regressions) + ",\n  \"loops\": [\n";
  for (size_t I = 0; I < Diff.Loops.size(); ++I) {
    const LoopDiff &Row = Diff.Loops[I];
    const bool InA = Row.Change != LoopChange::OnlyInB;
    const bool InB = Row.Change != LoopChange::OnlyInA;
    Out += "    {\"loop\": " + json::quote(Row.Location) +
           ", \"change\": " + json::quote(loopChangeId(Row.Change));
    if (InA)
      Out += ", \"cf_a\": " + json::number(Row.CfA) +
             ", \"miss_contribution_a\": " +
             json::number(Row.MissContributionA) +
             ", \"conflict_a\": " + (Row.ConflictA ? "true" : "false");
    if (InB)
      Out += ", \"cf_b\": " + json::number(Row.CfB) +
             ", \"miss_contribution_b\": " +
             json::number(Row.MissContributionB) +
             ", \"conflict_b\": " + (Row.ConflictB ? "true" : "false");
    Out += "}";
    Out += I + 1 < Diff.Loops.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

std::string ccprof::renderDiff(const DiffResult &Diff,
                               const std::string &NameA,
                               const std::string &NameB) {
  std::string Out = "profile diff: A = " + NameA + ", B = " + NameB + "\n";
  Out += "  " + std::to_string(Diff.Changed) + " changed loop(s), " +
         std::to_string(Diff.Regressions) + " regression(s)\n\n";

  TextTable Table({"loop", "change", "cf A", "cf B", "contrib A",
                   "contrib B", "verdict A", "verdict B"});
  for (const LoopDiff &Row : Diff.Loops) {
    auto Verdict = [](bool Present, bool Conflict) -> std::string {
      return Present ? (Conflict ? "conflict" : "clean") : "-";
    };
    Table.addRow({Row.Location, changeName(Row.Change),
                  Row.Change == LoopChange::OnlyInB ? "-"
                                                    : fmt::fixed(Row.CfA, 4),
                  Row.Change == LoopChange::OnlyInA ? "-"
                                                    : fmt::fixed(Row.CfB, 4),
                  Row.Change == LoopChange::OnlyInB
                      ? "-"
                      : fmt::percent(Row.MissContributionA),
                  Row.Change == LoopChange::OnlyInA
                      ? "-"
                      : fmt::percent(Row.MissContributionB),
                  Verdict(Row.Change != LoopChange::OnlyInB, Row.ConflictA),
                  Verdict(Row.Change != LoopChange::OnlyInA,
                          Row.ConflictB)});
  }
  Out += Table.render();
  return Out;
}
