//===- pipeline/JobSpec.cpp - Batch-profiling job matrix -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobSpec.h"

#include <algorithm>
#include <cctype>

using namespace ccprof;

std::string ccprof::levelName(ProfileLevel Level) {
  return Level == ProfileLevel::L1 ? "l1" : "l2";
}

std::string ccprof::mappingName(PagePolicy Mapping) {
  switch (Mapping) {
  case PagePolicy::Identity:
    return "identity";
  case PagePolicy::FirstTouch:
    return "firsttouch";
  case PagePolicy::Shuffled:
    return "shuffled";
  }
  return "unknown";
}

std::string ccprof::samplerName(SamplingKind Kind) {
  switch (Kind) {
  case SamplingKind::Fixed:
    return "fixed";
  case SamplingKind::UniformJitter:
    return "jitter";
  case SamplingKind::Bursty:
    return "bursty";
  }
  return "unknown";
}

std::string ccprof::variantName(WorkloadVariant Variant) {
  return Variant == WorkloadVariant::Original ? "orig" : "opt";
}

ProfileOptions JobSpec::toProfileOptions() const {
  ProfileOptions Options;
  Options.Sampling.Kind = Sampler;
  Options.Sampling.MeanPeriod = MeanPeriod;
  Options.Sampling.Seed = Seed + Repeat;
  Options.RcdThreshold = RcdThreshold;
  Options.Level = Level;
  Options.Mapping = Mapping;
  return Options;
}

std::string JobSpec::key() const {
  // Workload names may contain characters awkward in filenames
  // ("MKL-FFT", "Tiny-DNN"); keep alphanumerics, map the rest to '_'.
  std::string Safe = WorkloadName;
  std::transform(Safe.begin(), Safe.end(), Safe.begin(), [](unsigned char C) {
    return std::isalnum(C) ? static_cast<char>(C) : '_';
  });
  if (Safe != WorkloadName) {
    // Sanitization was lossy, so distinct raw names can collapse onto
    // one safe string ("MKL-FFT" and "MKL.FFT" both become "MKL_FFT" —
    // and collide with a workload literally named "MKL_FFT"). Append a
    // short hash of the raw name so such jobs never share an artifact
    // path; names that sanitize to themselves keep their stable keys.
    uint32_t Hash = 2166136261u; // FNV-1a
    for (unsigned char C : WorkloadName) {
      Hash ^= C;
      Hash *= 16777619u;
    }
    static const char *Hex = "0123456789abcdef";
    Safe += 'x';
    for (int Shift = 28; Shift >= 0; Shift -= 4)
      Safe += Hex[(Hash >> Shift) & 0xF];
  }
  std::string Key = Safe + '-' + variantName(Variant) + '-' +
                    levelName(Level) + '-' + mappingName(Mapping);
  Key += Exact ? "-exact" : ('-' + samplerName(Sampler) + "-p" +
                             std::to_string(MeanPeriod));
  Key += "-t" + std::to_string(RcdThreshold);
  Key += "-r" + std::to_string(Repeat);
  return Key;
}

std::vector<JobSpec> ccprof::expandMatrix(const BatchMatrix &Matrix) {
  // Exact profiles capture every miss, so the sampling period does not
  // participate in the cross product (it would only duplicate jobs).
  const std::vector<uint64_t> ExactPeriods = {1212};
  const std::vector<uint64_t> &Periods =
      Matrix.Exact ? ExactPeriods : Matrix.Periods;

  std::vector<JobSpec> Jobs;
  for (const std::string &Name : Matrix.Workloads)
    for (WorkloadVariant Variant : Matrix.Variants)
      for (ProfileLevel Level : Matrix.Levels)
        for (PagePolicy Mapping : Matrix.Mappings)
          for (uint64_t Period : Periods)
            for (uint32_t Repeat = 0; Repeat < Matrix.Repeats; ++Repeat) {
              JobSpec Job;
              Job.WorkloadName = Name;
              Job.Variant = Variant;
              Job.Exact = Matrix.Exact;
              Job.Sampler = Matrix.Sampler;
              Job.MeanPeriod = Period;
              Job.RcdThreshold = Matrix.RcdThreshold;
              Job.Level = Level;
              Job.Mapping = Mapping;
              Job.Repeat = Repeat;
              Job.Seed = Matrix.Seed;
              Jobs.push_back(std::move(Job));
            }
  return Jobs;
}

std::vector<std::string> ccprof::defaultBatchWorkloads() {
  std::vector<std::string> Names;
  for (const auto &W : makeCaseStudySuite())
    Names.push_back(W->name());
  Names.push_back("Symmetrization");
  return Names;
}
