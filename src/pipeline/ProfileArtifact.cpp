//===- pipeline/ProfileArtifact.cpp - Persistent profile results ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/ProfileArtifact.h"

#include "trace/BinaryIO.h"

#include <fstream>
#include <sstream>

using namespace ccprof;
using namespace ccprof::bio;

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

void writeHistogram(std::ostream &Out, const Histogram &H) {
  writeU64(Out, H.buckets().size());
  for (const auto &[Key, Count] : H.buckets()) {
    writeU64(Out, Key);
    writeU64(Out, Count);
  }
}

bool readHistogram(ByteReader &In, Histogram &H) {
  uint64_t NumBuckets = 0;
  // Each bucket is 16 bytes on the wire; a count that cannot fit in the
  // remaining bytes is corruption, caught before the add loop runs.
  if (!In.readU64(NumBuckets) || !In.fits(NumBuckets, 16))
    return false;
  for (uint64_t I = 0; I < NumBuckets; ++I) {
    uint64_t Key = 0, Count = 0;
    if (!In.readU64(Key) || !In.readU64(Count) || Count == 0)
      return false;
    H.add(Key, Count);
  }
  return true;
}

void writeLoop(std::ostream &Out, const LoopConflictReport &Loop) {
  writeString(Out, Loop.Location);
  writeU32(Out, Loop.Loop.has_value() ? 1 : 0);
  writeU32(Out, Loop.Loop ? Loop.Loop->FunctionIndex : 0);
  writeU32(Out, Loop.Loop ? Loop.Loop->Loop : 0);
  writeU64(Out, Loop.Samples);
  writeF64(Out, Loop.MissContribution);
  writeU64(Out, Loop.SetsUtilized);
  writeF64(Out, Loop.ContributionFactor);
  writeF64(Out, Loop.MeanRcd);
  writeU64(Out, Loop.MedianRcd);
  writeF64(Out, Loop.ConflictProbability);
  writeU32(Out, Loop.Significant ? 1 : 0);
  writeU32(Out, Loop.ConflictPredicted ? 1 : 0);
  writeHistogram(Out, Loop.Rcd);
  writeHistogram(Out, Loop.Periods.RunLengths);
  writeU64(Out, Loop.PerSetMisses.size());
  for (uint64_t Misses : Loop.PerSetMisses)
    writeU64(Out, Misses);
  writeU64(Out, Loop.DataStructures.size());
  for (const DataStructureReport &Data : Loop.DataStructures) {
    writeString(Out, Data.Name);
    writeU64(Out, Data.Samples);
    writeF64(Out, Data.Share);
  }
}

/// Minimum wire size of one loop record: the fixed fields plus the four
/// empty-sequence counts. Used to bound the loop-table count.
constexpr size_t MinLoopBytes = 4 /*location len*/ + 3 * 4 /*loop ref*/ +
                                8 + 8 + 8 + 8 + 8 + 8 + 8 /*stats*/ +
                                2 * 4 /*flags*/ + 4 * 8 /*sequence counts*/;

bool readLoop(ByteReader &In, LoopConflictReport &Loop) {
  uint32_t HasLoop = 0, FunctionIndex = 0, LoopId = 0;
  if (!In.readString(Loop.Location) || !In.readU32(HasLoop) ||
      !In.readU32(FunctionIndex) || !In.readU32(LoopId))
    return false;
  if (HasLoop)
    Loop.Loop = LoopRef{FunctionIndex, LoopId};
  uint32_t Significant = 0, Predicted = 0;
  if (!In.readU64(Loop.Samples) || !In.readF64(Loop.MissContribution) ||
      !In.readU64(Loop.SetsUtilized) ||
      !In.readF64(Loop.ContributionFactor) || !In.readF64(Loop.MeanRcd) ||
      !In.readU64(Loop.MedianRcd) ||
      !In.readF64(Loop.ConflictProbability) || !In.readU32(Significant) ||
      !In.readU32(Predicted))
    return false;
  Loop.Significant = Significant != 0;
  Loop.ConflictPredicted = Predicted != 0;
  if (!readHistogram(In, Loop.Rcd) ||
      !readHistogram(In, Loop.Periods.RunLengths))
    return false;
  uint64_t NumSets = 0;
  if (!In.readU64(NumSets) || !In.fits(NumSets, 8))
    return false;
  Loop.PerSetMisses.resize(NumSets);
  for (uint64_t I = 0; I < NumSets; ++I)
    if (!In.readU64(Loop.PerSetMisses[I]))
      return false;
  uint64_t NumData = 0;
  if (!In.readU64(NumData) || !In.fits(NumData, 4 + 8 + 8))
    return false;
  Loop.DataStructures.resize(NumData);
  for (uint64_t I = 0; I < NumData; ++I) {
    DataStructureReport &Data = Loop.DataStructures[I];
    if (!In.readString(Data.Name) || !In.readU64(Data.Samples) ||
        !In.readF64(Data.Share))
      return false;
  }
  return true;
}

void writeJobSpec(std::ostream &Out, const JobSpec &Job) {
  writeString(Out, Job.WorkloadName);
  writeU32(Out, Job.Variant == WorkloadVariant::Optimized ? 1 : 0);
  writeU32(Out, Job.Exact ? 1 : 0);
  writeU32(Out, static_cast<uint32_t>(Job.Sampler));
  writeU64(Out, Job.MeanPeriod);
  writeU64(Out, Job.RcdThreshold);
  writeU32(Out, Job.Level == ProfileLevel::L2 ? 1 : 0);
  writeU32(Out, static_cast<uint32_t>(Job.Mapping));
  writeU32(Out, Job.Repeat);
  writeU64(Out, Job.Seed);
}

bool readJobSpec(ByteReader &In, JobSpec &Job) {
  uint32_t Variant = 0, Exact = 0, Sampler = 0, Level = 0, Mapping = 0;
  if (!In.readString(Job.WorkloadName) || !In.readU32(Variant) ||
      !In.readU32(Exact) || !In.readU32(Sampler) ||
      !In.readU64(Job.MeanPeriod) || !In.readU64(Job.RcdThreshold) ||
      !In.readU32(Level) || !In.readU32(Mapping) ||
      !In.readU32(Job.Repeat) || !In.readU64(Job.Seed))
    return false;
  if (Sampler > 2 || Mapping > 2)
    return false;
  Job.Variant =
      Variant ? WorkloadVariant::Optimized : WorkloadVariant::Original;
  Job.Exact = Exact != 0;
  Job.Sampler = static_cast<SamplingKind>(Sampler);
  Job.Level = Level ? ProfileLevel::L2 : ProfileLevel::L1;
  Job.Mapping = static_cast<PagePolicy>(Mapping);
  return true;
}

} // namespace

bool ProfileArtifact::writeTo(std::ostream &Out) const {
  // Serialize to memory first: the trailing checksum covers every byte
  // that precedes it (header included), so the payload must exist
  // before the CRC can.
  std::ostringstream Buffer;
  writeU32(Buffer, ArtifactMagic);
  writeU32(Buffer, ArtifactVersion);

  // Provenance.
  writeJobSpec(Buffer, Provenance.Job);
  writeU32(Buffer, Provenance.MergedRuns);
  writeU64(Buffer, Provenance.TimestampNs);
  writeString(Buffer, Provenance.Tool);

  // Run summary.
  writeU64(Buffer, Result.TraceRefs);
  writeU64(Buffer, Result.L1Misses);
  writeU64(Buffer, Result.Samples);
  writeF64(Buffer, Result.L1MissRatio);
  writeU64(Buffer, Result.NumSets);
  writeU64(Buffer, Result.RcdThreshold);

  // Loop table.
  writeU64(Buffer, Result.Loops.size());
  for (const LoopConflictReport &Loop : Result.Loops)
    writeLoop(Buffer, Loop);

  std::string Bytes = std::move(Buffer).str();
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  writeU32(Out, crc32(Bytes));
  return Out.good();
}

bool ProfileArtifact::readFrom(std::istream &In, ProfileArtifact &Result,
                               std::string *Error) {
  return readFromBytes(readAll(In), Result, Error);
}

bool ProfileArtifact::readFromBytes(std::string_view Bytes,
                                    ProfileArtifact &Result,
                                    std::string *Error) {
  ByteReader Header(Bytes);
  uint32_t Magic = 0, Version = 0;
  if (!Header.readU32(Magic))
    return fail(Error, "file is empty or too short to be a ccprof artifact");
  if (Magic != ArtifactMagic)
    return fail(Error, "bad magic number: not a ccprof profile artifact");
  if (!Header.readU32(Version))
    return fail(Error, "truncated artifact header");
  if (Version < MinArtifactVersion || Version > ArtifactVersion)
    return fail(Error, "unsupported artifact format version " +
                           std::to_string(Version) + " (expected " +
                           std::to_string(MinArtifactVersion) + ".." +
                           std::to_string(ArtifactVersion) + ")");

  std::string_view Payload = Bytes.substr(8);
  if (Version >= 2) {
    // v2+ carries a trailing CRC-32 of everything before it.
    if (Payload.size() < 4)
      return fail(Error, "truncated artifact: missing checksum");
    ByteReader Tail(Payload.substr(Payload.size() - 4));
    uint32_t Stored = 0;
    Tail.readU32(Stored);
    Payload.remove_suffix(4);
    uint32_t Actual = crc32(Bytes.substr(0, Bytes.size() - 4));
    if (Stored != Actual)
      return fail(Error, "checksum mismatch: artifact is corrupt "
                         "(truncated tail or flipped bits)");
  }

  ByteReader Reader(Payload);
  ProfileArtifact Loaded;
  Loaded.FormatVersion = Version;
  if (!readJobSpec(Reader, Loaded.Provenance.Job) ||
      !Reader.readU32(Loaded.Provenance.MergedRuns) ||
      !Reader.readU64(Loaded.Provenance.TimestampNs) ||
      !Reader.readString(Loaded.Provenance.Tool))
    return fail(Error, "truncated or corrupt artifact provenance");

  if (!Reader.readU64(Loaded.Result.TraceRefs) ||
      !Reader.readU64(Loaded.Result.L1Misses) ||
      !Reader.readU64(Loaded.Result.Samples) ||
      !Reader.readF64(Loaded.Result.L1MissRatio) ||
      !Reader.readU64(Loaded.Result.NumSets) ||
      !Reader.readU64(Loaded.Result.RcdThreshold))
    return fail(Error, "truncated or corrupt artifact run summary");

  uint64_t NumLoops = 0;
  if (!Reader.readU64(NumLoops) || !Reader.fits(NumLoops, MinLoopBytes))
    return fail(Error, "truncated or corrupt artifact loop table");
  Loaded.Result.Loops.resize(NumLoops);
  for (uint64_t I = 0; I < NumLoops; ++I)
    if (!readLoop(Reader, Loaded.Result.Loops[I]))
      return fail(Error, "truncated or corrupt loop record " +
                             std::to_string(I) + " of " +
                             std::to_string(NumLoops));

  if (!Reader.atEnd())
    return fail(Error, std::to_string(Reader.remaining()) +
                           " trailing byte(s) after the artifact payload");

  Result = std::move(Loaded);
  return true;
}

bool ProfileArtifact::saveToFile(const std::string &Path,
                                 std::string *Error) const {
  std::ostringstream Buffer;
  if (!writeTo(Buffer))
    return fail(Error, "I/O error while serializing " + Path);
  // Write-temp-then-rename: a crash mid-save can never leave a
  // truncated artifact at Path, only a stale ".tmp" sibling that
  // ArtifactStore::list ignores and `ccprof validate` reports.
  return atomicWriteFile(Path, std::move(Buffer).str(), Error);
}

bool ProfileArtifact::loadFromFile(const std::string &Path,
                                   ProfileArtifact &Result,
                                   std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Error, "cannot open " + Path);
  std::string Reason;
  if (!readFrom(In, Result, &Reason))
    return fail(Error, Path + ": " + Reason);
  return true;
}
