//===- pipeline/ProfileArtifact.cpp - Persistent profile results ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/ProfileArtifact.h"

#include "trace/BinaryIO.h"

#include <fstream>
#include <istream>
#include <ostream>

using namespace ccprof;
using namespace ccprof::bio;

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

void writeHistogram(std::ostream &Out, const Histogram &H) {
  writeU64(Out, H.buckets().size());
  for (const auto &[Key, Count] : H.buckets()) {
    writeU64(Out, Key);
    writeU64(Out, Count);
  }
}

bool readHistogram(std::istream &In, Histogram &H) {
  uint64_t NumBuckets = 0;
  if (!readU64(In, NumBuckets))
    return false;
  for (uint64_t I = 0; I < NumBuckets; ++I) {
    uint64_t Key = 0, Count = 0;
    if (!readU64(In, Key) || !readU64(In, Count) || Count == 0)
      return false;
    H.add(Key, Count);
  }
  return true;
}

void writeLoop(std::ostream &Out, const LoopConflictReport &Loop) {
  writeString(Out, Loop.Location);
  writeU32(Out, Loop.Loop.has_value() ? 1 : 0);
  writeU32(Out, Loop.Loop ? Loop.Loop->FunctionIndex : 0);
  writeU32(Out, Loop.Loop ? Loop.Loop->Loop : 0);
  writeU64(Out, Loop.Samples);
  writeF64(Out, Loop.MissContribution);
  writeU64(Out, Loop.SetsUtilized);
  writeF64(Out, Loop.ContributionFactor);
  writeF64(Out, Loop.MeanRcd);
  writeU64(Out, Loop.MedianRcd);
  writeF64(Out, Loop.ConflictProbability);
  writeU32(Out, Loop.Significant ? 1 : 0);
  writeU32(Out, Loop.ConflictPredicted ? 1 : 0);
  writeHistogram(Out, Loop.Rcd);
  writeHistogram(Out, Loop.Periods.RunLengths);
  writeU64(Out, Loop.PerSetMisses.size());
  for (uint64_t Misses : Loop.PerSetMisses)
    writeU64(Out, Misses);
  writeU64(Out, Loop.DataStructures.size());
  for (const DataStructureReport &Data : Loop.DataStructures) {
    writeString(Out, Data.Name);
    writeU64(Out, Data.Samples);
    writeF64(Out, Data.Share);
  }
}

bool readLoop(std::istream &In, LoopConflictReport &Loop) {
  uint32_t HasLoop = 0, FunctionIndex = 0, LoopId = 0;
  if (!readString(In, Loop.Location) || !readU32(In, HasLoop) ||
      !readU32(In, FunctionIndex) || !readU32(In, LoopId))
    return false;
  if (HasLoop)
    Loop.Loop = LoopRef{FunctionIndex, LoopId};
  uint32_t Significant = 0, Predicted = 0;
  if (!readU64(In, Loop.Samples) || !readF64(In, Loop.MissContribution) ||
      !readU64(In, Loop.SetsUtilized) ||
      !readF64(In, Loop.ContributionFactor) || !readF64(In, Loop.MeanRcd) ||
      !readU64(In, Loop.MedianRcd) ||
      !readF64(In, Loop.ConflictProbability) || !readU32(In, Significant) ||
      !readU32(In, Predicted))
    return false;
  Loop.Significant = Significant != 0;
  Loop.ConflictPredicted = Predicted != 0;
  if (!readHistogram(In, Loop.Rcd) ||
      !readHistogram(In, Loop.Periods.RunLengths))
    return false;
  uint64_t NumSets = 0;
  if (!readU64(In, NumSets) || NumSets > (1u << 24))
    return false;
  Loop.PerSetMisses.resize(NumSets);
  for (uint64_t I = 0; I < NumSets; ++I)
    if (!readU64(In, Loop.PerSetMisses[I]))
      return false;
  uint64_t NumData = 0;
  if (!readU64(In, NumData) || NumData > (1u << 24))
    return false;
  Loop.DataStructures.resize(NumData);
  for (uint64_t I = 0; I < NumData; ++I) {
    DataStructureReport &Data = Loop.DataStructures[I];
    if (!readString(In, Data.Name) || !readU64(In, Data.Samples) ||
        !readF64(In, Data.Share))
      return false;
  }
  return true;
}

void writeJobSpec(std::ostream &Out, const JobSpec &Job) {
  writeString(Out, Job.WorkloadName);
  writeU32(Out, Job.Variant == WorkloadVariant::Optimized ? 1 : 0);
  writeU32(Out, Job.Exact ? 1 : 0);
  writeU32(Out, static_cast<uint32_t>(Job.Sampler));
  writeU64(Out, Job.MeanPeriod);
  writeU64(Out, Job.RcdThreshold);
  writeU32(Out, Job.Level == ProfileLevel::L2 ? 1 : 0);
  writeU32(Out, static_cast<uint32_t>(Job.Mapping));
  writeU32(Out, Job.Repeat);
  writeU64(Out, Job.Seed);
}

bool readJobSpec(std::istream &In, JobSpec &Job) {
  uint32_t Variant = 0, Exact = 0, Sampler = 0, Level = 0, Mapping = 0;
  if (!readString(In, Job.WorkloadName) || !readU32(In, Variant) ||
      !readU32(In, Exact) || !readU32(In, Sampler) ||
      !readU64(In, Job.MeanPeriod) || !readU64(In, Job.RcdThreshold) ||
      !readU32(In, Level) || !readU32(In, Mapping) ||
      !readU32(In, Job.Repeat) || !readU64(In, Job.Seed))
    return false;
  if (Sampler > 2 || Mapping > 2)
    return false;
  Job.Variant =
      Variant ? WorkloadVariant::Optimized : WorkloadVariant::Original;
  Job.Exact = Exact != 0;
  Job.Sampler = static_cast<SamplingKind>(Sampler);
  Job.Level = Level ? ProfileLevel::L2 : ProfileLevel::L1;
  Job.Mapping = static_cast<PagePolicy>(Mapping);
  return true;
}

} // namespace

bool ProfileArtifact::writeTo(std::ostream &Out) const {
  writeU32(Out, ArtifactMagic);
  writeU32(Out, ArtifactVersion);

  // Provenance.
  writeJobSpec(Out, Provenance.Job);
  writeU32(Out, Provenance.MergedRuns);
  writeU64(Out, Provenance.TimestampNs);
  writeString(Out, Provenance.Tool);

  // Run summary.
  writeU64(Out, Result.TraceRefs);
  writeU64(Out, Result.L1Misses);
  writeU64(Out, Result.Samples);
  writeF64(Out, Result.L1MissRatio);
  writeU64(Out, Result.NumSets);
  writeU64(Out, Result.RcdThreshold);

  // Loop table.
  writeU64(Out, Result.Loops.size());
  for (const LoopConflictReport &Loop : Result.Loops)
    writeLoop(Out, Loop);
  return Out.good();
}

bool ProfileArtifact::readFrom(std::istream &In, ProfileArtifact &Result,
                               std::string *Error) {
  uint32_t Magic = 0, Version = 0;
  if (!readU32(In, Magic))
    return fail(Error, "file is empty or too short to be a ccprof artifact");
  if (Magic != ArtifactMagic)
    return fail(Error, "bad magic number: not a ccprof profile artifact");
  if (!readU32(In, Version))
    return fail(Error, "truncated artifact header");
  if (Version != ArtifactVersion)
    return fail(Error, "unsupported artifact format version " +
                           std::to_string(Version) + " (expected " +
                           std::to_string(ArtifactVersion) + ")");

  ProfileArtifact Loaded;
  if (!readJobSpec(In, Loaded.Provenance.Job) ||
      !readU32(In, Loaded.Provenance.MergedRuns) ||
      !readU64(In, Loaded.Provenance.TimestampNs) ||
      !readString(In, Loaded.Provenance.Tool))
    return fail(Error, "truncated or corrupt artifact provenance");

  if (!readU64(In, Loaded.Result.TraceRefs) ||
      !readU64(In, Loaded.Result.L1Misses) ||
      !readU64(In, Loaded.Result.Samples) ||
      !readF64(In, Loaded.Result.L1MissRatio) ||
      !readU64(In, Loaded.Result.NumSets) ||
      !readU64(In, Loaded.Result.RcdThreshold))
    return fail(Error, "truncated or corrupt artifact run summary");

  uint64_t NumLoops = 0;
  if (!readU64(In, NumLoops) || NumLoops > (1u << 20))
    return fail(Error, "truncated or corrupt artifact loop table");
  Loaded.Result.Loops.resize(NumLoops);
  for (uint64_t I = 0; I < NumLoops; ++I)
    if (!readLoop(In, Loaded.Result.Loops[I]))
      return fail(Error, "truncated or corrupt loop record " +
                             std::to_string(I) + " of " +
                             std::to_string(NumLoops));

  Result = std::move(Loaded);
  return true;
}

bool ProfileArtifact::saveToFile(const std::string &Path,
                                 std::string *Error) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return fail(Error, "cannot open " + Path + " for writing");
  if (!writeTo(Out))
    return fail(Error, "I/O error while writing " + Path);
  return true;
}

bool ProfileArtifact::loadFromFile(const std::string &Path,
                                   ProfileArtifact &Result,
                                   std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Error, "cannot open " + Path);
  std::string Reason;
  if (!readFrom(In, Result, &Reason))
    return fail(Error, Path + ": " + Reason);
  return true;
}
