//===- pipeline/JobRunner.cpp - Parallel batch-profiling executor --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"

#include "trace/Canonicalize.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

using namespace ccprof;

JobOutcome ccprof::runJob(const JobSpec &Job, uint64_t TimestampNs) {
  JobOutcome Outcome;
  Outcome.Job = Job;

  std::unique_ptr<Workload> W = makeWorkloadByName(Job.WorkloadName);
  if (!W) {
    Outcome.Error = "unknown workload '" + Job.WorkloadName + "'";
    return Outcome;
  }

  Trace Recorded;
  W->run(Job.Variant, &Recorded);
  // Rebase onto the deterministic canonical layout: artifacts must not
  // depend on where this process's allocator happened to place buffers.
  Trace T = canonicalizeTrace(Recorded);

  BinaryImage Image = W->makeBinary();
  ProgramStructure Structure(Image);
  Profiler P(Job.toProfileOptions());
  Outcome.Artifact.Result =
      Job.Exact ? P.profileExact(T, Structure) : P.profile(T, Structure);
  Outcome.Artifact.Provenance.Job = Job;
  Outcome.Artifact.Provenance.TimestampNs = TimestampNs;
  return Outcome;
}

std::vector<JobOutcome> ccprof::runJobs(
    std::span<const JobSpec> Jobs, unsigned NumThreads, uint64_t TimestampNs,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone) {
  std::vector<JobOutcome> Outcomes(Jobs.size());
  if (Jobs.empty())
    return Outcomes;
  NumThreads = std::max(1u, NumThreads);

  std::atomic<size_t> NextJob{0};
  std::atomic<size_t> NumDone{0};
  std::mutex CallbackMutex;

  auto Worker = [&]() {
    for (size_t I = NextJob.fetch_add(1); I < Jobs.size();
         I = NextJob.fetch_add(1)) {
      Outcomes[I] = runJob(Jobs[I], TimestampNs);
      size_t Done = NumDone.fetch_add(1) + 1;
      if (OnJobDone) {
        std::lock_guard<std::mutex> Lock(CallbackMutex);
        OnJobDone(Outcomes[I], Done);
      }
    }
  };

  if (NumThreads == 1 || Jobs.size() == 1) {
    Worker();
    return Outcomes;
  }

  std::vector<std::thread> Pool;
  const unsigned PoolSize =
      static_cast<unsigned>(std::min<size_t>(NumThreads, Jobs.size()));
  Pool.reserve(PoolSize);
  for (unsigned I = 0; I < PoolSize; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Outcomes;
}
