//===- pipeline/JobRunner.cpp - Parallel batch-profiling executor --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"

#include "analysis/StaticConflictAnalyzer.h"
#include "support/ThreadPool.h"
#include "trace/Canonicalize.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>

using namespace ccprof;

JobOutcome ccprof::runJob(const JobSpec &Job, uint64_t TimestampNs) {
  JobOutcome Outcome;
  Outcome.Job = Job;

  std::unique_ptr<Workload> W = makeWorkloadByName(Job.WorkloadName);
  if (!W) {
    Outcome.Error = "unknown workload '" + Job.WorkloadName + "'";
    return Outcome;
  }

  Trace Recorded;
  W->run(Job.Variant, &Recorded);
  // Rebase onto the deterministic canonical layout: artifacts must not
  // depend on where this process's allocator happened to place buffers.
  Trace T = canonicalizeTrace(Recorded);

  BinaryImage Image = W->makeBinary();
  ProgramStructure Structure(Image);
  Profiler P(Job.toProfileOptions());
  Outcome.Artifact.Result =
      Job.Exact ? P.profileExact(T, Structure) : P.profile(T, Structure);
  Outcome.Artifact.Provenance.Job = Job;
  Outcome.Artifact.Provenance.TimestampNs = TimestampNs;
  return Outcome;
}

namespace {

std::string geometryKey(const CacheGeometry &G) {
  return std::to_string(G.sizeBytes()) + '/' +
         std::to_string(G.lineBytes()) + '/' +
         std::to_string(G.associativity());
}

} // namespace

std::string ccprof::missStreamKeyOf(const JobSpec &Job) {
  const ProfileOptions Options = Job.toProfileOptions();
  std::string Key = Job.WorkloadName + '|' + variantName(Job.Variant) + '|' +
                    levelName(Options.Level) + '|' + geometryKey(Options.L1) +
                    "|pol" +
                    std::to_string(static_cast<int>(Options.MissOptions.Policy)) +
                    (Options.MissOptions.IncludeStores ? "+st" : "");
  // The page mapping only reaches the simulation for physically-indexed
  // levels; folding it into L1 keys would needlessly split the cache
  // across mapping sweeps.
  if (Options.Level == ProfileLevel::L2)
    Key += '|' + geometryKey(Options.L2) + '|' + mappingName(Options.Mapping);
  return Key;
}

std::vector<JobOutcome> ccprof::runJobsShared(
    std::span<const JobSpec> Jobs, unsigned NumThreads, uint64_t TimestampNs,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone,
    MissStreamCache *StreamCache, SharedBatchStats *StatsOut) {
  BatchExecOptions Exec;
  Exec.Workers = std::max(1u, NumThreads);
  // Budget == worker count: sharding appears only when workers go idle
  // (the tail of the group list), so legacy callers keep their exact
  // thread ceiling.
  Exec.SimThreads = Exec.Workers;
  return runJobsShared(Jobs, Exec, TimestampNs, OnJobDone, StreamCache,
                       StatsOut);
}

std::vector<JobOutcome> ccprof::runJobsShared(
    std::span<const JobSpec> Jobs, const BatchExecOptions &Exec,
    uint64_t TimestampNs,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone,
    MissStreamCache *StreamCache, SharedBatchStats *StatsOut,
    std::vector<MrcGroupCurve> *MrcOut) {
  std::vector<JobOutcome> Outcomes(Jobs.size());
  MissStreamCache LocalCache;
  MissStreamCache &Cache = StreamCache ? *StreamCache : LocalCache;
  if (Jobs.empty()) {
    if (StatsOut)
      *StatsOut =
          SharedBatchStats{0, Cache.stats(), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    return Outcomes;
  }

  // Group job indices by (workload, variant) in first-appearance order:
  // one trace generation per group, deterministic group list.
  std::vector<std::vector<size_t>> Groups;
  std::unordered_map<std::string, size_t> GroupOf;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string GroupKey =
        Jobs[I].WorkloadName + '|' + variantName(Jobs[I].Variant);
    auto [It, Inserted] = GroupOf.emplace(GroupKey, Groups.size());
    if (Inserted)
      Groups.emplace_back();
    Groups[It->second].push_back(I);
  }

  // --- Shared thread budget (anti-oversubscription) ---------------------
  // One budget covers batch workers and per-job shard helpers alike:
  // Workers slots are held while a worker runs groups and returned when
  // it exits, so simulations shard exactly when idle capacity exists.
  const unsigned BudgetTotal = std::max(
      1u, Exec.SimThreads != 0 ? Exec.SimThreads
                               : std::thread::hardware_concurrency());
  const unsigned NumWorkers = std::max(
      1u, std::min({Exec.Workers, static_cast<unsigned>(Groups.size()),
                    BudgetTotal}));
  ThreadBudget Budget(BudgetTotal);
  const unsigned Reserved = Budget.tryAcquire(NumWorkers);
  assert(Reserved == NumWorkers && "workers must fit the budget");
  (void)Reserved;

  // An explicit shard count deserves a pool even on a one-slot budget:
  // a zero-worker pool runs every shard inline in the caller (degraded
  // serialized mode), which keeps --shards honored — and counted — at
  // --sim-threads 1 instead of silently ignored.
  std::optional<ThreadPool> ShardPool;
  if (BudgetTotal > 1 || Exec.Shards > 1)
    ShardPool.emplace(BudgetTotal - 1);
  ShardCachePool CachePool;
  ShardExecStats ShardStats;
  // Route-once partition reuse: one cache for the whole run; each
  // group registers a trace identity so the sweep over its configs
  // shares arenas, and releases it when the group's trace dies.
  std::optional<PartitionCache> Partitions;
  if (Exec.PartitionReuse)
    Partitions.emplace(Exec.PartitionCacheBytes);
  SimContext Sim;
  Sim.Pool = ShardPool ? &*ShardPool : nullptr;
  Sim.Budget = &Budget;
  Sim.CachePool = &CachePool;
  Sim.Stats = &ShardStats;
  Sim.Shards = Exec.Shards;
  Sim.MinRefsToShard = Exec.MinRefsToShard;
  Sim.Partitions = Partitions ? &*Partitions : nullptr;

  std::atomic<size_t> NextGroup{0};
  std::atomic<size_t> NumDone{0};
  std::atomic<uint64_t> NumSkipped{0};
  std::atomic<uint64_t> NumScreenedGroups{0};
  std::atomic<uint64_t> NumScreenRefusals{0};
  std::atomic<uint64_t> NumMrcGroups{0};
  std::atomic<uint64_t> NumMrcRouted{0};
  // One slot per group, written only by the worker that owns the group;
  // compacted in group order afterwards so MrcOut is deterministic.
  std::vector<std::optional<MrcGroupCurve>> GroupCurves(
      Exec.Mrc ? Groups.size() : 0);
  std::mutex CallbackMutex;

  auto FinishJob = [&](size_t JobIndex) {
    size_t Done = NumDone.fetch_add(1) + 1;
    if (OnJobDone) {
      std::lock_guard<std::mutex> Lock(CallbackMutex);
      OnJobDone(Outcomes[JobIndex], Done);
    }
  };

  auto Worker = [&]() {
    for (size_t G = NextGroup.fetch_add(1); G < Groups.size();
         G = NextGroup.fetch_add(1)) {
      const std::vector<size_t> &Members = Groups[G];
      const JobSpec &First = Jobs[Members.front()];

      std::unique_ptr<Workload> W = makeWorkloadByName(First.WorkloadName);
      if (!W) {
        for (size_t I : Members) {
          Outcomes[I].Job = Jobs[I];
          Outcomes[I].Error =
              "unknown workload '" + Jobs[I].WorkloadName + "'";
          FinishJob(I);
        }
        continue;
      }

      BinaryImage Image = W->makeBinary();
      ProgramStructure Structure(Image);

      // Sweep-wide static screen: the analyzer runs at every distinct
      // L1 geometry the group's jobs request — each must prove
      // conflict-free at its own shape — and the analytic reuse curve
      // must be flat around every swept point (a curve on a capacity
      // cliff could flip a nearby verdict). All-or-nothing: one dirty
      // or unstable geometry keeps the whole group simulating.
      std::vector<size_t> Pending;
      Pending.reserve(Members.size());
      bool ScreenClean = false;
      if (Exec.StaticScreen) {
        StaticAccessModel Model = W->accessModel(First.Variant);
        std::vector<CacheGeometry> L1Geoms;
        for (size_t I : Members) {
          if (Jobs[I].Level != ProfileLevel::L1)
            continue;
          const CacheGeometry G = Jobs[I].toProfileOptions().L1;
          bool Known = false;
          for (const CacheGeometry &Seen : L1Geoms)
            Known |= Seen.sizeBytes() == G.sizeBytes() &&
                     Seen.lineBytes() == G.lineBytes() &&
                     Seen.associativity() == G.associativity();
          if (!Known)
            L1Geoms.push_back(G);
        }
        if (Model.Complete && !Model.empty() && !L1Geoms.empty()) {
          ScreenClean = true;
          ReuseProfile Program;
          bool HaveProfile = false;
          for (const CacheGeometry &G : L1Geoms) {
            StaticConflictAnalyzer::Options ScreenOpts;
            ScreenOpts.Geometry = G;
            // The screen needs verdicts and the (geometry-free) reuse
            // profile, not sampled curve points.
            ScreenOpts.MrcGeometries.clear();
            StaticAnalysisResult R =
                StaticConflictAnalyzer(ScreenOpts).analyze(Model, &Structure);
            if (!R.conflictFree() || !R.ReuseEstimated) {
              ScreenClean = false;
              break;
            }
            if (!HaveProfile) {
              Program = std::move(R.ProgramReuse);
              HaveProfile = true;
            }
          }
          // Stability guard: the predicted miss ratio may move at most
          // ScreenStabilityMargin when each swept geometry grows its
          // set count by 10%.
          if (ScreenClean && HaveProfile) {
            for (const CacheGeometry &G : L1Geoms) {
              const uint64_t GrownSets = G.numSets() + (G.numSets() + 9) / 10;
              const CacheGeometry Grown(GrownSets * G.lineBytes() *
                                            G.associativity(),
                                        G.lineBytes(), G.associativity());
              const double Drift = std::abs(Program.missRatioAt(G) -
                                            Program.missRatioAt(Grown));
              if (Drift > Exec.ScreenStabilityMargin) {
                ScreenClean = false;
                break;
              }
            }
          }
          if (!ScreenClean)
            NumScreenRefusals.fetch_add(1);
        }
      }
      for (size_t I : Members) {
        if (ScreenClean && Jobs[I].Level == ProfileLevel::L1) {
          Outcomes[I].Job = Jobs[I];
          Outcomes[I].Skipped = true;
          NumSkipped.fetch_add(1);
          FinishJob(I);
        } else {
          Pending.push_back(I);
        }
      }
      if (Pending.empty()) {
        NumScreenedGroups.fetch_add(1);
        continue;
      }

      // The expensive shared phase, once per group: run the workload,
      // record its references, canonicalize, recover the program
      // structure.
      Trace Recorded;
      W->run(First.Variant, &Recorded);
      Trace T = canonicalizeTrace(Recorded);

      // A per-group context carrying the group trace's identity: every
      // simulation and MRC pass of this group routes through the
      // partition cache under one key family, and the entries die with
      // the trace at the end of the group.
      SimContext GroupSim = Sim;
      if (Partitions) {
        GroupSim.Partitions = &*Partitions;
        GroupSim.TraceId = Partitions->registerTrace();
      }

      // MRC routing: one stack-distance pass answers every L1 LRU job
      // of the group at once; only the rest still simulates. The
      // predictions land in the group's curve, not in artifacts.
      std::vector<size_t> Simulated;
      if (Exec.Mrc) {
        std::vector<size_t> Routed;
        for (size_t I : Pending) {
          const ProfileOptions Options = Jobs[I].toProfileOptions();
          if (Jobs[I].Level == ProfileLevel::L1 &&
              Options.MissOptions.Policy == ReplacementKind::Lru)
            Routed.push_back(I);
          else
            Simulated.push_back(I);
        }
        if (!Routed.empty()) {
          MrcOptions MrcOpts = Exec.MrcConfig;
          MrcOpts.Reference = Jobs[Routed.front()].toProfileOptions().L1;
          const MissRatioCurve Curve =
              MrcEngine::compute(T, MrcOpts, GroupSim);

          std::vector<CacheGeometry> Geometries;
          Geometries.reserve(Routed.size() + Exec.MrcSweep.size());
          for (size_t I : Routed)
            Geometries.push_back(Jobs[I].toProfileOptions().L1);
          Geometries.insert(Geometries.end(), Exec.MrcSweep.begin(),
                            Exec.MrcSweep.end());
          auto Shape = [](const CacheGeometry &Geometry) {
            return std::make_tuple(Geometry.sizeBytes(), Geometry.lineBytes(),
                                   Geometry.associativity());
          };
          std::sort(Geometries.begin(), Geometries.end(),
                    [&](const CacheGeometry &A, const CacheGeometry &B) {
                      return Shape(A) < Shape(B);
                    });
          Geometries.erase(
              std::unique(Geometries.begin(), Geometries.end()),
              Geometries.end());

          MrcGroupCurve GroupCurve;
          GroupCurve.WorkloadName = First.WorkloadName;
          GroupCurve.Variant = First.Variant;
          GroupCurve.TraceRefs = Curve.TotalRefs;
          GroupCurve.Sampled = Curve.Sampled;
          GroupCurve.FinalRate = Curve.FinalRate;
          GroupCurve.RoutedJobs = Routed.size();
          GroupCurve.Points.reserve(Geometries.size());
          for (const CacheGeometry &Geometry : Geometries)
            GroupCurve.Points.push_back(MrcPoint{
                Geometry, Curve.missRatioAt(Geometry),
                Curve.isExactAt(Geometry)});
          GroupCurves[G] = std::move(GroupCurve);
          NumMrcGroups.fetch_add(1);
          NumMrcRouted.fetch_add(Routed.size());

          for (size_t I : Routed) {
            Outcomes[I].Job = Jobs[I];
            Outcomes[I].MrcPredicted = true;
            FinishJob(I);
          }
        }
      } else {
        Simulated = Pending;
      }

      for (size_t I : Simulated) {
        const JobSpec &Job = Jobs[I];
        Profiler P(Job.toProfileOptions());
        MissStreamCache::StreamPtr Stream = Cache.getOrCompute(
            missStreamKeyOf(Job),
            [&] { return P.collectMissStream(T, GroupSim); });

        JobOutcome &Out = Outcomes[I];
        Out.Job = Job;
        Out.Artifact.Result =
            P.profileWithStream(T, Structure, *Stream, Job.Exact);
        Out.Artifact.Provenance.Job = Job;
        Out.Artifact.Provenance.TimestampNs = TimestampNs;
        FinishJob(I);
      }
      // The group's trace dies with this iteration; its arenas index
      // into it by sequence number and must go with it.
      if (Partitions && GroupSim.TraceId != 0)
        Partitions->releaseTrace(GroupSim.TraceId);
    }
    // Hand the slot back so in-flight simulations on other workers can
    // fan out over the freed capacity (the run-tail sharding window).
    Budget.release(1);
  };

  if (NumWorkers == 1 || Groups.size() == 1) {
    Worker();
  } else {
    std::vector<std::thread> BatchPool;
    BatchPool.reserve(NumWorkers);
    for (unsigned I = 0; I < NumWorkers; ++I)
      BatchPool.emplace_back(Worker);
    for (std::thread &T : BatchPool)
      T.join();
  }

  if (StatsOut)
    *StatsOut = SharedBatchStats{Groups.size(), Cache.stats(),
                                 CachePool.reuses(), NumSkipped.load(),
                                 NumScreenedGroups.load(),
                                 NumScreenRefusals.load(),
                                 ShardStats.ShardedSims.load(),
                                 ShardStats.UnhelpedShardedSims.load(),
                                 NumMrcGroups.load(), NumMrcRouted.load(),
                                 ShardStats.PartitionBuilds.load(),
                                 ShardStats.PartitionReuses.load()};
  if (MrcOut) {
    MrcOut->clear();
    for (std::optional<MrcGroupCurve> &Curve : GroupCurves)
      if (Curve)
        MrcOut->push_back(std::move(*Curve));
  }
  return Outcomes;
}

std::vector<JobOutcome> ccprof::runJobs(
    std::span<const JobSpec> Jobs, unsigned NumThreads, uint64_t TimestampNs,
    const std::function<void(const JobOutcome &, size_t)> &OnJobDone) {
  std::vector<JobOutcome> Outcomes(Jobs.size());
  if (Jobs.empty())
    return Outcomes;
  NumThreads = std::max(1u, NumThreads);

  std::atomic<size_t> NextJob{0};
  std::atomic<size_t> NumDone{0};
  std::mutex CallbackMutex;

  auto Worker = [&]() {
    for (size_t I = NextJob.fetch_add(1); I < Jobs.size();
         I = NextJob.fetch_add(1)) {
      Outcomes[I] = runJob(Jobs[I], TimestampNs);
      size_t Done = NumDone.fetch_add(1) + 1;
      if (OnJobDone) {
        std::lock_guard<std::mutex> Lock(CallbackMutex);
        OnJobDone(Outcomes[I], Done);
      }
    }
  };

  if (NumThreads == 1 || Jobs.size() == 1) {
    Worker();
    return Outcomes;
  }

  std::vector<std::thread> Pool;
  const unsigned PoolSize =
      static_cast<unsigned>(std::min<size_t>(NumThreads, Jobs.size()));
  Pool.reserve(PoolSize);
  for (unsigned I = 0; I < PoolSize; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Outcomes;
}
