//===- service/IngestQueue.h - Bounded ingest work queue -------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded multi-producer / multi-consumer queue between ccprofd's
/// ingress surfaces (socket listener, drop-directory watcher, the
/// in-process submit API) and its worker threads. Capacity is the
/// backpressure mechanism: push() blocks the producer while the queue
/// is full — a socket client streaming uploads simply stalls until
/// workers catch up — while tryPush() refuses instead, for ingress
/// paths (the watcher) that would rather retry on the next poll than
/// pin a thread. Every transition is counted, so /stats can report
/// queue depth, peak depth, and how often backpressure engaged.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SERVICE_INGESTQUEUE_H
#define CCPROF_SERVICE_INGESTQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

namespace ccprof {

/// What an upload claims to be. Artifact payloads are .ccpa capsules;
/// trace payloads are .cctr recordings the daemon profiles on arrival.
enum class IngestKind { Artifact, Trace };

/// One queued upload: the raw payload plus the attribution the ingress
/// surface captured.
struct IngestRequest {
  IngestKind Kind = IngestKind::Artifact;
  /// Workload name for traces (the daemon needs the program structure
  /// to profile against); free-form label for artifacts.
  std::string Name;
  /// Per-client accounting key ("ci-runner-7", "socket:anon", ...).
  std::string Client;
  /// The upload's bytes, exactly as received.
  std::string Bytes;
  /// Where the payload came from (file path or "socket") — diagnostics
  /// only, never interpreted.
  std::string Source;
};

/// Counters of one queue's lifetime, all monotonic except Depth.
struct IngestQueueStats {
  uint64_t Enqueued = 0;
  uint64_t Dequeued = 0;
  /// tryPush refusals — how often backpressure turned work away.
  uint64_t Rejected = 0;
  /// push() calls that had to wait for space at least once.
  uint64_t Stalls = 0;
  uint64_t PeakDepth = 0;
  uint64_t Depth = 0;
  uint64_t Capacity = 0;
};

/// Bounded MPMC queue of IngestRequests. All methods are thread-safe.
class IngestQueue {
public:
  /// \p Capacity bounds queued requests (clamped to >= 1).
  explicit IngestQueue(size_t Capacity);

  /// Enqueues \p Req, blocking while the queue is full. \returns false
  /// (dropping the request) only when the queue is closed.
  bool push(IngestRequest Req);

  /// Enqueues \p Req if space is free right now; a full or closed
  /// queue refuses and counts a rejection.
  bool tryPush(IngestRequest Req);

  /// Dequeues the oldest request, blocking while the queue is empty.
  /// \returns nullopt once the queue is closed and drained — the
  /// worker's signal to exit.
  std::optional<IngestRequest> pop();

  /// Wakes every blocked producer and consumer; subsequent pushes
  /// fail, pops drain what remains.
  void close();

  /// Blocks until the queue is empty (requests may still be *being
  /// processed*; emptiness only means nothing is waiting).
  void waitDrained();

  size_t depth() const;
  IngestQueueStats stats() const;

private:
  mutable std::mutex Mutex;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::condition_variable Drained;
  std::deque<IngestRequest> Items;
  size_t Capacity;
  bool Closed = false;
  uint64_t Enqueued = 0;
  uint64_t Dequeued = 0;
  uint64_t Rejected = 0;
  uint64_t Stalls = 0;
  uint64_t PeakDepth = 0;
};

} // namespace ccprof

#endif // CCPROF_SERVICE_INGESTQUEUE_H
