//===- service/RegressionMonitor.h - Fleet regression detection -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-level regression detection for ccprofd: every ingested
/// artifact is diffed against a rolling baseline of its *workload
/// lineage* — the job identity with variant, repeat, and seed struck.
/// Striking the variant is the point: "orig" vs "opt" (or any pair of
/// code versions profiled under the same cache level, mapping, and
/// sampling config) land on the same baseline, so the monitor sees a
/// code change as a before/after pair and can say which loops *became*
/// conflicts, exactly the paper's motivating use (catch the conflict
/// the code change introduced, without a full re-profile of the
/// fleet).
///
/// Alert policy: a paired loop that flipped clean -> conflict, or a
/// conflicting loop newly appearing, raises NewConflictLoop; a
/// conflicting loop whose miss contribution grew past an absolute
/// delta, or a global miss-ratio increase past a relative delta,
/// raises MissRatioDegraded. Ingests that raise nothing are absorbed
/// into the baseline (merged when compatible, adopted when the lineage
/// moved to a new configuration), so the baseline tracks the fleet's
/// healthy state; alerting ingests leave the baseline untouched and
/// keep alerting until the regression is fixed or becomes the new
/// baseline via a clean ingest.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SERVICE_REGRESSIONMONITOR_H
#define CCPROF_SERVICE_REGRESSIONMONITOR_H

#include "pipeline/ProfileArtifact.h"

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ccprof {

/// The baseline identity of \p Job: workload + cache level + mapping +
/// sampler + period + threshold (+ exact), with variant, repeat, and
/// seed struck so different code versions of one workload share a
/// baseline.
std::string baselineKeyOf(const JobSpec &Job);

/// What a regression alert is about.
enum class AlertKind {
  /// A loop that was clean (or absent) in the baseline is a conflict
  /// in the ingested profile.
  NewConflictLoop,
  /// Miss traffic degraded: a conflicting loop's miss contribution
  /// grew past the absolute delta, or the profile's global miss ratio
  /// grew past the relative delta.
  MissRatioDegraded,
};

/// Machine-stable identifier of \p Kind ("new_conflict_loop", ...).
const char *alertKindId(AlertKind Kind);

/// One raised alert.
struct RegressionAlert {
  AlertKind Kind = AlertKind::NewConflictLoop;
  /// Monotonic id, unique within one monitor's lifetime.
  uint64_t Sequence = 0;
  std::string BaselineKey;
  /// Client whose ingest triggered the alert.
  std::string Client;
  /// Job key of the offending artifact.
  std::string JobKey;
  /// Loop location, or empty for a profile-global alert.
  std::string Location;
  /// The metric that moved: cf for NewConflictLoop, miss contribution
  /// or miss ratio for MissRatioDegraded.
  double Before = 0.0;
  double After = 0.0;
  /// Human-readable one-liner.
  std::string Detail;
};

/// One-line JSON record of \p Alert (the /stats and log format).
std::string renderAlertJson(const RegressionAlert &Alert);

/// Alerting thresholds.
struct RegressionMonitorConfig {
  /// Contribution-factor drift tolerance forwarded to the diff.
  double CfTolerance = 0.05;
  /// Absolute growth of a conflicting loop's miss contribution that
  /// raises MissRatioDegraded.
  double MissContributionDelta = 0.05;
  /// Relative growth of the global miss ratio that raises
  /// MissRatioDegraded.
  double MissRatioRelativeDelta = 0.10;
  /// Most recent alerts retained for /stats.
  size_t MaxRetainedAlerts = 256;
};

/// Monitor counters.
struct RegressionMonitorStats {
  uint64_t Observations = 0;
  uint64_t Baselines = 0;
  uint64_t BaselineUpdates = 0;
  uint64_t AlertsRaised = 0;
};

/// Thread-safe rolling-baseline regression detector. One instance
/// serves all daemon workers.
class RegressionMonitor {
public:
  explicit RegressionMonitor(RegressionMonitorConfig Config = {});

  /// Diffs \p Incoming against its lineage baseline and returns the
  /// alerts raised (empty on the first sighting of a lineage, which
  /// only seeds the baseline).
  std::vector<RegressionAlert> observe(const ProfileArtifact &Incoming,
                                       const std::string &Client);

  /// Copies the current baseline of \p Key into \p Out.
  /// \returns false when the lineage is unknown.
  bool baselineFor(const std::string &Key, ProfileArtifact &Out) const;

  /// The most recent alerts, oldest first, at most \p Max.
  std::vector<RegressionAlert> recentAlerts(size_t Max = 32) const;

  RegressionMonitorStats stats() const;

private:
  RegressionMonitorConfig Config;
  mutable std::mutex Mutex;
  std::map<std::string, ProfileArtifact> BaselineByKey;
  std::deque<RegressionAlert> Recent;
  uint64_t Observations = 0;
  uint64_t BaselineUpdates = 0;
  uint64_t AlertsRaised = 0;
  uint64_t NextSequence = 1;
};

} // namespace ccprof

#endif // CCPROF_SERVICE_REGRESSIONMONITOR_H
