//===- service/RegressionMonitor.cpp - Fleet regression detection --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/RegressionMonitor.h"

#include "pipeline/Diff.h"
#include "pipeline/Merge.h"
#include "support/Json.h"

#include <algorithm>
#include <sstream>

using namespace ccprof;

std::string ccprof::baselineKeyOf(const JobSpec &Job) {
  std::ostringstream Key;
  Key << Job.WorkloadName << '|' << levelName(Job.Level) << '|'
      << mappingName(Job.Mapping) << '|' << samplerName(Job.Sampler) << "|p"
      << Job.MeanPeriod << "|t" << Job.RcdThreshold;
  if (Job.Exact)
    Key << "|exact";
  return Key.str();
}

const char *ccprof::alertKindId(AlertKind Kind) {
  switch (Kind) {
  case AlertKind::NewConflictLoop:
    return "new_conflict_loop";
  case AlertKind::MissRatioDegraded:
    return "miss_ratio_degraded";
  }
  return "unknown";
}

std::string ccprof::renderAlertJson(const RegressionAlert &Alert) {
  std::ostringstream Out;
  Out << "{\"kind\":" << json::quote(alertKindId(Alert.Kind))
      << ",\"seq\":" << Alert.Sequence
      << ",\"baseline\":" << json::quote(Alert.BaselineKey)
      << ",\"client\":" << json::quote(Alert.Client)
      << ",\"job\":" << json::quote(Alert.JobKey);
  if (!Alert.Location.empty())
    Out << ",\"loop\":" << json::quote(Alert.Location);
  Out << ",\"before\":" << json::number(Alert.Before)
      << ",\"after\":" << json::number(Alert.After)
      << ",\"detail\":" << json::quote(Alert.Detail) << "}";
  return Out.str();
}

RegressionMonitor::RegressionMonitor(RegressionMonitorConfig ConfigIn)
    : Config(ConfigIn) {}

std::vector<RegressionAlert>
RegressionMonitor::observe(const ProfileArtifact &Incoming,
                           const std::string &Client) {
  const std::string Key = baselineKeyOf(Incoming.Provenance.Job);
  const std::string JobKey = Incoming.Provenance.Job.key();

  std::lock_guard<std::mutex> Lock(Mutex);
  ++Observations;

  auto It = BaselineByKey.find(Key);
  if (It == BaselineByKey.end()) {
    // First sighting of this lineage: nothing to compare against yet.
    BaselineByKey.emplace(Key, Incoming);
    ++BaselineUpdates;
    return {};
  }
  const ProfileArtifact &Baseline = It->second;

  std::vector<RegressionAlert> Alerts;
  auto raise = [&](AlertKind Kind, const std::string &Location, double Before,
                   double After, std::string Detail) {
    RegressionAlert Alert;
    Alert.Kind = Kind;
    Alert.Sequence = NextSequence++;
    Alert.BaselineKey = Key;
    Alert.Client = Client;
    Alert.JobKey = JobKey;
    Alert.Location = Location;
    Alert.Before = Before;
    Alert.After = After;
    Alert.Detail = std::move(Detail);
    Alerts.push_back(std::move(Alert));
  };

  DiffOptions Options;
  Options.CfTolerance = Config.CfTolerance;
  const DiffResult Diff = diffArtifacts(Baseline, Incoming, Options);
  for (const LoopDiff &Loop : Diff.Loops) {
    if (Loop.Change == LoopChange::BecameConflict)
      raise(AlertKind::NewConflictLoop, Loop.Location, Loop.CfA, Loop.CfB,
            "loop flipped clean -> conflict vs baseline");
    else if (Loop.Change == LoopChange::OnlyInB && Loop.ConflictB)
      raise(AlertKind::NewConflictLoop, Loop.Location, 0.0, Loop.CfB,
            "conflicting loop absent from baseline");
    else if (Loop.ConflictA && Loop.ConflictB &&
             Loop.MissContributionB - Loop.MissContributionA >
                 Config.MissContributionDelta)
      raise(AlertKind::MissRatioDegraded, Loop.Location,
            Loop.MissContributionA, Loop.MissContributionB,
            "conflicting loop's miss contribution grew");
  }

  const double RatioA = Baseline.Result.L1MissRatio;
  const double RatioB = Incoming.Result.L1MissRatio;
  if (RatioA > 0.0 &&
      (RatioB - RatioA) / RatioA > Config.MissRatioRelativeDelta)
    raise(AlertKind::MissRatioDegraded, "", RatioA, RatioB,
          "global miss ratio grew vs baseline");

  if (Alerts.empty()) {
    // A clean ingest refines the baseline: pooled in when it is the
    // same configuration, adopted when the lineage moved to a new one
    // (different variant / sampling seed regime) — either way the
    // baseline tracks the healthy state.
    if (mergeCompatible(Baseline, Incoming)) {
      const ProfileArtifact Inputs[2] = {Baseline, Incoming};
      MergeResult Merged = mergeArtifacts(Inputs);
      if (Merged.ok())
        It->second = std::move(Merged.Merged);
    } else {
      It->second = Incoming;
    }
    ++BaselineUpdates;
  } else {
    AlertsRaised += Alerts.size();
    for (const RegressionAlert &Alert : Alerts) {
      Recent.push_back(Alert);
      if (Recent.size() > Config.MaxRetainedAlerts)
        Recent.pop_front();
    }
  }
  return Alerts;
}

bool RegressionMonitor::baselineFor(const std::string &Key,
                                    ProfileArtifact &Out) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = BaselineByKey.find(Key);
  if (It == BaselineByKey.end())
    return false;
  Out = It->second;
  return true;
}

std::vector<RegressionAlert> RegressionMonitor::recentAlerts(size_t Max) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const size_t Count = std::min(Max, Recent.size());
  return std::vector<RegressionAlert>(Recent.end() - Count, Recent.end());
}

RegressionMonitorStats RegressionMonitor::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  RegressionMonitorStats S;
  S.Observations = Observations;
  S.Baselines = BaselineByKey.size();
  S.BaselineUpdates = BaselineUpdates;
  S.AlertsRaised = AlertsRaised;
  return S;
}
