//===- service/IngestQueue.cpp - Bounded ingest work queue ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/IngestQueue.h"

#include <algorithm>

using namespace ccprof;

IngestQueue::IngestQueue(size_t Capacity)
    : Capacity(std::max<size_t>(1, Capacity)) {}

bool IngestQueue::push(IngestRequest Req) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Items.size() >= Capacity && !Closed)
    ++Stalls;
  NotFull.wait(Lock, [this] { return Items.size() < Capacity || Closed; });
  if (Closed)
    return false;
  Items.push_back(std::move(Req));
  ++Enqueued;
  PeakDepth = std::max<uint64_t>(PeakDepth, Items.size());
  NotEmpty.notify_one();
  return true;
}

bool IngestQueue::tryPush(IngestRequest Req) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed || Items.size() >= Capacity) {
    ++Rejected;
    return false;
  }
  Items.push_back(std::move(Req));
  ++Enqueued;
  PeakDepth = std::max<uint64_t>(PeakDepth, Items.size());
  NotEmpty.notify_one();
  return true;
}

std::optional<IngestRequest> IngestQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotEmpty.wait(Lock, [this] { return !Items.empty() || Closed; });
  if (Items.empty())
    return std::nullopt;
  IngestRequest Req = std::move(Items.front());
  Items.pop_front();
  ++Dequeued;
  NotFull.notify_one();
  if (Items.empty())
    Drained.notify_all();
  return Req;
}

void IngestQueue::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Closed = true;
  NotFull.notify_all();
  NotEmpty.notify_all();
  Drained.notify_all();
}

void IngestQueue::waitDrained() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Drained.wait(Lock, [this] { return Items.empty(); });
}

size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Items.size();
}

IngestQueueStats IngestQueue::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  IngestQueueStats S;
  S.Enqueued = Enqueued;
  S.Dequeued = Dequeued;
  S.Rejected = Rejected;
  S.Stalls = Stalls;
  S.PeakDepth = PeakDepth;
  S.Depth = Items.size();
  S.Capacity = Capacity;
  return S;
}
