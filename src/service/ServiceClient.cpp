//===- service/ServiceClient.cpp - ccprofd socket client -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/ServiceClient.h"

#include "trace/BinaryIO.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ccprof;
namespace fs = std::filesystem;

namespace {

int connectTo(const std::string &SocketPath, std::string *Error) {
  sockaddr_un Addr{};
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    *Error = "socket path too long: " + SocketPath;
    return -1;
  }
  const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    *Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0) {
    *Error = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool writeAll(int Fd, std::string_view Bytes, std::string *Error) {
  while (!Bytes.empty()) {
    const ssize_t N = ::write(Fd, Bytes.data(), Bytes.size());
    if (N <= 0) {
      *Error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

bool readLine(int Fd, std::string &Line, std::string *Error) {
  Line.clear();
  char C = 0;
  for (;;) {
    const ssize_t N = ::read(Fd, &C, 1);
    if (N <= 0) {
      *Error = N == 0 ? "connection closed before reply"
                      : std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (C == '\n')
      return true;
    Line.push_back(C);
  }
}

/// Connects, sends \p Request (plus optional \p Payload), reads one
/// reply line.
ServiceReply roundTrip(const std::string &SocketPath,
                       const std::string &Request,
                       std::string_view Payload = {}) {
  ServiceReply Reply;
  const int Fd = connectTo(SocketPath, &Reply.Error);
  if (Fd < 0)
    return Reply;
  if (!writeAll(Fd, Request, &Reply.Error) ||
      (!Payload.empty() && !writeAll(Fd, Payload, &Reply.Error)) ||
      !readLine(Fd, Reply.Line, &Reply.Error)) {
    ::close(Fd);
    return Reply;
  }
  ::close(Fd);
  Reply.Ok = Reply.Line.rfind("ERR", 0) != 0;
  return Reply;
}

} // namespace

ServiceReply ccprof::serviceSubmitBytes(const std::string &SocketPath,
                                        const std::string &Client,
                                        const std::string &Kind,
                                        const std::string &Name,
                                        const std::string &Bytes) {
  std::ostringstream Header;
  Header << "PUT " << (Client.empty() ? "anon" : Client) << ' ' << Kind << ' '
         << (Name.empty() ? "-" : Name) << ' ' << Bytes.size() << '\n';
  return roundTrip(SocketPath, Header.str(), Bytes);
}

ServiceReply ccprof::serviceSubmitFile(const std::string &SocketPath,
                                       const std::string &Client,
                                       const std::string &FilePath,
                                       const std::string &Name) {
  ServiceReply Reply;
  const std::string Ext = fs::path(FilePath).extension().string();
  const bool IsTrace = Ext == ".cctr";
  if (!IsTrace && Ext != ".ccpa") {
    Reply.Error = "unsupported upload extension '" + Ext +
                  "' (expected .ccpa or .cctr): " + FilePath;
    return Reply;
  }
  std::ifstream In(FilePath, std::ios::binary);
  if (!In) {
    Reply.Error = "cannot open " + FilePath;
    return Reply;
  }
  std::string Label = Name;
  if (Label.empty()) {
    // Default the label to the stem up to the first '.', matching the
    // daemon's drop-directory convention for trace workload names.
    Label = fs::path(FilePath).filename().string();
    const size_t Dot = Label.find('.');
    if (Dot != std::string::npos)
      Label.resize(Dot);
  }
  return serviceSubmitBytes(SocketPath, Client, IsTrace ? "cctr" : "ccpa",
                            Label, bio::readAll(In));
}

ServiceReply ccprof::serviceQueryStats(const std::string &SocketPath) {
  return roundTrip(SocketPath, "STATS\n");
}

ServiceReply ccprof::servicePing(const std::string &SocketPath) {
  ServiceReply Reply = roundTrip(SocketPath, "PING\n");
  Reply.Ok = Reply.Line == "PONG";
  return Reply;
}
