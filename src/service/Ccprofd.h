//===- service/Ccprofd.h - Profile-ingest daemon ---------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ccprofd: the daemonized profile-ingest service behind
/// `ccprof serve`. It accepts .ccpa capsules (and raw .cctr traces,
/// which it profiles on arrival) from two ingress surfaces — a
/// Unix-domain-socket line protocol and a watched drop directory —
/// pushes them through a bounded IngestQueue into worker threads, and
/// lands every upload in a content-addressed ServiceStore that
/// maintains rolling per-group aggregates and a fleet-level
/// RegressionMonitor. Duplicate uploads (client retries, watcher
/// re-scans) dedup by content hash, so delivery is at-least-once safe
/// end to end.
///
/// Socket protocol (line-oriented, one request per line):
///
///   PUT <client> <ccpa|cctr> <name> <nbytes>\n<payload>
///       -> "OK queued\n" once the payload is in the queue (the write
///          blocks while the queue is full — backpressure reaches the
///          client), or "ERR <why>\n".
///   STATS\n  -> one line of JSON (queue depth, ingests/sec, dedup
///               hits, per-client accounting, recent alerts).
///   PING\n   -> "PONG\n".
///
/// Drop directory: files named *.ccpa or *.cctr are claimed by rename,
/// ingested, and removed; the claim-by-rename makes concurrent
/// watchers (or a watcher racing the producer) safe, and a full queue
/// simply defers the file to the next poll. For traces the filename
/// stem names the workload to profile against.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SERVICE_CCPROFD_H
#define CCPROF_SERVICE_CCPROFD_H

#include "service/IngestQueue.h"
#include "service/RegressionMonitor.h"
#include "service/ServiceStore.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccprof {

/// Everything `ccprof serve` configures.
struct ServiceConfig {
  /// Root of the ServiceStore (objects/ + aggregates/ live under it).
  std::string StoreDir = "ccprofd-store";
  /// Unix-domain socket path; empty disables the socket surface.
  std::string SocketPath;
  /// Drop directory to watch; empty disables the watcher.
  std::string WatchDir;
  unsigned Workers = 1;
  size_t QueueCapacity = 64;
  /// Drop-directory poll interval.
  unsigned PollMs = 200;
  /// Drain the drop directory once and exit (CI smoke mode); the
  /// socket surface stays off.
  bool Once = false;
  RegressionMonitorConfig Monitor;
};

/// Per-client accounting, keyed by the client label uploads carry.
struct ClientStats {
  uint64_t Received = 0;
  uint64_t Bytes = 0;
  uint64_t Deduped = 0;
  uint64_t Errors = 0;
  uint64_t Alerts = 0;
};

/// The daemon. Lifecycle: construct -> start() -> stop() (or
/// runOnce() for the drain-and-exit mode). One instance owns the
/// store, the monitor, the queue, and every service thread.
class Ccprofd {
public:
  explicit Ccprofd(ServiceConfig Config);
  ~Ccprofd();

  Ccprofd(const Ccprofd &) = delete;
  Ccprofd &operator=(const Ccprofd &) = delete;

  /// Opens the store and starts workers plus the configured ingress
  /// surfaces. \returns false with \p Error set when the store or
  /// socket cannot be set up.
  bool start(std::string *Error);

  /// Drains the queue, stops every thread, removes the socket file.
  /// Idempotent.
  void stop();

  /// The --once mode: open the store, ingest the drop directory's
  /// current contents (and anything submitted in-process), and return
  /// once the queue is drained. No socket, no watcher thread.
  bool runOnce(std::string *Error);

  /// In-process ingress (the test and bench surface): blocks while the
  /// queue is full. \returns false once the daemon is stopping.
  bool submit(IngestRequest Request);

  /// One line of JSON: uptime, queue, store, monitor, and per-client
  /// counters plus the most recent alerts.
  std::string statsJson() const;

  /// Alerts raised since start, oldest first (capped by the monitor's
  /// retention).
  std::vector<RegressionAlert> recentAlerts(size_t Max = 32) const;

  /// Invoked (from worker threads, serialized) for every alert the
  /// monitor raises — the daemon's log hook. Set before start().
  void setAlertSink(std::function<void(const RegressionAlert &)> Sink);

  ServiceStore &store() { return Store; }
  RegressionMonitor &monitor() { return Monitor; }
  const ServiceConfig &config() const { return Config; }

  /// Requests processed to completion (success or error) since start.
  uint64_t processed() const { return Processed.load(); }

private:
  void workerLoop();
  void watcherLoop();
  void listenerLoop();
  /// Scans the drop directory once; \returns files enqueued and, via
  /// \p DeferredOut, how many a full queue deferred to the next poll.
  size_t scanDropDirOnce(size_t *DeferredOut = nullptr);
  void processRequest(const IngestRequest &Request);
  void handleConnection(int Fd);
  void noteClient(const std::string &Client, size_t Bytes, bool Dedup,
                  bool Error, size_t Alerts);

  ServiceConfig Config;
  ServiceStore Store;
  RegressionMonitor Monitor;
  IngestQueue Queue;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};
  std::atomic<uint64_t> Processed{0};
  std::atomic<uint64_t> IngestErrors{0};
  std::chrono::steady_clock::time_point StartTime;

  std::vector<std::thread> WorkerThreads;
  std::thread WatcherThread;
  std::thread ListenerThread;
  int ListenFd = -1;

  mutable std::mutex ClientMutex;
  std::map<std::string, ClientStats> Clients;

  std::function<void(const RegressionAlert &)> AlertSink;
};

} // namespace ccprof

#endif // CCPROF_SERVICE_CCPROFD_H
