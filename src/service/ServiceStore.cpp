//===- service/ServiceStore.cpp - Concurrent content-addressed store -----===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/ServiceStore.h"

#include "pipeline/Merge.h"
#include "trace/BinaryIO.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace ccprof;
namespace fs = std::filesystem;

uint64_t ccprof::contentHash(std::string_view Bytes) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (char C : Bytes) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

std::string ccprof::aggregateKeyOf(const JobSpec &Job) {
  JobSpec Norm = Job;
  Norm.Repeat = 0;
  return Norm.key();
}

void ccprof::canonicalizeAggregate(ProfileArtifact &Aggregate) {
  Aggregate.Provenance.Job.Repeat = 0;
  Aggregate.Provenance.TimestampNs = 0;
  Aggregate.Provenance.Tool = "ccprofd-1";
  // Total order on every row the merge only partially ordered: ties on
  // the sample count fall back to the (unique) name, so the serialized
  // bytes are a pure function of the pooled content.
  std::stable_sort(Aggregate.Result.Loops.begin(),
                   Aggregate.Result.Loops.end(),
                   [](const LoopConflictReport &A,
                      const LoopConflictReport &B) {
                     if (A.Samples != B.Samples)
                       return A.Samples > B.Samples;
                     return A.Location < B.Location;
                   });
  for (LoopConflictReport &Loop : Aggregate.Result.Loops)
    std::stable_sort(Loop.DataStructures.begin(), Loop.DataStructures.end(),
                     [](const DataStructureReport &A,
                        const DataStructureReport &B) {
                       if (A.Samples != B.Samples)
                         return A.Samples > B.Samples;
                       return A.Name < B.Name;
                     });
}

namespace {

std::string hashHex(uint64_t Hash) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx",
                static_cast<unsigned long long>(Hash));
  return Buf;
}

/// The content-addressed object filename: "<job-key>-h<hash>.ccpa".
std::string objectFileName(const JobSpec &Job, uint64_t Hash) {
  return Job.key() + "-h" + hashHex(Hash) + ArtifactExtension;
}

/// Recovers the content hash a "...-h<16 hex>.ccpa" filename carries.
/// \returns false for names that do not follow the convention (e.g. a
/// file dropped into objects/ by hand).
bool parseObjectHash(const std::string &Path, uint64_t &Hash) {
  const std::string Name = fs::path(Path).filename().string();
  const std::string Ext = ArtifactExtension;
  // "-h" + 16 hex digits + extension.
  if (Name.size() < 18 + Ext.size())
    return false;
  const size_t HexStart = Name.size() - Ext.size() - 16;
  if (Name.compare(HexStart - 2, 2, "-h") != 0)
    return false;
  uint64_t Parsed = 0;
  for (size_t I = HexStart; I < HexStart + 16; ++I) {
    const char C = Name[I];
    uint64_t Digit = 0;
    if (C >= '0' && C <= '9')
      Digit = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<uint64_t>(C - 'a') + 10;
    else
      return false;
    Parsed = (Parsed << 4) | Digit;
  }
  Hash = Parsed;
  return true;
}

/// Derives the merge-group key from a conforming object filename by
/// stripping the "-h<hash>" content suffix and normalizing the
/// trailing repeat component ("-r<N>" -> "-r0"). \returns false for
/// names that do not follow the convention.
bool parseObjectGroup(const std::string &Path, std::string &Group) {
  const std::string Name = fs::path(Path).filename().string();
  const std::string Ext = ArtifactExtension;
  if (Name.size() < 18 + Ext.size())
    return false;
  const size_t HexStart = Name.size() - Ext.size() - 16;
  if (Name.compare(HexStart - 2, 2, "-h") != 0)
    return false;
  const std::string Key = Name.substr(0, HexStart - 2);
  const size_t RPos = Key.rfind("-r");
  if (RPos == std::string::npos || RPos + 2 >= Key.size())
    return false;
  for (size_t I = RPos + 2; I < Key.size(); ++I)
    if (Key[I] < '0' || Key[I] > '9')
      return false;
  Group = Key.substr(0, RPos) + "-r0";
  return true;
}

} // namespace

ServiceStore::ServiceStore(std::string RootDirIn)
    : RootDir(std::move(RootDirIn)),
      Objects((fs::path(RootDir) / "objects").string()),
      Aggregates((fs::path(RootDir) / "aggregates").string()) {}

bool ServiceStore::open(std::string *Error,
                        std::vector<ArtifactValidationIssue> *Issues) {
  if (!Objects.ensureExists(Error) || !Aggregates.ensureExists(Error))
    return false;

  // Rebuild the content index. The hash lives in the filename, so a
  // warm restart indexes without reading a byte; files that do not
  // follow the naming convention are re-hashed from their content.
  // Group membership (for the staleness check below) comes from the
  // filename too — or from the capsule's own provenance for the
  // nonconforming files we had to read anyway.
  std::string ListError;
  std::map<std::string, std::vector<std::string>> ObjectsByGroup;
  for (const ArtifactListEntry &Entry : Objects.listEntries(&ListError)) {
    if (!Entry.ok()) {
      if (Issues)
        Issues->push_back({Entry.Path, Entry.Error});
      continue;
    }
    uint64_t Hash = 0;
    std::string Group;
    if (parseObjectHash(Entry.Path, Hash) &&
        parseObjectGroup(Entry.Path, Group)) {
      ObjectsByGroup[Group].push_back(Entry.Path);
    } else {
      std::ifstream In(Entry.Path, std::ios::binary);
      if (!In) {
        if (Issues)
          Issues->push_back({Entry.Path, "cannot open for hashing"});
        continue;
      }
      const std::string Bytes = bio::readAll(In);
      Hash = contentHash(Bytes);
      ++IndexRebuilt;
      ProfileArtifact Parsed;
      if (ProfileArtifact::readFromBytes(Bytes, Parsed))
        ObjectsByGroup[aggregateKeyOf(Parsed.Provenance.Job)].push_back(
            Entry.Path);
    }
    ContentIndex.insert(Hash);
  }
  if (!ListError.empty()) {
    if (Error)
      *Error = ListError;
    return false;
  }

  // Reload the rolling aggregates so the next merge continues from the
  // persisted state rather than restarting every group from scratch.
  for (const ArtifactListEntry &Entry : Aggregates.listEntries(&ListError)) {
    if (!Entry.ok()) {
      if (Issues)
        Issues->push_back({Entry.Path, Entry.Error});
      continue;
    }
    ProfileArtifact Aggregate;
    std::string Reason;
    if (!ProfileArtifact::loadFromFile(Entry.Path, Aggregate, &Reason)) {
      if (Issues)
        Issues->push_back({Entry.Path, Reason});
      continue;
    }
    AggregateByKey[aggregateKeyOf(Aggregate.Provenance.Job)] =
        std::move(Aggregate);
  }
  if (!ListError.empty()) {
    if (Error)
      *Error = ListError;
    return false;
  }

  // Crash recovery: aggregates are checkpointed without fsync, so a
  // power loss can leave a group's persisted aggregate behind its
  // durably stored objects (or unreadable altogether, which the loop
  // above surfaced and skipped). Every object covers at least one run,
  // so an aggregate claiming fewer merged runs than the group has
  // objects is provably stale — re-merge the group from its objects.
  // Merging recomputes all statistics from pooled integer counters, so
  // the rebuilt aggregate is byte-identical to the incremental one.
  for (const auto &[Group, Paths] : ObjectsByGroup) {
    const auto It = AggregateByKey.find(Group);
    if (It != AggregateByKey.end() &&
        It->second.Provenance.MergedRuns >= Paths.size())
      continue;

    std::vector<ProfileArtifact> Members;
    Members.reserve(Paths.size());
    for (const std::string &Path : Paths) {
      ProfileArtifact Member;
      std::string Reason;
      if (!ProfileArtifact::loadFromFile(Path, Member, &Reason)) {
        if (Issues)
          Issues->push_back({Path, Reason});
        continue;
      }
      Members.push_back(std::move(Member));
    }
    if (Members.empty())
      continue;
    MergeResult Merged = mergeArtifacts(Members);
    if (!Merged.ok()) {
      if (Issues)
        Issues->push_back({Group, "aggregate rebuild failed: " + Merged.Error});
      continue;
    }
    uint64_t MinSeed = Members.front().Provenance.Job.Seed;
    for (const ProfileArtifact &Member : Members)
      MinSeed = std::min(MinSeed, Member.Provenance.Job.Seed);
    Merged.Merged.Provenance.Job.Seed = MinSeed;
    canonicalizeAggregate(Merged.Merged);
    std::string SaveError;
    if (Aggregates.save(Merged.Merged, &SaveError).empty()) {
      if (Error)
        *Error = SaveError;
      return false;
    }
    AggregateByKey[Group] = std::move(Merged.Merged);
    ++AggregatesRebuilt;
  }
  return true;
}

ServicePutResult ServiceStore::put(const ProfileArtifact &Artifact) {
  std::ostringstream Buffer;
  if (!Artifact.writeTo(Buffer)) {
    ServicePutResult Result;
    Result.Error = "cannot serialize artifact " + Artifact.Provenance.Job.key();
    return Result;
  }
  return put(Artifact, Buffer.str());
}

ServicePutResult ServiceStore::put(const ProfileArtifact &Artifact,
                                   std::string_view Bytes) {
  ServicePutResult Result;
  Result.Hash = contentHash(Bytes);
  Result.Path =
      (fs::path(Objects.directory()) /
       objectFileName(Artifact.Provenance.Job, Result.Hash))
          .string();

  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    ++Puts;
    if (!ContentIndex.insert(Result.Hash).second) {
      ++DedupHits;
      Result.Ok = true;
      Result.Fresh = false;
      return Result;
    }
  }

  // Fresh content: persist outside the index lock. Identical content
  // racing in from another process lands on the same path with the
  // same bytes through the atomic-write protocol — harmless.
  std::string WriteError;
  if (!bio::atomicWriteFile(Result.Path, Bytes, &WriteError)) {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    ContentIndex.erase(Result.Hash); // Not stored; allow a retry.
    Result.Error = WriteError;
    return Result;
  }
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    ++Stored;
    BytesWritten += Bytes.size();
  }

  // Fold into the group's rolling aggregate and checkpoint it. The
  // canonical form (normalized provenance, totally ordered rows,
  // running-min seed) makes the aggregate's bytes independent of
  // arrival order and worker interleaving.
  Result.AggregateKey = aggregateKeyOf(Artifact.Provenance.Job);
  {
    std::lock_guard<std::mutex> Lock(AggregateMutex);
    auto It = AggregateByKey.find(Result.AggregateKey);
    if (It == AggregateByKey.end()) {
      ProfileArtifact Fresh = Artifact;
      canonicalizeAggregate(Fresh);
      It = AggregateByKey.emplace(Result.AggregateKey, std::move(Fresh)).first;
    } else {
      const uint64_t MinSeed = std::min(It->second.Provenance.Job.Seed,
                                        Artifact.Provenance.Job.Seed);
      const ProfileArtifact Inputs[2] = {It->second, Artifact};
      MergeResult Merged = mergeArtifacts(Inputs);
      if (!Merged.ok()) {
        Result.Error = "aggregate merge failed: " + Merged.Error;
        return Result;
      }
      Merged.Merged.Provenance.Job.Seed = MinSeed;
      canonicalizeAggregate(Merged.Merged);
      It->second = std::move(Merged.Merged);
    }
    // Checkpoint without fsync: the aggregate is derived state open()
    // can rebuild by re-merging the (durably stored) objects, so a
    // power loss rolling it back to the previous version is harmless —
    // and skipping the sync halves the fsyncs on the ingest hot path.
    std::ostringstream AggregateBuffer;
    if (!It->second.writeTo(AggregateBuffer)) {
      Result.Error = "cannot serialize aggregate " + Result.AggregateKey;
      return Result;
    }
    bio::AtomicWriteOptions Relaxed;
    Relaxed.SyncData = false;
    std::string SaveError;
    if (!bio::atomicWriteFile(Aggregates.pathFor(It->second),
                              AggregateBuffer.str(), &SaveError, Relaxed)) {
      Result.Error = SaveError;
      return Result;
    }
    ++AggregateUpdates;
  }

  Result.Ok = true;
  Result.Fresh = true;
  return Result;
}

bool ServiceStore::aggregateFor(const std::string &Key,
                                ProfileArtifact &Out) const {
  std::lock_guard<std::mutex> Lock(AggregateMutex);
  auto It = AggregateByKey.find(Key);
  if (It == AggregateByKey.end())
    return false;
  Out = It->second;
  return true;
}

std::vector<std::string> ServiceStore::aggregateKeys() const {
  std::lock_guard<std::mutex> Lock(AggregateMutex);
  std::vector<std::string> Keys;
  Keys.reserve(AggregateByKey.size());
  for (const auto &[Key, Unused] : AggregateByKey)
    Keys.push_back(Key);
  return Keys;
}

ServiceStoreStats ServiceStore::stats() const {
  ServiceStoreStats S;
  {
    std::lock_guard<std::mutex> Lock(IndexMutex);
    S.Puts = Puts;
    S.Stored = Stored;
    S.DedupHits = DedupHits;
    S.BytesWritten = BytesWritten;
    S.IndexRebuilt = IndexRebuilt;
    S.AggregatesRebuilt = AggregatesRebuilt;
    S.Objects = ContentIndex.size();
  }
  {
    std::lock_guard<std::mutex> Lock(AggregateMutex);
    S.AggregateUpdates = AggregateUpdates;
    S.Aggregates = AggregateByKey.size();
  }
  return S;
}

ArtifactValidationReport ServiceStore::validateAll(std::string *Error) const {
  ArtifactValidationReport Combined = Objects.validate(Error);
  if (Error && !Error->empty())
    return Combined;
  ArtifactValidationReport AggReport = Aggregates.validate(Error);
  Combined.Checked += AggReport.Checked;
  Combined.Issues.insert(Combined.Issues.end(), AggReport.Issues.begin(),
                         AggReport.Issues.end());
  Combined.StaleTemporaries.insert(Combined.StaleTemporaries.end(),
                                   AggReport.StaleTemporaries.begin(),
                                   AggReport.StaleTemporaries.end());
  return Combined;
}

std::vector<std::string>
ServiceStore::cleanStaleTemporaries(unsigned MinAgeSeconds) {
  std::vector<std::string> Removed =
      Objects.cleanStaleTemporaries(nullptr, MinAgeSeconds);
  std::vector<std::string> AggRemoved =
      Aggregates.cleanStaleTemporaries(nullptr, MinAgeSeconds);
  Removed.insert(Removed.end(), AggRemoved.begin(), AggRemoved.end());
  return Removed;
}
