//===- service/ServiceStore.h - Concurrent content-addressed store -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's artifact store: a concurrent, content-addressed layer
/// over two ArtifactStore directories.
///
///   <root>/objects/     every distinct ingested artifact, exactly
///                       once, named "<job-key>-<content-hash>.ccpa"
///   <root>/aggregates/  one rolling merged artifact per merge group
///                       (the job key with the repeat index struck),
///                       named "<group-key>.ccpa"
///
/// put() hashes the serialized capsule (FNV-1a 64); a hash already in
/// the index is a dedup hit — the bytes are not rewritten and the
/// aggregate is not double-counted, which is what makes at-least-once
/// delivery (client retries, watcher re-scans) safe. Fresh content is
/// persisted through the atomic-write + CRC protocol (PR 3), so
/// concurrent writers — multiple daemon workers, even multiple daemon
/// processes sharing one root — can never corrupt the store: identical
/// content races onto identical paths with identical bytes, and
/// readers only ever see complete renamed files.
///
/// The rolling aggregate is canonicalized after every merge
/// (normalized provenance, total ordering of loop rows), which makes
/// its bytes a pure function of the *set* of ingested artifacts —
/// byte-identical no matter the arrival order or how many workers
/// interleaved, the property ServiceTest and bench/ingest_throughput
/// enforce.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SERVICE_SERVICESTORE_H
#define CCPROF_SERVICE_SERVICESTORE_H

#include "pipeline/ArtifactStore.h"
#include "pipeline/ProfileArtifact.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace ccprof {

/// FNV-1a 64-bit over \p Bytes — the content address of a capsule.
uint64_t contentHash(std::string_view Bytes);

/// The merge-group identity of \p Job: its key with the repeat index
/// struck, i.e. exactly the fields mergeCompatible pools over. Also
/// the aggregate's filename stem.
std::string aggregateKeyOf(const JobSpec &Job);

/// Rewrites \p Aggregate into its canonical serialized form: provenance
/// normalized (repeat 0, no timestamp, service tool tag) and loop /
/// data-structure rows totally ordered (samples desc, then name), so
/// equal merged content always produces equal bytes. Exposed for tests.
void canonicalizeAggregate(ProfileArtifact &Aggregate);

/// Outcome of one ServiceStore::put.
struct ServicePutResult {
  /// False only on I/O or merge failure (Error says why).
  bool Ok = false;
  /// True when the content was new; false for a dedup hit.
  bool Fresh = false;
  uint64_t Hash = 0;
  /// Object path (stored or already-present).
  std::string Path;
  /// Group whose aggregate absorbed the artifact (fresh puts only).
  std::string AggregateKey;
  std::string Error;
};

/// Counters of a store's lifetime.
struct ServiceStoreStats {
  uint64_t Puts = 0;
  uint64_t Stored = 0;
  uint64_t DedupHits = 0;
  uint64_t AggregateUpdates = 0;
  uint64_t BytesWritten = 0;
  /// Object files whose content hash had to be recovered by re-reading
  /// at open() because the filename did not carry it.
  uint64_t IndexRebuilt = 0;
  /// Aggregate groups open() re-merged from their objects because the
  /// persisted aggregate was missing, unreadable, or covered fewer
  /// runs than the group's object count (crash rollback).
  uint64_t AggregatesRebuilt = 0;
  uint64_t Objects = 0;
  uint64_t Aggregates = 0;
};

/// Thread-safe content-addressed artifact store with rolling per-group
/// aggregates. One instance serves all daemon workers.
class ServiceStore {
public:
  explicit ServiceStore(std::string RootDir);

  /// Creates the directory layout and rebuilds the in-memory state
  /// (content index from object filenames, aggregates from the
  /// aggregates directory) so a restarted daemon continues where the
  /// previous one stopped. Aggregates are checkpointed without fsync
  /// (they are derived state), so a crash can leave a group's
  /// persisted aggregate missing, unreadable, or lagging its objects;
  /// open() detects all three and re-merges the group from the durably
  /// stored objects — merging is associative, so the rebuilt aggregate
  /// is byte-identical to the incremental one. Unreadable entries are
  /// surfaced in \p Issues (when non-null) rather than silently
  /// skipped.
  bool open(std::string *Error,
            std::vector<ArtifactValidationIssue> *Issues = nullptr);

  /// Ingests one artifact whose serialized form is \p Bytes (the
  /// caller usually has the bytes already — they arrived on the wire).
  /// Fresh content is stored and merged into its group's rolling
  /// aggregate; duplicate content is counted and left alone.
  ServicePutResult put(const ProfileArtifact &Artifact,
                       std::string_view Bytes);

  /// Serializes and ingests (convenience over the two-argument put).
  ServicePutResult put(const ProfileArtifact &Artifact);

  /// Copies the current rolling aggregate of \p Key into \p Out.
  /// \returns false when the group is unknown.
  bool aggregateFor(const std::string &Key, ProfileArtifact &Out) const;

  /// Keys of every rolling aggregate, sorted.
  std::vector<std::string> aggregateKeys() const;

  ServiceStoreStats stats() const;

  /// Sweeps objects and aggregates through the checksummed loader.
  ArtifactValidationReport validateAll(std::string *Error = nullptr) const;

  /// Age-gated stale-temp reaping across both directories (see
  /// ArtifactStore::cleanStaleTemporaries); returns paths removed.
  std::vector<std::string> cleanStaleTemporaries(
      unsigned MinAgeSeconds = ArtifactStore::DefaultTempReapAgeSeconds);

  const std::string &directory() const { return RootDir; }
  std::string objectsDirectory() const { return Objects.directory(); }
  std::string aggregatesDirectory() const { return Aggregates.directory(); }

private:
  std::string RootDir;
  ArtifactStore Objects;
  ArtifactStore Aggregates;

  /// Guards the content index and counters; object-file writes happen
  /// outside it (atomic rename makes them safe), aggregate merges
  /// inside AggregateMutex.
  mutable std::mutex IndexMutex;
  std::unordered_set<uint64_t> ContentIndex;
  uint64_t Puts = 0, Stored = 0, DedupHits = 0, BytesWritten = 0;
  uint64_t IndexRebuilt = 0;
  uint64_t AggregatesRebuilt = 0;

  mutable std::mutex AggregateMutex;
  std::map<std::string, ProfileArtifact> AggregateByKey;
  uint64_t AggregateUpdates = 0;
};

} // namespace ccprof

#endif // CCPROF_SERVICE_SERVICESTORE_H
