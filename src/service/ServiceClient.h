//===- service/ServiceClient.h - ccprofd socket client ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of ccprofd's Unix-domain-socket protocol: connect,
/// speak one or more requests, read the one-line replies. This is what
/// `ccprof submit` and `ccprof serve --stats` are built on; tests use
/// it to drive a live daemon end to end.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SERVICE_SERVICECLIENT_H
#define CCPROF_SERVICE_SERVICECLIENT_H

#include <string>
#include <vector>

namespace ccprof {

/// Outcome of one client request.
struct ServiceReply {
  /// Transport worked and the daemon answered "OK ..." (or returned a
  /// payload, for STATS/PING).
  bool Ok = false;
  /// The daemon's reply line, verbatim (e.g. "OK queued").
  std::string Line;
  /// Transport-level failure description; empty when the daemon
  /// answered at all (even with "ERR ...").
  std::string Error;
};

/// Uploads the bytes of \p FilePath (kind inferred from the .ccpa /
/// .cctr extension; \p Name is the workload label sent with it) as
/// \p Client over the daemon socket at \p SocketPath.
ServiceReply serviceSubmitFile(const std::string &SocketPath,
                               const std::string &Client,
                               const std::string &FilePath,
                               const std::string &Name = "");

/// Uploads in-memory bytes; \p Kind is "ccpa" or "cctr".
ServiceReply serviceSubmitBytes(const std::string &SocketPath,
                                const std::string &Client,
                                const std::string &Kind,
                                const std::string &Name,
                                const std::string &Bytes);

/// Sends "STATS" and returns the daemon's JSON line in Reply.Line.
ServiceReply serviceQueryStats(const std::string &SocketPath);

/// Sends "PING"; Ok when the daemon answers "PONG".
ServiceReply servicePing(const std::string &SocketPath);

} // namespace ccprof

#endif // CCPROF_SERVICE_SERVICECLIENT_H
