//===- service/Ccprofd.cpp - Profile-ingest daemon -----------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/Ccprofd.h"

#include "core/ProgramStructure.h"
#include "core/Profiler.h"
#include "support/Json.h"
#include "trace/BinaryIO.h"
#include "trace/Canonicalize.h"
#include "trace/Trace.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ccprof;
namespace fs = std::filesystem;

namespace {

/// Uploads above this are refused before allocation — a sanity bound,
/// far above any real capsule or trace, protecting the daemon from a
/// garbage length field.
constexpr size_t MaxUploadBytes = 256u << 20;

constexpr const char *TraceExtension = ".cctr";

/// Buffered line/exact reader over a socket fd. read(2) on the
/// accepted fd carries a receive timeout (set at accept), so a stalled
/// client unblocks the daemon instead of wedging it.
struct FdReader {
  int Fd = -1;
  std::string Buf;
  size_t Pos = 0;

  bool fill() {
    char Tmp[4096];
    const ssize_t N = ::read(Fd, Tmp, sizeof Tmp);
    if (N <= 0)
      return false;
    Buf.append(Tmp, static_cast<size_t>(N));
    return true;
  }

  void compact() {
    if (Pos > (1u << 16)) {
      Buf.erase(0, Pos);
      Pos = 0;
    }
  }

  /// Reads up to a '\n' (not included). \returns false on EOF/timeout.
  bool readLine(std::string &Line) {
    for (;;) {
      const size_t Nl = Buf.find('\n', Pos);
      if (Nl != std::string::npos) {
        Line = Buf.substr(Pos, Nl - Pos);
        Pos = Nl + 1;
        compact();
        return true;
      }
      if (!fill())
        return false;
    }
  }

  bool readExact(std::string &Out, size_t N) {
    while (Buf.size() - Pos < N)
      if (!fill())
        return false;
    Out = Buf.substr(Pos, N);
    Pos += N;
    compact();
    return true;
  }
};

bool writeAll(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    const ssize_t N = ::write(Fd, Bytes.data(), Bytes.size());
    if (N <= 0)
      return false;
    Bytes.remove_prefix(static_cast<size_t>(N));
  }
  return true;
}

/// The workload a dropped trace file names: the stem up to the first
/// '.', so "NW.17.cctr" and "NW.cctr" both profile against NW.
std::string workloadOfDropName(const fs::path &Path) {
  std::string Stem = Path.filename().string();
  const size_t Dot = Stem.find('.');
  if (Dot != std::string::npos)
    Stem.resize(Dot);
  return Stem;
}

} // namespace

Ccprofd::Ccprofd(ServiceConfig ConfigIn)
    : Config(std::move(ConfigIn)), Store(Config.StoreDir),
      Monitor(Config.Monitor), Queue(Config.QueueCapacity) {}

Ccprofd::~Ccprofd() { stop(); }

void Ccprofd::setAlertSink(std::function<void(const RegressionAlert &)> Sink) {
  AlertSink = std::move(Sink);
}

bool Ccprofd::start(std::string *Error) {
  StartTime = std::chrono::steady_clock::now();
  if (!Store.open(Error))
    return false;

  if (!Config.SocketPath.empty()) {
    sockaddr_un Addr{};
    if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
      if (Error)
        *Error = "socket path too long: " + Config.SocketPath;
      return false;
    }
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0) {
      if (Error)
        *Error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    ::unlink(Config.SocketPath.c_str());
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) <
            0 ||
        ::listen(ListenFd, 16) < 0) {
      if (Error)
        *Error = "bind/listen " + Config.SocketPath + ": " +
                 std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }

  Started.store(true);
  const unsigned Workers = std::max(1u, Config.Workers);
  WorkerThreads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  if (!Config.WatchDir.empty())
    WatcherThread = std::thread([this] { watcherLoop(); });
  if (ListenFd >= 0)
    ListenerThread = std::thread([this] { listenerLoop(); });
  return true;
}

void Ccprofd::stop() {
  if (Stopping.exchange(true))
    return;
  // Ingress first, so nothing refills the queue while it drains.
  if (ListenerThread.joinable())
    ListenerThread.join();
  if (WatcherThread.joinable())
    WatcherThread.join();
  Queue.close();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Config.SocketPath.c_str());
  }
}

bool Ccprofd::runOnce(std::string *Error) {
  StartTime = std::chrono::steady_clock::now();
  if (!Store.open(Error))
    return false;
  Started.store(true);

  const unsigned Workers = std::max(1u, Config.Workers);
  WorkerThreads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });

  if (!Config.WatchDir.empty()) {
    // Drain the drop directory completely: a full queue defers files,
    // so rescan until nothing is deferred and nothing new appears.
    size_t Deferred = 0;
    do {
      if (scanDropDirOnce(&Deferred) == 0 && Deferred > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } while (Deferred > 0);
  }

  Stopping.store(true);
  Queue.close();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();
  return true;
}

bool Ccprofd::submit(IngestRequest Request) {
  return Queue.push(std::move(Request));
}

void Ccprofd::workerLoop() {
  while (std::optional<IngestRequest> Request = Queue.pop())
    processRequest(*Request);
}

void Ccprofd::processRequest(const IngestRequest &Request) {
  bool HadError = false;
  bool Dedup = false;
  size_t AlertCount = 0;

  ProfileArtifact Artifact;
  bool HaveArtifact = false;
  std::string_view CapsuleBytes;
  std::string Error;

  if (Request.Kind == IngestKind::Artifact) {
    if (ProfileArtifact::readFromBytes(Request.Bytes, Artifact, &Error)) {
      HaveArtifact = true;
      CapsuleBytes = Request.Bytes;
    } else {
      HadError = true;
    }
  } else {
    // A raw trace: profile it on arrival under a default job spec for
    // the named workload, then ingest the resulting capsule like any
    // other. Profiling is deterministic, so a re-uploaded trace dedups
    // on its capsule bytes.
    std::istringstream In(Request.Bytes);
    Trace Recorded;
    std::unique_ptr<Workload> W;
    if (!Trace::readFrom(In, Recorded, &Error)) {
      HadError = true;
    } else if (!(W = makeWorkloadByName(Request.Name))) {
      Error = "unknown workload '" + Request.Name + "'";
      HadError = true;
    } else {
      const Trace T = canonicalizeTrace(Recorded);
      JobSpec Job;
      Job.WorkloadName = Request.Name;
      BinaryImage Image = W->makeBinary();
      ProgramStructure Structure(Image);
      const Profiler P(Job.toProfileOptions());
      Artifact.Result = P.profile(T, Structure);
      Artifact.Provenance.Job = Job;
      Artifact.Provenance.Tool = "ccprofd-1";
      HaveArtifact = true;
    }
  }

  if (HaveArtifact) {
    const ServicePutResult Put = CapsuleBytes.empty()
                                     ? Store.put(Artifact)
                                     : Store.put(Artifact, CapsuleBytes);
    if (!Put.Ok) {
      HadError = true;
    } else if (!Put.Fresh) {
      Dedup = true;
    } else {
      const std::vector<RegressionAlert> Alerts =
          Monitor.observe(Artifact, Request.Client);
      AlertCount = Alerts.size();
      if (AlertSink)
        for (const RegressionAlert &Alert : Alerts)
          AlertSink(Alert);
    }
  }

  noteClient(Request.Client, Request.Bytes.size(), Dedup, HadError,
             AlertCount);
  if (HadError)
    IngestErrors.fetch_add(1);
  Processed.fetch_add(1);
}

size_t Ccprofd::scanDropDirOnce(size_t *DeferredOut) {
  std::error_code Ec;
  std::vector<fs::path> Candidates;
  for (fs::directory_iterator It(Config.WatchDir, Ec), End;
       !Ec && It != End; It.increment(Ec)) {
    const fs::path Path = It->path();
    const std::string Ext = Path.extension().string();
    if (Ext == ArtifactExtension || Ext == TraceExtension)
      Candidates.push_back(Path);
  }
  // Deterministic ingest order regardless of directory iteration
  // order — with one worker, a deterministic merge/alert sequence.
  std::sort(Candidates.begin(), Candidates.end());

  size_t Enqueued = 0, Deferred = 0;
  for (const fs::path &Path : Candidates) {
    // Claim by rename: exactly one scanner (or daemon) wins the file,
    // and a producer still writing under a temp name is never touched.
    fs::path Claimed = Path;
    Claimed += ".claimed";
    std::error_code RenameEc;
    fs::rename(Path, Claimed, RenameEc);
    if (RenameEc)
      continue; // Vanished or claimed by someone else.

    std::ifstream In(Claimed, std::ios::binary);
    if (!In) {
      fs::rename(Claimed, Path, RenameEc);
      continue;
    }
    IngestRequest Request;
    Request.Kind = Path.extension() == TraceExtension ? IngestKind::Trace
                                                      : IngestKind::Artifact;
    Request.Name = workloadOfDropName(Path);
    Request.Client = "watch";
    Request.Bytes = bio::readAll(In);
    Request.Source = Path.string();
    In.close();

    if (Queue.tryPush(std::move(Request))) {
      fs::remove(Claimed, RenameEc);
      ++Enqueued;
    } else {
      // Backpressure: restore the drop and let the next poll retry.
      fs::rename(Claimed, Path, RenameEc);
      ++Deferred;
    }
  }
  if (DeferredOut)
    *DeferredOut = Deferred;
  return Enqueued;
}

void Ccprofd::watcherLoop() {
  while (!Stopping.load()) {
    scanDropDirOnce();
    for (unsigned Waited = 0; Waited < Config.PollMs && !Stopping.load();
         Waited += 20)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void Ccprofd::listenerLoop() {
  while (!Stopping.load()) {
    pollfd Pfd{};
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    const int Ready = ::poll(&Pfd, 1, 200);
    if (Ready <= 0)
      continue;
    const int Client = ::accept(ListenFd, nullptr, nullptr);
    if (Client < 0)
      continue;
    // A stalled client must not wedge the daemon: bound every read.
    timeval Timeout{};
    Timeout.tv_sec = 5;
    ::setsockopt(Client, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof Timeout);
    handleConnection(Client);
    ::close(Client);
  }
}

void Ccprofd::handleConnection(int Fd) {
  FdReader Reader;
  Reader.Fd = Fd;
  std::string Line;
  while (!Stopping.load() && Reader.readLine(Line)) {
    std::istringstream Tokens(Line);
    std::string Command;
    Tokens >> Command;
    if (Command == "PING") {
      if (!writeAll(Fd, "PONG\n"))
        return;
    } else if (Command == "STATS") {
      if (!writeAll(Fd, statsJson() + "\n"))
        return;
    } else if (Command == "PUT") {
      std::string Client, KindStr, Name;
      uint64_t NumBytes = 0;
      Tokens >> Client >> KindStr >> Name >> NumBytes;
      const bool IsTrace = KindStr == "cctr";
      if (Tokens.fail() || (!IsTrace && KindStr != "ccpa")) {
        // The payload framing is unrecoverable after a bad header.
        writeAll(Fd, "ERR malformed PUT header\n");
        return;
      }
      if (NumBytes > MaxUploadBytes) {
        writeAll(Fd, "ERR payload too large\n");
        return;
      }
      IngestRequest Request;
      Request.Kind = IsTrace ? IngestKind::Trace : IngestKind::Artifact;
      Request.Name = Name;
      Request.Client = Client;
      Request.Source = "socket";
      if (!Reader.readExact(Request.Bytes, NumBytes)) {
        writeAll(Fd, "ERR truncated payload\n");
        return;
      }
      // push() blocks while the queue is full — the client stalls
      // right here, which is the backpressure contract.
      if (!Queue.push(std::move(Request))) {
        writeAll(Fd, "ERR shutting down\n");
        return;
      }
      if (!writeAll(Fd, "OK queued\n"))
        return;
    } else if (!Command.empty()) {
      if (!writeAll(Fd, "ERR unknown command '" + Command + "'\n"))
        return;
    }
  }
}

void Ccprofd::noteClient(const std::string &Client, size_t Bytes, bool Dedup,
                         bool Error, size_t Alerts) {
  std::lock_guard<std::mutex> Lock(ClientMutex);
  ClientStats &S = Clients[Client];
  ++S.Received;
  S.Bytes += Bytes;
  if (Dedup)
    ++S.Deduped;
  if (Error)
    ++S.Errors;
  S.Alerts += Alerts;
}

std::vector<RegressionAlert> Ccprofd::recentAlerts(size_t Max) const {
  return Monitor.recentAlerts(Max);
}

std::string Ccprofd::statsJson() const {
  const IngestQueueStats QS = Queue.stats();
  const ServiceStoreStats SS = Store.stats();
  const RegressionMonitorStats MS = Monitor.stats();
  const double Uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    StartTime)
          .count();
  const uint64_t Done = Processed.load();
  const double Rate = Uptime > 0.0 ? static_cast<double>(Done) / Uptime : 0.0;

  std::ostringstream Out;
  Out << "{\"uptime_sec\":" << json::number(Uptime, 3)
      << ",\"processed\":" << Done
      << ",\"ingests_per_sec\":" << json::number(Rate, 1)
      << ",\"errors\":" << IngestErrors.load();
  Out << ",\"queue\":{\"depth\":" << QS.Depth
      << ",\"capacity\":" << QS.Capacity << ",\"enqueued\":" << QS.Enqueued
      << ",\"dequeued\":" << QS.Dequeued << ",\"rejected\":" << QS.Rejected
      << ",\"stalls\":" << QS.Stalls << ",\"peak_depth\":" << QS.PeakDepth
      << "}";
  Out << ",\"store\":{\"puts\":" << SS.Puts << ",\"stored\":" << SS.Stored
      << ",\"dedup_hits\":" << SS.DedupHits
      << ",\"aggregate_updates\":" << SS.AggregateUpdates
      << ",\"bytes_written\":" << SS.BytesWritten
      << ",\"objects\":" << SS.Objects
      << ",\"aggregates\":" << SS.Aggregates << "}";
  Out << ",\"monitor\":{\"observations\":" << MS.Observations
      << ",\"baselines\":" << MS.Baselines
      << ",\"baseline_updates\":" << MS.BaselineUpdates
      << ",\"alerts\":" << MS.AlertsRaised << "}";
  {
    std::lock_guard<std::mutex> Lock(ClientMutex);
    Out << ",\"clients\":{";
    bool First = true;
    for (const auto &[Name, S] : Clients) {
      if (!First)
        Out << ",";
      First = false;
      Out << json::quote(Name) << ":{\"received\":" << S.Received
          << ",\"bytes\":" << S.Bytes << ",\"deduped\":" << S.Deduped
          << ",\"errors\":" << S.Errors << ",\"alerts\":" << S.Alerts << "}";
    }
    Out << "}";
  }
  Out << ",\"recent_alerts\":[";
  const std::vector<RegressionAlert> Alerts = Monitor.recentAlerts(8);
  for (size_t I = 0; I < Alerts.size(); ++I) {
    if (I)
      Out << ",";
    Out << renderAlertJson(Alerts[I]);
  }
  Out << "]}";
  return Out.str();
}
