//===- workloads/MiniKernels.h - Conflict-free Rodinia kernels -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seventeen non-conflicting Rodinia applications of paper Fig. 7.
/// Each is a compact kernel reproducing the *memory access pattern* of
/// the original application's hot loop — contiguous scans, non-power-of-
/// two stencils, indirect graph walks — none of which fold onto a subset
/// of L1 sets, so CCProf must classify them all as conflict-free. They
/// are the negative class of the classifier's training and evaluation
/// sets.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_MINIKERNELS_H
#define CCPROF_WORKLOADS_MINIKERNELS_H

#include "workloads/Workload.h"

#include <memory>
#include <vector>

namespace ccprof {

/// The 17 conflict-free Rodinia mini kernels (Fig. 7's negative class):
/// backprop, bfs, b+tree, cfd, heartwall, hotspot, hotspot3D, kmeans,
/// lavaMD, leukocyte, lud, myocyte, nn, particlefilter, pathfinder,
/// srad, streamcluster.
std::vector<std::unique_ptr<Workload>> makeRodiniaMiniKernels();

} // namespace ccprof

#endif // CCPROF_WORKLOADS_MINIKERNELS_H
