//===- workloads/Symmetrization.cpp - Paper Fig. 2 example ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Symmetrization.h"

#include "cfg/SyntheticCodeGen.h"

#include <cassert>
#include <vector>

using namespace ccprof;

SymmetrizationWorkload::SymmetrizationWorkload(uint64_t N, uint64_t Sweeps)
    : N(N), Sweeps(Sweeps) {
  assert(N > 1 && Sweeps > 0 && "degenerate symmetrization instance");
}

uint64_t SymmetrizationWorkload::rowElems(WorkloadVariant Variant) const {
  // The optimized build pads each row by 64 bytes (8 doubles), Fig. 2-c.
  return Variant == WorkloadVariant::Optimized ? N + 8 : N;
}

namespace {

/// The kernel proper; synthetic source "symm.cpp":
///   10  for (it = 0; it < sweeps; ++it)
///   11    for (i = 0; i < n; ++i)
///   12      for (j = 0; j < n; ++j) {
///   13        double upper = A[i][j];
///   14        double lower = A[j][i];
///   15        A[i][j] = 0.5 * (upper + lower);
///   16      }
template <typename Rec>
double runSymmetrization(uint64_t N, uint64_t Sweeps, uint64_t Row, Rec &R) {
  const SiteId LoadUpper = R.site("symm.cpp", 13, "symmetrize");
  const SiteId LoadLower = R.site("symm.cpp", 14, "symmetrize");
  const SiteId StoreAvg = R.site("symm.cpp", 15, "symmetrize");

  std::vector<double> A(N * Row, 0.0);
  R.alloc("A[][]", A.data(), A.size() * sizeof(double));
  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      A[I * Row + J] = static_cast<double>((I * 131 + J * 17) % 97);

  for (uint64_t Sweep = 0; Sweep < Sweeps; ++Sweep) {
    for (uint64_t I = 0; I < N; ++I) {
      for (uint64_t J = 0; J < N; ++J) {
        R.load(LoadUpper, &A[I * Row + J]);
        double Upper = A[I * Row + J];
        R.load(LoadLower, &A[J * Row + I]);
        double Lower = A[J * Row + I];
        R.store(StoreAvg, &A[I * Row + J]);
        A[I * Row + J] = 0.5 * (Upper + Lower);
      }
    }
  }

  double Checksum = 0.0;
  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      Checksum += A[I * Row + J];
  return Checksum;
}

} // namespace

double SymmetrizationWorkload::run(WorkloadVariant Variant,
                                   Trace *Recorder) const {
  const uint64_t Row = rowElems(Variant);
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runSymmetrization(N, Sweeps, Row, R);
  }
  NullRecorder R;
  return runSymmetrization(N, Sweeps, Row, R);
}

StaticAccessModel
SymmetrizationWorkload::accessModel(WorkloadVariant Variant) const {
  const uint64_t Row = rowElems(Variant);
  const int64_t RowBytes = static_cast<int64_t>(Row * sizeof(double));

  StaticAccessModel Model;
  Model.SourceFile = "symm.cpp";
  Model.Complete = true;
  Model.Allocations = {{"A[][]", N * Row * sizeof(double), true}};

  // The three recorded sites of the sweep nest; co-phased, one access
  // of each per inner iteration.
  AccessDescriptor Upper;
  Upper.Array = "A[][]";
  Upper.Line = 13;
  Upper.ElementBytes = sizeof(double);
  Upper.Levels = {{Sweeps, 0}, {N, RowBytes}, {N, sizeof(double)}};

  AccessDescriptor Lower = Upper;
  Lower.Line = 14;
  Lower.Levels = {{Sweeps, 0}, {N, sizeof(double)}, {N, RowBytes}};

  AccessDescriptor Average = Upper;
  Average.Line = 15;
  Average.IsStore = true;

  Model.Accesses = {Upper, Lower, Average};
  return Model;
}

BinaryImage SymmetrizationWorkload::makeBinary() const {
  LoopSpec Inner;
  Inner.HeaderLine = 12;
  Inner.EndLine = 16;
  Inner.AccessLines = {13, 14, 15};

  LoopSpec Mid;
  Mid.HeaderLine = 11;
  Mid.EndLine = 16;
  Mid.Children.push_back(Inner);

  LoopSpec Outer;
  Outer.HeaderLine = 10;
  Outer.EndLine = 16;
  Outer.Children.push_back(Mid);

  FunctionSpec Function;
  Function.Name = "symmetrize";
  Function.StartLine = 8;
  Function.EndLine = 18;
  Function.Loops.push_back(Outer);

  return lowerToBinary("symm.cpp", {Function});
}
