//===- workloads/Kripke.h - Kripke particle-edit case study ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The particle-edit kernel of LLNL's Kripke Sn transport mini-app
/// (paper Sec. 6.5, Listing 4): a triple loop over zones, directions and
/// groups reducing w * psi(g,d,z) * volume. With psi laid out
/// [group][direction][zone], the original loop order (z, d, g) walks psi
/// in column order — the innermost g-step strides by directions*zones
/// elements, a power-of-two multiple of the set stride. The optimized
/// build transposes the loop nest to row order (g, d, z), the paper's
/// fix.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_KRIPKE_H
#define CCPROF_WORKLOADS_KRIPKE_H

#include "workloads/Workload.h"

namespace ccprof {

class KripkeWorkload : public Workload {
public:
  explicit KripkeWorkload(uint64_t Groups = 48, uint64_t Directions = 64,
                          uint64_t Zones = 256);

  std::string name() const override { return "Kripke"; }
  std::string sourceFile() const override { return "kernel.cpp"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "kernel.cpp:14"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

private:
  uint64_t Groups;
  uint64_t Directions;
  uint64_t Zones;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_KRIPKE_H
