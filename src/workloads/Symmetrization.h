//===- workloads/Symmetrization.h - Paper Fig. 2 example -------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Matrix symmetrization A = (A + A^T) / 2, the motivating example of
/// paper Sec. 2.1 (Fig. 2), as used in quantum chemistry codes. On a
/// 128x128 double matrix the transposed access A[j][i] strides by the
/// 1KiB row, which maps a column onto only four of the 64 L1 sets; a
/// 64-byte row pad spreads the column over every set and removes up to
/// 91.4% of the L2 misses in the paper's measurement.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_SYMMETRIZATION_H
#define CCPROF_WORKLOADS_SYMMETRIZATION_H

#include "workloads/Workload.h"

namespace ccprof {

class SymmetrizationWorkload : public Workload {
public:
  /// \p N matrix dimension; \p Sweeps repetitions of the loop nest
  /// (the kernel runs inside an outer iteration loop in its source).
  explicit SymmetrizationWorkload(uint64_t N = 128, uint64_t Sweeps = 40);

  std::string name() const override { return "Symmetrization"; }
  std::string sourceFile() const override { return "symm.cpp"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "symm.cpp:12"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

  uint64_t dimension() const { return N; }
  /// Row length in doubles of the given variant (pad included).
  uint64_t rowElems(WorkloadVariant Variant) const;

private:
  uint64_t N;
  uint64_t Sweeps;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_SYMMETRIZATION_H
