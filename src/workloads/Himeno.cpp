//===- workloads/Himeno.cpp - HimenoBMT Jacobi case study ----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Himeno.h"

#include "cfg/SyntheticCodeGen.h"

#include <cassert>
#include <vector>

using namespace ccprof;

HimenoWorkload::HimenoWorkload(uint64_t Rows, uint64_t Cols, uint64_t Deps,
                               uint64_t Iterations)
    : Rows(Rows), Cols(Cols), Deps(Deps), Iterations(Iterations) {
  assert(Rows > 2 && Cols > 2 && Deps > 2 && Iterations > 0 &&
         "degenerate grid");
}

namespace {

/// Synthetic source "himenobmt.c"; the Jacobi sweep is the loop nest at
/// lines 4-27 (paper Listing 5) and the wrk2->p copy at lines 38-44.
template <typename Rec>
double runHimeno(uint64_t I0, uint64_t J0, uint64_t K0, uint64_t Iterations,
                 uint64_t J, uint64_t K, Rec &R) {
  const SiteId LoadP = R.site("himenobmt.c", 7, "jacobi");
  const SiteId LoadA = R.site("himenobmt.c", 8, "jacobi");
  const SiteId LoadB = R.site("himenobmt.c", 11, "jacobi");
  const SiteId LoadC = R.site("himenobmt.c", 19, "jacobi");
  const SiteId LoadWrk1 = R.site("himenobmt.c", 22, "jacobi");
  const SiteId LoadBnd = R.site("himenobmt.c", 23, "jacobi");
  const SiteId StoreWrk2 = R.site("himenobmt.c", 25, "jacobi");
  const SiteId CopyLoad = R.site("himenobmt.c", 41, "jacobi");
  const SiteId CopyStore = R.site("himenobmt.c", 42, "jacobi");

  const uint64_t I = I0; // i extent is never padded
  const uint64_t Plane = J * K;
  const uint64_t Cells = I * Plane;

  // All grids live in one arena at controlled offsets so the
  // *relative* alignment of the arrays — which decides the inter-array
  // conflicts — is deterministic, not an accident of the heap. The
  // original benchmark's power-of-two grids make every array start at
  // the same set (set-stride-aligned offsets); the padded build's
  // odd-sized grids naturally stagger the arrays, modeled here as a
  // one-line offset per array.
  const bool Staggered = J != J0 || K != K0;
  const uint64_t SetStrideFloats = 4096 / sizeof(float);
  std::vector<uint64_t> Offsets;
  uint64_t ArenaFloats = 0;
  auto Place = [&](uint64_t NumFloats) {
    uint64_t Rounded =
        (ArenaFloats + SetStrideFloats - 1) / SetStrideFloats *
        SetStrideFloats;
    if (Staggered)
      Rounded += Offsets.size() * (64 / sizeof(float));
    Offsets.push_back(Rounded);
    ArenaFloats = Rounded + NumFloats;
    return Offsets.back();
  };
  const uint64_t OffA = Place(4 * Cells);
  const uint64_t OffB = Place(3 * Cells);
  const uint64_t OffC = Place(3 * Cells);
  const uint64_t OffP = Place(Cells);
  const uint64_t OffWrk1 = Place(Cells);
  const uint64_t OffWrk2 = Place(Cells);
  const uint64_t OffBnd = Place(Cells);

  std::vector<float> Arena(ArenaFloats, 0.0f);
  float *A = Arena.data() + OffA;
  float *B = Arena.data() + OffB;
  float *C = Arena.data() + OffC;
  float *P = Arena.data() + OffP;
  float *Wrk1 = Arena.data() + OffWrk1;
  float *Wrk2 = Arena.data() + OffWrk2;
  float *Bnd = Arena.data() + OffBnd;
  R.alloc("a[]", A, 4 * Cells * sizeof(float));
  R.alloc("b[]", B, 3 * Cells * sizeof(float));
  R.alloc("c[]", C, 3 * Cells * sizeof(float));
  R.alloc("p[]", P, Cells * sizeof(float));
  R.alloc("wrk1[]", Wrk1, Cells * sizeof(float));
  R.alloc("wrk2[]", Wrk2, Cells * sizeof(float));
  R.alloc("bnd[]", Bnd, Cells * sizeof(float));

  auto At = [&](uint64_t Ii, uint64_t Ji, uint64_t Ki) {
    return Ii * Plane + Ji * K + Ki;
  };

  // Standard HimenoBMT initialization (layout-independent values).
  for (uint64_t Ii = 0; Ii < I; ++Ii)
    for (uint64_t Ji = 0; Ji < J0; ++Ji)
      for (uint64_t Ki = 0; Ki < K0; ++Ki) {
        uint64_t Cell = At(Ii, Ji, Ki);
        P[Cell] = static_cast<float>(Ii * Ii) /
                  static_cast<float>((I - 1) * (I - 1));
        Wrk1[Cell] = 0.0f;
        Wrk2[Cell] = 0.0f;
        Bnd[Cell] = 1.0f;
        A[0 * Cells + Cell] = A[1 * Cells + Cell] = A[2 * Cells + Cell] =
            1.0f;
        A[3 * Cells + Cell] = 1.0f / 6.0f;
        B[0 * Cells + Cell] = B[1 * Cells + Cell] = B[2 * Cells + Cell] =
            0.0f;
        C[0 * Cells + Cell] = C[1 * Cells + Cell] = C[2 * Cells + Cell] =
            1.0f;
      }

  const float Omega = 0.8f;
  double Gosa = 0.0;
  for (uint64_t Iter = 0; Iter < Iterations; ++Iter) {
    Gosa = 0.0;
    for (uint64_t Ii = 1; Ii + 1 < I0; ++Ii) {
      for (uint64_t Ji = 1; Ji + 1 < J0; ++Ji) {
        for (uint64_t Ki = 1; Ki + 1 < K0; ++Ki) {
          const uint64_t Cell = At(Ii, Ji, Ki);
          // The 19-point stencil of Listing 5; every p neighbour is one
          // recorded load.
          auto Lp = [&](uint64_t Di, uint64_t Dj, uint64_t Dk) {
            const float *Ptr = &P[At(Ii + Di - 1, Ji + Dj - 1, Ki + Dk - 1)];
            R.load(LoadP, Ptr);
            return *Ptr;
          };
          R.load(LoadA, &A[0 * Cells + Cell]);
          float S0 = A[0 * Cells + Cell] * Lp(2, 1, 1) +
                     A[1 * Cells + Cell] * Lp(1, 2, 1) +
                     A[2 * Cells + Cell] * Lp(1, 1, 2);
          R.load(LoadB, &B[0 * Cells + Cell]);
          S0 += B[0 * Cells + Cell] *
                (Lp(2, 2, 1) - Lp(2, 0, 1) - Lp(0, 2, 1) + Lp(0, 0, 1));
          S0 += B[1 * Cells + Cell] *
                (Lp(1, 2, 2) - Lp(1, 0, 2) - Lp(1, 2, 0) + Lp(1, 0, 0));
          S0 += B[2 * Cells + Cell] *
                (Lp(2, 1, 2) - Lp(0, 1, 2) - Lp(2, 1, 0) + Lp(0, 1, 0));
          R.load(LoadC, &C[0 * Cells + Cell]);
          S0 += C[0 * Cells + Cell] * Lp(0, 1, 1) +
                C[1 * Cells + Cell] * Lp(1, 0, 1) +
                C[2 * Cells + Cell] * Lp(1, 1, 0);
          R.load(LoadWrk1, &Wrk1[Cell]);
          S0 += Wrk1[Cell];

          R.load(LoadBnd, &Bnd[Cell]);
          float Ss =
              (S0 * A[3 * Cells + Cell] - Lp(1, 1, 1)) * Bnd[Cell];
          Gosa += static_cast<double>(Ss) * Ss;
          R.store(StoreWrk2, &Wrk2[Cell]);
          Wrk2[Cell] = P[Cell] + Omega * Ss;
        }
      }
    }
    // Copy wrk2 back into p.
    for (uint64_t Ii = 1; Ii + 1 < I0; ++Ii)
      for (uint64_t Ji = 1; Ji + 1 < J0; ++Ji)
        for (uint64_t Ki = 1; Ki + 1 < K0; ++Ki) {
          const uint64_t Cell = At(Ii, Ji, Ki);
          R.load(CopyLoad, &Wrk2[Cell]);
          R.store(CopyStore, &P[Cell]);
          P[Cell] = Wrk2[Cell];
        }
  }
  return Gosa;
}

} // namespace

double HimenoWorkload::run(WorkloadVariant Variant, Trace *Recorder) const {
  // The paper pads the 1st and 2nd dimensions; we pad deps by 16 floats
  // and cols by 2 rows, which de-aliases both the j/i strides and the
  // plane-to-plane distances.
  const bool Optimized = Variant == WorkloadVariant::Optimized;
  const uint64_t J = Cols + (Optimized ? 2 : 0);
  const uint64_t K = Deps + (Optimized ? 16 : 0);
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runHimeno(Rows, Cols, Deps, Iterations, J, K, R);
  }
  NullRecorder R;
  return runHimeno(Rows, Cols, Deps, Iterations, J, K, R);
}

StaticAccessModel HimenoWorkload::accessModel(WorkloadVariant Variant) const {
  const bool Optimized = Variant == WorkloadVariant::Optimized;
  const uint64_t J = Cols + (Optimized ? 2 : 0);
  const uint64_t K = Deps + (Optimized ? 16 : 0);
  const uint64_t Plane = J * K;
  const uint64_t Cells = Rows * Plane;
  const int64_t Elem = sizeof(float);
  const int64_t PlaneBytes = static_cast<int64_t>(Plane) * Elem;
  const int64_t RowBytes = static_cast<int64_t>(K) * Elem;

  StaticAccessModel Model;
  Model.SourceFile = "himenobmt.c";
  Model.Complete = true;
  Model.Allocations = {{"a[]", 4 * Cells * sizeof(float), true},
                       {"b[]", 3 * Cells * sizeof(float), true},
                       {"c[]", 3 * Cells * sizeof(float), true},
                       {"p[]", Cells * sizeof(float), true},
                       {"wrk1[]", Cells * sizeof(float), true},
                       {"wrk2[]", Cells * sizeof(float), true},
                       {"bnd[]", Cells * sizeof(float), true}};

  // Interior sweep over the *unpadded* extents; strides use the padded
  // plane and row pitches.
  const std::vector<AccessLoopLevel> Sweep = {{Iterations, 0},
                                              {Rows - 2, PlaneBytes},
                                              {Cols - 2, RowBytes},
                                              {Deps - 2, Elem}};
  const uint64_t Start = static_cast<uint64_t>(PlaneBytes + RowBytes) +
                         static_cast<uint64_t>(Elem);

  auto Site = [&](const char *Array, uint32_t Line, bool Store,
                  uint32_t Phase) {
    AccessDescriptor D;
    D.Array = Array;
    D.Line = Line;
    D.ElementBytes = sizeof(float);
    D.StartOffset = Start;
    D.IsStore = Store;
    D.Phase = Phase;
    D.Levels = Sweep;
    return D;
  };

  // The 19 stencil loads of p, in program order (himenobmt.c:7): the
  // di/dj/dk displacements of each Lp call relative to the centre cell.
  AccessDescriptor LoadP = Site("p[]", 7, false, 0);
  auto Pt = [&](int64_t Di, int64_t Dj, int64_t Dk) {
    return Di * PlaneBytes + Dj * RowBytes + Dk * Elem;
  };
  LoadP.PointOffsetsBytes = {
      Pt(1, 0, 0),  Pt(0, 1, 0),   Pt(0, 0, 1),  Pt(1, 1, 0),
      Pt(1, -1, 0), Pt(-1, 1, 0),  Pt(-1, -1, 0), Pt(0, 1, 1),
      Pt(0, -1, 1), Pt(0, 1, -1),  Pt(0, -1, -1), Pt(1, 0, 1),
      Pt(-1, 0, 1), Pt(1, 0, -1),  Pt(-1, 0, -1), Pt(-1, 0, 0),
      Pt(0, -1, 0), Pt(0, 0, -1),  Pt(0, 0, 0)};

  // Only the first bank of each coefficient array is instrumented
  // (a[0], b[0], c[0]); the other banks ride the same lines uncounted.
  Model.Accesses = {LoadP,
                    Site("a[]", 8, false, 0),
                    Site("b[]", 11, false, 0),
                    Site("c[]", 19, false, 0),
                    Site("wrk1[]", 22, false, 0),
                    Site("bnd[]", 23, false, 0),
                    Site("wrk2[]", 25, true, 0),
                    // wrk2 -> p copy, a separate program region.
                    Site("wrk2[]", 41, false, 1),
                    Site("p[]", 42, true, 1)};
  return Model;
}

BinaryImage HimenoWorkload::makeBinary() const {
  LoopSpec KLoop;
  KLoop.HeaderLine = 6;
  KLoop.EndLine = 26;
  KLoop.AccessLines = {7, 8, 11, 19, 22, 23, 25};
  LoopSpec JLoop;
  JLoop.HeaderLine = 5;
  JLoop.EndLine = 26;
  JLoop.Children = {KLoop};
  LoopSpec ILoop;
  ILoop.HeaderLine = 4;
  ILoop.EndLine = 27;
  ILoop.Children = {JLoop};

  LoopSpec CopyK;
  CopyK.HeaderLine = 40;
  CopyK.EndLine = 43;
  CopyK.AccessLines = {41, 42};
  LoopSpec CopyJ;
  CopyJ.HeaderLine = 39;
  CopyJ.EndLine = 43;
  CopyJ.Children = {CopyK};
  LoopSpec CopyI;
  CopyI.HeaderLine = 38;
  CopyI.EndLine = 44;
  CopyI.Children = {CopyJ};

  LoopSpec Outer;
  Outer.HeaderLine = 3;
  Outer.EndLine = 45;
  Outer.Children = {ILoop, CopyI};

  FunctionSpec Jacobi;
  Jacobi.Name = "jacobi";
  Jacobi.StartLine = 1;
  Jacobi.EndLine = 47;
  Jacobi.Loops = {Outer};

  return lowerToBinary("himenobmt.c", {Jacobi});
}
