//===- workloads/Fft2d.h - 2D power-of-two FFT case study ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 2D radix-2 FFT over an NxN complex grid, standing in for the paper's
/// Intel MKL FFT case study (Sec. 6.3) — the library source is closed,
/// but the cache behaviour that matters is the textbook one: a 2D
/// transform of power-of-two extent runs one FFT per row (contiguous),
/// then one per column, and the column pass strides by the row size —
/// a power-of-two multiple of the set stride, folding each column onto
/// a single L1 set. The optimized build pads each row by 8 complex
/// elements, as the paper does.
///
/// Faithful to the MKL situation, the synthetic binary exposes no
/// per-line debug info for the transform loops (anonymous code blocks):
/// samples attribute to the enclosing function region only.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_FFT2D_H
#define CCPROF_WORKLOADS_FFT2D_H

#include "workloads/Workload.h"

namespace ccprof {

class Fft2dWorkload : public Workload {
public:
  explicit Fft2dWorkload(uint64_t N = 256);

  std::string name() const override { return "MKL-FFT"; }
  std::string sourceFile() const override { return "mkl_fft.cpp"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "mkl_fft.cpp:60"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

private:
  uint64_t N;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_FFT2D_H
