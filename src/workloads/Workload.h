//===- workloads/Workload.h - Instrumented benchmark kernels ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark applications of the evaluation (paper Sec. 5-6),
/// reimplemented from scratch with the same data layouts and access
/// patterns. Every workload:
///
///  * executes a *real* computation on *real* heap buffers (so wall-clock
///    speedups of the Optimized variant are honest measurements and the
///    recorded addresses carry the true cache-set mapping);
///  * optionally records each memory reference into a Trace (the Pin
///    substitute), tagged with source sites matching its synthetic
///    binary;
///  * describes its compiled shape as a BinaryImage so the offline
///    analyzer can rediscover its loops;
///  * provides the paper's padding / loop-order fix as the Optimized
///    variant.
///
/// Kernels are templated on a recorder so the plain (timing) runs compile
/// to uninstrumented code: a NullRecorder's calls are no-ops the optimizer
/// deletes, while a TraceRecorder appends to a Trace.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_WORKLOAD_H
#define CCPROF_WORKLOADS_WORKLOAD_H

#include "analysis/AccessModel.h"
#include "cfg/BinaryImage.h"
#include "trace/Trace.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ccprof {

/// Which build of the application runs: the paper always compares the
/// original code against the padding/loop-order-optimized rewrite.
enum class WorkloadVariant {
  Original,
  Optimized,
};

/// No-op recorder: compiles instrumentation away for timing runs.
class NullRecorder {
public:
  SiteId site(const char *, uint32_t, const char * = "") { return 0; }
  template <typename T> void load(SiteId, const T *) {}
  template <typename T> void store(SiteId, const T *) {}
  template <typename T> void alloc(const char *, const T *, uint64_t) {}
};

/// Recorder that appends to a Trace.
class TraceRecorder {
public:
  explicit TraceRecorder(Trace &Sink) : Sink(&Sink) {}

  SiteId site(const char *File, uint32_t Line, const char *Function = "") {
    return Sink->site(File, Line, Function);
  }
  template <typename T> void load(SiteId Site, const T *Ptr) {
    Sink->load(Site, Ptr);
  }
  template <typename T> void store(SiteId Site, const T *Ptr) {
    Sink->store(Site, Ptr);
  }
  template <typename T>
  void alloc(const char *Name, const T *Ptr, uint64_t SizeBytes) {
    Sink->registerAllocation(Name, Ptr, SizeBytes);
  }

private:
  Trace *Sink;
};

/// One benchmark application.
class Workload {
public:
  virtual ~Workload();

  /// Short name, e.g. "NW" or "HimenoBMT".
  virtual std::string name() const = 0;

  /// Source file the synthetic binary claims, e.g. "needle.cpp".
  virtual std::string sourceFile() const = 0;

  /// Ground-truth expectation: does the Original variant suffer
  /// significant conflict misses (per the paper's simulation)?
  virtual bool expectConflicts() const = 0;

  /// Runs the computation. Records every reference into \p Recorder when
  /// non-null. \returns a checksum of the result, identical across
  /// variants (padding and loop order must not change the mathematics).
  virtual double run(WorkloadVariant Variant, Trace *Recorder) const = 0;

  /// The kernel's compiled shape for the offline analyzer.
  virtual BinaryImage makeBinary() const = 0;

  /// "file:line" of the paper-reported hot loop, when one exists.
  virtual std::string hotLoopLocation() const { return {}; }

  /// Symbolic description of the variant's recorded accesses for the
  /// static conflict analyzer (src/analysis): allocation sizes in
  /// registration order plus per-site affine strides. The default is an
  /// empty model — such workloads cannot be statically screened.
  virtual StaticAccessModel accessModel(WorkloadVariant Variant) const;
};

/// The six case-study applications of paper Table 2/3 and Sec. 6:
/// NW, MKL-FFT, ADI, Tiny-DNN, Kripke, HimenoBMT.
std::vector<std::unique_ptr<Workload>> makeCaseStudySuite();

/// The 18-application Rodinia suite of paper Fig. 7 (NW plus 17
/// conflict-free kernels).
std::vector<std::unique_ptr<Workload>> makeRodiniaSuite();

/// The Sec. 2.1 symmetrization example (paper Fig. 2).
std::unique_ptr<Workload> makeSymmetrization();

/// Looks a workload up by name in both suites; nullptr if absent.
std::unique_ptr<Workload> makeWorkloadByName(const std::string &Name);

} // namespace ccprof

#endif // CCPROF_WORKLOADS_WORKLOAD_H
