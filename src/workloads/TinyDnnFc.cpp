//===- workloads/TinyDnnFc.cpp - Tiny-DNN FC layer case study ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/TinyDnnFc.h"

#include "cfg/SyntheticCodeGen.h"

#include <cassert>
#include <cmath>
#include <vector>

using namespace ccprof;

TinyDnnFcWorkload::TinyDnnFcWorkload(uint64_t InSize, uint64_t OutSize,
                                     uint64_t Batches)
    : InSize(InSize), OutSize(OutSize), Batches(Batches) {
  assert(InSize > 0 && OutSize > 0 && Batches > 0 &&
         "degenerate layer shape");
}

namespace {

/// Synthetic source "fully_connected.h":
///   20  for (i = 0; i < out_size_; i++) {
///   21    for (c = 0; c < in_size_; c++)
///   22      a[i] += W[c * out_size_ + i] * in[c];
///   23    a[i] += b[i]; out[i] = tanh-approx(a[i]);
///   24  }
template <typename Rec>
double runFc(uint64_t InSize, uint64_t OutSize, uint64_t Batches,
             uint64_t WRow, Rec &R) {
  const SiteId LoadW = R.site("fully_connected.h", 22, "forward_propagation");
  const SiteId LoadIn =
      R.site("fully_connected.h", 22, "forward_propagation");
  const SiteId StoreOut =
      R.site("fully_connected.h", 23, "forward_propagation");

  std::vector<float> W(InSize * WRow);
  std::vector<float> In(InSize);
  std::vector<float> Bias(OutSize);
  std::vector<float> Out(OutSize);
  R.alloc("W[]", W.data(), W.size() * sizeof(float));
  R.alloc("in[]", In.data(), In.size() * sizeof(float));
  R.alloc("b[]", Bias.data(), Bias.size() * sizeof(float));
  R.alloc("a[]", Out.data(), Out.size() * sizeof(float));

  for (uint64_t C = 0; C < InSize; ++C) {
    In[C] = std::sin(0.01f * static_cast<float>(C));
    for (uint64_t I = 0; I < OutSize; ++I)
      W[C * WRow + I] =
          0.001f * static_cast<float>((C * 31 + I * 7) % 201 - 100);
  }
  for (uint64_t I = 0; I < OutSize; ++I)
    Bias[I] = 0.05f * static_cast<float>(I % 11);

  double Checksum = 0.0;
  for (uint64_t Batch = 0; Batch < Batches; ++Batch) {
    for (uint64_t I = 0; I < OutSize; ++I) {
      float Acc = 0.0f;
      for (uint64_t C = 0; C < InSize; ++C) {
        R.load(LoadW, &W[C * WRow + I]);
        R.load(LoadIn, &In[C]);
        Acc += W[C * WRow + I] * In[C];
      }
      R.store(StoreOut, &Out[I]);
      Out[I] = Acc + Bias[I];
      Checksum += Out[I];
    }
  }
  return Checksum;
}

} // namespace

double TinyDnnFcWorkload::run(WorkloadVariant Variant,
                              Trace *Recorder) const {
  // Pad each weight row by 16 floats (64B) so the column walk spreads
  // over every set (gcd(WRow * 4 / 64, 64) == 1 for out_size 1024).
  const uint64_t WRow =
      OutSize + (Variant == WorkloadVariant::Optimized ? 16 : 0);
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runFc(InSize, OutSize, Batches, WRow, R);
  }
  NullRecorder R;
  return runFc(InSize, OutSize, Batches, WRow, R);
}

StaticAccessModel
TinyDnnFcWorkload::accessModel(WorkloadVariant Variant) const {
  const uint64_t WRow =
      OutSize + (Variant == WorkloadVariant::Optimized ? 16 : 0);
  const int64_t WRowBytes = static_cast<int64_t>(WRow * sizeof(float));

  StaticAccessModel Model;
  Model.SourceFile = "fully_connected.h";
  Model.Complete = true;
  Model.Allocations = {{"W[]", InSize * WRow * sizeof(float), true},
                       {"in[]", InSize * sizeof(float), true},
                       {"b[]", OutSize * sizeof(float), true},
                       {"a[]", OutSize * sizeof(float), true}};

  // W is walked down a column per output: the WRow-stride walk.
  AccessDescriptor LoadW;
  LoadW.Array = "W[]";
  LoadW.Line = 22;
  LoadW.ElementBytes = sizeof(float);
  LoadW.Levels = {
      {Batches, 0}, {OutSize, sizeof(float)}, {InSize, WRowBytes}};

  AccessDescriptor LoadIn = LoadW;
  LoadIn.Array = "in[]";
  LoadIn.Levels = {{Batches, 0}, {OutSize, 0}, {InSize, sizeof(float)}};

  AccessDescriptor StoreOut;
  StoreOut.Array = "a[]";
  StoreOut.Line = 23;
  StoreOut.ElementBytes = sizeof(float);
  StoreOut.IsStore = true;
  StoreOut.Levels = {{Batches, 0}, {OutSize, sizeof(float)}};

  Model.Accesses = {LoadW, LoadIn, StoreOut};
  return Model;
}

BinaryImage TinyDnnFcWorkload::makeBinary() const {
  LoopSpec Inner;
  Inner.HeaderLine = 21;
  Inner.EndLine = 22;
  Inner.AccessLines = {22};
  LoopSpec Outer;
  Outer.HeaderLine = 20;
  Outer.EndLine = 24;
  Outer.AccessLines = {23};
  Outer.Children = {Inner};

  FunctionSpec Forward;
  Forward.Name = "forward_propagation";
  Forward.StartLine = 18;
  Forward.EndLine = 26;
  Forward.Loops = {Outer};

  return lowerToBinary("fully_connected.h", {Forward});
}
