//===- workloads/Himeno.h - HimenoBMT Jacobi case study --------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Riken's HimenoBMT Poisson-equation benchmark (paper Sec. 6.6,
/// Listing 5): a 19-point 3D Jacobi sweep over float grids a(x4), b(x3),
/// c(x3), p, bnd, wrk1, wrk2. With power-of-two j/k extents, the j- and
/// i-neighbour accesses stride by power-of-two multiples of the line
/// size and the identically-sized grids alias each other in the L1 —
/// dozens of same-set lines per cell against 8 ways. Conflicts hop sets
/// every iteration (short conflict periods), which is why the paper
/// needs high-frequency sampling here. The optimized build pads the
/// innermost (deps) extent by 16 floats, reshaping every stride.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_HIMENO_H
#define CCPROF_WORKLOADS_HIMENO_H

#include "workloads/Workload.h"

namespace ccprof {

class HimenoWorkload : public Workload {
public:
  explicit HimenoWorkload(uint64_t Rows = 16, uint64_t Cols = 32,
                          uint64_t Deps = 128, uint64_t Iterations = 2);

  std::string name() const override { return "HimenoBMT"; }
  std::string sourceFile() const override { return "himenobmt.c"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "himenobmt.c:6"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

private:
  uint64_t Rows; ///< mimax (i extent).
  uint64_t Cols; ///< mjmax (j extent).
  uint64_t Deps; ///< mkmax (k extent).
  uint64_t Iterations;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_HIMENO_H
