//===- workloads/MiniKernels.cpp - Conflict-free Rodinia kernels ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Implementation notes. All kernels share one structural convention so
// the suite stays compact: the synthetic source places the hot loop nest
// at lines 10-19 of "<name>.cpp" (outer header 10, inner header 12,
// access statements 13-15), which MiniKernelBase::makeBinary emits. The
// Optimized variant is identical to the Original — these applications
// have nothing to pad, and the paper applies no transformation to them.
//
//===----------------------------------------------------------------------===//

#include "workloads/MiniKernels.h"

#include "cfg/SyntheticCodeGen.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace ccprof;

namespace {

/// Common scaffolding: naming, the shared two-level loop binary shape,
/// and the recorder double-dispatch.
class MiniKernelBase : public Workload {
public:
  explicit MiniKernelBase(std::string KernelName)
      : KernelName(std::move(KernelName)) {}

  std::string name() const override { return KernelName; }
  std::string sourceFile() const override { return KernelName + ".cpp"; }
  bool expectConflicts() const override { return false; }
  std::string hotLoopLocation() const override {
    return sourceFile() + ":12";
  }

  double run(WorkloadVariant Variant, Trace *Recorder) const override {
    // Original and Optimized coincide: nothing to pad.
    (void)Variant;
    if (Recorder) {
      TraceRecorder R(*Recorder);
      return runKernel(R);
    }
    NullRecorder R;
    return runKernel(R);
  }

  BinaryImage makeBinary() const override {
    LoopSpec Inner;
    Inner.HeaderLine = 12;
    Inner.EndLine = 16;
    Inner.AccessLines = {13, 14, 15};
    LoopSpec Outer;
    Outer.HeaderLine = 10;
    Outer.EndLine = 19;
    Outer.StatementLines = {11};
    Outer.Children = {Inner};
    FunctionSpec Kernel;
    Kernel.Name = KernelName + "_kernel";
    Kernel.StartLine = 5;
    Kernel.EndLine = 25;
    Kernel.Loops = {Outer};
    return lowerToBinary(sourceFile(), {Kernel});
  }

protected:
  virtual double runKernelNull(NullRecorder &R) const = 0;
  virtual double runKernelTrace(TraceRecorder &R) const = 0;
  double runKernel(NullRecorder &R) const { return runKernelNull(R); }
  double runKernel(TraceRecorder &R) const { return runKernelTrace(R); }

private:
  std::string KernelName;
};

/// CRTP shim: derive with a single template member kernel(R) and get
/// both recorder instantiations.
template <typename Derived> class MiniKernel : public MiniKernelBase {
public:
  using MiniKernelBase::MiniKernelBase;

protected:
  double runKernelNull(NullRecorder &R) const override {
    return static_cast<const Derived *>(this)->kernel(R);
  }
  double runKernelTrace(TraceRecorder &R) const override {
    return static_cast<const Derived *>(this)->kernel(R);
  }
};

//===----------------------------------------------------------------------===//
// Dense contiguous-scan kernels
//===----------------------------------------------------------------------===//

/// backprop: feed-forward layer, weights scanned row-contiguously.
class BackpropKernel : public MiniKernel<BackpropKernel> {
public:
  BackpropKernel() : MiniKernel("backprop") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadW = R.site(sourceFile().c_str(), 13, "forward");
    const SiteId LoadIn = R.site(sourceFile().c_str(), 14, "forward");
    const uint64_t Hidden = 256, Input = 1024;
    std::vector<float> W(Hidden * (Input + 1));
    std::vector<float> In(Input);
    R.alloc("w[]", W.data(), W.size() * sizeof(float));
    R.alloc("input[]", In.data(), In.size() * sizeof(float));
    for (uint64_t I = 0; I < W.size(); ++I)
      W[I] = 0.001f * static_cast<float>(I % 997);
    for (uint64_t I = 0; I < Input; ++I)
      In[I] = 0.01f * static_cast<float>(I % 101);
    double Sum = 0.0;
    for (uint64_t J = 0; J < Hidden; ++J) {
      float Acc = W[J * (Input + 1)];
      for (uint64_t I = 0; I < Input; ++I) {
        R.load(LoadW, &W[J * (Input + 1) + 1 + I]);
        R.load(LoadIn, &In[I]);
        Acc += W[J * (Input + 1) + 1 + I] * In[I];
      }
      Sum += 1.0 / (1.0 + std::exp(-static_cast<double>(Acc)));
    }
    return Sum;
  }
};

/// kmeans: point-to-centroid distances; 34 features per point.
class KmeansKernel : public MiniKernel<KmeansKernel> {
public:
  KmeansKernel() : MiniKernel("kmeans") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadPt = R.site(sourceFile().c_str(), 13, "find_nearest");
    const SiteId LoadCt = R.site(sourceFile().c_str(), 14, "find_nearest");
    const uint64_t Points = 4096, Features = 34, Clusters = 5;
    std::vector<float> Data(Points * Features);
    std::vector<float> Centers(Clusters * Features);
    R.alloc("feature[]", Data.data(), Data.size() * sizeof(float));
    R.alloc("clusters[]", Centers.data(),
            Centers.size() * sizeof(float));
    for (uint64_t I = 0; I < Data.size(); ++I)
      Data[I] = static_cast<float>((I * 131) % 257) / 257.0f;
    for (uint64_t I = 0; I < Centers.size(); ++I)
      Centers[I] = static_cast<float>((I * 17) % 97) / 97.0f;
    double Assigned = 0.0;
    for (uint64_t P = 0; P < Points; ++P) {
      double BestDist = 1e30;
      uint64_t Best = 0;
      for (uint64_t C = 0; C < Clusters; ++C) {
        double Dist = 0.0;
        for (uint64_t F = 0; F < Features; ++F) {
          R.load(LoadPt, &Data[P * Features + F]);
          R.load(LoadCt, &Centers[C * Features + F]);
          double Diff = Data[P * Features + F] - Centers[C * Features + F];
          Dist += Diff * Diff;
        }
        if (Dist < BestDist) {
          BestDist = Dist;
          Best = C;
        }
      }
      Assigned += static_cast<double>(Best);
    }
    return Assigned;
  }
};

/// lud: dense LU decomposition, non-power-of-two leading dimension.
class LudKernel : public MiniKernel<LudKernel> {
public:
  LudKernel() : MiniKernel("lud") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadPivot = R.site(sourceFile().c_str(), 13, "lud_cpu");
    const SiteId LoadRow = R.site(sourceFile().c_str(), 14, "lud_cpu");
    const SiteId Store = R.site(sourceFile().c_str(), 15, "lud_cpu");
    // 168 doubles per row (1344B = 21 lines): the odd line count keeps
    // both the row streams and the column walk spread over all sets,
    // like Rodinia's tiled lud.
    const uint64_t N = 168;
    std::vector<double> A(N * N);
    R.alloc("a[]", A.data(), A.size() * sizeof(double));
    for (uint64_t I = 0; I < N; ++I)
      for (uint64_t J = 0; J < N; ++J)
        A[I * N + J] =
            (I == J ? static_cast<double>(N) : 0.0) +
            static_cast<double>((I * 13 + J * 7) % 19) * 0.1;
    for (uint64_t K = 0; K < N; ++K) {
      for (uint64_t I = K + 1; I < N; ++I) {
        R.load(LoadRow, &A[I * N + K]);
        double Factor = A[I * N + K] / A[K * N + K];
        for (uint64_t J = K; J < N; ++J) {
          R.load(LoadPivot, &A[K * N + J]);
          R.store(Store, &A[I * N + J]);
          A[I * N + J] -= Factor * A[K * N + J];
        }
      }
    }
    double Trace = 0.0;
    for (uint64_t I = 0; I < N; ++I)
      Trace += A[I * N + I];
    return Trace;
  }
};

/// streamcluster: pairwise distances over 64-dim points.
class StreamclusterKernel : public MiniKernel<StreamclusterKernel> {
public:
  StreamclusterKernel() : MiniKernel("streamcluster") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadA = R.site(sourceFile().c_str(), 13, "pgain");
    const SiteId LoadB = R.site(sourceFile().c_str(), 14, "pgain");
    const uint64_t Points = 1024, Dim = 63, Medians = 8;
    std::vector<float> Data(Points * Dim);
    R.alloc("points[]", Data.data(), Data.size() * sizeof(float));
    for (uint64_t I = 0; I < Data.size(); ++I)
      Data[I] = static_cast<float>((I * 37) % 211);
    double Cost = 0.0;
    for (uint64_t P = 0; P < Points; ++P)
      for (uint64_t M = 0; M < Medians; ++M) {
        double Dist = 0.0;
        for (uint64_t D = 0; D < Dim; ++D) {
          R.load(LoadA, &Data[P * Dim + D]);
          R.load(LoadB, &Data[M * 101 * Dim + D]);
          double Diff = Data[P * Dim + D] - Data[M * 101 * Dim + D];
          Dist += Diff * Diff;
        }
        Cost += Dist > 50000.0 ? 1.0 : 0.0;
      }
    return Cost;
  }
};

/// myocyte: small dense ODE right-hand side evaluated many times; the
/// working set fits in L1, so misses are rare and uniform.
class MyocyteKernel : public MiniKernel<MyocyteKernel> {
public:
  MyocyteKernel() : MiniKernel("myocyte") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadY = R.site(sourceFile().c_str(), 13, "master");
    const SiteId StoreD = R.site(sourceFile().c_str(), 15, "master");
    const uint64_t States = 91, Steps = 4096;
    std::vector<double> Y(States, 0.1), Dy(States, 0.0);
    R.alloc("y[]", Y.data(), Y.size() * sizeof(double));
    R.alloc("dy[]", Dy.data(), Dy.size() * sizeof(double));
    for (uint64_t T = 0; T < Steps; ++T) {
      for (uint64_t S = 0; S < States; ++S) {
        uint64_t Prev = (S + States - 1) % States;
        R.load(LoadY, &Y[S]);
        R.load(LoadY, &Y[Prev]);
        R.store(StoreD, &Dy[S]);
        Dy[S] = 0.99 * Y[S] + 0.01 * Y[Prev];
      }
      for (uint64_t S = 0; S < States; ++S)
        Y[S] += 1e-3 * Dy[S];
    }
    double Sum = 0.0;
    for (double V : Y)
      Sum += V;
    return Sum;
  }
};

//===----------------------------------------------------------------------===//
// Stencil kernels (non-power-of-two extents)
//===----------------------------------------------------------------------===//

/// Generic 2D 5-point stencil used by several image/grid kernels.
template <typename Derived> class Stencil2dKernel : public MiniKernel<Derived> {
public:
  Stencil2dKernel(std::string KernelName, uint64_t Rows, uint64_t Cols,
                  uint64_t Steps)
      : MiniKernel<Derived>(std::move(KernelName)), Rows(Rows), Cols(Cols),
        Steps(Steps) {}

  template <typename Rec> double kernel(Rec &R) const {
    const std::string Src = this->sourceFile();
    const SiteId Load = R.site(Src.c_str(), 13, "stencil");
    const SiteId Store = R.site(Src.c_str(), 15, "stencil");
    std::vector<float> Grid(Rows * Cols), Next(Rows * Cols);
    R.alloc("grid[]", Grid.data(), Grid.size() * sizeof(float));
    R.alloc("next[]", Next.data(), Next.size() * sizeof(float));
    for (uint64_t I = 0; I < Grid.size(); ++I)
      Grid[I] = static_cast<float>((I * 97) % 331);
    for (uint64_t T = 0; T < Steps; ++T) {
      for (uint64_t I = 1; I + 1 < Rows; ++I) {
        for (uint64_t J = 1; J + 1 < Cols; ++J) {
          uint64_t C = I * Cols + J;
          R.load(Load, &Grid[C]);
          R.load(Load, &Grid[C - Cols]);
          R.load(Load, &Grid[C + Cols]);
          float V = 0.2f * (Grid[C] + Grid[C - 1] + Grid[C + 1] +
                            Grid[C - Cols] + Grid[C + Cols]);
          R.store(Store, &Next[C]);
          Next[C] = V;
        }
      }
      Grid.swap(Next);
    }
    double Sum = 0.0;
    for (float V : Grid)
      Sum += V;
    return Sum;
  }

private:
  uint64_t Rows, Cols, Steps;
};

class HotspotKernel : public Stencil2dKernel<HotspotKernel> {
public:
  HotspotKernel() : Stencil2dKernel("hotspot", 500, 500, 2) {}
};

class SradKernel : public Stencil2dKernel<SradKernel> {
public:
  SradKernel() : Stencil2dKernel("srad", 502, 458, 2) {}
};

class HeartwallKernel : public Stencil2dKernel<HeartwallKernel> {
public:
  HeartwallKernel() : Stencil2dKernel("heartwall", 609, 590, 1) {}
};

class LeukocyteKernel : public Stencil2dKernel<LeukocyteKernel> {
public:
  LeukocyteKernel() : Stencil2dKernel("leukocyte", 219, 640, 3) {}
};

/// hotspot3D: 7-point stencil on a non-power-of-two 3D grid.
class Hotspot3dKernel : public MiniKernel<Hotspot3dKernel> {
public:
  Hotspot3dKernel() : MiniKernel("hotspot3D") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId Load = R.site(sourceFile().c_str(), 13, "hotspot3d");
    const SiteId Store = R.site(sourceFile().c_str(), 15, "hotspot3d");
    const uint64_t X = 60, Y = 60, Z = 60;
    std::vector<float> T(X * Y * Z), Next(X * Y * Z);
    R.alloc("tIn[]", T.data(), T.size() * sizeof(float));
    R.alloc("tOut[]", Next.data(), Next.size() * sizeof(float));
    for (uint64_t I = 0; I < T.size(); ++I)
      T[I] = 300.0f + static_cast<float>(I % 57);
    auto At = [&](uint64_t I, uint64_t J, uint64_t K) {
      return (I * Y + J) * Z + K;
    };
    for (uint64_t I = 1; I + 1 < X; ++I)
      for (uint64_t J = 1; J + 1 < Y; ++J)
        for (uint64_t K = 1; K + 1 < Z; ++K) {
          R.load(Load, &T[At(I, J, K)]);
          R.load(Load, &T[At(I - 1, J, K)]);
          R.load(Load, &T[At(I, J - 1, K)]);
          float V = (T[At(I, J, K)] + T[At(I - 1, J, K)] +
                     T[At(I + 1, J, K)] + T[At(I, J - 1, K)] +
                     T[At(I, J + 1, K)] + T[At(I, J, K - 1)] +
                     T[At(I, J, K + 1)]) /
                    7.0f;
          R.store(Store, &Next[At(I, J, K)]);
          Next[At(I, J, K)] = V;
        }
    double Sum = 0.0;
    for (float V : Next)
      Sum += V;
    return Sum;
  }
};

/// pathfinder: row-by-row dynamic programming, fully contiguous.
class PathfinderKernel : public MiniKernel<PathfinderKernel> {
public:
  PathfinderKernel() : MiniKernel("pathfinder") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId Load = R.site(sourceFile().c_str(), 13, "run");
    const SiteId Store = R.site(sourceFile().c_str(), 15, "run");
    const uint64_t Rows = 500, Cols = 1000;
    std::vector<int32_t> Wall(Rows * Cols);
    std::vector<int32_t> Cost(Cols), NextCost(Cols);
    R.alloc("wall[]", Wall.data(), Wall.size() * sizeof(int32_t));
    R.alloc("result[]", Cost.data(), Cost.size() * sizeof(int32_t));
    for (uint64_t I = 0; I < Wall.size(); ++I)
      Wall[I] = static_cast<int32_t>((I * 29) % 10);
    for (uint64_t J = 0; J < Cols; ++J)
      Cost[J] = Wall[J];
    for (uint64_t I = 1; I < Rows; ++I) {
      for (uint64_t J = 0; J < Cols; ++J) {
        int32_t Best = Cost[J];
        if (J > 0)
          Best = std::min(Best, Cost[J - 1]);
        if (J + 1 < Cols)
          Best = std::min(Best, Cost[J + 1]);
        R.load(Load, &Wall[I * Cols + J]);
        R.store(Store, &NextCost[J]);
        NextCost[J] = Best + Wall[I * Cols + J];
      }
      Cost.swap(NextCost);
    }
    double Sum = 0.0;
    for (int32_t V : Cost)
      Sum += V;
    return Sum;
  }
};

//===----------------------------------------------------------------------===//
// Irregular / indirect-access kernels
//===----------------------------------------------------------------------===//

/// bfs: level-synchronous traversal of a random graph in CSR form.
class BfsKernel : public MiniKernel<BfsKernel> {
public:
  BfsKernel() : MiniKernel("bfs") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadEdge = R.site(sourceFile().c_str(), 13, "bfs");
    const SiteId LoadCost = R.site(sourceFile().c_str(), 14, "bfs");
    const uint64_t Nodes = 65536, Degree = 6;
    std::vector<uint32_t> Offsets(Nodes + 1);
    std::vector<uint32_t> Edges(Nodes * Degree);
    std::vector<int32_t> Cost(Nodes, -1);
    R.alloc("h_graph_nodes[]", Offsets.data(),
            Offsets.size() * sizeof(uint32_t));
    R.alloc("h_graph_edges[]", Edges.data(),
            Edges.size() * sizeof(uint32_t));
    R.alloc("h_cost[]", Cost.data(), Cost.size() * sizeof(int32_t));
    Xoshiro256 Rng(0xbf5bf5);
    for (uint64_t I = 0; I <= Nodes; ++I)
      Offsets[I] = static_cast<uint32_t>(I * Degree);
    for (uint64_t I = 0; I < Edges.size(); ++I)
      Edges[I] = static_cast<uint32_t>(Rng.nextBounded(Nodes));

    std::vector<uint32_t> Frontier{0};
    Cost[0] = 0;
    int32_t Level = 0;
    while (!Frontier.empty() && Level < 6) {
      std::vector<uint32_t> Next;
      for (uint32_t Node : Frontier) {
        for (uint32_t E = Offsets[Node]; E < Offsets[Node + 1]; ++E) {
          R.load(LoadEdge, &Edges[E]);
          uint32_t To = Edges[E];
          R.load(LoadCost, &Cost[To]);
          if (Cost[To] < 0) {
            Cost[To] = Level + 1;
            Next.push_back(To);
          }
        }
      }
      Frontier.swap(Next);
      ++Level;
    }
    double Sum = 0.0;
    for (int32_t V : Cost)
      Sum += V > 0 ? V : 0;
    return Sum;
  }
};

/// b+tree: random key lookups walking a node pool.
class BtreeKernel : public MiniKernel<BtreeKernel> {
public:
  BtreeKernel() : MiniKernel("b+tree") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadKey = R.site(sourceFile().c_str(), 13, "kernel_cpu");
    const uint64_t Order = 16, Levels = 4, Queries = 20000;
    // A dense pool of nodes; children computed implicitly.
    uint64_t Nodes = 1;
    for (uint64_t L = 1; L < Levels; ++L)
      Nodes = Nodes * Order + 1;
    std::vector<int32_t> Keys(Nodes * Order);
    R.alloc("knodes[]", Keys.data(), Keys.size() * sizeof(int32_t));
    for (uint64_t I = 0; I < Keys.size(); ++I)
      Keys[I] = static_cast<int32_t>(I * 7 % 100000);
    Xoshiro256 Rng(0xb7ee5);
    double Found = 0.0;
    for (uint64_t Q = 0; Q < Queries; ++Q) {
      int32_t Target = static_cast<int32_t>(Rng.nextBounded(100000));
      uint64_t Node = 0;
      for (uint64_t L = 0; L < Levels; ++L) {
        uint64_t Child = 0;
        for (uint64_t K = 0; K < Order; ++K) {
          R.load(LoadKey, &Keys[Node * Order + K]);
          if (Keys[Node * Order + K] <= Target)
            Child = K;
        }
        Node = Node * Order + 1 + Child;
        if (Node >= Nodes / Order)
          break;
      }
      Found += static_cast<double>(Node % 7);
    }
    return Found;
  }
};

/// cfd: unstructured-mesh flux accumulation through a neighbour table.
class CfdKernel : public MiniKernel<CfdKernel> {
public:
  CfdKernel() : MiniKernel("cfd") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadVar = R.site(sourceFile().c_str(), 13, "compute_flux");
    const SiteId StoreFlux =
        R.site(sourceFile().c_str(), 15, "compute_flux");
    const uint64_t Cells = 50000, Vars = 5, Neighbors = 4;
    std::vector<float> Variables(Cells * Vars);
    std::vector<float> Fluxes(Cells * Vars, 0.0f);
    std::vector<uint32_t> Neighbor(Cells * Neighbors);
    R.alloc("variables[]", Variables.data(),
            Variables.size() * sizeof(float));
    R.alloc("fluxes[]", Fluxes.data(), Fluxes.size() * sizeof(float));
    R.alloc("elements_surrounding[]", Neighbor.data(),
            Neighbor.size() * sizeof(uint32_t));
    Xoshiro256 Rng(0xcfdcfd);
    for (uint64_t I = 0; I < Variables.size(); ++I)
      Variables[I] = 1.0f + static_cast<float>(I % 13) * 0.01f;
    for (uint64_t I = 0; I < Neighbor.size(); ++I)
      Neighbor[I] = static_cast<uint32_t>(Rng.nextBounded(Cells));

    double Total = 0.0;
    for (uint64_t C = 0; C < Cells; ++C) {
      for (uint64_t N = 0; N < Neighbors; ++N) {
        uint32_t Nb = Neighbor[C * Neighbors + N];
        for (uint64_t V = 0; V < Vars; ++V) {
          R.load(LoadVar, &Variables[Nb * Vars + V]);
          R.store(StoreFlux, &Fluxes[C * Vars + V]);
          Fluxes[C * Vars + V] +=
              0.25f * (Variables[Nb * Vars + V] - Variables[C * Vars + V]);
        }
      }
      Total += Fluxes[C * Vars];
    }
    return Total;
  }
};

/// nn: nearest-neighbour linear scan over flat records.
class NnKernel : public MiniKernel<NnKernel> {
public:
  NnKernel() : MiniKernel("nn") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId Load = R.site(sourceFile().c_str(), 13, "nn_search");
    const uint64_t Records = 400000;
    std::vector<float> Lat(Records), Lng(Records);
    R.alloc("locations.lat[]", Lat.data(), Lat.size() * sizeof(float));
    R.alloc("locations.lng[]", Lng.data(), Lng.size() * sizeof(float));
    for (uint64_t I = 0; I < Records; ++I) {
      Lat[I] = static_cast<float>((I * 37) % 180) - 90.0f;
      Lng[I] = static_cast<float>((I * 73) % 360) - 180.0f;
    }
    const float TargetLat = 31.0f, TargetLng = -112.0f;
    double Best = 1e30;
    for (uint64_t I = 0; I < Records; ++I) {
      R.load(Load, &Lat[I]);
      R.load(Load, &Lng[I]);
      double D = (Lat[I] - TargetLat) * (Lat[I] - TargetLat) +
                 (Lng[I] - TargetLng) * (Lng[I] - TargetLng);
      if (D < Best)
        Best = D;
    }
    return Best;
  }
};

/// particlefilter: weight normalization + systematic resampling.
class ParticlefilterKernel : public MiniKernel<ParticlefilterKernel> {
public:
  ParticlefilterKernel() : MiniKernel("particlefilter") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadW = R.site(sourceFile().c_str(), 13, "particleFilter");
    const SiteId StoreW =
        R.site(sourceFile().c_str(), 15, "particleFilter");
    const uint64_t Particles = 100000, Frames = 4;
    std::vector<double> Weights(Particles, 1.0 / Particles);
    std::vector<double> Cdf(Particles);
    R.alloc("weights[]", Weights.data(),
            Weights.size() * sizeof(double));
    R.alloc("CDF[]", Cdf.data(), Cdf.size() * sizeof(double));
    double Estimate = 0.0;
    for (uint64_t F = 0; F < Frames; ++F) {
      double Sum = 0.0;
      for (uint64_t P = 0; P < Particles; ++P) {
        R.load(LoadW, &Weights[P]);
        double Likelihood =
            1.0 + 0.1 * std::cos(static_cast<double>(P + F));
        R.store(StoreW, &Weights[P]);
        Weights[P] *= Likelihood;
        Sum += Weights[P];
      }
      double Running = 0.0;
      for (uint64_t P = 0; P < Particles; ++P) {
        Running += Weights[P] / Sum;
        Cdf[P] = Running;
      }
      Estimate += Cdf[Particles / 2];
    }
    return Estimate;
  }
};

/// lavaMD: particles in boxes interacting with neighbour boxes.
class LavaMdKernel : public MiniKernel<LavaMdKernel> {
public:
  LavaMdKernel() : MiniKernel("lavaMD") {}

  template <typename Rec> double kernel(Rec &R) const {
    const SiteId LoadPos = R.site(sourceFile().c_str(), 13, "kernel_cpu");
    const SiteId StoreF = R.site(sourceFile().c_str(), 15, "kernel_cpu");
    const uint64_t Boxes = 64, PerBox = 26;
    const uint64_t N = Boxes * PerBox;
    std::vector<double> Pos(N * 3);
    std::vector<double> Force(N * 3, 0.0);
    R.alloc("rv[]", Pos.data(), Pos.size() * sizeof(double));
    R.alloc("fv[]", Force.data(), Force.size() * sizeof(double));
    for (uint64_t I = 0; I < Pos.size(); ++I)
      Pos[I] = static_cast<double>((I * 131) % 1000) * 0.001;
    for (uint64_t B = 0; B < Boxes; ++B) {
      uint64_t NeighborBox = (B + 1) % Boxes;
      for (uint64_t Pi = 0; Pi < PerBox; ++Pi) {
        uint64_t IdxI = (B * PerBox + Pi) * 3;
        for (uint64_t Pj = 0; Pj < PerBox; ++Pj) {
          uint64_t IdxJ = (NeighborBox * PerBox + Pj) * 3;
          R.load(LoadPos, &Pos[IdxJ]);
          double Dx = Pos[IdxI] - Pos[IdxJ];
          double Dy = Pos[IdxI + 1] - Pos[IdxJ + 1];
          double Dz = Pos[IdxI + 2] - Pos[IdxJ + 2];
          double R2 = Dx * Dx + Dy * Dy + Dz * Dz + 1e-6;
          R.store(StoreF, &Force[IdxI]);
          Force[IdxI] += Dx / R2;
        }
      }
    }
    double Sum = 0.0;
    for (double V : Force)
      Sum += V;
    return Sum;
  }
};

} // namespace

std::vector<std::unique_ptr<Workload>> ccprof::makeRodiniaMiniKernels() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(std::make_unique<BackpropKernel>());
  Suite.push_back(std::make_unique<BfsKernel>());
  Suite.push_back(std::make_unique<BtreeKernel>());
  Suite.push_back(std::make_unique<CfdKernel>());
  Suite.push_back(std::make_unique<HeartwallKernel>());
  Suite.push_back(std::make_unique<HotspotKernel>());
  Suite.push_back(std::make_unique<Hotspot3dKernel>());
  Suite.push_back(std::make_unique<KmeansKernel>());
  Suite.push_back(std::make_unique<LavaMdKernel>());
  Suite.push_back(std::make_unique<LeukocyteKernel>());
  Suite.push_back(std::make_unique<LudKernel>());
  Suite.push_back(std::make_unique<MyocyteKernel>());
  Suite.push_back(std::make_unique<NnKernel>());
  Suite.push_back(std::make_unique<ParticlefilterKernel>());
  Suite.push_back(std::make_unique<PathfinderKernel>());
  Suite.push_back(std::make_unique<SradKernel>());
  Suite.push_back(std::make_unique<StreamclusterKernel>());
  return Suite;
}
