//===- workloads/Adi.h - PolyBench ADI case study --------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alternating Direction Implicit 2D PDE solver from PolyBench/C (paper
/// Sec. 6.2, Listing 2). The column sweep reads matrix `u` with the full
/// 4KiB row stride — exactly one L1 set stride, so an entire column
/// lands in a single set (the paper and its simulator both observe RCD
/// of 1). The optimized build pads each row by 32 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_ADI_H
#define CCPROF_WORKLOADS_ADI_H

#include "workloads/Workload.h"

namespace ccprof {

class AdiWorkload : public Workload {
public:
  explicit AdiWorkload(uint64_t N = 512, uint64_t TimeSteps = 1);

  std::string name() const override { return "ADI"; }
  std::string sourceFile() const override { return "adi.c"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "adi.c:40"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

private:
  uint64_t N;
  uint64_t TimeSteps;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_ADI_H
