//===- workloads/NeedlemanWunsch.cpp - Rodinia NW case study -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/NeedlemanWunsch.h"

#include "cfg/SyntheticCodeGen.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ccprof;

NeedlemanWunschWorkload::NeedlemanWunschWorkload(uint64_t NumBlocks,
                                                 int32_t Penalty)
    : NumBlocks(NumBlocks), Penalty(Penalty) {
  assert(NumBlocks > 0 && "need at least one tile");
}

namespace {

constexpr uint64_t B = NeedlemanWunschWorkload::TileSize;

/// Site ids of every instrumented access, grouped per source loop; line
/// numbers mirror paper Table 4.
struct NwSites {
  SiteId InitInput;   // needle.cpp:274 (loop 273)
  SiteId InitRef;     // needle.cpp:290 (loop 289)
  SiteId Copy1Ref;    // needle.cpp:129 (loop 128, top-left pass)
  SiteId Copy1RefLoc; // needle.cpp:130
  SiteId Copy1Inp;    // needle.cpp:139 (loop 138)
  SiteId Copy1InpLoc; // needle.cpp:140
  SiteId Comp1Load;   // needle.cpp:148 (loop 147)
  SiteId Comp1Store;  // needle.cpp:150
  SiteId Write1Loc;   // needle.cpp:160 (loop 159)
  SiteId Write1Glob;  // needle.cpp:161
  SiteId Copy2Ref;    // needle.cpp:190 (loop 189, bottom-right pass)
  SiteId Copy2RefLoc; // needle.cpp:191
  SiteId Copy2Inp;    // needle.cpp:200 (loop 199)
  SiteId Copy2InpLoc; // needle.cpp:201
  SiteId Comp2Load;   // needle.cpp:209 (loop 208)
  SiteId Comp2Store;  // needle.cpp:211
  SiteId Write2Loc;   // needle.cpp:221 (loop 220)
  SiteId Write2Glob;  // needle.cpp:222
  SiteId Traceback;   // needle.cpp:321 (loop 320)

  template <typename Rec> static NwSites capture(Rec &R) {
    NwSites S;
    S.InitInput = R.site("needle.cpp", 274, "init");
    S.InitRef = R.site("needle.cpp", 290, "init");
    S.Copy1Ref = R.site("needle.cpp", 129, "needle_cpu");
    S.Copy1RefLoc = R.site("needle.cpp", 130, "needle_cpu");
    S.Copy1Inp = R.site("needle.cpp", 139, "needle_cpu");
    S.Copy1InpLoc = R.site("needle.cpp", 140, "needle_cpu");
    S.Comp1Load = R.site("needle.cpp", 148, "needle_cpu");
    S.Comp1Store = R.site("needle.cpp", 150, "needle_cpu");
    S.Write1Loc = R.site("needle.cpp", 160, "needle_cpu");
    S.Write1Glob = R.site("needle.cpp", 161, "needle_cpu");
    S.Copy2Ref = R.site("needle.cpp", 190, "needle_cpu");
    S.Copy2RefLoc = R.site("needle.cpp", 191, "needle_cpu");
    S.Copy2Inp = R.site("needle.cpp", 200, "needle_cpu");
    S.Copy2InpLoc = R.site("needle.cpp", 201, "needle_cpu");
    S.Comp2Load = R.site("needle.cpp", 209, "needle_cpu");
    S.Comp2Store = R.site("needle.cpp", 211, "needle_cpu");
    S.Write2Loc = R.site("needle.cpp", 221, "needle_cpu");
    S.Write2Glob = R.site("needle.cpp", 222, "needle_cpu");
    S.Traceback = R.site("needle.cpp", 321, "traceback");
    return S;
  }
};

int32_t max3(int32_t A, int32_t C, int32_t D) {
  return std::max(A, std::max(C, D));
}

/// Processes one BxB tile with top-left cell (RowBase, ColBase), both
/// >= 1. The Pass selects which source loops (line numbers) the
/// references are attributed to.
template <typename Rec>
void processTile(uint64_t RowBase, uint64_t ColBase, uint64_t M,
                 uint64_t RefRow, uint64_t InpRow, int32_t Penalty,
                 std::vector<int32_t> &Reference,
                 std::vector<int32_t> &Input, int32_t (&RefLocal)[B][B],
                 int32_t (&InpLocal)[B + 1][B + 1], const NwSites &S,
                 bool Pass2, Rec &R) {

  const SiteId CopyRef = Pass2 ? S.Copy2Ref : S.Copy1Ref;
  const SiteId CopyRefLoc = Pass2 ? S.Copy2RefLoc : S.Copy1RefLoc;
  const SiteId CopyInp = Pass2 ? S.Copy2Inp : S.Copy1Inp;
  const SiteId CopyInpLoc = Pass2 ? S.Copy2InpLoc : S.Copy1InpLoc;
  const SiteId CompLoad = Pass2 ? S.Comp2Load : S.Comp1Load;
  const SiteId CompStore = Pass2 ? S.Comp2Store : S.Comp1Store;
  const SiteId WriteLoc = Pass2 ? S.Write2Loc : S.Write1Loc;
  const SiteId WriteGlob = Pass2 ? S.Write2Glob : S.Write1Glob;

  // Copy the reference tile (paper Listing 1): a column of B rows with
  // the full matrix row stride — the conflicting walk.
  for (uint64_t Ty = 0; Ty < B; ++Ty) {
    for (uint64_t Tx = 0; Tx < B; ++Tx) {
      const int32_t *Src = &Reference[(RowBase + Ty) * RefRow + ColBase + Tx];
      R.load(CopyRef, Src);
      R.store(CopyRefLoc, &RefLocal[Ty][Tx]);
      RefLocal[Ty][Tx] = *Src;
    }
  }

  // Copy the input tile plus its top/left halo.
  for (uint64_t Ty = 0; Ty <= B; ++Ty) {
    for (uint64_t Tx = 0; Tx <= B; ++Tx) {
      const int32_t *Src =
          &Input[(RowBase - 1 + Ty) * InpRow + ColBase - 1 + Tx];
      R.load(CopyInp, Src);
      R.store(CopyInpLoc, &InpLocal[Ty][Tx]);
      InpLocal[Ty][Tx] = *Src;
    }
  }

  // The DP recurrence on the local tile.
  for (uint64_t Ty = 1; Ty <= B; ++Ty) {
    for (uint64_t Tx = 1; Tx <= B; ++Tx) {
      R.load(CompLoad, &InpLocal[Ty - 1][Tx - 1]);
      int32_t Diagonal = InpLocal[Ty - 1][Tx - 1] + RefLocal[Ty - 1][Tx - 1];
      int32_t Left = InpLocal[Ty][Tx - 1] - Penalty;
      int32_t Up = InpLocal[Ty - 1][Tx] - Penalty;
      R.store(CompStore, &InpLocal[Ty][Tx]);
      InpLocal[Ty][Tx] = max3(Diagonal, Left, Up);
    }
  }

  // Write the tile back to the global matrix (strided again).
  for (uint64_t Ty = 0; Ty < B; ++Ty) {
    for (uint64_t Tx = 0; Tx < B; ++Tx) {
      int32_t *Dst = &Input[(RowBase + Ty) * InpRow + ColBase + Tx];
      R.load(WriteLoc, &InpLocal[Ty + 1][Tx + 1]);
      R.store(WriteGlob, Dst);
      *Dst = InpLocal[Ty + 1][Tx + 1];
    }
  }
  (void)M;
}

template <typename Rec>
double runNw(uint64_t NumBlocks, int32_t Penalty, WorkloadVariant Variant,
             Rec &R) {
  const NwSites S = NwSites::capture(R);
  const uint64_t M = B * NumBlocks + 1; // matrix dimension
  // The paper pads reference rows by 32B and input_itemsets rows by
  // 288B for its 2048x2048 instance. For our instance the advisor
  // (core/PaddingAdvisor) selects 60B (15 ints): it lifts the column
  // walk's worst-window set coverage to 64/64, where 32B would leave
  // paired rows in each set. See EXPERIMENTS.md.
  const bool Optimized = Variant == WorkloadVariant::Optimized;
  const uint64_t RefRow = M + (Optimized ? 15 : 0);
  const uint64_t InpRow = M + (Optimized ? 15 : 0);

  std::vector<int32_t> Reference(M * RefRow, 0);
  std::vector<int32_t> Input(M * InpRow, 0);
  // Local tiles, like the Rodinia kernel's __shared__/stack buffers —
  // hoisted out of processTile (every call reuses the same storage)
  // and registered so canonicalization rebases them deterministically:
  // their set positions are part of the conflict behavior, and leaving
  // them at raw stack addresses would make measured per-set misses
  // depend on where the host stack happens to land.
  int32_t RefLocal[B][B];
  int32_t InpLocal[B + 1][B + 1];
  R.alloc("reference[]", Reference.data(),
          Reference.size() * sizeof(int32_t));
  R.alloc("input_itemsets[]", Input.data(), Input.size() * sizeof(int32_t));
  R.alloc("ref_local[][]", &RefLocal[0][0], sizeof(RefLocal));
  R.alloc("inp_local[][]", &InpLocal[0][0], sizeof(InpLocal));

  // Substitution-score matrix: deterministic pseudo-random, independent
  // of the layout (needle.cpp:289).
  uint64_t Lcg = 7;
  for (uint64_t I = 0; I < M; ++I) {
    for (uint64_t J = 0; J < M; ++J) {
      Lcg = Lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      int32_t Score = static_cast<int32_t>((Lcg >> 33) % 21) - 10;
      R.store(S.InitRef, &Reference[I * RefRow + J]);
      Reference[I * RefRow + J] = Score;
    }
  }
  // Gap-penalty borders (needle.cpp:273).
  for (uint64_t I = 0; I < M; ++I) {
    R.store(S.InitInput, &Input[I * InpRow]);
    Input[I * InpRow] = -static_cast<int32_t>(I) * Penalty;
    R.store(S.InitInput, &Input[I]);
    Input[I] = -static_cast<int32_t>(I) * Penalty;
  }

  // Pass 1 (needle.cpp:110): tile anti-diagonals of the upper-left half.
  for (uint64_t Diag = 0; Diag < NumBlocks; ++Diag) {
    for (uint64_t Br = 0; Br <= Diag; ++Br) {
      uint64_t Bc = Diag - Br;
      processTile(Br * B + 1, Bc * B + 1, M, RefRow, InpRow, Penalty,
                  Reference, Input, RefLocal, InpLocal, S, /*Pass2=*/false, R);
    }
  }
  // Pass 2 (needle.cpp:180): the lower-right half.
  for (uint64_t Diag = NumBlocks; Diag < 2 * NumBlocks - 1; ++Diag) {
    for (uint64_t Br = Diag - NumBlocks + 1; Br < NumBlocks; ++Br) {
      uint64_t Bc = Diag - Br;
      processTile(Br * B + 1, Bc * B + 1, M, RefRow, InpRow, Penalty,
                  Reference, Input, RefLocal, InpLocal, S, /*Pass2=*/true, R);
    }
  }

  // Traceback from the bottom-right corner (needle.cpp:320).
  double PathSum = 0.0;
  uint64_t I = M - 1, J = M - 1;
  while (I > 0 && J > 0) {
    R.load(S.Traceback, &Input[I * InpRow + J]);
    PathSum += Input[I * InpRow + J];
    int32_t Diagonal = Input[(I - 1) * InpRow + (J - 1)];
    int32_t Up = Input[(I - 1) * InpRow + J];
    int32_t Left = Input[I * InpRow + (J - 1)];
    if (Diagonal >= Up && Diagonal >= Left) {
      --I;
      --J;
    } else if (Up >= Left) {
      --I;
    } else {
      --J;
    }
  }

  return PathSum + Input[(M - 1) * InpRow + (M - 1)];
}

} // namespace

double NeedlemanWunschWorkload::run(WorkloadVariant Variant,
                                    Trace *Recorder) const {
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runNw(NumBlocks, Penalty, Variant, R);
  }
  NullRecorder R;
  return runNw(NumBlocks, Penalty, Variant, R);
}

StaticAccessModel
NeedlemanWunschWorkload::accessModel(WorkloadVariant Variant) const {
  const bool Optimized = Variant == WorkloadVariant::Optimized;
  const uint64_t M = B * NumBlocks + 1;
  const uint64_t RefRow = M + (Optimized ? 15 : 0);
  const uint64_t InpRow = M + (Optimized ? 15 : 0);
  const int64_t Elem = sizeof(int32_t);
  const int64_t RefRowBytes = static_cast<int64_t>(RefRow) * Elem;
  const int64_t InpRowBytes = static_cast<int64_t>(InpRow) * Elem;

  StaticAccessModel Model;
  Model.SourceFile = "needle.cpp";
  Model.Complete = true;
  Model.Allocations = {
      {"reference[]", M * RefRow * sizeof(int32_t), true},
      {"input_itemsets[]", M * InpRow * sizeof(int32_t), true},
      // Stack tiles, reused at the same address by every call;
      // registered by runNw in this same order, so the canonical
      // layout places them identically for the measured pipeline and
      // for this model.
      {"ref_local[][]", B * B * sizeof(int32_t), true},
      {"inp_local[][]", (B + 1) * (B + 1) * sizeof(int32_t), true}};

  auto Site = [&](const char *Array, uint32_t Line, bool Store,
                  uint32_t Phase, uint64_t Start,
                  std::vector<AccessLoopLevel> Levels) {
    AccessDescriptor D;
    D.Array = Array;
    D.Line = Line;
    D.ElementBytes = sizeof(int32_t);
    D.StartOffset = Start;
    D.IsStore = Store;
    D.Phase = Phase;
    D.Levels = std::move(Levels);
    return D;
  };

  // Initialization (needle.cpp:288 and :273): the score matrix fill and
  // the two gap-penalty borders.
  Model.Accesses.push_back(Site("reference[]", 290, true, 0, 0,
                                {{M, RefRowBytes}, {M, Elem}}));
  Model.Accesses.push_back(
      Site("input_itemsets[]", 274, true, 1, 0, {{M, InpRowBytes}}));
  Model.Accesses.push_back(
      Site("input_itemsets[]", 274, true, 1, 0, {{M, Elem}}));

  // The anti-diagonal schedule, one descriptor group per tile, in the
  // exact order processTile runs: copyRef, copyInp, compute, write,
  // each its own phase. The tiles of diagonal d all share one set
  // phase (their cluster base depends only on Br + Bc = d) and their
  // count ramps with d (d+1 in pass 1, then back down in pass 2),
  // which is exactly the per-set miss ramp the simulator measures.
  // Per-tile phase granularity matters: residency at the shared
  // cluster sets depends on the compute/write accesses interleaved
  // between consecutive tiles' copies, so folding a diagonal's tiles
  // into one phase per sub-loop perturbs predicted miss counts by a
  // few per tile — enough to move marginal sets across the
  // victim-imbalance bar.
  uint32_t Phase = 2;
  auto Pass = [&](bool Pass2, uint32_t CopyRefLine, uint32_t CopyInpLine,
                  uint32_t CompLine, uint32_t WriteLine) {
    const uint64_t DiagLo = Pass2 ? NumBlocks : 0;
    const uint64_t DiagHi = Pass2 ? 2 * NumBlocks - 1 : NumBlocks;
    for (uint64_t Diag = DiagLo; Diag < DiagHi; ++Diag) {
      const uint64_t BrStart = Pass2 ? Diag - NumBlocks + 1 : 0;
      const uint64_t Tiles = Pass2 ? 2 * NumBlocks - 1 - Diag : Diag + 1;
      for (uint64_t T = 0; T < Tiles; ++T) {
        const uint64_t Br = BrStart + T;
        const uint64_t Bc = Diag - Br;
        // Byte offset of cell (Br*B + Dy, Bc*B + Dx).
        auto Cell = [&](int64_t RowBytes, uint64_t Dy, uint64_t Dx) {
          return (Br * B + Dy) * static_cast<uint64_t>(RowBytes) +
                 (Bc * B + Dx) * static_cast<uint64_t>(Elem);
        };

        // Copy the reference tile: the strided column walk.
        Model.Accesses.push_back(
            Site("reference[]", CopyRefLine + 1, false, Phase,
                 Cell(RefRowBytes, 1, 1), {{B, RefRowBytes}, {B, Elem}}));
        Model.Accesses.push_back(
            Site("ref_local[][]", CopyRefLine + 2, true, Phase, 0,
                 {{B, static_cast<int64_t>(B) * Elem}, {B, Elem}}));

        // Copy the input tile plus its top/left halo ((B+1) x (B+1)).
        Model.Accesses.push_back(
            Site("input_itemsets[]", CopyInpLine + 1, false, Phase + 1,
                 Cell(InpRowBytes, 0, 0),
                 {{B + 1, InpRowBytes}, {B + 1, Elem}}));
        Model.Accesses.push_back(
            Site("inp_local[][]", CopyInpLine + 2, true, Phase + 1, 0,
                 {{B + 1, static_cast<int64_t>(B + 1) * Elem},
                  {B + 1, Elem}}));

        // The DP recurrence runs entirely on the local tile.
        Model.Accesses.push_back(
            Site("inp_local[][]", CompLine + 1, false, Phase + 2, 0,
                 {{B, static_cast<int64_t>(B + 1) * Elem}, {B, Elem}}));
        Model.Accesses.push_back(
            Site("inp_local[][]", CompLine + 3, true, Phase + 2,
                 (B + 1 + 1) * static_cast<uint64_t>(Elem),
                 {{B, static_cast<int64_t>(B + 1) * Elem}, {B, Elem}}));

        // Write-back: the second strided walk of the tile.
        Model.Accesses.push_back(
            Site("inp_local[][]", WriteLine + 1, false, Phase + 3,
                 (B + 1 + 1) * static_cast<uint64_t>(Elem),
                 {{B, static_cast<int64_t>(B + 1) * Elem}, {B, Elem}}));
        Model.Accesses.push_back(
            Site("input_itemsets[]", WriteLine + 2, true, Phase + 3,
                 Cell(InpRowBytes, 1, 1), {{B, InpRowBytes}, {B, Elem}}));
        Phase += 4;
      }
    }
  };
  Pass(false, 128, 138, 147, 159);
  Pass(true, 189, 199, 208, 220);

  // Traceback (needle.cpp:320): modeled as the pure diagonal walk from
  // the bottom-right corner — M-1 steps of -(row + 1) elements.
  Model.Accesses.push_back(
      Site("input_itemsets[]", 321, false, Phase,
           ((M - 1) * InpRow + (M - 1)) * static_cast<uint64_t>(Elem),
           {{M - 1, -(InpRowBytes + Elem)}}));
  return Model;
}

BinaryImage NeedlemanWunschWorkload::makeBinary() const {
  auto TileLoops = [](uint32_t CopyRef, uint32_t CopyInp, uint32_t Compute,
                      uint32_t Write) {
    std::vector<LoopSpec> Loops;
    LoopSpec Ref;
    Ref.HeaderLine = CopyRef;
    Ref.EndLine = CopyRef + 4;
    Ref.AccessLines = {CopyRef + 1, CopyRef + 2};
    LoopSpec Inp;
    Inp.HeaderLine = CopyInp;
    Inp.EndLine = CopyInp + 4;
    Inp.AccessLines = {CopyInp + 1, CopyInp + 2};
    LoopSpec Comp;
    Comp.HeaderLine = Compute;
    Comp.EndLine = Compute + 5;
    Comp.AccessLines = {Compute + 1, Compute + 3};
    LoopSpec Wb;
    Wb.HeaderLine = Write;
    Wb.EndLine = Write + 4;
    Wb.AccessLines = {Write + 1, Write + 2};
    Loops.push_back(Ref);
    Loops.push_back(Inp);
    Loops.push_back(Comp);
    Loops.push_back(Wb);
    return Loops;
  };

  FunctionSpec Init;
  Init.Name = "init";
  Init.StartLine = 270;
  Init.EndLine = 295;
  LoopSpec InitInput;
  InitInput.HeaderLine = 273;
  InitInput.EndLine = 278;
  InitInput.AccessLines = {274, 275};
  LoopSpec InitRefInner;
  InitRefInner.HeaderLine = 289; // header shares the outer line block
  InitRefInner.EndLine = 292;
  InitRefInner.AccessLines = {290};
  LoopSpec InitRef;
  InitRef.HeaderLine = 288;
  InitRef.EndLine = 292;
  InitRef.Children.push_back(InitRefInner);
  Init.Loops = {InitInput, InitRef};

  FunctionSpec Kernel;
  Kernel.Name = "needle_cpu";
  Kernel.StartLine = 100;
  Kernel.EndLine = 230;
  LoopSpec Pass1;
  Pass1.HeaderLine = 110;
  Pass1.EndLine = 170;
  LoopSpec Tile1;
  Tile1.HeaderLine = 112;
  Tile1.EndLine = 168;
  Tile1.Children = TileLoops(128, 138, 147, 159);
  Pass1.Children.push_back(Tile1);
  LoopSpec Pass2;
  Pass2.HeaderLine = 180;
  Pass2.EndLine = 228;
  LoopSpec Tile2;
  Tile2.HeaderLine = 182;
  Tile2.EndLine = 226;
  Tile2.Children = TileLoops(189, 199, 208, 220);
  Pass2.Children.push_back(Tile2);
  Kernel.Loops = {Pass1, Pass2};

  FunctionSpec Tb;
  Tb.Name = "traceback";
  Tb.StartLine = 315;
  Tb.EndLine = 330;
  LoopSpec Walk;
  Walk.HeaderLine = 320;
  Walk.EndLine = 326;
  Walk.AccessLines = {321, 322};
  Tb.Loops = {Walk};

  return lowerToBinary("needle.cpp", {Init, Kernel, Tb});
}
