//===- workloads/NeedlemanWunsch.h - Rodinia NW case study -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Needleman-Wunsch global DNA sequence alignment (Rodinia), the paper's
/// flagship case study (Sec. 6.1, Tables 2-4). Dynamic programming over
/// a (B*nb+1)^2 int matrix, processed in 16x16 tiles along
/// anti-diagonals; every tile copies slices of the `reference` and
/// `input_itemsets` matrices into locals — a column-strided walk whose
/// ~2KiB row stride folds onto a couple of L1 sets, and the two
/// identically-laid-out matrices collide with each other (inter-array
/// conflict). The optimized build pads `reference` rows by 32 bytes and
/// `input_itemsets` rows by 288 bytes, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_NEEDLEMANWUNSCH_H
#define CCPROF_WORKLOADS_NEEDLEMANWUNSCH_H

#include "workloads/Workload.h"

namespace ccprof {

class NeedlemanWunschWorkload : public Workload {
public:
  /// \p NumBlocks tiles per dimension (matrix dim = 16 * NumBlocks + 1).
  explicit NeedlemanWunschWorkload(uint64_t NumBlocks = 32,
                                   int32_t Penalty = 10);

  std::string name() const override { return "NW"; }
  std::string sourceFile() const override { return "needle.cpp"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override { return "needle.cpp:189"; }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

  static constexpr uint64_t TileSize = 16;

  /// Matrix dimension (rows == cols).
  uint64_t dim() const { return TileSize * NumBlocks + 1; }

private:
  uint64_t NumBlocks;
  int32_t Penalty;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_NEEDLEMANWUNSCH_H
