//===- workloads/TinyDnnFc.h - Tiny-DNN FC layer case study ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward propagation of a fully-connected layer, the Tiny-DNN case
/// study (paper Sec. 6.4, Listing 3):
///
///   for (c = 0; c < in_size; c++)
///     a[i] += W[c * out_size + i] * in[c];
///
/// The weight matrix is read down a column with stride out_size *
/// sizeof(float); with a power-of-two out_size that walk folds onto one
/// L1 set. The optimized build pads each weight row (16 floats).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_WORKLOADS_TINYDNNFC_H
#define CCPROF_WORKLOADS_TINYDNNFC_H

#include "workloads/Workload.h"

namespace ccprof {

class TinyDnnFcWorkload : public Workload {
public:
  explicit TinyDnnFcWorkload(uint64_t InSize = 512, uint64_t OutSize = 1024,
                             uint64_t Batches = 2);

  std::string name() const override { return "Tiny-DNN"; }
  std::string sourceFile() const override { return "fully_connected.h"; }
  bool expectConflicts() const override { return true; }
  std::string hotLoopLocation() const override {
    return "fully_connected.h:21";
  }
  double run(WorkloadVariant Variant, Trace *Recorder) const override;
  BinaryImage makeBinary() const override;
  StaticAccessModel accessModel(WorkloadVariant Variant) const override;

private:
  uint64_t InSize;
  uint64_t OutSize;
  uint64_t Batches;
};

} // namespace ccprof

#endif // CCPROF_WORKLOADS_TINYDNNFC_H
