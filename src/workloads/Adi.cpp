//===- workloads/Adi.cpp - PolyBench ADI case study ----------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Adi.h"

#include "cfg/SyntheticCodeGen.h"

#include <cassert>
#include <vector>

using namespace ccprof;

AdiWorkload::AdiWorkload(uint64_t N, uint64_t TimeSteps)
    : N(N), TimeSteps(TimeSteps) {
  assert(N > 2 && TimeSteps > 0 && "degenerate ADI instance");
}

namespace {

/// PolyBench-style ADI solver; synthetic source "adi.c", kernel_adi at
/// lines 30-70. The column sweep (lines 38-50) reads u down a column
/// (the conflicting walk) while building the tridiagonal recurrences;
/// the row sweep (lines 55-64) runs along rows.
template <typename Rec>
double runAdi(uint64_t N, uint64_t Steps, uint64_t Row, Rec &R) {
  const SiteId ColReadU = R.site("adi.c", 41, "kernel_adi");
  const SiteId ColWriteP = R.site("adi.c", 42, "kernel_adi");
  const SiteId ColWriteQ = R.site("adi.c", 43, "kernel_adi");
  const SiteId ColWriteV = R.site("adi.c", 49, "kernel_adi");
  const SiteId RowReadV = R.site("adi.c", 58, "kernel_adi");
  const SiteId RowWriteP = R.site("adi.c", 59, "kernel_adi");
  const SiteId RowWriteQ = R.site("adi.c", 60, "kernel_adi");
  const SiteId RowWriteU = R.site("adi.c", 63, "kernel_adi");

  std::vector<double> U(N * Row), V(N * Row), P(N * Row), Q(N * Row);
  R.alloc("u[][]", U.data(), U.size() * sizeof(double));
  R.alloc("v[][]", V.data(), V.size() * sizeof(double));
  R.alloc("p[][]", P.data(), P.size() * sizeof(double));
  R.alloc("q[][]", Q.data(), Q.size() * sizeof(double));

  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      U[I * Row + J] = (static_cast<double>(I + N - J)) /
                       static_cast<double>(N);

  const double A = -0.03, Bc = 1.06, C = -0.03;
  const double D = -0.025, E = 1.05, F = -0.025;

  for (uint64_t T = 0; T < Steps; ++T) {
    // Column sweep: solve along columns of u, writing v.
    for (uint64_t I = 1; I < N - 1; ++I) {
      V[I] = 1.0;
      P[I * Row] = 0.0;
      Q[I * Row] = V[I];
      for (uint64_t J = 1; J < N - 1; ++J) {
        double Denom = A * P[I * Row + J - 1] + Bc;
        R.load(ColReadU, &U[J * Row + I]);
        double Rhs = -D * U[J * Row + I - 1] + (1.0 + 2.0 * D) * U[J * Row + I] -
                     F * U[J * Row + I + 1];
        R.store(ColWriteP, &P[I * Row + J]);
        P[I * Row + J] = -C / Denom;
        R.store(ColWriteQ, &Q[I * Row + J]);
        Q[I * Row + J] = (Rhs - A * Q[I * Row + J - 1]) / Denom;
      }
      V[(N - 1) * Row + I] = 1.0;
      for (uint64_t J = N - 2; J >= 1; --J) {
        R.store(ColWriteV, &V[J * Row + I]);
        V[J * Row + I] =
            P[I * Row + J] * V[(J + 1) * Row + I] + Q[I * Row + J];
      }
    }
    // Row sweep: solve along rows of v, writing u.
    for (uint64_t I = 1; I < N - 1; ++I) {
      U[I * Row] = 1.0;
      P[I * Row] = 0.0;
      Q[I * Row] = U[I * Row];
      for (uint64_t J = 1; J < N - 1; ++J) {
        double Denom = D * P[I * Row + J - 1] + E;
        R.load(RowReadV, &V[I * Row + J]);
        double Rhs = -A * V[(I - 1) * Row + J] + (1.0 + 2.0 * A) * V[I * Row + J] -
                     C * V[(I + 1) * Row + J];
        R.store(RowWriteP, &P[I * Row + J]);
        P[I * Row + J] = -F / Denom;
        R.store(RowWriteQ, &Q[I * Row + J]);
        Q[I * Row + J] = (Rhs - D * Q[I * Row + J - 1]) / Denom;
      }
      U[I * Row + N - 1] = 1.0;
      for (uint64_t J = N - 2; J >= 1; --J) {
        R.store(RowWriteU, &U[I * Row + J]);
        U[I * Row + J] =
            P[I * Row + J] * U[I * Row + J + 1] + Q[I * Row + J];
      }
    }
  }

  double Checksum = 0.0;
  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      Checksum += U[I * Row + J] + V[I * Row + J];
  return Checksum;
}

} // namespace

double AdiWorkload::run(WorkloadVariant Variant, Trace *Recorder) const {
  // The paper pads 32B per row; for our N=512 instance the advisor
  // selects one full line (64B, 8 doubles) — a 32B pad still leaves
  // every pair of consecutive rows in one set. See EXPERIMENTS.md.
  const uint64_t Row =
      N + (Variant == WorkloadVariant::Optimized ? 8 : 0);
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runAdi(N, TimeSteps, Row, R);
  }
  NullRecorder R;
  return runAdi(N, TimeSteps, Row, R);
}

StaticAccessModel AdiWorkload::accessModel(WorkloadVariant Variant) const {
  const uint64_t Row =
      N + (Variant == WorkloadVariant::Optimized ? 8 : 0);
  const int64_t RowBytes = static_cast<int64_t>(Row * sizeof(double));
  const int64_t Elem = sizeof(double);
  const uint64_t Interior = N - 2; // J and I run 1 .. N-2.
  const uint64_t GridBytes = N * Row * sizeof(double);

  StaticAccessModel Model;
  Model.SourceFile = "adi.c";
  Model.Complete = true;
  Model.Allocations = {{"u[][]", GridBytes, true},
                       {"v[][]", GridBytes, true},
                       {"p[][]", GridBytes, true},
                       {"q[][]", GridBytes, true}};

  auto Site = [&](const char *Array, uint32_t Line, bool Store,
                  uint64_t Start, std::vector<AccessLoopLevel> Levels) {
    AccessDescriptor D;
    D.Array = Array;
    D.Line = Line;
    D.ElementBytes = sizeof(double);
    D.StartOffset = Start;
    D.IsStore = Store;
    D.Levels = std::move(Levels);
    return D;
  };
  const uint64_t StartIJ = static_cast<uint64_t>(RowBytes + Elem);

  // Column sweep (phase 0): u is read down columns — the row-stride
  // walk that conflicts — while p/q fill forward and v back-substitutes.
  AccessDescriptor ColU = Site(
      "u[][]", 41, false, StartIJ,
      {{TimeSteps, 0}, {Interior, Elem}, {Interior, RowBytes}});
  AccessDescriptor ColP = Site(
      "p[][]", 42, true, StartIJ,
      {{TimeSteps, 0}, {Interior, RowBytes}, {Interior, Elem}});
  AccessDescriptor ColQ = ColP;
  ColQ.Array = "q[][]";
  ColQ.Line = 43;
  AccessDescriptor ColV = Site(
      "v[][]", 49, true, Interior * static_cast<uint64_t>(RowBytes) + Elem,
      {{TimeSteps, 0}, {Interior, Elem}, {Interior, -RowBytes}});

  // Row sweep (phase 1): everything runs along rows.
  AccessDescriptor RowV = Site(
      "v[][]", 58, false, StartIJ,
      {{TimeSteps, 0}, {Interior, RowBytes}, {Interior, Elem}});
  AccessDescriptor RowP = RowV;
  RowP.Line = 59;
  RowP.Array = "p[][]";
  RowP.IsStore = true;
  AccessDescriptor RowQ = RowP;
  RowQ.Line = 60;
  RowQ.Array = "q[][]";
  AccessDescriptor RowU = Site(
      "u[][]", 63, true,
      static_cast<uint64_t>(RowBytes) + Interior * Elem,
      {{TimeSteps, 0}, {Interior, RowBytes}, {Interior, -Elem}});

  for (AccessDescriptor *D : {&ColU, &ColP, &ColQ, &ColV})
    D->Phase = 0;
  for (AccessDescriptor *D : {&RowV, &RowP, &RowQ, &RowU})
    D->Phase = 1;
  Model.Accesses = {ColU, ColP, ColQ, ColV, RowV, RowP, RowQ, RowU};
  return Model;
}

BinaryImage AdiWorkload::makeBinary() const {
  LoopSpec ColInner;
  ColInner.HeaderLine = 40;
  ColInner.EndLine = 45;
  ColInner.AccessLines = {41, 42, 43};
  LoopSpec ColBack;
  ColBack.HeaderLine = 48;
  ColBack.EndLine = 50;
  ColBack.AccessLines = {49};
  LoopSpec ColSweep;
  ColSweep.HeaderLine = 38;
  ColSweep.EndLine = 51;
  ColSweep.StatementLines = {39};
  ColSweep.Children = {ColInner, ColBack};

  LoopSpec RowInner;
  RowInner.HeaderLine = 57;
  RowInner.EndLine = 61;
  RowInner.AccessLines = {58, 59, 60};
  LoopSpec RowBack;
  RowBack.HeaderLine = 62;
  RowBack.EndLine = 64;
  RowBack.AccessLines = {63};
  LoopSpec RowSweep;
  RowSweep.HeaderLine = 55;
  RowSweep.EndLine = 65;
  RowSweep.StatementLines = {56};
  RowSweep.Children = {RowInner, RowBack};

  LoopSpec Time;
  Time.HeaderLine = 35;
  Time.EndLine = 66;
  Time.Children = {ColSweep, RowSweep};

  FunctionSpec Kernel;
  Kernel.Name = "kernel_adi";
  Kernel.StartLine = 30;
  Kernel.EndLine = 70;
  Kernel.Loops = {Time};

  return lowerToBinary("adi.c", {Kernel});
}
