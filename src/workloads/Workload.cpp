//===- workloads/Workload.cpp - Suite registries --------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/Adi.h"
#include "workloads/Fft2d.h"
#include "workloads/Himeno.h"
#include "workloads/Kripke.h"
#include "workloads/MiniKernels.h"
#include "workloads/NeedlemanWunsch.h"
#include "workloads/Symmetrization.h"
#include "workloads/TinyDnnFc.h"

using namespace ccprof;

Workload::~Workload() = default;

StaticAccessModel Workload::accessModel(WorkloadVariant) const { return {}; }

std::vector<std::unique_ptr<Workload>> ccprof::makeCaseStudySuite() {
  std::vector<std::unique_ptr<Workload>> Suite;
  Suite.push_back(std::make_unique<NeedlemanWunschWorkload>());
  Suite.push_back(std::make_unique<Fft2dWorkload>());
  Suite.push_back(std::make_unique<AdiWorkload>());
  Suite.push_back(std::make_unique<TinyDnnFcWorkload>());
  Suite.push_back(std::make_unique<KripkeWorkload>());
  Suite.push_back(std::make_unique<HimenoWorkload>());
  return Suite;
}

std::vector<std::unique_ptr<Workload>> ccprof::makeRodiniaSuite() {
  std::vector<std::unique_ptr<Workload>> Suite = makeRodiniaMiniKernels();
  Suite.push_back(std::make_unique<NeedlemanWunschWorkload>());
  return Suite;
}

std::unique_ptr<Workload> ccprof::makeSymmetrization() {
  return std::make_unique<SymmetrizationWorkload>();
}

std::unique_ptr<Workload>
ccprof::makeWorkloadByName(const std::string &Name) {
  auto Search = [&Name](std::vector<std::unique_ptr<Workload>> Suite)
      -> std::unique_ptr<Workload> {
    for (std::unique_ptr<Workload> &Candidate : Suite)
      if (Candidate->name() == Name)
        return std::move(Candidate);
    return nullptr;
  };
  if (Name == "Symmetrization")
    return makeSymmetrization();
  if (std::unique_ptr<Workload> Found = Search(makeCaseStudySuite()))
    return Found;
  return Search(makeRodiniaSuite());
}
