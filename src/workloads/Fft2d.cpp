//===- workloads/Fft2d.cpp - 2D power-of-two FFT case study --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Fft2d.h"

#include "cfg/SyntheticCodeGen.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

using namespace ccprof;

Fft2dWorkload::Fft2dWorkload(uint64_t N) : N(N) {
  assert(N >= 4 && std::has_single_bit(N) &&
         "FFT extent must be a power of two");
}

namespace {

struct Cpx {
  double Re = 0.0;
  double Im = 0.0;
};

Cpx operator+(Cpx A, Cpx B) { return {A.Re + B.Re, A.Im + B.Im}; }
Cpx operator-(Cpx A, Cpx B) { return {A.Re - B.Re, A.Im - B.Im}; }
Cpx operator*(Cpx A, Cpx B) {
  return {A.Re * B.Re - A.Im * B.Im, A.Re * B.Im + A.Im * B.Re};
}

/// In-place radix-2 DIT FFT over the strided view
/// Data[Base + k*Stride], k = 0..N-1. Twiddles come from a shared
/// precomputed table (not instrumented: they are N doubles reused by
/// every transform and never part of the conflict).
template <typename Rec>
void fftStrided(Cpx *Data, uint64_t Base, uint64_t Stride, uint64_t N,
                const std::vector<Cpx> &Twiddle, SiteId LoadSite,
                SiteId StoreSite, Rec &R) {
  auto At = [&](uint64_t K) -> Cpx & { return Data[Base + K * Stride]; };

  // Bit-reversal permutation.
  for (uint64_t I = 1, J = 0; I < N; ++I) {
    uint64_t Bit = N >> 1;
    for (; J & Bit; Bit >>= 1)
      J ^= Bit;
    J ^= Bit;
    if (I < J) {
      R.load(LoadSite, &At(I));
      R.load(LoadSite, &At(J));
      R.store(StoreSite, &At(I));
      R.store(StoreSite, &At(J));
      std::swap(At(I), At(J));
    }
  }

  // Butterfly stages.
  for (uint64_t Len = 2; Len <= N; Len <<= 1) {
    uint64_t Step = N / Len;
    for (uint64_t I = 0; I < N; I += Len) {
      for (uint64_t J = 0; J < Len / 2; ++J) {
        Cpx W = Twiddle[J * Step];
        R.load(LoadSite, &At(I + J));
        Cpx U = At(I + J);
        R.load(LoadSite, &At(I + J + Len / 2));
        Cpx V = At(I + J + Len / 2) * W;
        R.store(StoreSite, &At(I + J));
        At(I + J) = U + V;
        R.store(StoreSite, &At(I + J + Len / 2));
        At(I + J + Len / 2) = U - V;
      }
    }
  }
}

/// 2D forward FFT; synthetic source "mkl_fft.cpp" with the row pass at
/// lines 40-50 and the column pass at lines 55-65.
template <typename Rec> double runFft(uint64_t N, uint64_t Row, Rec &R) {
  const SiteId RowLoad = R.site("mkl_fft.cpp", 46, "mkl_dft_row_pass");
  const SiteId RowStore = R.site("mkl_fft.cpp", 47, "mkl_dft_row_pass");
  const SiteId ColLoad = R.site("mkl_fft.cpp", 61, "mkl_dft_col_pass");
  const SiteId ColStore = R.site("mkl_fft.cpp", 62, "mkl_dft_col_pass");

  std::vector<Cpx> Grid(N * Row);
  R.alloc("grid[][]", Grid.data(), Grid.size() * sizeof(Cpx));
  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      Grid[I * Row + J] = {std::cos(0.37 * static_cast<double>(I * N + J)),
                           std::sin(0.11 * static_cast<double>(I + 2 * J))};

  std::vector<Cpx> Twiddle(N / 2);
  for (uint64_t K = 0; K < N / 2; ++K) {
    double Angle = -2.0 * std::numbers::pi * static_cast<double>(K) /
                   static_cast<double>(N);
    Twiddle[K] = {std::cos(Angle), std::sin(Angle)};
  }

  // Row pass: contiguous transforms.
  for (uint64_t I = 0; I < N; ++I)
    fftStrided(Grid.data(), I * Row, 1, N, Twiddle, RowLoad, RowStore, R);
  // Column pass: the row-stride walk that conflicts.
  for (uint64_t J = 0; J < N; ++J)
    fftStrided(Grid.data(), J, Row, N, Twiddle, ColLoad, ColStore, R);

  double Checksum = 0.0;
  for (uint64_t I = 0; I < N; ++I)
    for (uint64_t J = 0; J < N; ++J)
      Checksum += std::abs(Grid[I * Row + J].Re) * 1e-3;
  return Checksum;
}

} // namespace

double Fft2dWorkload::run(WorkloadVariant Variant, Trace *Recorder) const {
  // The paper pads 8 complex elements per row of its 4096x4096
  // transform; for our 256x256 instance the advisor selects 4 elements
  // (64B, one line), which spreads the column pass over all sets.
  const uint64_t Row =
      N + (Variant == WorkloadVariant::Optimized ? 4 : 0);
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runFft(N, Row, R);
  }
  NullRecorder R;
  return runFft(N, Row, R);
}

StaticAccessModel Fft2dWorkload::accessModel(WorkloadVariant Variant) const {
  const uint64_t Row =
      N + (Variant == WorkloadVariant::Optimized ? 4 : 0);
  const uint64_t ElemBytes = 16; // one complex: two doubles
  const int64_t RowBytes = static_cast<int64_t>(Row * ElemBytes);

  // The FFT's butterfly order is not affine; the model is a
  // count-faithful surrogate: each transform touches its N strided
  // positions once per stage plus once for the bit-reversal pass
  // (log2(N) + 1 sweeps), with one recorded load and store per
  // position — the same per-set footprint and totals as the real
  // access sequence, in sweep order instead of butterfly order.
  uint64_t Sweeps = 1;
  for (uint64_t Len = 2; Len <= N; Len <<= 1)
    ++Sweeps;

  StaticAccessModel Model;
  Model.SourceFile = "mkl_fft.cpp";
  Model.Complete = true;
  Model.Allocations = {{"grid[][]", N * Row * ElemBytes, true}};

  auto Pass = [&](uint32_t LoadLine, uint32_t StoreLine, int64_t OuterStride,
                  int64_t InnerStride, uint32_t Phase) {
    AccessDescriptor Load;
    Load.Array = "grid[][]";
    Load.Line = LoadLine;
    Load.ElementBytes = ElemBytes;
    Load.Phase = Phase;
    Load.Levels = {{N, OuterStride}, {Sweeps, 0}, {N, InnerStride}};
    AccessDescriptor Store = Load;
    Store.Line = StoreLine;
    Store.IsStore = true;
    Model.Accesses.push_back(Load);
    Model.Accesses.push_back(Store);
  };
  // Row pass: contiguous transforms. Column pass: the row-stride walk.
  Pass(46, 47, RowBytes, static_cast<int64_t>(ElemBytes), 0);
  Pass(61, 62, static_cast<int64_t>(ElemBytes), RowBytes, 1);
  return Model;
}

BinaryImage Fft2dWorkload::makeBinary() const {
  // The MKL library ships without line info; the recovered structure is
  // two anonymous loop regions, one per pass.
  LoopSpec RowButterfly;
  RowButterfly.HeaderLine = 45;
  RowButterfly.EndLine = 49;
  RowButterfly.AccessLines = {46, 47};
  LoopSpec RowPass;
  RowPass.HeaderLine = 40;
  RowPass.EndLine = 50;
  RowPass.Children = {RowButterfly};
  FunctionSpec RowFn;
  RowFn.Name = "mkl_dft_row_pass";
  RowFn.StartLine = 38;
  RowFn.EndLine = 52;
  RowFn.Loops = {RowPass};

  LoopSpec ColButterfly;
  ColButterfly.HeaderLine = 60;
  ColButterfly.EndLine = 64;
  ColButterfly.AccessLines = {61, 62};
  LoopSpec ColPass;
  ColPass.HeaderLine = 55;
  ColPass.EndLine = 65;
  ColPass.Children = {ColButterfly};
  FunctionSpec ColFn;
  ColFn.Name = "mkl_dft_col_pass";
  ColFn.StartLine = 53;
  ColFn.EndLine = 67;
  ColFn.Loops = {ColPass};

  return lowerToBinary("mkl_fft.cpp", {RowFn, ColFn});
}
