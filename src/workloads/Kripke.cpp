//===- workloads/Kripke.cpp - Kripke particle-edit case study ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Kripke.h"

#include "cfg/SyntheticCodeGen.h"

#include <cassert>
#include <vector>

using namespace ccprof;

KripkeWorkload::KripkeWorkload(uint64_t Groups, uint64_t Directions,
                               uint64_t Zones)
    : Groups(Groups), Directions(Directions), Zones(Zones) {
  assert(Groups > 0 && Directions > 0 && Zones > 0 && "empty phase space");
}

namespace {

/// Synthetic source "kernel.cpp":
///   original (column order)      optimized (row order)
///   10 for (z = ...) {           30 for (g = ...) {
///   12   for (d = ...) {         32   for (d = ...) {
///   14     for (g = ...)         34     for (z = ...)
///   15       part += w*psi*vol;  35       part += w*psi*vol;
template <typename Rec>
double runKripke(uint64_t G, uint64_t D, uint64_t Z, bool RowOrder, Rec &R) {
  const SiteId ColPsi = R.site("kernel.cpp", 15, "particle_edit");
  const SiteId ColVol = R.site("kernel.cpp", 11, "particle_edit");
  const SiteId ColW = R.site("kernel.cpp", 13, "particle_edit");
  const SiteId RowPsi = R.site("kernel.cpp", 35, "particle_edit_rowmajor");
  const SiteId RowVol = R.site("kernel.cpp", 36, "particle_edit_rowmajor");
  const SiteId RowW = R.site("kernel.cpp", 33, "particle_edit_rowmajor");

  // psi[(g*D + d)*Z + z]: zone-contiguous, as in Kripke's GDZ nesting.
  std::vector<double> Psi(G * D * Z);
  std::vector<double> Volume(Z);
  std::vector<double> Weight(D);
  R.alloc("psi[]", Psi.data(), Psi.size() * sizeof(double));
  R.alloc("volume[]", Volume.data(), Volume.size() * sizeof(double));
  R.alloc("w[]", Weight.data(), Weight.size() * sizeof(double));

  for (uint64_t I = 0; I < Psi.size(); ++I)
    Psi[I] = 1e-6 * static_cast<double>((I * 2654435761ULL) % 1000);
  for (uint64_t I = 0; I < Z; ++I)
    Volume[I] = 1.0 + 0.001 * static_cast<double>(I);
  for (uint64_t I = 0; I < D; ++I)
    Weight[I] = 1.0 / static_cast<double>(D) +
                1e-5 * static_cast<double>(I);

  double Part = 0.0;
  if (!RowOrder) {
    // Original: psi walked with stride D*Z doubles in the inner loop.
    for (uint64_t Zi = 0; Zi < Z; ++Zi) {
      R.load(ColVol, &Volume[Zi]);
      double Vol = Volume[Zi];
      for (uint64_t Di = 0; Di < D; ++Di) {
        R.load(ColW, &Weight[Di]);
        double W = Weight[Di];
        for (uint64_t Gi = 0; Gi < G; ++Gi) {
          const double *P = &Psi[(Gi * D + Di) * Z + Zi];
          R.load(ColPsi, P);
          Part += W * *P * Vol;
        }
      }
    }
    return Part;
  }
  // Optimized: row-order traversal, contiguous in z.
  for (uint64_t Gi = 0; Gi < G; ++Gi) {
    for (uint64_t Di = 0; Di < D; ++Di) {
      R.load(RowW, &Weight[Di]);
      double W = Weight[Di];
      for (uint64_t Zi = 0; Zi < Z; ++Zi) {
        const double *P = &Psi[(Gi * D + Di) * Z + Zi];
        R.load(RowPsi, P);
        R.load(RowVol, &Volume[Zi]);
        Part += W * *P * Volume[Zi];
      }
    }
  }
  return Part;
}

} // namespace

double KripkeWorkload::run(WorkloadVariant Variant, Trace *Recorder) const {
  const bool RowOrder = Variant == WorkloadVariant::Optimized;
  if (Recorder) {
    TraceRecorder R(*Recorder);
    return runKripke(Groups, Directions, Zones, RowOrder, R);
  }
  NullRecorder R;
  return runKripke(Groups, Directions, Zones, RowOrder, R);
}

StaticAccessModel KripkeWorkload::accessModel(WorkloadVariant Variant) const {
  const int64_t Elem = sizeof(double);
  const int64_t ZoneBytes = static_cast<int64_t>(Zones) * Elem;
  const int64_t GroupBytes = static_cast<int64_t>(Directions) * ZoneBytes;

  StaticAccessModel Model;
  Model.SourceFile = "kernel.cpp";
  Model.Complete = true;
  Model.Allocations = {
      {"psi[]", Groups * Directions * Zones * sizeof(double), true},
      {"volume[]", Zones * sizeof(double), true},
      {"w[]", Directions * sizeof(double), true}};

  if (Variant == WorkloadVariant::Original) {
    // Column order: the inner g walk strides by a whole group of psi.
    AccessDescriptor Psi;
    Psi.Array = "psi[]";
    Psi.Line = 15;
    Psi.ElementBytes = sizeof(double);
    Psi.Levels = {{Zones, Elem}, {Directions, ZoneBytes}, {Groups, GroupBytes}};

    AccessDescriptor Weight;
    Weight.Array = "w[]";
    Weight.Line = 13;
    Weight.ElementBytes = sizeof(double);
    Weight.Levels = {{Zones, 0}, {Directions, Elem}};

    AccessDescriptor Volume;
    Volume.Array = "volume[]";
    Volume.Line = 11;
    Volume.ElementBytes = sizeof(double);
    Volume.Levels = {{Zones, Elem}};

    Model.Accesses = {Psi, Weight, Volume};
    return Model;
  }

  // Row order: psi contiguous in z, volume re-read per (g, d) row.
  AccessDescriptor Psi;
  Psi.Array = "psi[]";
  Psi.Line = 35;
  Psi.ElementBytes = sizeof(double);
  Psi.Levels = {{Groups, GroupBytes}, {Directions, ZoneBytes}, {Zones, Elem}};

  AccessDescriptor Volume;
  Volume.Array = "volume[]";
  Volume.Line = 36;
  Volume.ElementBytes = sizeof(double);
  Volume.Levels = {{Groups, 0}, {Directions, 0}, {Zones, Elem}};

  AccessDescriptor Weight;
  Weight.Array = "w[]";
  Weight.Line = 33;
  Weight.ElementBytes = sizeof(double);
  Weight.Levels = {{Groups, 0}, {Directions, Elem}};

  Model.Accesses = {Psi, Volume, Weight};
  return Model;
}

BinaryImage KripkeWorkload::makeBinary() const {
  LoopSpec ColG;
  ColG.HeaderLine = 14;
  ColG.EndLine = 16;
  ColG.AccessLines = {15};
  LoopSpec ColD;
  ColD.HeaderLine = 12;
  ColD.EndLine = 17;
  ColD.AccessLines = {13};
  ColD.Children = {ColG};
  LoopSpec ColZ;
  ColZ.HeaderLine = 10;
  ColZ.EndLine = 18;
  ColZ.AccessLines = {11};
  ColZ.Children = {ColD};
  FunctionSpec Col;
  Col.Name = "particle_edit";
  Col.StartLine = 8;
  Col.EndLine = 20;
  Col.Loops = {ColZ};

  LoopSpec RowZ;
  RowZ.HeaderLine = 34;
  RowZ.EndLine = 37;
  RowZ.AccessLines = {35, 36};
  LoopSpec RowD;
  RowD.HeaderLine = 32;
  RowD.EndLine = 38;
  RowD.AccessLines = {33};
  RowD.Children = {RowZ};
  LoopSpec RowG;
  RowG.HeaderLine = 30;
  RowG.EndLine = 39;
  RowG.Children = {RowD};
  FunctionSpec Row;
  Row.Name = "particle_edit_rowmajor";
  Row.StartLine = 28;
  Row.EndLine = 41;
  Row.Loops = {RowG};

  return lowerToBinary("kernel.cpp", {Col, Row});
}
