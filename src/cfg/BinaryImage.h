//===- cfg/BinaryImage.h - Synthetic machine-code image --------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal "binary executable" model: a flat instruction stream with
/// branch targets and a line table. CCProf's offline analyzer recovers
/// the CFG of the profiled binary from machine code and identifies loops
/// with interval analysis (paper Sec. 4); BinaryImage is the input to
/// that pipeline in this reproduction. Workloads lower a structural
/// description of their kernels (LoopSpec/FunctionSpec) into an image,
/// and the analyzer — which never sees the structure, only instructions —
/// must rediscover the loops.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CFG_BINARYIMAGE_H
#define CCPROF_CFG_BINARYIMAGE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccprof {

/// Control-flow kind of one synthetic instruction.
enum class InsnKind {
  Sequential, ///< Falls through to the next instruction.
  Jump,       ///< Unconditional branch to Target.
  CondBranch, ///< Branches to Target or falls through.
  Return,     ///< Ends the function.
};

/// One synthetic instruction.
struct Instruction {
  uint64_t Addr = 0;
  uint32_t Line = 0; ///< Source line (the "DWARF line table" entry).
  InsnKind Kind = InsnKind::Sequential;
  uint64_t Target = 0; ///< Branch target for Jump/CondBranch.
  bool IsMemoryAccess = false; ///< True for loads/stores (sample sites).
};

/// One function: a contiguous address range of instructions.
struct BinaryFunction {
  std::string Name;
  uint64_t EntryAddr = 0;
  size_t FirstInsn = 0; ///< Index into BinaryImage::instructions().
  size_t NumInsns = 0;
};

/// A synthetic binary: instructions, functions, and a source-file name.
class BinaryImage {
public:
  explicit BinaryImage(std::string SourceFile)
      : SourceFile(std::move(SourceFile)) {}

  const std::string &sourceFile() const { return SourceFile; }
  const std::vector<Instruction> &instructions() const { return Insns; }
  const std::vector<BinaryFunction> &functions() const { return Functions; }

  /// \returns the instruction at \p Addr, or nullptr.
  const Instruction *at(uint64_t Addr) const;

  /// \returns the source line of \p Addr, or nullopt.
  std::optional<uint32_t> lineOf(uint64_t Addr) const;

  /// \returns the function containing \p Addr, or nullptr.
  const BinaryFunction *functionContaining(uint64_t Addr) const;

  /// Appends an instruction; its address is assigned automatically.
  /// \returns the index of the new instruction.
  size_t appendInstruction(Instruction Insn);

  /// Sets the branch target of instruction \p Index (fixup for forward
  /// branches whose target address is unknown at emission time).
  void patchTarget(size_t Index, uint64_t Target);

  /// Declares that the instructions [FirstInsn, end) appended since the
  /// previous function boundary form function \p Name.
  void beginFunction(std::string Name);
  void endFunction();

  /// Byte size of every synthetic instruction.
  static constexpr uint64_t InsnSize = 4;

  /// Address the next appended instruction will receive.
  uint64_t nextAddr() const { return BaseAddr + Insns.size() * InsnSize; }

private:
  std::string SourceFile;
  std::vector<Instruction> Insns;
  std::vector<BinaryFunction> Functions;
  std::optional<size_t> OpenFunction;
  static constexpr uint64_t BaseAddr = 0x400000; ///< Typical ELF text base.
};

} // namespace ccprof

#endif // CCPROF_CFG_BINARYIMAGE_H
