//===- cfg/Cfg.h - Control-flow graph recovered from a binary --*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks and the control-flow graph recovered from a
/// BinaryImage function with the classical leader algorithm. The CFG
/// feeds dominator computation and Havlak's interval analysis.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CFG_CFG_H
#define CCPROF_CFG_CFG_H

#include "cfg/BinaryImage.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace ccprof {

/// Index of a basic block within its Cfg.
using BlockId = uint32_t;

/// A maximal straight-line instruction run.
struct BasicBlock {
  BlockId Id = 0;
  uint64_t FirstAddr = 0;
  uint64_t LastAddr = 0;
  uint32_t MinLine = 0; ///< Smallest source line covered by the block.
  uint32_t MaxLine = 0; ///< Largest source line covered by the block.
  std::vector<BlockId> Succs;
  std::vector<BlockId> Preds;
};

/// Control-flow graph of one function.
class Cfg {
public:
  /// Recovers the CFG of \p Function inside \p Image: computes leaders
  /// (entry, branch targets, post-branch instructions), forms maximal
  /// blocks, and wires fallthrough and branch edges.
  static Cfg build(const BinaryImage &Image, const BinaryFunction &Function);

  size_t numBlocks() const { return Blocks.size(); }
  const BasicBlock &block(BlockId Id) const { return Blocks[Id]; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  BlockId entry() const { return 0; }

  /// \returns the block containing \p Addr, or nullopt.
  std::optional<BlockId> blockContaining(uint64_t Addr) const;

  /// Blocks in reverse postorder from the entry. Unreachable blocks are
  /// omitted.
  std::vector<BlockId> reversePostOrder() const;

private:
  std::vector<BasicBlock> Blocks;
  uint64_t FirstAddr = 0;
  uint64_t LastAddr = 0;
  std::vector<BlockId> AddrToBlock; ///< Per instruction slot.
};

} // namespace ccprof

#endif // CCPROF_CFG_CFG_H
