//===- cfg/SyntheticCodeGen.cpp - Lower loop specs to binaries -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/SyntheticCodeGen.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

namespace {

/// One lowering work item inside a region, ordered by source line.
struct BodyItem {
  uint32_t Line;
  enum class ItemKind { Access, Statement, Loop } Kind;
  const LoopSpec *Loop = nullptr;
};

std::vector<BodyItem> collectItems(const std::vector<uint32_t> &AccessLines,
                                   const std::vector<uint32_t> &StatementLines,
                                   const std::vector<LoopSpec> &Loops) {
  std::vector<BodyItem> Items;
  Items.reserve(AccessLines.size() + StatementLines.size() + Loops.size());
  for (uint32_t Line : AccessLines)
    Items.push_back(BodyItem{Line, BodyItem::ItemKind::Access, nullptr});
  for (uint32_t Line : StatementLines)
    Items.push_back(BodyItem{Line, BodyItem::ItemKind::Statement, nullptr});
  for (const LoopSpec &Loop : Loops)
    Items.push_back(BodyItem{Loop.HeaderLine, BodyItem::ItemKind::Loop, &Loop});
  std::stable_sort(Items.begin(), Items.end(),
                   [](const BodyItem &A, const BodyItem &B) {
                     return A.Line < B.Line;
                   });
  return Items;
}

void lowerLoop(BinaryImage &Image, const LoopSpec &Loop) {
  assert(Loop.HeaderLine <= Loop.EndLine && "loop lines out of order");

  // Preheader: induction-variable init.
  Image.appendInstruction(
      Instruction{0, Loop.HeaderLine, InsnKind::Sequential, 0, false});

  // Header: loop test; exits past the latch (patched below).
  size_t HeaderIndex = Image.appendInstruction(
      Instruction{0, Loop.HeaderLine, InsnKind::CondBranch, 0, false});
  uint64_t HeaderAddr = Image.instructions()[HeaderIndex].Addr;

  for (const BodyItem &Item :
       collectItems(Loop.AccessLines, Loop.StatementLines, Loop.Children)) {
    switch (Item.Kind) {
    case BodyItem::ItemKind::Access:
      Image.appendInstruction(
          Instruction{0, Item.Line, InsnKind::Sequential, 0, true});
      break;
    case BodyItem::ItemKind::Statement:
      Image.appendInstruction(
          Instruction{0, Item.Line, InsnKind::Sequential, 0, false});
      break;
    case BodyItem::ItemKind::Loop:
      lowerLoop(Image, *Item.Loop);
      break;
    }
  }

  // Latch: back edge to the header.
  Image.appendInstruction(
      Instruction{0, Loop.EndLine, InsnKind::Jump, HeaderAddr, false});

  // The exit block starts at the next emitted instruction.
  Image.patchTarget(HeaderIndex, Image.nextAddr());
}

} // namespace

BinaryImage ccprof::lowerToBinary(std::string SourceFile,
                                  const std::vector<FunctionSpec> &Functions) {
  BinaryImage Image(std::move(SourceFile));
  for (const FunctionSpec &Function : Functions) {
    Image.beginFunction(Function.Name);
    // Prologue.
    Image.appendInstruction(
        Instruction{0, Function.StartLine, InsnKind::Sequential, 0, false});
    for (const BodyItem &Item :
         collectItems(Function.AccessLines, Function.StatementLines,
                      Function.Loops)) {
      switch (Item.Kind) {
      case BodyItem::ItemKind::Access:
        Image.appendInstruction(
            Instruction{0, Item.Line, InsnKind::Sequential, 0, true});
        break;
      case BodyItem::ItemKind::Statement:
        Image.appendInstruction(
            Instruction{0, Item.Line, InsnKind::Sequential, 0, false});
        break;
      case BodyItem::ItemKind::Loop:
        lowerLoop(Image, *Item.Loop);
        break;
      }
    }
    Image.appendInstruction(
        Instruction{0, Function.EndLine, InsnKind::Return, 0, false});
    Image.endFunction();
  }
  return Image;
}
