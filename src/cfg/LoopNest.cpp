//===- cfg/LoopNest.cpp - Havlak interval analysis ------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The implementation follows Havlak's original formulation: DFS preorder
// numbering, back-edge classification by ancestorship, and a union-find
// over collapsed loop bodies processed in reverse preorder. Irreducible
// entries are attributed to the enclosing interval, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "cfg/LoopNest.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace ccprof;

namespace {

/// Union-find over DFS-numbered nodes with path compression.
class UnionFind {
public:
  explicit UnionFind(size_t Size) : Parent(Size) {
    for (size_t I = 0; I < Size; ++I)
      Parent[I] = static_cast<uint32_t>(I);
  }

  uint32_t find(uint32_t X) {
    uint32_t Root = X;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[X] != Root) {
      uint32_t Next = Parent[X];
      Parent[X] = Root;
      X = Next;
    }
    return Root;
  }

  /// Attaches \p Child's class under \p NewRoot.
  void unite(uint32_t Child, uint32_t NewRoot) {
    Parent[find(Child)] = find(NewRoot);
  }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

LoopNest LoopNest::analyze(const Cfg &Graph) {
  LoopNest Result;
  const size_t NumBlocks = Graph.numBlocks();
  Result.BlockLoop.assign(NumBlocks, InvalidLoop);
  if (NumBlocks == 0)
    return Result;

  // --- DFS preorder numbering (iterative) -------------------------------
  constexpr uint32_t Unvisited = ~uint32_t{0};
  std::vector<uint32_t> Number(NumBlocks, Unvisited); // block -> preorder
  std::vector<uint32_t> Last(NumBlocks, 0);  // by preorder number
  std::vector<BlockId> NodeOf;               // preorder number -> block
  NodeOf.reserve(NumBlocks);

  {
    std::vector<std::pair<BlockId, size_t>> Stack;
    Number[Graph.entry()] = static_cast<uint32_t>(NodeOf.size());
    NodeOf.push_back(Graph.entry());
    Stack.emplace_back(Graph.entry(), 0);
    while (!Stack.empty()) {
      auto &[Block, NextSucc] = Stack.back();
      const std::vector<BlockId> &Succs = Graph.block(Block).Succs;
      if (NextSucc < Succs.size()) {
        BlockId Succ = Succs[NextSucc++];
        if (Number[Succ] == Unvisited) {
          Number[Succ] = static_cast<uint32_t>(NodeOf.size());
          NodeOf.push_back(Succ);
          Stack.emplace_back(Succ, 0);
        }
        continue;
      }
      Last[Number[Block]] = static_cast<uint32_t>(NodeOf.size()) - 1;
      Stack.pop_back();
    }
  }

  const uint32_t NumReachable = static_cast<uint32_t>(NodeOf.size());
  auto IsAncestor = [&](uint32_t W, uint32_t V) {
    return W <= V && V <= Last[W];
  };

  // --- Back-edge classification (by preorder number) ---------------------
  std::vector<std::vector<uint32_t>> BackPreds(NumReachable);
  std::vector<std::vector<uint32_t>> NonBackPreds(NumReachable);
  for (uint32_t W = 0; W < NumReachable; ++W) {
    for (BlockId PredBlock : Graph.block(NodeOf[W]).Preds) {
      uint32_t V = Number[PredBlock];
      if (V == Unvisited)
        continue; // Unreachable predecessor.
      if (IsAncestor(W, V))
        BackPreds[W].push_back(V);
      else
        NonBackPreds[W].push_back(V);
    }
  }

  // --- Main Havlak fixpoint in reverse preorder --------------------------
  UnionFind Uf(NumReachable);
  // Loop headed at preorder number W, if one was created.
  std::vector<LoopId> LoopOfHeader(NumReachable, InvalidLoop);

  for (uint32_t W = NumReachable; W-- > 0;) {
    std::vector<uint32_t> NodePool;
    std::unordered_set<uint32_t> InPool;
    bool SelfLoop = false;
    for (uint32_t V : BackPreds[W]) {
      if (V == W) {
        SelfLoop = true;
        continue;
      }
      uint32_t Rep = Uf.find(V);
      if (InPool.insert(Rep).second)
        NodePool.push_back(Rep);
    }

    bool Irreducible = false;
    std::vector<uint32_t> Worklist = NodePool;
    while (!Worklist.empty()) {
      uint32_t X = Worklist.back();
      Worklist.pop_back();
      // X != W always holds here, so growing NonBackPreds[W] below never
      // invalidates this iteration.
      for (uint32_t Y : NonBackPreds[X]) {
        uint32_t Rep = Uf.find(Y);
        if (!IsAncestor(W, Rep)) {
          // An entry into the loop that bypasses the header: the region
          // is irreducible. Defer the edge to the enclosing interval.
          Irreducible = true;
          NonBackPreds[W].push_back(Rep);
          continue;
        }
        if (Rep != W && InPool.insert(Rep).second) {
          NodePool.push_back(Rep);
          Worklist.push_back(Rep);
        }
      }
    }

    if (NodePool.empty() && !SelfLoop)
      continue;

    // Materialize the loop.
    LoopInfo Loop;
    Loop.Id = static_cast<LoopId>(Result.Loops.size());
    Loop.Header = NodeOf[W];
    Loop.IsReducible = !Irreducible;
    Loop.OwnBlocks.push_back(NodeOf[W]);
    LoopOfHeader[W] = Loop.Id;

    for (uint32_t X : NodePool) {
      // X is a union-find representative: either a plain node or the
      // header of an already-built inner loop.
      if (LoopOfHeader[X] != InvalidLoop)
        Result.Loops[LoopOfHeader[X]].Parent = Loop.Id;
      else
        Loop.OwnBlocks.push_back(NodeOf[X]);
      Uf.unite(X, W);
    }
    Result.Loops.push_back(std::move(Loop));
  }

  // --- Depths, innermost-block map, line spans ---------------------------
  for (LoopInfo &Loop : Result.Loops)
    for (BlockId Block : Loop.OwnBlocks)
      Result.BlockLoop[Block] = Loop.Id;

  // Inner headers carry larger preorder numbers, so reverse preorder
  // creates inner loops first: a parent always has a larger loop id than
  // its children, and one descending pass computes depths.
  for (size_t I = Result.Loops.size(); I-- > 0;) {
    LoopInfo &Loop = Result.Loops[I];
    Loop.Depth =
        Loop.Parent ? Result.Loops[*Loop.Parent].Depth + 1 : 1;
  }

  // Line spans: fold own blocks, then propagate child spans upward
  // (children have smaller ids than parents).
  for (LoopInfo &Loop : Result.Loops) {
    const BasicBlock &Header = Graph.block(Loop.Header);
    Loop.MinLine = Header.MinLine;
    Loop.MaxLine = Header.MaxLine;
    for (BlockId Block : Loop.OwnBlocks) {
      Loop.MinLine = std::min(Loop.MinLine, Graph.block(Block).MinLine);
      Loop.MaxLine = std::max(Loop.MaxLine, Graph.block(Block).MaxLine);
    }
  }
  for (const LoopInfo &Loop : Result.Loops) {
    if (!Loop.Parent)
      continue;
    LoopInfo &Parent = Result.Loops[*Loop.Parent];
    Parent.MinLine = std::min(Parent.MinLine, Loop.MinLine);
    Parent.MaxLine = std::max(Parent.MaxLine, Loop.MaxLine);
  }

  return Result;
}

std::optional<LoopId> LoopNest::innermostLoopOf(BlockId Block) const {
  assert(Block < BlockLoop.size() && "block id out of range");
  LoopId Id = BlockLoop[Block];
  if (Id == InvalidLoop)
    return std::nullopt;
  return Id;
}

std::optional<LoopId> LoopNest::innermostLoopForLine(uint32_t Line) const {
  std::optional<LoopId> Best;
  for (const LoopInfo &Loop : Loops) {
    if (Line < Loop.MinLine || Line > Loop.MaxLine)
      continue;
    if (!Best) {
      Best = Loop.Id;
      continue;
    }
    const LoopInfo &Current = Loops[*Best];
    uint32_t LoopSpan = Loop.MaxLine - Loop.MinLine;
    uint32_t BestSpan = Current.MaxLine - Current.MinLine;
    if (Loop.Depth > Current.Depth ||
        (Loop.Depth == Current.Depth && LoopSpan < BestSpan))
      Best = Loop.Id;
  }
  return Best;
}

std::vector<BlockId> LoopNest::allBlocksOf(LoopId Id) const {
  assert(Id < Loops.size() && "loop id out of range");
  std::vector<BlockId> Blocks = Loops[Id].OwnBlocks;
  // Children have smaller ids; scan all loops whose parent chain reaches
  // Id. Loop counts are tiny, so the quadratic scan is fine.
  for (const LoopInfo &Loop : Loops) {
    if (Loop.Id == Id)
      continue;
    std::optional<LoopId> Ancestor = Loop.Parent;
    while (Ancestor && *Ancestor != Id)
      Ancestor = Loops[*Ancestor].Parent;
    if (Ancestor)
      Blocks.insert(Blocks.end(), Loop.OwnBlocks.begin(),
                    Loop.OwnBlocks.end());
  }
  return Blocks;
}
