//===- cfg/Cfg.cpp - Control-flow graph recovered from a binary ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

Cfg Cfg::build(const BinaryImage &Image, const BinaryFunction &Function) {
  assert(Function.NumInsns > 0 && "cannot build a CFG for an empty function");
  const std::vector<Instruction> &Insns = Image.instructions();
  const size_t First = Function.FirstInsn;
  const size_t End = Function.FirstInsn + Function.NumInsns;
  const uint64_t LowAddr = Insns[First].Addr;
  const uint64_t HighAddr = Insns[End - 1].Addr;

  [[maybe_unused]] auto InRange = [&](uint64_t Addr) {
    return Addr >= LowAddr && Addr <= HighAddr;
  };
  auto SlotOf = [&](uint64_t Addr) {
    return static_cast<size_t>((Addr - LowAddr) / BinaryImage::InsnSize);
  };

  // Pass 1: leaders. The entry, every branch target, and every
  // instruction following a branch or return start a block.
  std::vector<bool> IsLeader(Function.NumInsns, false);
  IsLeader[0] = true;
  for (size_t I = First; I < End; ++I) {
    const Instruction &Insn = Insns[I];
    switch (Insn.Kind) {
    case InsnKind::Sequential:
      break;
    case InsnKind::Jump:
    case InsnKind::CondBranch:
      assert(InRange(Insn.Target) && "branch target escapes the function");
      IsLeader[SlotOf(Insn.Target)] = true;
      if (I + 1 < End)
        IsLeader[I + 1 - First] = true;
      break;
    case InsnKind::Return:
      if (I + 1 < End)
        IsLeader[I + 1 - First] = true;
      break;
    }
  }

  // Pass 2: form blocks as maximal leader-to-leader runs.
  Cfg Result;
  Result.FirstAddr = LowAddr;
  Result.LastAddr = HighAddr;
  Result.AddrToBlock.assign(Function.NumInsns, 0);
  for (size_t Slot = 0; Slot < Function.NumInsns; ++Slot) {
    if (IsLeader[Slot]) {
      BasicBlock Block;
      Block.Id = static_cast<BlockId>(Result.Blocks.size());
      Block.FirstAddr = Insns[First + Slot].Addr;
      Block.MinLine = Block.MaxLine = Insns[First + Slot].Line;
      Result.Blocks.push_back(Block);
    }
    BasicBlock &Current = Result.Blocks.back();
    const Instruction &Insn = Insns[First + Slot];
    Current.LastAddr = Insn.Addr;
    Current.MinLine = std::min(Current.MinLine, Insn.Line);
    Current.MaxLine = std::max(Current.MaxLine, Insn.Line);
    Result.AddrToBlock[Slot] = Current.Id;
  }

  // Pass 3: edges from each block's terminator.
  for (BasicBlock &Block : Result.Blocks) {
    const Instruction &Last = *Image.at(Block.LastAddr);
    auto AddEdge = [&](uint64_t TargetAddr) {
      BlockId Succ = Result.AddrToBlock[SlotOf(TargetAddr)];
      Block.Succs.push_back(Succ);
      Result.Blocks[Succ].Preds.push_back(Block.Id);
    };
    switch (Last.Kind) {
    case InsnKind::Sequential:
      if (Block.LastAddr < HighAddr)
        AddEdge(Block.LastAddr + BinaryImage::InsnSize);
      break;
    case InsnKind::Jump:
      AddEdge(Last.Target);
      break;
    case InsnKind::CondBranch:
      AddEdge(Last.Target);
      if (Block.LastAddr < HighAddr)
        AddEdge(Block.LastAddr + BinaryImage::InsnSize);
      break;
    case InsnKind::Return:
      break;
    }
  }
  return Result;
}

std::optional<BlockId> Cfg::blockContaining(uint64_t Addr) const {
  if (Addr < FirstAddr || Addr > LastAddr ||
      (Addr - FirstAddr) % BinaryImage::InsnSize != 0)
    return std::nullopt;
  return AddrToBlock[(Addr - FirstAddr) / BinaryImage::InsnSize];
}

std::vector<BlockId> Cfg::reversePostOrder() const {
  std::vector<BlockId> PostOrder;
  PostOrder.reserve(Blocks.size());
  std::vector<uint8_t> State(Blocks.size(), 0); // 0=new 1=open 2=done
  // Iterative DFS that emits a node after all its successors.
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.emplace_back(entry(), 0);
  State[entry()] = 1;
  while (!Stack.empty()) {
    auto &[Node, NextSucc] = Stack.back();
    const BasicBlock &Block = Blocks[Node];
    if (NextSucc < Block.Succs.size()) {
      BlockId Succ = Block.Succs[NextSucc++];
      if (State[Succ] == 0) {
        State[Succ] = 1;
        Stack.emplace_back(Succ, 0);
      }
      continue;
    }
    State[Node] = 2;
    PostOrder.push_back(Node);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}
