//===- cfg/SyntheticCodeGen.h - Lower loop specs to binaries ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a structural description of a kernel (a tree of counted loops
/// with memory-access statements) into a BinaryImage, the way a compiler
/// lowers source to machine code. Workloads describe their shape here;
/// the offline analyzer then has to *rediscover* the loops from the
/// instruction stream with CFG recovery + Havlak, mirroring the paper's
/// pipeline where loops are identified from fully optimized binaries,
/// never from source.
///
/// Lowering of one loop:
///
///   preheader:  init            (Sequential, line = HeaderLine)
///   header:     test, br exit   (CondBranch -> exit, line = HeaderLine)
///   body:       stmts/children  (in line order)
///   latch:      jmp header      (Jump, line = EndLine)
///   exit:       ...
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CFG_SYNTHETICCODEGEN_H
#define CCPROF_CFG_SYNTHETICCODEGEN_H

#include "cfg/BinaryImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccprof {

/// A loop in a kernel description.
struct LoopSpec {
  uint32_t HeaderLine = 0; ///< Line of the `for (...)` statement.
  uint32_t EndLine = 0;    ///< Line of the loop's closing brace.
  /// Lines inside this loop (not inside a child) that perform memory
  /// accesses; each lowers to one memory-access instruction.
  std::vector<uint32_t> AccessLines;
  /// Straight-line (non-access) statement lines inside this loop.
  std::vector<uint32_t> StatementLines;
  std::vector<LoopSpec> Children;
};

/// A function: optional top-level statements plus top-level loops.
struct FunctionSpec {
  std::string Name;
  uint32_t StartLine = 0;
  uint32_t EndLine = 0;
  std::vector<uint32_t> AccessLines;    ///< Loop-free access lines.
  std::vector<uint32_t> StatementLines; ///< Loop-free statement lines.
  std::vector<LoopSpec> Loops;
};

/// Lowers \p Functions into a fresh image for \p SourceFile.
BinaryImage lowerToBinary(std::string SourceFile,
                          const std::vector<FunctionSpec> &Functions);

} // namespace ccprof

#endif // CCPROF_CFG_SYNTHETICCODEGEN_H
