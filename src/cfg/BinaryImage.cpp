//===- cfg/BinaryImage.cpp - Synthetic machine-code image -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/BinaryImage.h"

#include <cassert>

using namespace ccprof;

const Instruction *BinaryImage::at(uint64_t Addr) const {
  if (Addr < BaseAddr || (Addr - BaseAddr) % InsnSize != 0)
    return nullptr;
  size_t Index = (Addr - BaseAddr) / InsnSize;
  return Index < Insns.size() ? &Insns[Index] : nullptr;
}

std::optional<uint32_t> BinaryImage::lineOf(uint64_t Addr) const {
  const Instruction *Insn = at(Addr);
  if (!Insn)
    return std::nullopt;
  return Insn->Line;
}

const BinaryFunction *BinaryImage::functionContaining(uint64_t Addr) const {
  const Instruction *Insn = at(Addr);
  if (!Insn)
    return nullptr;
  size_t Index = (Addr - BaseAddr) / InsnSize;
  for (const BinaryFunction &Function : Functions)
    if (Index >= Function.FirstInsn &&
        Index < Function.FirstInsn + Function.NumInsns)
      return &Function;
  return nullptr;
}

size_t BinaryImage::appendInstruction(Instruction Insn) {
  Insn.Addr = nextAddr();
  Insns.push_back(Insn);
  return Insns.size() - 1;
}

void BinaryImage::patchTarget(size_t Index, uint64_t Target) {
  assert(Index < Insns.size() && "instruction index out of range");
  assert((Insns[Index].Kind == InsnKind::Jump ||
          Insns[Index].Kind == InsnKind::CondBranch) &&
         "only branches have targets");
  Insns[Index].Target = Target;
}

void BinaryImage::beginFunction(std::string Name) {
  assert(!OpenFunction && "previous function not ended");
  OpenFunction = Functions.size();
  Functions.push_back(
      BinaryFunction{std::move(Name), nextAddr(), Insns.size(), 0});
}

void BinaryImage::endFunction() {
  assert(OpenFunction && "no open function");
  BinaryFunction &Function = Functions[*OpenFunction];
  assert(Insns.size() > Function.FirstInsn && "empty function");
  Function.NumInsns = Insns.size() - Function.FirstInsn;
  OpenFunction.reset();
}
