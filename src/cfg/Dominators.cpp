//===- cfg/Dominators.cpp - Dominator tree over a Cfg ---------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <cassert>

using namespace ccprof;

DominatorTree::DominatorTree(const Cfg &Graph)
    : Idom(Graph.numBlocks(), InvalidBlock) {
  const std::vector<BlockId> Rpo = Graph.reversePostOrder();
  std::vector<uint32_t> RpoIndex(Graph.numBlocks(), ~uint32_t{0});
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[Graph.entry()] = Graph.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId Node : Rpo) {
      if (Node == Graph.entry())
        continue;
      BlockId NewIdom = InvalidBlock;
      for (BlockId Pred : Graph.block(Node).Preds) {
        if (Idom[Pred] == InvalidBlock)
          continue; // Pred not yet processed or unreachable.
        NewIdom = NewIdom == InvalidBlock ? Pred : Intersect(Pred, NewIdom);
      }
      assert(NewIdom != InvalidBlock &&
             "reachable non-entry block must have a processed predecessor");
      if (Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  if (Idom[B] == InvalidBlock)
    return false;
  BlockId Node = B;
  while (true) {
    if (Node == A)
      return true;
    BlockId Parent = Idom[Node];
    if (Parent == Node)
      return false; // Reached the entry without meeting A.
    Node = Parent;
  }
}
