//===- cfg/Dominators.h - Dominator tree over a Cfg ------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree computed with the Cooper-Harvey-Kennedy iterative
/// algorithm ("A Simple, Fast Dominance Algorithm"). Used by tests to
/// cross-check Havlak's loop headers (a natural loop's header dominates
/// all blocks of the loop) and exposed as part of the binary-analysis
/// substrate.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CFG_DOMINATORS_H
#define CCPROF_CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <vector>

namespace ccprof {

/// Immediate-dominator tree of a Cfg. Unreachable blocks have no idom
/// and dominate nothing.
class DominatorTree {
public:
  explicit DominatorTree(const Cfg &Graph);

  /// \returns the immediate dominator of \p Block; the entry block is its
  /// own idom. Unreachable blocks return InvalidBlock.
  BlockId idom(BlockId Block) const { return Idom[Block]; }

  /// \returns true if \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

  /// \returns true if \p Block is reachable from the entry.
  bool isReachable(BlockId Block) const { return Idom[Block] != InvalidBlock; }

  static constexpr BlockId InvalidBlock = ~BlockId{0};

private:
  std::vector<BlockId> Idom;
};

} // namespace ccprof

#endif // CCPROF_CFG_DOMINATORS_H
