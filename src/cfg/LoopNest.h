//===- cfg/LoopNest.h - Havlak interval analysis ---------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-nesting forest computed with Havlak's interval analysis
/// ("Nesting of reducible and irreducible loops", TOPLAS 1997) — the
/// algorithm the paper's offline analyzer uses to identify loops from
/// the recovered CFG (Sec. 4, [14]). Handles irreducible regions.
/// Code-centric attribution resolves a sample's source line to the
/// innermost loop containing it.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CFG_LOOPNEST_H
#define CCPROF_CFG_LOOPNEST_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace ccprof {

/// Index of a loop within a LoopNest.
using LoopId = uint32_t;

/// One discovered loop.
struct LoopInfo {
  LoopId Id = 0;
  BlockId Header = 0;
  bool IsReducible = true;
  std::optional<LoopId> Parent; ///< Enclosing loop, if nested.
  uint32_t Depth = 1;           ///< 1 = outermost.
  /// Blocks directly owned by this loop (not by a nested child);
  /// includes the header.
  std::vector<BlockId> OwnBlocks;
  /// Source-line span covered by the loop including nested loops.
  uint32_t MinLine = 0;
  uint32_t MaxLine = 0;
};

/// The loop-nesting forest of one function's CFG.
class LoopNest {
public:
  /// Runs Havlak's analysis over \p Graph.
  static LoopNest analyze(const Cfg &Graph);

  size_t numLoops() const { return Loops.size(); }
  const LoopInfo &loop(LoopId Id) const { return Loops[Id]; }
  const std::vector<LoopInfo> &loops() const { return Loops; }

  /// \returns the innermost loop containing \p Block, if any.
  std::optional<LoopId> innermostLoopOf(BlockId Block) const;

  /// \returns the innermost loop whose line span covers \p Line
  /// (deepest wins; among equal depths the tightest span wins), or
  /// nullopt. This is how a sample's source line is attributed to a
  /// loop when only line info is available.
  std::optional<LoopId> innermostLoopForLine(uint32_t Line) const;

  /// All blocks of \p Id including those of nested loops.
  std::vector<BlockId> allBlocksOf(LoopId Id) const;

private:
  std::vector<LoopInfo> Loops;
  /// Innermost loop per block; InvalidLoop when the block is loop-free.
  std::vector<LoopId> BlockLoop;
  static constexpr LoopId InvalidLoop = ~LoopId{0};
};

} // namespace ccprof

#endif // CCPROF_CFG_LOOPNEST_H
