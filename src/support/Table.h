//===- support/Table.h - Aligned text table rendering ----------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width text table and CSV rendering used by the benchmark harness
/// to print the paper's tables (Tables 2-4) and figure data series.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_TABLE_H
#define CCPROF_SUPPORT_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ccprof {

/// Column-aligned text table with an optional header row.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header = {});

  /// Appends a data row; rows may have differing lengths.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line at the current position.
  void addSeparator();

  size_t numRows() const { return Rows.size(); }

  /// Renders with padded columns and a header separator.
  std::string render() const;

  /// Renders in RFC-4180-ish CSV (quotes fields containing commas).
  std::string renderCsv() const;

private:
  struct RowEntry {
    bool IsSeparator;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Header;
  std::vector<RowEntry> Rows;
};

/// Writes TextTable::render() to \p Out.
std::ostream &operator<<(std::ostream &Out, const TextTable &Table);

/// Formatting helpers shared by tables and reports.
namespace fmt {

/// Formats \p Value with \p Digits fractional digits, e.g. 3.14.
std::string fixed(double Value, int Digits = 2);

/// Formats \p Fraction (0.52 -> "52.0%").
std::string percent(double Fraction, int Digits = 1);

/// Formats a speedup/overhead multiplier (2.9 -> "2.90x").
std::string times(double Value, int Digits = 2);

/// Formats a byte count with a binary suffix (32768 -> "32KiB").
std::string bytes(uint64_t Count);

/// Formats \p Value grouped by thousands (1234567 -> "1,234,567").
std::string grouped(uint64_t Value);

} // namespace fmt

} // namespace ccprof

#endif // CCPROF_SUPPORT_TABLE_H
