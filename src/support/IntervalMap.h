//===- support/IntervalMap.h - Address-interval lookup ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A map from non-overlapping half-open [Start, End) address intervals to
/// values, with O(log n) point lookup. The data-centric attribution pass
/// (paper Sec. 3.4) uses it to resolve a sampled effective address to the
/// heap allocation that contains it.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_INTERVALMAP_H
#define CCPROF_SUPPORT_INTERVALMAP_H

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>

namespace ccprof {

/// Map from disjoint half-open uint64_t intervals to values of type \p T.
///
/// Later insertions overwrite the overlapped portions of earlier
/// intervals is NOT supported; inserting an overlapping interval fails.
/// This mirrors real allocator behaviour: a live allocation's range is
/// unique; a freed range must be erased before its pages are reused.
template <typename T> class IntervalMap {
public:
  /// Inserts [Start, End) -> Value. \returns false (and leaves the map
  /// unchanged) if the interval is empty or overlaps an existing one.
  bool insert(uint64_t Start, uint64_t End, T Value) {
    if (Start >= End)
      return false;
    // The first interval whose start is >= Start must begin at or after
    // End, and the previous interval must end at or before Start.
    auto Next = Intervals.lower_bound(Start);
    if (Next != Intervals.end() && Next->first < End)
      return false;
    if (Next != Intervals.begin()) {
      auto Prev = std::prev(Next);
      if (Prev->second.End > Start)
        return false;
    }
    Intervals.emplace(Start, Entry{End, std::move(Value)});
    return true;
  }

  /// Erases the interval that starts exactly at \p Start.
  /// \returns true if such an interval existed.
  bool eraseAt(uint64_t Start) { return Intervals.erase(Start) > 0; }

  /// Erases the interval containing \p Addr, if any.
  /// \returns true if an interval was erased.
  bool eraseContaining(uint64_t Addr) {
    auto It = findIter(Addr);
    if (It == Intervals.end())
      return false;
    Intervals.erase(It);
    return true;
  }

  /// \returns the value of the interval containing \p Addr, or nullopt.
  std::optional<T> lookup(uint64_t Addr) const {
    auto It = findIter(Addr);
    if (It == Intervals.end())
      return std::nullopt;
    return It->second.Value;
  }

  /// \returns a pointer to the value of the interval containing \p Addr,
  /// or nullptr. The pointer is invalidated by any mutation.
  const T *lookupPtr(uint64_t Addr) const {
    auto It = findIter(Addr);
    return It == Intervals.end() ? nullptr : &It->second.Value;
  }

  /// \returns the [Start, End) bounds of the interval containing \p Addr,
  /// or nullopt.
  std::optional<std::pair<uint64_t, uint64_t>> bounds(uint64_t Addr) const {
    auto It = findIter(Addr);
    if (It == Intervals.end())
      return std::nullopt;
    return std::make_pair(It->first, It->second.End);
  }

  bool contains(uint64_t Addr) const {
    return findIter(Addr) != Intervals.end();
  }

  size_t size() const { return Intervals.size(); }
  bool empty() const { return Intervals.empty(); }
  void clear() { Intervals.clear(); }

  /// Applies \p Fn(Start, End, Value) to every interval in address order.
  template <typename Func> void forEach(Func Fn) const {
    for (const auto &[Start, E] : Intervals)
      Fn(Start, E.End, E.Value);
  }

private:
  struct Entry {
    uint64_t End;
    T Value;
  };

  using MapType = std::map<uint64_t, Entry>;

  typename MapType::const_iterator findIter(uint64_t Addr) const {
    auto It = Intervals.upper_bound(Addr);
    if (It == Intervals.begin())
      return Intervals.end();
    --It;
    return Addr < It->second.End ? It : Intervals.end();
  }

  MapType Intervals;
};

} // namespace ccprof

#endif // CCPROF_SUPPORT_INTERVALMAP_H
