//===- support/Statistics.h - Summary and classification stats -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics (mean, median, percentiles, geometric mean) and
/// binary-classification quality measures (precision, recall, F1) used by
/// the conflict-miss classifier evaluation (paper Sec. 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_STATISTICS_H
#define CCPROF_SUPPORT_STATISTICS_H

#include <cstddef>
#include <span>
#include <vector>

namespace ccprof {

/// Arithmetic mean of \p Values; 0 for an empty span.
double mean(std::span<const double> Values);

/// Population variance of \p Values; 0 for fewer than two elements.
double variance(std::span<const double> Values);

/// Standard deviation (square root of the population variance).
double stddev(std::span<const double> Values);

/// Geometric mean of \p Values; all elements must be positive.
double geomean(std::span<const double> Values);

/// Median of \p Values (copies and partially sorts); 0 for an empty span.
double median(std::span<const double> Values);

/// Linear-interpolated percentile \p P in [0, 100] of \p Values.
double percentile(std::span<const double> Values, double P);

/// Running single-pass accumulator for mean/variance (Welford).
class RunningStats {
public:
  void add(double X) {
    ++Count;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(Count);
    M2 += Delta * (X - Mean);
    if (Count == 1 || X < Min)
      Min = X;
    if (Count == 1 || X > Max)
      Max = X;
  }

  size_t count() const { return Count; }
  double mean() const { return Mean; }
  double variance() const {
    return Count > 1 ? M2 / static_cast<double>(Count) : 0.0;
  }
  double min() const { return Min; }
  double max() const { return Max; }

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Confusion-matrix counts for a binary classifier, with the derived
/// quality measures used in the paper's accuracy study (F1-score,
/// Sec. 5.2). The positive class is "loop suffers from conflict misses".
struct BinaryConfusion {
  size_t TruePositives = 0;
  size_t FalsePositives = 0;
  size_t TrueNegatives = 0;
  size_t FalseNegatives = 0;

  /// Records one (predicted, actual) observation.
  void record(bool Predicted, bool Actual) {
    if (Predicted && Actual)
      ++TruePositives;
    else if (Predicted && !Actual)
      ++FalsePositives;
    else if (!Predicted && Actual)
      ++FalseNegatives;
    else
      ++TrueNegatives;
  }

  /// Merges counts from \p Other (used to pool k-fold folds).
  void merge(const BinaryConfusion &Other) {
    TruePositives += Other.TruePositives;
    FalsePositives += Other.FalsePositives;
    TrueNegatives += Other.TrueNegatives;
    FalseNegatives += Other.FalseNegatives;
  }

  size_t total() const {
    return TruePositives + FalsePositives + TrueNegatives + FalseNegatives;
  }

  /// TP / (TP + FP); 0 when no positive prediction was made.
  double precision() const;

  /// TP / (TP + FN); 0 when no actual positive exists.
  double recall() const;

  /// Harmonic mean of precision and recall; the paper's accuracy measure.
  double f1() const;

  /// (TP + TN) / total; 0 for an empty confusion matrix.
  double accuracy() const;
};

} // namespace ccprof

#endif // CCPROF_SUPPORT_STATISTICS_H
