//===- support/ThreadPool.cpp - Reusable worker pool + thread budget ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

ThreadPool::ThreadPool(unsigned NumWorkers) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::helpRun(Job &J) {
  for (size_t I = J.Next.fetch_add(1); I < J.Count; I = J.Next.fetch_add(1)) {
    (*J.Fn)(I);
    if (J.Done.fetch_add(1) + 1 == J.Count) {
      // Empty critical section: the waiter checks Done under DoneMutex,
      // so locking here closes the check-then-sleep window.
      { std::lock_guard<std::mutex> Lock(J.DoneMutex); }
      J.DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Cv.wait(Lock, [this] { return Stopping || !Tokens.empty(); });
      if (Tokens.empty())
        return; // Stopping and nothing left to help with.
      J = std::move(Tokens.front());
      Tokens.pop_front();
    }
    // A token for an already-finished job degenerates to zero
    // iterations; Fn is never dereferenced once Next >= Count, so the
    // caller's function object may be long gone by then.
    helpRun(*J);
  }
}

void ThreadPool::parallelFor(size_t Count, unsigned HelperCap,
                             const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;
  if (Count == 1 || HelperCap == 0 || Workers.empty()) {
    for (size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }

  auto J = std::make_shared<Job>();
  J->Count = Count;
  J->Fn = &Fn;

  const unsigned NumTokens = static_cast<unsigned>(std::min<size_t>(
      {static_cast<size_t>(HelperCap), Count - 1, Workers.size()}));
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (unsigned I = 0; I < NumTokens; ++I)
      Tokens.push_back(J);
  }
  if (NumTokens == 1)
    Cv.notify_one();
  else
    Cv.notify_all();

  helpRun(*J);

  std::unique_lock<std::mutex> Lock(J->DoneMutex);
  J->DoneCv.wait(Lock, [&] { return J->Done.load() == Count; });
}

std::vector<size_t> ccprof::planChunks(size_t Items, unsigned Threads,
                                       size_t MinItemsPerChunk) {
  // A few chunks per thread keeps the tail short when chunk costs vary
  // (the last thread never sits on more than ~1/4 of its share).
  constexpr size_t ChunksPerThread = 4;
  const size_t ByThreads =
      std::max<size_t>(1, static_cast<size_t>(Threads) * ChunksPerThread);
  const size_t ByGrain = std::max<size_t>(
      1, MinItemsPerChunk == 0 ? Items : Items / MinItemsPerChunk);
  const size_t NumChunks = std::max<size_t>(1, std::min(ByThreads, ByGrain));

  std::vector<size_t> Bounds(NumChunks + 1, 0);
  const size_t Base = Items / NumChunks;
  const size_t Rem = Items % NumChunks;
  for (size_t C = 0; C < NumChunks; ++C)
    Bounds[C + 1] = Bounds[C] + Base + (C < Rem ? 1 : 0);
  assert(Bounds.back() == Items && "chunk grid must cover every item");
  return Bounds;
}

ThreadBudget::ThreadBudget(unsigned Total)
    : TotalCount(std::max(1u, Total)), Avail(TotalCount) {}

unsigned ThreadBudget::tryAcquire(unsigned Want) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const unsigned Granted = std::min(Want, Avail);
  Avail -= Granted;
  return Granted;
}

void ThreadBudget::release(unsigned Count) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Avail = std::min(Avail + Count, TotalCount);
}

unsigned ThreadBudget::available() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Avail;
}
