//===- support/ThreadPool.h - Reusable worker pool + thread budget -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, reusable worker pool for the set-sharded simulation
/// engine, plus the process-wide thread-budget accounting that keeps
/// nested parallelism (batch workers x per-job shard helpers) from
/// oversubscribing the machine.
///
/// The pool is deliberately simple: parallelFor() publishes one job with
/// a shared atomic index counter, wakes up to HelperCap workers, and the
/// calling thread works alongside them until every index is done. Work
/// distribution is self-balancing (idle threads steal the next index),
/// results are written wherever the callback puts them, and nothing
/// about the output depends on which thread ran which index.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_THREADPOOL_H
#define CCPROF_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ccprof {

/// Fixed pool of worker threads executing indexed parallel loops.
///
/// Many threads may call parallelFor() concurrently; each call is an
/// independent job and workers drain whichever jobs have helper slots
/// left. Workers idle on a condition variable between jobs, so a pool
/// sized for the whole batch run costs nothing while jobs run
/// sequentially.
class ThreadPool {
public:
  /// Spawns \p NumWorkers worker threads (0 is valid: every
  /// parallelFor then runs entirely in the calling thread).
  explicit ThreadPool(unsigned NumWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs \p Fn(0) .. \p Fn(Count-1), each exactly once, across the
  /// calling thread plus at most \p HelperCap pool workers. Returns
  /// when every index has completed. \p Fn must be safe to invoke
  /// concurrently with distinct indices.
  void parallelFor(size_t Count, unsigned HelperCap,
                   const std::function<void(size_t)> &Fn);

private:
  /// One parallelFor invocation. Workers and the caller claim indices
  /// from Next; Done counts completions and gates the caller's return.
  struct Job {
    size_t Count = 0;
    const std::function<void(size_t)> *Fn = nullptr;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::mutex DoneMutex;
    std::condition_variable DoneCv;
  };

  /// Claims indices from \p J until none remain.
  static void helpRun(Job &J);

  void workerLoop();

  std::mutex Mutex;
  std::condition_variable Cv;
  /// One entry per helper slot handed out; a worker consumes one entry
  /// and then drains that job. Entries of finished jobs are no-ops.
  std::deque<std::shared_ptr<Job>> Tokens;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Deterministic chunk grid for block-parallel loops over \p Items
/// contiguous elements: near-equal chunks, a few per expected thread so
/// the atomic-counter scheduler can balance uneven chunk costs, but
/// never finer than \p MinItemsPerChunk (per-chunk bookkeeping must
/// stay cheap relative to the work). Returns the NumChunks + 1 chunk
/// boundaries (Bounds[C] .. Bounds[C+1] is chunk C). The grid depends
/// only on the arguments — never on how many helpers actually show up
/// at run time — so two passes planned with the same inputs walk
/// identical chunks.
std::vector<size_t> planChunks(size_t Items, unsigned Threads,
                               size_t MinItemsPerChunk);

/// Shared accounting of how many simulation threads the whole batch run
/// may use at once. Batch workers hold one slot each while running;
/// a job that wants to shard its simulation asks for extra slots and
/// gets only what is actually idle — so shard helpers appear exactly
/// when jobs are scarcer than cores (the tail of a run, or a small
/// matrix on a big machine) and batch-level parallelism always wins
/// when jobs are plentiful.
class ThreadBudget {
public:
  /// \p Total caps concurrently running threads (clamped to >= 1).
  explicit ThreadBudget(unsigned Total);

  /// Grants between 0 and \p Want slots, whatever is available.
  unsigned tryAcquire(unsigned Want);

  /// Returns \p Count slots to the budget.
  void release(unsigned Count);

  unsigned total() const { return TotalCount; }
  unsigned available() const;

private:
  unsigned TotalCount;
  mutable std::mutex Mutex;
  unsigned Avail;
};

} // namespace ccprof

#endif // CCPROF_SUPPORT_THREADPOOL_H
