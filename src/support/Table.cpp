//===- support/Table.cpp - Aligned text table rendering ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cstdint>
#include <sstream>

using namespace ccprof;

TextTable::TextTable(std::vector<std::string> HeaderRow)
    : Header(std::move(HeaderRow)) {}

void TextTable::addRow(std::vector<std::string> Row) {
  Rows.push_back(RowEntry{/*IsSeparator=*/false, std::move(Row)});
}

void TextTable::addSeparator() {
  Rows.push_back(RowEntry{/*IsSeparator=*/true, {}});
}

std::string TextTable::render() const {
  // Compute per-column widths over header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const RowEntry &Row : Rows)
    if (!Row.IsSeparator)
      Grow(Row.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 3;

  std::ostringstream Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out << Cells[I];
      if (I + 1 < Cells.size())
        Out << std::string(Widths[I] - Cells[I].size() + 3, ' ');
    }
    Out << '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    Out << std::string(TotalWidth, '-') << '\n';
  }
  for (const RowEntry &Row : Rows) {
    if (Row.IsSeparator)
      Out << std::string(TotalWidth, '-') << '\n';
    else
      Emit(Row.Cells);
  }
  return Out.str();
}

std::string TextTable::renderCsv() const {
  auto Escape = [](const std::string &Field) {
    if (Field.find_first_of(",\"\n") == std::string::npos)
      return Field;
    std::string Quoted = "\"";
    for (char C : Field) {
      if (C == '"')
        Quoted += '"';
      Quoted += C;
    }
    Quoted += '"';
    return Quoted;
  };

  std::ostringstream Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      if (I)
        Out << ',';
      Out << Escape(Cells[I]);
    }
    Out << '\n';
  };
  if (!Header.empty())
    Emit(Header);
  for (const RowEntry &Row : Rows)
    if (!Row.IsSeparator)
      Emit(Row.Cells);
  return Out.str();
}

std::ostream &ccprof::operator<<(std::ostream &Out, const TextTable &Table) {
  return Out << Table.render();
}

std::string fmt::fixed(double Value, int Digits) {
  std::ostringstream Out;
  Out.setf(std::ios::fixed);
  Out.precision(Digits);
  Out << Value;
  return Out.str();
}

std::string fmt::percent(double Fraction, int Digits) {
  return fixed(Fraction * 100.0, Digits) + "%";
}

std::string fmt::times(double Value, int Digits) {
  return fixed(Value, Digits) + "x";
}

std::string fmt::bytes(uint64_t Count) {
  static const char *Suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  size_t Index = 0;
  uint64_t Value = Count;
  while (Value >= 1024 && Value % 1024 == 0 && Index < 4) {
    Value /= 1024;
    ++Index;
  }
  return std::to_string(Value) + Suffixes[Index];
}

std::string fmt::grouped(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  size_t Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Result += ',';
    Result += *It;
    ++Count;
  }
  std::reverse(Result.begin(), Result.end());
  return Result;
}
