//===- support/Histogram.h - Integer histograms and CDFs -------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Histogram over unsigned integer keys with cumulative-distribution
/// queries. The profiler's central data product — the distribution of
/// Re-Conflict Distances (paper Figs. 5, 7, 9) — is a Histogram, and the
/// contribution factor cf (Eq. 1) is a CDF query on it.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_HISTOGRAM_H
#define CCPROF_SUPPORT_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ccprof {

/// Sparse histogram over uint64_t keys.
class Histogram {
public:
  /// Adds \p Weight observations of \p Key.
  void add(uint64_t Key, uint64_t Weight = 1);

  /// Merges all observations from \p Other into this histogram.
  void merge(const Histogram &Other);

  /// Number of observations of exactly \p Key.
  uint64_t count(uint64_t Key) const;

  /// Number of observations with key strictly less than \p Bound.
  uint64_t countBelow(uint64_t Bound) const;

  /// Number of observations with key less than or equal to \p Bound.
  uint64_t countAtOrBelow(uint64_t Bound) const;

  /// Total number of observations.
  uint64_t total() const { return Total; }

  /// True if no observation has been recorded.
  bool empty() const { return Total == 0; }

  /// Fraction of observations with key strictly below \p Bound
  /// (0 for an empty histogram). This is the paper's contribution
  /// factor when applied to an RCD histogram with Bound = T.
  double fractionBelow(uint64_t Bound) const;

  /// Cumulative probability P(key <= Bound); 0 for an empty histogram.
  double cdfAt(uint64_t Bound) const;

  /// Smallest key K such that P(key <= K) >= \p Q, for Q in (0, 1].
  /// The rank target is ceil(Q * total()) — e.g. the median of 5
  /// observations is the rank-3 one, never the rank-2 one whose CDF is
  /// only 0.4. Requires a non-empty histogram.
  uint64_t quantile(double Q) const;

  /// Smallest observed key. Requires a non-empty histogram.
  uint64_t minKey() const;

  /// Largest observed key. Requires a non-empty histogram.
  uint64_t maxKey() const;

  /// Mean of the observations; 0 for an empty histogram.
  double meanKey() const;

  /// Distinct keys observed, in increasing order.
  std::vector<uint64_t> keys() const;

  /// (key, cumulativeProbability) pairs in increasing key order — the
  /// series plotted in the paper's CDF figures.
  std::vector<std::pair<uint64_t, double>> cdfSeries() const;

  /// Ordered (key, count) view for iteration.
  const std::map<uint64_t, uint64_t> &buckets() const { return Buckets; }

  /// Renders a fixed-width ASCII bar chart, at most \p MaxRows rows
  /// (largest-count keys kept).
  std::string toAsciiChart(size_t MaxRows = 20) const;

private:
  std::map<uint64_t, uint64_t> Buckets;
  uint64_t Total = 0;
};

} // namespace ccprof

#endif // CCPROF_SUPPORT_HISTOGRAM_H
