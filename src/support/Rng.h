//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random generators used throughout the
/// profiler and the benchmark harness. Profiling results must be
/// reproducible run to run, so all randomness in the project flows through
/// these generators rather than std::random_device.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_RNG_H
#define CCPROF_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ccprof {

/// SplitMix64 generator; used to seed Xoshiro and for cheap one-off draws.
///
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256** generator: the project-wide default PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be
/// plugged into <random> distributions when convenient.
class Xoshiro256 {
public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 Mixer(Seed);
    for (uint64_t &Word : State)
      Word = Mixer.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  result_type operator()() { return next(); }

  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound) without modulo bias
  /// (Lemire's multiply-and-shift rejection method).
  uint64_t nextBounded(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    __uint128_t Product = static_cast<__uint128_t>(next()) * Bound;
    uint64_t Low = static_cast<uint64_t>(Product);
    if (Low < Bound) {
      uint64_t Threshold = (0 - Bound) % Bound;
      while (Low < Threshold) {
        Product = static_cast<__uint128_t>(next()) * Bound;
        Low = static_cast<uint64_t>(Product);
      }
    }
    return static_cast<uint64_t>(Product >> 64);
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ccprof

#endif // CCPROF_SUPPORT_RNG_H
