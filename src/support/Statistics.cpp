//===- support/Statistics.cpp - Summary and classification stats ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ccprof;

double ccprof::mean(std::span<const double> Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double ccprof::variance(std::span<const double> Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return Sum / static_cast<double>(Values.size());
}

double ccprof::stddev(std::span<const double> Values) {
  return std::sqrt(variance(Values));
}

double ccprof::geomean(std::span<const double> Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double ccprof::median(std::span<const double> Values) {
  return percentile(Values, 50.0);
}

double ccprof::percentile(std::span<const double> Values, double P) {
  assert(P >= 0.0 && P <= 100.0 && "percentile must be in [0, 100]");
  if (Values.empty())
    return 0.0;
  std::vector<double> Sorted(Values.begin(), Values.end());
  std::sort(Sorted.begin(), Sorted.end());
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = P / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

double BinaryConfusion::precision() const {
  size_t Denom = TruePositives + FalsePositives;
  return Denom == 0 ? 0.0
                    : static_cast<double>(TruePositives) /
                          static_cast<double>(Denom);
}

double BinaryConfusion::recall() const {
  size_t Denom = TruePositives + FalseNegatives;
  return Denom == 0 ? 0.0
                    : static_cast<double>(TruePositives) /
                          static_cast<double>(Denom);
}

double BinaryConfusion::f1() const {
  double P = precision();
  double R = recall();
  return (P + R) == 0.0 ? 0.0 : 2.0 * P * R / (P + R);
}

double BinaryConfusion::accuracy() const {
  size_t Total = total();
  return Total == 0 ? 0.0
                    : static_cast<double>(TruePositives + TrueNegatives) /
                          static_cast<double>(Total);
}
