//===- support/Json.cpp - Minimal JSON emission helpers ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdio>

using namespace ccprof;

std::string json::escape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string json::quote(std::string_view Text) {
  return '"' + escape(Text) + '"';
}

std::string json::number(double Value, int Digits) {
  if (!std::isfinite(Value))
    return "0";
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%.*f", Digits, Value);
  return Buf;
}
