//===- support/Histogram.cpp - Integer histograms and CDFs ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace ccprof;

void Histogram::add(uint64_t Key, uint64_t Weight) {
  if (Weight == 0)
    return;
  Buckets[Key] += Weight;
  Total += Weight;
}

void Histogram::merge(const Histogram &Other) {
  for (const auto &[Key, Count] : Other.Buckets)
    add(Key, Count);
}

uint64_t Histogram::count(uint64_t Key) const {
  auto It = Buckets.find(Key);
  return It == Buckets.end() ? 0 : It->second;
}

uint64_t Histogram::countBelow(uint64_t Bound) const {
  uint64_t Sum = 0;
  for (auto It = Buckets.begin(), E = Buckets.lower_bound(Bound); It != E;
       ++It)
    Sum += It->second;
  return Sum;
}

uint64_t Histogram::countAtOrBelow(uint64_t Bound) const {
  uint64_t Sum = 0;
  for (auto It = Buckets.begin(), E = Buckets.upper_bound(Bound); It != E;
       ++It)
    Sum += It->second;
  return Sum;
}

double Histogram::fractionBelow(uint64_t Bound) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(countBelow(Bound)) / static_cast<double>(Total);
}

double Histogram::cdfAt(uint64_t Bound) const {
  if (Total == 0)
    return 0.0;
  return static_cast<double>(countAtOrBelow(Bound)) /
         static_cast<double>(Total);
}

uint64_t Histogram::quantile(double Q) const {
  assert(!empty() && "quantile of an empty histogram");
  assert(Q > 0.0 && Q <= 1.0 && "quantile requires Q in (0, 1]");
  // The contract is "smallest K with P(key <= K) >= Q", so the rank
  // target must round *up*: with floor rounding the median of 5
  // observations was the rank-2 one (CDF 0.4 < 0.5).
  uint64_t Target =
      static_cast<uint64_t>(std::ceil(Q * static_cast<double>(Total)));
  if (Target == 0)
    Target = 1;
  if (Target > Total)
    Target = Total;
  uint64_t Seen = 0;
  for (const auto &[Key, Count] : Buckets) {
    Seen += Count;
    if (Seen >= Target)
      return Key;
  }
  return Buckets.rbegin()->first;
}

uint64_t Histogram::minKey() const {
  assert(!empty() && "minKey of an empty histogram");
  return Buckets.begin()->first;
}

uint64_t Histogram::maxKey() const {
  assert(!empty() && "maxKey of an empty histogram");
  return Buckets.rbegin()->first;
}

double Histogram::meanKey() const {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (const auto &[Key, Count] : Buckets)
    Sum += static_cast<double>(Key) * static_cast<double>(Count);
  return Sum / static_cast<double>(Total);
}

std::vector<uint64_t> Histogram::keys() const {
  std::vector<uint64_t> Result;
  Result.reserve(Buckets.size());
  for (const auto &[Key, Count] : Buckets)
    Result.push_back(Key);
  return Result;
}

std::vector<std::pair<uint64_t, double>> Histogram::cdfSeries() const {
  std::vector<std::pair<uint64_t, double>> Series;
  Series.reserve(Buckets.size());
  uint64_t Seen = 0;
  for (const auto &[Key, Count] : Buckets) {
    Seen += Count;
    Series.emplace_back(Key,
                        static_cast<double>(Seen) / static_cast<double>(Total));
  }
  return Series;
}

std::string Histogram::toAsciiChart(size_t MaxRows) const {
  if (empty())
    return "(empty histogram)\n";

  // Keep the MaxRows largest buckets but render them in key order.
  std::vector<std::pair<uint64_t, uint64_t>> Rows(Buckets.begin(),
                                                  Buckets.end());
  if (Rows.size() > MaxRows) {
    std::sort(Rows.begin(), Rows.end(), [](const auto &A, const auto &B) {
      return A.second > B.second;
    });
    Rows.resize(MaxRows);
    std::sort(Rows.begin(), Rows.end());
  }

  uint64_t MaxCount = 0;
  for (const auto &[Key, Count] : Rows)
    MaxCount = std::max(MaxCount, Count);

  constexpr size_t BarWidth = 50;
  std::ostringstream Out;
  for (const auto &[Key, Count] : Rows) {
    size_t Bar = MaxCount == 0
                     ? 0
                     : static_cast<size_t>(static_cast<double>(Count) /
                                           static_cast<double>(MaxCount) *
                                           BarWidth);
    Out << std::string(12 - std::min<size_t>(12, std::to_string(Key).size()),
                       ' ')
        << Key << " | " << std::string(Bar, '#') << ' ' << Count << '\n';
  }
  return Out.str();
}
