//===- support/Json.h - Minimal JSON emission helpers ----------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small JSON-writing vocabulary shared by every machine-readable
/// surface the project emits: `ccprof analyze/show/diff --json`, the
/// service's /stats query, and the alert records ccprofd streams. Only
/// emission — nothing in the project parses JSON — so the helpers stay
/// deliberately tiny: escaping, quoting, and number formatting that is
/// valid JSON (no NaN/Inf leakage, fixed-point doubles).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SUPPORT_JSON_H
#define CCPROF_SUPPORT_JSON_H

#include <string>
#include <string_view>

namespace ccprof {
namespace json {

/// Escapes \p Text for inclusion inside a JSON string literal:
/// backslash, double quote, and control characters (as \uXXXX).
std::string escape(std::string_view Text);

/// \p Text escaped and wrapped in double quotes.
std::string quote(std::string_view Text);

/// A JSON-valid number for \p Value with \p Digits fractional digits.
/// NaN and infinities (not representable in JSON) render as 0.
std::string number(double Value, int Digits = 6);

} // namespace json
} // namespace ccprof

#endif // CCPROF_SUPPORT_JSON_H
