//===- trace/SiteRegistry.cpp - Access-site (synthetic IP) table ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/SiteRegistry.h"

#include <cassert>

using namespace ccprof;

std::string SourceSite::describe() const {
  std::string Result = File + ":" + std::to_string(Line);
  if (!Function.empty())
    Result += " (" + Function + ")";
  return Result;
}

SiteId SiteRegistry::registerSite(std::string File, uint32_t Line,
                                  std::string Function) {
  Key K{File, Line, Function};
  auto It = Index.find(K);
  if (It != Index.end())
    return It->second;

  Sites.push_back(SourceSite{std::move(File), Line, std::move(Function)});
  SiteId Id = static_cast<SiteId>(Sites.size()); // ids are 1-based
  Index.emplace(std::move(K), Id);
  return Id;
}

const SourceSite *SiteRegistry::lookup(SiteId Id) const {
  if (Id == UnknownSite || Id > Sites.size())
    return nullptr;
  return &Sites[Id - 1];
}
