//===- trace/Canonicalize.cpp - Deterministic address rebasing -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Canonicalize.h"

#include <vector>

using namespace ccprof;

namespace {

constexpr uint64_t PageBytes = 4096;
/// Base of the canonical region: far from any real mapping, page- and
/// 2 MiB-aligned.
constexpr uint64_t RegionBase = uint64_t{1} << 40;
/// Guard gap between consecutive canonical allocations, so an
/// off-by-one access past one buffer cannot alias the next.
constexpr uint64_t GuardBytes = PageBytes;

uint64_t alignUp(uint64_t Value, uint64_t Alignment) {
  return (Value + Alignment - 1) / Alignment * Alignment;
}

/// Span reserved per orphan region; regions anchor mid-span so stack
/// addresses below the first-seen one still fit.
constexpr uint64_t OrphanRegionSpan = uint64_t{4} << 30;

} // namespace

CanonicalLayout
ccprof::canonicalAllocationLayout(std::span<const uint64_t> Sizes) {
  CanonicalLayout Layout;
  Layout.Bases.reserve(Sizes.size());
  uint64_t Cursor = RegionBase;
  for (uint64_t Size : Sizes) {
    Layout.Bases.push_back(Cursor);
    Cursor = alignUp(Cursor + Size, PageBytes) + GuardBytes;
  }
  Layout.FirstOrphanBase =
      alignUp(Cursor, PageBytes) + 16 * PageBytes + OrphanRegionSpan / 2;
  Layout.OrphanSpan = OrphanRegionSpan;
  return Layout;
}

Trace ccprof::canonicalizeTrace(const Trace &Input) {
  Trace Result;

  // Sites copy verbatim; registration order reproduces the ids.
  for (const SourceSite &Site : Input.sites().sites())
    Result.site(Site.File, Site.Line, Site.Function);

  // Allocations are laid out back to back in registration order, each
  // page-aligned with a guard gap. Registration order is part of the
  // recorded execution, so the layout is deterministic.
  const AllocationRegistry &Allocs = Input.allocations();
  std::vector<uint64_t> Sizes(Allocs.size(), 0);
  for (size_t I = 0; I < Allocs.size(); ++I)
    Sizes[I] = Allocs.info(static_cast<AllocId>(I)).SizeBytes;
  const CanonicalLayout Layout = canonicalAllocationLayout(Sizes);
  const std::vector<uint64_t> &NewBase = Layout.Bases;
  for (size_t I = 0; I < Allocs.size(); ++I) {
    const AllocationInfo &Info = Allocs.info(static_cast<AllocId>(I));
    Result.allocations().recordAllocation(Info.Name, NewBase[I],
                                          Info.SizeBytes);
    if (!Info.Live)
      Result.allocations().recordFree(NewBase[I]);
  }

  // Addresses outside every registered allocation (stack tiles, other
  // unregistered buffers) are rebased region-relatively: the first
  // orphan address anchors a canonical region, and every later orphan
  // within +/-RegionWindow of an anchor keeps its exact distance from
  // it. Relative layout — the thing set conflicts depend on — is
  // preserved, while the anchor's absolute position (which varies with
  // stack placement, thread identity, and ASLR) is normalized away.
  struct OrphanRegion {
    uint64_t Anchor;        ///< First original address seen.
    uint64_t CanonicalBase; ///< Where the anchor lands.
  };
  constexpr uint64_t RegionWindow = uint64_t{1} << 30;
  const uint64_t RegionSpan = Layout.OrphanSpan;
  std::vector<OrphanRegion> Regions;
  // Leave room below each anchor: stacks grow down, so later orphan
  // addresses are often smaller than the first one seen.
  uint64_t NextRegionBase = Layout.FirstOrphanBase;

  Result.reserve(Input.size());
  for (const MemoryRecord &Record : Input.records()) {
    uint64_t Addr = Record.Addr;
    if (std::optional<AllocId> Id = Allocs.findByAddress(Addr)) {
      Addr = NewBase[*Id] + (Addr - Allocs.info(*Id).Start);
    } else {
      OrphanRegion *Home = nullptr;
      for (OrphanRegion &Region : Regions) {
        const uint64_t Distance = Addr > Region.Anchor
                                      ? Addr - Region.Anchor
                                      : Region.Anchor - Addr;
        if (Distance < RegionWindow) {
          Home = &Region;
          break;
        }
      }
      if (!Home) {
        Regions.push_back({Addr, NextRegionBase});
        NextRegionBase += RegionSpan;
        Home = &Regions.back();
      }
      Addr = Home->CanonicalBase + (Addr - Home->Anchor);
    }
    if (Record.IsWrite)
      Result.recordStore(Record.Site, Addr, Record.SizeBytes);
    else
      Result.recordLoad(Record.Site, Addr, Record.SizeBytes);
  }
  return Result;
}
