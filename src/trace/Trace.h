//===- trace/Trace.h - Memory trace container and recorder -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory trace of one monitored execution: the sequence of
/// MemoryRecords together with the site and allocation registries needed
/// to attribute them. Trace is what the Pin + Dinero pipeline of the
/// paper would produce; workload kernels populate it through the
/// recording API while executing their real computation on real buffers.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_TRACE_H
#define CCPROF_TRACE_TRACE_H

#include "trace/AllocationRegistry.h"
#include "trace/MemoryRecord.h"
#include "trace/SiteRegistry.h"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace ccprof {

/// A recorded execution: reference stream plus attribution metadata.
class Trace {
public:
  /// Registers (or re-finds) the access site for \p File:\p Line.
  SiteId site(std::string File, uint32_t Line, std::string Function = "") {
    return Sites.registerSite(std::move(File), Line, std::move(Function));
  }

  /// Records one load of \p SizeBytes at \p Addr issued by \p Site.
  void recordLoad(SiteId Site, uint64_t Addr, uint16_t SizeBytes) {
    Records.push_back(MemoryRecord{Site, Addr, SizeBytes, /*IsWrite=*/false});
  }

  /// Records one store of \p SizeBytes at \p Addr issued by \p Site.
  void recordStore(SiteId Site, uint64_t Addr, uint16_t SizeBytes) {
    Records.push_back(MemoryRecord{Site, Addr, SizeBytes, /*IsWrite=*/true});
  }

  /// Records a load of *\p Ptr; size is sizeof(T).
  template <typename T> void load(SiteId Site, const T *Ptr) {
    recordLoad(Site, reinterpret_cast<uint64_t>(Ptr),
               static_cast<uint16_t>(sizeof(T)));
  }

  /// Records a store to *\p Ptr; size is sizeof(T).
  template <typename T> void store(SiteId Site, const T *Ptr) {
    recordStore(Site, reinterpret_cast<uint64_t>(Ptr),
                static_cast<uint16_t>(sizeof(T)));
  }

  /// Registers a named allocation for data-centric attribution.
  template <typename T>
  void registerAllocation(std::string Name, const T *Ptr,
                          uint64_t SizeBytes) {
    Allocations.recordAllocation(std::move(Name), Ptr, SizeBytes);
  }

  std::span<const MemoryRecord> records() const { return Records; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  void reserve(size_t Capacity) { Records.reserve(Capacity); }
  void clearRecords() { Records.clear(); }

  SiteRegistry &sites() { return Sites; }
  const SiteRegistry &sites() const { return Sites; }
  AllocationRegistry &allocations() { return Allocations; }
  const AllocationRegistry &allocations() const { return Allocations; }

  /// Serializes the trace (records + registries) to a binary stream.
  /// \returns false on I/O failure.
  bool writeTo(std::ostream &Out) const;

  /// Deserializes a trace previously written by writeTo. The stream must
  /// begin with the trace magic number and a supported format version;
  /// truncated, corrupt, or wrong-version input is rejected.
  /// \returns false on failure, describing the cause in \p Error when
  /// non-null.
  static bool readFrom(std::istream &In, Trace &Result,
                       std::string *Error = nullptr);

private:
  std::vector<MemoryRecord> Records;
  SiteRegistry Sites;
  AllocationRegistry Allocations;
};

} // namespace ccprof

#endif // CCPROF_TRACE_TRACE_H
