//===- trace/BinaryIO.h - Shared binary stream helpers ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary (de)serialization primitives shared by every
/// on-disk format the project writes: traces (trace/Trace.cpp) and
/// profile artifacts (pipeline/ProfileArtifact.cpp). Writers encode
/// fixed-width fields byte-by-byte, so the bytes are little-endian on
/// every host, not just little-endian ones. Decoding goes through
/// ByteReader, which knows how many bytes remain and therefore lets
/// callers reject corrupt element counts before allocating, and
/// atomicWriteFile provides the write-temp-then-rename protocol that
/// keeps a crash mid-save from ever leaving a truncated file at the
/// final path.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_BINARYIO_H
#define CCPROF_TRACE_BINARYIO_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace ccprof {
namespace bio {

/// Cap accepted by readString: refuse absurd sizes rather than
/// attempting a gigantic allocation on a corrupt stream.
inline constexpr uint32_t MaxStringBytes = 1u << 20;

void writeU32(std::ostream &Out, uint32_t Value);
void writeU64(std::ostream &Out, uint64_t Value);
void writeF64(std::ostream &Out, double Value);
void writeString(std::ostream &Out, const std::string &Value);

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of \p Size bytes at
/// \p Data. \p Seed chains calls: crc32(B, crc32(A)) == crc32(A+B).
uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0);
inline uint32_t crc32(std::string_view Bytes, uint32_t Seed = 0) {
  return crc32(Bytes.data(), Bytes.size(), Seed);
}

/// Drains the rest of \p In into a string (binary-safe).
std::string readAll(std::istream &In);

/// Bounds-checked little-endian decoder over an in-memory buffer. Every
/// read fails (returns false, consuming nothing further) instead of
/// running off the end, and remaining() lets decoders of count-prefixed
/// sequences reject counts that could not possibly fit in the bytes
/// left — the defense against a corrupt count triggering a gigantic
/// allocation or an out-of-bounds scan.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes)
      : Ptr(Bytes.data()), End(Bytes.data() + Bytes.size()) {}

  /// Bytes not yet consumed.
  size_t remaining() const { return static_cast<size_t>(End - Ptr); }
  bool atEnd() const { return Ptr == End; }

  /// True when \p Count elements of at least \p MinElemBytes each could
  /// still fit in the remaining bytes. The standard pre-resize guard:
  /// `if (!R.fits(N, 16)) fail(...)`.
  bool fits(uint64_t Count, size_t MinElemBytes) const {
    return Count <= remaining() / MinElemBytes;
  }

  bool readU32(uint32_t &Value);
  bool readU64(uint64_t &Value);
  bool readF64(double &Value);
  /// Length-prefixed string: u32 byte count, then the bytes. Fails when
  /// the count exceeds MaxStringBytes or the bytes actually remaining.
  bool readString(std::string &Value);

private:
  const char *Ptr;
  const char *End;
};

/// Options for atomicWriteFile; defaults are what production callers
/// want. The fault hook exists for crash-equivalence tests only.
struct AtomicWriteOptions {
  /// Bytes written per write(2) call.
  size_t ChunkBytes = 1u << 20;
  /// When false, skip the fsync(2) of the temp file and its directory.
  /// The rename still guarantees readers never see a partial file; what
  /// is given up is crash *durability* — a power loss may roll the path
  /// back to its previous content. Only appropriate for derived state a
  /// recovery path can rebuild (e.g. ccprofd's rolling aggregates,
  /// which re-merge from the object store), where it removes the fsync
  /// from the hot write path.
  bool SyncData = true;
  /// Testing hook, called after each chunk with the running byte count.
  /// Returning true simulates a crash at that write boundary: the
  /// function abandons the temp file exactly as a killed process would
  /// (no rename, temp left behind) and returns false.
  std::function<bool(size_t BytesWritten)> CrashAt;
};

/// Conventional suffix of the in-flight temp sibling; a leftover one
/// marks an interrupted save.
inline constexpr const char *AtomicTempSuffix = ".tmp";

/// Durably replaces the file at \p Path with \p Bytes: writes to the
/// sibling `Path + ".tmp"`, flushes it to stable storage, then
/// rename(2)s over \p Path. A crash at any point leaves either the
/// previous file or no file at \p Path — never a partial one.
/// \returns false (with \p Error set when non-null) on failure.
bool atomicWriteFile(const std::string &Path, std::string_view Bytes,
                     std::string *Error = nullptr,
                     const AtomicWriteOptions &Options = {});

} // namespace bio
} // namespace ccprof

#endif // CCPROF_TRACE_BINARYIO_H
