//===- trace/BinaryIO.h - Shared binary stream helpers ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary (de)serialization primitives shared by every
/// on-disk format the project writes: traces (trace/Trace.cpp) and
/// profile artifacts (pipeline/ProfileArtifact.cpp). All formats are
/// host-endian (little-endian on every supported target) with
/// fixed-width fields; readers return false on truncation instead of
/// consuming garbage, so callers can surface a clear error.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_BINARYIO_H
#define CCPROF_TRACE_BINARYIO_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ccprof {
namespace bio {

/// Cap accepted by readString: refuse absurd sizes rather than
/// attempting a gigantic allocation on a corrupt stream.
inline constexpr uint32_t MaxStringBytes = 1u << 20;

void writeU32(std::ostream &Out, uint32_t Value);
void writeU64(std::ostream &Out, uint64_t Value);
void writeF64(std::ostream &Out, double Value);
void writeString(std::ostream &Out, const std::string &Value);

bool readU32(std::istream &In, uint32_t &Value);
bool readU64(std::istream &In, uint64_t &Value);
bool readF64(std::istream &In, double &Value);
bool readString(std::istream &In, std::string &Value);

} // namespace bio
} // namespace ccprof

#endif // CCPROF_TRACE_BINARYIO_H
