//===- trace/Canonicalize.h - Deterministic address rebasing ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites the addresses of a recorded Trace onto a deterministic
/// synthetic virtual layout so that profiles derived from the trace are
/// reproducible across processes, allocator states, and thread
/// schedules. Live runs place workload buffers wherever malloc happens
/// to, so two recordings of the same kernel rarely agree byte-for-byte;
/// the batch pipeline needs run-over-run (and parallel-vs-sequential)
/// artifacts to be identical for fixed seeds.
///
/// The rebasing preserves exactly what conflict analysis depends on:
///
///  * intra-allocation layout — every recorded address keeps its offset
///    from its allocation's base, so row strides, padding, and the
///    resulting set-mapping regularity are untouched;
///  * page alignment — each allocation lands on a page boundary, the
///    behaviour of glibc's mmap path for the multi-megabyte buffers the
///    workloads use (the L1's 64 sets x 64 B span exactly one 4 KiB
///    page, so L1 set indices are a pure function of in-page offsets);
///  * first-touch order — addresses outside any registered allocation
///    (stack tile buffers, unregistered temporaries) are rebased
///    region-relatively in order of first appearance: each keeps its
///    exact distance from the first address of its region, so the
///    relative layout conflicts depend on survives while the absolute
///    position (stack placement, thread identity, ASLR) is normalized.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_CANONICALIZE_H
#define CCPROF_TRACE_CANONICALIZE_H

#include "trace/Trace.h"

#include <span>
#include <vector>

namespace ccprof {

/// The deterministic address layout canonicalizeTrace() rebases onto.
struct CanonicalLayout {
  /// Canonical base address of each allocation, in registration order.
  std::vector<uint64_t> Bases;
  /// Where the first region of unregistered (orphan) addresses lands.
  uint64_t FirstOrphanBase = 0;
  /// Spacing between consecutive orphan regions.
  uint64_t OrphanSpan = 0;
};

/// Computes the canonical layout for allocations of the given sizes in
/// registration order: back to back, page-aligned, one guard page
/// apart. This is the exact placement canonicalizeTrace() uses, exposed
/// so the static conflict analyzer can predict set indices that line up
/// with what simulation of a canonicalized trace measures.
CanonicalLayout canonicalAllocationLayout(std::span<const uint64_t> Sizes);

/// Returns a copy of \p Input with identical sites, allocation names,
/// sizes, and reference sequence, but with every address rebased onto
/// the deterministic canonical layout described above. Calling this on
/// traces of the same execution recorded at different heap states
/// yields bit-identical results.
Trace canonicalizeTrace(const Trace &Input);

} // namespace ccprof

#endif // CCPROF_TRACE_CANONICALIZE_H
