//===- trace/BinaryIO.cpp - Shared binary stream helpers -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/BinaryIO.h"

#include <istream>
#include <ostream>

namespace ccprof {
namespace bio {

void writeU32(std::ostream &Out, uint32_t Value) {
  Out.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

void writeU64(std::ostream &Out, uint64_t Value) {
  Out.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

void writeF64(std::ostream &Out, double Value) {
  Out.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

void writeString(std::ostream &Out, const std::string &Value) {
  writeU32(Out, static_cast<uint32_t>(Value.size()));
  Out.write(Value.data(), static_cast<std::streamsize>(Value.size()));
}

bool readU32(std::istream &In, uint32_t &Value) {
  In.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return In.good();
}

bool readU64(std::istream &In, uint64_t &Value) {
  In.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return In.good();
}

bool readF64(std::istream &In, double &Value) {
  In.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return In.good();
}

bool readString(std::istream &In, std::string &Value) {
  uint32_t Size = 0;
  if (!readU32(In, Size))
    return false;
  if (Size > MaxStringBytes)
    return false;
  Value.resize(Size);
  In.read(Value.data(), Size);
  return In.good() || (Size == 0 && !In.bad());
}

} // namespace bio
} // namespace ccprof
