//===- trace/BinaryIO.cpp - Shared binary stream helpers -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/BinaryIO.h"

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <system_error>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace ccprof {
namespace bio {

//===----------------------------------------------------------------------===//
// Little-endian encoders / decoders
//===----------------------------------------------------------------------===//

// Encoding is byte-by-byte rather than a memcpy of the host value, so
// the on-disk bytes are little-endian regardless of host endianness.

void writeU32(std::ostream &Out, uint32_t Value) {
  char Bytes[4] = {
      static_cast<char>(Value), static_cast<char>(Value >> 8),
      static_cast<char>(Value >> 16), static_cast<char>(Value >> 24)};
  Out.write(Bytes, sizeof(Bytes));
}

void writeU64(std::ostream &Out, uint64_t Value) {
  char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<char>(Value >> (8 * I));
  Out.write(Bytes, sizeof(Bytes));
}

void writeF64(std::ostream &Out, double Value) {
  writeU64(Out, std::bit_cast<uint64_t>(Value));
}

void writeString(std::ostream &Out, const std::string &Value) {
  writeU32(Out, static_cast<uint32_t>(Value.size()));
  Out.write(Value.data(), static_cast<std::streamsize>(Value.size()));
}

bool ByteReader::readU32(uint32_t &Value) {
  if (remaining() < 4)
    return false;
  const auto *B = reinterpret_cast<const unsigned char *>(Ptr);
  Value = static_cast<uint32_t>(B[0]) | static_cast<uint32_t>(B[1]) << 8 |
          static_cast<uint32_t>(B[2]) << 16 | static_cast<uint32_t>(B[3]) << 24;
  Ptr += 4;
  return true;
}

bool ByteReader::readU64(uint64_t &Value) {
  if (remaining() < 8)
    return false;
  const auto *B = reinterpret_cast<const unsigned char *>(Ptr);
  Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(B[I]) << (8 * I);
  Ptr += 8;
  return true;
}

bool ByteReader::readF64(double &Value) {
  uint64_t Bits = 0;
  if (!readU64(Bits))
    return false;
  Value = std::bit_cast<double>(Bits);
  return true;
}

bool ByteReader::readString(std::string &Value) {
  uint32_t Size = 0;
  if (!readU32(Size))
    return false;
  if (Size > MaxStringBytes || Size > remaining())
    return false;
  Value.assign(Ptr, Size);
  Ptr += Size;
  return true;
}

std::string readAll(std::istream &In) {
  std::string Bytes;
  char Buffer[1 << 16];
  while (In.read(Buffer, sizeof(Buffer)) || In.gcount() > 0)
    Bytes.append(Buffer, static_cast<size_t>(In.gcount()));
  return Bytes;
}

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

namespace {

// IEEE 802.3 reflected polynomial, the zlib/PNG convention; the check
// value crc32("123456789") == 0xCBF43926 is asserted in tests.
constexpr std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

constexpr std::array<uint32_t, 256> CrcTable = makeCrcTable();

} // namespace

uint32_t crc32(const void *Data, size_t Size, uint32_t Seed) {
  const auto *Bytes = static_cast<const unsigned char *>(Data);
  uint32_t Crc = ~Seed;
  for (size_t I = 0; I < Size; ++I)
    Crc = CrcTable[(Crc ^ Bytes[I]) & 0xFF] ^ (Crc >> 8);
  return ~Crc;
}

//===----------------------------------------------------------------------===//
// Atomic file replacement
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

#if !defined(_WIN32)

bool atomicWriteFile(const std::string &Path, std::string_view Bytes,
                     std::string *Error, const AtomicWriteOptions &Options) {
  const std::string TempPath = Path + AtomicTempSuffix;
  const size_t Chunk = Options.ChunkBytes == 0 ? 1 : Options.ChunkBytes;

  int Fd = ::open(TempPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return fail(Error, "cannot open " + TempPath + " for writing: " +
                           std::strerror(errno));

  size_t Written = 0;
  while (Written < Bytes.size()) {
    size_t Want = std::min(Chunk, Bytes.size() - Written);
    ssize_t Got = ::write(Fd, Bytes.data() + Written, Want);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      int Saved = errno;
      ::close(Fd);
      return fail(Error, "I/O error while writing " + TempPath + ": " +
                             std::strerror(Saved));
    }
    Written += static_cast<size_t>(Got);
    if (Options.CrashAt && Options.CrashAt(Written)) {
      // Simulated crash: abandon the temp file exactly as a killed
      // process would — no fsync, no rename, temp left behind.
      ::close(Fd);
      return fail(Error, "simulated crash after " + std::to_string(Written) +
                             " byte(s) of " + TempPath);
    }
  }

  // The temp's bytes must be durable before the rename publishes them,
  // otherwise a power loss could expose a renamed-but-empty file.
  if (Options.SyncData && ::fsync(Fd) != 0) {
    int Saved = errno;
    ::close(Fd);
    return fail(Error,
                "cannot flush " + TempPath + ": " + std::strerror(Saved));
  }
  if (::close(Fd) != 0)
    return fail(Error,
                "cannot close " + TempPath + ": " + std::strerror(errno));

  if (::rename(TempPath.c_str(), Path.c_str()) != 0)
    return fail(Error, "cannot rename " + TempPath + " to " + Path + ": " +
                           std::strerror(errno));

  // Make the rename itself durable. Failure here is not fatal to the
  // caller: the data is intact either way, only crash-durability of the
  // directory entry is weakened, so ignore errors (e.g. filesystems
  // that refuse O_RDONLY directory fsync).
  if (Options.SyncData) {
    std::string Dir = std::filesystem::path(Path).parent_path().string();
    if (Dir.empty())
      Dir = ".";
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      ::fsync(DirFd);
      ::close(DirFd);
    }
  }
  return true;
}

#else // _WIN32 fallback: plain buffered writes + filesystem rename.

bool atomicWriteFile(const std::string &Path, std::string_view Bytes,
                     std::string *Error, const AtomicWriteOptions &Options) {
  const std::string TempPath = Path + AtomicTempSuffix;
  const size_t Chunk = Options.ChunkBytes == 0 ? 1 : Options.ChunkBytes;
  {
    std::ofstream Out(TempPath, std::ios::binary | std::ios::trunc);
    if (!Out)
      return fail(Error, "cannot open " + TempPath + " for writing");
    size_t Written = 0;
    while (Written < Bytes.size()) {
      size_t Want = std::min(Chunk, Bytes.size() - Written);
      Out.write(Bytes.data() + Written, static_cast<std::streamsize>(Want));
      Written += Want;
      if (Options.CrashAt && Options.CrashAt(Written))
        return fail(Error, "simulated crash after " +
                               std::to_string(Written) + " byte(s) of " +
                               TempPath);
    }
    Out.flush();
    if (!Out)
      return fail(Error, "I/O error while writing " + TempPath);
  }
  std::error_code Ec;
  std::filesystem::rename(TempPath, Path, Ec);
  if (Ec)
    return fail(Error, "cannot rename " + TempPath + " to " + Path + ": " +
                           Ec.message());
  return true;
}

#endif

} // namespace bio
} // namespace ccprof
