//===- trace/MemoryRecord.h - One recorded memory reference ----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of the memory trace: one executed load or store with its
/// instruction identity (a SiteId standing in for the instruction
/// pointer) and the effective virtual address. This is the exact tuple
/// PEBS address sampling delivers (paper Sec. 2.2) and the tuple Pin
/// would record for the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_MEMORYRECORD_H
#define CCPROF_TRACE_MEMORYRECORD_H

#include <cstdint>

namespace ccprof {

/// Identifies an access site (instruction). SiteIds are issued by a
/// SiteRegistry and play the role of the instruction pointer: distinct
/// source references get distinct ids, and the registry maps an id back
/// to file/line/function for attribution.
using SiteId = uint32_t;

/// Reserved id meaning "unknown instruction" (e.g. a sample whose IP
/// falls outside any registered code, like the anonymous MKL loops in
/// paper Sec. 6.3).
inline constexpr SiteId UnknownSite = 0;

/// One recorded memory reference.
struct MemoryRecord {
  SiteId Site = UnknownSite;
  uint64_t Addr = 0;
  uint16_t SizeBytes = 0;
  bool IsWrite = false;

  bool operator==(const MemoryRecord &Other) const = default;
};

} // namespace ccprof

#endif // CCPROF_TRACE_MEMORYRECORD_H
