//===- trace/AllocationRegistry.h - Heap allocation tracking ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks live heap allocations (name, start address, size) the way
/// CCProf's libmonitor shim interposes malloc/free (paper Sec. 4).
/// Data-centric attribution resolves each sampled effective address to
/// the allocation containing it.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_ALLOCATIONREGISTRY_H
#define CCPROF_TRACE_ALLOCATIONREGISTRY_H

#include "support/IntervalMap.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccprof {

/// Index of an allocation within an AllocationRegistry.
using AllocId = uint32_t;

/// One recorded heap allocation.
struct AllocationInfo {
  std::string Name; ///< Data-structure name, e.g. "reference[]".
  uint64_t Start = 0;
  uint64_t SizeBytes = 0;
  bool Live = true;

  uint64_t end() const { return Start + SizeBytes; }
};

/// Registry of named allocation ranges with point-address lookup.
class AllocationRegistry {
public:
  /// Records a new live allocation. \returns its id, or nullopt if the
  /// range is empty or overlaps a live allocation (which would indicate
  /// a broken allocator or a missed free).
  std::optional<AllocId> recordAllocation(std::string Name, uint64_t Start,
                                          uint64_t SizeBytes);

  /// Convenience overload taking a pointer.
  template <typename T>
  std::optional<AllocId> recordAllocation(std::string Name, const T *Ptr,
                                          uint64_t SizeBytes) {
    return recordAllocation(std::move(Name),
                            reinterpret_cast<uint64_t>(Ptr), SizeBytes);
  }

  /// Marks the allocation starting at \p Start as freed; its address
  /// range becomes reusable. \returns false if no live allocation starts
  /// there.
  bool recordFree(uint64_t Start);

  /// \returns the id of the live allocation containing \p Addr.
  std::optional<AllocId> findByAddress(uint64_t Addr) const;

  /// \returns allocation metadata (live or freed) by id.
  const AllocationInfo &info(AllocId Id) const {
    assert(Id < Allocations.size() && "allocation id out of range");
    return Allocations[Id];
  }

  /// Total allocations ever recorded (including freed ones).
  size_t size() const { return Allocations.size(); }

  /// Number of currently live allocations.
  size_t liveCount() const { return LiveRanges.size(); }

private:
  std::vector<AllocationInfo> Allocations;
  IntervalMap<AllocId> LiveRanges;
};

} // namespace ccprof

#endif // CCPROF_TRACE_ALLOCATIONREGISTRY_H
