//===- trace/AllocationRegistry.cpp - Heap allocation tracking -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/AllocationRegistry.h"

using namespace ccprof;

std::optional<AllocId>
AllocationRegistry::recordAllocation(std::string Name, uint64_t Start,
                                     uint64_t SizeBytes) {
  if (SizeBytes == 0)
    return std::nullopt;
  AllocId Id = static_cast<AllocId>(Allocations.size());
  if (!LiveRanges.insert(Start, Start + SizeBytes, Id))
    return std::nullopt;
  Allocations.push_back(
      AllocationInfo{std::move(Name), Start, SizeBytes, /*Live=*/true});
  return Id;
}

bool AllocationRegistry::recordFree(uint64_t Start) {
  std::optional<AllocId> Id = LiveRanges.lookup(Start);
  if (!Id || Allocations[*Id].Start != Start)
    return false;
  Allocations[*Id].Live = false;
  LiveRanges.eraseAt(Start);
  return true;
}

std::optional<AllocId>
AllocationRegistry::findByAddress(uint64_t Addr) const {
  return LiveRanges.lookup(Addr);
}
