//===- trace/SiteRegistry.h - Access-site (synthetic IP) table -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of instrumented access sites. A site is the reproduction's
/// instruction pointer: each static load/store in a workload kernel
/// registers once and records its SiteId with every dynamic reference.
/// The offline analyzer resolves a SiteId back to (file, line, function)
/// exactly as HPCToolkit resolves an IP against DWARF line tables.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_TRACE_SITEREGISTRY_H
#define CCPROF_TRACE_SITEREGISTRY_H

#include "trace/MemoryRecord.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Source identity of an access site.
struct SourceSite {
  std::string File;
  uint32_t Line = 0;
  std::string Function;

  bool operator==(const SourceSite &Other) const = default;

  /// "file:line (function)" rendering for reports.
  std::string describe() const;
};

/// Issues stable SiteIds for source sites and resolves them back.
///
/// Ids start at 1; UnknownSite (0) is never issued.
class SiteRegistry {
public:
  /// Returns the id for (\p File, \p Line, \p Function), creating it on
  /// first use. Repeated registration of the same triple returns the
  /// same id.
  SiteId registerSite(std::string File, uint32_t Line, std::string Function);

  /// \returns the source identity of \p Id, or nullptr for UnknownSite /
  /// unregistered ids.
  const SourceSite *lookup(SiteId Id) const;

  /// Number of registered sites.
  size_t size() const { return Sites.size(); }

  /// All registered sites in id order (index 0 is SiteId 1).
  const std::vector<SourceSite> &sites() const { return Sites; }

private:
  struct Key {
    std::string File;
    uint32_t Line;
    std::string Function;
    bool operator==(const Key &Other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<std::string>{}(K.File);
      H = H * 31 + K.Line;
      H = H * 31 + std::hash<std::string>{}(K.Function);
      return H;
    }
  };

  std::vector<SourceSite> Sites;
  std::unordered_map<Key, SiteId, KeyHash> Index;
};

} // namespace ccprof

#endif // CCPROF_TRACE_SITEREGISTRY_H
