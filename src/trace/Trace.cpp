//===- trace/Trace.cpp - Memory trace container and recorder -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <istream>
#include <ostream>

using namespace ccprof;

namespace {

constexpr uint32_t TraceMagic = 0xCC9F07A1;
constexpr uint32_t TraceVersion = 1;

void writeU32(std::ostream &Out, uint32_t Value) {
  Out.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

void writeU64(std::ostream &Out, uint64_t Value) {
  Out.write(reinterpret_cast<const char *>(&Value), sizeof(Value));
}

void writeString(std::ostream &Out, const std::string &Value) {
  writeU32(Out, static_cast<uint32_t>(Value.size()));
  Out.write(Value.data(), static_cast<std::streamsize>(Value.size()));
}

bool readU32(std::istream &In, uint32_t &Value) {
  In.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return In.good();
}

bool readU64(std::istream &In, uint64_t &Value) {
  In.read(reinterpret_cast<char *>(&Value), sizeof(Value));
  return In.good();
}

bool readString(std::istream &In, std::string &Value) {
  uint32_t Size = 0;
  if (!readU32(In, Size))
    return false;
  // Refuse absurd sizes rather than attempting a gigantic allocation on a
  // corrupt stream.
  if (Size > (1u << 20))
    return false;
  Value.resize(Size);
  In.read(Value.data(), Size);
  return In.good() || (Size == 0 && !In.bad());
}

} // namespace

bool Trace::writeTo(std::ostream &Out) const {
  writeU32(Out, TraceMagic);
  writeU32(Out, TraceVersion);

  // Site table.
  writeU32(Out, static_cast<uint32_t>(Sites.size()));
  for (const SourceSite &Site : Sites.sites()) {
    writeString(Out, Site.File);
    writeU32(Out, Site.Line);
    writeString(Out, Site.Function);
  }

  // Allocation table (live and freed, in id order).
  writeU32(Out, static_cast<uint32_t>(Allocations.size()));
  for (size_t I = 0; I < Allocations.size(); ++I) {
    const AllocationInfo &Info = Allocations.info(static_cast<AllocId>(I));
    writeString(Out, Info.Name);
    writeU64(Out, Info.Start);
    writeU64(Out, Info.SizeBytes);
    writeU32(Out, Info.Live ? 1 : 0);
  }

  // Reference stream.
  writeU64(Out, Records.size());
  for (const MemoryRecord &Record : Records) {
    writeU32(Out, Record.Site);
    writeU64(Out, Record.Addr);
    writeU32(Out, (static_cast<uint32_t>(Record.SizeBytes) << 1) |
                      (Record.IsWrite ? 1 : 0));
  }
  return Out.good();
}

bool Trace::readFrom(std::istream &In, Trace &Result) {
  uint32_t Magic = 0, Version = 0;
  if (!readU32(In, Magic) || Magic != TraceMagic)
    return false;
  if (!readU32(In, Version) || Version != TraceVersion)
    return false;

  Trace Loaded;

  uint32_t NumSites = 0;
  if (!readU32(In, NumSites))
    return false;
  for (uint32_t I = 0; I < NumSites; ++I) {
    std::string File, Function;
    uint32_t Line = 0;
    if (!readString(In, File) || !readU32(In, Line) ||
        !readString(In, Function))
      return false;
    Loaded.Sites.registerSite(std::move(File), Line, std::move(Function));
  }

  uint32_t NumAllocations = 0;
  if (!readU32(In, NumAllocations))
    return false;
  for (uint32_t I = 0; I < NumAllocations; ++I) {
    std::string Name;
    uint64_t Start = 0, Size = 0;
    uint32_t Live = 0;
    if (!readString(In, Name) || !readU64(In, Start) || !readU64(In, Size) ||
        !readU32(In, Live))
      return false;
    std::optional<AllocId> Id =
        Loaded.Allocations.recordAllocation(std::move(Name), Start, Size);
    if (!Id)
      return false;
    if (!Live)
      Loaded.Allocations.recordFree(Start);
  }

  uint64_t NumRecords = 0;
  if (!readU64(In, NumRecords))
    return false;
  Loaded.Records.reserve(NumRecords);
  for (uint64_t I = 0; I < NumRecords; ++I) {
    uint32_t Site = 0, SizeAndFlags = 0;
    uint64_t Addr = 0;
    if (!readU32(In, Site) || !readU64(In, Addr) ||
        !readU32(In, SizeAndFlags))
      return false;
    Loaded.Records.push_back(
        MemoryRecord{Site, Addr, static_cast<uint16_t>(SizeAndFlags >> 1),
                     (SizeAndFlags & 1) != 0});
  }

  Result = std::move(Loaded);
  return true;
}
