//===- trace/Trace.cpp - Memory trace container and recorder -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "trace/BinaryIO.h"

#include <sstream>

using namespace ccprof;
using namespace ccprof::bio;

namespace {

constexpr uint32_t TraceMagic = 0xCC9F07A1;
// v1 = initial format; v2 = same payload plus a trailing CRC-32 over
// header + payload (the same hardening as the artifact format).
constexpr uint32_t TraceVersion = 2;
constexpr uint32_t MinTraceVersion = 1;

/// Sets *Error (when non-null) and returns false.
bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

bool Trace::writeTo(std::ostream &Out) const {
  // Serialize to memory first so the trailing checksum can cover every
  // byte that precedes it, header included.
  std::ostringstream Buffer;
  writeU32(Buffer, TraceMagic);
  writeU32(Buffer, TraceVersion);

  // Site table.
  writeU32(Buffer, static_cast<uint32_t>(Sites.size()));
  for (const SourceSite &Site : Sites.sites()) {
    writeString(Buffer, Site.File);
    writeU32(Buffer, Site.Line);
    writeString(Buffer, Site.Function);
  }

  // Allocation table (live and freed, in id order).
  writeU32(Buffer, static_cast<uint32_t>(Allocations.size()));
  for (size_t I = 0; I < Allocations.size(); ++I) {
    const AllocationInfo &Info = Allocations.info(static_cast<AllocId>(I));
    writeString(Buffer, Info.Name);
    writeU64(Buffer, Info.Start);
    writeU64(Buffer, Info.SizeBytes);
    writeU32(Buffer, Info.Live ? 1 : 0);
  }

  // Reference stream.
  writeU64(Buffer, Records.size());
  for (const MemoryRecord &Record : Records) {
    writeU32(Buffer, Record.Site);
    writeU64(Buffer, Record.Addr);
    writeU32(Buffer, (static_cast<uint32_t>(Record.SizeBytes) << 1) |
                         (Record.IsWrite ? 1 : 0));
  }

  std::string Bytes = std::move(Buffer).str();
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  writeU32(Out, crc32(Bytes));
  return Out.good();
}

bool Trace::readFrom(std::istream &In, Trace &Result, std::string *Error) {
  const std::string Bytes = readAll(In);
  ByteReader Header(Bytes);
  uint32_t Magic = 0, Version = 0;
  if (!Header.readU32(Magic))
    return fail(Error, "file is empty or too short to be a ccprof trace");
  if (Magic != TraceMagic)
    return fail(Error, "bad magic number: not a ccprof trace file");
  if (!Header.readU32(Version))
    return fail(Error, "truncated trace header");
  if (Version < MinTraceVersion || Version > TraceVersion)
    return fail(Error, "unsupported trace format version " +
                           std::to_string(Version) + " (expected " +
                           std::to_string(MinTraceVersion) + ".." +
                           std::to_string(TraceVersion) + ")");

  std::string_view Payload = std::string_view(Bytes).substr(8);
  if (Version >= 2) {
    if (Payload.size() < 4)
      return fail(Error, "truncated trace: missing checksum");
    ByteReader Tail(Payload.substr(Payload.size() - 4));
    uint32_t Stored = 0;
    Tail.readU32(Stored);
    Payload.remove_suffix(4);
    if (Stored != crc32(Bytes.data(), Bytes.size() - 4))
      return fail(Error, "checksum mismatch: trace is corrupt "
                         "(truncated tail or flipped bits)");
  }

  ByteReader Reader(Payload);
  Trace Loaded;

  uint32_t NumSites = 0;
  // Bound every count against the bytes actually remaining (site: 12
  // bytes minimum, allocation: 24, record: 16) so a corrupt count fails
  // here instead of driving a gigantic allocation or scan.
  if (!Reader.readU32(NumSites) || !Reader.fits(NumSites, 4 + 4 + 4))
    return fail(Error, "truncated trace: missing site table");
  for (uint32_t I = 0; I < NumSites; ++I) {
    std::string File, Function;
    uint32_t Line = 0;
    if (!Reader.readString(File) || !Reader.readU32(Line) ||
        !Reader.readString(Function))
      return fail(Error, "truncated or corrupt site table (entry " +
                             std::to_string(I) + " of " +
                             std::to_string(NumSites) + ")");
    Loaded.Sites.registerSite(std::move(File), Line, std::move(Function));
  }

  uint32_t NumAllocations = 0;
  if (!Reader.readU32(NumAllocations) ||
      !Reader.fits(NumAllocations, 4 + 8 + 8 + 4))
    return fail(Error, "truncated trace: missing allocation table");
  for (uint32_t I = 0; I < NumAllocations; ++I) {
    std::string Name;
    uint64_t Start = 0, Size = 0;
    uint32_t Live = 0;
    if (!Reader.readString(Name) || !Reader.readU64(Start) ||
        !Reader.readU64(Size) || !Reader.readU32(Live))
      return fail(Error, "truncated or corrupt allocation table (entry " +
                             std::to_string(I) + " of " +
                             std::to_string(NumAllocations) + ")");
    std::optional<AllocId> Id =
        Loaded.Allocations.recordAllocation(std::move(Name), Start, Size);
    if (!Id)
      return fail(Error,
                  "corrupt allocation table: empty or overlapping range");
    if (!Live)
      Loaded.Allocations.recordFree(Start);
  }

  uint64_t NumRecords = 0;
  if (!Reader.readU64(NumRecords) || !Reader.fits(NumRecords, 4 + 8 + 4))
    return fail(Error, "truncated trace: missing reference stream");
  // The count is now proven to fit in the remaining bytes, so the
  // reservation is bounded by the file size.
  Loaded.Records.reserve(static_cast<size_t>(NumRecords));
  for (uint64_t I = 0; I < NumRecords; ++I) {
    uint32_t Site = 0, SizeAndFlags = 0;
    uint64_t Addr = 0;
    if (!Reader.readU32(Site) || !Reader.readU64(Addr) ||
        !Reader.readU32(SizeAndFlags))
      return fail(Error, "truncated reference stream (record " +
                             std::to_string(I) + " of " +
                             std::to_string(NumRecords) + ")");
    Loaded.Records.push_back(
        MemoryRecord{Site, Addr, static_cast<uint16_t>(SizeAndFlags >> 1),
                     (SizeAndFlags & 1) != 0});
  }

  if (!Reader.atEnd())
    return fail(Error, std::to_string(Reader.remaining()) +
                           " trailing byte(s) after the trace payload");

  Result = std::move(Loaded);
  return true;
}
