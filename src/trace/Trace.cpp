//===- trace/Trace.cpp - Memory trace container and recorder -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "trace/BinaryIO.h"

#include <algorithm>
#include <istream>
#include <ostream>

using namespace ccprof;
using namespace ccprof::bio;

namespace {

constexpr uint32_t TraceMagic = 0xCC9F07A1;
constexpr uint32_t TraceVersion = 1;

/// Sets *Error (when non-null) and returns false.
bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return false;
}

} // namespace

bool Trace::writeTo(std::ostream &Out) const {
  writeU32(Out, TraceMagic);
  writeU32(Out, TraceVersion);

  // Site table.
  writeU32(Out, static_cast<uint32_t>(Sites.size()));
  for (const SourceSite &Site : Sites.sites()) {
    writeString(Out, Site.File);
    writeU32(Out, Site.Line);
    writeString(Out, Site.Function);
  }

  // Allocation table (live and freed, in id order).
  writeU32(Out, static_cast<uint32_t>(Allocations.size()));
  for (size_t I = 0; I < Allocations.size(); ++I) {
    const AllocationInfo &Info = Allocations.info(static_cast<AllocId>(I));
    writeString(Out, Info.Name);
    writeU64(Out, Info.Start);
    writeU64(Out, Info.SizeBytes);
    writeU32(Out, Info.Live ? 1 : 0);
  }

  // Reference stream.
  writeU64(Out, Records.size());
  for (const MemoryRecord &Record : Records) {
    writeU32(Out, Record.Site);
    writeU64(Out, Record.Addr);
    writeU32(Out, (static_cast<uint32_t>(Record.SizeBytes) << 1) |
                      (Record.IsWrite ? 1 : 0));
  }
  return Out.good();
}

bool Trace::readFrom(std::istream &In, Trace &Result, std::string *Error) {
  uint32_t Magic = 0, Version = 0;
  if (!readU32(In, Magic))
    return fail(Error, "file is empty or too short to be a ccprof trace");
  if (Magic != TraceMagic)
    return fail(Error, "bad magic number: not a ccprof trace file");
  if (!readU32(In, Version))
    return fail(Error, "truncated trace header");
  if (Version != TraceVersion)
    return fail(Error, "unsupported trace format version " +
                           std::to_string(Version) + " (expected " +
                           std::to_string(TraceVersion) + ")");

  Trace Loaded;

  uint32_t NumSites = 0;
  if (!readU32(In, NumSites))
    return fail(Error, "truncated trace: missing site table");
  for (uint32_t I = 0; I < NumSites; ++I) {
    std::string File, Function;
    uint32_t Line = 0;
    if (!readString(In, File) || !readU32(In, Line) ||
        !readString(In, Function))
      return fail(Error, "truncated or corrupt site table (entry " +
                             std::to_string(I) + " of " +
                             std::to_string(NumSites) + ")");
    Loaded.Sites.registerSite(std::move(File), Line, std::move(Function));
  }

  uint32_t NumAllocations = 0;
  if (!readU32(In, NumAllocations))
    return fail(Error, "truncated trace: missing allocation table");
  for (uint32_t I = 0; I < NumAllocations; ++I) {
    std::string Name;
    uint64_t Start = 0, Size = 0;
    uint32_t Live = 0;
    if (!readString(In, Name) || !readU64(In, Start) || !readU64(In, Size) ||
        !readU32(In, Live))
      return fail(Error, "truncated or corrupt allocation table (entry " +
                             std::to_string(I) + " of " +
                             std::to_string(NumAllocations) + ")");
    std::optional<AllocId> Id =
        Loaded.Allocations.recordAllocation(std::move(Name), Start, Size);
    if (!Id)
      return fail(Error,
                  "corrupt allocation table: empty or overlapping range");
    if (!Live)
      Loaded.Allocations.recordFree(Start);
  }

  uint64_t NumRecords = 0;
  if (!readU64(In, NumRecords))
    return fail(Error, "truncated trace: missing reference stream");
  // Reserve conservatively: a corrupt count must not trigger a gigantic
  // up-front allocation; growth beyond the cap falls back to push_back.
  Loaded.Records.reserve(
      static_cast<size_t>(std::min<uint64_t>(NumRecords, 1u << 20)));
  for (uint64_t I = 0; I < NumRecords; ++I) {
    uint32_t Site = 0, SizeAndFlags = 0;
    uint64_t Addr = 0;
    if (!readU32(In, Site) || !readU64(In, Addr) ||
        !readU32(In, SizeAndFlags))
      return fail(Error, "truncated reference stream (record " +
                             std::to_string(I) + " of " +
                             std::to_string(NumRecords) + ")");
    Loaded.Records.push_back(
        MemoryRecord{Site, Addr, static_cast<uint16_t>(SizeAndFlags >> 1),
                     (SizeAndFlags & 1) != 0});
  }

  Result = std::move(Loaded);
  return true;
}
