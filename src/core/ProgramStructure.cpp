//===- core/ProgramStructure.cpp - Offline binary analysis front-end -----===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ProgramStructure.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

ProgramStructure::ProgramStructure(const BinaryImage &Image) : Image(&Image) {
  Structures.reserve(Image.functions().size());
  for (const BinaryFunction &Function : Image.functions()) {
    FunctionStructure Structure{Cfg::build(Image, Function), LoopNest{}, 0,
                                0};
    Structure.Loops = LoopNest::analyze(Structure.Graph);
    const std::vector<Instruction> &Insns = Image.instructions();
    Structure.MinLine = Insns[Function.FirstInsn].Line;
    Structure.MaxLine = Insns[Function.FirstInsn].Line;
    for (size_t I = Function.FirstInsn,
                E = Function.FirstInsn + Function.NumInsns;
         I < E; ++I) {
      Structure.MinLine = std::min(Structure.MinLine, Insns[I].Line);
      Structure.MaxLine = std::max(Structure.MaxLine, Insns[I].Line);
    }
    Structures.push_back(std::move(Structure));
  }
}

std::optional<LoopRef>
ProgramStructure::innermostLoopForLine(uint32_t Line) const {
  std::optional<LoopRef> Best;
  uint32_t BestDepth = 0;
  uint32_t BestSpan = ~uint32_t{0};
  for (uint32_t F = 0; F < Structures.size(); ++F) {
    const FunctionStructure &Structure = Structures[F];
    if (Line < Structure.MinLine || Line > Structure.MaxLine)
      continue;
    std::optional<LoopId> Loop =
        Structure.Loops.innermostLoopForLine(Line);
    if (!Loop)
      continue;
    const LoopInfo &Info = Structure.Loops.loop(*Loop);
    uint32_t Span = Info.MaxLine - Info.MinLine;
    if (!Best || Info.Depth > BestDepth ||
        (Info.Depth == BestDepth && Span < BestSpan)) {
      Best = LoopRef{F, *Loop};
      BestDepth = Info.Depth;
      BestSpan = Span;
    }
  }
  return Best;
}

std::string ProgramStructure::describeLoop(LoopRef Ref) const {
  const LoopInfo &Info = info(Ref);
  const Cfg &Graph = Structures[Ref.FunctionIndex].Graph;
  uint32_t HeaderLine = Graph.block(Info.Header).MinLine;
  return Image->sourceFile() + ":" + std::to_string(HeaderLine);
}

uint32_t ProgramStructure::headerLine(LoopRef Ref) const {
  const LoopInfo &Info = info(Ref);
  return Structures[Ref.FunctionIndex].Graph.block(Info.Header).MinLine;
}

uint32_t ProgramStructure::depth(LoopRef Ref) const {
  return info(Ref).Depth;
}

size_t ProgramStructure::numLoops() const {
  size_t Count = 0;
  for (const FunctionStructure &Structure : Structures)
    Count += Structure.Loops.numLoops();
  return Count;
}

std::vector<LoopRef> ProgramStructure::allLoops() const {
  std::vector<LoopRef> Loops;
  Loops.reserve(numLoops());
  for (uint32_t F = 0; F < Structures.size(); ++F)
    for (LoopId L = 0; L < Structures[F].Loops.numLoops(); ++L)
      Loops.push_back(LoopRef{F, L});
  return Loops;
}
