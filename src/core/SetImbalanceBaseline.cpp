//===- core/SetImbalanceBaseline.cpp - DProf-style baseline ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/SetImbalanceBaseline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ccprof;

ImbalanceVerdict
SetImbalanceBaseline::classify(std::span<const uint64_t> PerSetMisses) const {
  assert(!PerSetMisses.empty() && "need at least one set");
  ImbalanceVerdict Verdict;

  uint64_t Total = 0;
  for (uint64_t Count : PerSetMisses)
    Total += Count;
  if (Total == 0)
    return Verdict; // No misses: trivially clean.

  // Share of the busiest quarter of the sets.
  std::vector<uint64_t> Sorted(PerSetMisses.begin(), PerSetMisses.end());
  std::sort(Sorted.begin(), Sorted.end(), std::greater<uint64_t>());
  size_t Quarter = std::max<size_t>(1, Sorted.size() / 4);
  uint64_t Top = 0;
  for (size_t I = 0; I < Quarter; ++I)
    Top += Sorted[I];
  Verdict.TopQuarterShare =
      static_cast<double>(Top) / static_cast<double>(Total);

  // Coefficient of variation for reporting.
  double Mean =
      static_cast<double>(Total) / static_cast<double>(PerSetMisses.size());
  double Var = 0.0;
  for (uint64_t Count : PerSetMisses) {
    double Delta = static_cast<double>(Count) - Mean;
    Var += Delta * Delta;
  }
  Var /= static_cast<double>(PerSetMisses.size());
  Verdict.CoefficientOfVariation = Mean > 0.0 ? std::sqrt(Var) / Mean : 0.0;

  Verdict.Conflict = Verdict.TopQuarterShare > FlagThreshold;
  return Verdict;
}
