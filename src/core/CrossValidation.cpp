//===- core/CrossValidation.cpp - K-fold model validation ----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/CrossValidation.h"

#include "core/LogisticRegression.h"
#include "support/Rng.h"

#include <cassert>
#include <numeric>
#include <vector>

using namespace ccprof;

BinaryConfusion ccprof::crossValidate(std::span<const double> X,
                                      std::span<const uint8_t> Labels,
                                      CrossValidationOptions Options) {
  assert(X.size() == Labels.size() && "feature/label size mismatch");
  assert(Options.Folds >= 2 && "k-fold needs at least two folds");
  assert(X.size() >= Options.Folds && "need at least one sample per fold");

  const size_t N = X.size();

  // Fisher-Yates shuffle of the index set for random fold assignment.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), size_t{0});
  Xoshiro256 Rng(Options.ShuffleSeed);
  for (size_t I = N; I > 1; --I)
    std::swap(Order[I - 1], Order[Rng.nextBounded(I)]);

  BinaryConfusion Pooled;
  for (uint32_t Fold = 0; Fold < Options.Folds; ++Fold) {
    // Fold f holds the shuffled indices congruent to f.
    std::vector<double> TrainX;
    std::vector<uint8_t> TrainY;
    TrainX.reserve(N);
    TrainY.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      if (I % Options.Folds == Fold)
        continue;
      TrainX.push_back(X[Order[I]]);
      TrainY.push_back(Labels[Order[I]]);
    }

    SimpleLogisticRegression Model;
    Model.fit(TrainX, TrainY);

    for (size_t I = Fold; I < N; I += Options.Folds) {
      bool Predicted =
          Model.classify(X[Order[I]], Options.DecisionThreshold);
      Pooled.record(Predicted, Labels[Order[I]] != 0);
    }
  }
  return Pooled;
}
