//===- core/CrossValidation.h - K-fold model validation --------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// K-fold cross-validation of the conflict classifier, pooling the
/// per-fold confusion matrices into one F1-score — the paper's accuracy
/// protocol (8-fold over 16 labeled loops, Sec. 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_CROSSVALIDATION_H
#define CCPROF_CORE_CROSSVALIDATION_H

#include "support/Statistics.h"

#include <cstdint>
#include <span>

namespace ccprof {

/// Options for k-fold evaluation.
struct CrossValidationOptions {
  uint32_t Folds = 8;
  uint64_t ShuffleSeed = 0x0f01'd5ee;
  double DecisionThreshold = 0.5;
};

/// Runs k-fold cross-validation of a SimpleLogisticRegression on the
/// labeled observations (\p X[i], \p Labels[i]) and \returns the pooled
/// confusion matrix (use .f1() for the paper's accuracy measure).
/// Requires X.size() >= Folds >= 2.
BinaryConfusion crossValidate(std::span<const double> X,
                              std::span<const uint8_t> Labels,
                              CrossValidationOptions Options = {});

} // namespace ccprof

#endif // CCPROF_CORE_CROSSVALIDATION_H
