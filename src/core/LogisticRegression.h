//===- core/LogisticRegression.h - Simple logistic regression --*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simple (one-feature) logistic regression, the model the paper trains
/// to decide "does this loop suffer from conflict misses?" from the L1
/// miss contribution factor under an RCD threshold (Sec. 3.4, [35]).
/// Fitted with Newton-Raphson (IRLS) plus a small L2 ridge so linearly
/// separable training sets — common with only 16 loops — converge to
/// finite weights.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_LOGISTICREGRESSION_H
#define CCPROF_CORE_LOGISTICREGRESSION_H

#include <cstdint>
#include <span>

namespace ccprof {

/// Options of SimpleLogisticRegression::fit.
struct LogisticFitOptions {
  uint32_t MaxIterations = 100;
  double Tolerance = 1e-9;  ///< Convergence on weight change.
  double Ridge = 1e-3;      ///< L2 regularization strength.
};

/// Binary classifier p(y=1 | x) = sigmoid(W0 + W1 * x).
class SimpleLogisticRegression {
public:
  /// Fits the model to observations (\p X[i], nonzero \p Labels[i]).
  /// \returns the number of Newton iterations used.
  /// Requires at least one observation of each class for a meaningful
  /// decision boundary, but converges regardless.
  uint32_t fit(std::span<const double> X, std::span<const uint8_t> Labels,
               LogisticFitOptions Options = {});

  /// p(y=1 | \p X).
  double predictProbability(double X) const;

  /// predictProbability(X) >= \p Threshold.
  bool classify(double X, double Threshold = 0.5) const {
    return predictProbability(X) >= Threshold;
  }

  /// The feature value where p = 0.5 (the decision boundary); only
  /// meaningful when W1 != 0.
  double decisionBoundary() const;

  double intercept() const { return W0; }
  double slope() const { return W1; }

private:
  double W0 = 0.0;
  double W1 = 0.0;
};

} // namespace ccprof

#endif // CCPROF_CORE_LOGISTICREGRESSION_H
