//===- core/ConflictClassifier.cpp - Conflict-miss classification --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ConflictClassifier.h"

#include <cassert>

using namespace ccprof;

void ConflictClassifier::train(std::span<const LabeledLoop> TrainingSet) {
  assert(!TrainingSet.empty() && "cannot train on an empty set");
  std::vector<double> X;
  std::vector<uint8_t> Y;
  X.reserve(TrainingSet.size());
  Y.reserve(TrainingSet.size());
  for (const LabeledLoop &Loop : TrainingSet) {
    X.push_back(Loop.ContributionFactor);
    Y.push_back(Loop.HasConflicts ? 1 : 0);
  }
  Model.fit(X, Y);
  Trained = true;
}

ConflictClassifier::Decision
ConflictClassifier::classify(double ContributionFactor) const {
  assert(Trained && "classifier must be trained before use");
  double P = Model.predictProbability(ContributionFactor);
  return Decision{P >= 0.5, P};
}

ConflictClassifier::Decision
ConflictClassifier::classifyProfile(const RcdProfile &Profile) const {
  return classify(Profile.contributionFactor(RcdThreshold));
}

ConflictClassifier
ConflictClassifier::pretrained(uint64_t RcdThreshold) {
  // Canonical separation from the paper's measurements: clean Rodinia
  // hot loops put 10-20% of their L1 misses below RCD 8 (Sec. 5.1);
  // confirmed-conflicting loops put 37-99% there (Fig. 9 narratives).
  static const LabeledLoop Canon[] = {
      {"clean-low", 0.05, false},   {"clean-mid", 0.10, false},
      {"clean-mid2", 0.15, false},  {"clean-high", 0.20, false},
      {"clean-edge", 0.24, false},  {"conflict-edge", 0.37, true},
      {"conflict-mid", 0.50, true}, {"conflict-mid2", 0.71, true},
      {"conflict-high", 0.88, true}, {"conflict-max", 0.99, true},
  };
  ConflictClassifier Classifier(RcdThreshold);
  Classifier.train(Canon);
  return Classifier;
}
