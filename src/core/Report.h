//===- core/Report.h - Text rendering of profile results -------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ProfileResults as the text reports CCProf emits: the per-loop
/// conflict summary (Table 4 style), the optimization guidance with
/// data-centric attribution, and RCD CDF series for the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_REPORT_H
#define CCPROF_CORE_REPORT_H

#include "core/Profiler.h"

#include <string>
#include <utility>
#include <vector>

namespace ccprof {

/// Full human-readable report: run summary, hot loops with verdicts,
/// data-centric attribution for flagged loops.
std::string renderProfileReport(const ProfileResult &Result,
                                const std::string &ProgramName);

/// Machine-readable rendering of \p Result as a JSON object: the run
/// summary plus one entry per loop (location, samples, contribution
/// factor, median RCD, conflict probability, verdict, data-structure
/// attribution). The structured twin of renderProfileReport, consumed
/// by `ccprof show --json`, service alerting, and CI.
std::string renderProfileReportJson(const ProfileResult &Result,
                                    const std::string &ProgramName);

/// Table 4-style rendering: location, miss contribution, sets utilized.
std::string renderLoopTable(const ProfileResult &Result);

/// CDF series of the RCD distribution of one loop report (paper
/// Figs. 7/9): (rcd, cumulative fraction of that context's misses).
/// The series accounts only for observed RCDs; the first miss per set
/// contributes no point.
std::vector<std::pair<uint64_t, double>>
rcdCdfSeries(const LoopConflictReport &Report);

/// The paper's summary statistic for the CDF plots: the fraction of
/// misses with RCD strictly below \p Threshold.
double cdfAtThreshold(const LoopConflictReport &Report, uint64_t Threshold);

/// Fig. 3-b rendering: the per-set miss histogram of one context as an
/// ASCII chart (at most \p MaxRows busiest sets), with the victim sets
/// called out.
std::string renderVictimSets(const LoopConflictReport &Report,
                             size_t MaxRows = 12);

} // namespace ccprof

#endif // CCPROF_CORE_REPORT_H
