//===- core/ProgramStructure.h - Offline binary analysis front-end -------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline analyzer's view of the profiled program: for every
/// function of the binary it recovers the CFG and runs Havlak interval
/// analysis (paper Sec. 4), then answers "which innermost loop does this
/// source line belong to?" during code-centric attribution. Loops are
/// named by their header line, the way the paper reports them
/// ("needle.cpp:189").
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_PROGRAMSTRUCTURE_H
#define CCPROF_CORE_PROGRAMSTRUCTURE_H

#include "cfg/Cfg.h"
#include "cfg/LoopNest.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ccprof {

/// A loop within the analyzed program: function index + loop id.
struct LoopRef {
  uint32_t FunctionIndex = 0;
  LoopId Loop = 0;

  bool operator==(const LoopRef &Other) const = default;
  /// Totally ordered so LoopRef can key ordered containers.
  auto operator<=>(const LoopRef &Other) const = default;
};

/// CFG + loop forest of every function in a BinaryImage.
class ProgramStructure {
public:
  /// Analyzes \p Image (which must outlive this object).
  explicit ProgramStructure(const BinaryImage &Image);

  /// \returns the innermost loop (across all functions) whose line span
  /// contains \p Line, or nullopt for loop-free code.
  std::optional<LoopRef> innermostLoopForLine(uint32_t Line) const;

  /// "file:headerLine" name of \p Ref, e.g. "needle.cpp:189".
  std::string describeLoop(LoopRef Ref) const;

  /// Header source line of \p Ref.
  uint32_t headerLine(LoopRef Ref) const;

  /// Nesting depth of \p Ref (1 = outermost).
  uint32_t depth(LoopRef Ref) const;

  /// Total loops discovered across all functions.
  size_t numLoops() const;

  size_t numFunctions() const { return Structures.size(); }
  const Cfg &cfg(uint32_t FunctionIndex) const {
    return Structures[FunctionIndex].Graph;
  }
  const LoopNest &loopNest(uint32_t FunctionIndex) const {
    return Structures[FunctionIndex].Loops;
  }
  const BinaryImage &image() const { return *Image; }

  /// Every loop of the program.
  std::vector<LoopRef> allLoops() const;

private:
  struct FunctionStructure {
    Cfg Graph;
    LoopNest Loops;
    uint32_t MinLine = 0;
    uint32_t MaxLine = 0;
  };

  const LoopInfo &info(LoopRef Ref) const {
    return Structures[Ref.FunctionIndex].Loops.loop(Ref.Loop);
  }

  const BinaryImage *Image;
  std::vector<FunctionStructure> Structures;
};

} // namespace ccprof

#endif // CCPROF_CORE_PROGRAMSTRUCTURE_H
