//===- core/LogisticRegression.cpp - Simple logistic regression ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/LogisticRegression.h"

#include <cassert>
#include <cmath>

using namespace ccprof;

namespace {

double sigmoid(double Z) {
  // Numerically stable in both tails.
  if (Z >= 0.0) {
    double E = std::exp(-Z);
    return 1.0 / (1.0 + E);
  }
  double E = std::exp(Z);
  return E / (1.0 + E);
}

} // namespace

uint32_t SimpleLogisticRegression::fit(std::span<const double> X,
                                       std::span<const uint8_t> Labels,
                                       LogisticFitOptions Options) {
  assert(X.size() == Labels.size() && "feature/label size mismatch");
  assert(!X.empty() && "cannot fit an empty training set");

  const size_t N = X.size();
  W0 = 0.0;
  W1 = 0.0;

  uint32_t Iteration = 0;
  for (; Iteration < Options.MaxIterations; ++Iteration) {
    // Gradient and Hessian of the ridge-penalized log-likelihood.
    double G0 = -Options.Ridge * W0;
    double G1 = -Options.Ridge * W1;
    double H00 = Options.Ridge, H01 = 0.0, H11 = Options.Ridge;
    for (size_t I = 0; I < N; ++I) {
      double P = sigmoid(W0 + W1 * X[I]);
      double Error = (Labels[I] ? 1.0 : 0.0) - P;
      G0 += Error;
      G1 += Error * X[I];
      double Weight = P * (1.0 - P);
      H00 += Weight;
      H01 += Weight * X[I];
      H11 += Weight * X[I] * X[I];
    }

    // Newton step: solve H * delta = G for the 2x2 system.
    double Det = H00 * H11 - H01 * H01;
    assert(Det > 0.0 && "ridge keeps the Hessian positive definite");
    double Delta0 = (H11 * G0 - H01 * G1) / Det;
    double Delta1 = (H00 * G1 - H01 * G0) / Det;
    W0 += Delta0;
    W1 += Delta1;

    if (std::abs(Delta0) < Options.Tolerance &&
        std::abs(Delta1) < Options.Tolerance)
      break;
  }
  return Iteration;
}

double SimpleLogisticRegression::predictProbability(double X) const {
  return sigmoid(W0 + W1 * X);
}

double SimpleLogisticRegression::decisionBoundary() const {
  assert(W1 != 0.0 && "flat model has no boundary");
  return -W0 / W1;
}
