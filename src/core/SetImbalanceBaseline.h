//===- core/SetImbalanceBaseline.h - DProf-style baseline ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper positions itself against (Sec. 7.1, [39]):
/// a DProf-style *static* heuristic that aggregates sampled misses into
/// one per-set histogram for the whole run and flags a context when the
/// distribution is imbalanced — without any temporal information.
///
/// Its blind spot, per the paper: "DProf assumes that the workload is
/// uniform throughout the runtime, whereas applications with dynamic
/// access patterns are common." A loop whose victim set *migrates*
/// (phase 1 hammers set A, phase 2 set B, ... — the locality signature
/// of paper Fig. 4) conflicts in every phase, yet its whole-run
/// histogram is perfectly balanced, so the static heuristic reports it
/// clean. RCD, measuring distances, catches it.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_SETIMBALANCEBASELINE_H
#define CCPROF_CORE_SETIMBALANCEBASELINE_H

#include <cstdint>
#include <span>
#include <vector>

namespace ccprof {

/// Verdict of the static heuristic on one context's per-set counts.
struct ImbalanceVerdict {
  bool Conflict = false;
  /// Fraction of all misses absorbed by the busiest quarter of the
  /// sets; 0.25 for a uniform distribution, 1.0 for total collapse.
  double TopQuarterShare = 0.0;
  /// Coefficient of variation of the per-set counts (0 = uniform).
  double CoefficientOfVariation = 0.0;
};

/// Static set-imbalance classifier over whole-run per-set miss counts.
class SetImbalanceBaseline {
public:
  /// \p FlagThreshold: flag when the busiest quarter of the sets holds
  /// more than this share of all misses. A uniform pattern scores 0.25;
  /// DProf-style tools use a generous margin over that.
  explicit SetImbalanceBaseline(double FlagThreshold = 0.5)
      : FlagThreshold(FlagThreshold) {}

  /// Classifies one context from its per-set miss counts.
  ImbalanceVerdict classify(std::span<const uint64_t> PerSetMisses) const;

private:
  double FlagThreshold;
};

} // namespace ccprof

#endif // CCPROF_CORE_SETIMBALANCEBASELINE_H
