//===- core/RcdAnalyzer.cpp - Re-Conflict Distance analysis --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/RcdAnalyzer.h"

#include <cassert>

using namespace ccprof;

RcdProfile::RcdProfile(uint64_t NumSets)
    : PerSetRcd(NumSets), SetMisses(NumSets, 0), LastMissOrdinal(NumSets, 0),
      CurrentRunRcd(NumSets, 0), CurrentRunLength(NumSets, 0) {
  assert(NumSets > 0 && "profile needs at least one set");
}

void RcdProfile::addMiss(uint64_t SetIndex, uint64_t EventOrdinal) {
  assert(SetIndex < SetMisses.size() && "set index out of range");
  assert(EventOrdinal > LastOrdinal && "event ordinals must increase");
  LastOrdinal = EventOrdinal;
  ++TotalMisses;
  ++SetMisses[SetIndex];

  const uint64_t Previous = LastMissOrdinal[SetIndex];
  LastMissOrdinal[SetIndex] = EventOrdinal;
  if (Previous == 0)
    return; // First miss on this set: no RCD observation yet.

  const uint64_t Distance = EventOrdinal - Previous;
  Rcd.add(Distance);
  PerSetRcd[SetIndex].add(Distance);

  // Conflict-period tracking: extend or close the constant-RCD run.
  if (CurrentRunLength[SetIndex] > 0 && CurrentRunRcd[SetIndex] == Distance) {
    ++CurrentRunLength[SetIndex];
    return;
  }
  if (CurrentRunLength[SetIndex] > 0)
    Periods.RunLengths.add(CurrentRunLength[SetIndex]);
  CurrentRunRcd[SetIndex] = Distance;
  CurrentRunLength[SetIndex] = 1;
}

const Histogram &RcdProfile::rcdOfSet(uint64_t SetIndex) const {
  assert(SetIndex < PerSetRcd.size() && "set index out of range");
  return PerSetRcd[SetIndex];
}

uint64_t RcdProfile::setsUtilized() const {
  uint64_t Count = 0;
  for (uint64_t Misses : SetMisses)
    if (Misses > 0)
      ++Count;
  return Count;
}

ConflictPeriodStats RcdProfile::conflictPeriods() const {
  ConflictPeriodStats Result = Periods;
  for (uint64_t Length : CurrentRunLength)
    if (Length > 0)
      Result.RunLengths.add(Length);
  return Result;
}

double RcdProfile::contributionFactor(uint64_t Threshold) const {
  if (TotalMisses == 0)
    return 0.0;
  return static_cast<double>(Rcd.countBelow(Threshold)) /
         static_cast<double>(TotalMisses);
}

RcdAnalyzer::RcdAnalyzer(uint64_t NumSets) : NumSets(NumSets) {
  assert(NumSets > 0 && "analyzer needs at least one set");
}

void RcdAnalyzer::addMiss(ContextId Context, uint64_t SetIndex,
                          uint64_t EventOrdinal) {
  auto It = Profiles.find(Context);
  if (It == Profiles.end())
    It = Profiles.emplace(Context, RcdProfile(NumSets)).first;
  It->second.addMiss(SetIndex, EventOrdinal);
  ++TotalMisses;
}

const RcdProfile *RcdAnalyzer::profile(ContextId Context) const {
  auto It = Profiles.find(Context);
  return It == Profiles.end() ? nullptr : &It->second;
}
