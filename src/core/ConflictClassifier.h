//===- core/ConflictClassifier.h - Conflict-miss classification -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision stage of CCProf (paper Sec. 3.4, Table 1): given a
/// loop's L1-miss contribution factor under the RCD threshold, does the
/// loop suffer from conflict misses? A simple logistic regression is
/// trained on loops labeled by the ground-truth cache simulator; the
/// paper trains on 16 loops (8 conflicting / 8 clean) and validates with
/// 8-fold cross-validation.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_CONFLICTCLASSIFIER_H
#define CCPROF_CORE_CONFLICTCLASSIFIER_H

#include "core/LogisticRegression.h"
#include "core/RcdAnalyzer.h"

#include <span>
#include <string>
#include <vector>

namespace ccprof {

/// One labeled training loop.
struct LabeledLoop {
  std::string Name;               ///< For diagnostics only.
  double ContributionFactor = 0;  ///< cf under the RCD threshold.
  bool HasConflicts = false;      ///< Ground-truth label (from simulation).
};

/// Trained conflict/no-conflict classifier over the contribution factor.
class ConflictClassifier {
public:
  /// Paper's empirical RCD threshold T (Sec. 3.3: "RCD of shorter than
  /// eight", with the 64-set L1).
  static constexpr uint64_t DefaultRcdThreshold = 8;

  explicit ConflictClassifier(uint64_t RcdThreshold = DefaultRcdThreshold)
      : RcdThreshold(RcdThreshold) {}

  /// Fits the logistic model on \p TrainingSet.
  void train(std::span<const LabeledLoop> TrainingSet);

  bool isTrained() const { return Trained; }

  /// Classifier verdict for one loop.
  struct Decision {
    bool Conflict = false;
    double Probability = 0.0; ///< p(conflict | cf).
  };

  /// Classifies from a raw contribution factor.
  Decision classify(double ContributionFactor) const;

  /// Classifies a measured RCD profile (computes cf at the threshold).
  Decision classifyProfile(const RcdProfile &Profile) const;

  uint64_t rcdThreshold() const { return RcdThreshold; }
  const SimpleLogisticRegression &model() const { return Model; }

  /// A classifier trained on the canonical contribution-factor
  /// separation the paper reports (clean Rodinia loops show cf of
  /// 0.10-0.20; conflicting loops 0.37-0.99; Secs. 5.1, 6). Useful when
  /// no simulator ground truth is at hand.
  static ConflictClassifier pretrained(
      uint64_t RcdThreshold = DefaultRcdThreshold);

private:
  uint64_t RcdThreshold;
  SimpleLogisticRegression Model;
  bool Trained = false;
};

} // namespace ccprof

#endif // CCPROF_CORE_CONFLICTCLASSIFIER_H
