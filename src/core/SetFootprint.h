//===- core/SetFootprint.h - Set-footprint primitives ----------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared primitives for reasoning about the cache-set footprint of
/// strided access streams without simulating them. PaddingAdvisor's
/// column-sweep measures are built on these, and the static
/// conflict-prediction pass (src/analysis) generalizes them into full
/// per-set occupancy vectors.
///
/// Every strided walk's set sequence is periodic: after
/// setStride / gcd(stride, setStride) accesses the (set, line-offset)
/// pair repeats exactly. All footprint questions about arbitrarily long
/// walks therefore reduce to one period plus one window — which is what
/// keeps these functions O(numSets) in space no matter the trip count.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_SETFOOTPRINT_H
#define CCPROF_CORE_SETFOOTPRINT_H

#include "sim/CacheGeometry.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Period, in accesses, of the set-index sequence of a walk strided by
/// \p StrideBytes: the smallest P > 0 with set(addr + P*stride) ==
/// set(addr) for every addr. A zero stride (or one that is a multiple
/// of the set stride) has period 1 — the walk never leaves its set.
uint64_t strideSetPeriod(int64_t StrideBytes, const CacheGeometry &Geometry);

/// Tracks per-set distinct-line occupancy over a sliding window of the
/// last \p WindowAccesses accesses of an arbitrary address stream. The
/// window models residency: a set whose in-window distinct-line count
/// exceeds the associativity cannot hold its working set and must
/// thrash (the static analogue of the short-RCD signal CCProf
/// measures).
class SetOccupancyTracker {
public:
  SetOccupancyTracker(const CacheGeometry &Geometry, uint64_t WindowAccesses);

  /// Feeds one access at byte address \p Addr. \returns the set index
  /// the access mapped to.
  uint64_t access(uint64_t Addr);

  /// Distinct lines currently in the window on \p Set.
  uint32_t occupancy(uint64_t Set) const { return Occupancy[Set]; }

  /// Highest in-window distinct-line count ever observed per set.
  const std::vector<uint32_t> &peakOccupancy() const { return Peak; }

  /// Total accesses that mapped to each set.
  const std::vector<uint64_t> &accessesPerSet() const { return PerSet; }

  /// Distinct lines ever touched, per set and in total.
  const std::vector<uint64_t> &linesPerSet() const { return Lines; }
  uint64_t distinctLines() const { return TotalLines; }

  /// True when the last access's line was new to the whole stream (a
  /// compulsory / cold line).
  bool lastAccessWasNewLine() const { return LastWasNewLine; }

  /// True when the last access's line was already inside the window
  /// before the access. A line outside the window has not been touched
  /// for a cache's worth of accesses and is presumed evicted.
  bool lastAccessWasInWindow() const { return LastWasInWindow; }

  /// True when the last access's line was predicted resident: among its
  /// set's `associativity` most recently accessed lines (the per-set
  /// LRU stack) — exact LRU residency for the fed stream. Window
  /// occupancy alone over-predicts misses (a set holding nine
  /// single-visit lines never re-faults), and requiring window
  /// membership over-evicts sparse-line streams a real cache keeps
  /// resident; the stack alone separates hits from misses, while the
  /// window classifies misses into thrash (still in window) versus
  /// compulsory/capacity (out of window).
  bool lastAccessWasResident() const { return LastWasResident; }

  /// Empties the window (ring, occupancy, oversubscription state) while
  /// keeping the whole-stream statistics: accesses per set, distinct
  /// lines, peaks, worst-window coverage. Called between program phases
  /// whose accesses never interleave, so residency evidence from one
  /// phase does not leak into the next.
  void resetWindow();

  /// Number of sets whose *current* window occupancy exceeds the
  /// geometry's associativity.
  uint64_t oversubscribedSets() const { return CurOver; }

  /// Minimum distinct-set count over any full window seen so far; the
  /// window size (at most WindowAccesses) if no full window completed.
  uint64_t worstWindowCoverage() const { return Worst; }

  uint64_t totalAccesses() const { return Total; }

private:
  const CacheGeometry Geometry;
  const uint64_t Window;
  /// Ring buffer of the (set, line) pairs in the window.
  std::vector<std::pair<uint64_t, uint64_t>> Ring;
  size_t RingHead = 0;
  /// Per-set line -> in-window count.
  std::vector<std::unordered_map<uint64_t, uint32_t>> InWindow;
  std::vector<uint32_t> Occupancy;
  std::vector<uint32_t> Peak;
  std::vector<uint64_t> PerSet;
  std::vector<uint64_t> Lines;
  uint64_t SetsInWindow = 0;
  uint64_t CurOver = 0;
  uint64_t Worst;
  uint64_t Total = 0;
  uint64_t TotalLines = 0;
  bool LastWasNewLine = false;
  bool LastWasInWindow = false;
  bool LastWasResident = false;
  /// Per-set MRU stacks of the `associativity` most recent lines: the
  /// predicted residency under LRU replacement.
  std::vector<std::vector<uint64_t>> MruStack;
  /// Global set of lines ever seen (for cold-line classification).
  std::unordered_map<uint64_t, char> SeenLines;
};

} // namespace ccprof

#endif // CCPROF_CORE_SETFOOTPRINT_H
