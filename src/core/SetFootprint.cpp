//===- core/SetFootprint.cpp - Set-footprint primitives ------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/SetFootprint.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

using namespace ccprof;

uint64_t ccprof::strideSetPeriod(int64_t StrideBytes,
                                 const CacheGeometry &Geometry) {
  const uint64_t SetStride = Geometry.setStrideBytes();
  const uint64_t Magnitude =
      StrideBytes < 0 ? static_cast<uint64_t>(-(StrideBytes + 1)) + 1
                      : static_cast<uint64_t>(StrideBytes);
  const uint64_t Reduced = Magnitude % SetStride;
  if (Reduced == 0)
    return 1;
  return SetStride / std::gcd(Reduced, SetStride);
}

SetOccupancyTracker::SetOccupancyTracker(const CacheGeometry &Geometry,
                                         uint64_t WindowAccesses)
    : Geometry(Geometry), Window(WindowAccesses ? WindowAccesses : 1),
      InWindow(Geometry.numSets()), Occupancy(Geometry.numSets(), 0),
      Peak(Geometry.numSets(), 0), PerSet(Geometry.numSets(), 0),
      Lines(Geometry.numSets(), 0), Worst(Window),
      MruStack(Geometry.numSets()) {
  Ring.reserve(Window);
}

uint64_t SetOccupancyTracker::access(uint64_t Addr) {
  const uint64_t Set = Geometry.setIndexOf(Addr);
  const uint64_t Line = Geometry.lineAddrOf(Addr);
  const uint32_t Ways = Geometry.associativity();

  // Evict the oldest window entry once the ring is full.
  if (Ring.size() == Window) {
    auto [OldSet, OldLine] = Ring[RingHead];
    auto It = InWindow[OldSet].find(OldLine);
    if (--It->second == 0) {
      InWindow[OldSet].erase(It);
      if (Occupancy[OldSet]-- == Ways + 1)
        --CurOver;
      if (Occupancy[OldSet] == 0)
        --SetsInWindow;
    }
    Ring[RingHead] = {Set, Line};
  } else {
    Ring.emplace_back(Set, Line);
  }
  RingHead = (RingHead + 1) % Window;

  uint32_t &WindowCount = InWindow[Set][Line];
  LastWasInWindow = WindowCount > 0;
  if (++WindowCount == 1) {
    if (Occupancy[Set]++ == 0)
      ++SetsInWindow;
    if (Occupancy[Set] == Ways + 1)
      ++CurOver;
    if (Occupancy[Set] > Peak[Set])
      Peak[Set] = Occupancy[Set];
  }
  ++PerSet[Set];
  ++Total;

  // Residency = within LRU reach: among the set's `ways` most recently
  // accessed lines. Window membership is deliberately not required —
  // the access-count window over-evicts sparse-line streams (many
  // accesses, few lines) that a real cache keeps resident; it serves
  // as the thrash-vs-capacity classifier instead.
  std::vector<uint64_t> &Stack = MruStack[Set];
  auto StackIt = std::find(Stack.begin(), Stack.end(), Line);
  LastWasResident = StackIt != Stack.end();
  if (LastWasResident)
    Stack.erase(StackIt);
  else if (Stack.size() >= Ways)
    Stack.pop_back();
  Stack.insert(Stack.begin(), Line);

  LastWasNewLine = SeenLines.emplace(Line, 0).second;
  if (LastWasNewLine) {
    ++Lines[Set];
    ++TotalLines;
  }

  if (Ring.size() == Window && SetsInWindow < Worst)
    Worst = SetsInWindow;
  return Set;
}

void SetOccupancyTracker::resetWindow() {
  Ring.clear();
  RingHead = 0;
  for (auto &Map : InWindow)
    Map.clear();
  std::fill(Occupancy.begin(), Occupancy.end(), 0);
  for (std::vector<uint64_t> &Stack : MruStack)
    Stack.clear();
  SetsInWindow = 0;
  CurOver = 0;
  LastWasNewLine = false;
  LastWasInWindow = false;
  LastWasResident = false;
}
