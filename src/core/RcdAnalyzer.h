//===- core/RcdAnalyzer.h - Re-Conflict Distance analysis ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-Conflict Distance (RCD) — the paper's central metric (Def. 1):
/// for a cache set S within a program context P, the distance between
/// two consecutive misses on S, measured in misses of P. We record the
/// distance as the difference of miss ordinals, so a perfectly balanced
/// round-robin over all N sets yields RCD == N for every set, matching
/// Observation 2 ("if an application has no conflict misses, the RCD of
/// each set equals the number of cache sets"); RCD < N marks the set as
/// a victim of imbalanced utilization.
///
/// The same analyzer serves both pipelines: fed every miss (simulator
/// ground truth) it produces exact RCDs; fed the PEBS-sampled
/// subsequence it produces the approximate RCDs of Sec. 3.3.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_RCDANALYZER_H
#define CCPROF_CORE_RCDANALYZER_H

#include "support/Histogram.h"

#include <cstdint>
#include <map>
#include <vector>

namespace ccprof {

/// Identifier of a program context (a loop or function). The profiler
/// assigns contexts during attribution; the analyzer only groups by them.
using ContextId = uint32_t;

/// Statistics of conflict periods (Sec. 3.3): maximal runs of misses on
/// one set with the same RCD value. Long periods mean stable conflict
/// behaviour that sparse sampling can catch; short periods (HimenoBMT)
/// need high-frequency sampling.
struct ConflictPeriodStats {
  Histogram RunLengths; ///< Lengths of completed constant-RCD runs.

  double meanRunLength() const { return RunLengths.meanKey(); }
  uint64_t maxRunLength() const {
    return RunLengths.empty() ? 0 : RunLengths.maxKey();
  }
};

/// RCD profile of one program context.
///
/// Distances are measured in *event ordinals*: positions in the global
/// L1-miss event stream. Under sampling the PMU knows the exact event
/// distance between two samples (it counts the skipped events via the
/// programmed period), so sampled RCDs measured this way are exact
/// distances over an incomplete set of observation points — rather than
/// distances in the sampled subsequence, which would fabricate short
/// RCDs across burst gaps.
class RcdProfile {
public:
  explicit RcdProfile(uint64_t NumSets);

  /// Feeds a miss of this context on \p SetIndex observed at global
  /// event position \p EventOrdinal (1-based, strictly increasing).
  void addMiss(uint64_t SetIndex, uint64_t EventOrdinal);

  /// Convenience overload for self-contained streams: uses the next
  /// consecutive ordinal (exact, context-local RCD — what a simulator
  /// that traces only this loop would compute).
  void addMiss(uint64_t SetIndex) { addMiss(SetIndex, LastOrdinal + 1); }

  /// All RCD observations of the context pooled over sets.
  const Histogram &rcd() const { return Rcd; }

  /// RCD observations of one set.
  const Histogram &rcdOfSet(uint64_t SetIndex) const;

  /// Total misses fed to this context (including each set's first miss,
  /// which produces no RCD observation).
  uint64_t totalMisses() const { return TotalMisses; }

  /// Misses that fell on \p SetIndex.
  uint64_t missesOnSet(uint64_t SetIndex) const {
    return SetMisses[SetIndex];
  }

  /// Number of distinct sets that received at least one miss — the
  /// "# of cache sets utilized" column of paper Table 4.
  uint64_t setsUtilized() const;

  /// Contribution factor cf (Eq. 1): the fraction of this context's
  /// misses whose RCD is shorter than \p Threshold.
  double contributionFactor(uint64_t Threshold) const;

  /// Mean observed RCD; the number of sets for balanced utilization.
  double meanRcd() const { return Rcd.meanKey(); }

  /// Conflict-period statistics pooled over sets, including the
  /// still-open run of each set (a stable pattern that never changes is
  /// one long period, not zero periods).
  ConflictPeriodStats conflictPeriods() const;

  uint64_t numSets() const { return SetMisses.size(); }

private:
  Histogram Rcd;
  std::vector<Histogram> PerSetRcd;
  std::vector<uint64_t> SetMisses;
  /// Event ordinal of the previous miss on each set; 0 = none yet.
  std::vector<uint64_t> LastMissOrdinal;
  /// Most recent event ordinal fed to this profile.
  uint64_t LastOrdinal = 0;
  /// RCD value of the current constant-RCD run per set; run tracking for
  /// conflict periods.
  std::vector<uint64_t> CurrentRunRcd;
  std::vector<uint64_t> CurrentRunLength;
  ConflictPeriodStats Periods;
  uint64_t TotalMisses = 0;
};

/// Groups a stream of set-attributed misses by program context and
/// maintains one RcdProfile per context.
class RcdAnalyzer {
public:
  explicit RcdAnalyzer(uint64_t NumSets);

  /// Feeds one miss of context \p Context on set \p SetIndex observed
  /// at global event position \p EventOrdinal (1-based, increasing).
  void addMiss(ContextId Context, uint64_t SetIndex,
               uint64_t EventOrdinal);

  /// \returns the profile of \p Context, or nullptr if it never missed.
  const RcdProfile *profile(ContextId Context) const;

  /// All contexts with their profiles, keyed by context id.
  const std::map<ContextId, RcdProfile> &profiles() const {
    return Profiles;
  }

  /// Misses fed across all contexts.
  uint64_t totalMisses() const { return TotalMisses; }

  uint64_t numSets() const { return NumSets; }

private:
  uint64_t NumSets;
  std::map<ContextId, RcdProfile> Profiles;
  uint64_t TotalMisses = 0;
};

} // namespace ccprof

#endif // CCPROF_CORE_RCDANALYZER_H
