//===- core/PaddingAdvisor.h - Padding optimization guidance ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the padding fix the paper applies once CCProf flags a loop:
/// for a multidimensional array accessed along a non-contiguous
/// dimension, successive accesses stride by the row size, and when that
/// stride maps a column onto only a few cache sets the walk conflicts.
/// Padding each row shifts successive rows across sets (paper Fig. 2,
/// Sec. 6, [16]).
///
/// The advisor evaluates candidate pads by directly counting the sets a
/// strided walk touches — robust to strides that are not multiples of
/// the line size (the paper's 32-byte NW pad, for instance).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_PADDINGADVISOR_H
#define CCPROF_CORE_PADDINGADVISOR_H

#include "sim/CacheGeometry.h"

#include <cstdint>

namespace ccprof {

/// Number of distinct cache sets touched by \p Rows accesses strided by
/// \p RowStrideBytes (a column walk of a row-major matrix), starting at
/// offset 0. Saturates at the geometry's set count. A zero stride
/// touches exactly one set; trip counts of any size are fine — the walk
/// is evaluated over at most one set-sequence period (see
/// core/SetFootprint.h).
uint64_t setsTouchedByColumnSweep(uint64_t RowStrideBytes, uint64_t Rows,
                                  const CacheGeometry &Geometry);

/// The temporal-quality measure of a strided walk: the minimum number of
/// distinct sets touched over any window of min(numSets, Rows)
/// consecutive accesses. Total sets touched can be perfect while the
/// walk still dwells on one set for long runs (the NW pattern, where a
/// small byte drift eventually covers every set but 16 consecutive rows
/// share one) — low worst-window coverage is exactly what produces the
/// short RCDs CCProf flags. Zero strides report a coverage of 1 and
/// huge trip counts cost one period, never O(Rows) memory.
uint64_t worstWindowSetCoverage(uint64_t RowStrideBytes, uint64_t Rows,
                                const CacheGeometry &Geometry);

/// Recommended padding for one row of a row-major array.
struct PaddingAdvice {
  uint64_t PadBytes = 0;      ///< Bytes to append to each row.
  uint64_t NewRowBytes = 0;   ///< RowBytes + PadBytes.
  uint64_t SetsBefore = 0;    ///< Worst-window coverage before padding.
  uint64_t SetsAfter = 0;     ///< Worst-window coverage after padding.

  bool improves() const { return SetsAfter > SetsBefore; }
};

/// Finds the smallest pad (a multiple of \p ElementBytes, at most one
/// set-stride) that maximizes the worst-window set coverage of a column
/// walk over \p Rows rows of \p RowBytes each. A pad of 0 is returned
/// when the walk already achieves the best coverage found.
PaddingAdvice adviseRowPadding(uint64_t RowBytes, uint64_t ElementBytes,
                               uint64_t Rows,
                               const CacheGeometry &Geometry);

} // namespace ccprof

#endif // CCPROF_CORE_PADDINGADVISOR_H
