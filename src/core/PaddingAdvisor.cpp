//===- core/PaddingAdvisor.cpp - Padding optimization guidance -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaddingAdvisor.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ccprof;

uint64_t ccprof::setsTouchedByColumnSweep(uint64_t RowStrideBytes,
                                          uint64_t Rows,
                                          const CacheGeometry &Geometry) {
  assert(RowStrideBytes > 0 && "stride must be positive");
  const uint64_t NumSets = Geometry.numSets();
  std::vector<uint8_t> Touched(NumSets, 0);
  uint64_t Count = 0;
  uint64_t Addr = 0;
  for (uint64_t Row = 0; Row < Rows && Count < NumSets; ++Row) {
    uint64_t Set = Geometry.setIndexOf(Addr);
    if (!Touched[Set]) {
      Touched[Set] = 1;
      ++Count;
    }
    Addr += RowStrideBytes;
  }
  return Count;
}

uint64_t ccprof::worstWindowSetCoverage(uint64_t RowStrideBytes,
                                        uint64_t Rows,
                                        const CacheGeometry &Geometry) {
  assert(RowStrideBytes > 0 && "stride must be positive");
  assert(Rows > 0 && "need at least one row");
  const uint64_t NumSets = Geometry.numSets();
  const uint64_t Window = std::min(NumSets, Rows);

  // Sliding window over the per-row set sequence, tracking distinct-set
  // counts incrementally.
  std::vector<uint64_t> Sets(Rows);
  uint64_t Addr = 0;
  for (uint64_t Row = 0; Row < Rows; ++Row) {
    Sets[Row] = Geometry.setIndexOf(Addr);
    Addr += RowStrideBytes;
  }

  std::vector<uint32_t> InWindow(NumSets, 0);
  uint64_t Distinct = 0;
  uint64_t Worst = Window;
  for (uint64_t Row = 0; Row < Rows; ++Row) {
    if (InWindow[Sets[Row]]++ == 0)
      ++Distinct;
    if (Row + 1 >= Window) {
      Worst = std::min(Worst, Distinct);
      uint64_t Leaving = Sets[Row + 1 - Window];
      if (--InWindow[Leaving] == 0)
        --Distinct;
    }
  }
  return Worst;
}

PaddingAdvice ccprof::adviseRowPadding(uint64_t RowBytes,
                                       uint64_t ElementBytes, uint64_t Rows,
                                       const CacheGeometry &Geometry) {
  assert(ElementBytes > 0 && "element size must be positive");
  assert(RowBytes >= ElementBytes && "row must hold at least one element");

  PaddingAdvice Advice;
  Advice.SetsBefore = worstWindowSetCoverage(RowBytes, Rows, Geometry);
  Advice.PadBytes = 0;
  Advice.NewRowBytes = RowBytes;
  Advice.SetsAfter = Advice.SetsBefore;
  const uint64_t Best = std::min(Geometry.numSets(), Rows);
  if (Advice.SetsBefore == Best)
    return Advice; // Already perfectly spread.

  // Try pads up to one full set-stride; the mapping of row starts to
  // sets is periodic in the set stride, so nothing larger helps.
  const uint64_t MaxPad = Geometry.setStrideBytes();
  for (uint64_t Pad = ElementBytes; Pad <= MaxPad; Pad += ElementBytes) {
    uint64_t Coverage =
        worstWindowSetCoverage(RowBytes + Pad, Rows, Geometry);
    if (Coverage > Advice.SetsAfter) {
      Advice.PadBytes = Pad;
      Advice.NewRowBytes = RowBytes + Pad;
      Advice.SetsAfter = Coverage;
      if (Coverage == Best)
        break; // Cannot do better.
    }
  }
  return Advice;
}
