//===- core/PaddingAdvisor.cpp - Padding optimization guidance -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaddingAdvisor.h"

#include "core/SetFootprint.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ccprof;

namespace {

/// Rows worth examining for a walk of \p RowStrideBytes: beyond one
/// full set-sequence period plus one window every window of rows is a
/// repeat of an already-seen one, so arbitrarily large trip counts
/// (larger than numSets * ways, larger than memory) cost the same as
/// one period.
uint64_t effectiveRows(uint64_t RowStrideBytes, uint64_t Rows,
                       uint64_t Window, const CacheGeometry &Geometry) {
  const uint64_t Period =
      strideSetPeriod(static_cast<int64_t>(RowStrideBytes), Geometry);
  if (Rows <= Period || Window > UINT64_MAX - Period)
    return Rows;
  return std::min(Rows, Period + Window - 1);
}

} // namespace

uint64_t ccprof::setsTouchedByColumnSweep(uint64_t RowStrideBytes,
                                          uint64_t Rows,
                                          const CacheGeometry &Geometry) {
  // A zero stride dwells on one set forever; short-circuiting also
  // spares the period computation a division by zero.
  if (Rows == 0)
    return 0;
  if (RowStrideBytes == 0)
    return 1;
  const uint64_t NumSets = Geometry.numSets();
  // One period visits every set the walk will ever reach.
  const uint64_t Limit = std::min(
      Rows, strideSetPeriod(static_cast<int64_t>(RowStrideBytes), Geometry));
  std::vector<uint8_t> Touched(NumSets, 0);
  uint64_t Count = 0;
  uint64_t Addr = 0;
  for (uint64_t Row = 0; Row < Limit && Count < NumSets; ++Row) {
    uint64_t Set = Geometry.setIndexOf(Addr);
    if (!Touched[Set]) {
      Touched[Set] = 1;
      ++Count;
    }
    Addr += RowStrideBytes;
  }
  return Count;
}

uint64_t ccprof::worstWindowSetCoverage(uint64_t RowStrideBytes,
                                        uint64_t Rows,
                                        const CacheGeometry &Geometry) {
  assert(Rows > 0 && "need at least one row");
  const uint64_t NumSets = Geometry.numSets();
  const uint64_t Window = std::min(NumSets, Rows);
  if (RowStrideBytes == 0)
    return 1; // Every access in every window shares one set.

  const uint64_t Limit =
      effectiveRows(RowStrideBytes, Rows, Window, Geometry);
  SetOccupancyTracker Tracker(Geometry, Window);
  uint64_t Addr = 0;
  for (uint64_t Row = 0; Row < Limit; ++Row) {
    Tracker.access(Addr);
    Addr += RowStrideBytes;
  }
  return Tracker.worstWindowCoverage();
}

PaddingAdvice ccprof::adviseRowPadding(uint64_t RowBytes,
                                       uint64_t ElementBytes, uint64_t Rows,
                                       const CacheGeometry &Geometry) {
  assert(ElementBytes > 0 && "element size must be positive");
  assert(RowBytes >= ElementBytes && "row must hold at least one element");

  PaddingAdvice Advice;
  Advice.SetsBefore = worstWindowSetCoverage(RowBytes, Rows, Geometry);
  Advice.PadBytes = 0;
  Advice.NewRowBytes = RowBytes;
  Advice.SetsAfter = Advice.SetsBefore;
  const uint64_t Best = std::min(Geometry.numSets(), Rows);
  if (Advice.SetsBefore == Best)
    return Advice; // Already perfectly spread.

  // Try pads up to one full set-stride; the mapping of row starts to
  // sets is periodic in the set stride, so nothing larger helps.
  const uint64_t MaxPad = Geometry.setStrideBytes();
  for (uint64_t Pad = ElementBytes; Pad <= MaxPad; Pad += ElementBytes) {
    uint64_t Coverage =
        worstWindowSetCoverage(RowBytes + Pad, Rows, Geometry);
    if (Coverage > Advice.SetsAfter) {
      Advice.PadBytes = Pad;
      Advice.NewRowBytes = RowBytes + Pad;
      Advice.SetsAfter = Coverage;
      if (Coverage == Best)
        break; // Cannot do better.
    }
  }
  return Advice;
}
