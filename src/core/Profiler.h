//===- core/Profiler.h - End-to-end CCProf pipeline ------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full CCProf pipeline (paper Sec. 4):
///
///   trace -> L1 miss events -> PEBS sampling -> cache-set attribution
///         -> per-loop RCD profiles -> contribution factors
///         -> conflict classification -> code/data-centric attribution.
///
/// Sampling with MeanPeriod == 1 captures every miss, which turns the
/// same pipeline into the simulator-side exact-RCD analysis used as
/// ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_CORE_PROFILER_H
#define CCPROF_CORE_PROFILER_H

#include "core/ConflictClassifier.h"
#include "core/ProgramStructure.h"
#include "core/RcdAnalyzer.h"
#include "pmu/PebsSampler.h"
#include "sim/MachineConfig.h"
#include "trace/Trace.h"

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Which cache level the RCD analysis targets. The paper profiles the
/// virtually-indexed L1; the L2 extension translates addresses through
/// a simulated page mapping first (paper footnote 1).
enum class ProfileLevel {
  L1,
  L2,
};

/// Knobs of one profiling run.
struct ProfileOptions {
  CacheGeometry L1 = paperL1Geometry();
  SamplingConfig Sampling{};
  uint64_t RcdThreshold = ConflictClassifier::DefaultRcdThreshold;
  MissStreamOptions MissOptions{};
  /// Minimum share of all sampled misses a context needs before a
  /// conflict verdict is issued — paper Table 1's "low RCD, low
  /// contribution => insignificant impact" row.
  double SignificanceThreshold = 0.01;

  /// Target level of the analysis (L1 unless configured otherwise).
  ProfileLevel Level = ProfileLevel::L1;
  /// L2 geometry used when Level == ProfileLevel::L2.
  CacheGeometry L2 = CacheGeometry(256 * 1024, 64, 8);
  /// Page-mapping policy for the physical addresses L2 indexes by.
  PagePolicy Mapping = PagePolicy::FirstTouch;
};

/// Data-centric attribution entry: samples landing in one allocation.
struct DataStructureReport {
  std::string Name;
  uint64_t Samples = 0;
  double Share = 0.0; ///< Fraction of the loop's samples.
};

/// Everything CCProf reports about one program context (loop).
struct LoopConflictReport {
  std::string Location; ///< "needle.cpp:189"-style loop name.
  std::optional<LoopRef> Loop; ///< Absent for loop-free contexts.
  uint64_t Samples = 0;
  /// This context's share of all sampled L1 misses (Table 4's
  /// "L1 cache miss contribution").
  double MissContribution = 0.0;
  uint64_t SetsUtilized = 0; ///< Table 4's "# of cache sets utilized".
  double ContributionFactor = 0.0; ///< cf below the RCD threshold.
  double MeanRcd = 0.0;   ///< Skewed by long cross-phase distances.
  uint64_t MedianRcd = 0; ///< Robust central RCD; 0 if no observation.
  double ConflictProbability = 0.0;
  /// True when the context carries enough of the total misses to
  /// matter (Table 1's significance gate).
  bool Significant = false;
  /// Final verdict: classifier says conflict AND the loop is
  /// significant.
  bool ConflictPredicted = false;
  Histogram Rcd; ///< Full RCD distribution (Figs. 7/9 CDF source).
  ConflictPeriodStats Periods;
  /// Whole-run misses per set (Fig. 3-b histogram; also the input of
  /// static set-imbalance baselines).
  std::vector<uint64_t> PerSetMisses;
  std::vector<DataStructureReport> DataStructures;
};

/// Result of one profiling run.
struct ProfileResult {
  uint64_t TraceRefs = 0;
  uint64_t L1Misses = 0;
  uint64_t Samples = 0;
  double L1MissRatio = 0.0;
  uint64_t NumSets = 0;
  uint64_t RcdThreshold = 0;
  /// Per-context reports, hottest (most sampled) first.
  std::vector<LoopConflictReport> Loops;

  /// The hottest context, or nullptr if nothing was sampled.
  const LoopConflictReport *hottest() const {
    return Loops.empty() ? nullptr : &Loops.front();
  }

  /// The report whose location is \p Location, or nullptr. O(1) after
  /// the first call: a location index is built lazily and reused until
  /// Loops changes size (results are effectively immutable once built).
  const LoopConflictReport *byLocation(const std::string &Location) const;

private:
  /// Location -> index into Loops; first occurrence wins, matching the
  /// former linear scan. Rebuilt when IndexedLoops != Loops.size().
  mutable std::unordered_map<std::string, size_t> LocationIndex;
  mutable size_t IndexedLoops = static_cast<size_t>(-1);
};

/// Drives the pipeline. Stateless apart from configuration, so one
/// profiler can analyze many traces.
class Profiler {
public:
  explicit Profiler(ProfileOptions Options = ProfileOptions{},
                    ConflictClassifier Classifier =
                        ConflictClassifier::pretrained());

  /// Profiles \p Execution against the recovered \p Structure.
  ProfileResult profile(const Trace &Execution,
                        const ProgramStructure &Structure) const;

  /// Profiles with exact (unsampled) RCDs: the simulator-side analysis.
  ProfileResult profileExact(const Trace &Execution,
                             const ProgramStructure &Structure) const;

  /// Replays \p Execution through the configured cache level(s) and
  /// \returns the miss-event stream that profile() samples. The stream
  /// depends only on Level / geometries / Mapping / MissOptions — never
  /// on sampling or the RCD threshold — so one collected stream serves
  /// every sampling-period / threshold variant of a cache configuration
  /// (the batch pipeline's shared-trace fast path).
  std::vector<MissEvent> collectMissStream(const Trace &Execution) const;

  /// Like collectMissStream(), but simulates through the set-sharded
  /// parallel engine when \p Ctx provides a thread pool with idle
  /// budget. The stream is element-identical to the sequential
  /// collector's at every shard and thread count (enforced by
  /// tests/CacheShardExactnessTest.cpp).
  std::vector<MissEvent> collectMissStream(const Trace &Execution,
                                           const SimContext &Ctx) const;

  /// Profiles against a precomputed \p Stream, which must come from
  /// collectMissStream() under identical cache-side options. With
  /// \p Exact set the stream is consumed unsampled (profileExact).
  /// Output is byte-identical to profile()/profileExact() on the same
  /// trace: both run the exact same sampling + attribution code.
  ProfileResult profileWithStream(const Trace &Execution,
                                  const ProgramStructure &Structure,
                                  std::span<const MissEvent> Stream,
                                  bool Exact = false) const;

  const ProfileOptions &options() const { return Options; }
  const ConflictClassifier &classifier() const { return Classifier; }

private:
  ProfileResult profileImpl(const Trace &Execution,
                            const ProgramStructure &Structure,
                            const SamplingConfig &Sampling) const;

  /// Sampling + attribution over an already-collected miss stream.
  ProfileResult profileStreamImpl(const Trace &Execution,
                                  const ProgramStructure &Structure,
                                  std::span<const MissEvent> Stream,
                                  const SamplingConfig &Sampling) const;

  ProfileOptions Options;
  ConflictClassifier Classifier;
};

} // namespace ccprof

#endif // CCPROF_CORE_PROFILER_H
