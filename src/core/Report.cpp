//===- core/Report.cpp - Text rendering of profile results ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "support/Table.h"

#include <sstream>

using namespace ccprof;

std::string ccprof::renderProfileReport(const ProfileResult &Result,
                                        const std::string &ProgramName) {
  std::ostringstream Out;
  Out << "CCProf conflict-miss report: " << ProgramName << '\n'
      << "  references " << fmt::grouped(Result.TraceRefs) << ", L1 misses "
      << fmt::grouped(Result.L1Misses) << " ("
      << fmt::percent(Result.L1MissRatio) << "), samples "
      << fmt::grouped(Result.Samples) << ", sets " << Result.NumSets
      << ", RCD threshold " << Result.RcdThreshold << "\n\n";

  TextTable Table({"loop", "miss contrib", "#sets", "cf(RCD<T)",
                   "median RCD", "p(conflict)", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops) {
    Table.addRow({Loop.Location, fmt::percent(Loop.MissContribution),
                  std::to_string(Loop.SetsUtilized),
                  fmt::percent(Loop.ContributionFactor),
                  std::to_string(Loop.MedianRcd),
                  fmt::fixed(Loop.ConflictProbability, 2),
                  Loop.ConflictPredicted ? "CONFLICT" : "clean"});
  }
  Out << Table.render() << '\n';

  // Optimization guidance: data-centric attribution of flagged loops.
  for (const LoopConflictReport &Loop : Result.Loops) {
    if (!Loop.ConflictPredicted || Loop.DataStructures.empty())
      continue;
    Out << "Conflicting loop " << Loop.Location
        << " — responsible data structures:\n";
    for (const DataStructureReport &Data : Loop.DataStructures)
      Out << "    " << Data.Name << "  " << fmt::grouped(Data.Samples)
          << " samples (" << fmt::percent(Data.Share) << ")\n";
    Out << "  guidance: consider padding the dominant structure's rows "
           "or transposing the loop's access order.\n";
  }
  return Out.str();
}

std::string ccprof::renderLoopTable(const ProfileResult &Result) {
  TextTable Table(
      {"Loop with line number", "L1 cache miss contribution",
       "# of Cache Sets utilized"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Table.addRow({Loop.Location, fmt::percent(Loop.MissContribution),
                  std::to_string(Loop.SetsUtilized)});
  return Table.render();
}

std::vector<std::pair<uint64_t, double>>
ccprof::rcdCdfSeries(const LoopConflictReport &Report) {
  return Report.Rcd.cdfSeries();
}

double ccprof::cdfAtThreshold(const LoopConflictReport &Report,
                              uint64_t Threshold) {
  return Report.Rcd.fractionBelow(Threshold);
}

std::string ccprof::renderVictimSets(const LoopConflictReport &Report,
                                     size_t MaxRows) {
  std::ostringstream Out;
  Out << "per-set misses of " << Report.Location << " ("
      << Report.SetsUtilized << "/" << Report.PerSetMisses.size()
      << " sets utilized):\n";
  Histogram BySet;
  for (uint64_t Set = 0; Set < Report.PerSetMisses.size(); ++Set)
    BySet.add(Set, Report.PerSetMisses[Set]);
  Out << BySet.toAsciiChart(MaxRows);
  return Out.str();
}
