//===- core/Report.cpp - Text rendering of profile results ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "support/Json.h"
#include "support/Table.h"

#include <sstream>

using namespace ccprof;

std::string ccprof::renderProfileReport(const ProfileResult &Result,
                                        const std::string &ProgramName) {
  std::ostringstream Out;
  Out << "CCProf conflict-miss report: " << ProgramName << '\n'
      << "  references " << fmt::grouped(Result.TraceRefs) << ", L1 misses "
      << fmt::grouped(Result.L1Misses) << " ("
      << fmt::percent(Result.L1MissRatio) << "), samples "
      << fmt::grouped(Result.Samples) << ", sets " << Result.NumSets
      << ", RCD threshold " << Result.RcdThreshold << "\n\n";

  TextTable Table({"loop", "miss contrib", "#sets", "cf(RCD<T)",
                   "median RCD", "p(conflict)", "verdict"});
  for (const LoopConflictReport &Loop : Result.Loops) {
    Table.addRow({Loop.Location, fmt::percent(Loop.MissContribution),
                  std::to_string(Loop.SetsUtilized),
                  fmt::percent(Loop.ContributionFactor),
                  std::to_string(Loop.MedianRcd),
                  fmt::fixed(Loop.ConflictProbability, 2),
                  Loop.ConflictPredicted ? "CONFLICT" : "clean"});
  }
  Out << Table.render() << '\n';

  // Optimization guidance: data-centric attribution of flagged loops.
  for (const LoopConflictReport &Loop : Result.Loops) {
    if (!Loop.ConflictPredicted || Loop.DataStructures.empty())
      continue;
    Out << "Conflicting loop " << Loop.Location
        << " — responsible data structures:\n";
    for (const DataStructureReport &Data : Loop.DataStructures)
      Out << "    " << Data.Name << "  " << fmt::grouped(Data.Samples)
          << " samples (" << fmt::percent(Data.Share) << ")\n";
    Out << "  guidance: consider padding the dominant structure's rows "
           "or transposing the loop's access order.\n";
  }
  return Out.str();
}

std::string ccprof::renderProfileReportJson(const ProfileResult &Result,
                                            const std::string &ProgramName) {
  std::ostringstream Out;
  Out << "{\n  \"program\": " << json::quote(ProgramName)
      << ",\n  \"trace_refs\": " << Result.TraceRefs
      << ",\n  \"l1_misses\": " << Result.L1Misses
      << ",\n  \"l1_miss_ratio\": " << json::number(Result.L1MissRatio)
      << ",\n  \"samples\": " << Result.Samples
      << ",\n  \"num_sets\": " << Result.NumSets
      << ",\n  \"rcd_threshold\": " << Result.RcdThreshold
      << ",\n  \"loops\": [\n";
  for (size_t I = 0; I < Result.Loops.size(); ++I) {
    const LoopConflictReport &Loop = Result.Loops[I];
    Out << "    {\"loop\": " << json::quote(Loop.Location)
        << ", \"samples\": " << Loop.Samples
        << ", \"miss_contribution\": " << json::number(Loop.MissContribution)
        << ", \"sets_utilized\": " << Loop.SetsUtilized
        << ", \"contribution_factor\": "
        << json::number(Loop.ContributionFactor)
        << ", \"median_rcd\": " << Loop.MedianRcd
        << ", \"p_conflict\": " << json::number(Loop.ConflictProbability)
        << ", \"significant\": " << (Loop.Significant ? "true" : "false")
        << ", \"conflict\": " << (Loop.ConflictPredicted ? "true" : "false");
    if (!Loop.DataStructures.empty()) {
      Out << ", \"data_structures\": [";
      for (size_t D = 0; D < Loop.DataStructures.size(); ++D) {
        const DataStructureReport &Data = Loop.DataStructures[D];
        Out << (D ? ", " : "") << "{\"name\": " << json::quote(Data.Name)
            << ", \"samples\": " << Data.Samples
            << ", \"share\": " << json::number(Data.Share) << "}";
      }
      Out << "]";
    }
    Out << "}" << (I + 1 < Result.Loops.size() ? "," : "") << '\n';
  }
  Out << "  ]\n}\n";
  return Out.str();
}

std::string ccprof::renderLoopTable(const ProfileResult &Result) {
  TextTable Table(
      {"Loop with line number", "L1 cache miss contribution",
       "# of Cache Sets utilized"});
  for (const LoopConflictReport &Loop : Result.Loops)
    Table.addRow({Loop.Location, fmt::percent(Loop.MissContribution),
                  std::to_string(Loop.SetsUtilized)});
  return Table.render();
}

std::vector<std::pair<uint64_t, double>>
ccprof::rcdCdfSeries(const LoopConflictReport &Report) {
  return Report.Rcd.cdfSeries();
}

double ccprof::cdfAtThreshold(const LoopConflictReport &Report,
                              uint64_t Threshold) {
  return Report.Rcd.fractionBelow(Threshold);
}

std::string ccprof::renderVictimSets(const LoopConflictReport &Report,
                                     size_t MaxRows) {
  std::ostringstream Out;
  Out << "per-set misses of " << Report.Location << " ("
      << Report.SetsUtilized << "/" << Report.PerSetMisses.size()
      << " sets utilized):\n";
  Histogram BySet;
  for (uint64_t Set = 0; Set < Report.PerSetMisses.size(); ++Set)
    BySet.add(Set, Report.PerSetMisses[Set]);
  Out << BySet.toAsciiChart(MaxRows);
  return Out.str();
}
