//===- core/Profiler.cpp - End-to-end CCProf pipeline --------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace ccprof;

const LoopConflictReport *
ProfileResult::byLocation(const std::string &Location) const {
  // Results are write-once (profiler output, artifact load, merge), so
  // the index is built at most once per result in practice; the size
  // check catches the rebuild-after-mutation case.
  if (IndexedLoops != Loops.size()) {
    LocationIndex.clear();
    LocationIndex.reserve(Loops.size());
    for (size_t I = 0; I < Loops.size(); ++I)
      LocationIndex.emplace(Loops[I].Location, I); // first occurrence wins
    IndexedLoops = Loops.size();
  }
  auto It = LocationIndex.find(Location);
  return It == LocationIndex.end() ? nullptr : &Loops[It->second];
}

Profiler::Profiler(ProfileOptions Options, ConflictClassifier Classifier)
    : Options(Options), Classifier(std::move(Classifier)) {
  assert(this->Classifier.isTrained() &&
         "profiler needs a trained classifier");
}

ProfileResult Profiler::profile(const Trace &Execution,
                                const ProgramStructure &Structure) const {
  return profileImpl(Execution, Structure, Options.Sampling);
}

ProfileResult
Profiler::profileExact(const Trace &Execution,
                       const ProgramStructure &Structure) const {
  SamplingConfig EveryMiss;
  EveryMiss.Kind = SamplingKind::Fixed;
  EveryMiss.MeanPeriod = 1;
  return profileImpl(Execution, Structure, EveryMiss);
}

namespace {

/// Attribution key of a sample: its innermost loop, or its source line
/// for loop-free code, or "unknown" for IPs outside registered code.
struct ContextKey {
  enum class CtxKind { Loop, Line, Unknown } Kind = CtxKind::Unknown;
  LoopRef Loop{};
  uint32_t Line = 0;

  auto asTuple() const {
    return std::make_tuple(static_cast<int>(Kind), Loop.FunctionIndex,
                           Loop.Loop, Line);
  }
  bool operator==(const ContextKey &Other) const {
    return asTuple() == Other.asTuple();
  }
};

/// SplitMix64-style mix over the key tuple; the attribution map is hit
/// once per sample, so hashing beats the former std::map's pointer
/// chasing in profileImpl profiles.
struct ContextKeyHash {
  size_t operator()(const ContextKey &Key) const {
    uint64_t H = static_cast<uint64_t>(Key.Kind);
    H = (H << 21) ^ (static_cast<uint64_t>(Key.Loop.FunctionIndex) << 32 |
                     Key.Loop.Loop);
    H ^= static_cast<uint64_t>(Key.Line) << 1;
    H += 0x9e3779b97f4a7c15ULL;
    H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
    H = (H ^ (H >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(H ^ (H >> 31));
  }
};

} // namespace

std::vector<MissEvent>
Profiler::collectMissStream(const Trace &Execution) const {
  if (Options.Level == ProfileLevel::L1)
    return collectL1MissStream(Execution, Options.L1, Options.MissOptions);
  PageMapper Mapper(Options.Mapping);
  return collectL2MissStream(Execution, Options.L1, Options.L2, Mapper,
                             Options.MissOptions);
}

std::vector<MissEvent>
Profiler::collectMissStream(const Trace &Execution,
                            const SimContext &Ctx) const {
  if (Options.Level == ProfileLevel::L1)
    return collectL1MissStreamParallel(Execution, Options.L1,
                                       Options.MissOptions, Ctx);
  PageMapper Mapper(Options.Mapping);
  return collectL2MissStreamParallel(Execution, Options.L1, Options.L2,
                                     Mapper, Options.MissOptions, Ctx);
}

ProfileResult
Profiler::profileWithStream(const Trace &Execution,
                            const ProgramStructure &Structure,
                            std::span<const MissEvent> Stream,
                            bool Exact) const {
  if (!Exact)
    return profileStreamImpl(Execution, Structure, Stream, Options.Sampling);
  SamplingConfig EveryMiss;
  EveryMiss.Kind = SamplingKind::Fixed;
  EveryMiss.MeanPeriod = 1;
  return profileStreamImpl(Execution, Structure, Stream, EveryMiss);
}

ProfileResult Profiler::profileImpl(const Trace &Execution,
                                    const ProgramStructure &Structure,
                                    const SamplingConfig &Sampling) const {
  // Collect-then-sample: the same two phases the shared-trace batch
  // path runs with a cached stream, so both paths are byte-identical by
  // construction.
  std::vector<MissEvent> Stream = collectMissStream(Execution);
  return profileStreamImpl(Execution, Structure, Stream, Sampling);
}

ProfileResult
Profiler::profileStreamImpl(const Trace &Execution,
                            const ProgramStructure &Structure,
                            std::span<const MissEvent> Stream,
                            const SamplingConfig &Sampling) const {
  // The geometry whose sets the analysis attributes misses to.
  const CacheGeometry &Target =
      Options.Level == ProfileLevel::L1 ? Options.L1 : Options.L2;

  ProfileResult Result;
  Result.TraceRefs = Execution.size();
  Result.NumSets = Target.numSets();
  Result.RcdThreshold = Options.RcdThreshold;

  Result.L1Misses = Stream.size();
  Result.L1MissRatio =
      Result.TraceRefs == 0
          ? 0.0
          : static_cast<double>(Result.L1Misses) /
                static_cast<double>(Result.TraceRefs);

  PebsSampler Sampler(Sampling);
  std::vector<PebsSample> Samples = Sampler.sampleStream(Stream);
  Result.Samples = Samples.size();

  // --- Offline phase: attribution and RCD ------------------------------
  // Per-site context resolution is cached: the site table is small.
  std::unordered_map<SiteId, ContextKey> SiteContext;
  SiteContext.reserve(Execution.sites().size());
  auto ResolveContext = [&](SiteId Site) -> const ContextKey & {
    auto It = SiteContext.find(Site);
    if (It != SiteContext.end())
      return It->second;
    ContextKey Key;
    if (const SourceSite *Info = Execution.sites().lookup(Site)) {
      if (std::optional<LoopRef> Loop =
              Structure.innermostLoopForLine(Info->Line)) {
        Key.Kind = ContextKey::CtxKind::Loop;
        Key.Loop = *Loop;
      } else {
        Key.Kind = ContextKey::CtxKind::Line;
        Key.Line = Info->Line;
      }
    }
    return SiteContext.emplace(Site, Key).first->second;
  };

  // Hashed, not ordered: context ids are assigned in first-appearance
  // order (the map only deduplicates), so swapping std::map out does
  // not move any id or reorder any report.
  std::unordered_map<ContextKey, ContextId, ContextKeyHash> ContextIds;
  ContextIds.reserve(64);
  std::vector<ContextKey> KeyOfContext;
  KeyOfContext.reserve(64);
  auto ContextOf = [&](const ContextKey &Key) {
    auto [It, Inserted] =
        ContextIds.emplace(Key, static_cast<ContextId>(ContextIds.size()));
    if (Inserted)
      KeyOfContext.push_back(Key);
    return It->second;
  };

  RcdAnalyzer Analyzer(Target.numSets());
  // Data-centric tallies per context: AllocId+1, with 0 = unattributed.
  std::vector<std::unordered_map<uint32_t, uint64_t>> AllocCounts;

  for (const PebsSample &Sample : Samples) {
    ContextId Context = ContextOf(ResolveContext(Sample.Event.Ip));
    // RCD distances are measured in global event ordinals: the PMU's
    // period counter makes the exact distance between two samples known
    // even though the events in between were not captured.
    Analyzer.addMiss(Context, Target.setIndexOf(Sample.Event.Addr),
                     Sample.EventIndex + 1);
    if (Context >= AllocCounts.size())
      AllocCounts.resize(Context + 1);
    std::optional<AllocId> Alloc =
        Execution.allocations().findByAddress(Sample.Event.VirtualAddr);
    ++AllocCounts[Context][Alloc ? *Alloc + 1 : 0];
  }

  // --- Reports ----------------------------------------------------------
  Result.Loops.reserve(Analyzer.profiles().size());
  for (const auto &[Context, Profile] : Analyzer.profiles()) {
    const ContextKey &Key = KeyOfContext[Context];
    LoopConflictReport Report;
    switch (Key.Kind) {
    case ContextKey::CtxKind::Loop:
      Report.Loop = Key.Loop;
      Report.Location = Structure.describeLoop(Key.Loop);
      break;
    case ContextKey::CtxKind::Line:
      Report.Location = Structure.image().sourceFile() + ":" +
                        std::to_string(Key.Line) + " (no loop)";
      break;
    case ContextKey::CtxKind::Unknown:
      Report.Location = "<unknown code>";
      break;
    }
    Report.Samples = Profile.totalMisses();
    Report.MissContribution =
        Result.Samples == 0
            ? 0.0
            : static_cast<double>(Report.Samples) /
                  static_cast<double>(Result.Samples);
    Report.SetsUtilized = Profile.setsUtilized();
    Report.ContributionFactor =
        Profile.contributionFactor(Options.RcdThreshold);
    Report.MeanRcd = Profile.meanRcd();
    Report.MedianRcd =
        Profile.rcd().empty() ? 0 : Profile.rcd().quantile(0.5);
    ConflictClassifier::Decision Decision =
        Classifier.classify(Report.ContributionFactor);
    Report.Significant =
        Report.MissContribution >= Options.SignificanceThreshold;
    // Table 1: a conflicting RCD signature in an insignificant loop has
    // no impact on the program and is not worth optimization effort.
    Report.ConflictPredicted = Decision.Conflict && Report.Significant;
    Report.ConflictProbability = Decision.Probability;
    Report.Rcd = Profile.rcd();
    Report.Periods = Profile.conflictPeriods();
    Report.PerSetMisses.reserve(Profile.numSets());
    for (uint64_t Set = 0; Set < Profile.numSets(); ++Set)
      Report.PerSetMisses.push_back(Profile.missesOnSet(Set));

    // Data-centric attribution, largest contributor first.
    if (Context < AllocCounts.size()) {
      for (const auto &[AllocKey, Count] : AllocCounts[Context]) {
        DataStructureReport Data;
        Data.Name = AllocKey == 0 ? "<unattributed>"
                                  : Execution.allocations()
                                        .info(AllocKey - 1)
                                        .Name;
        Data.Samples = Count;
        Data.Share = static_cast<double>(Count) /
                     static_cast<double>(Report.Samples);
        Report.DataStructures.push_back(std::move(Data));
      }
      std::sort(Report.DataStructures.begin(), Report.DataStructures.end(),
                [](const DataStructureReport &A,
                   const DataStructureReport &B) {
                  return A.Samples > B.Samples;
                });
    }
    Result.Loops.push_back(std::move(Report));
  }

  std::sort(Result.Loops.begin(), Result.Loops.end(),
            [](const LoopConflictReport &A, const LoopConflictReport &B) {
              return A.Samples > B.Samples;
            });
  return Result;
}
