//===- sim/PartitionCache.h - Route-once partition reuse -------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partition reuse across configuration sweeps ("route once, replay
/// many"). The set-sharded engine's first phase routes the whole
/// reference stream into a flat ShardPartition arena, but the routing
/// depends only on the *index geometry* — setIndexOf() reads nothing
/// beyond (line size, set count) — and on the shard plan, never on the
/// capacity, associativity, replacement policy, or store handling a
/// particular simulation sweeps over. A batch policy sweep, an MRC
/// geometry sweep at a fixed set count, or a bench shard sweep
/// therefore re-derives the identical arena once per configuration.
///
/// PartitionCache retains those arenas, keyed by (trace identity,
/// index-geometry signature, shard count), and hands them out as
/// shared_ptr-to-const so an entry evicted under the byte budget stays
/// valid for simulations still replaying from it. Trace identity is
/// caller-registered (a Trace has no intrinsic fingerprint, and
/// hashing gigabytes of records to derive one would cost a routing
/// pass by itself): the batch runner registers one id per (workload,
/// variant) group and releases it — dropping the group's entries —
/// when the group completes, so arenas never outlive the trace they
/// index into.
///
/// The chunk grid is deliberately NOT part of the key: the arena bytes
/// are grid-invariant (every slot is precomputed from counts alone —
/// the grid only decides which worker writes a slot, a property the
/// partition exactness tests pin), so keying on it would split
/// otherwise-identical entries across helper-count fluctuations.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_PARTITIONCACHE_H
#define CCPROF_SIM_PARTITIONCACHE_H

#include "sim/ShardedSim.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace ccprof {

/// Everything the partition bytes depend on — and nothing they do not.
struct PartitionKey {
  /// Caller-registered identity of the record stream (see
  /// PartitionCache::registerTrace). 0 never matches.
  uint64_t TraceId = 0;
  /// Index-geometry signature: set count and line size fully determine
  /// setIndexOf for every address.
  uint64_t NumSets = 0;
  uint32_t LineBytes = 0;
  /// Shard plan width; planShards is deterministic in (NumSets, this).
  uint32_t Shards = 0;

  bool operator==(const PartitionKey &Other) const = default;
};

/// Thread-safe, byte-budgeted LRU cache of ShardPartition arenas.
class PartitionCache {
public:
  using PartitionPtr = std::shared_ptr<const ShardPartition>;

  /// \p MaxBytes bounds the resident arena bytes. The budget is
  /// honored against *other* entries: the most recently inserted
  /// partition always stays resident (evicting the arena that was just
  /// built would defeat the cache for exactly the sweeps it exists
  /// for), so a single arena larger than the whole budget is kept
  /// until a later insertion displaces it.
  explicit PartitionCache(size_t MaxBytes = DefaultMaxBytes);

  /// Default byte budget: 256 MiB holds a 16M-ref arena — far beyond
  /// any case-study trace — while bounding a long multi-trace batch.
  static constexpr size_t DefaultMaxBytes = size_t{256} << 20;

  /// Mints a fresh, never-reused trace identity for use in
  /// PartitionKey::TraceId. Thread-safe.
  uint64_t registerTrace();

  /// Drops every resident entry of \p TraceId (handed-out pointers
  /// stay valid). Call when the trace's backing storage is about to
  /// die — the arena holds global sequence numbers into it.
  void releaseTrace(uint64_t TraceId);

  /// \returns the partition under \p Key, invoking \p Compute (outside
  /// the lock) to route it on a miss. Racing callers with the same key
  /// may route twice; both observe the same stored arena afterwards,
  /// and the loser's lookup counts as a hit. \p WasBuilt, when set,
  /// reports whether *this* call's routing pass was the one stored.
  PartitionPtr getOrCompute(const PartitionKey &Key,
                            const std::function<ShardPartition()> &Compute,
                            bool *WasBuilt = nullptr);

  struct CacheStats {
    uint64_t Hits = 0;   ///< Lookups served without routing.
    uint64_t Builds = 0; ///< Lookups that routed the trace.
    uint64_t Evictions = 0;
    size_t ResidentBytes = 0;
    size_t ResidentEntries = 0;
  };
  CacheStats stats() const;

  /// Arena + offset bytes one entry charges against the budget.
  static size_t bytesOf(const ShardPartition &Part);

private:
  struct KeyHash {
    size_t operator()(const PartitionKey &Key) const;
  };
  struct Entry {
    PartitionPtr Data;
    std::list<PartitionKey>::iterator RecencyIt;
    size_t Bytes = 0;
  };

  /// Must be called with Mutex held; never evicts \p Keep.
  void evictOverBudgetLocked(const PartitionKey &Keep);

  mutable std::mutex Mutex;
  size_t MaxBytes;
  std::list<PartitionKey> Recency; ///< Front = most recently used.
  std::unordered_map<PartitionKey, Entry, KeyHash> Entries;
  std::atomic<uint64_t> NextTraceId{1};
  uint64_t Hits = 0;
  uint64_t Builds = 0;
  uint64_t Evictions = 0;
  size_t ResidentBytes = 0;
};

/// The one entry point the collectors route through: produces the
/// partition of \p Records by \p Plan — served from Ctx.Partitions
/// when the context carries a registered trace, routed on the spot
/// otherwise. Routing runs block-parallel on Ctx.Pool when
/// \p Helpers > 0 (via the router Ctx.Router selects), sequentially
/// otherwise; the bytes are identical either way. Bumps
/// Ctx.Stats->PartitionBuilds / PartitionReuses.
PartitionCache::PartitionPtr
routeOrReuse(std::span<const MemoryRecord> Records,
             const CacheGeometry &Geometry, std::span<const SetRange> Plan,
             const SimContext &Ctx, unsigned Helpers);

} // namespace ccprof

#endif // CCPROF_SIM_PARTITIONCACHE_H
