//===- sim/MrcModel.h - Shared stack-distance miss-ratio model -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Hill–Smith readout that turns a *global* stack-distance
/// histogram into a predicted miss ratio for any (sets, ways) cache
/// geometry: a reuse of global distance D hits an S-set A-way LRU cache
/// with probability P(Binomial(D, 1/S) < A), the probability that fewer
/// than A of the D intervening distinct lines land in the reused line's
/// set under uniform mapping.
///
/// This is deliberately a free function over (histogram, cold weight,
/// total refs) rather than a MissRatioCurve method: the measured MRC
/// engine (sim/MrcEngine) and the static reuse-profile estimator
/// (analysis/ReuseProfileEstimator) both read their curves through this
/// one implementation, so a predicted-vs-measured comparison scores the
/// *profiles* against each other with zero model skew.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_MRCMODEL_H
#define CCPROF_SIM_MRCMODEL_H

#include "sim/CacheGeometry.h"
#include "support/Histogram.h"

#include <cstdint>
#include <vector>

namespace ccprof {

/// P(Binomial(D, P) <= A - 1): the Hill–Smith probability that a reuse
/// of global stack distance \p D hits an (S = 1/P sets, \p A ways)
/// cache. Iterative term recurrence, O(A) per call; underflow of the
/// leading (1-P)^D term correctly collapses the tail probability to ~0.
double binomialHitProbability(uint64_t D, double P, uint32_t A);

/// Model miss ratio of a reference stream summarized as a global
/// stack-distance histogram (finite distances, in distinct lines of the
/// geometry's line size) plus \p ColdWeight first-touch references, out
/// of \p TotalRefs references. Single-set geometries use the exact
/// stack threshold (distance < lines is a hit); multi-set geometries
/// apply the binomial set-mapping model per bucket. Cold references
/// always miss; references missing from the histogram (TotalRefs >
/// ColdWeight + histogram total) are treated as cold.
double modelMissRatioFromStack(const Histogram &Distances,
                               uint64_t ColdWeight, uint64_t TotalRefs,
                               const CacheGeometry &Geometry);

/// The default geometry ladder MRC consumers sample when no explicit
/// geometry list is given: an L1 capacity sweep (8..128 KiB) around
/// the paper's 32KiB/64B/8-way point. Shared by the `mrc` and
/// `analyze --mrc` commands, `batch --mrc`, and the static screening
/// stability guard, so every predicted-vs-measured comparison scores
/// the same points.
std::vector<CacheGeometry> defaultMrcSweepGeometries();

} // namespace ccprof

#endif // CCPROF_SIM_MRCMODEL_H
