//===- sim/MrcEngine.h - Single-pass miss-ratio curves ---------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-pass miss-ratio curve (MRC) construction. One walk over a
/// reference stream yields the predicted miss ratio at *every* cache
/// capacity simultaneously, where the multi-config simulation engine
/// pays one full replay per (size, associativity) point:
///
///  * Exact fully-associative curve — Mattson's stack algorithm: a
///    reference with reuse distance D hits every LRU cache of more
///    than D lines (ReuseDistanceAnalyzer does the O(log n) distance
///    bookkeeping), so the global stack-distance histogram plus the
///    cold-miss count *is* the curve, cold misses included.
///
///  * Exact per-set curve at the reference geometry — the same theorem
///    applied per cache set: a reference hits an A-way set-associative
///    LRU cache iff fewer than A distinct same-set lines intervened
///    since its last use. Per-set MRU stacks (depth-capped at
///    MrcOptions::MaxWays, the simulator's associativity ceiling)
///    record that distance, making the curve exact at any
///    associativity <= MaxWays for the reference set count. Sets are
///    independent, so this pass shards over ShardedSim's set
///    partition and the per-shard histograms merge deterministically.
///
///  * SHARDS spatial sampling (Waldspurger et al., FAST'15) — a
///    hash-threshold filter tracks only lines with hash(line) < T
///    (rate R = T / 2^64), scales each sampled distance and its weight
///    by 1/R, and adapts: when the tracked-line reservoir exceeds its
///    fixed size, the largest-hash line is evicted and T drops to its
///    hash, bounding the Fenwick/LastAccess footprint to O(reservoir)
///    on arbitrarily long traces.
///
///  * Associativity correction away from exactly-representable points —
///    the Hill–Smith binomial model: a reuse of global stack distance D
///    in an (S sets, A ways) cache hits with probability
///    P(Binomial(D, 1/S) < A), evaluated per histogram bucket. At
///    S == 1 the model degenerates to the exact fully-associative
///    answer.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_MRCENGINE_H
#define CCPROF_SIM_MRCENGINE_H

#include "sim/CacheGeometry.h"
#include "sim/ReuseDistance.h"
#include "sim/ShardedSim.h"
#include "support/Histogram.h"
#include "trace/Trace.h"

#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ccprof {

/// Configuration of one MRC construction pass.
struct MrcOptions {
  /// Reference geometry: supplies the line size every address is
  /// sliced with and the set count the exact per-set pass runs at.
  CacheGeometry Reference = CacheGeometry(32 * 1024, 64, 8);

  /// Depth cap of the per-set MRU stacks — the curve is exact at the
  /// reference set count for any associativity <= MaxWays. 64 matches
  /// the simulator's own associativity ceiling, so nothing a Cache
  /// could simulate is out of range.
  uint32_t MaxWays = 64;

  /// SHARDS spatial sampling instead of the exact pass. The per-set
  /// histogram is not built in sampled mode (every set-associative
  /// query uses the binomial correction).
  bool Sampled = false;

  /// Initial sampling rate R0 in (0, 1]; the adaptive reservoir can
  /// only lower it.
  double SampleRate = 0.01;

  /// Fixed reservoir size: the maximum number of simultaneously
  /// tracked lines in sampled mode (SHARDS s_max), split evenly across
  /// the sample shards.
  size_t MaxSampledLines = 16384;

  /// Number of independent SHARDS sub-filters the sampled pass splits
  /// into (normalized to a power of two in [1, 256]). Shard p owns the
  /// lines whose hash starts with prefix p, filters on the remaining
  /// hash bits with its own adaptive threshold, and scales every
  /// insert by its *effective* rate (threshold rate / shard count) —
  /// full-stream units — so the merged histogram needs no rescale and
  /// the curve at 1 shard is bit-identical to the legacy single-filter
  /// pass. Because each shard's state depends only on its own
  /// substream, in stream order, the shards can run in parallel
  /// (MrcEngine::compute) with results identical to streaming.
  uint32_t SampleShards = 1;
};

/// The product of a pass: queryable predicted miss ratios. In exact
/// mode all weights are reference counts; in sampled mode they are
/// SHARDS-scaled (each sampled reference stands for 1/R references)
/// and the distances are rescaled to full-stream units.
struct MissRatioCurve {
  /// References fed to the pass (always exact, even in sampled mode).
  uint64_t TotalRefs = 0;
  /// Scaled cold-miss weight (== exact cold count in exact mode).
  uint64_t ColdWeight = 0;
  /// Global stack-distance histogram (scaled in sampled mode).
  Histogram StackDistances;
  /// Per-set stack distances at the reference set count, keys capped
  /// at MaxWays (distances >= MaxWays land on the MaxWays bucket).
  Histogram PerSetDistances;
  /// Cold misses as seen by the per-set pass (== ColdWeight in exact
  /// mode; the split exists because the passes shard independently).
  uint64_t PerSetCold = 0;
  /// True iff the exact per-set histogram was built.
  bool HasPerSet = false;
  CacheGeometry Reference = CacheGeometry(32 * 1024, 64, 8);
  uint32_t MaxWays = 64;
  bool Sampled = false;
  /// Final SHARDS rate after adaptation (1.0 in exact mode).
  double FinalRate = 1.0;

  /// Scaled total reference weight: ColdWeight + StackDistances total.
  /// The self-normalizing SHARDS denominator; equals TotalRefs in
  /// exact mode.
  uint64_t scaledRefs() const { return ColdWeight + StackDistances.total(); }

  /// Predicted misses of a fully-associative LRU cache of \p Lines
  /// lines: cold misses + references with stack distance >= Lines.
  /// Exact-mode counts equal a FullyAssociativeLru replay exactly.
  uint64_t missWeightAtLines(uint64_t Lines) const;

  /// missWeightAtLines / scaledRefs (0 on an empty curve).
  double missRatioAtLines(uint64_t Lines) const;

  /// Predicted overall miss ratio at a concrete geometry. Resolution
  /// order: S == 1 -> exact fully-associative curve; exact per-set
  /// histogram when it was built for this line size + set count and
  /// the associativity fits under MaxWays; otherwise the Hill–Smith
  /// binomial correction on the global histogram.
  double missRatioAt(const CacheGeometry &Geometry) const;

  /// True iff missRatioAt(\p Geometry) resolves to an exact path
  /// (fully-associative or per-set) rather than the binomial model.
  bool isExactAt(const CacheGeometry &Geometry) const;

  /// The histogram-derived readout at \p Geometry — fully-associative
  /// curve at one set, binomial model otherwise — even where an exact
  /// per-set answer exists. This is the resolution sampled curves use
  /// everywhere, so comparing a SHARDS curve against an exact curve
  /// through this readout isolates sampling error from the conflict
  /// gap (exact per-set vs uniform-mapping model), which no sampling
  /// bound covers: that gap is the conflict signal itself.
  double modelMissRatioAt(const CacheGeometry &Geometry) const;
};

/// The per-set half of the exact pass: depth-capped MRU stacks, one
/// per set in \p Window, plus first-touch detection. Public because
/// the sharded pass runs one instance per set shard and merges the
/// histograms (sets are independent, so the merge is exact and
/// deterministic at every shard shape).
class PerSetStackPass {
public:
  PerSetStackPass(const CacheGeometry &Reference, uint32_t MaxWays,
                  SetRange Window);

  /// Feeds one reference; its set must fall inside the window.
  void addRef(uint64_t Addr);

  const Histogram &distances() const { return Distances; }
  uint64_t coldCount() const { return Cold; }

private:
  CacheGeometry Reference;
  uint32_t MaxWays;
  SetRange Window;
  /// MRU-first line stacks, depth-capped at MaxWays; index = set -
  /// Window.Begin.
  std::vector<std::vector<uint64_t>> Stacks;
  std::unordered_set<uint64_t> Seen;
  Histogram Distances;
  uint64_t Cold = 0;
};

/// Streaming single-pass MRC builder. Feed references (addRef /
/// addTrace), then take() the curve. For one-shot construction over a
/// Trace — optionally sharded across a SimContext's thread pool with
/// results identical at every execution shape — use compute().
class MrcEngine {
public:
  explicit MrcEngine(const MrcOptions &Opts);

  const MrcOptions &options() const { return Opts; }

  void addRef(uint64_t Addr);
  void addTrace(const Trace &T);

  /// Finalizes and moves the curve out; the engine is then spent.
  MissRatioCurve take();

  /// One pass over \p T. With a usable SimContext (pool + enough refs)
  /// the exact per-set pass shards over the set partition while the
  /// global pass runs as a sibling task; the exact partition is served
  /// from Ctx.Partitions when the context carries a registered trace.
  /// Sampled passes with MrcOptions::SampleShards > 1 run their
  /// hash-space sub-filters in parallel. Either way the curve is
  /// identical to the sequential one at every --sim-threads/--shards
  /// shape.
  static MissRatioCurve compute(const Trace &T, const MrcOptions &Opts,
                                const SimContext &Ctx = SimContext{});

private:
  /// One SHARDS sub-filter owning the hash-prefix slice of line space.
  /// All rates are *effective* (threshold rate / shard count): the
  /// shard tracks a random 1/NumShards-of-hash-space sample further
  /// thinned by its own threshold, and every weight/distance insert is
  /// scaled to full-stream units at insert time.
  struct SampledShard {
    ReuseDistanceAnalyzer Global;
    uint64_t Threshold = 0; ///< Track lines with subhash < Threshold.
    /// (subhash, line) — ordered so the largest tracked subhash is the
    /// adaptive eviction victim.
    std::set<std::pair<uint64_t, uint64_t>> Reservoir;
    Histogram ScaledStack;
    uint64_t ScaledCold = 0;
    size_t MaxLines = 0;

    void addLine(uint64_t SubHash, uint64_t LineAddr, uint32_t NumShards);
    /// Lower the threshold until the reservoir fits; evicts the
    /// dropped lines from the analyzer so tracked set ==
    /// filter-passing set.
    void shrink();
    /// Threshold rate of this shard's sub-filter (NOT divided by the
    /// shard count).
    double rate() const;
  };

  void addRefSampled(uint64_t LineAddr);
  /// Runs every sample shard over \p T concurrently (each shard scans
  /// the stream and keeps only its hash prefix — states are disjoint,
  /// so the result is identical to streaming the trace through
  /// addRef).
  void addTraceSampledParallel(const Trace &T, ThreadPool &Pool,
                               unsigned Helpers);
  uint32_t numSampleShards() const { return 1u << LgSampleShards; }

  MrcOptions Opts;
  ReuseDistanceAnalyzer Global;
  PerSetStackPass PerSet;
  uint64_t TotalRefs = 0;

  // SHARDS state (sampled mode only).
  unsigned LgSampleShards = 0;
  std::vector<SampledShard> SampledShards;
};

} // namespace ccprof

#endif // CCPROF_SIM_MRCENGINE_H
