//===- sim/CacheHierarchy.cpp - Multi-level cache simulation -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/CacheHierarchy.h"

using namespace ccprof;

CacheHierarchy::CacheHierarchy(std::vector<CacheLevelConfig> Configs) {
  assert(!Configs.empty() && "hierarchy needs at least one level");
  Levels.reserve(Configs.size());
  Names.reserve(Configs.size());
  for (CacheLevelConfig &Config : Configs) {
    Levels.emplace_back(Config.Geometry, Config.Policy);
    Names.push_back(std::move(Config.Name));
  }
}

HierarchyAccessResult CacheHierarchy::access(uint64_t Addr, bool IsWrite) {
  HierarchyAccessResult Result;
  for (size_t L = 0; L < Levels.size(); ++L) {
    CacheAccessResult Access = Levels[L].access(Addr, IsWrite);
    if (L == 0)
      Result.MissedL1 = !Access.Hit;
    // A dirty victim is written back into the next level down (or to
    // memory from the last level); model it as a write access so the
    // victim's line stays warm below, as in a real write-back hierarchy.
    if (Access.EvictedLine && Access.EvictedDirty) {
      uint64_t VictimAddr =
          *Access.EvictedLine *
          static_cast<uint64_t>(Levels[L].geometry().lineBytes());
      if (L + 1 < Levels.size())
        Levels[L + 1].access(VictimAddr, /*IsWrite=*/true);
      else
        ++MemoryAccesses;
    }
    if (Access.Hit) {
      Result.HitLevel = static_cast<uint32_t>(L);
      return Result;
    }
  }
  Result.HitLevel = static_cast<uint32_t>(Levels.size());
  ++MemoryAccesses;
  return Result;
}

void CacheHierarchy::reset() {
  for (Cache &Level : Levels) {
    Level.flush();
    Level.resetStats();
  }
  MemoryAccesses = 0;
}
