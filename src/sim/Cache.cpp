//===- sim/Cache.cpp - Set-associative cache model ------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include <algorithm>
#include <bit>

using namespace ccprof;

Cache::Cache(CacheGeometry Geometry, ReplacementKind Policy, uint64_t RngSeed)
    : Cache(Geometry, SetRange{0, Geometry.numSets()}, Policy, RngSeed) {}

Cache::Cache(CacheGeometry Geometry, SetRange Window, ReplacementKind Policy,
             uint64_t RngSeed)
    : Geometry(Geometry), Policy(Policy), Window(Window),
      Tags(Window.size() * Geometry.associativity(), 0),
      LastUse(Window.size() * Geometry.associativity(), 0),
      InsertedAt(Window.size() * Geometry.associativity(), 0),
      ValidMask(Window.size(), 0), DirtyMask(Window.size(), 0),
      SetMisses(Window.size(), 0),
      AllWays(Geometry.associativity() == 64
                  ? ~uint64_t{0}
                  : (uint64_t{1} << Geometry.associativity()) - 1),
      RngSeed(RngSeed), Rng(RngSeed) {
  assert((Policy != ReplacementKind::TreePlru ||
          std::has_single_bit(Geometry.associativity())) &&
         "tree-PLRU requires power-of-two associativity");
  assert(Geometry.associativity() <= 64 &&
         "per-set bit masks limit associativity to 64");
  assert(Window.Begin <= Window.End && Window.End <= Geometry.numSets() &&
         Window.size() > 0 && "set window out of range");
  if (Policy == ReplacementKind::TreePlru)
    PlruBits.assign(Window.size(), 0);
}

CacheAccessResult Cache::access(uint64_t Addr, bool IsWrite) {
  ++Tick;
  ++Stats.Accesses;

  const uint64_t SetIndex = Geometry.setIndexOf(Addr);
  assert(Window.contains(SetIndex) && "access outside the set window");
  const uint64_t LocalSet = SetIndex - Window.Begin;
  const uint64_t Tag = Geometry.tagOf(Addr);
  const uint32_t Assoc = Geometry.associativity();
  const uint64_t Base = LocalSet * Assoc;

  CacheAccessResult Result;
  Result.SetIndex = SetIndex;

  // Hit lookup: branch-free compare sweep over the set's contiguous tag
  // row, masked by the valid bits. At most one valid way can hold the
  // tag (fills only happen on misses), so "first match" and "the match"
  // coincide with the scalar model.
  const uint64_t *TagRow = Tags.data() + Base;
  uint64_t Match = 0;
  for (uint32_t W = 0; W < Assoc; ++W)
    Match |= static_cast<uint64_t>(TagRow[W] == Tag) << W;
  Match &= ValidMask[LocalSet];

  if (Match != 0) {
    const uint32_t W = static_cast<uint32_t>(std::countr_zero(Match));
    ++Stats.Hits;
    DirtyMask[LocalSet] |= static_cast<uint64_t>(IsWrite) << W;
    touchWay(LocalSet, W);
    Result.Hit = true;
    return Result;
  }

  // Miss path: fill into the first free way or evict a victim.
  ++Stats.Misses;
  ++SetMisses[LocalSet];

  const uint64_t Free = ~ValidMask[LocalSet] & AllWays;
  uint32_t Victim;
  if (Free != 0) {
    Victim = static_cast<uint32_t>(std::countr_zero(Free));
  } else {
    Victim = chooseVictim(LocalSet);
    const bool OldDirty = (DirtyMask[LocalSet] >> Victim) & 1;
    Result.EvictedLine = Geometry.lineAddrOf(
        Geometry.lineStartAddr(Tags[Base + Victim], SetIndex));
    Result.EvictedDirty = OldDirty;
    ++Stats.Evictions;
    if (OldDirty)
      ++Stats.Writebacks;
  }

  Tags[Base + Victim] = Tag;
  ValidMask[LocalSet] |= uint64_t{1} << Victim;
  if (IsWrite)
    DirtyMask[LocalSet] |= uint64_t{1} << Victim;
  else
    DirtyMask[LocalSet] &= ~(uint64_t{1} << Victim);
  InsertedAt[Base + Victim] = Tick;
  touchWay(LocalSet, Victim);
  return Result;
}

bool Cache::probe(uint64_t Addr) const {
  const uint64_t SetIndex = Geometry.setIndexOf(Addr);
  assert(Window.contains(SetIndex) && "probe outside the set window");
  const uint64_t LocalSet = SetIndex - Window.Begin;
  const uint64_t Tag = Geometry.tagOf(Addr);
  const uint32_t Assoc = Geometry.associativity();
  const uint64_t *TagRow = Tags.data() + LocalSet * Assoc;
  uint64_t Match = 0;
  for (uint32_t W = 0; W < Assoc; ++W)
    Match |= static_cast<uint64_t>(TagRow[W] == Tag) << W;
  return (Match & ValidMask[LocalSet]) != 0;
}

void Cache::flush() {
  std::fill(Tags.begin(), Tags.end(), 0);
  std::fill(LastUse.begin(), LastUse.end(), 0);
  std::fill(InsertedAt.begin(), InsertedAt.end(), 0);
  std::fill(ValidMask.begin(), ValidMask.end(), 0);
  std::fill(DirtyMask.begin(), DirtyMask.end(), 0);
  std::fill(PlruBits.begin(), PlruBits.end(), 0);
  Tick = 0;
}

void Cache::resetStats() {
  Stats = CacheStats{};
  std::fill(SetMisses.begin(), SetMisses.end(), 0);
}

void Cache::resetForReuse() {
  flush();
  resetStats();
  Rng = Xoshiro256(RngSeed);
}

void Cache::resetForReuse(SetRange NewWindow) {
  assert(NewWindow.size() == Window.size() &&
         NewWindow.End <= Geometry.numSets() &&
         "rewindowing requires an equal-width window");
  Window = NewWindow;
  resetForReuse();
}

uint64_t Cache::missesOnSet(uint64_t SetIndex) const {
  assert(Window.contains(SetIndex) && "set index outside the window");
  return SetMisses[SetIndex - Window.Begin];
}

uint64_t Cache::setsWithMisses() const {
  uint64_t Count = 0;
  for (uint64_t Misses : SetMisses)
    if (Misses > 0)
      ++Count;
  return Count;
}

uint32_t Cache::chooseVictim(uint64_t LocalSet) {
  const uint32_t Assoc = Geometry.associativity();
  const uint64_t Base = LocalSet * Assoc;
  switch (Policy) {
  case ReplacementKind::Lru: {
    // Lowest timestamp wins; strict < keeps the lowest way on ties,
    // matching the reference model.
    const uint64_t *Row = LastUse.data() + Base;
    uint32_t Victim = 0;
    uint64_t Oldest = Row[0];
    for (uint32_t W = 1; W < Assoc; ++W) {
      if (Row[W] < Oldest) {
        Oldest = Row[W];
        Victim = W;
      }
    }
    return Victim;
  }
  case ReplacementKind::Fifo: {
    const uint64_t *Row = InsertedAt.data() + Base;
    uint32_t Victim = 0;
    uint64_t Oldest = Row[0];
    for (uint32_t W = 1; W < Assoc; ++W) {
      if (Row[W] < Oldest) {
        Oldest = Row[W];
        Victim = W;
      }
    }
    return Victim;
  }
  case ReplacementKind::TreePlru: {
    // Walk the implicit binary tree from the root following the
    // cold-direction bits. Node numbering: node I's children are 2I+1
    // and 2I+2; leaves correspond to ways in order.
    uint64_t Bits = PlruBits[LocalSet];
    uint32_t Levels = static_cast<uint32_t>(std::countr_zero(Assoc));
    uint32_t Node = 0;
    for (uint32_t L = 0; L < Levels; ++L) {
      bool GoRight = (Bits >> Node) & 1;
      Node = 2 * Node + 1 + (GoRight ? 1 : 0);
    }
    return Node - (Assoc - 1);
  }
  case ReplacementKind::Random:
    return static_cast<uint32_t>(Rng.nextBounded(Assoc));
  }
  assert(false && "unknown replacement policy");
  return 0;
}

void Cache::touchWay(uint64_t LocalSet, uint32_t WayIndex) {
  LastUse[LocalSet * Geometry.associativity() + WayIndex] = Tick;
  if (Policy != ReplacementKind::TreePlru)
    return;
  // Flip every node on the root-to-leaf path to point away from this way.
  const uint32_t Assoc = Geometry.associativity();
  uint64_t Bits = PlruBits[LocalSet];
  uint32_t Node = WayIndex + (Assoc - 1);
  while (Node != 0) {
    uint32_t Parent = (Node - 1) / 2;
    bool CameFromRight = (Node == 2 * Parent + 2);
    // Point the parent at the *other* child.
    if (CameFromRight)
      Bits &= ~(uint64_t{1} << Parent);
    else
      Bits |= (uint64_t{1} << Parent);
    Node = Parent;
  }
  PlruBits[LocalSet] = Bits;
}

FullyAssociativeLru::FullyAssociativeLru(uint64_t NumLines)
    : Capacity(NumLines) {
  assert(NumLines > 0 && "capacity must be positive");
  Arena.reserve(std::min<uint64_t>(NumLines, 1 << 20));
  Slots.reserve(std::min<uint64_t>(NumLines, 1 << 20));
}

bool FullyAssociativeLru::access(uint64_t LineAddr) {
  auto It = Slots.find(LineAddr);
  if (It != Slots.end()) {
    uint32_t Slot = It->second;
    if (Head != Slot) {
      unlink(Slot);
      pushFront(Slot);
    }
    return true;
  }

  // Miss: evict the LRU node if at capacity, then insert at the front.
  uint32_t Slot;
  if (Slots.size() >= Capacity) {
    assert(Tail != Npos && "full cache must have a tail");
    Slot = Tail;
    Slots.erase(Arena[Slot].LineAddr);
    unlink(Slot);
  } else if (!FreeSlots.empty()) {
    Slot = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    Slot = static_cast<uint32_t>(Arena.size());
    Arena.push_back(Node{0, Npos, Npos});
  }
  Arena[Slot].LineAddr = LineAddr;
  Slots.emplace(LineAddr, Slot);
  pushFront(Slot);
  return false;
}

bool FullyAssociativeLru::probe(uint64_t LineAddr) const {
  return Slots.contains(LineAddr);
}

void FullyAssociativeLru::flush() {
  Slots.clear();
  Arena.clear();
  FreeSlots.clear();
  Head = Tail = Npos;
}

void FullyAssociativeLru::unlink(uint32_t Slot) {
  Node &N = Arena[Slot];
  if (N.Prev != Npos)
    Arena[N.Prev].Next = N.Next;
  else
    Head = N.Next;
  if (N.Next != Npos)
    Arena[N.Next].Prev = N.Prev;
  else
    Tail = N.Prev;
  N.Prev = N.Next = Npos;
}

void FullyAssociativeLru::pushFront(uint32_t Slot) {
  Node &N = Arena[Slot];
  N.Prev = Npos;
  N.Next = Head;
  if (Head != Npos)
    Arena[Head].Prev = Slot;
  Head = Slot;
  if (Tail == Npos)
    Tail = Slot;
}
