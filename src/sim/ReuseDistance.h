//===- sim/ReuseDistance.h - Exact LRU reuse-distance analysis -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact reuse-distance (LRU stack distance) computation: the number of
/// *distinct* cache lines referenced between the use and reuse of a line
/// (paper Sec. 1, [4]). A reuse distance >= the cache's line capacity
/// predicts a capacity miss under fully-associative LRU. Implemented with
/// a Fenwick tree over access timestamps: O(log n) per reference.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_REUSEDISTANCE_H
#define CCPROF_SIM_REUSEDISTANCE_H

#include "support/Histogram.h"

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Streaming exact reuse-distance analyzer over cache-line addresses.
class ReuseDistanceAnalyzer {
public:
  /// Distance reported for a first-touch (cold) reference.
  static constexpr uint64_t Infinite = std::numeric_limits<uint64_t>::max();

  ReuseDistanceAnalyzer();

  /// Feeds one reference to \p LineAddr and \returns its reuse distance:
  /// the count of distinct other lines touched since the previous
  /// reference to \p LineAddr, or Infinite on first touch.
  uint64_t access(uint64_t LineAddr);

  /// Histogram of all finite distances observed so far.
  const Histogram &distances() const { return Distances; }

  /// Number of cold (first-touch) references observed.
  uint64_t coldCount() const { return ColdCount; }

  /// Fraction of finite-distance references whose distance is >=
  /// \p CacheLines — the predicted capacity-miss ratio of reuses for a
  /// fully-associative LRU cache with that many lines.
  double missRatioAtCapacity(uint64_t CacheLines) const;

  void reset();

private:
  // Fenwick tree over timestamps: Marks[t] == 1 iff timestamp t is the
  // most recent access of some line; Bit is its Fenwick prefix-sum form.
  void grow(size_t MinSize);
  void bitAdd(size_t Index, int64_t Delta);
  uint64_t bitPrefixSum(size_t Index) const;

  std::vector<int64_t> Bit;    ///< 1-based Fenwick array.
  std::vector<uint8_t> Marks;  ///< Raw marks, kept for rebuilds on growth.
  std::unordered_map<uint64_t, size_t> LastAccess; ///< line -> timestamp.
  size_t Clock = 0;
  uint64_t ColdCount = 0;
  Histogram Distances;
};

} // namespace ccprof

#endif // CCPROF_SIM_REUSEDISTANCE_H
