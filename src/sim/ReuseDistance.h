//===- sim/ReuseDistance.h - Exact LRU reuse-distance analysis -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact reuse-distance (LRU stack distance) computation: the number of
/// *distinct* cache lines referenced between the use and reuse of a line
/// (paper Sec. 1, [4]). A reuse distance >= the cache's line capacity
/// predicts a capacity miss under fully-associative LRU. Implemented with
/// a Fenwick tree over access timestamps: O(log n) per reference.
///
/// The timestamp space is compacted automatically once most timestamps
/// are dead (their line has been re-referenced or evicted), so the
/// Fenwick footprint tracks the number of *live* lines, not the total
/// reference count — the property the SHARDS-sampled MRC engine relies
/// on to stay O(reservoir) on arbitrarily long traces.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_REUSEDISTANCE_H
#define CCPROF_SIM_REUSEDISTANCE_H

#include "support/Histogram.h"

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Streaming exact reuse-distance analyzer over cache-line addresses.
class ReuseDistanceAnalyzer {
public:
  /// Distance reported for a first-touch (cold) reference.
  static constexpr uint64_t Infinite = std::numeric_limits<uint64_t>::max();

  ReuseDistanceAnalyzer();

  /// Feeds one reference to \p LineAddr and \returns its reuse distance:
  /// the count of distinct other lines touched since the previous
  /// reference to \p LineAddr, or Infinite on first touch.
  uint64_t access(uint64_t LineAddr);

  /// Forgets \p LineAddr entirely: its next reference counts as cold
  /// again, and it no longer contributes to the distances of spans that
  /// cross it. \returns false if the line was not being tracked. This is
  /// the hook the SHARDS reservoir uses when it lowers its hash
  /// threshold — an evicted line would fail the new filter anyway, so
  /// dropping it keeps the tracked set consistent with the filter.
  bool evict(uint64_t LineAddr);

  /// Number of distinct lines currently tracked (bounded by the SHARDS
  /// reservoir in sampled mode; equal to the footprint in exact mode).
  size_t trackedLines() const { return LastAccess.size(); }

  /// Histogram of all finite distances observed so far. Cold (first
  /// touch) references are *not* recorded here; they are counted in
  /// coldCount().
  const Histogram &distances() const { return Distances; }

  /// Number of cold (first-touch) references observed.
  uint64_t coldCount() const { return ColdCount; }

  /// Total references observed == coldCount() + distances().total().
  uint64_t totalRefs() const { return ColdCount + Distances.total(); }

  /// Fraction of *reuse* references (finite distances only — the
  /// denominator is distances().total(), cold misses excluded from both
  /// sides) whose distance is >= \p CacheLines: the predicted
  /// capacity-miss ratio *among reuses* for a fully-associative LRU
  /// cache with that many lines. For the overall miss ratio of the whole
  /// reference stream, use overallMissRatioAtCapacity().
  double missRatioAtCapacity(uint64_t CacheLines) const;

  /// Overall predicted miss ratio of the full reference stream for a
  /// fully-associative LRU cache of \p CacheLines lines:
  /// (coldCount() + #(distance >= CacheLines)) / totalRefs(). Cold
  /// misses count as misses and the denominator is every reference, so
  /// this matches what simulating FullyAssociativeLru over the same
  /// stream reports.
  double overallMissRatioAtCapacity(uint64_t CacheLines) const;

  /// Predicted miss *count* companion of overallMissRatioAtCapacity():
  /// coldCount() + #(distance >= CacheLines).
  uint64_t overallMissCountAtCapacity(uint64_t CacheLines) const;

  void reset();

private:
  // Fenwick tree over timestamps: Marks[t] == 1 iff timestamp t is the
  // most recent access of some line; Bit is its Fenwick prefix-sum form.
  void grow(size_t MinSize);
  void compact();
  void bitAdd(size_t Index, int64_t Delta);
  uint64_t bitPrefixSum(size_t Index) const;

  std::vector<int64_t> Bit;    ///< 1-based Fenwick array.
  std::vector<uint8_t> Marks;  ///< Raw marks, kept for rebuilds on growth.
  std::unordered_map<uint64_t, size_t> LastAccess; ///< line -> timestamp.
  size_t Clock = 0;
  uint64_t ColdCount = 0;
  Histogram Distances;
};

} // namespace ccprof

#endif // CCPROF_SIM_REUSEDISTANCE_H
