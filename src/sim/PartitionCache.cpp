//===- sim/PartitionCache.cpp - Route-once partition reuse ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/PartitionCache.h"

#include "support/ThreadPool.h"

#include <cassert>

using namespace ccprof;

size_t PartitionCache::KeyHash::operator()(const PartitionKey &Key) const {
  // FNV-1a over the key fields; quality only affects bucket spread.
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint64_t V : {Key.TraceId, Key.NumSets, static_cast<uint64_t>(Key.LineBytes),
                     static_cast<uint64_t>(Key.Shards)}) {
    H ^= V;
    H *= 0x100000001b3ull;
  }
  return static_cast<size_t>(H);
}

PartitionCache::PartitionCache(size_t MaxBytes) : MaxBytes(MaxBytes) {}

size_t PartitionCache::bytesOf(const ShardPartition &Part) {
  return Part.Arena.size() * sizeof(ShardRef) +
         Part.Offsets.size() * sizeof(size_t);
}

uint64_t PartitionCache::registerTrace() {
  return NextTraceId.fetch_add(1, std::memory_order_relaxed);
}

void PartitionCache::releaseTrace(uint64_t TraceId) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Entries.begin(); It != Entries.end();) {
    if (It->first.TraceId != TraceId) {
      ++It;
      continue;
    }
    ResidentBytes -= It->second.Bytes;
    Recency.erase(It->second.RecencyIt);
    It = Entries.erase(It);
  }
}

void PartitionCache::evictOverBudgetLocked(const PartitionKey &Keep) {
  while (ResidentBytes > MaxBytes && Entries.size() > 1) {
    auto Victim = Recency.end();
    --Victim;
    if (*Victim == Keep) {
      // The newest entry is the only other resident one; the budget
      // holds everything else accountable but never the arena a sweep
      // is actively replaying from.
      if (Victim == Recency.begin())
        break;
      --Victim;
    }
    auto It = Entries.find(*Victim);
    assert(It != Entries.end() && "recency list out of sync");
    ResidentBytes -= It->second.Bytes;
    Recency.erase(It->second.RecencyIt);
    Entries.erase(It);
    ++Evictions;
  }
}

PartitionCache::PartitionPtr
PartitionCache::getOrCompute(const PartitionKey &Key,
                             const std::function<ShardPartition()> &Compute,
                             bool *WasBuilt) {
  if (WasBuilt)
    *WasBuilt = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      ++Hits;
      Recency.splice(Recency.begin(), Recency, It->second.RecencyIt);
      return It->second.Data;
    }
  }

  // Route outside the lock: concurrent distinct keys never serialize
  // on each other's (potentially huge) routing pass.
  PartitionPtr Routed = std::make_shared<ShardPartition>(Compute());

  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    // A racing caller stored first; its arena is byte-identical (the
    // partition is a pure function of the key under a live TraceId),
    // so serve it and drop ours. The store won the "build" slot.
    ++Hits;
    Recency.splice(Recency.begin(), Recency, It->second.RecencyIt);
    return It->second.Data;
  }
  ++Builds;
  if (WasBuilt)
    *WasBuilt = true;
  Recency.push_front(Key);
  Entry &Slot = Entries[Key];
  Slot.Data = Routed;
  Slot.RecencyIt = Recency.begin();
  Slot.Bytes = bytesOf(*Routed);
  ResidentBytes += Slot.Bytes;
  evictOverBudgetLocked(Key);
  return Routed;
}

PartitionCache::CacheStats PartitionCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  CacheStats S;
  S.Hits = Hits;
  S.Builds = Builds;
  S.Evictions = Evictions;
  S.ResidentBytes = ResidentBytes;
  S.ResidentEntries = Entries.size();
  return S;
}

PartitionCache::PartitionPtr
ccprof::routeOrReuse(std::span<const MemoryRecord> Records,
                     const CacheGeometry &Geometry,
                     std::span<const SetRange> Plan, const SimContext &Ctx,
                     unsigned Helpers) {
  auto Route = [&]() -> ShardPartition {
    if (Helpers > 0) {
      if (Ctx.Router == PartitionRouter::Fused)
        return partitionBySetFused(Records, Geometry, Plan, *Ctx.Pool,
                                   Helpers);
      return partitionBySetParallel(Records, Geometry, Plan, *Ctx.Pool,
                                    Helpers);
    }
    return partitionBySet(Records, Geometry, Plan);
  };

  if (!Ctx.Partitions || Ctx.TraceId == 0) {
    if (Ctx.Stats)
      Ctx.Stats->PartitionBuilds.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const ShardPartition>(Route());
  }

  PartitionKey Key;
  Key.TraceId = Ctx.TraceId;
  Key.NumSets = Geometry.numSets();
  Key.LineBytes = Geometry.lineBytes();
  Key.Shards = static_cast<uint32_t>(Plan.size());
  bool WasBuilt = false;
  PartitionCache::PartitionPtr Part =
      Ctx.Partitions->getOrCompute(Key, Route, &WasBuilt);
  if (Ctx.Stats) {
    if (WasBuilt)
      Ctx.Stats->PartitionBuilds.fetch_add(1, std::memory_order_relaxed);
    else
      Ctx.Stats->PartitionReuses.fetch_add(1, std::memory_order_relaxed);
  }
  return Part;
}
