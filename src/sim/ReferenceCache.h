//===- sim/ReferenceCache.h - Scalar reference cache model -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original array-of-structures cache model, preserved verbatim as
/// the bit-exactness oracle for the structure-of-arrays Cache. Every
/// replacement policy consumes randomness and breaks ties exactly the
/// way Cache does, so the two models must agree on every access result
/// (hit/miss, evicted line, dirtiness) and every counter — any
/// divergence is a bug in one of them. The SoA/scalar throughput gap is
/// what bench/sim_throughput measures.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_REFERENCECACHE_H
#define CCPROF_SIM_REFERENCECACHE_H

#include "sim/Cache.h"

#include <vector>

namespace ccprof {

/// Scalar (one-struct-per-way) set-associative cache with the same
/// observable behaviour as Cache. Kept simple on purpose: correctness
/// oracle first, benchmark baseline second.
class ReferenceCache {
public:
  ReferenceCache(CacheGeometry Geometry,
                 ReplacementKind Policy = ReplacementKind::Lru,
                 uint64_t RngSeed = 0x5eedcafe);

  const CacheGeometry &geometry() const { return Geometry; }
  ReplacementKind policy() const { return Policy; }

  CacheAccessResult access(uint64_t Addr, bool IsWrite = false);
  bool probe(uint64_t Addr) const;
  void flush();
  void resetStats();

  const CacheStats &stats() const { return Stats; }
  uint64_t missesOnSet(uint64_t SetIndex) const;
  const std::vector<uint64_t> &perSetMisses() const { return SetMisses; }

private:
  struct Way {
    uint64_t Tag = 0;
    bool Valid = false;
    bool Dirty = false;
    uint64_t LastUse = 0;    ///< LRU timestamp.
    uint64_t InsertedAt = 0; ///< FIFO timestamp.
  };

  uint32_t chooseVictim(uint64_t SetIndex);
  void touchWay(uint64_t SetIndex, uint32_t WayIndex);

  Way &wayAt(uint64_t SetIndex, uint32_t WayIndex) {
    return Ways[SetIndex * Geometry.associativity() + WayIndex];
  }
  const Way &wayAt(uint64_t SetIndex, uint32_t WayIndex) const {
    return Ways[SetIndex * Geometry.associativity() + WayIndex];
  }

  CacheGeometry Geometry;
  ReplacementKind Policy;
  std::vector<Way> Ways;          ///< NumSets * Associativity, row-major.
  std::vector<uint64_t> PlruBits; ///< One tree-PLRU bitset per set.
  std::vector<uint64_t> SetMisses;
  CacheStats Stats;
  uint64_t Tick = 0;
  Xoshiro256 Rng;
};

} // namespace ccprof

#endif // CCPROF_SIM_REFERENCECACHE_H
