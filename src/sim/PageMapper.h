//===- sim/PageMapper.h - Virtual-to-physical page mapping -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated OS page allocation: maps virtual pages to physical frames.
/// The paper analyzes the virtually-indexed L1 only and notes (footnote
/// 1) that profiling the physically-indexed L2/LLC requires the
/// virtual-to-physical mapping; this extension supplies it. Frames are
/// assigned on first touch under one of three policies:
///
///  * Identity   — frame == page (the paper's implicit L1 assumption
///                 extended upward; also what huge pages approximate);
///  * FirstTouch — frames handed out sequentially in first-touch order
///                 (an idealized freshly-booted buddy allocator);
///  * Shuffled   — frames scattered pseudo-randomly (a long-running
///                 system with a fragmented free list).
///
/// The policy matters: page-granularity scattering destroys the
/// set-mapping regularity of strides larger than a page, so L2 conflict
/// analysis can reach opposite verdicts under different mappings — the
/// reason physical addresses are required above L1.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_PAGEMAPPER_H
#define CCPROF_SIM_PAGEMAPPER_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

namespace ccprof {

/// Frame-assignment policy of a PageMapper.
enum class PagePolicy {
  Identity,
  FirstTouch,
  Shuffled,
};

/// Deterministic first-touch virtual-to-physical translator.
class PageMapper {
public:
  explicit PageMapper(PagePolicy Policy, uint64_t PageBytes = 4096,
                      uint64_t Seed = 0x9a6e5eed)
      : Policy(Policy), PageBytes(PageBytes), Seed(Seed) {
    assert(PageBytes >= 64 && (PageBytes & (PageBytes - 1)) == 0 &&
           "page size must be a power of two of at least a cache line");
  }

  /// Translates \p VirtualAddr, assigning a frame on first touch.
  uint64_t translate(uint64_t VirtualAddr) {
    if (Policy == PagePolicy::Identity)
      return VirtualAddr;
    const uint64_t Page = VirtualAddr / PageBytes;
    const uint64_t Offset = VirtualAddr % PageBytes;
    auto [It, Inserted] = Frames.try_emplace(Page, NextFrame);
    if (Inserted)
      ++NextFrame;
    uint64_t Frame = It->second;
    if (Policy == PagePolicy::Shuffled)
      Frame = shuffleFrame(Frame);
    return Frame * PageBytes + Offset;
  }

  /// Pages translated so far.
  size_t mappedPages() const { return Frames.size(); }

  uint64_t pageBytes() const { return PageBytes; }
  PagePolicy policy() const { return Policy; }

private:
  /// Bijective mixing of the frame number (odd-multiplier hash over a
  /// 2^40-frame space): deterministic, collision-free scattering.
  uint64_t shuffleFrame(uint64_t Frame) const {
    constexpr uint64_t Bits = 40;
    constexpr uint64_t Mask = (uint64_t{1} << Bits) - 1;
    uint64_t Mixed = (Frame + Seed) & Mask;
    Mixed = (Mixed * 0x9E3779B97F4A7C15ULL) & Mask; // odd => bijective
    Mixed ^= Mixed >> 20;
    Mixed = (Mixed * 0xBF58476D1CE4E5B9ULL) & Mask;
    return Mixed;
  }

  PagePolicy Policy;
  uint64_t PageBytes;
  uint64_t Seed;
  uint64_t NextFrame = 0x100; ///< Arbitrary non-zero base frame.
  std::unordered_map<uint64_t, uint64_t> Frames;
};

} // namespace ccprof

#endif // CCPROF_SIM_PAGEMAPPER_H
