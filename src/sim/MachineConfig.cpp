//===- sim/MachineConfig.cpp - Evaluation machine descriptions -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/MachineConfig.h"

using namespace ccprof;

static constexpr uint64_t KiB = 1024;
static constexpr uint64_t MiB = 1024 * 1024;

MachineConfig ccprof::broadwellConfig() {
  return MachineConfig{
      "Intel Broadwell E7-4830v4",
      {
          CacheLevelConfig{"L1", CacheGeometry(32 * KiB, 64, 8),
                           ReplacementKind::Lru},
          CacheLevelConfig{"L2", CacheGeometry(256 * KiB, 64, 8),
                           ReplacementKind::Lru},
          CacheLevelConfig{"LLC", CacheGeometry(35 * MiB, 64, 20),
                           ReplacementKind::Lru},
      }};
}

MachineConfig ccprof::skylakeConfig() {
  return MachineConfig{
      "Intel Skylake E3-1240v5",
      {
          CacheLevelConfig{"L1", CacheGeometry(32 * KiB, 64, 8),
                           ReplacementKind::Lru},
          CacheLevelConfig{"L2", CacheGeometry(256 * KiB, 64, 4),
                           ReplacementKind::Lru},
          CacheLevelConfig{"LLC", CacheGeometry(8 * MiB, 64, 16),
                           ReplacementKind::Lru},
      }};
}

CacheGeometry ccprof::paperL1Geometry() {
  return CacheGeometry(32 * KiB, 64, 8);
}
