//===- sim/ShardedSim.cpp - Set-sharded parallel cache simulation ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedSim.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

std::vector<SetRange> ccprof::planShards(uint64_t NumSets,
                                         unsigned ShardCount) {
  assert(NumSets > 0 && "cannot shard an empty set space");
  const uint64_t K = std::max<uint64_t>(
      1, std::min<uint64_t>(ShardCount, NumSets));
  const uint64_t Base = NumSets / K;
  const uint64_t Rem = NumSets % K;

  std::vector<SetRange> Plan;
  Plan.reserve(K);
  uint64_t Begin = 0;
  for (uint64_t S = 0; S < K; ++S) {
    const uint64_t Width = Base + (S < Rem ? 1 : 0);
    Plan.push_back(SetRange{Begin, Begin + Width});
    Begin += Width;
  }
  assert(Begin == NumSets && "shard plan must cover every set");
  return Plan;
}

ShardMap::ShardMap(std::span<const SetRange> Plan)
    : NumShards(Plan.size()) {
  assert(!Plan.empty() && "empty shard plan");
  SetToShard.resize(Plan.back().End);
  for (size_t S = 0; S < Plan.size(); ++S)
    std::fill(SetToShard.begin() + Plan[S].Begin,
              SetToShard.begin() + Plan[S].End, static_cast<uint32_t>(S));
}

namespace {

/// Smallest chunk worth its per-chunk counter row: below this the
/// bookkeeping (K counters per chunk, two passes) competes with the
/// routing work itself.
constexpr size_t MinRecordsPerChunk = 1 << 15;

/// Smallest merge-path segment worth its binary-search split: below
/// this the split searches compete with the merging itself.
constexpr size_t MinMergeSegment = 1 << 16;

/// A-side split of the merge path of ascending (A, B) at combined
/// offset \p T: the first T merged elements are exactly A[0, a) and
/// B[0, T - a) for the returned a. Requires the values of A and B to
/// be pairwise distinct — true here, since each global sequence
/// number lives in exactly one shard's miss list — which makes the
/// split unique and the segmented merge byte-identical to one
/// std::merge over the whole pair.
size_t mergePathSplit(const std::vector<uint64_t> &A,
                      const std::vector<uint64_t> &B, size_t T) {
  size_t Lo = T > B.size() ? T - B.size() : 0;
  size_t Hi = std::min(T, A.size());
  while (Lo < Hi) {
    const size_t Mid = Lo + (Hi - Lo) / 2;
    // A[Mid] sorts before B's last left-side candidate, so it belongs
    // on the left of the cut: the split lies strictly above Mid.
    if (A[Mid] < B[T - Mid - 1])
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

/// The routing passes are generic over what they route: full
/// MemoryRecords (stage-1 partition of a raw trace, where the routed
/// entry is minted from the record's global index) or already-minted
/// ShardRefs (the L2 stage-2 re-partition of a merged miss stream,
/// where the entry's SeqAndWrite payload must survive untouched).
inline uint64_t routeAddrOf(const MemoryRecord &Record) { return Record.Addr; }
inline uint64_t routeAddrOf(const ShardRef &Ref) { return Ref.Addr; }
inline ShardRef routedRefOf(const MemoryRecord &Record, size_t I) {
  return ShardRef::make(I, Record.Addr, Record.IsWrite);
}
inline ShardRef routedRefOf(const ShardRef &Ref, size_t) { return Ref; }

/// Counts how many of Records[Begin..End) route to each shard into
/// \p Counts (size K, zeroed by the caller).
template <typename RecordT>
void countChunk(std::span<const RecordT> Records, size_t Begin,
                size_t End, const CacheGeometry &Geometry,
                const ShardMap &Map, size_t *Counts) {
  for (size_t I = Begin; I < End; ++I)
    ++Counts[Map.shardOf(Geometry.setIndexOf(routeAddrOf(Records[I])))];
}

/// Scatters Records[Begin..End) into \p Arena at the per-shard cursors
/// of \p Cursors (size K, advanced in place). Within the chunk, global
/// order is preserved per shard, so chunk-ascending cursor bases give
/// each shard its refs in ascending seq order.
template <typename RecordT>
void scatterChunk(std::span<const RecordT> Records, size_t Begin,
                  size_t End, const CacheGeometry &Geometry,
                  const ShardMap &Map, std::span<ShardRef> Arena,
                  size_t *Cursors) {
  for (size_t I = Begin; I < End; ++I) {
    const RecordT &Record = Records[I];
    const uint32_t S = Map.shardOf(Geometry.setIndexOf(routeAddrOf(Record)));
    Arena[Cursors[S]++] = routedRefOf(Record, I);
  }
}

template <typename RecordT>
ShardPartition partitionImpl(std::span<const RecordT> Records,
                             const CacheGeometry &Geometry,
                             std::span<const SetRange> Plan) {
  const ShardMap Map(Plan);
  const size_t K = Plan.size();

  ShardPartition Part;
  Part.Offsets.assign(K + 1, 0);
  // Count pass: exact shard sizes so the arena never regrows.
  std::vector<size_t> Counts(K, 0);
  countChunk(Records, 0, Records.size(), Geometry, Map, Counts.data());
  for (size_t S = 0; S < K; ++S)
    Part.Offsets[S + 1] = Part.Offsets[S] + Counts[S];

  Part.Arena.resize(Records.size());
  std::vector<size_t> Cursors(Part.Offsets.begin(), Part.Offsets.end() - 1);
  scatterChunk(Records, 0, Records.size(), Geometry, Map, Part.Arena,
               Cursors.data());
  return Part;
}

template <typename RecordT>
ShardPartition partitionParallelImpl(std::span<const RecordT> Records,
                                     const CacheGeometry &Geometry,
                                     std::span<const SetRange> Plan,
                                     ThreadPool &Pool, unsigned Helpers) {
  const ShardMap Map(Plan);
  const size_t K = Plan.size();
  const std::vector<size_t> Chunks =
      planChunks(Records.size(), Helpers + 1, MinRecordsPerChunk);
  const size_t NumChunks = Chunks.size() - 1;

  // Pass 1 (parallel): per-chunk, per-shard routing counts. Each chunk
  // owns one row of the counts matrix, so no write is shared.
  std::vector<size_t> Counts(NumChunks * K, 0);
  Pool.parallelFor(NumChunks, Helpers, [&](size_t C) {
    countChunk(Records, Chunks[C], Chunks[C + 1], Geometry, Map,
               Counts.data() + C * K);
  });

  // Prefix sum (serial, NumChunks x K — tiny next to the trace):
  // chunk C's cursor for shard S starts after shard S's slots from
  // every earlier chunk, keeping each shard's refs seq-ascending.
  ShardPartition Part;
  Part.Offsets.assign(K + 1, 0);
  std::vector<size_t> Starts(NumChunks * K, 0);
  size_t Running = 0;
  for (size_t S = 0; S < K; ++S) {
    Part.Offsets[S] = Running;
    for (size_t C = 0; C < NumChunks; ++C) {
      Starts[C * K + S] = Running;
      Running += Counts[C * K + S];
    }
  }
  Part.Offsets[K] = Running;
  assert(Running == Records.size() && "partition must place every record");

  // Pass 2 (parallel): scatter into disjoint, precomputed arena slots.
  Part.Arena.resize(Records.size());
  Pool.parallelFor(NumChunks, Helpers, [&](size_t C) {
    std::vector<size_t> Cursors(Starts.begin() + C * K,
                                Starts.begin() + (C + 1) * K);
    scatterChunk(Records, Chunks[C], Chunks[C + 1], Geometry, Map,
                 Part.Arena, Cursors.data());
  });
  return Part;
}

} // namespace

ShardPartition ccprof::partitionBySet(std::span<const MemoryRecord> Records,
                                      const CacheGeometry &Geometry,
                                      std::span<const SetRange> Plan) {
  return partitionImpl(Records, Geometry, Plan);
}

ShardPartition
ccprof::partitionBySetParallel(std::span<const MemoryRecord> Records,
                               const CacheGeometry &Geometry,
                               std::span<const SetRange> Plan,
                               ThreadPool &Pool, unsigned Helpers) {
  return partitionParallelImpl(Records, Geometry, Plan, Pool, Helpers);
}

ShardPartition ccprof::partitionRefsBySet(std::span<const ShardRef> Refs,
                                          const CacheGeometry &Geometry,
                                          std::span<const SetRange> Plan) {
  return partitionImpl(Refs, Geometry, Plan);
}

ShardPartition
ccprof::partitionRefsBySetParallel(std::span<const ShardRef> Refs,
                                   const CacheGeometry &Geometry,
                                   std::span<const SetRange> Plan,
                                   ThreadPool &Pool, unsigned Helpers) {
  return partitionParallelImpl(Refs, Geometry, Plan, Pool, Helpers);
}

ShardPartition
ccprof::partitionBySetFused(std::span<const MemoryRecord> Records,
                            const CacheGeometry &Geometry,
                            std::span<const SetRange> Plan, ThreadPool &Pool,
                            unsigned Helpers) {
  const ShardMap Map(Plan);
  const size_t K = Plan.size();
  const std::vector<size_t> Chunks =
      planChunks(Records.size(), Helpers + 1, MinRecordsPerChunk);
  const size_t NumChunks = Chunks.size() - 1;

  // Pass 1 (parallel): route each chunk exactly once, staging its refs
  // in per-chunk per-shard rows. Within a row, global order is
  // preserved; rows of different chunks never touch.
  std::vector<std::vector<std::vector<ShardRef>>> Staged(NumChunks);
  Pool.parallelFor(NumChunks, Helpers, [&](size_t C) {
    std::vector<std::vector<ShardRef>> &Rows = Staged[C];
    Rows.resize(K);
    const size_t ChunkLen = Chunks[C + 1] - Chunks[C];
    for (std::vector<ShardRef> &Row : Rows)
      Row.reserve(ChunkLen / K + 16);
    for (size_t I = Chunks[C]; I < Chunks[C + 1]; ++I) {
      const MemoryRecord &Record = Records[I];
      Rows[Map.shardOf(Geometry.setIndexOf(Record.Addr))].push_back(
          ShardRef::make(I, Record.Addr, Record.IsWrite));
    }
  });

  // Prefix sum over the staged row sizes fixes every row's arena slot,
  // in the same (shard-major, chunk-ascending) order the count+scatter
  // router uses — so the arena bytes come out identical.
  ShardPartition Part;
  Part.Offsets.assign(K + 1, 0);
  std::vector<size_t> Starts(NumChunks * K, 0);
  size_t Running = 0;
  for (size_t S = 0; S < K; ++S) {
    Part.Offsets[S] = Running;
    for (size_t C = 0; C < NumChunks; ++C) {
      Starts[C * K + S] = Running;
      Running += Staged[C][S].size();
    }
  }
  Part.Offsets[K] = Running;
  assert(Running == Records.size() && "partition must place every record");

  // Pass 2 (parallel): copy rows into their disjoint arena slices and
  // free the staging as each chunk drains.
  Part.Arena.resize(Records.size());
  Pool.parallelFor(NumChunks, Helpers, [&](size_t C) {
    for (size_t S = 0; S < K; ++S) {
      std::vector<ShardRef> &Row = Staged[C][S];
      std::copy(Row.begin(), Row.end(),
                Part.Arena.begin() + Starts[C * K + S]);
    }
    Staged[C].clear();
    Staged[C].shrink_to_fit();
  });
  return Part;
}

void ccprof::simulateShard(Cache &ShardCache, std::span<const ShardRef> Refs,
                           std::vector<uint64_t> &MissSeqs) {
  MissSeqs.clear();
  MissSeqs.reserve(Refs.size() / 4 + 16);
  // The tag rows of a shard's accesses are scattered across its window;
  // fetching a few iterations ahead hides the latency the SoA layout
  // cannot (accesses within a shard rarely revisit the same row
  // back-to-back).
  constexpr size_t PrefetchAhead = 8;
  for (size_t I = 0; I < Refs.size(); ++I) {
    if (I + PrefetchAhead < Refs.size())
      ShardCache.prefetchSet(Refs[I + PrefetchAhead].Addr);
    const ShardRef &R = Refs[I];
    if (!ShardCache.access(R.Addr, R.isWrite()).Hit)
      MissSeqs.push_back(R.seq());
  }
}

ShardAggregates
ccprof::simulateShardAggregates(Cache &ShardCache,
                                std::span<const ShardRef> Refs) {
  ShardAggregates Agg;
  constexpr size_t PrefetchAhead = 8;
  for (size_t I = 0; I < Refs.size(); ++I) {
    if (I + PrefetchAhead < Refs.size())
      ShardCache.prefetchSet(Refs[I + PrefetchAhead].Addr);
    const ShardRef &R = Refs[I];
    if (!ShardCache.access(R.Addr, R.isWrite()).Hit) {
      ++Agg.Misses;
      ++(R.isWrite() ? Agg.StoreMisses : Agg.LoadMisses);
    }
  }
  return Agg;
}

std::vector<uint64_t>
ccprof::mergeMissSeqs(std::span<std::vector<uint64_t>> PerShard,
                      ThreadPool *Pool, unsigned Helpers) {
  if (PerShard.empty())
    return {};
  if (PerShard.size() == 1)
    return std::move(PerShard.front());

  // Pairwise tournament: each round merges adjacent pairs (both
  // ascending, so std::merge into a pre-sized output), halving the
  // list count. Every pair is additionally cut along its merge path
  // into segments that merge independently, so even the final round —
  // one pair spanning the whole stream, a fully serial O(Total) tail
  // otherwise — spreads across all granted workers. Pairing and
  // per-segment output slots are fixed by sizes alone, so the result
  // is identical at every helper count.
  std::vector<std::vector<uint64_t>> Cur(
      std::make_move_iterator(PerShard.begin()),
      std::make_move_iterator(PerShard.end()));
  while (Cur.size() > 1) {
    const size_t Pairs = Cur.size() / 2;
    std::vector<std::vector<uint64_t>> Next(Pairs + Cur.size() % 2);
    for (size_t P = 0; P < Pairs; ++P)
      Next[P].resize(Cur[2 * P].size() + Cur[2 * P + 1].size());
    if (Pool && Helpers > 0) {
      // One flat job list across all pairs of the round: a job is one
      // merge-path segment of one pair, writing a disjoint slice of
      // that pair's output.
      struct MergeSegment {
        size_t Pair;
        size_t ABegin, AEnd;
        size_t BBegin, BEnd;
        size_t OutBegin;
      };
      std::vector<MergeSegment> Jobs;
      for (size_t P = 0; P < Pairs; ++P) {
        const std::vector<uint64_t> &A = Cur[2 * P];
        const std::vector<uint64_t> &B = Cur[2 * P + 1];
        const std::vector<size_t> Cuts =
            planChunks(A.size() + B.size(), Helpers + 1, MinMergeSegment);
        size_t PrevA = 0;
        for (size_t C = 1; C < Cuts.size(); ++C) {
          const size_t SplitA =
              C + 1 == Cuts.size() ? A.size() : mergePathSplit(A, B, Cuts[C]);
          Jobs.push_back(MergeSegment{P, PrevA, SplitA, Cuts[C - 1] - PrevA,
                                      Cuts[C] - SplitA, Cuts[C - 1]});
          PrevA = SplitA;
        }
      }
      Pool->parallelFor(Jobs.size(), Helpers, [&](size_t J) {
        const MergeSegment &Seg = Jobs[J];
        const std::vector<uint64_t> &A = Cur[2 * Seg.Pair];
        const std::vector<uint64_t> &B = Cur[2 * Seg.Pair + 1];
        std::merge(A.begin() + Seg.ABegin, A.begin() + Seg.AEnd,
                   B.begin() + Seg.BBegin, B.begin() + Seg.BEnd,
                   Next[Seg.Pair].begin() + Seg.OutBegin);
      });
      for (size_t P = 0; P < Pairs; ++P) {
        Cur[2 * P].clear();
        Cur[2 * P].shrink_to_fit();
        Cur[2 * P + 1].clear();
        Cur[2 * P + 1].shrink_to_fit();
      }
    } else {
      for (size_t P = 0; P < Pairs; ++P) {
        std::vector<uint64_t> &A = Cur[2 * P];
        std::vector<uint64_t> &B = Cur[2 * P + 1];
        std::merge(A.begin(), A.end(), B.begin(), B.end(),
                   Next[P].begin());
        A.clear();
        A.shrink_to_fit();
        B.clear();
        B.shrink_to_fit();
      }
    }
    if (Cur.size() % 2)
      Next.back() = std::move(Cur.back());
    Cur = std::move(Next);
  }
  return std::move(Cur.front());
}

size_t ShardCachePool::BucketKeyHash::operator()(const BucketKey &Key) const {
  // FNV-1a over the key fields; quality only affects bucket spread.
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint64_t V : {Key.SizeBytes, Key.LineBytes, Key.Associativity,
                     Key.WindowSets, static_cast<uint64_t>(Key.Policy)}) {
    H ^= V;
    H *= 0x100000001b3ull;
  }
  return static_cast<size_t>(H);
}

ShardCachePool::BucketKey ShardCachePool::keyOf(const CacheGeometry &Geometry,
                                                ReplacementKind Policy,
                                                uint64_t WindowSets) {
  BucketKey Key;
  Key.SizeBytes = Geometry.sizeBytes();
  Key.LineBytes = Geometry.lineBytes();
  Key.Associativity = Geometry.associativity();
  Key.WindowSets = WindowSets;
  Key.Policy = Policy;
  return Key;
}

std::unique_ptr<Cache> ShardCachePool::acquire(const CacheGeometry &Geometry,
                                               ReplacementKind Policy,
                                               SetRange Window) {
  std::unique_ptr<Cache> Reused;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Buckets.find(keyOf(Geometry, Policy, Window.size()));
    if (It != Buckets.end() && !It->second.empty()) {
      Reused = std::move(It->second.back());
      It->second.pop_back();
      --NumParked;
      ++Reuses;
    }
  }
  if (Reused) {
    // Zeroing the planes happens outside the lock: it is the expensive
    // part and touches only this instance.
    Reused->resetForReuse(Window);
    return Reused;
  }
  return std::make_unique<Cache>(Geometry, Window, Policy);
}

void ShardCachePool::park(std::unique_ptr<Cache> Instance) {
  assert(Instance && "parking a null cache");
  const BucketKey Key = keyOf(Instance->geometry(), Instance->policy(),
                              Instance->window().size());
  std::lock_guard<std::mutex> Lock(Mutex);
  Buckets[Key].push_back(std::move(Instance));
  ++NumParked;
}

size_t ShardCachePool::parked() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NumParked;
}

uint64_t ShardCachePool::reuses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reuses;
}
