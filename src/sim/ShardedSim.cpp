//===- sim/ShardedSim.cpp - Set-sharded parallel cache simulation ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedSim.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

std::vector<SetRange> ccprof::planShards(uint64_t NumSets,
                                         unsigned ShardCount) {
  assert(NumSets > 0 && "cannot shard an empty set space");
  const uint64_t K = std::max<uint64_t>(
      1, std::min<uint64_t>(ShardCount, NumSets));
  const uint64_t Base = NumSets / K;
  const uint64_t Rem = NumSets % K;

  std::vector<SetRange> Plan;
  Plan.reserve(K);
  uint64_t Begin = 0;
  for (uint64_t S = 0; S < K; ++S) {
    const uint64_t Width = Base + (S < Rem ? 1 : 0);
    Plan.push_back(SetRange{Begin, Begin + Width});
    Begin += Width;
  }
  assert(Begin == NumSets && "shard plan must cover every set");
  return Plan;
}

ShardMap::ShardMap(std::span<const SetRange> Plan)
    : NumShards(Plan.size()) {
  assert(!Plan.empty() && "empty shard plan");
  SetToShard.resize(Plan.back().End);
  for (size_t S = 0; S < Plan.size(); ++S)
    std::fill(SetToShard.begin() + Plan[S].Begin,
              SetToShard.begin() + Plan[S].End, static_cast<uint32_t>(S));
}

void ccprof::simulateShard(Cache &ShardCache, std::span<const ShardRef> Refs,
                           std::vector<uint64_t> &MissSeqs) {
  MissSeqs.clear();
  MissSeqs.reserve(Refs.size() / 4 + 16);
  // The tag rows of a shard's accesses are scattered across its window;
  // fetching a few iterations ahead hides the latency the SoA layout
  // cannot (accesses within a shard rarely revisit the same row
  // back-to-back).
  constexpr size_t PrefetchAhead = 8;
  for (size_t I = 0; I < Refs.size(); ++I) {
    if (I + PrefetchAhead < Refs.size())
      ShardCache.prefetchSet(Refs[I + PrefetchAhead].Addr);
    const ShardRef &R = Refs[I];
    if (!ShardCache.access(R.Addr, R.isWrite()).Hit)
      MissSeqs.push_back(R.seq());
  }
}

std::vector<uint64_t>
ccprof::mergeMissSeqs(std::span<const std::vector<uint64_t>> PerShard) {
  size_t Total = 0;
  for (const std::vector<uint64_t> &Shard : PerShard)
    Total += Shard.size();

  std::vector<uint64_t> Merged;
  Merged.reserve(Total);

  if (PerShard.size() == 1) {
    Merged = PerShard.front();
    return Merged;
  }

  // Linear min-scan over the K shard heads: K is small (bounded by the
  // thread budget), and every input list is ascending, so this is the
  // classical k-way merge without heap bookkeeping.
  std::vector<size_t> Head(PerShard.size(), 0);
  while (Merged.size() < Total) {
    size_t Best = PerShard.size();
    uint64_t BestSeq = 0;
    for (size_t S = 0; S < PerShard.size(); ++S) {
      if (Head[S] >= PerShard[S].size())
        continue;
      const uint64_t Seq = PerShard[S][Head[S]];
      if (Best == PerShard.size() || Seq < BestSeq) {
        Best = S;
        BestSeq = Seq;
      }
    }
    assert(Best < PerShard.size() && "merge ran dry before Total");
    Merged.push_back(BestSeq);
    ++Head[Best];
  }
  return Merged;
}

std::unique_ptr<Cache> ShardCachePool::acquire(const CacheGeometry &Geometry,
                                               ReplacementKind Policy,
                                               SetRange Window) {
  std::unique_ptr<Cache> Reused;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I < Parked.size(); ++I) {
      Cache &C = *Parked[I];
      if (C.geometry() == Geometry && C.policy() == Policy &&
          C.window().size() == Window.size()) {
        Reused = std::move(Parked[I]);
        Parked[I] = std::move(Parked.back());
        Parked.pop_back();
        ++Reuses;
        break;
      }
    }
  }
  if (Reused) {
    // Zeroing the planes happens outside the lock: it is the expensive
    // part and touches only this instance.
    Reused->resetForReuse(Window);
    return Reused;
  }
  return std::make_unique<Cache>(Geometry, Window, Policy);
}

void ShardCachePool::park(std::unique_ptr<Cache> Instance) {
  assert(Instance && "parking a null cache");
  std::lock_guard<std::mutex> Lock(Mutex);
  Parked.push_back(std::move(Instance));
}

size_t ShardCachePool::parked() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Parked.size();
}

uint64_t ShardCachePool::reuses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reuses;
}
