//===- sim/ShardedSim.h - Set-sharded parallel cache simulation -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitives of the set-sharded parallel simulation engine. In a
/// set-associative cache every set's replacement state (LRU / FIFO
/// timestamps, tree-PLRU bits) depends only on the relative order of
/// the accesses that map to that set, never on accesses to other sets.
/// The reference stream can therefore be partitioned once by set index
/// into K shards of contiguous set ranges, each shard simulated
/// independently against a windowed Cache, and the per-shard miss lists
/// — sorted by the access's global sequence number by construction —
/// merged back into the exact miss stream a sequential simulation
/// produces. The decomposition is bit-exact for every deterministic
/// replacement policy; ReplacementKind::Random consumes a cache-global
/// RNG whose draw order depends on the interleaving of sets, so Random
/// simulations must stay sequential (callers gate on this).
///
/// Every stage is built to keep the serial fraction near zero (Amdahl
/// is what sank the first sharded design — see DESIGN.md §7):
/// partitioning is a block-parallel count + prefix-sum + scatter into
/// one pre-sized flat arena (partitionBySetParallel), the k-way merge
/// is a pairwise tournament whose rounds parallelize (mergeMissSeqs),
/// and callers that only need aggregate statistics skip the merge
/// entirely (simulateShardAggregates + the aggregate collectors in
/// pmu/PebsEvent.h). ShardCachePool recycles windowed Cache instances
/// across configurations in O(1) so repeated sharded runs do not
/// reallocate state planes. The trace-facing collectors that put the
/// pieces together live in pmu/PebsEvent.h; the thread-budget policy
/// lives with the batch runner (pipeline/JobRunner.h).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_SHARDEDSIM_H
#define CCPROF_SIM_SHARDEDSIM_H

#include "sim/Cache.h"
#include "trace/MemoryRecord.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace ccprof {

class ThreadPool;
class ThreadBudget;
class ShardCachePool;
class PartitionCache;

/// One reference routed to a shard: the address plus its global
/// position in the trace (and the write bit, packed into the low bit
/// so a shard entry stays 16 bytes).
struct ShardRef {
  uint64_t Addr = 0;
  uint64_t SeqAndWrite = 0;

  static ShardRef make(uint64_t Seq, uint64_t Addr, bool IsWrite) {
    return ShardRef{Addr, (Seq << 1) | static_cast<uint64_t>(IsWrite)};
  }
  uint64_t seq() const { return SeqAndWrite >> 1; }
  bool isWrite() const { return SeqAndWrite & 1; }
  bool operator==(const ShardRef &Other) const = default;
};

/// Cuts \p NumSets into at most \p ShardCount contiguous, non-empty,
/// near-equal ranges (the first NumSets % K ranges are one set wider).
std::vector<SetRange> planShards(uint64_t NumSets, unsigned ShardCount);

/// O(1) set-to-shard lookup for a planShards() plan.
class ShardMap {
public:
  explicit ShardMap(std::span<const SetRange> Plan);

  uint32_t shardOf(uint64_t SetIndex) const {
    assert(SetIndex < SetToShard.size() && "set index out of range");
    return SetToShard[SetIndex];
  }
  size_t numShards() const { return NumShards; }

private:
  std::vector<uint32_t> SetToShard;
  size_t NumShards;
};

/// A reference stream routed to its shards: one pre-sized flat arena
/// holding every shard's subsequence contiguously, in ascending global
/// sequence order within each shard. Replaces the per-shard
/// std::vector<ShardRef> regions of the first sharded design — no
/// per-shard regrowth, no K separate allocations, and the scatter that
/// fills it can run block-parallel because every slot is precomputed.
struct ShardPartition {
  std::vector<ShardRef> Arena;
  /// Shard S occupies Arena[Offsets[S] .. Offsets[S+1]).
  std::vector<size_t> Offsets;

  size_t numShards() const {
    return Offsets.empty() ? 0 : Offsets.size() - 1;
  }
  size_t totalRefs() const { return Arena.size(); }
  std::span<const ShardRef> shard(size_t S) const {
    assert(S + 1 < Offsets.size() && "shard index out of range");
    return std::span<const ShardRef>(Arena.data() + Offsets[S],
                                     Offsets[S + 1] - Offsets[S]);
  }
};

/// Routes every record of \p Records into its shard per \p Plan,
/// sequentially (count pass + fill pass in the calling thread).
ShardPartition partitionBySet(std::span<const MemoryRecord> Records,
                              const CacheGeometry &Geometry,
                              std::span<const SetRange> Plan);

/// Block-parallel partitionBySet: the trace is cut into contiguous
/// chunks (planChunks), workers count each chunk's per-shard routing,
/// a sequential prefix sum turns the chunk x shard counts into exact
/// arena cursors, and workers scatter their chunks into disjoint arena
/// slots. Record-for-record identical to the sequential partition at
/// every chunk grid and helper count — the cursors fix each record's
/// slot before any thread writes.
ShardPartition partitionBySetParallel(std::span<const MemoryRecord> Records,
                                      const CacheGeometry &Geometry,
                                      std::span<const SetRange> Plan,
                                      ThreadPool &Pool, unsigned Helpers);

/// Fused single-pass variant of partitionBySetParallel: instead of the
/// count + scatter double traversal, each chunk routes its records
/// once into per-chunk per-shard staging rows, then a prefix sum over
/// the staged sizes fixes arena slots and a second parallel pass
/// copies rows out. Trades a full re-traversal of the trace for the
/// staging rows' allocation and copy traffic — which side wins is a
/// machine question, so the steady-state bench tier decides (see
/// bench/sim_throughput --fused-router). Byte-identical output to the
/// other routers at every chunk grid and helper count.
ShardPartition partitionBySetFused(std::span<const MemoryRecord> Records,
                                   const CacheGeometry &Geometry,
                                   std::span<const SetRange> Plan,
                                   ThreadPool &Pool, unsigned Helpers);

/// partitionBySet over an already-routed ref stream (e.g. the merged
/// L1 miss stream re-partitioned by L2 set for the stage-2 replay).
/// Refs keep their original SeqAndWrite payload; \p Geometry supplies
/// the *target* level's index mapping.
ShardPartition partitionRefsBySet(std::span<const ShardRef> Refs,
                                  const CacheGeometry &Geometry,
                                  std::span<const SetRange> Plan);

/// Block-parallel partitionRefsBySet; identical bytes at every chunk
/// grid and helper count.
ShardPartition partitionRefsBySetParallel(std::span<const ShardRef> Refs,
                                          const CacheGeometry &Geometry,
                                          std::span<const SetRange> Plan,
                                          ThreadPool &Pool, unsigned Helpers);

/// Replays \p Refs (all of which must map into \p ShardCache's window,
/// in ascending seq order) and appends the global sequence number of
/// every access that missed to \p MissSeqs. \p ShardCache must be
/// freshly constructed or resetForReuse()'d.
void simulateShard(Cache &ShardCache, std::span<const ShardRef> Refs,
                   std::vector<uint64_t> &MissSeqs);

/// Counters of one shard replay when only totals are needed (the
/// merge-elision fast path: no miss list is materialized at all).
struct ShardAggregates {
  uint64_t Misses = 0;      ///< All missing accesses, loads and stores.
  uint64_t LoadMisses = 0;
  uint64_t StoreMisses = 0;
};

/// Replays \p Refs like simulateShard but records nothing per miss —
/// only the aggregate counters. Per-set misses stay available from
/// \p ShardCache.perSetMisses() afterwards.
ShardAggregates simulateShardAggregates(Cache &ShardCache,
                                        std::span<const ShardRef> Refs);

/// Merges the ascending per-shard miss lists into one ascending list —
/// the global miss order a sequential simulation would emit.
/// Destructive: the inputs are consumed (the single-shard fast path
/// moves the list out; multi-shard inputs are drained by a pairwise
/// tournament of std::merge rounds, O(Total * ceil(log2 K)) instead of
/// the old linear min-scan's O(Total * K)). When \p Pool is non-null,
/// each round's pair merges run across up to \p Helpers pool workers;
/// the result is identical at every helper count.
std::vector<uint64_t> mergeMissSeqs(std::span<std::vector<uint64_t>> PerShard,
                                    ThreadPool *Pool = nullptr,
                                    unsigned Helpers = 0);

/// Thread-safe pool of windowed Cache instances. A shard simulation
/// acquires a cache per shard and parks it afterwards; a later
/// acquisition with the same geometry, policy, and window width reuses
/// a parked instance's state planes (resetForReuse) instead of
/// reallocating them — the common case when one batch run sweeps many
/// sampling periods over few cache configurations. Parked instances
/// are bucketed by (geometry, policy, window-size), so acquire is one
/// hash lookup under the mutex no matter how many configurations a
/// batch has parked.
class ShardCachePool {
public:
  /// Returns a reset cache for (\p Geometry, \p Policy, \p Window),
  /// recycling a parked instance when one matches.
  std::unique_ptr<Cache> acquire(const CacheGeometry &Geometry,
                                 ReplacementKind Policy, SetRange Window);

  /// Parks \p Instance for future reuse.
  void park(std::unique_ptr<Cache> Instance);

  size_t parked() const;
  uint64_t reuses() const;

private:
  /// Everything acquire() matches on. Window position is deliberately
  /// absent: resetForReuse re-aims the window, only the width must
  /// agree for the state planes to fit.
  struct BucketKey {
    uint64_t SizeBytes = 0;
    uint64_t LineBytes = 0;
    uint64_t Associativity = 0;
    uint64_t WindowSets = 0;
    ReplacementKind Policy = ReplacementKind::Lru;

    bool operator==(const BucketKey &Other) const = default;
  };
  struct BucketKeyHash {
    size_t operator()(const BucketKey &Key) const;
  };

  static BucketKey keyOf(const CacheGeometry &Geometry,
                         ReplacementKind Policy, uint64_t WindowSets);

  mutable std::mutex Mutex;
  std::unordered_map<BucketKey, std::vector<std::unique_ptr<Cache>>,
                     BucketKeyHash>
      Buckets;
  size_t NumParked = 0;
  uint64_t Reuses = 0;
};

/// Counters of how the sharding gate actually executed, shared across
/// every simulation of a run (all atomic; a null pointer in SimContext
/// disables collection). The interesting split is sharded-with-helpers
/// vs the degraded mode: an explicit shard count is honored even when
/// no helper thread was granted, which serializes K shard replays on
/// the calling thread — bench sweeps must be able to tell that apart
/// from real parallel runs.
struct ShardExecStats {
  /// Simulations that took the sharded path (Shards > 1).
  std::atomic<uint64_t> ShardedSims{0};
  /// Sharded simulations that got zero helper threads (explicit
  /// --shards with an exhausted budget or an empty pool): every shard
  /// replayed serially on one thread.
  std::atomic<uint64_t> UnhelpedShardedSims{0};
  /// Aggregate-only collections that skipped the ordered merge.
  std::atomic<uint64_t> ElidedMerges{0};
  /// Partitions routed from scratch (cache miss or no cache wired).
  std::atomic<uint64_t> PartitionBuilds{0};
  /// Partitions served from the PartitionCache without routing.
  std::atomic<uint64_t> PartitionReuses{0};
  /// L2 collections whose stage-2 replay itself ran sharded.
  std::atomic<uint64_t> L2StageShardedSims{0};
};

/// Which routing strategy the parallel partitioner uses; see
/// partitionBySetFused for the trade. CountScatter is the measured
/// default.
enum class PartitionRouter {
  CountScatter,
  Fused,
};

/// Everything a miss-stream collector needs to go parallel. A
/// default-constructed context (null pool) means "stay sequential";
/// the batch runner owns one context per run and threads it through
/// MissStreamCache compute callbacks.
struct SimContext {
  /// Workers that may help simulate shards; null disables sharding.
  ThreadPool *Pool = nullptr;
  /// Shared budget capping batch workers + shard helpers; when null,
  /// the collector uses every pool worker.
  ThreadBudget *Budget = nullptr;
  /// Recycles windowed caches across configurations; may be null.
  ShardCachePool *CachePool = nullptr;
  /// Execution accounting sink; may be null.
  ShardExecStats *Stats = nullptr;
  /// Shard count; 0 = one shard per granted thread.
  unsigned Shards = 0;
  /// Traces shorter than this are simulated sequentially — partition
  /// and merge overhead beats the parallel win on tiny streams.
  uint64_t MinRefsToShard = DefaultMinRefsToShard;
  /// Route-once arena cache shared across a sweep; null disables
  /// reuse (every simulation routes its own partition).
  PartitionCache *Partitions = nullptr;
  /// Identity of the record stream this context simulates, minted by
  /// PartitionCache::registerTrace(). 0 (the default) means "unknown
  /// trace" and bypasses the cache even when Partitions is set.
  uint64_t TraceId = 0;
  /// Routing strategy for parallel partition passes.
  PartitionRouter Router = PartitionRouter::CountScatter;

  static constexpr uint64_t DefaultMinRefsToShard = 1 << 16;
};

} // namespace ccprof

#endif // CCPROF_SIM_SHARDEDSIM_H
