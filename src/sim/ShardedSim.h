//===- sim/ShardedSim.h - Set-sharded parallel cache simulation -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitives of the set-sharded parallel simulation engine. In a
/// set-associative cache every set's replacement state (LRU / FIFO
/// timestamps, tree-PLRU bits) depends only on the relative order of
/// the accesses that map to that set, never on accesses to other sets.
/// The reference stream can therefore be partitioned once by set index
/// into K shards of contiguous set ranges, each shard simulated
/// independently against a windowed Cache, and the per-shard miss lists
/// — sorted by the access's global sequence number by construction —
/// k-way merged back into the exact miss stream a sequential simulation
/// produces. The decomposition is bit-exact for every deterministic
/// replacement policy; ReplacementKind::Random consumes a cache-global
/// RNG whose draw order depends on the interleaving of sets, so Random
/// simulations must stay sequential (callers gate on this).
///
/// The pieces here are deliberately policy-free building blocks:
/// planShards() cuts the set space, simulateShard() walks one shard's
/// subsequence, mergeMissSeqs() reconstructs global order, and
/// ShardCachePool recycles windowed Cache instances across
/// configurations so repeated sharded runs do not reallocate state
/// planes. The trace-facing collectors that put them together live in
/// pmu/PebsEvent.h; the thread-budget policy lives with the batch
/// runner (pipeline/JobRunner.h).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_SHARDEDSIM_H
#define CCPROF_SIM_SHARDEDSIM_H

#include "sim/Cache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace ccprof {

class ThreadPool;
class ThreadBudget;
class ShardCachePool;

/// One reference routed to a shard: the address plus its global
/// position in the trace (and the write bit, packed into the low bit
/// so a shard entry stays 16 bytes).
struct ShardRef {
  uint64_t Addr = 0;
  uint64_t SeqAndWrite = 0;

  static ShardRef make(uint64_t Seq, uint64_t Addr, bool IsWrite) {
    return ShardRef{Addr, (Seq << 1) | static_cast<uint64_t>(IsWrite)};
  }
  uint64_t seq() const { return SeqAndWrite >> 1; }
  bool isWrite() const { return SeqAndWrite & 1; }
};

/// Cuts \p NumSets into at most \p ShardCount contiguous, non-empty,
/// near-equal ranges (the first NumSets % K ranges are one set wider).
std::vector<SetRange> planShards(uint64_t NumSets, unsigned ShardCount);

/// O(1) set-to-shard lookup for a planShards() plan.
class ShardMap {
public:
  explicit ShardMap(std::span<const SetRange> Plan);

  uint32_t shardOf(uint64_t SetIndex) const {
    assert(SetIndex < SetToShard.size() && "set index out of range");
    return SetToShard[SetIndex];
  }
  size_t numShards() const { return NumShards; }

private:
  std::vector<uint32_t> SetToShard;
  size_t NumShards;
};

/// Replays \p Refs (all of which must map into \p ShardCache's window,
/// in ascending seq order) and appends the global sequence number of
/// every access that missed to \p MissSeqs. \p ShardCache must be
/// freshly constructed or resetForReuse()'d.
void simulateShard(Cache &ShardCache, std::span<const ShardRef> Refs,
                   std::vector<uint64_t> &MissSeqs);

/// K-way merges the ascending per-shard miss lists into one ascending
/// list — the global miss order a sequential simulation would emit.
std::vector<uint64_t>
mergeMissSeqs(std::span<const std::vector<uint64_t>> PerShard);

/// Thread-safe pool of windowed Cache instances. A shard simulation
/// acquires a cache per shard and parks it afterwards; a later
/// acquisition with the same geometry, policy, and window width reuses
/// the parked instance's state planes (resetForReuse) instead of
/// reallocating them — the common case when one batch run sweeps many
/// sampling periods over few cache configurations.
class ShardCachePool {
public:
  /// Returns a reset cache for (\p Geometry, \p Policy, \p Window),
  /// recycling a parked instance when one matches.
  std::unique_ptr<Cache> acquire(const CacheGeometry &Geometry,
                                 ReplacementKind Policy, SetRange Window);

  /// Parks \p Instance for future reuse.
  void park(std::unique_ptr<Cache> Instance);

  size_t parked() const;
  uint64_t reuses() const;

private:
  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Cache>> Parked;
  uint64_t Reuses = 0;
};

/// Everything a miss-stream collector needs to go parallel. A
/// default-constructed context (null pool) means "stay sequential";
/// the batch runner owns one context per run and threads it through
/// MissStreamCache compute callbacks.
struct SimContext {
  /// Workers that may help simulate shards; null disables sharding.
  ThreadPool *Pool = nullptr;
  /// Shared budget capping batch workers + shard helpers; when null,
  /// the collector uses every pool worker.
  ThreadBudget *Budget = nullptr;
  /// Recycles windowed caches across configurations; may be null.
  ShardCachePool *CachePool = nullptr;
  /// Shard count; 0 = one shard per granted thread.
  unsigned Shards = 0;
  /// Traces shorter than this are simulated sequentially — partition
  /// and merge overhead beats the parallel win on tiny streams.
  uint64_t MinRefsToShard = DefaultMinRefsToShard;

  static constexpr uint64_t DefaultMinRefsToShard = 1 << 16;
};

} // namespace ccprof

#endif // CCPROF_SIM_SHARDEDSIM_H
