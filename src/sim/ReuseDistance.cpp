//===- sim/ReuseDistance.cpp - Exact LRU reuse-distance analysis ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ReuseDistance.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer() {
  Bit.assign(1, 0);
  Marks.assign(1, 0);
}

uint64_t ReuseDistanceAnalyzer::access(uint64_t LineAddr) {
  if (Clock + 1 >= Bit.size()) {
    // Most timestamps dead (lines re-referenced or evicted)? Renumber
    // the survivors instead of doubling: the Fenwick stays sized to the
    // live-line count rather than the reference count.
    if (Clock >= 64 && LastAccess.size() * 4 <= Clock)
      compact();
    if (Clock + 1 >= Bit.size())
      grow(Clock + 2);
  }
  ++Clock; // Timestamps are 1-based to match the Fenwick indexing.

  auto [It, Inserted] = LastAccess.try_emplace(LineAddr, Clock);
  if (Inserted) {
    bitAdd(Clock, +1);
    ++ColdCount;
    return Infinite;
  }

  const size_t Previous = It->second;
  // Distinct lines touched strictly between Previous and Clock equals the
  // number of "most recent access" marks in (Previous, Clock).
  const uint64_t Distance = bitPrefixSum(Clock - 1) - bitPrefixSum(Previous);
  bitAdd(Previous, -1);
  bitAdd(Clock, +1);
  It->second = Clock;
  Distances.add(Distance);
  return Distance;
}

bool ReuseDistanceAnalyzer::evict(uint64_t LineAddr) {
  auto It = LastAccess.find(LineAddr);
  if (It == LastAccess.end())
    return false;
  bitAdd(It->second, -1);
  LastAccess.erase(It);
  return true;
}

double ReuseDistanceAnalyzer::missRatioAtCapacity(uint64_t CacheLines) const {
  if (Distances.empty())
    return 0.0;
  const uint64_t Hits = Distances.countBelow(CacheLines);
  return 1.0 -
         static_cast<double>(Hits) / static_cast<double>(Distances.total());
}

uint64_t
ReuseDistanceAnalyzer::overallMissCountAtCapacity(uint64_t CacheLines) const {
  return ColdCount + (Distances.total() - Distances.countBelow(CacheLines));
}

double
ReuseDistanceAnalyzer::overallMissRatioAtCapacity(uint64_t CacheLines) const {
  const uint64_t Refs = totalRefs();
  if (Refs == 0)
    return 0.0;
  return static_cast<double>(overallMissCountAtCapacity(CacheLines)) /
         static_cast<double>(Refs);
}

void ReuseDistanceAnalyzer::reset() {
  Bit.assign(1, 0);
  Marks.assign(1, 0);
  LastAccess.clear();
  Clock = 0;
  ColdCount = 0;
  Distances = Histogram{};
}

void ReuseDistanceAnalyzer::grow(size_t MinSize) {
  size_t NewSize = Bit.size();
  while (NewSize < MinSize)
    NewSize *= 2;
  Marks.resize(NewSize, 0);
  // Rebuild the Fenwick array from the raw marks with the standard O(n)
  // construction; doubling an existing Fenwick in place would leave the
  // new high-order nodes missing contributions from old indices.
  Bit.assign(NewSize, 0);
  for (size_t I = 1; I < NewSize; ++I) {
    Bit[I] += Marks[I];
    size_t Parent = I + (I & (~I + 1));
    if (Parent < NewSize)
      Bit[Parent] += Bit[I];
  }
}

void ReuseDistanceAnalyzer::compact() {
  // Renumber live timestamps to 1..N preserving their relative order;
  // only the order matters for distance queries, so behavior is
  // unchanged while the Fenwick shrinks to O(live lines).
  std::vector<std::pair<size_t, uint64_t>> Live; // (old timestamp, line)
  Live.reserve(LastAccess.size());
  for (const auto &[Line, Ts] : LastAccess)
    Live.emplace_back(Ts, Line);
  std::sort(Live.begin(), Live.end());

  const size_t N = Live.size();
  // Size past 2*N so the next compaction trigger has room to amortize.
  size_t NewSize = 64;
  while (NewSize < 2 * (N + 2))
    NewSize *= 2;
  Marks.assign(NewSize, 0);
  for (size_t I = 0; I < N; ++I) {
    LastAccess[Live[I].second] = I + 1;
    Marks[I + 1] = 1;
  }
  Bit.assign(NewSize, 0);
  for (size_t I = 1; I < NewSize; ++I) {
    Bit[I] += Marks[I];
    size_t Parent = I + (I & (~I + 1));
    if (Parent < NewSize)
      Bit[Parent] += Bit[I];
  }
  Clock = N;
}

void ReuseDistanceAnalyzer::bitAdd(size_t Index, int64_t Delta) {
  assert(Index >= 1 && Index < Bit.size() && "Fenwick index out of range");
  Marks[Index] = static_cast<uint8_t>(static_cast<int64_t>(Marks[Index]) +
                                      Delta);
  for (; Index < Bit.size(); Index += Index & (~Index + 1))
    Bit[Index] += Delta;
}

uint64_t ReuseDistanceAnalyzer::bitPrefixSum(size_t Index) const {
  int64_t Sum = 0;
  if (Index >= Bit.size())
    Index = Bit.size() - 1;
  for (; Index > 0; Index -= Index & (~Index + 1))
    Sum += Bit[Index];
  assert(Sum >= 0 && "mark counts cannot go negative");
  return static_cast<uint64_t>(Sum);
}
