//===- sim/MissClassifier.h - Cold/capacity/conflict labeling --*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every cache miss of a reference stream as cold, capacity,
/// or conflict following the classical three-C model (paper Sec. 1):
///
///  * cold      - the line was never referenced before;
///  * capacity  - the line would also miss in a fully-associative LRU
///                cache of equal capacity (reuse distance exceeds the
///                cache size);
///  * conflict  - the set-associative cache misses although the
///                fully-associative companion hits: the miss exists only
///                because of set conflicts.
///
/// CCProf itself never sees these labels at runtime — they are the
/// simulator-side ground truth used to train and validate the classifier
/// (Sec. 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_MISSCLASSIFIER_H
#define CCPROF_SIM_MISSCLASSIFIER_H

#include "sim/Cache.h"

#include <cstdint>
#include <unordered_set>

namespace ccprof {

/// Outcome of one classified reference.
enum class AccessKind {
  Hit,
  ColdMiss,
  CapacityMiss,
  ConflictMiss,
};

/// Returns a short lowercase name ("hit", "cold", ...) for \p Kind.
const char *accessKindName(AccessKind Kind);

/// Counters per AccessKind.
struct MissBreakdown {
  uint64_t Hits = 0;
  uint64_t ColdMisses = 0;
  uint64_t CapacityMisses = 0;
  uint64_t ConflictMisses = 0;

  uint64_t totalMisses() const {
    return ColdMisses + CapacityMisses + ConflictMisses;
  }
  uint64_t totalAccesses() const { return Hits + totalMisses(); }

  /// Conflict misses as a fraction of all misses; 0 when missless.
  double conflictShare() const {
    uint64_t Misses = totalMisses();
    return Misses == 0 ? 0.0
                       : static_cast<double>(ConflictMisses) /
                             static_cast<double>(Misses);
  }
};

/// Drives a set-associative cache and its fully-associative companion in
/// lock-step to label each reference.
class MissClassifier {
public:
  explicit MissClassifier(CacheGeometry Geometry,
                          ReplacementKind Policy = ReplacementKind::Lru);

  /// Classifies one reference and updates both caches.
  AccessKind access(uint64_t Addr, bool IsWrite = false);

  const MissBreakdown &breakdown() const { return Breakdown; }
  const Cache &cache() const { return SetAssociative; }

  /// Resets cache contents, counters and the cold-line set.
  void reset();

private:
  Cache SetAssociative;
  FullyAssociativeLru FullyAssociative;
  std::unordered_set<uint64_t> SeenLines;
  MissBreakdown Breakdown;
};

} // namespace ccprof

#endif // CCPROF_SIM_MISSCLASSIFIER_H
