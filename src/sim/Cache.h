//===- sim/Cache.h - Set-associative cache model ---------------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace-driven single-level set-associative cache simulator. This is the
/// project's stand-in for the Dinero IV uniprocessor simulator that the
/// paper uses as ground truth (Sec. 5): it consumes a memory reference
/// stream and reports hit/miss per reference together with per-set miss
/// counters.
///
/// The simulator is the hottest loop of every profiling job, so the
/// cache state is laid out structure-of-arrays: one contiguous tag row
/// per set, per-set valid/dirty bit masks, and separate recency /
/// insertion timestamp planes. The hit lookup compiles to a branch-free
/// compare-and-mask sweep over the tag row. Observable behaviour is
/// bit-identical to the scalar model preserved in ReferenceCache.h
/// (enforced by tests/CacheSoaExactnessTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_CACHE_H
#define CCPROF_SIM_CACHE_H

#include "sim/CacheGeometry.h"
#include "support/Rng.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace ccprof {

/// Replacement policy of a set-associative cache.
enum class ReplacementKind {
  Lru,    ///< Least-recently-used (the model assumed by the paper).
  Fifo,   ///< First-in-first-out.
  TreePlru, ///< Tree pseudo-LRU (requires power-of-two associativity).
  Random, ///< Uniform random victim.
};

/// Contiguous range of cache sets [Begin, End). A windowed Cache owns
/// replacement state for exactly these sets — the unit of the
/// set-sharded parallel simulation engine (sim/ShardedSim.h).
struct SetRange {
  uint64_t Begin = 0;
  uint64_t End = 0;

  uint64_t size() const { return End - Begin; }
  bool contains(uint64_t SetIndex) const {
    return SetIndex >= Begin && SetIndex < End;
  }
  bool operator==(const SetRange &Other) const = default;
};

/// Result of a single cache access.
struct CacheAccessResult {
  bool Hit = false;
  uint64_t SetIndex = 0;
  /// Line address (see CacheGeometry::lineAddrOf) of an evicted valid
  /// line, if the fill displaced one.
  std::optional<uint64_t> EvictedLine;
  /// True when the evicted line was dirty (write-back needed).
  bool EvictedDirty = false;
};

/// Aggregate counters of a Cache.
struct CacheStats {
  uint64_t Accesses = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Writebacks = 0;

  double missRatio() const {
    return Accesses == 0
               ? 0.0
               : static_cast<double>(Misses) / static_cast<double>(Accesses);
  }
};

/// A single cache level with a configurable replacement policy.
///
/// Write policy is write-back / write-allocate (the common configuration
/// of the Intel data caches the paper profiles).
class Cache {
public:
  Cache(CacheGeometry Geometry, ReplacementKind Policy = ReplacementKind::Lru,
        uint64_t RngSeed = 0x5eedcafe);

  /// Windowed cache: replacement state and counters exist only for the
  /// sets of \p Window; accessing an address outside the window is a
  /// programming error. Within its sets a windowed cache behaves
  /// bit-identically to a full cache fed the same per-set subsequence
  /// (for deterministic policies; Random draws from a cache-local RNG,
  /// so windowed Random caches are self-consistent but do not replay a
  /// full cache's victim sequence).
  Cache(CacheGeometry Geometry, SetRange Window,
        ReplacementKind Policy = ReplacementKind::Lru,
        uint64_t RngSeed = 0x5eedcafe);

  const CacheGeometry &geometry() const { return Geometry; }
  ReplacementKind policy() const { return Policy; }
  const SetRange &window() const { return Window; }

  /// Simulates one reference to \p Addr. A miss allocates the line and
  /// may evict. \p IsWrite marks the (allocated or hit) line dirty.
  CacheAccessResult access(uint64_t Addr, bool IsWrite = false);

  /// \returns true if the line holding \p Addr is currently resident,
  /// without touching replacement state.
  bool probe(uint64_t Addr) const;

  /// Invalidates every line and zeroes replacement state; statistics are
  /// preserved (use resetStats() to clear them).
  void flush();

  void resetStats();

  /// Returns the cache to its freshly-constructed state (contents,
  /// statistics, tick, and RNG stream) without any reallocation, so
  /// pooled instances replay identically across reuses.
  void resetForReuse();

  /// Like resetForReuse(), but re-aims the window at \p NewWindow,
  /// which must span the same number of sets — the state planes are
  /// reused in place. Geometry and policy are unchanged.
  void resetForReuse(SetRange NewWindow);

  /// Hints the hardware prefetcher at the tag row \p Addr will probe —
  /// the shard simulation loop calls this a few accesses ahead.
  void prefetchSet(uint64_t Addr) const {
#if defined(__GNUC__) || defined(__clang__)
    const uint64_t Local = Geometry.setIndexOf(Addr) - Window.Begin;
    __builtin_prefetch(Tags.data() + Local * Geometry.associativity());
#else
    (void)Addr;
#endif
  }

  const CacheStats &stats() const { return Stats; }

  /// Number of misses that fell on set \p SetIndex (a global set index,
  /// which must lie inside the window).
  uint64_t missesOnSet(uint64_t SetIndex) const;

  /// Per-set miss counters, indexed by set *within the window* (slot 0
  /// is window().Begin; a full-width cache is indexed by set as before).
  const std::vector<uint64_t> &perSetMisses() const { return SetMisses; }

  /// Number of sets that received at least one miss.
  uint64_t setsWithMisses() const;

private:
  /// Selects the victim way in a full set according to Policy.
  /// \p LocalSet indexes within the window.
  uint32_t chooseVictim(uint64_t LocalSet);

  /// Updates replacement metadata for a hit or fill of \p WayIndex.
  /// \p LocalSet indexes within the window.
  void touchWay(uint64_t LocalSet, uint32_t WayIndex);

  CacheGeometry Geometry;
  ReplacementKind Policy;
  /// The sets this instance models; full range unless windowed.
  SetRange Window;
  // State planes, structure-of-arrays. Per-way planes are
  // Window.size() * Associativity, row-major (one contiguous row per
  // set); the bit masks hold one bit per way, which caps associativity
  // at 64 — the same cap tree-PLRU already imposes.
  std::vector<uint64_t> Tags;       ///< Tag plane.
  std::vector<uint64_t> LastUse;    ///< LRU timestamp plane.
  std::vector<uint64_t> InsertedAt; ///< FIFO timestamp plane.
  std::vector<uint64_t> ValidMask;  ///< One valid bitset per set.
  std::vector<uint64_t> DirtyMask;  ///< One dirty bitset per set.
  std::vector<uint64_t> PlruBits;   ///< One tree-PLRU bitset per set.
  std::vector<uint64_t> SetMisses;
  uint64_t AllWays; ///< Mask of all Associativity way bits.
  CacheStats Stats;
  uint64_t Tick = 0;
  uint64_t RngSeed; ///< Kept so resetForReuse() restarts the stream.
  Xoshiro256 Rng;
};

/// Fully-associative LRU cache of a fixed number of lines, with O(1)
/// amortized access. Used as the companion cache for conflict/capacity
/// miss classification: a reference that misses the set-associative cache
/// but hits a fully-associative cache of equal capacity is a conflict
/// miss (Sec. 2.1 / classical OPT-free classification).
class FullyAssociativeLru {
public:
  explicit FullyAssociativeLru(uint64_t NumLines);

  /// Simulates one reference to the line containing \p Addr given
  /// \p LineBytes-sized lines. \returns true on hit.
  bool access(uint64_t LineAddr);

  bool probe(uint64_t LineAddr) const;

  uint64_t numLines() const { return Capacity; }
  uint64_t size() const { return Slots.size(); }
  void flush();

private:
  // Intrusive doubly-linked list over a vector arena plus a hash map from
  // line address to arena slot; front = most recent.
  struct Node {
    uint64_t LineAddr;
    uint32_t Prev;
    uint32_t Next;
  };

  static constexpr uint32_t Npos = ~uint32_t{0};

  void unlink(uint32_t Slot);
  void pushFront(uint32_t Slot);

  uint64_t Capacity;
  std::vector<Node> Arena;
  std::vector<uint32_t> FreeSlots;
  uint32_t Head = Npos;
  uint32_t Tail = Npos;
  /// Maps resident line address -> arena slot.
  std::unordered_map<uint64_t, uint32_t> Slots;
};

} // namespace ccprof

#endif // CCPROF_SIM_CACHE_H
