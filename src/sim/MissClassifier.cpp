//===- sim/MissClassifier.cpp - Cold/capacity/conflict labeling ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/MissClassifier.h"

using namespace ccprof;

const char *ccprof::accessKindName(AccessKind Kind) {
  switch (Kind) {
  case AccessKind::Hit:
    return "hit";
  case AccessKind::ColdMiss:
    return "cold";
  case AccessKind::CapacityMiss:
    return "capacity";
  case AccessKind::ConflictMiss:
    return "conflict";
  }
  assert(false && "unknown access kind");
  return "?";
}

MissClassifier::MissClassifier(CacheGeometry Geometry, ReplacementKind Policy)
    : SetAssociative(Geometry, Policy),
      FullyAssociative(Geometry.numLines()) {}

AccessKind MissClassifier::access(uint64_t Addr, bool IsWrite) {
  const uint64_t LineAddr = SetAssociative.geometry().lineAddrOf(Addr);

  // Drive both caches unconditionally so their contents stay in sync
  // with the full reference stream.
  const bool SaHit = SetAssociative.access(Addr, IsWrite).Hit;
  const bool FaHit = FullyAssociative.access(LineAddr);
  const bool FirstTouch = SeenLines.insert(LineAddr).second;

  if (SaHit) {
    ++Breakdown.Hits;
    return AccessKind::Hit;
  }
  if (FirstTouch) {
    ++Breakdown.ColdMisses;
    return AccessKind::ColdMiss;
  }
  if (FaHit) {
    ++Breakdown.ConflictMisses;
    return AccessKind::ConflictMiss;
  }
  ++Breakdown.CapacityMisses;
  return AccessKind::CapacityMiss;
}

void MissClassifier::reset() {
  SetAssociative.flush();
  SetAssociative.resetStats();
  FullyAssociative.flush();
  SeenLines.clear();
  Breakdown = MissBreakdown{};
}
