//===- sim/CacheGeometry.cpp - Cache shape and address slicing -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/CacheGeometry.h"

#include "support/Table.h"

#include <bit>

using namespace ccprof;

CacheGeometry::CacheGeometry(uint64_t SizeBytes, uint32_t LineBytes,
                             uint32_t Associativity)
    : SizeBytes(SizeBytes), LineBytes(LineBytes),
      Associativity(Associativity) {
  assert(LineBytes > 0 && std::has_single_bit(LineBytes) &&
         "line size must be a power of two");
  assert(Associativity > 0 && "associativity must be positive");
  assert(SizeBytes % (static_cast<uint64_t>(LineBytes) * Associativity) == 0 &&
         "capacity must be divisible by line size times associativity");
  NumSets = SizeBytes / (static_cast<uint64_t>(LineBytes) * Associativity);
  assert(NumSets > 0 && "geometry must have at least one set");
  LineShift = static_cast<uint32_t>(std::countr_zero(LineBytes));
  SetsArePow2 = std::has_single_bit(NumSets);
  SetShift = SetsArePow2 ? static_cast<uint32_t>(std::countr_zero(NumSets)) : 0;
}

std::string CacheGeometry::describe() const {
  return fmt::bytes(SizeBytes) + " " + std::to_string(Associativity) +
         "-way " + std::to_string(LineBytes) + "B-line (" +
         std::to_string(NumSets) + " sets)";
}
