//===- sim/CacheGeometry.h - Cache shape and address slicing ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Describes the shape of one cache level (capacity, line size,
/// associativity) and slices effective addresses into offset / index /
/// tag fields (paper Fig. 1). The profiler's cache-set attribution
/// (Sec. 3.1) is exactly CacheGeometry::setIndexOf applied to the virtual
/// address captured by address sampling.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_CACHEGEOMETRY_H
#define CCPROF_SIM_CACHEGEOMETRY_H

#include <cassert>
#include <cstdint>
#include <string>

namespace ccprof {

/// Shape of a single cache level.
///
/// Line size must be a power of two; the number of sets may be any
/// positive integer (large shared LLCs are not always power-of-two-set),
/// in which case index extraction degrades from bit-slicing to modulo.
class CacheGeometry {
public:
  /// Constructs a geometry of \p SizeBytes total capacity with
  /// \p LineBytes lines and \p Associativity ways per set.
  /// SizeBytes must be divisible by LineBytes * Associativity.
  CacheGeometry(uint64_t SizeBytes, uint32_t LineBytes,
                uint32_t Associativity);

  uint64_t sizeBytes() const { return SizeBytes; }
  uint32_t lineBytes() const { return LineBytes; }
  uint32_t associativity() const { return Associativity; }
  uint64_t numSets() const { return NumSets; }
  uint64_t numLines() const { return NumSets * Associativity; }

  /// Cache-line number of \p Addr (address with the offset bits dropped).
  uint64_t lineAddrOf(uint64_t Addr) const { return Addr >> LineShift; }

  /// Byte offset of \p Addr within its cache line.
  uint32_t offsetOf(uint64_t Addr) const {
    return static_cast<uint32_t>(Addr & (LineBytes - 1));
  }

  /// Cache-set index of \p Addr. For power-of-two set counts this is
  /// the classical index-bit extraction of Fig. 1.
  uint64_t setIndexOf(uint64_t Addr) const {
    uint64_t Line = lineAddrOf(Addr);
    return SetsArePow2 ? (Line & (NumSets - 1)) : (Line % NumSets);
  }

  /// Tag of \p Addr: the line address with the index bits dropped.
  uint64_t tagOf(uint64_t Addr) const {
    uint64_t Line = lineAddrOf(Addr);
    return SetsArePow2 ? (Line >> SetShift) : (Line / NumSets);
  }

  /// Reassembles the first byte address of the line with the given
  /// \p Tag and \p SetIndex (inverse of tagOf/setIndexOf).
  uint64_t lineStartAddr(uint64_t Tag, uint64_t SetIndex) const {
    assert(SetIndex < NumSets && "set index out of range");
    uint64_t Line =
        SetsArePow2 ? ((Tag << SetShift) | SetIndex) : (Tag * NumSets + SetIndex);
    return Line << LineShift;
  }

  /// Distance in bytes between two addresses mapping to the same set
  /// (one full "wrap" of the cache): NumSets * LineBytes.
  uint64_t setStrideBytes() const { return NumSets * LineBytes; }

  /// Human-readable description, e.g. "32KiB 8-way 64B-line (64 sets)".
  std::string describe() const;

  bool operator==(const CacheGeometry &Other) const = default;

private:
  uint64_t SizeBytes;
  uint32_t LineBytes;
  uint32_t Associativity;
  uint64_t NumSets;
  uint32_t LineShift;
  uint32_t SetShift;
  bool SetsArePow2;
};

} // namespace ccprof

#endif // CCPROF_SIM_CACHEGEOMETRY_H
