//===- sim/MrcModel.cpp - Shared stack-distance miss-ratio model ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/MrcModel.h"

#include <algorithm>
#include <cmath>

using namespace ccprof;

double ccprof::binomialHitProbability(uint64_t D, double P, uint32_t A) {
  if (D < A)
    return 1.0; // At most D intervening lines can map to the set.
  double Term = std::exp(static_cast<double>(D) * std::log1p(-P));
  double Cdf = Term;
  const double Odds = P / (1.0 - P);
  for (uint32_t K = 0; K + 1 < A; ++K) {
    Term *= static_cast<double>(D - K) / static_cast<double>(K + 1) * Odds;
    Cdf += Term;
  }
  return std::min(Cdf, 1.0);
}

std::vector<CacheGeometry> ccprof::defaultMrcSweepGeometries() {
  std::vector<CacheGeometry> Sweep;
  Sweep.reserve(5);
  for (uint64_t KiB : {8, 16, 32, 64, 128})
    Sweep.emplace_back(KiB * 1024, 64, 8);
  return Sweep;
}

double ccprof::modelMissRatioFromStack(const Histogram &Distances,
                                       uint64_t ColdWeight,
                                       uint64_t TotalRefs,
                                       const CacheGeometry &Geometry) {
  if (TotalRefs == 0)
    return 0.0;
  if (Geometry.numSets() == 1) {
    const uint64_t Hits = Distances.countBelow(Geometry.numLines());
    return static_cast<double>(TotalRefs - std::min(Hits, TotalRefs)) /
           static_cast<double>(TotalRefs);
  }
  (void)ColdWeight; // Cold misses are TotalRefs minus the hit weight.
  const double P = 1.0 / static_cast<double>(Geometry.numSets());
  double Hits = 0.0;
  for (const auto &[Distance, Weight] : Distances.buckets())
    Hits += static_cast<double>(Weight) *
            binomialHitProbability(Distance, P, Geometry.associativity());
  Hits = std::min(Hits, static_cast<double>(TotalRefs));
  return (static_cast<double>(TotalRefs) - Hits) /
         static_cast<double>(TotalRefs);
}
