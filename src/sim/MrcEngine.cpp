//===- sim/MrcEngine.cpp - Single-pass miss-ratio curves -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/MrcEngine.h"

#include "sim/MrcModel.h"
#include "sim/PartitionCache.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

using namespace ccprof;

namespace {

/// splitmix64 finalizer: the SHARDS spatial filter. Deterministic in
/// the line address alone, so sampling decisions are reproducible
/// across runs and execution shapes.
uint64_t hashLine(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

//===----------------------------------------------------------------------===//
// MissRatioCurve
//===----------------------------------------------------------------------===//

uint64_t MissRatioCurve::missWeightAtLines(uint64_t Lines) const {
  return ColdWeight +
         (StackDistances.total() - StackDistances.countBelow(Lines));
}

double MissRatioCurve::missRatioAtLines(uint64_t Lines) const {
  const uint64_t Refs = scaledRefs();
  if (Refs == 0)
    return 0.0;
  return static_cast<double>(missWeightAtLines(Lines)) /
         static_cast<double>(Refs);
}

bool MissRatioCurve::isExactAt(const CacheGeometry &Geometry) const {
  if (Geometry.numSets() == 1)
    return !Sampled;
  return HasPerSet && Geometry.lineBytes() == Reference.lineBytes() &&
         Geometry.numSets() == Reference.numSets() &&
         Geometry.associativity() <= MaxWays;
}

double MissRatioCurve::missRatioAt(const CacheGeometry &Geometry) const {
  if (Geometry.numSets() != 1 && isExactAt(Geometry)) {
    const uint64_t Total = PerSetCold + PerSetDistances.total();
    if (Total == 0)
      return 0.0;
    const uint64_t Misses =
        PerSetCold + (PerSetDistances.total() -
                      PerSetDistances.countBelow(Geometry.associativity()));
    return static_cast<double>(Misses) / static_cast<double>(Total);
  }
  return modelMissRatioAt(Geometry);
}

double MissRatioCurve::modelMissRatioAt(const CacheGeometry &Geometry) const {
  // One code path with the static reuse-profile estimator: both curves
  // read out through sim/MrcModel's Hill–Smith implementation.
  return modelMissRatioFromStack(StackDistances, ColdWeight, scaledRefs(),
                                 Geometry);
}

//===----------------------------------------------------------------------===//
// PerSetStackPass
//===----------------------------------------------------------------------===//

PerSetStackPass::PerSetStackPass(const CacheGeometry &Reference,
                                 uint32_t MaxWays, SetRange Window)
    : Reference(Reference), MaxWays(MaxWays), Window(Window),
      Stacks(Window.size()) {}

void PerSetStackPass::addRef(uint64_t Addr) {
  const uint64_t Set = Reference.setIndexOf(Addr);
  assert(Window.contains(Set) && "reference outside the pass window");
  const uint64_t Line = Reference.lineAddrOf(Addr);
  std::vector<uint64_t> &Stack = Stacks[Set - Window.Begin];

  auto It = std::find(Stack.begin(), Stack.end(), Line);
  if (It != Stack.end()) {
    // Stack position == distinct same-set lines touched since last use.
    Distances.add(static_cast<uint64_t>(It - Stack.begin()));
    Stack.erase(It);
  } else if (Seen.insert(Line).second) {
    ++Cold;
  } else {
    // Previously seen but fallen off the capped stack: the true per-set
    // distance is >= MaxWays; the sentinel bucket keeps it a miss at
    // every queryable associativity.
    Distances.add(MaxWays);
  }
  Stack.insert(Stack.begin(), Line);
  if (Stack.size() > MaxWays)
    Stack.pop_back();
}

//===----------------------------------------------------------------------===//
// MrcEngine
//===----------------------------------------------------------------------===//

MrcEngine::MrcEngine(const MrcOptions &Opts)
    : Opts(Opts), PerSet(Opts.Reference, Opts.MaxWays,
                         SetRange{0, Opts.Reference.numSets()}) {
  assert(Opts.SampleRate > 0.0 && Opts.SampleRate <= 1.0 &&
         "sample rate must be in (0, 1]");
  assert(Opts.MaxSampledLines >= 2 && "reservoir too small to adapt");
  if (Opts.Sampled) {
    // Power-of-two shard count so "the top Lg hash bits" is an exact
    // partition of line space; each shard filters on the remaining
    // bits (subhash), which are again uniform over the full 2^64
    // scale, so the threshold arithmetic is unchanged from the
    // single-filter pass.
    const uint32_t Requested =
        std::clamp<uint32_t>(Opts.SampleShards, 1, 256);
    LgSampleShards =
        static_cast<unsigned>(std::bit_width(std::bit_floor(Requested)) - 1);
    const uint64_t Threshold0 =
        Opts.SampleRate >= 1.0
            ? std::numeric_limits<uint64_t>::max()
            : static_cast<uint64_t>(std::ldexp(Opts.SampleRate, 64));
    SampledShards.resize(numSampleShards());
    for (SampledShard &Shard : SampledShards) {
      Shard.Threshold = Threshold0;
      Shard.MaxLines = std::max<size_t>(
          2, Opts.MaxSampledLines >> LgSampleShards);
    }
  }
}

double MrcEngine::SampledShard::rate() const {
  return Threshold == std::numeric_limits<uint64_t>::max()
             ? 1.0
             : std::ldexp(static_cast<double>(Threshold), -64);
}

void MrcEngine::addRef(uint64_t Addr) {
  ++TotalRefs;
  const uint64_t Line = Opts.Reference.lineAddrOf(Addr);
  if (Opts.Sampled) {
    addRefSampled(Line);
    return;
  }
  Global.access(Line);
  PerSet.addRef(Addr);
}

void MrcEngine::addRefSampled(uint64_t LineAddr) {
  const uint64_t Hash = hashLine(LineAddr);
  const size_t P = LgSampleShards == 0 ? 0 : Hash >> (64 - LgSampleShards);
  SampledShards[P].addLine(Hash << LgSampleShards, LineAddr,
                           numSampleShards());
}

void MrcEngine::SampledShard::addLine(uint64_t SubHash, uint64_t LineAddr,
                                      uint32_t NumShards) {
  if (SubHash >= Threshold)
    return;
  // The shard owns a 1/NumShards slice of hash space and its threshold
  // thins that slice further: the effective full-stream rate divides
  // by the shard count, which is what keeps every scaled weight and
  // distance in full-stream units — no merge-time rescale needed. At
  // NumShards == 1 the division is exact and the pass is bit-identical
  // to the legacy single filter.
  const double Rate = rate() / static_cast<double>(NumShards);
  const uint64_t Weight =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(1.0 / Rate)));
  const uint64_t Distance = Global.access(LineAddr);
  if (Distance == ReuseDistanceAnalyzer::Infinite) {
    ScaledCold += Weight;
    Reservoir.emplace(SubHash, LineAddr);
    if (Reservoir.size() > MaxLines)
      shrink();
    return;
  }
  // Sampled distances count only this shard's tracked lines — a
  // Rate-fraction of all distinct lines; dividing by it rescales to
  // full-stream units (SHARDS' distance correction).
  const uint64_t Scaled = static_cast<uint64_t>(
      std::llround(static_cast<double>(Distance) / Rate));
  ScaledStack.add(Scaled, Weight);
}

void MrcEngine::SampledShard::shrink() {
  // Drop to the largest tracked subhash: that line (and any ties)
  // leaves both the reservoir and the analyzer, and the filter
  // tightens so it can never return — tracked set and filter stay
  // consistent, which is what makes eviction semantically sound.
  Threshold = std::prev(Reservoir.end())->first;
  while (!Reservoir.empty()) {
    auto Last = std::prev(Reservoir.end());
    if (Last->first < Threshold)
      break;
    Global.evict(Last->second);
    Reservoir.erase(Last);
  }
}

void MrcEngine::addTrace(const Trace &T) {
  for (const MemoryRecord &R : T.records())
    addRef(R.Addr);
}

void MrcEngine::addTraceSampledParallel(const Trace &T, ThreadPool &Pool,
                                        unsigned Helpers) {
  assert(Opts.Sampled && "parallel sampling on an exact engine");
  const std::span<const MemoryRecord> Records = T.records();
  TotalRefs += Records.size();
  // One task per hash-space shard; each scans the whole stream and
  // keeps its prefix. The scan is hash + compare per record — cheap
  // next to the analyzer work behind the filter — and a shard's state
  // sees exactly the substream it would see under streaming addRef, in
  // the same order, so the result is identical at every helper count.
  Pool.parallelFor(SampledShards.size(), Helpers, [&](size_t P) {
    SampledShard &Shard = SampledShards[P];
    for (const MemoryRecord &R : Records) {
      const uint64_t Line = Opts.Reference.lineAddrOf(R.Addr);
      const uint64_t Hash = hashLine(Line);
      if ((LgSampleShards == 0 ? 0 : Hash >> (64 - LgSampleShards)) != P)
        continue;
      Shard.addLine(Hash << LgSampleShards, Line, numSampleShards());
    }
  });
}

MissRatioCurve MrcEngine::take() {
  MissRatioCurve Curve;
  Curve.TotalRefs = TotalRefs;
  Curve.Reference = Opts.Reference;
  Curve.MaxWays = Opts.MaxWays;
  Curve.Sampled = Opts.Sampled;
  if (Opts.Sampled) {
    // Per-shard inserts were already scaled to full-stream units, so
    // the merge is a plain sum. The reported rate is the merged
    // filter's tracked fraction of line space: each shard contributes
    // its threshold rate over a 1/NumShards slice. Equals the single
    // filter's threshold rate at one shard.
    double TrackedFraction = 0.0;
    for (SampledShard &Shard : SampledShards) {
      Curve.ColdWeight += Shard.ScaledCold;
      Curve.StackDistances.merge(Shard.ScaledStack);
      TrackedFraction +=
          Shard.rate() / static_cast<double>(numSampleShards());
    }
    Curve.HasPerSet = false;
    Curve.FinalRate = TrackedFraction;
  } else {
    Curve.ColdWeight = Global.coldCount();
    Curve.StackDistances = Global.distances();
    Curve.PerSetDistances = PerSet.distances();
    Curve.PerSetCold = PerSet.coldCount();
    Curve.HasPerSet = true;
    Curve.FinalRate = 1.0;
  }
  return Curve;
}

MissRatioCurve MrcEngine::compute(const Trace &T, const MrcOptions &Opts,
                                  const SimContext &Ctx) {
  const std::span<const MemoryRecord> Records = T.records();
  const uint64_t NumSets = Opts.Reference.numSets();

  // Sampled mode parallelizes across its hash-space sub-filters (when
  // configured with more than one); each is order-dependent internally
  // but independent of its siblings, so the curve matches streaming.
  if (Opts.Sampled) {
    MrcEngine Engine(Opts);
    if (Engine.numSampleShards() >= 2 && Ctx.Pool &&
        Records.size() >= Ctx.MinRefsToShard) {
      const unsigned Helpers =
          Ctx.Budget ? Ctx.Budget->tryAcquire(Ctx.Pool->workerCount())
                     : Ctx.Pool->workerCount();
      if (Helpers > 0) {
        Engine.addTraceSampledParallel(T, *Ctx.Pool, Helpers);
        if (Ctx.Budget)
          Ctx.Budget->release(Helpers);
        return Engine.take();
      }
    }
    Engine.addTrace(T);
    return Engine.take();
  }

  // Tiny traces don't amortize a partition.
  const bool Shardable =
      Ctx.Pool && NumSets >= 2 && Records.size() >= Ctx.MinRefsToShard;
  if (!Shardable) {
    MrcEngine Engine(Opts);
    Engine.addTrace(T);
    return Engine.take();
  }

  const unsigned Helpers = Ctx.Budget
                               ? Ctx.Budget->tryAcquire(Ctx.Pool->workerCount())
                               : Ctx.Pool->workerCount();
  const unsigned Shards = static_cast<unsigned>(std::min<uint64_t>(
      NumSets, Ctx.Shards != 0 ? Ctx.Shards : Helpers + 1));
  if (Shards <= 1 && Helpers == 0) {
    MrcEngine Engine(Opts);
    Engine.addTrace(T);
    return Engine.take();
  }
  if (Ctx.Stats && Shards > 1) {
    Ctx.Stats->ShardedSims.fetch_add(1, std::memory_order_relaxed);
    if (Helpers == 0)
      Ctx.Stats->UnhelpedShardedSims.fetch_add(1, std::memory_order_relaxed);
  }

  const std::vector<SetRange> Plan = planShards(NumSets, Shards);
  // Served from the route-once cache when the batch runner registered
  // this trace: an MRC pass at the reference geometry shares its
  // partition with every simulation sweeping the same index geometry.
  const PartitionCache::PartitionPtr Parts =
      routeOrReuse(Records, Opts.Reference, Plan, Ctx, Helpers);

  // Task 0 is the whole-stream global pass (the Mattson curve cannot
  // decompose by set); tasks 1..K are the per-set shards. Each shard's
  // refs arrive in ascending global order from the partition, so every
  // per-shard histogram matches what the sequential pass contributes
  // for those sets, and the merged result is identical at every shard
  // count and helper count.
  ReuseDistanceAnalyzer Global;
  std::vector<std::unique_ptr<PerSetStackPass>> Passes(Plan.size());
  Ctx.Pool->parallelFor(Plan.size() + 1, Helpers, [&](size_t Task) {
    if (Task == 0) {
      for (const MemoryRecord &R : Records)
        Global.access(Opts.Reference.lineAddrOf(R.Addr));
      return;
    }
    const size_t S = Task - 1;
    auto Pass =
        std::make_unique<PerSetStackPass>(Opts.Reference, Opts.MaxWays, Plan[S]);
    for (const ShardRef &Ref : Parts->shard(S))
      Pass->addRef(Ref.Addr);
    Passes[S] = std::move(Pass);
  });
  if (Ctx.Budget && Helpers > 0)
    Ctx.Budget->release(Helpers);

  MissRatioCurve Curve;
  Curve.TotalRefs = Records.size();
  Curve.Reference = Opts.Reference;
  Curve.MaxWays = Opts.MaxWays;
  Curve.Sampled = false;
  Curve.ColdWeight = Global.coldCount();
  Curve.StackDistances = Global.distances();
  Curve.HasPerSet = true;
  for (const std::unique_ptr<PerSetStackPass> &Pass : Passes) {
    Curve.PerSetDistances.merge(Pass->distances());
    Curve.PerSetCold += Pass->coldCount();
  }
  return Curve;
}
