//===- sim/CacheHierarchy.h - Multi-level cache simulation -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-level (L1/L2/LLC) cache simulation. Used by the benchmark
/// harness to report per-level miss reductions after padding
/// optimizations (paper Table 3). Misses propagate downward; dirty
/// evictions are written back to the next level.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_CACHEHIERARCHY_H
#define CCPROF_SIM_CACHEHIERARCHY_H

#include "sim/Cache.h"

#include <string>
#include <vector>

namespace ccprof {

/// One configured level of a hierarchy.
struct CacheLevelConfig {
  std::string Name; ///< e.g. "L1", "L2", "LLC".
  CacheGeometry Geometry;
  ReplacementKind Policy = ReplacementKind::Lru;
};

/// Result of one hierarchy access: the deepest level that was reached.
/// Level 0 hit means L1 hit; HitLevel == numLevels() means main memory.
struct HierarchyAccessResult {
  uint32_t HitLevel = 0;
  bool MissedL1 = false;
};

/// An inclusive-fill multi-level cache: on an Lk miss the request probes
/// L(k+1); fills happen at every probed level. Dirty victims are written
/// back (counted as writes) to the next level.
class CacheHierarchy {
public:
  explicit CacheHierarchy(std::vector<CacheLevelConfig> Configs);

  /// Simulates one reference; \returns the level that served it.
  HierarchyAccessResult access(uint64_t Addr, bool IsWrite = false);

  size_t numLevels() const { return Levels.size(); }
  const Cache &level(size_t Index) const { return Levels[Index]; }
  const std::string &levelName(size_t Index) const { return Names[Index]; }

  /// Total misses at level \p Index (fills from below plus writebacks
  /// that missed).
  uint64_t missesAt(size_t Index) const { return Levels[Index].stats().Misses; }

  /// Accesses that reached main memory.
  uint64_t memoryAccesses() const { return MemoryAccesses; }

  void reset();

private:
  std::vector<Cache> Levels;
  std::vector<std::string> Names;
  uint64_t MemoryAccesses = 0;
};

} // namespace ccprof

#endif // CCPROF_SIM_CACHEHIERARCHY_H
