//===- sim/ReferenceCache.cpp - Scalar reference cache model --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/ReferenceCache.h"

#include <algorithm>
#include <bit>

using namespace ccprof;

ReferenceCache::ReferenceCache(CacheGeometry Geometry, ReplacementKind Policy,
                               uint64_t RngSeed)
    : Geometry(Geometry), Policy(Policy),
      Ways(Geometry.numSets() * Geometry.associativity()),
      SetMisses(Geometry.numSets(), 0), Rng(RngSeed) {
  assert((Policy != ReplacementKind::TreePlru ||
          std::has_single_bit(Geometry.associativity())) &&
         "tree-PLRU requires power-of-two associativity");
  assert(Geometry.associativity() <= 64 &&
         "tree-PLRU bit storage limits associativity to 64");
  if (Policy == ReplacementKind::TreePlru)
    PlruBits.assign(Geometry.numSets(), 0);
}

CacheAccessResult ReferenceCache::access(uint64_t Addr, bool IsWrite) {
  ++Tick;
  ++Stats.Accesses;

  const uint64_t SetIndex = Geometry.setIndexOf(Addr);
  const uint64_t Tag = Geometry.tagOf(Addr);
  const uint32_t Assoc = Geometry.associativity();

  CacheAccessResult Result;
  Result.SetIndex = SetIndex;

  // Hit path: find the matching valid way.
  uint32_t FreeWay = Assoc; // first invalid way, if any
  for (uint32_t W = 0; W < Assoc; ++W) {
    Way &Line = wayAt(SetIndex, W);
    if (Line.Valid && Line.Tag == Tag) {
      ++Stats.Hits;
      Line.Dirty |= IsWrite;
      touchWay(SetIndex, W);
      Result.Hit = true;
      return Result;
    }
    if (!Line.Valid && FreeWay == Assoc)
      FreeWay = W;
  }

  // Miss path: fill into a free way or evict a victim.
  ++Stats.Misses;
  ++SetMisses[SetIndex];

  uint32_t Victim = FreeWay;
  if (Victim == Assoc) {
    Victim = chooseVictim(SetIndex);
    Way &Old = wayAt(SetIndex, Victim);
    Result.EvictedLine =
        Geometry.lineAddrOf(Geometry.lineStartAddr(Old.Tag, SetIndex));
    Result.EvictedDirty = Old.Dirty;
    ++Stats.Evictions;
    if (Old.Dirty)
      ++Stats.Writebacks;
  }

  Way &Line = wayAt(SetIndex, Victim);
  Line.Tag = Tag;
  Line.Valid = true;
  Line.Dirty = IsWrite;
  Line.InsertedAt = Tick;
  touchWay(SetIndex, Victim);
  return Result;
}

bool ReferenceCache::probe(uint64_t Addr) const {
  const uint64_t SetIndex = Geometry.setIndexOf(Addr);
  const uint64_t Tag = Geometry.tagOf(Addr);
  for (uint32_t W = 0, E = Geometry.associativity(); W < E; ++W) {
    const Way &Line = wayAt(SetIndex, W);
    if (Line.Valid && Line.Tag == Tag)
      return true;
  }
  return false;
}

void ReferenceCache::flush() {
  for (Way &Line : Ways)
    Line = Way{};
  std::fill(PlruBits.begin(), PlruBits.end(), 0);
  Tick = 0;
}

void ReferenceCache::resetStats() {
  Stats = CacheStats{};
  std::fill(SetMisses.begin(), SetMisses.end(), 0);
}

uint64_t ReferenceCache::missesOnSet(uint64_t SetIndex) const {
  assert(SetIndex < SetMisses.size() && "set index out of range");
  return SetMisses[SetIndex];
}

uint32_t ReferenceCache::chooseVictim(uint64_t SetIndex) {
  const uint32_t Assoc = Geometry.associativity();
  switch (Policy) {
  case ReplacementKind::Lru: {
    uint32_t Victim = 0;
    uint64_t Oldest = wayAt(SetIndex, 0).LastUse;
    for (uint32_t W = 1; W < Assoc; ++W) {
      uint64_t Use = wayAt(SetIndex, W).LastUse;
      if (Use < Oldest) {
        Oldest = Use;
        Victim = W;
      }
    }
    return Victim;
  }
  case ReplacementKind::Fifo: {
    uint32_t Victim = 0;
    uint64_t Oldest = wayAt(SetIndex, 0).InsertedAt;
    for (uint32_t W = 1; W < Assoc; ++W) {
      uint64_t Inserted = wayAt(SetIndex, W).InsertedAt;
      if (Inserted < Oldest) {
        Oldest = Inserted;
        Victim = W;
      }
    }
    return Victim;
  }
  case ReplacementKind::TreePlru: {
    // Walk the implicit binary tree from the root following the
    // cold-direction bits. Node numbering: node I's children are 2I+1
    // and 2I+2; leaves correspond to ways in order.
    uint64_t Bits = PlruBits[SetIndex];
    uint32_t Levels = static_cast<uint32_t>(std::countr_zero(Assoc));
    uint32_t Node = 0;
    for (uint32_t L = 0; L < Levels; ++L) {
      bool GoRight = (Bits >> Node) & 1;
      Node = 2 * Node + 1 + (GoRight ? 1 : 0);
    }
    return Node - (Assoc - 1);
  }
  case ReplacementKind::Random:
    return static_cast<uint32_t>(Rng.nextBounded(Assoc));
  }
  assert(false && "unknown replacement policy");
  return 0;
}

void ReferenceCache::touchWay(uint64_t SetIndex, uint32_t WayIndex) {
  Way &Line = wayAt(SetIndex, WayIndex);
  Line.LastUse = Tick;
  if (Policy != ReplacementKind::TreePlru)
    return;
  // Flip every node on the root-to-leaf path to point away from this way.
  const uint32_t Assoc = Geometry.associativity();
  uint64_t Bits = PlruBits[SetIndex];
  uint32_t Node = WayIndex + (Assoc - 1);
  while (Node != 0) {
    uint32_t Parent = (Node - 1) / 2;
    bool CameFromRight = (Node == 2 * Parent + 2);
    // Point the parent at the *other* child.
    if (CameFromRight)
      Bits &= ~(uint64_t{1} << Parent);
    else
      Bits |= (uint64_t{1} << Parent);
    Node = Parent;
  }
  PlruBits[SetIndex] = Bits;
}
