//===- sim/MachineConfig.h - Evaluation machine descriptions ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-hierarchy descriptions of the two evaluation machines from the
/// paper (Sec. 5): an Intel Broadwell Xeon E7-4830v4 and an Intel Skylake
/// Xeon E3-1240v5. Both have 32KiB 8-way private L1D and 256KiB private
/// L2 per core; Broadwell has a 35MiB shared LLC, Skylake 8MiB. All
/// RCD analysis in the paper (and here) runs against the L1: 8-way,
/// 64 sets, 64B lines.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_SIM_MACHINECONFIG_H
#define CCPROF_SIM_MACHINECONFIG_H

#include "sim/CacheHierarchy.h"

#include <string>
#include <vector>

namespace ccprof {

/// A named per-core cache hierarchy description.
struct MachineConfig {
  std::string Name;
  std::vector<CacheLevelConfig> Levels;

  /// Geometry of the first (L1) level.
  const CacheGeometry &l1Geometry() const { return Levels.front().Geometry; }

  /// Builds a fresh hierarchy simulator for this machine.
  CacheHierarchy makeHierarchy() const { return CacheHierarchy(Levels); }
};

/// Intel Broadwell Xeon E7-4830v4: 32KiB/8-way L1D, 256KiB/8-way L2,
/// 35MiB/20-way shared LLC.
MachineConfig broadwellConfig();

/// Intel Skylake Xeon E3-1240v5: 32KiB/8-way L1D, 256KiB/4-way L2,
/// 8MiB/16-way shared LLC.
MachineConfig skylakeConfig();

/// The L1 geometry the paper measures RCD against: 32KiB, 8-way, 64B
/// lines, 64 sets.
CacheGeometry paperL1Geometry();

} // namespace ccprof

#endif // CCPROF_SIM_MACHINECONFIG_H
