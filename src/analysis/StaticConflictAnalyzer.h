//===- analysis/StaticConflictAnalyzer.h - Static prediction ---*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts cache-set conflicts from a StaticAccessModel alone — no
/// trace, no simulation. For every loop the analyzer:
///
///  1. places the model's allocations on the canonical layout (the same
///     one canonicalizeTrace() rebases traces onto, so predicted set
///     indices are directly comparable to measured ones);
///  2. enumerates each phase's descriptors as one proportionally
///     interleaved address stream and pushes it through a
///     SetOccupancyTracker — a sliding window of numSets x ways
///     accesses tracking distinct lines per set (the generalization of
///     PaddingAdvisor's windowed column-sweep measures);
///  3. predicts an access to *miss* when its line is not predicted
///     resident: not among the set's `ways` most recently accessed
///     lines — exact LRU residency over the model stream. A set is a
///     *victim* of a loop when a miss lands on a line still inside the
///     sliding window — the set's pressure evicted a recently used
///     line, i.e. genuine thrash; out-of-window misses are
///     compulsory/capacity;
///  4. feeds the predicted miss stream through the very RcdProfile the
///     measured pipeline uses, so the predicted RCD distribution and
///     contribution factor come out of identical machinery: conflict
///     misses concentrate on few sets and produce short RCDs, while
///     compulsory/capacity misses of well-spread walks rotate over all
///     sets and produce RCD ~ numSets (paper Observation 2);
///  5. feeds the predicted contribution factor through the same
///     logistic classifier the measured pipeline uses.
///
/// The model is deliberately coarser than simulation — see DESIGN.md
/// §8 for its divergences — but it is O(stream length) with stream
/// lengths capped per phase, and it needs nothing but the workload's
/// declared strides.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_ANALYSIS_STATICCONFLICTANALYZER_H
#define CCPROF_ANALYSIS_STATICCONFLICTANALYZER_H

#include "analysis/AccessModel.h"
#include "analysis/ReuseProfileEstimator.h"
#include "core/ConflictClassifier.h"
#include "core/ProgramStructure.h"
#include "sim/CacheGeometry.h"
#include "sim/MachineConfig.h"
#include "sim/MrcModel.h"
#include "support/Histogram.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccprof {

/// One sampled point of an analytically predicted miss-ratio curve.
struct PredictedMrcPoint {
  CacheGeometry Geometry{32 * 1024, 64, 8};
  double MissRatio = 0.0;
};

/// Per-(loop, array) slice of a prediction.
struct ArrayFootprint {
  std::string Array;
  uint64_t Accesses = 0;
  uint64_t DistinctLines = 0;
  uint64_t SetsTouched = 0;
  uint64_t PredictedConflictMisses = 0;
};

/// Static prediction for one loop (or loop-free context).
struct LoopPrediction {
  std::string Location; ///< "file:headerLine", as measured reports use.
  uint32_t HeaderLine = 0;
  uint64_t Accesses = 0;
  uint64_t DistinctLines = 0;
  uint64_t SetsTouched = 0;
  /// Sets predicted to thrash under this loop (a predicted miss hit a
  /// line that was still inside the window — evicted by set pressure,
  /// not by capacity), ascending.
  std::vector<uint32_t> VictimSets;
  /// Peak in-window distinct-line occupancy per set, from the loop's
  /// phase (shared with co-phased loops).
  std::vector<uint32_t> PeakSetOccupancy;
  /// Distinct lines of this loop's accesses per set (the compulsory
  /// baseline measured per-set misses are compared against).
  std::vector<uint64_t> LinesPerSet;
  /// Predicted misses per set: out-of-window lines plus accesses to
  /// oversubscribed sets.
  std::vector<uint64_t> PredictedMissesPerSet;
  /// Predicted non-compulsory misses (re-fetches of evicted lines and
  /// oversubscription thrash).
  uint64_t PredictedConflictMisses = 0;
  /// Predicted compulsory misses (first touch of a line).
  uint64_t PredictedColdMisses = 0;
  /// Predicted RCD distribution, computed by RcdProfile over the
  /// predicted miss stream exactly as the measured pipeline computes it
  /// over simulated misses.
  Histogram PredictedRcd;
  double PredictedMedianRcd = 0.0;
  double PredictedContributionFactor = 0.0;
  /// Share of the whole model's predicted misses.
  double MissShare = 0.0;
  double ConflictProbability = 0.0;
  bool Significant = false;
  /// Classifier verdict AND significance, like the measured pipeline.
  bool ConflictPredicted = false;
  /// True when every allocation this loop touches is registered (its
  /// set phases are exact, not synthetic placements).
  bool ExactPlacement = true;
  /// True when the phase stream was cut off at MaxStreamAccesses.
  bool Truncated = false;
  std::vector<ArrayFootprint> Arrays;
  /// Analytic reuse-distance profile of this loop's descriptors
  /// (ReuseProfileEstimator), queryable at any geometry.
  ReuseProfile Reuse;
  /// Reuse profile read out at Options::MrcGeometries through the
  /// shared Hill–Smith model — the loop's predicted MRC.
  std::vector<PredictedMrcPoint> PredictedMrc;
};

/// Whole-model prediction.
struct StaticAnalysisResult {
  CacheGeometry Geometry{32 * 1024, 64, 8};
  uint64_t RcdThreshold = 0;
  bool ModelComplete = false;
  uint64_t TotalAccesses = 0;
  uint64_t PredictedMisses = 0;
  /// Predictions, highest predicted-miss share first.
  std::vector<LoopPrediction> Loops;
  /// True when the reuse-profile estimator produced a profile (the
  /// model was non-empty); per-loop Reuse/PredictedMrc are only
  /// meaningful when set.
  bool ReuseEstimated = false;
  /// True when every estimated placement was exact (all allocations
  /// registered) — the precondition for treating a large
  /// predicted-vs-measured MRC divergence as a contradiction.
  bool ReuseExactPlacement = true;
  /// Whole-program analytic reuse profile and its predicted MRC.
  ReuseProfile ProgramReuse;
  std::vector<PredictedMrcPoint> ProgramMrc;

  /// True when the model is complete and no *significant* loop shows
  /// conflict evidence — a classifier conflict verdict or in-window
  /// thrash victims: simulation provably (up to model fidelity) finds
  /// no conflicts. The significance gate mirrors the measured
  /// pipeline, which also reports sub-threshold loops as clean
  /// regardless of their RCD shape, so marginal loops can never flip a
  /// measured verdict and must not block screening.
  bool conflictFree() const {
    if (!ModelComplete)
      return false;
    for (const LoopPrediction &Loop : Loops)
      if (Loop.ConflictPredicted ||
          (Loop.Significant && !Loop.VictimSets.empty()))
        return false;
    return true;
  }

  const LoopPrediction *byLocation(const std::string &Location) const {
    for (const LoopPrediction &Loop : Loops)
      if (Loop.Location == Location)
        return &Loop;
    return nullptr;
  }
};

class StaticConflictAnalyzer {
public:
  struct Options {
    CacheGeometry Geometry = paperL1Geometry();
    uint64_t RcdThreshold = ConflictClassifier::DefaultRcdThreshold;
    /// Same significance gate as ProfileOptions.
    double SignificanceThreshold = 0.01;
    /// Count store accesses as predicted misses. Default matches
    /// MissStreamOptions::IncludeStores: stores still occupy the
    /// window (they hold cache lines) but do not emit misses, so
    /// predictions stay comparable to the simulated miss stream.
    bool IncludeStores = false;
    /// Cap on enumerated accesses per phase; outer trip counts are
    /// halved until a phase fits (Truncated is set on its loops).
    uint64_t MaxStreamAccesses = uint64_t{1} << 23;
    /// Geometries the analytic reuse profiles are read out at (the
    /// per-loop and program PredictedMrc points). The profile itself
    /// is geometry-free; this only selects the sampled points.
    std::vector<CacheGeometry> MrcGeometries = defaultMrcSweepGeometries();
  };

  StaticConflictAnalyzer() : StaticConflictAnalyzer(Options{}) {}
  explicit StaticConflictAnalyzer(Options Opts,
                                  ConflictClassifier Classifier =
                                      ConflictClassifier::pretrained());

  /// Analyzes \p Model. When \p Structure is given, descriptor lines
  /// resolve to innermost loops exactly like measured samples do;
  /// without it each access line forms its own context.
  StaticAnalysisResult analyze(const StaticAccessModel &Model,
                               const ProgramStructure *Structure) const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
  ConflictClassifier Classifier;
};

} // namespace ccprof

#endif // CCPROF_ANALYSIS_STATICCONFLICTANALYZER_H
