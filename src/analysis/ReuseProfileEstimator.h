//===- analysis/ReuseProfileEstimator.h - Analytic reuse profiles -*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytic (trace-free) reuse-distance profiles for affine access
/// models, after the static reuse-profile construction of Razzak et
/// al. (arXiv:2411.13854, arXiv:2509.18684). For every descriptor the
/// estimator classifies each loop level against the line size:
///
///  * zero-stride levels repeat the inner footprint (temporal reuse:
///    every re-execution re-touches the inner iteration's distinct
///    lines at a distance of one interleaved inner footprint);
///  * strides below the current run length slide the footprint
///    (spatial reuse: |stride|/lineBytes new lines per iteration, the
///    rest re-touched one iteration apart — sub-line strides collapse
///    almost entirely onto the resident lines);
///  * larger strides touch disjoint lines (no reuse at that level);
///  * stencil PointOffsetsBytes fold into per-iteration line sets
///    ("lanes"), and lanes that are copies of each other shifted by a
///    level's stride chain: the trailing lanes re-touch the leading
///    lane's lines with a one-iteration lag instead of introducing
///    new lines.
///
/// Reuse *distances* come from interleaved footprint accounting: a gap
/// of g accesses of one descriptor spans g * (A_d'/A_d) accesses of
/// every co-phased descriptor d', and the distance is the union of
/// their footprints over that window (descriptors walking the same
/// lines of one allocation are deduplicated; per-allocation sums are
/// capped at the allocation's line count). Cross-phase group reuse is
/// resolved against a most-recent-toucher registry of byte intervals:
/// a first touch of bytes last touched k phases ago lies one
/// capped-per-allocation sum of the intervening phase footprints away.
///
/// The result is a Histogram-compatible global stack-distance profile
/// (distances in distinct lines, matching sim/ReuseDistance semantics)
/// per source line, per loop, and whole-program, which reads out to a
/// predicted miss ratio for any cache geometry through the same
/// sim/MrcModel Hill–Smith code path the measured MRC engine uses.
///
/// Documented approximations (the error margin screening must respect;
/// see DESIGN.md §11): proportional phase interleaving, amortized
/// fractional line counts for sub-line strides, point-mass distances at
/// the mean interleaved gap, cold classification of same-phase
/// cross-walk aliasing, and uncapped growth *within* one allocation's
/// cross-phase window. Validated against exact traced curves to a max
/// absolute miss-ratio error of 0.05 across the default sweep
/// geometries on the six case-study workloads (bench/static_mrc).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_ANALYSIS_REUSEPROFILEESTIMATOR_H
#define CCPROF_ANALYSIS_REUSEPROFILEESTIMATOR_H

#include "analysis/AccessModel.h"
#include "sim/CacheGeometry.h"
#include "support/Histogram.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccprof {

/// A reuse-distance profile: the static analogue of the measured MRC
/// engine's (stack histogram, cold weight, total refs) triple.
struct ReuseProfile {
  /// Finite stack distances in distinct lines (sim/ReuseDistance
  /// semantics: distinct *other* lines between use and reuse).
  Histogram Stack;
  /// First-touch references (always misses).
  uint64_t ColdRefs = 0;
  /// Total references described; >= ColdRefs + Stack.total(), with the
  /// (rounding) remainder treated as cold by the readout.
  uint64_t TotalRefs = 0;

  /// Predicted miss ratio at \p Geometry through the shared Hill–Smith
  /// model (sim/MrcModel) — the same code path measured curves use.
  double missRatioAt(const CacheGeometry &Geometry) const;

  /// Merges \p Other into this profile.
  void merge(const ReuseProfile &Other);
};

/// Whole-model estimate: one profile per descriptor source line plus
/// the whole-program aggregate.
struct ReuseProfileEstimate {
  /// False when the model was empty (nothing to estimate).
  bool Valid = false;
  /// True when every allocation placement was exact (all registered).
  bool ExactPlacement = true;
  ReuseProfile Program;
  /// Keyed by descriptor source line; callers join lines into loops.
  std::map<uint32_t, ReuseProfile> PerLine;
};

class ReuseProfileEstimator {
public:
  struct Options {
    /// Line granularity of the profile. Distances are counted in
    /// distinct lines of this size; geometries queried against the
    /// profile should use the same line size.
    uint32_t LineBytes = 64;
  };

  ReuseProfileEstimator() : Opts{} {}
  explicit ReuseProfileEstimator(Options Opts) : Opts(Opts) {}

  /// Derives the analytic reuse profile of \p Model. Pure computation
  /// over the descriptor structure: no trace, no per-access streaming;
  /// cost is O(descriptors * levels + phases * allocations).
  ReuseProfileEstimate estimate(const StaticAccessModel &Model) const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
};

} // namespace ccprof

#endif // CCPROF_ANALYSIS_REUSEPROFILEESTIMATOR_H
