//===- analysis/AccessModel.h - Static access descriptors ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic form of a workload's memory behaviour: per-allocation
/// sizes plus, for every instrumented access site, the affine structure
/// of the addresses it touches (start offset, per-loop-level trip count
/// and stride). This is what SyntheticCodeGen-backed workloads can
/// state about themselves without running — the input of the static
/// conflict analyzer, mirroring how classic analytical models (Cache
/// Miss Equations) describe affine loop nests.
///
/// Descriptors attach to LoopNest loops through their source line: the
/// analyzer resolves each descriptor's Line against the program
/// structure exactly the way measured samples are attributed, so static
/// and measured reports speak about the same "file:headerLine" loops.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_ANALYSIS_ACCESSMODEL_H
#define CCPROF_ANALYSIS_ACCESSMODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace ccprof {

/// One level of the loop nest enclosing an access, outermost first.
/// The access's address advances by StrideBytes each iteration of the
/// level; a zero stride means the level repeats the same addresses
/// (e.g. a temporal outer loop).
struct AccessLoopLevel {
  uint64_t TripCount = 1;
  int64_t StrideBytes = 0;
};

/// The address stream of one instrumented access site: an affine walk
/// over an allocation.
struct AccessDescriptor {
  /// Registered allocation name ("reference[]") this access walks, as
  /// recorded in the trace; must match a StaticAccessModel allocation.
  std::string Array;
  /// Source line of the access — the attachment point to the loop
  /// forest (same line the recorded SiteId carries).
  uint32_t Line = 0;
  uint32_t ElementBytes = 1;
  /// Byte offset of the first access inside the allocation.
  uint64_t StartOffset = 0;
  bool IsStore = false;
  /// Descriptors with equal Phase execute interleaved (the same
  /// innermost program region); distinct phases run one after another.
  /// Windowed occupancy is only meaningful within a phase.
  uint32_t Phase = 0;
  /// The enclosing loop levels, outermost first. An empty vector means
  /// a single access.
  std::vector<AccessLoopLevel> Levels;
  /// Byte offsets emitted per innermost iteration (relative to the
  /// affine position): a multi-point stencil touches several addresses
  /// per iteration. Defaults to the single point {0}.
  std::vector<int64_t> PointOffsetsBytes = {0};

  /// Total accesses the descriptor emits (product of trip counts times
  /// points per iteration), saturating at UINT64_MAX.
  uint64_t totalAccesses() const {
    uint64_t Total = PointOffsetsBytes.empty() ? 1 : PointOffsetsBytes.size();
    for (const AccessLoopLevel &Level : Levels) {
      if (Level.TripCount != 0 && Total > UINT64_MAX / Level.TripCount)
        return UINT64_MAX;
      Total *= Level.TripCount;
    }
    return Total;
  }
};

/// One allocation the model knows about. Registered allocations appear
/// in the trace's allocation registry in this order and receive exact
/// canonical bases; unregistered ones (stack tiles) are placed on
/// synthetic pages — their *intra*-buffer layout is exact but their
/// set phase relative to other buffers is approximate, which the
/// consistency checker treats as reduced evidence.
struct ModeledAllocation {
  std::string Name;
  uint64_t SizeBytes = 0;
  bool Registered = true;
};

/// Everything a workload states statically about one variant.
struct StaticAccessModel {
  std::string SourceFile;
  /// True when the model covers every recorded access of the variant —
  /// the precondition for using a clean static verdict to skip
  /// simulation (--static-screen).
  bool Complete = false;
  /// Allocations in registration order (registered ones first is not
  /// required; order among registered entries must match the trace).
  std::vector<ModeledAllocation> Allocations;
  std::vector<AccessDescriptor> Accesses;

  bool empty() const { return Accesses.empty(); }

  const ModeledAllocation *findAllocation(const std::string &Name) const {
    for (const ModeledAllocation &Alloc : Allocations)
      if (Alloc.Name == Name)
        return &Alloc;
    return nullptr;
  }
};

} // namespace ccprof

#endif // CCPROF_ANALYSIS_ACCESSMODEL_H
