//===- analysis/ConsistencyChecker.h - Static vs measured ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins a static conflict prediction with a measured profile (live or
/// loaded from a ProfileArtifact) loop by loop and classifies each:
///
///  * Confirmed      — both sides agree (conflict or clean);
///  * StaticOnly     — the model predicts a conflict the measurement
///                     does not show (over-approximate model, or the
///                     measured run never exercised the pattern);
///  * MeasuredOnly   — the measurement shows a conflict the model has
///                     no descriptors for, or where placement was only
///                     approximate (reduced static evidence);
///  * Contradicted   — the measurement shows a conflict in a loop the
///                     model covers with exact placement yet predicts
///                     clean: the model itself is wrong (a mis-stated
///                     stride, trip count, or allocation size).
///
/// Contradictions are the actionable output: a static model that
/// disagrees with ground truth under exact placement is a bug in the
/// model, not a modeling limitation.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_ANALYSIS_CONSISTENCYCHECKER_H
#define CCPROF_ANALYSIS_CONSISTENCYCHECKER_H

#include "analysis/StaticConflictAnalyzer.h"
#include "core/Profiler.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccprof {

enum class ConsistencyVerdict {
  ConfirmedConflict,
  ConfirmedClean,
  StaticOnly,
  MeasuredOnly,
  Contradicted,
};

/// Name of \p Verdict ("confirmed-conflict", "static-only", ...).
const char *consistencyVerdictName(ConsistencyVerdict Verdict);

/// One loop's join of prediction and measurement.
struct LoopConsistency {
  std::string Location;
  ConsistencyVerdict Verdict = ConsistencyVerdict::ConfirmedClean;
  bool HasStatic = false;
  bool HasMeasured = false;
  bool StaticConflict = false;
  bool MeasuredConflict = false;
  double StaticContributionFactor = 0.0;
  double MeasuredContributionFactor = 0.0;
  /// Jaccard similarity of the predicted and measured victim-set
  /// lists, with the *same* imbalance-bar rule applied to both per-set
  /// miss vectors (time-rotating conflicts spread their victims over
  /// the whole run on both sides, so comparing the analyzer's
  /// instantaneous occupancy victims against whole-run measured
  /// imbalance would mis-score them). 1.0 when both are empty.
  double VictimSetAgreement = 1.0;
  /// Measured victim sets (per-set misses above the imbalance bar).
  std::vector<uint32_t> MeasuredVictimSets;
  std::string Note;
};

/// Whole-run consistency report.
struct ConsistencyReport {
  std::vector<LoopConsistency> Loops;
  uint64_t Confirmed = 0;
  uint64_t StaticOnly = 0;
  uint64_t MeasuredOnly = 0;
  uint64_t Contradicted = 0;

  /// True when no loop contradicts the model.
  bool consistent() const { return Contradicted == 0; }

  const LoopConsistency *byLocation(const std::string &Location) const {
    for (const LoopConsistency &Loop : Loops)
      if (Loop.Location == Location)
        return &Loop;
    return nullptr;
  }
};

class ConsistencyChecker {
public:
  struct Options {
    /// A set is a measured victim when its miss count exceeds this
    /// multiple of the loop's mean per-set misses (the imbalance bar:
    /// balanced walks put ~1x the mean on every set).
    double VictimMissFactor = 2.0;
    /// Measured loops below this miss contribution are ignored — the
    /// same significance idea the profiler applies.
    double MinMeasuredContribution = 0.01;
  };

  ConsistencyChecker() : Opts{} {}
  explicit ConsistencyChecker(Options Opts) : Opts(Opts) {}

  /// The imbalance-bar rule shared by both sides of the victim-set
  /// comparison: sets whose miss count exceeds VictimMissFactor x
  /// (mean misses per utilized set).
  std::vector<uint32_t>
  victimSetsFromMisses(const std::vector<uint64_t> &PerSetMisses) const;

  /// Derives the measured victim sets of \p Report via
  /// victimSetsFromMisses over its per-set miss counts.
  std::vector<uint32_t>
  measuredVictimSets(const LoopConflictReport &Report) const;

  ConsistencyReport check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured) const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
};

} // namespace ccprof

#endif // CCPROF_ANALYSIS_CONSISTENCYCHECKER_H
