//===- analysis/ConsistencyChecker.h - Static vs measured ------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins a static conflict prediction with a measured profile (live or
/// loaded from a ProfileArtifact) loop by loop and classifies each:
///
///  * Confirmed      — both sides agree (conflict or clean);
///  * StaticOnly     — the model predicts a conflict the measurement
///                     does not show (over-approximate model, or the
///                     measured run never exercised the pattern);
///  * MeasuredOnly   — the measurement shows a conflict the model has
///                     no descriptors for, or where placement was only
///                     approximate (reduced static evidence);
///  * Contradicted   — the measurement shows a conflict in a loop the
///                     model covers with exact placement yet predicts
///                     clean: the model itself is wrong (a mis-stated
///                     stride, trip count, or allocation size).
///
/// Contradictions are the actionable output: a static model that
/// disagrees with ground truth under exact placement is a bug in the
/// model, not a modeling limitation.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_ANALYSIS_CONSISTENCYCHECKER_H
#define CCPROF_ANALYSIS_CONSISTENCYCHECKER_H

#include "analysis/StaticConflictAnalyzer.h"
#include "core/Profiler.h"
#include "sim/MrcEngine.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccprof {

enum class ConsistencyVerdict {
  ConfirmedConflict,
  ConfirmedClean,
  StaticOnly,
  MeasuredOnly,
  Contradicted,
};

/// Name of \p Verdict ("confirmed-conflict", "static-only", ...).
const char *consistencyVerdictName(ConsistencyVerdict Verdict);

/// Inverse of consistencyVerdictName: parses \p Name into \p Out.
/// Returns false (leaving \p Out untouched) for unknown names, so
/// readers of serialized reports can reject rather than mis-classify.
bool consistencyVerdictFromName(const std::string &Name,
                                ConsistencyVerdict &Out);

/// One loop's join of prediction and measurement.
struct LoopConsistency {
  std::string Location;
  ConsistencyVerdict Verdict = ConsistencyVerdict::ConfirmedClean;
  bool HasStatic = false;
  bool HasMeasured = false;
  bool StaticConflict = false;
  bool MeasuredConflict = false;
  double StaticContributionFactor = 0.0;
  double MeasuredContributionFactor = 0.0;
  /// Jaccard similarity of the predicted and measured victim-set
  /// lists, with the *same* imbalance-bar rule applied to both per-set
  /// miss vectors (time-rotating conflicts spread their victims over
  /// the whole run on both sides, so comparing the analyzer's
  /// instantaneous occupancy victims against whole-run measured
  /// imbalance would mis-score them). 1.0 when both are empty.
  double VictimSetAgreement = 1.0;
  /// Measured victim sets (per-set misses above the imbalance bar).
  std::vector<uint32_t> MeasuredVictimSets;
  /// Quantitative MRC divergence (set when measured curves were given
  /// and both sides cover this loop): absolute predicted-vs-measured
  /// miss-ratio error over the predicted curve's geometries, both
  /// sides read through the shared Hill–Smith model.
  bool HasMrc = false;
  uint32_t MrcPoints = 0;
  double MrcMaxAbsError = 0.0;
  double MrcMeanAbsError = 0.0;
  std::string Note;
};

/// Measured miss-ratio curves to score a static prediction against:
/// the whole-program curve plus per-loop curves keyed by the same
/// "file:headerLine" locations static and measured reports use. All
/// curves share *global* stack-distance semantics — per-loop entries
/// are the global analyzer's distances attributed to the loop of each
/// reference, matching how the static estimator interleaves co-phased
/// descriptors — so predicted and measured histograms are directly
/// comparable. Build with ConsistencyChecker::measuredCurvesFromTrace.
struct MeasuredCurves {
  MissRatioCurve Program;
  std::map<std::string, MissRatioCurve> PerLoop;
};

/// Whole-run consistency report.
struct ConsistencyReport {
  std::vector<LoopConsistency> Loops;
  uint64_t Confirmed = 0;
  uint64_t StaticOnly = 0;
  uint64_t MeasuredOnly = 0;
  uint64_t Contradicted = 0;
  /// Program-level MRC divergence (set when measured curves were
  /// given and the static side carries a predicted program curve).
  bool HasProgramMrc = false;
  double ProgramMrcMaxAbsError = 0.0;
  double ProgramMrcMeanAbsError = 0.0;
  /// True when the program-level divergence exceeded the contradiction
  /// threshold under exact placement and a complete model: the model's
  /// descriptors do not describe the traced program.
  bool ProgramMrcContradicted = false;

  /// True when no loop contradicts the model.
  bool consistent() const {
    return Contradicted == 0 && !ProgramMrcContradicted;
  }

  const LoopConsistency *byLocation(const std::string &Location) const {
    for (const LoopConsistency &Loop : Loops)
      if (Loop.Location == Location)
        return &Loop;
    return nullptr;
  }
};

class ConsistencyChecker {
public:
  struct Options {
    /// A set is a measured victim when its miss count exceeds this
    /// multiple of the loop's mean per-set misses (the imbalance bar:
    /// balanced walks put ~1x the mean on every set).
    double VictimMissFactor = 2.0;
    /// Measured loops below this miss contribution are ignored — the
    /// same significance idea the profiler applies.
    double MinMeasuredContribution = 0.01;
    /// A predicted-vs-measured max absolute miss-ratio error above
    /// this, under exact placement and a complete model, contradicts
    /// the model. Three times the estimator's documented 0.05
    /// approximation bound (DESIGN.md §11), so modeling error alone
    /// can never trip it.
    double MrcContradictionThreshold = 0.15;
  };

  ConsistencyChecker() : Opts{} {}
  explicit ConsistencyChecker(Options Opts) : Opts(Opts) {}

  /// The imbalance-bar rule shared by both sides of the victim-set
  /// comparison: sets whose miss count exceeds VictimMissFactor x
  /// (mean misses per utilized set).
  std::vector<uint32_t>
  victimSetsFromMisses(const std::vector<uint64_t> &PerSetMisses) const;

  /// Derives the measured victim sets of \p Report via
  /// victimSetsFromMisses over its per-set miss counts.
  std::vector<uint32_t>
  measuredVictimSets(const LoopConflictReport &Report) const;

  ConsistencyReport check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured) const;

  /// Quantitative check: additionally scores every loop's predicted
  /// MRC (and the program curve) against \p Curves. Divergence beyond
  /// MrcContradictionThreshold under exact placement and a complete
  /// model upgrades the loop's verdict to Contradicted.
  ConsistencyReport check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured,
                          const MeasuredCurves *Curves) const;

  /// Builds MeasuredCurves from a canonicalized trace: one global
  /// stack-distance pass (lines of \p Reference's line size) whose
  /// per-reference distances are attributed to the innermost loop of
  /// the reference's site — resolved through \p Structure exactly like
  /// measured samples, "file:line" of the site when absent.
  static MeasuredCurves
  measuredCurvesFromTrace(const Trace &T, const ProgramStructure *Structure,
                          const CacheGeometry &Reference);

  const Options &options() const { return Opts; }

private:
  Options Opts;
};

} // namespace ccprof

#endif // CCPROF_ANALYSIS_CONSISTENCYCHECKER_H
