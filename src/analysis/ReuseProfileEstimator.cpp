//===- analysis/ReuseProfileEstimator.cpp - Analytic reuse profiles ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/ReuseProfileEstimator.h"

#include "sim/MrcModel.h"
#include "trace/Canonicalize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

using namespace ccprof;

namespace {

/// Alignment for packing unregistered allocations, matching
/// StaticConflictAnalyzer so both static passes agree on placement.
constexpr uint64_t SyntheticPackAlign = 64;

uint64_t alignUp(uint64_t Value, uint64_t Alignment) {
  return (Value + Alignment - 1) / Alignment * Alignment;
}

/// Distinct lines of the byte interval [Start, Start + Len).
double linesOf(uint64_t Start, uint64_t Len, uint64_t L) {
  if (Len == 0)
    return 0.0;
  const uint64_t First = Start / L;
  const uint64_t Last = (Start + Len - 1) / L;
  return static_cast<double>(Last - First + 1);
}

/// One contiguous cluster of a descriptor's per-iteration point set.
/// PointOffsetsBytes within a line of each other fold into one lane;
/// distant points (stencil rows / planes) form separate lanes that may
/// chain under an outer level's stride.
struct Lane {
  uint64_t Start = 0;  ///< Absolute byte of the cluster's lowest point.
  uint64_t Width = 0;  ///< Bytes spanned per innermost iteration.
  uint64_t Points = 0; ///< Accesses per innermost iteration.

  // Evolving coverage while levels apply, innermost -> outermost.
  uint64_t RunLen = 0;      ///< Contiguous run length at finest grain.
  uint64_t RunCount = 1;    ///< Product of disjoint-level trip counts.
  uint64_t CoverLo = 0;     ///< Bounding interval of all touched bytes.
  uint64_t CoverHi = 0;
  double Union = 0.0;       ///< Distinct lines covered so far.
};

enum class LevelClass { Temporal, Sliding, Disjoint };

/// Per-lane record of one processed level, for footprint queries.
struct LevelRec {
  LevelClass Cls = LevelClass::Temporal;
  uint64_t Trip = 1;
  double AccessesPerIter = 1; ///< Descriptor accesses per inner iteration.
  double IterLines = 0;       ///< Lane lines of one inner iteration.
  double NewPerIter = 0;      ///< Fresh lane lines per added iteration.
  double UnionAfter = 0;      ///< Lane lines after the whole level.
};

/// A reuse event: Count accesses whose previous same-line touch lies
/// GapOwnAccesses of this descriptor's own accesses in the past. The
/// distance in distinct lines is resolved later against the phase's
/// interleaved footprint.
struct ReuseEvent {
  double Count = 0;
  double GapOwnAccesses = 1;
};

/// Per-descriptor analysis state.
struct DescState {
  const AccessDescriptor *Desc = nullptr;
  size_t AllocIdx = 0;
  uint64_t Total = 0; ///< Exact access count (saturating).
  double LeafD0 = 0;  ///< Distinct line-touches per innermost iteration.
  uint64_t LeafPoints = 1;
  std::vector<Lane> Lanes;
  std::vector<std::vector<LevelRec>> LaneLevels; ///< Innermost-first.
  std::vector<ReuseEvent> Events;
  double UnionLines = 0; ///< Chain-deduplicated distinct lines.
  uint64_t CoverLo = 0, CoverHi = 0;
  // Group fold: a follower walks the same lines as its leader and all
  // of its accesses become short-distance reuses.
  bool Follower = false;
  size_t Leader = 0; ///< Index of the group leader (self when leading).
};

uint64_t saturatingMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > std::numeric_limits<uint64_t>::max() / B)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
}

/// Lane footprint: distinct lines the lane touches over a window of
/// \p M descriptor accesses, from the innermost-first level records.
double laneFootprint(const std::vector<LevelRec> &Levels, double LeafD0,
                     uint64_t LeafPoints, double M, size_t Idx) {
  if (M <= 0)
    return 0.0;
  if (Idx == 0) {
    const double P = static_cast<double>(LeafPoints);
    if (M >= P)
      return LeafD0;
    return std::min(LeafD0, std::max(1.0, M * LeafD0 / P));
  }
  const LevelRec &R = Levels[Idx - 1];
  const double AIn = R.AccessesPerIter;
  if (M <= AIn)
    return laneFootprint(Levels, LeafD0, LeafPoints, M, Idx - 1);
  const double Iters = std::min(M / AIn, static_cast<double>(R.Trip));
  switch (R.Cls) {
  case LevelClass::Temporal:
    return R.IterLines;
  case LevelClass::Sliding:
    return std::min(R.UnionAfter,
                    R.IterLines + (Iters - 1.0) * R.NewPerIter);
  case LevelClass::Disjoint: {
    const double Whole = std::floor(Iters);
    const double Rest = M - Whole * AIn;
    return std::min(R.UnionAfter,
                    Whole * R.IterLines +
                        laneFootprint(Levels, LeafD0, LeafPoints, Rest,
                                      Idx - 1));
  }
  }
  return R.UnionAfter;
}

/// Descriptor footprint over \p M own accesses: sum of its lanes,
/// capped at the chain-deduplicated union.
double descFootprint(const DescState &D, double M) {
  double Sum = 0.0;
  for (size_t I = 0; I < D.Lanes.size(); ++I)
    Sum += laneFootprint(D.LaneLevels[I], D.LeafD0 / D.Lanes.size(),
                         std::max<uint64_t>(1, D.LeafPoints / D.Lanes.size()),
                         M, D.LaneLevels[I].size());
  return std::min(Sum, std::max(D.UnionLines, 1.0));
}

/// Most-recent-toucher registry segment.
struct Segment {
  uint64_t End = 0;
  uint32_t PhaseIdx = 0;
  double Density = 0; ///< Lines per byte of the touching walk.
};

/// Per-allocation interval map with most-recent-wins insertion.
class TouchRegistry {
public:
  /// Overlap query: invokes \p Fn(OverlapBytes, PhaseIdx, Density) for
  /// every registered segment intersecting [Lo, Hi).
  template <typename FnT>
  void query(uint64_t Lo, uint64_t Hi, FnT &&Fn) const {
    if (Lo >= Hi)
      return;
    auto It = Map.upper_bound(Lo);
    if (It != Map.begin())
      --It;
    for (; It != Map.end() && It->first < Hi; ++It) {
      const uint64_t SegLo = std::max(Lo, It->first);
      const uint64_t SegHi = std::min(Hi, It->second.End);
      if (SegLo < SegHi)
        Fn(SegHi - SegLo, It->second.PhaseIdx, It->second.Density);
    }
  }

  void insert(uint64_t Lo, uint64_t Hi, uint32_t PhaseIdx, double Density) {
    if (Lo >= Hi)
      return;
    // Trim or split whatever the new segment overlaps.
    auto It = Map.upper_bound(Lo);
    if (It != Map.begin())
      --It;
    while (It != Map.end() && It->first < Hi) {
      auto Next = std::next(It);
      const uint64_t OldLo = It->first;
      const Segment Old = It->second;
      if (Old.End <= Lo) {
        It = Next;
        continue;
      }
      Map.erase(It);
      if (OldLo < Lo)
        Map.emplace(OldLo, Segment{Lo, Old.PhaseIdx, Old.Density});
      if (Old.End > Hi)
        Map.emplace(Hi, Segment{Old.End, Old.PhaseIdx, Old.Density});
      It = Next;
    }
    Map.emplace(Lo, Segment{Hi, PhaseIdx, Density});
  }

private:
  std::map<uint64_t, Segment> Map;
};

} // namespace

//===----------------------------------------------------------------------===//
// ReuseProfile
//===----------------------------------------------------------------------===//

double ReuseProfile::missRatioAt(const CacheGeometry &Geometry) const {
  return modelMissRatioFromStack(Stack, ColdRefs, TotalRefs, Geometry);
}

void ReuseProfile::merge(const ReuseProfile &Other) {
  Stack.merge(Other.Stack);
  ColdRefs += Other.ColdRefs;
  TotalRefs += Other.TotalRefs;
}

//===----------------------------------------------------------------------===//
// ReuseProfileEstimator
//===----------------------------------------------------------------------===//

ReuseProfileEstimate
ReuseProfileEstimator::estimate(const StaticAccessModel &Model) const {
  ReuseProfileEstimate Estimate;
  if (Model.empty())
    return Estimate;
  const uint64_t L = Opts.LineBytes;

  // Placement: identical to StaticConflictAnalyzer — registered
  // allocations on the canonical layout, unregistered ones packed onto
  // the orphan region.
  std::vector<uint64_t> RegisteredSizes;
  for (const ModeledAllocation &Alloc : Model.Allocations)
    if (Alloc.Registered)
      RegisteredSizes.push_back(Alloc.SizeBytes);
  const CanonicalLayout Layout = canonicalAllocationLayout(RegisteredSizes);

  struct AllocInfo {
    uint64_t Base = 0;
    double Lines = 0;
  };
  std::vector<AllocInfo> Allocs;
  std::unordered_map<std::string, size_t> AllocIndex;
  size_t RegIdx = 0;
  uint64_t PackCursor = Layout.FirstOrphanBase;
  for (const ModeledAllocation &Alloc : Model.Allocations) {
    AllocInfo Info;
    if (Alloc.Registered) {
      Info.Base = Layout.Bases[RegIdx++];
    } else {
      Info.Base = alignUp(PackCursor, SyntheticPackAlign);
      PackCursor = Info.Base + Alloc.SizeBytes;
      Estimate.ExactPlacement = false;
    }
    Info.Lines = linesOf(Info.Base, Alloc.SizeBytes, L);
    AllocIndex.emplace(Alloc.Name, Allocs.size());
    Allocs.push_back(Info);
  }
  uint64_t UnknownCursor = Layout.FirstOrphanBase + Layout.OrphanSpan;
  auto allocIndexFor = [&](const std::string &Name) -> size_t {
    auto It = AllocIndex.find(Name);
    if (It != AllocIndex.end())
      return It->second;
    AllocInfo Info;
    Info.Base = UnknownCursor;
    Info.Lines = static_cast<double>(Layout.OrphanSpan) /
                 static_cast<double>(L);
    UnknownCursor += Layout.OrphanSpan;
    AllocIndex.emplace(Name, Allocs.size());
    Allocs.push_back(Info);
    Estimate.ExactPlacement = false;
    return Allocs.size() - 1;
  };

  // Group descriptors into phases, preserving model order within one.
  std::map<uint32_t, std::vector<size_t>> PhaseMembers;
  std::vector<DescState> States;
  States.reserve(Model.Accesses.size());
  for (const AccessDescriptor &Desc : Model.Accesses) {
    DescState St;
    St.Desc = &Desc;
    St.AllocIdx = allocIndexFor(Desc.Array);
    St.Total = Desc.PointOffsetsBytes.empty()
                   ? 1
                   : static_cast<uint64_t>(Desc.PointOffsetsBytes.size());
    for (const AccessLoopLevel &Level : Desc.Levels)
      St.Total = saturatingMul(St.Total, Level.TripCount);
    if (St.Total == 0)
      continue;
    PhaseMembers[Desc.Phase].push_back(States.size());
    States.push_back(std::move(St));
  }
  if (States.empty())
    return Estimate;

  // -- Pass 1: per-descriptor level classification -----------------------
  for (DescState &St : States) {
    const AccessDescriptor &Desc = *St.Desc;
    const uint64_t Base = Allocs[St.AllocIdx].Base + Desc.StartOffset;
    const uint64_t Elem = std::max<uint16_t>(1, Desc.ElementBytes);

    // Cluster point offsets into lanes: points within a line of each
    // other share the same cache lines as the walk advances.
    std::vector<int64_t> Offsets = Desc.PointOffsetsBytes;
    if (Offsets.empty())
      Offsets.push_back(0);
    std::sort(Offsets.begin(), Offsets.end());
    for (size_t I = 0; I < Offsets.size();) {
      size_t J = I + 1;
      while (J < Offsets.size() &&
             Offsets[J] - Offsets[J - 1] < static_cast<int64_t>(L))
        ++J;
      Lane LaneState;
      LaneState.Start = Base + static_cast<uint64_t>(Offsets[I]);
      LaneState.Width =
          static_cast<uint64_t>(Offsets[J - 1] - Offsets[I]) + Elem;
      LaneState.Points = J - I;
      LaneState.RunLen = LaneState.Width;
      LaneState.CoverLo = LaneState.Start;
      LaneState.CoverHi = LaneState.Start + LaneState.Width;
      LaneState.Union = linesOf(LaneState.Start, LaneState.Width, L);
      St.Lanes.push_back(LaneState);
      I = J;
    }
    St.LeafPoints = Offsets.size();
    St.LeafD0 = 0;
    for (const Lane &LaneState : St.Lanes)
      St.LeafD0 += LaneState.Union;
    St.LaneLevels.assign(St.Lanes.size(), {});
    St.UnionLines = St.LeafD0;

    // Intra-iteration duplicates: points re-touching a lane-resident
    // line within one innermost position (zero-lag reuse).
    const double Dups =
        std::max(0.0, static_cast<double>(St.LeafPoints) - St.LeafD0);
    if (Dups > 0)
      St.Events.push_back({Dups * static_cast<double>(St.Total) /
                               static_cast<double>(St.LeafPoints),
                           1.0});

    // Apply levels innermost-first.
    double AccessesPerIter = static_cast<double>(St.LeafPoints);
    std::vector<AccessLoopLevel> Levels(Desc.Levels.rbegin(),
                                        Desc.Levels.rend());
    // Iterations of all levels processed so far, per whole descriptor.
    double OuterReps = static_cast<double>(St.Total) /
                       static_cast<double>(St.LeafPoints);
    for (const AccessLoopLevel &Level : Levels) {
      const uint64_t T = Level.TripCount;
      const int64_t S = Level.StrideBytes;
      const uint64_t A = S < 0 ? static_cast<uint64_t>(-S)
                               : static_cast<uint64_t>(S);
      OuterReps /= static_cast<double>(T);

      // Lane chains along this stride: a lane whose coverage sits one
      // stride ahead absorbs this lane's fresh lines (the stencil-row
      // fold): the trailing lane re-touches them one iteration later.
      std::vector<uint8_t> IsFollower(St.Lanes.size(), 0);
      if (S != 0 && St.Lanes.size() > 1) {
        for (size_t I = 0; I < St.Lanes.size(); ++I) {
          const int64_t Ahead =
              static_cast<int64_t>(St.Lanes[I].Start) + S;
          for (size_t J = 0; J < St.Lanes.size(); ++J) {
            if (J == I)
              continue;
            const int64_t Delta =
                Ahead - static_cast<int64_t>(St.Lanes[J].Start);
            if (Delta >= -static_cast<int64_t>(L) &&
                Delta <= static_cast<int64_t>(L)) {
              IsFollower[I] = 1;
              break;
            }
          }
        }
      }

      for (size_t LI = 0; LI < St.Lanes.size(); ++LI) {
        Lane &Ln = St.Lanes[LI];
        LevelRec Rec;
        Rec.Trip = T;
        Rec.AccessesPerIter = AccessesPerIter;
        Rec.IterLines = Ln.Union;

        if (S == 0 || T == 1) {
          Rec.Cls = LevelClass::Temporal;
          Rec.NewPerIter = 0;
          Rec.UnionAfter = Ln.Union;
          if (T > 1) {
            // Every re-execution re-touches the inner footprint one
            // interleaved inner iteration apart.
            St.Events.push_back(
                {static_cast<double>(T - 1) * Ln.Union * OuterReps,
                 AccessesPerIter});
          }
        } else if (A <= Ln.RunLen) {
          Rec.Cls = LevelClass::Sliding;
          Rec.NewPerIter = static_cast<double>(Ln.RunCount) *
                           static_cast<double>(A) / static_cast<double>(L);
          const double Retouch =
              std::max(0.0, Ln.Union - Rec.NewPerIter);
          if (T > 1) {
            // Re-touched lines: spatial reuse one iteration apart.
            St.Events.push_back(
                {static_cast<double>(T - 1) * Retouch * OuterReps,
                 AccessesPerIter});
            if (IsFollower[LI]) {
              // Fresh lines were touched by the lane ahead one
              // iteration earlier: same lag, but they no longer grow
              // the descriptor's union.
              St.Events.push_back({static_cast<double>(T - 1) *
                                       Rec.NewPerIter * OuterReps,
                                   AccessesPerIter});
              St.UnionLines -=
                  static_cast<double>(T - 1) * Rec.NewPerIter;
            }
          }
          Rec.UnionAfter =
              Ln.Union + static_cast<double>(T - 1) * Rec.NewPerIter;
          Ln.Union = Rec.UnionAfter;
          Ln.RunLen += (T - 1) * A;
          if (S < 0)
            Ln.CoverLo -= std::min(Ln.CoverLo, (T - 1) * A);
          else
            Ln.CoverHi += (T - 1) * A;
          St.UnionLines += static_cast<double>(T - 1) * Rec.NewPerIter;
        } else {
          Rec.Cls = LevelClass::Disjoint;
          Rec.NewPerIter = Ln.Union;
          if (T > 1 && IsFollower[LI]) {
            St.Events.push_back(
                {static_cast<double>(T - 1) * Ln.Union * OuterReps,
                 AccessesPerIter});
            St.UnionLines -= static_cast<double>(T - 1) * Ln.Union;
          }
          Rec.UnionAfter = static_cast<double>(T) * Ln.Union;
          St.UnionLines += static_cast<double>(T - 1) * Ln.Union;
          Ln.Union = Rec.UnionAfter;
          Ln.RunCount *= T;
          if (S < 0)
            Ln.CoverLo -= std::min(Ln.CoverLo, (T - 1) * A);
          else
            Ln.CoverHi += (T - 1) * A;
        }
        St.LaneLevels[LI].push_back(Rec);
      }
      AccessesPerIter *= static_cast<double>(T);
    }

    St.CoverLo = std::numeric_limits<uint64_t>::max();
    St.CoverHi = 0;
    for (const Lane &Ln : St.Lanes) {
      St.CoverLo = std::min(St.CoverLo, Ln.CoverLo);
      St.CoverHi = std::max(St.CoverHi, Ln.CoverHi);
    }
    const double AllocCap = Allocs[St.AllocIdx].Lines;
    St.UnionLines = std::min(std::max(St.UnionLines, 1.0), AllocCap);
  }

  // -- Passes 2-5: per-phase interleaving, in phase order ----------------
  std::map<uint32_t, std::map<uint64_t, double>> LineHists;
  std::map<uint32_t, double> LineCold;
  std::map<uint32_t, uint64_t> LineTotals;
  std::vector<TouchRegistry> Registries(Allocs.size());
  // Per-allocation distinct lines touched per phase, prefix-summed for
  // cross-phase distance queries.
  std::vector<std::vector<double>> AllocPhasePrefix(
      Allocs.size(), std::vector<double>(PhaseMembers.size() + 1, 0.0));
  std::vector<double> PhaseLines(PhaseMembers.size(), 0.0);

  uint32_t PhaseIdx = 0;
  for (const auto &[PhaseId, Members] : PhaseMembers) {
    (void)PhaseId;
    // Pass 2: group fold. A descriptor walking (essentially) the same
    // bytes of the same allocation as an earlier one in this phase is
    // its follower: interleaving places each of its accesses right
    // after the leader's, so the whole stream reuses at the group
    // interleave width.
    for (size_t MI = 0; MI < Members.size(); ++MI) {
      DescState &St = States[Members[MI]];
      St.Leader = Members[MI];
      for (size_t MJ = 0; MJ < MI; ++MJ) {
        DescState &Cand = States[Members[MJ]];
        if (Cand.Follower || Cand.AllocIdx != St.AllocIdx)
          continue;
        // Folding requires the SAME walk: identical loop structure, so
        // the follower touches each line at (essentially) the moment
        // the leader does. Same-interval walks with different shapes —
        // a row walk and a column walk of one matrix — reuse at large
        // distances, not small ones, and must stay independent.
        if (Cand.Desc->Levels.size() != St.Desc->Levels.size() ||
            Cand.Desc->PointOffsetsBytes.size() !=
                St.Desc->PointOffsetsBytes.size())
          continue;
        bool SameShape = true;
        for (size_t LI = 0; LI < St.Desc->Levels.size(); ++LI)
          if (St.Desc->Levels[LI].TripCount !=
                  Cand.Desc->Levels[LI].TripCount ||
              St.Desc->Levels[LI].StrideBytes !=
                  Cand.Desc->Levels[LI].StrideBytes) {
            SameShape = false;
            break;
          }
        if (!SameShape)
          continue;
        const uint64_t Lo = std::max(St.CoverLo, Cand.CoverLo);
        const uint64_t Hi = std::min(St.CoverHi, Cand.CoverHi);
        if (Lo >= Hi)
          continue;
        const uint64_t Span =
            std::min(St.CoverHi - St.CoverLo, Cand.CoverHi - Cand.CoverLo);
        const double UnionRatio =
            std::max(St.UnionLines, Cand.UnionLines) /
            std::max(1.0, std::min(St.UnionLines, Cand.UnionLines));
        if (Span > 0 &&
            static_cast<double>(Hi - Lo) >=
                0.8 * static_cast<double>(Span) &&
            UnionRatio <= 1.5) {
          St.Follower = true;
          St.Leader = Members[MJ];
          break;
        }
      }
    }

    // Total accesses per descriptor in this phase (for rate scaling).
    double PhaseTotal = 0;
    for (size_t M : Members)
      PhaseTotal += static_cast<double>(States[M].Total);

    // Interleaved footprint of a gap of G own accesses of descriptor
    // D: every group leader contributes its footprint over the window,
    // summed per allocation and capped at the allocation's lines.
    auto interleavedDistance = [&](const DescState &D, double Gap) {
      std::unordered_map<size_t, double> PerAlloc;
      for (size_t M : Members) {
        const DescState &Other = States[M];
        if (Other.Follower)
          continue;
        const double Window =
            Gap * static_cast<double>(Other.Total) /
            static_cast<double>(D.Total);
        PerAlloc[Other.AllocIdx] += descFootprint(Other, Window);
      }
      double W = 0;
      for (const auto &[AI, Sum] : PerAlloc)
        W += std::min(Sum, Allocs[AI].Lines);
      return std::max(0.0, std::round(W) - 1.0);
    };

    // Pass 3: resolve event distances.
    for (size_t M : Members) {
      DescState &St = States[M];
      auto &Hist = LineHists[St.Desc->Line];
      LineTotals[St.Desc->Line] += St.Total;
      if (St.Follower) {
        const double D = interleavedDistance(States[St.Leader], 1.0);
        Hist[static_cast<uint64_t>(D)] += static_cast<double>(St.Total);
        continue;
      }
      for (const ReuseEvent &Ev : St.Events) {
        const double D = interleavedDistance(St, Ev.GapOwnAccesses);
        Hist[static_cast<uint64_t>(D)] += Ev.Count;
      }
    }

    // Pass 4: cross-phase group reuse — cold first touches of bytes a
    // previous phase touched become reuses at the capped sum of the
    // intervening phase footprints.
    for (size_t M : Members) {
      DescState &St = States[M];
      if (St.Follower)
        continue;
      double Cold = St.UnionLines;
      const double SelfDensity =
          St.CoverHi > St.CoverLo
              ? St.UnionLines / static_cast<double>(St.CoverHi - St.CoverLo)
              : 0.0;
      auto &Hist = LineHists[St.Desc->Line];
      Registries[St.AllocIdx].query(
          St.CoverLo, St.CoverHi,
          [&](uint64_t OverlapBytes, uint32_t TouchPhase, double Density) {
            if (Cold <= 0)
              return;
            double Converted = static_cast<double>(OverlapBytes) *
                               std::min(Density, SelfDensity);
            Converted = std::min(Converted, Cold);
            if (Converted <= 0)
              return;
            double Between = 0;
            for (size_t AI = 0; AI < Allocs.size(); ++AI) {
              const double Sum = AllocPhasePrefix[AI][PhaseIdx] -
                                 AllocPhasePrefix[AI][TouchPhase + 1];
              Between += std::min(Sum, Allocs[AI].Lines);
            }
            const double D = std::max(
                0.0, std::round(Between + 0.5 * PhaseLines[TouchPhase] +
                                0.5 * PhaseLines[PhaseIdx]) -
                         1.0);
            Hist[static_cast<uint64_t>(D)] += Converted;
            Cold -= Converted;
          });
      // Whatever remains cold stays cold (first touches of the run).
      LineCold[St.Desc->Line] += std::max(0.0, Cold);
    }

    // Pass 5: registry + phase-footprint bookkeeping.
    std::unordered_map<size_t, double> PhaseAlloc;
    for (size_t M : Members) {
      const DescState &St = States[M];
      if (St.Follower)
        continue;
      const double SelfDensity =
          St.CoverHi > St.CoverLo
              ? St.UnionLines / static_cast<double>(St.CoverHi - St.CoverLo)
              : 0.0;
      Registries[St.AllocIdx].insert(St.CoverLo, St.CoverHi, PhaseIdx,
                                     SelfDensity);
      PhaseAlloc[St.AllocIdx] += St.UnionLines;
    }
    for (size_t AI = 0; AI < Allocs.size(); ++AI) {
      const auto It = PhaseAlloc.find(AI);
      const double Touched =
          It == PhaseAlloc.end() ? 0.0
                                 : std::min(It->second, Allocs[AI].Lines);
      AllocPhasePrefix[AI][PhaseIdx + 1] =
          AllocPhasePrefix[AI][PhaseIdx] + Touched;
      PhaseLines[PhaseIdx] += Touched;
    }
    ++PhaseIdx;
  }

  // -- Materialize -------------------------------------------------------
  for (const auto &[Line, Total] : LineTotals) {
    ReuseProfile Profile;
    Profile.TotalRefs = Total;
    uint64_t HistTotal = 0;
    auto HistIt = LineHists.find(Line);
    if (HistIt != LineHists.end()) {
      for (const auto &[Distance, Weight] : HistIt->second) {
        const auto W = static_cast<uint64_t>(std::llround(Weight));
        if (W == 0)
          continue;
        Profile.Stack.add(Distance, W);
        HistTotal += W;
      }
    }
    // Reuse mass can round past the exact total; clamp so cold plus
    // reuses never exceeds it (the readout treats the residue as cold).
    if (HistTotal > Total) {
      Profile.Stack = Histogram();
      uint64_t Kept = 0;
      for (const auto &[Distance, Weight] : HistIt->second) {
        const auto W = std::min(
            static_cast<uint64_t>(std::llround(Weight)), Total - Kept);
        if (W == 0)
          continue;
        Profile.Stack.add(Distance, W);
        Kept += W;
      }
      HistTotal = Kept;
    }
    Profile.ColdRefs = Total - HistTotal;
    const auto ColdIt = LineCold.find(Line);
    if (ColdIt != LineCold.end())
      Profile.ColdRefs = std::min(
          Profile.ColdRefs,
          std::max<uint64_t>(
              1, static_cast<uint64_t>(std::llround(ColdIt->second))));
    Estimate.Program.merge(Profile);
    Estimate.PerLine.emplace(Line, std::move(Profile));
  }
  // Program total must reflect every reference, including the residue
  // between per-line totals and their histogram mass.
  Estimate.Valid = Estimate.Program.TotalRefs > 0;
  return Estimate;
}
