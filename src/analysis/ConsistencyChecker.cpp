//===- analysis/ConsistencyChecker.cpp - Static vs measured --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"

#include "sim/ReuseDistance.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace ccprof;

const char *ccprof::consistencyVerdictName(ConsistencyVerdict Verdict) {
  switch (Verdict) {
  case ConsistencyVerdict::ConfirmedConflict:
    return "confirmed-conflict";
  case ConsistencyVerdict::ConfirmedClean:
    return "confirmed-clean";
  case ConsistencyVerdict::StaticOnly:
    return "static-only";
  case ConsistencyVerdict::MeasuredOnly:
    return "measured-only";
  case ConsistencyVerdict::Contradicted:
    return "contradicted";
  }
  return "unknown";
}

bool ccprof::consistencyVerdictFromName(const std::string &Name,
                                        ConsistencyVerdict &Out) {
  for (ConsistencyVerdict Verdict :
       {ConsistencyVerdict::ConfirmedConflict,
        ConsistencyVerdict::ConfirmedClean, ConsistencyVerdict::StaticOnly,
        ConsistencyVerdict::MeasuredOnly, ConsistencyVerdict::Contradicted})
    if (Name == consistencyVerdictName(Verdict)) {
      Out = Verdict;
      return true;
    }
  return false;
}

std::vector<uint32_t> ConsistencyChecker::victimSetsFromMisses(
    const std::vector<uint64_t> &PerSetMisses) const {
  std::vector<uint32_t> Victims;
  uint64_t Total = 0;
  uint64_t Utilized = 0;
  for (uint64_t Misses : PerSetMisses) {
    Total += Misses;
    Utilized += Misses > 0;
  }
  if (Utilized == 0)
    return Victims;
  const double Bar = Opts.VictimMissFactor * static_cast<double>(Total) /
                     static_cast<double>(Utilized);
  for (size_t Set = 0; Set < PerSetMisses.size(); ++Set)
    if (static_cast<double>(PerSetMisses[Set]) > Bar)
      Victims.push_back(static_cast<uint32_t>(Set));
  return Victims;
}

std::vector<uint32_t>
ConsistencyChecker::measuredVictimSets(const LoopConflictReport &Report) const {
  return victimSetsFromMisses(Report.PerSetMisses);
}

namespace {

double jaccard(const std::vector<uint32_t> &A, const std::vector<uint32_t> &B) {
  if (A.empty() && B.empty())
    return 1.0;
  const std::set<uint32_t> SetA(A.begin(), A.end());
  uint64_t Intersection = 0;
  for (uint32_t Value : B)
    Intersection += SetA.count(Value);
  const uint64_t Union = SetA.size() + B.size() - Intersection;
  return Union == 0 ? 1.0
                    : static_cast<double>(Intersection) /
                          static_cast<double>(Union);
}

/// Max/mean absolute error between a predicted curve's points and the
/// measured curve read out at the same geometries. Both sides go
/// through the histogram model (modelMissRatioAt on the measured side,
/// the profile readout baked into PredictedMrc on the static side), so
/// the score measures profile divergence, not model skew.
struct MrcScore {
  uint32_t Points = 0;
  double MaxAbsError = 0.0;
  double MeanAbsError = 0.0;
};

MrcScore scoreMrc(const std::vector<PredictedMrcPoint> &Predicted,
                  const MissRatioCurve &Measured) {
  MrcScore Score;
  double Sum = 0.0;
  for (const PredictedMrcPoint &Point : Predicted) {
    const double Error =
        std::abs(Point.MissRatio - Measured.modelMissRatioAt(Point.Geometry));
    Score.MaxAbsError = std::max(Score.MaxAbsError, Error);
    Sum += Error;
    ++Score.Points;
  }
  if (Score.Points > 0)
    Score.MeanAbsError = Sum / Score.Points;
  return Score;
}

} // namespace

MeasuredCurves ConsistencyChecker::measuredCurvesFromTrace(
    const Trace &T, const ProgramStructure *Structure,
    const CacheGeometry &Reference) {
  MeasuredCurves Curves;

  // Resolve every site to its loop location once, the same way
  // measured samples are attributed.
  std::vector<std::string> LocationOf(T.sites().size() + 1);
  for (SiteId Id = 1; Id <= T.sites().size(); ++Id) {
    const SourceSite *Site = T.sites().lookup(Id);
    if (!Site)
      continue;
    std::string Location;
    if (Structure) {
      if (std::optional<LoopRef> Ref =
              Structure->innermostLoopForLine(Site->Line)) {
        Location = Structure->describeLoop(*Ref);
      }
    }
    if (Location.empty())
      Location = Site->File + ":" + std::to_string(Site->Line);
    LocationOf[Id] = std::move(Location);
  }

  // One global stack-distance pass; per-reference distances attributed
  // to the loop of the reference's site. Global semantics match the
  // static estimator's interleaved footprint accounting.
  struct LoopAccum {
    Histogram Stack;
    uint64_t Cold = 0;
    uint64_t Total = 0;
  };
  std::map<std::string, LoopAccum> PerLoop;
  ReuseDistanceAnalyzer Global;
  for (const MemoryRecord &R : T.records()) {
    const uint64_t Distance = Global.access(Reference.lineAddrOf(R.Addr));
    LoopAccum &Accum =
        PerLoop[R.Site < LocationOf.size() ? LocationOf[R.Site]
                                           : std::string()];
    ++Accum.Total;
    if (Distance == ReuseDistanceAnalyzer::Infinite)
      ++Accum.Cold;
    else
      Accum.Stack.add(Distance);
  }

  Curves.Program.Reference = Reference;
  Curves.Program.TotalRefs = T.size();
  Curves.Program.ColdWeight = Global.coldCount();
  Curves.Program.StackDistances = Global.distances();
  for (auto &[Location, Accum] : PerLoop) {
    MissRatioCurve Curve;
    Curve.Reference = Reference;
    Curve.TotalRefs = Accum.Total;
    Curve.ColdWeight = Accum.Cold;
    Curve.StackDistances = std::move(Accum.Stack);
    Curves.PerLoop.emplace(Location, std::move(Curve));
  }
  return Curves;
}

ConsistencyReport
ConsistencyChecker::check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured) const {
  return check(Static, Measured, nullptr);
}

ConsistencyReport
ConsistencyChecker::check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured,
                          const MeasuredCurves *Curves) const {
  ConsistencyReport Report;

  // Walk the union of locations, static order first (highest predicted
  // share leads), then measured-only contexts.
  std::vector<std::string> Locations;
  Locations.reserve(Static.Loops.size() + Measured.Loops.size());
  for (const LoopPrediction &Loop : Static.Loops)
    Locations.push_back(Loop.Location);
  for (const LoopConflictReport &Loop : Measured.Loops)
    if (!Static.byLocation(Loop.Location))
      Locations.push_back(Loop.Location);

  for (const std::string &Location : Locations) {
    const LoopPrediction *Predicted = Static.byLocation(Location);
    const LoopConflictReport *Observed = Measured.byLocation(Location);

    LoopConsistency Entry;
    Entry.Location = Location;
    Entry.HasStatic = Predicted != nullptr;
    Entry.HasMeasured = Observed != nullptr;
    if (Predicted) {
      Entry.StaticConflict = Predicted->ConflictPredicted;
      Entry.StaticContributionFactor = Predicted->PredictedContributionFactor;
    }
    bool MeasuredSignificant = false;
    if (Observed) {
      Entry.MeasuredConflict = Observed->ConflictPredicted;
      Entry.MeasuredContributionFactor = Observed->ContributionFactor;
      Entry.MeasuredVictimSets = measuredVictimSets(*Observed);
      MeasuredSignificant =
          Observed->MissContribution >= Opts.MinMeasuredContribution;
    }
    // Same bar rule on both per-set miss vectors: a time-rotating
    // conflict spreads its victims over the run on both sides, so the
    // analyzer's instantaneous occupancy victims must not be compared
    // against whole-run measured imbalance directly.
    if (Predicted && Observed)
      Entry.VictimSetAgreement =
          jaccard(victimSetsFromMisses(Predicted->PredictedMissesPerSet),
                  Entry.MeasuredVictimSets);

    if (Entry.StaticConflict && Entry.MeasuredConflict) {
      Entry.Verdict = ConsistencyVerdict::ConfirmedConflict;
      Entry.Note = "prediction and measurement agree on a conflict";
    } else if (Entry.StaticConflict) {
      Entry.Verdict = ConsistencyVerdict::StaticOnly;
      Entry.Note = Observed
                       ? "predicted conflict not visible in the measurement"
                       : "predicted conflict; loop missing from measurement";
    } else if (Entry.MeasuredConflict) {
      if (Predicted && Predicted->ExactPlacement && Static.ModelComplete) {
        Entry.Verdict = ConsistencyVerdict::Contradicted;
        Entry.Note = "measured conflict in a loop the model covers with "
                     "exact placement yet predicts clean — the model's "
                     "strides or sizes are wrong";
      } else {
        Entry.Verdict = ConsistencyVerdict::MeasuredOnly;
        Entry.Note = Predicted
                         ? "measured conflict where static placement is "
                           "only approximate"
                         : "measured conflict in a loop the model does "
                           "not describe";
      }
    } else if (Observed && !Predicted && MeasuredSignificant &&
               Static.ModelComplete) {
      // A significant measured context absent from a complete model is
      // itself a coverage gap worth flagging, even when clean.
      Entry.Verdict = ConsistencyVerdict::MeasuredOnly;
      Entry.Note = "significant measured context absent from the model";
    } else {
      Entry.Verdict = ConsistencyVerdict::ConfirmedClean;
      Entry.Note = "no conflict on either side";
    }

    // Quantitative pass: score the loop's predicted MRC against the
    // measured curve. Divergence beyond the threshold under exact
    // placement and a complete model is a contradiction even when the
    // boolean conflict verdicts happen to agree — the model's reuse
    // structure does not describe the traced one.
    if (Curves && Predicted && !Predicted->PredictedMrc.empty()) {
      const auto CurveIt = Curves->PerLoop.find(Location);
      if (CurveIt != Curves->PerLoop.end() &&
          CurveIt->second.TotalRefs > 0) {
        const MrcScore Score =
            scoreMrc(Predicted->PredictedMrc, CurveIt->second);
        Entry.HasMrc = Score.Points > 0;
        Entry.MrcPoints = Score.Points;
        Entry.MrcMaxAbsError = Score.MaxAbsError;
        Entry.MrcMeanAbsError = Score.MeanAbsError;
        if (Entry.HasMrc &&
            Score.MaxAbsError > Opts.MrcContradictionThreshold &&
            Predicted->ExactPlacement && Static.ModelComplete) {
          Entry.Verdict = ConsistencyVerdict::Contradicted;
          Entry.Note = "predicted miss-ratio curve diverges from the "
                       "measured one beyond the modeling bound — the "
                       "model's reuse structure is wrong";
        }
      }
    }

    switch (Entry.Verdict) {
    case ConsistencyVerdict::ConfirmedConflict:
    case ConsistencyVerdict::ConfirmedClean:
      ++Report.Confirmed;
      break;
    case ConsistencyVerdict::StaticOnly:
      ++Report.StaticOnly;
      break;
    case ConsistencyVerdict::MeasuredOnly:
      ++Report.MeasuredOnly;
      break;
    case ConsistencyVerdict::Contradicted:
      ++Report.Contradicted;
      break;
    }
    Report.Loops.push_back(std::move(Entry));
  }

  // Program-level divergence: the whole-trace curve against the
  // whole-model analytic one.
  if (Curves && !Static.ProgramMrc.empty() &&
      Curves->Program.TotalRefs > 0) {
    const MrcScore Score = scoreMrc(Static.ProgramMrc, Curves->Program);
    Report.HasProgramMrc = Score.Points > 0;
    Report.ProgramMrcMaxAbsError = Score.MaxAbsError;
    Report.ProgramMrcMeanAbsError = Score.MeanAbsError;
    Report.ProgramMrcContradicted =
        Report.HasProgramMrc &&
        Score.MaxAbsError > Opts.MrcContradictionThreshold &&
        Static.ReuseExactPlacement && Static.ModelComplete;
  }
  return Report;
}
