//===- analysis/ConsistencyChecker.cpp - Static vs measured --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"

#include <algorithm>
#include <set>

using namespace ccprof;

const char *ccprof::consistencyVerdictName(ConsistencyVerdict Verdict) {
  switch (Verdict) {
  case ConsistencyVerdict::ConfirmedConflict:
    return "confirmed-conflict";
  case ConsistencyVerdict::ConfirmedClean:
    return "confirmed-clean";
  case ConsistencyVerdict::StaticOnly:
    return "static-only";
  case ConsistencyVerdict::MeasuredOnly:
    return "measured-only";
  case ConsistencyVerdict::Contradicted:
    return "contradicted";
  }
  return "unknown";
}

std::vector<uint32_t> ConsistencyChecker::victimSetsFromMisses(
    const std::vector<uint64_t> &PerSetMisses) const {
  std::vector<uint32_t> Victims;
  uint64_t Total = 0;
  uint64_t Utilized = 0;
  for (uint64_t Misses : PerSetMisses) {
    Total += Misses;
    Utilized += Misses > 0;
  }
  if (Utilized == 0)
    return Victims;
  const double Bar = Opts.VictimMissFactor * static_cast<double>(Total) /
                     static_cast<double>(Utilized);
  for (size_t Set = 0; Set < PerSetMisses.size(); ++Set)
    if (static_cast<double>(PerSetMisses[Set]) > Bar)
      Victims.push_back(static_cast<uint32_t>(Set));
  return Victims;
}

std::vector<uint32_t>
ConsistencyChecker::measuredVictimSets(const LoopConflictReport &Report) const {
  return victimSetsFromMisses(Report.PerSetMisses);
}

namespace {

double jaccard(const std::vector<uint32_t> &A, const std::vector<uint32_t> &B) {
  if (A.empty() && B.empty())
    return 1.0;
  const std::set<uint32_t> SetA(A.begin(), A.end());
  uint64_t Intersection = 0;
  for (uint32_t Value : B)
    Intersection += SetA.count(Value);
  const uint64_t Union = SetA.size() + B.size() - Intersection;
  return Union == 0 ? 1.0
                    : static_cast<double>(Intersection) /
                          static_cast<double>(Union);
}

} // namespace

ConsistencyReport
ConsistencyChecker::check(const StaticAnalysisResult &Static,
                          const ProfileResult &Measured) const {
  ConsistencyReport Report;

  // Walk the union of locations, static order first (highest predicted
  // share leads), then measured-only contexts.
  std::vector<std::string> Locations;
  Locations.reserve(Static.Loops.size() + Measured.Loops.size());
  for (const LoopPrediction &Loop : Static.Loops)
    Locations.push_back(Loop.Location);
  for (const LoopConflictReport &Loop : Measured.Loops)
    if (!Static.byLocation(Loop.Location))
      Locations.push_back(Loop.Location);

  for (const std::string &Location : Locations) {
    const LoopPrediction *Predicted = Static.byLocation(Location);
    const LoopConflictReport *Observed = Measured.byLocation(Location);

    LoopConsistency Entry;
    Entry.Location = Location;
    Entry.HasStatic = Predicted != nullptr;
    Entry.HasMeasured = Observed != nullptr;
    if (Predicted) {
      Entry.StaticConflict = Predicted->ConflictPredicted;
      Entry.StaticContributionFactor = Predicted->PredictedContributionFactor;
    }
    bool MeasuredSignificant = false;
    if (Observed) {
      Entry.MeasuredConflict = Observed->ConflictPredicted;
      Entry.MeasuredContributionFactor = Observed->ContributionFactor;
      Entry.MeasuredVictimSets = measuredVictimSets(*Observed);
      MeasuredSignificant =
          Observed->MissContribution >= Opts.MinMeasuredContribution;
    }
    // Same bar rule on both per-set miss vectors: a time-rotating
    // conflict spreads its victims over the run on both sides, so the
    // analyzer's instantaneous occupancy victims must not be compared
    // against whole-run measured imbalance directly.
    if (Predicted && Observed)
      Entry.VictimSetAgreement =
          jaccard(victimSetsFromMisses(Predicted->PredictedMissesPerSet),
                  Entry.MeasuredVictimSets);

    if (Entry.StaticConflict && Entry.MeasuredConflict) {
      Entry.Verdict = ConsistencyVerdict::ConfirmedConflict;
      Entry.Note = "prediction and measurement agree on a conflict";
    } else if (Entry.StaticConflict) {
      Entry.Verdict = ConsistencyVerdict::StaticOnly;
      Entry.Note = Observed
                       ? "predicted conflict not visible in the measurement"
                       : "predicted conflict; loop missing from measurement";
    } else if (Entry.MeasuredConflict) {
      if (Predicted && Predicted->ExactPlacement && Static.ModelComplete) {
        Entry.Verdict = ConsistencyVerdict::Contradicted;
        Entry.Note = "measured conflict in a loop the model covers with "
                     "exact placement yet predicts clean — the model's "
                     "strides or sizes are wrong";
      } else {
        Entry.Verdict = ConsistencyVerdict::MeasuredOnly;
        Entry.Note = Predicted
                         ? "measured conflict where static placement is "
                           "only approximate"
                         : "measured conflict in a loop the model does "
                           "not describe";
      }
    } else if (Observed && !Predicted && MeasuredSignificant &&
               Static.ModelComplete) {
      // A significant measured context absent from a complete model is
      // itself a coverage gap worth flagging, even when clean.
      Entry.Verdict = ConsistencyVerdict::MeasuredOnly;
      Entry.Note = "significant measured context absent from the model";
    } else {
      Entry.Verdict = ConsistencyVerdict::ConfirmedClean;
      Entry.Note = "no conflict on either side";
    }

    switch (Entry.Verdict) {
    case ConsistencyVerdict::ConfirmedConflict:
    case ConsistencyVerdict::ConfirmedClean:
      ++Report.Confirmed;
      break;
    case ConsistencyVerdict::StaticOnly:
      ++Report.StaticOnly;
      break;
    case ConsistencyVerdict::MeasuredOnly:
      ++Report.MeasuredOnly;
      break;
    case ConsistencyVerdict::Contradicted:
      ++Report.Contradicted;
      break;
    }
    Report.Loops.push_back(std::move(Entry));
  }
  return Report;
}
