//===- analysis/StaticConflictAnalyzer.cpp - Static prediction -----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticConflictAnalyzer.h"

#include "core/RcdAnalyzer.h"
#include "core/SetFootprint.h"
#include "trace/Canonicalize.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace ccprof;

namespace {

/// Alignment used when packing unregistered (stack-like) allocations
/// onto their synthetic orphan region: stack buffers in one frame are
/// adjacent, not page-aligned, so packing at line granularity mimics
/// their relative layout better than page alignment would.
constexpr uint64_t SyntheticPackAlign = 64;

uint64_t alignUp(uint64_t Value, uint64_t Alignment) {
  return (Value + Alignment - 1) / Alignment * Alignment;
}

uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  return A > UINT64_MAX - B ? UINT64_MAX : A + B;
}

/// Lazily enumerates one descriptor's address stream: an odometer over
/// the (possibly truncated) loop levels, emitting every point offset
/// per innermost position.
struct DescriptorStream {
  const AccessDescriptor *Desc = nullptr;
  size_t LoopIdx = 0;
  size_t ArrayIdx = 0;
  uint64_t Base = 0; ///< Allocation base + StartOffset.
  std::vector<AccessLoopLevel> Levels;
  std::vector<uint64_t> Index;
  size_t PointIdx = 0;
  int64_t AffineOffset = 0; ///< Sum of Index[l] * stride[l].
  uint64_t Emitted = 0;
  uint64_t Total = 0;
  bool Truncated = false;

  void computeTotal() {
    Total = Desc->PointOffsetsBytes.empty()
                ? 1
                : static_cast<uint64_t>(Desc->PointOffsetsBytes.size());
    for (const AccessLoopLevel &Level : Levels) {
      if (Level.TripCount == 0) {
        Total = 0;
        return;
      }
      if (Total > UINT64_MAX / Level.TripCount) {
        Total = UINT64_MAX;
        return;
      }
      Total *= Level.TripCount;
    }
  }

  bool done() const { return Emitted >= Total; }

  uint64_t next() {
    const int64_t Point = Desc->PointOffsetsBytes.empty()
                              ? 0
                              : Desc->PointOffsetsBytes[PointIdx];
    const uint64_t Addr =
        Base + static_cast<uint64_t>(AffineOffset + Point);
    ++Emitted;
    // Advance: points innermost, then the level odometer.
    const size_t Points =
        Desc->PointOffsetsBytes.empty() ? 1 : Desc->PointOffsetsBytes.size();
    if (++PointIdx < Points)
      return Addr;
    PointIdx = 0;
    for (size_t L = Levels.size(); L-- > 0;) {
      AffineOffset += Levels[L].StrideBytes;
      if (++Index[L] < Levels[L].TripCount)
        return Addr;
      AffineOffset -=
          static_cast<int64_t>(Levels[L].TripCount) * Levels[L].StrideBytes;
      Index[L] = 0;
    }
    return Addr; // Stream exhausted; done() is now true.
  }
};

/// Per-(loop, array) accumulator.
struct ArrayAccum {
  std::string Array;
  uint64_t Accesses = 0;
  uint64_t DistinctLines = 0;
  uint64_t ConflictMisses = 0;
  std::vector<uint8_t> Touched;
};

/// Per-loop accumulator, keyed by resolved location.
struct LoopAccum {
  std::string Location;
  uint32_t HeaderLine = 0;
  bool Exact = true;
  bool Truncated = false;
  uint64_t Accesses = 0;
  uint64_t DistinctLines = 0;
  uint64_t ConflictMisses = 0;
  uint64_t ColdMisses = 0;
  std::vector<uint64_t> LinesPerSet;
  std::vector<uint64_t> MissesPerSet;
  std::vector<uint32_t> PeakOcc;
  std::vector<uint8_t> Victim;
  std::vector<uint8_t> Touched;
  std::vector<ArrayAccum> Arrays;
  std::map<std::string, size_t> ArrayIndex;

  size_t arrayIndex(const std::string &Name, uint64_t NumSets) {
    auto [It, Inserted] = ArrayIndex.try_emplace(Name, Arrays.size());
    if (Inserted) {
      Arrays.emplace_back();
      Arrays.back().Array = Name;
      Arrays.back().Touched.assign(NumSets, 0);
    }
    return It->second;
  }
};

} // namespace

StaticConflictAnalyzer::StaticConflictAnalyzer(Options Opts,
                                               ConflictClassifier Classifier)
    : Opts(Opts), Classifier(std::move(Classifier)) {}

StaticAnalysisResult
StaticConflictAnalyzer::analyze(const StaticAccessModel &Model,
                                const ProgramStructure *Structure) const {
  StaticAnalysisResult Result;
  Result.Geometry = Opts.Geometry;
  Result.RcdThreshold = Opts.RcdThreshold;
  Result.ModelComplete = Model.Complete;
  if (Model.empty())
    return Result;

  const uint64_t NumSets = Opts.Geometry.numSets();
  const uint32_t Ways = Opts.Geometry.associativity();

  // Place allocations: registered ones on the exact canonical layout
  // (matching what simulation of a canonicalized trace sees),
  // unregistered ones packed onto the first orphan region, arrays the
  // model never declared on orphan regions of their own.
  std::vector<uint64_t> RegisteredSizes;
  for (const ModeledAllocation &Alloc : Model.Allocations)
    if (Alloc.Registered)
      RegisteredSizes.push_back(Alloc.SizeBytes);
  const CanonicalLayout Layout = canonicalAllocationLayout(RegisteredSizes);

  struct Placement {
    uint64_t Base = 0;
    bool Exact = true;
  };
  std::unordered_map<std::string, Placement> PlacementOf;
  size_t RegIdx = 0;
  uint64_t PackCursor = Layout.FirstOrphanBase;
  for (const ModeledAllocation &Alloc : Model.Allocations) {
    if (Alloc.Registered) {
      PlacementOf[Alloc.Name] = {Layout.Bases[RegIdx++], true};
    } else {
      const uint64_t Base = alignUp(PackCursor, SyntheticPackAlign);
      PlacementOf[Alloc.Name] = {Base, false};
      PackCursor = Base + Alloc.SizeBytes;
    }
  }
  uint64_t UnknownCursor = Layout.FirstOrphanBase + Layout.OrphanSpan;
  auto placementFor = [&](const std::string &Name) -> Placement {
    auto It = PlacementOf.find(Name);
    if (It != PlacementOf.end())
      return It->second;
    const Placement Synthetic{UnknownCursor, false};
    PlacementOf[Name] = Synthetic;
    UnknownCursor += Layout.OrphanSpan;
    return Synthetic;
  };

  // Resolve every descriptor line to a loop context, exactly the way
  // measured samples are attributed.
  std::vector<LoopAccum> Loops;
  std::map<std::string, size_t> LoopIndex;
  auto loopIndexForLine = [&](uint32_t Line) -> size_t {
    std::string Location;
    uint32_t Header = Line;
    if (Structure) {
      if (std::optional<LoopRef> Ref = Structure->innermostLoopForLine(Line)) {
        Location = Structure->describeLoop(*Ref);
        Header = Structure->headerLine(*Ref);
      }
    }
    if (Location.empty())
      Location = Model.SourceFile + ":" + std::to_string(Line);
    auto [It, Inserted] = LoopIndex.try_emplace(Location, Loops.size());
    if (Inserted) {
      Loops.emplace_back();
      LoopAccum &L = Loops.back();
      L.Location = Location;
      L.HeaderLine = Header;
      L.LinesPerSet.assign(NumSets, 0);
      L.MissesPerSet.assign(NumSets, 0);
      L.PeakOcc.assign(NumSets, 0);
      L.Victim.assign(NumSets, 0);
      L.Touched.assign(NumSets, 0);
    }
    return It->second;
  };

  // Group descriptors into per-phase streams.
  std::map<uint32_t, std::vector<DescriptorStream>> Phases;
  std::map<uint32_t, size_t> LineToLoop;
  for (const AccessDescriptor &Desc : Model.Accesses) {
    const Placement Where = placementFor(Desc.Array);
    DescriptorStream Stream;
    Stream.Desc = &Desc;
    Stream.LoopIdx = loopIndexForLine(Desc.Line);
    LineToLoop.emplace(Desc.Line, Stream.LoopIdx);
    Stream.ArrayIdx =
        Loops[Stream.LoopIdx].arrayIndex(Desc.Array, NumSets);
    Stream.Base = Where.Base + Desc.StartOffset;
    Stream.Levels = Desc.Levels;
    Stream.Index.assign(Desc.Levels.size(), 0);
    Stream.computeTotal();
    if (!Where.Exact)
      Loops[Stream.LoopIdx].Exact = false;
    if (Stream.Total > 0)
      Phases[Desc.Phase].push_back(std::move(Stream));
  }

  // Halve outer trip counts of the largest stream until each phase fits
  // the enumeration budget.
  for (auto &[Phase, Streams] : Phases) {
    (void)Phase;
    auto phaseTotal = [&] {
      uint64_t Sum = 0;
      for (const DescriptorStream &S : Streams)
        Sum = saturatingAdd(Sum, S.Total);
      return Sum;
    };
    while (phaseTotal() > Opts.MaxStreamAccesses) {
      DescriptorStream *Largest = nullptr;
      for (DescriptorStream &S : Streams) {
        bool Halvable = false;
        for (const AccessLoopLevel &Level : S.Levels)
          Halvable |= Level.TripCount > 1;
        if (Halvable && (!Largest || S.Total > Largest->Total))
          Largest = &S;
      }
      if (!Largest)
        break;
      for (AccessLoopLevel &Level : Largest->Levels) {
        if (Level.TripCount > 1) {
          Level.TripCount = std::max<uint64_t>(1, Level.TripCount / 2);
          break;
        }
      }
      Largest->computeTotal();
      Largest->Truncated = true;
      Loops[Largest->LoopIdx].Truncated = true;
    }
  }

  // Run the phases through one occupancy window and one RCD analyzer.
  // The window is a cache's worth of accesses; the RCD analyzer is the
  // measured pipeline's, fed with predicted-miss ordinals.
  SetOccupancyTracker Tracker(Opts.Geometry, NumSets * Ways);
  RcdAnalyzer Rcd(NumSets);
  uint64_t MissOrdinal = 0;
  // Phases order the stream but do not reset the tracker: the real
  // cache is continuous across program phases, so residency built by
  // one phase legitimately serves the next (a local buffer re-walked
  // every phase stays hot, exactly as it does under simulation).
  for (auto &[Phase, Streams] : Phases) {
    (void)Phase;
    // Proportional K-way merge: always advance the stream that has
    // completed the smallest fraction of its accesses, so co-phased
    // descriptors interleave the way the program's instructions do.
    std::vector<DescriptorStream *> Active;
    for (DescriptorStream &S : Streams)
      Active.push_back(&S);
    while (!Active.empty()) {
      DescriptorStream *Next = Active.front();
      for (DescriptorStream *S : Active)
        if (S->Emitted * Next->Total < Next->Emitted * S->Total)
          Next = S;
      const uint64_t Addr = Next->next();

      const uint64_t Set = Tracker.access(Addr);
      const bool Cold = Tracker.lastAccessWasNewLine();
      const bool InWindow = Tracker.lastAccessWasInWindow();
      const bool Resident = Tracker.lastAccessWasResident();
      const uint32_t Occ = Tracker.occupancy(Set);

      LoopAccum &L = Loops[Next->LoopIdx];
      ArrayAccum &A = L.Arrays[Next->ArrayIdx];
      ++L.Accesses;
      ++A.Accesses;
      L.Touched[Set] = 1;
      A.Touched[Set] = 1;
      if (Occ > L.PeakOcc[Set])
        L.PeakOcc[Set] = Occ;
      if (Cold) {
        ++L.DistinctLines;
        ++A.DistinctLines;
        ++L.LinesPerSet[Set];
      }
      // Stores update the window (they occupy cache lines) but only
      // count as misses when IncludeStores is set — the measured miss
      // stream applies the same rule (MissStreamOptions::IncludeStores),
      // so predicted miss counts stay comparable to simulated ones.
      const bool Counted = !Next->Desc->IsStore || Opts.IncludeStores;
      if (Counted && !Resident) {
        ++MissOrdinal;
        Rcd.addMiss(static_cast<ContextId>(Next->LoopIdx), Set, MissOrdinal);
        ++L.MissesPerSet[Set];
        if (Cold) {
          ++L.ColdMisses;
        } else {
          ++L.ConflictMisses;
          ++A.ConflictMisses;
        }
        // A miss on a line still inside the window is genuine thrash:
        // the set's pressure pushed a recently used line past LRU
        // reach. Out-of-window misses are compulsory/capacity and do
        // not mark victims.
        if (InWindow)
          L.Victim[Set] = 1;
      }

      if (Next->done())
        Active.erase(std::find(Active.begin(), Active.end(), Next));
    }
  }

  // Fold the accumulators into predictions.
  Result.PredictedMisses = MissOrdinal;
  Result.Loops.reserve(Loops.size());
  for (size_t Idx = 0; Idx < Loops.size(); ++Idx) {
    LoopAccum &L = Loops[Idx];
    Result.TotalAccesses += L.Accesses;

    LoopPrediction P;
    P.Location = L.Location;
    P.HeaderLine = L.HeaderLine;
    P.Accesses = L.Accesses;
    P.DistinctLines = L.DistinctLines;
    for (uint64_t Set = 0; Set < NumSets; ++Set) {
      P.SetsTouched += L.Touched[Set];
      if (L.Victim[Set])
        P.VictimSets.push_back(static_cast<uint32_t>(Set));
    }
    P.PeakSetOccupancy = std::move(L.PeakOcc);
    P.LinesPerSet = std::move(L.LinesPerSet);
    P.PredictedMissesPerSet = std::move(L.MissesPerSet);
    P.PredictedConflictMisses = L.ConflictMisses;
    P.PredictedColdMisses = L.ColdMisses;
    if (const RcdProfile *Prof = Rcd.profile(static_cast<ContextId>(Idx))) {
      P.PredictedRcd = Prof->rcd();
      P.PredictedContributionFactor =
          Prof->contributionFactor(Opts.RcdThreshold);
      if (!P.PredictedRcd.empty())
        P.PredictedMedianRcd =
            static_cast<double>(P.PredictedRcd.quantile(0.5));
    }
    const uint64_t Misses = L.ColdMisses + L.ConflictMisses;
    P.MissShare = Result.PredictedMisses
                      ? static_cast<double>(Misses) /
                            static_cast<double>(Result.PredictedMisses)
                      : 0.0;
    P.Significant = Misses > 0 && P.MissShare >= Opts.SignificanceThreshold;
    const ConflictClassifier::Decision Verdict =
        Classifier.classify(P.PredictedContributionFactor);
    P.ConflictProbability = Verdict.Probability;
    P.ConflictPredicted = Verdict.Conflict && P.Significant;
    P.ExactPlacement = L.Exact;
    P.Truncated = L.Truncated;
    for (ArrayAccum &A : L.Arrays) {
      ArrayFootprint F;
      F.Array = A.Array;
      F.Accesses = A.Accesses;
      F.DistinctLines = A.DistinctLines;
      F.PredictedConflictMisses = A.ConflictMisses;
      for (uint64_t Set = 0; Set < NumSets; ++Set)
        F.SetsTouched += A.Touched[Set];
      P.Arrays.push_back(std::move(F));
    }
    Result.Loops.push_back(std::move(P));
  }

  // Analytic reuse profiles: estimated on the *untruncated* model (the
  // estimator is O(descriptors), not O(stream)), joined into the same
  // loop contexts the occupancy pass used, and read out at the
  // requested geometries through the shared Hill–Smith model.
  ReuseProfileEstimator::Options EstOpts;
  EstOpts.LineBytes = Opts.Geometry.lineBytes();
  const ReuseProfileEstimate Estimate =
      ReuseProfileEstimator(EstOpts).estimate(Model);
  Result.ReuseEstimated = Estimate.Valid;
  Result.ReuseExactPlacement = Estimate.ExactPlacement;
  if (Estimate.Valid) {
    for (const auto &[Line, Profile] : Estimate.PerLine) {
      const auto It = LineToLoop.find(Line);
      if (It == LineToLoop.end())
        continue;
      Result.Loops[It->second].Reuse.merge(Profile);
    }
    Result.ProgramReuse = Estimate.Program;
    for (LoopPrediction &Loop : Result.Loops) {
      Loop.PredictedMrc.reserve(Opts.MrcGeometries.size());
      for (const CacheGeometry &G : Opts.MrcGeometries)
        Loop.PredictedMrc.push_back({G, Loop.Reuse.missRatioAt(G)});
    }
    Result.ProgramMrc.reserve(Opts.MrcGeometries.size());
    for (const CacheGeometry &G : Opts.MrcGeometries)
      Result.ProgramMrc.push_back({G, Result.ProgramReuse.missRatioAt(G)});
  }

  std::stable_sort(Result.Loops.begin(), Result.Loops.end(),
                   [](const LoopPrediction &A, const LoopPrediction &B) {
                     if (A.MissShare != B.MissShare)
                       return A.MissShare > B.MissShare;
                     return A.Location < B.Location;
                   });
  return Result;
}
