//===- pmu/PebsEvent.h - Simulated PEBS events and samples -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event and sample types of the simulated performance monitoring
/// unit. The monitored event is MEM_LOAD_UOPS_RETIRED:L1_MISS — every
/// retired load that missed L1 — and a PEBS sample captures the
/// instruction pointer and effective data address of the sampled event
/// (paper Secs. 2.2, 4). In this reproduction the event stream is
/// produced by replaying a Trace through the L1 cache simulator instead
/// of by the hardware, which preserves the exact (IP, address) tuple
/// distribution the real PMU would deliver.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PMU_PEBSEVENT_H
#define CCPROF_PMU_PEBSEVENT_H

#include "sim/Cache.h"
#include "sim/PageMapper.h"
#include "sim/ShardedSim.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace ccprof {

/// One occurrence of the monitored event (a load miss at the profiled
/// level).
struct MissEvent {
  SiteId Ip = UnknownSite;
  /// The address the target cache indexes by: virtual for L1, physical
  /// for L2 (PEBS delivers the linear address; the kernel driver can
  /// translate it while the page is pinned by the interrupt).
  uint64_t Addr = 0;
  /// The virtual address, always — data-centric attribution matches it
  /// against the (virtual) allocation ranges.
  uint64_t VirtualAddr = 0;

  bool operator==(const MissEvent &Other) const = default;
};

/// One PEBS sample: the captured event plus its position in the event
/// stream (the running count of event occurrences, which the real PMU
/// exposes implicitly through the programmed reset period).
struct PebsSample {
  MissEvent Event;
  uint64_t EventIndex = 0; ///< 0-based index among all miss events.
};

/// Options for deriving the L1 miss stream from a trace.
struct MissStreamOptions {
  ReplacementKind Policy = ReplacementKind::Lru;
  /// The hardware event counts retired *load* misses; stores still
  /// update the cache but produce no event unless this is set.
  bool IncludeStores = false;
};

/// Replays \p Execution through an L1 cache of \p Geometry and \returns
/// the stream of miss events, one per missing load (and store, if
/// requested). This is the reproduction's MEM_LOAD_UOPS_RETIRED:L1_MISS
/// event source.
std::vector<MissEvent> collectL1MissStream(const Trace &Execution,
                                           const CacheGeometry &Geometry,
                                           MissStreamOptions Options = {});

/// Replays \p Execution through a virtually-indexed L1 and a
/// physically-indexed L2 (addresses translated by \p Mapper) and
/// \returns one event per load that misses both, carrying the
/// *physical* address — the MEM_LOAD_UOPS_RETIRED:L2_MISS analogue
/// needed to extend RCD analysis above L1 (paper footnote 1).
std::vector<MissEvent> collectL2MissStream(const Trace &Execution,
                                           const CacheGeometry &L1Geometry,
                                           const CacheGeometry &L2Geometry,
                                           PageMapper &Mapper,
                                           MissStreamOptions Options = {});

/// Aggregate view of a miss-stream simulation, for callers that need
/// statistics but not the ordered event stream — the merge-elision
/// fast path of the sharded engine: per-shard counters combine
/// directly (addition is order-free), so no global miss order is ever
/// reconstructed. Field-for-field consistent with the ordered
/// collector: Events equals the stream length collectL1MissStream
/// would return under the same options.
struct MissStreamAggregates {
  uint64_t Accesses = 0;    ///< References replayed (the trace length).
  uint64_t Misses = 0;      ///< All missing accesses, loads and stores.
  uint64_t LoadMisses = 0;
  uint64_t StoreMisses = 0;
  /// Entries the ordered collector would emit: load misses, plus store
  /// misses when MissStreamOptions::IncludeStores is set.
  uint64_t Events = 0;
  /// Misses per (global) set index, size Geometry.numSets().
  std::vector<uint64_t> PerSetMisses;

  bool operator==(const MissStreamAggregates &Other) const = default;
};

/// Replays \p Execution through an L1 cache of \p Geometry and \returns
/// only aggregate statistics. With a sharding-capable \p Ctx the
/// per-shard replays run in parallel and the ordered merge is elided
/// entirely (Ctx.Stats counts the elisions); the returned aggregates
/// are identical to those derived from the ordered collectors at every
/// execution shape, including the sequential fallbacks (Random policy,
/// short traces, no pool).
MissStreamAggregates
collectL1MissAggregates(const Trace &Execution, const CacheGeometry &Geometry,
                        MissStreamOptions Options = {},
                        const SimContext &Ctx = {});

/// Set-sharded parallel variant of collectL1MissStream: partitions the
/// trace by set index, simulates contiguous set ranges on \p Ctx's
/// thread pool, and k-way merges the per-shard miss lists by global
/// sequence number. The returned stream is element-identical to the
/// sequential collector's at every shard and thread count. Falls back
/// to the sequential path when \p Ctx has no pool, the trace is below
/// Ctx.MinRefsToShard, the geometry has a single set, or the policy is
/// Random (whose cache-global RNG makes set-decomposition inexact).
std::vector<MissEvent>
collectL1MissStreamParallel(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options, const SimContext &Ctx);

/// Set-sharded parallel variant of collectL2MissStream. The dominant
/// cost — replaying the full trace through L1 — is sharded by L1 set.
/// The merged L1 miss list then drives the page mapper sequentially
/// (frame allocation is first-touch, so translation *order* is
/// semantic and must follow global miss order), after which the
/// translated stream is itself partitioned by L2 set and replayed
/// sharded when it is long enough to clear Ctx.MinRefsToShard
/// (Ctx.Stats->L2StageShardedSims counts those), sequentially
/// otherwise. The emitted stream is byte-identical across every
/// execution shape. Same fallback conditions as the L1 variant.
std::vector<MissEvent>
collectL2MissStreamParallel(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options,
                            const SimContext &Ctx);

} // namespace ccprof

#endif // CCPROF_PMU_PEBSEVENT_H
