//===- pmu/PebsEvent.cpp - Simulated PEBS events and samples -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsEvent.h"

using namespace ccprof;

std::vector<MissEvent>
ccprof::collectL1MissStream(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // Sized for a pessimistic miss ratio up front: push_back regrowth is
  // a visible cost in profileImpl profiles on long traces.
  Stream.reserve(Execution.size() / 4 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    CacheAccessResult Access = L1.access(Record.Addr, Record.IsWrite);
    if (Access.Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent>
ccprof::collectL2MissStream(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options) {
  Cache L1(L1Geometry, Options.Policy);
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // L2 misses are rarer than L1 misses; reserve a smaller slab.
  Stream.reserve(Execution.size() / 16 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    // L1 is virtually indexed; only its misses reach L2, which sees
    // physical addresses.
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}
