//===- pmu/PebsEvent.cpp - Simulated PEBS events and samples -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsEvent.h"

using namespace ccprof;

std::vector<MissEvent>
ccprof::collectL1MissStream(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  for (const MemoryRecord &Record : Execution.records()) {
    CacheAccessResult Access = L1.access(Record.Addr, Record.IsWrite);
    if (Access.Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent>
ccprof::collectL2MissStream(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options) {
  Cache L1(L1Geometry, Options.Policy);
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  for (const MemoryRecord &Record : Execution.records()) {
    // L1 is virtually indexed; only its misses reach L2, which sees
    // physical addresses.
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}
