//===- pmu/PebsEvent.cpp - Simulated PEBS events and samples -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsEvent.h"

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ccprof;

namespace {

/// Decision of the sharding gate: how many shards to cut and how many
/// pool workers were granted to help simulate them.
struct ShardGrant {
  unsigned Shards = 1;  ///< 1 = stay sequential.
  unsigned Helpers = 0; ///< Budget slots to release afterwards.
};

/// Applies the oversubscription policy: shard only with threads to
/// spare. The budget hands out idle slots only — when batch-level jobs
/// already cover the machine nothing is granted and the simulation
/// stays sequential; on the tail of a run (or a small matrix on a big
/// machine) the freed worker slots flow here and the job fans out.
ShardGrant acquireShardGrant(const SimContext &Ctx, uint64_t NumSets,
                             size_t NumRefs) {
  ShardGrant Grant;
  if (!Ctx.Pool || NumSets < 2 || NumRefs < Ctx.MinRefsToShard)
    return Grant;

  const unsigned MaxUseful = static_cast<unsigned>(std::min<uint64_t>(
      NumSets, Ctx.Shards != 0 ? Ctx.Shards : Ctx.Pool->workerCount() + 1));
  if (MaxUseful <= 1 && Ctx.Shards == 0)
    return Grant;

  Grant.Helpers =
      Ctx.Budget ? Ctx.Budget->tryAcquire(MaxUseful - 1)
                 : std::min(Ctx.Pool->workerCount(), MaxUseful - 1);
  // An explicit shard count is honored even when no helper is idle
  // (the caller's thread simulates every shard); an automatic count
  // follows the grant so a lone thread skips partitioning entirely.
  Grant.Shards = Ctx.Shards != 0
                     ? static_cast<unsigned>(std::min<uint64_t>(Ctx.Shards,
                                                                NumSets))
                     : Grant.Helpers + 1;
  return Grant;
}

void releaseShardGrant(const SimContext &Ctx, const ShardGrant &Grant) {
  if (Ctx.Budget && Grant.Helpers > 0)
    Ctx.Budget->release(Grant.Helpers);
}

/// Routes every trace record to its shard. Two passes: an exact-count
/// reserve pass, then the fill — per-shard vectors never regrow.
std::vector<std::vector<ShardRef>>
partitionBySet(std::span<const MemoryRecord> Records,
               const CacheGeometry &Geometry,
               std::span<const SetRange> Plan) {
  const ShardMap Map(Plan);
  std::vector<size_t> Counts(Plan.size(), 0);
  for (const MemoryRecord &Record : Records)
    ++Counts[Map.shardOf(Geometry.setIndexOf(Record.Addr))];

  std::vector<std::vector<ShardRef>> Shards(Plan.size());
  for (size_t S = 0; S < Plan.size(); ++S)
    Shards[S].reserve(Counts[S]);
  for (size_t I = 0; I < Records.size(); ++I) {
    const MemoryRecord &Record = Records[I];
    Shards[Map.shardOf(Geometry.setIndexOf(Record.Addr))].push_back(
        ShardRef::make(I, Record.Addr, Record.IsWrite));
  }
  return Shards;
}

/// Shards the full reference stream through caches of \p Geometry and
/// \returns the globally-ordered sequence numbers of every missing
/// access (loads and stores alike — callers filter).
std::vector<uint64_t> shardedMissSeqs(std::span<const MemoryRecord> Records,
                                      const CacheGeometry &Geometry,
                                      ReplacementKind Policy,
                                      const SimContext &Ctx,
                                      const ShardGrant &Grant) {
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(),
                                                Grant.Shards);
  const std::vector<std::vector<ShardRef>> Parts =
      partitionBySet(Records, Geometry, Plan);

  std::vector<std::vector<uint64_t>> PerShard(Plan.size());
  Ctx.Pool->parallelFor(Plan.size(), Grant.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool ? Ctx.CachePool->acquire(Geometry, Policy, Plan[S])
                      : std::make_unique<Cache>(Geometry, Plan[S], Policy);
    simulateShard(*ShardCache, Parts[S], PerShard[S]);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  return mergeMissSeqs(PerShard);
}

} // namespace

std::vector<MissEvent>
ccprof::collectL1MissStream(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // Sized for a pessimistic miss ratio up front: push_back regrowth is
  // a visible cost in profileImpl profiles on long traces.
  Stream.reserve(Execution.size() / 4 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    CacheAccessResult Access = L1.access(Record.Addr, Record.IsWrite);
    if (Access.Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent>
ccprof::collectL2MissStream(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options) {
  Cache L1(L1Geometry, Options.Policy);
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // L2 misses are rarer than L1 misses; reserve a smaller slab.
  Stream.reserve(Execution.size() / 16 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    // L1 is virtually indexed; only its misses reach L2, which sees
    // physical addresses.
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent> ccprof::collectL1MissStreamParallel(
    const Trace &Execution, const CacheGeometry &Geometry,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL1MissStream(Execution, Geometry, Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL1MissStream(Execution, Geometry, Options);
  }

  const std::vector<uint64_t> MissSeqs = shardedMissSeqs(
      Execution.records(), Geometry, Options.Policy, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);

  const std::span<const MemoryRecord> Records = Execution.records();
  std::vector<MissEvent> Stream;
  Stream.reserve(MissSeqs.size());
  for (uint64_t Seq : MissSeqs) {
    const MemoryRecord &Record = Records[Seq];
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent> ccprof::collectL2MissStreamParallel(
    const Trace &Execution, const CacheGeometry &L1Geometry,
    const CacheGeometry &L2Geometry, PageMapper &Mapper,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, L1Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  }

  // Stage 1 (sharded): the full-trace L1 replay, by far the dominant
  // cost. Every L1 miss reaches L2 regardless of load/store, so no
  // filtering happens here.
  const std::vector<uint64_t> L1MissSeqs = shardedMissSeqs(
      Execution.records(), L1Geometry, Options.Policy, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);

  // Stage 2 (sequential): the merged L1 miss list is a small fraction
  // of the trace; replaying it in global order keeps the first-touch
  // page translations and the L2 replacement sequence bit-identical to
  // the sequential collector.
  const std::span<const MemoryRecord> Records = Execution.records();
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  Stream.reserve(L1MissSeqs.size() / 4 + 16);
  for (uint64_t Seq : L1MissSeqs) {
    const MemoryRecord &Record = Records[Seq];
    const uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}
