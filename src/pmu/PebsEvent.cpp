//===- pmu/PebsEvent.cpp - Simulated PEBS events and samples -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsEvent.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

namespace {

/// Decision of the sharding gate: how many shards to cut and how many
/// pool workers were granted to help simulate them.
struct ShardGrant {
  unsigned Shards = 1;  ///< 1 = stay sequential.
  unsigned Helpers = 0; ///< Budget slots to release afterwards.
};

/// Applies the oversubscription policy: shard only with threads to
/// spare. The budget hands out idle slots only — when batch-level jobs
/// already cover the machine nothing is granted and the simulation
/// stays sequential; on the tail of a run (or a small matrix on a big
/// machine) the freed worker slots flow here and the job fans out.
ShardGrant acquireShardGrant(const SimContext &Ctx, uint64_t NumSets,
                             size_t NumRefs) {
  ShardGrant Grant;
  if (!Ctx.Pool || NumSets < 2 || NumRefs < Ctx.MinRefsToShard)
    return Grant;

  // The grant asks the budget for every pool worker, not Shards - 1:
  // partition chunks, merge segments, and the event rebuild all
  // parallelize past the shard count, so slots beyond the replay's
  // need still cut the serial fraction. Replay simply leaves extra
  // workers idle (parallelFor hands out at most one token per shard).
  Grant.Helpers = Ctx.Budget ? Ctx.Budget->tryAcquire(Ctx.Pool->workerCount())
                             : Ctx.Pool->workerCount();
  // An explicit shard count is honored even when no helper is idle
  // (the caller's thread simulates every shard); an automatic count
  // follows the grant so a lone thread skips partitioning entirely.
  Grant.Shards = static_cast<unsigned>(std::min<uint64_t>(
      NumSets, Ctx.Shards != 0 ? Ctx.Shards : Grant.Helpers + 1));
  if (Ctx.Stats && Grant.Shards > 1) {
    Ctx.Stats->ShardedSims.fetch_add(1, std::memory_order_relaxed);
    // Degraded mode: the shard count was forced but no helper showed
    // up, so one thread replays every shard back to back. Bench sweeps
    // read this to tell "sharded but unhelped" from real parallelism.
    if (Grant.Helpers == 0)
      Ctx.Stats->UnhelpedShardedSims.fetch_add(1, std::memory_order_relaxed);
  }
  return Grant;
}

void releaseShardGrant(const SimContext &Ctx, const ShardGrant &Grant) {
  if (Ctx.Budget && Grant.Helpers > 0)
    Ctx.Budget->release(Grant.Helpers);
}

/// Routes the stream to its shards: block-parallel count + scatter
/// when the grant came with helpers, the sequential two-pass fill when
/// the calling thread is on its own (the degraded explicit-shards
/// mode, where chunk bookkeeping would be pure overhead).
ShardPartition partitionForGrant(std::span<const MemoryRecord> Records,
                                 const CacheGeometry &Geometry,
                                 std::span<const SetRange> Plan,
                                 const SimContext &Ctx,
                                 const ShardGrant &Grant) {
  if (Grant.Helpers > 0)
    return partitionBySetParallel(Records, Geometry, Plan, *Ctx.Pool,
                                  Grant.Helpers);
  return partitionBySet(Records, Geometry, Plan);
}

/// Shards the full reference stream through caches of \p Geometry and
/// \returns the globally-ordered sequence numbers of every missing
/// access (loads and stores alike — callers filter).
std::vector<uint64_t> shardedMissSeqs(std::span<const MemoryRecord> Records,
                                      const CacheGeometry &Geometry,
                                      ReplacementKind Policy,
                                      const SimContext &Ctx,
                                      const ShardGrant &Grant) {
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(),
                                                Grant.Shards);
  const ShardPartition Parts =
      partitionForGrant(Records, Geometry, Plan, Ctx, Grant);

  std::vector<std::vector<uint64_t>> PerShard(Plan.size());
  Ctx.Pool->parallelFor(Plan.size(), Grant.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool ? Ctx.CachePool->acquire(Geometry, Policy, Plan[S])
                      : std::make_unique<Cache>(Geometry, Plan[S], Policy);
    simulateShard(*ShardCache, Parts.shard(S), PerShard[S]);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  return mergeMissSeqs(PerShard, Ctx.Pool, Grant.Helpers);
}

/// Aggregate-only sharded replay: per-shard counters and per-set miss
/// counts combine without ever reconstructing global order — the merge
/// is elided outright.
MissStreamAggregates
shardedMissAggregates(std::span<const MemoryRecord> Records,
                      const CacheGeometry &Geometry, ReplacementKind Policy,
                      MissStreamOptions Options, const SimContext &Ctx,
                      const ShardGrant &Grant) {
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(),
                                                Grant.Shards);
  const ShardPartition Parts =
      partitionForGrant(Records, Geometry, Plan, Ctx, Grant);

  MissStreamAggregates Agg;
  Agg.Accesses = Records.size();
  Agg.PerSetMisses.assign(Geometry.numSets(), 0);
  std::vector<ShardAggregates> PerShard(Plan.size());
  Ctx.Pool->parallelFor(Plan.size(), Grant.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool ? Ctx.CachePool->acquire(Geometry, Policy, Plan[S])
                      : std::make_unique<Cache>(Geometry, Plan[S], Policy);
    PerShard[S] = simulateShardAggregates(*ShardCache, Parts.shard(S));
    // Shard windows are disjoint set ranges, so these writes never
    // overlap across workers.
    std::copy(ShardCache->perSetMisses().begin(),
              ShardCache->perSetMisses().end(),
              Agg.PerSetMisses.begin() + Plan[S].Begin);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  for (const ShardAggregates &Shard : PerShard) {
    Agg.Misses += Shard.Misses;
    Agg.LoadMisses += Shard.LoadMisses;
    Agg.StoreMisses += Shard.StoreMisses;
  }
  Agg.Events = Agg.LoadMisses + (Options.IncludeStores ? Agg.StoreMisses : 0);
  if (Ctx.Stats)
    Ctx.Stats->ElidedMerges.fetch_add(1, std::memory_order_relaxed);
  return Agg;
}

/// Sequential aggregate collection: the same replay as
/// collectL1MissStream, counting instead of recording.
MissStreamAggregates
sequentialMissAggregates(const Trace &Execution, const CacheGeometry &Geometry,
                         MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  MissStreamAggregates Agg;
  Agg.Accesses = Execution.size();
  for (const MemoryRecord &Record : Execution.records()) {
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    ++(Record.IsWrite ? Agg.StoreMisses : Agg.LoadMisses);
  }
  Agg.Misses = L1.stats().Misses;
  Agg.PerSetMisses = L1.perSetMisses();
  Agg.Events = Agg.LoadMisses + (Options.IncludeStores ? Agg.StoreMisses : 0);
  return Agg;
}

} // namespace

std::vector<MissEvent>
ccprof::collectL1MissStream(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // Sized for a pessimistic miss ratio up front: push_back regrowth is
  // a visible cost in profileImpl profiles on long traces.
  Stream.reserve(Execution.size() / 4 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    CacheAccessResult Access = L1.access(Record.Addr, Record.IsWrite);
    if (Access.Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent>
ccprof::collectL2MissStream(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options) {
  Cache L1(L1Geometry, Options.Policy);
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // L2 misses are rarer than L1 misses; reserve a smaller slab.
  Stream.reserve(Execution.size() / 16 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    // L1 is virtually indexed; only its misses reach L2, which sees
    // physical addresses.
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}

MissStreamAggregates
ccprof::collectL1MissAggregates(const Trace &Execution,
                                const CacheGeometry &Geometry,
                                MissStreamOptions Options,
                                const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return sequentialMissAggregates(Execution, Geometry, Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return sequentialMissAggregates(Execution, Geometry, Options);
  }
  MissStreamAggregates Agg = shardedMissAggregates(
      Execution.records(), Geometry, Options.Policy, Options, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);
  return Agg;
}

std::vector<MissEvent> ccprof::collectL1MissStreamParallel(
    const Trace &Execution, const CacheGeometry &Geometry,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL1MissStream(Execution, Geometry, Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL1MissStream(Execution, Geometry, Options);
  }

  const std::vector<uint64_t> MissSeqs = shardedMissSeqs(
      Execution.records(), Geometry, Options.Policy, Ctx, Grant);

  // Rebuild the MissEvent stream from the merged sequence numbers.
  // This tail is proportional to the miss count, so it gets the same
  // count / prefix / scatter treatment as the partition instead of
  // running serially: chunks count their kept events, a prefix sum
  // assigns disjoint output slices, and the scatter fills them. The
  // chunk grid never changes the bytes produced — only who writes
  // them — so the stream stays identical at every helper count.
  const std::span<const MemoryRecord> Records = Execution.records();
  std::vector<MissEvent> Stream;
  auto KeepsEvent = [&](uint64_t Seq) {
    return !Records[Seq].IsWrite || Options.IncludeStores;
  };
  if (Grant.Helpers > 0 && !MissSeqs.empty()) {
    const std::vector<size_t> Chunks =
        planChunks(MissSeqs.size(), Grant.Helpers + 1, size_t{1} << 15);
    const size_t NumChunks = Chunks.size() - 1;
    std::vector<size_t> Offsets(NumChunks + 1, 0);
    if (Options.IncludeStores) {
      // Every miss becomes an event: offsets are the chunk bounds.
      Offsets = Chunks;
    } else {
      Ctx.Pool->parallelFor(NumChunks, Grant.Helpers, [&](size_t C) {
        size_t Kept = 0;
        for (size_t I = Chunks[C]; I < Chunks[C + 1]; ++I)
          Kept += KeepsEvent(MissSeqs[I]) ? 1 : 0;
        Offsets[C + 1] = Kept;
      });
      for (size_t C = 0; C < NumChunks; ++C)
        Offsets[C + 1] += Offsets[C];
    }
    Stream.resize(Offsets.back());
    Ctx.Pool->parallelFor(NumChunks, Grant.Helpers, [&](size_t C) {
      size_t Out = Offsets[C];
      for (size_t I = Chunks[C]; I < Chunks[C + 1]; ++I) {
        const MemoryRecord &Record = Records[MissSeqs[I]];
        if (Record.IsWrite && !Options.IncludeStores)
          continue;
        Stream[Out++] = MissEvent{Record.Site, Record.Addr, Record.Addr};
      }
      assert(Out == Offsets[C + 1] && "chunk must fill its exact slice");
    });
  } else {
    Stream.reserve(MissSeqs.size());
    for (uint64_t Seq : MissSeqs) {
      if (!KeepsEvent(Seq))
        continue;
      const MemoryRecord &Record = Records[Seq];
      Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
    }
  }
  releaseShardGrant(Ctx, Grant);
  return Stream;
}

std::vector<MissEvent> ccprof::collectL2MissStreamParallel(
    const Trace &Execution, const CacheGeometry &L1Geometry,
    const CacheGeometry &L2Geometry, PageMapper &Mapper,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, L1Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  }

  // Stage 1 (sharded): the full-trace L1 replay, by far the dominant
  // cost. Every L1 miss reaches L2 regardless of load/store, so no
  // filtering happens here.
  const std::vector<uint64_t> L1MissSeqs = shardedMissSeqs(
      Execution.records(), L1Geometry, Options.Policy, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);

  // Stage 2 (sequential): the merged L1 miss list is a small fraction
  // of the trace; replaying it in global order keeps the first-touch
  // page translations and the L2 replacement sequence bit-identical to
  // the sequential collector.
  const std::span<const MemoryRecord> Records = Execution.records();
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  Stream.reserve(L1MissSeqs.size() / 4 + 16);
  for (uint64_t Seq : L1MissSeqs) {
    const MemoryRecord &Record = Records[Seq];
    const uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}
