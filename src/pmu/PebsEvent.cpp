//===- pmu/PebsEvent.cpp - Simulated PEBS events and samples -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsEvent.h"

#include "sim/PartitionCache.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

namespace {

/// Decision of the sharding gate: how many shards to cut and how many
/// pool workers were granted to help simulate them.
struct ShardGrant {
  unsigned Shards = 1;  ///< 1 = stay sequential.
  unsigned Helpers = 0; ///< Budget slots to release afterwards.
};

/// Applies the oversubscription policy: shard only with threads to
/// spare. The budget hands out idle slots only — when batch-level jobs
/// already cover the machine nothing is granted and the simulation
/// stays sequential; on the tail of a run (or a small matrix on a big
/// machine) the freed worker slots flow here and the job fans out.
ShardGrant acquireShardGrant(const SimContext &Ctx, uint64_t NumSets,
                             size_t NumRefs, bool IsL2Stage2 = false) {
  ShardGrant Grant;
  if (!Ctx.Pool || NumSets < 2 || NumRefs < Ctx.MinRefsToShard)
    return Grant;

  // The grant asks the budget for every pool worker, not Shards - 1:
  // partition chunks, merge segments, and the event rebuild all
  // parallelize past the shard count, so slots beyond the replay's
  // need still cut the serial fraction. Replay simply leaves extra
  // workers idle (parallelFor hands out at most one token per shard).
  Grant.Helpers = Ctx.Budget ? Ctx.Budget->tryAcquire(Ctx.Pool->workerCount())
                             : Ctx.Pool->workerCount();
  // An explicit shard count is honored even when no helper is idle
  // (the caller's thread simulates every shard); an automatic count
  // follows the grant so a lone thread skips partitioning entirely.
  Grant.Shards = static_cast<unsigned>(std::min<uint64_t>(
      NumSets, Ctx.Shards != 0 ? Ctx.Shards : Grant.Helpers + 1));
  if (Ctx.Stats && Grant.Shards > 1) {
    if (IsL2Stage2) {
      // The L2 stage-2 replay is a nested phase of one collection, not
      // a second simulation — it gets its own counter so bench sweeps
      // see how often the miss stream was big enough to shard.
      Ctx.Stats->L2StageShardedSims.fetch_add(1, std::memory_order_relaxed);
      return Grant;
    }
    Ctx.Stats->ShardedSims.fetch_add(1, std::memory_order_relaxed);
    // Degraded mode: the shard count was forced but no helper showed
    // up, so one thread replays every shard back to back. Bench sweeps
    // read this to tell "sharded but unhelped" from real parallelism.
    if (Grant.Helpers == 0)
      Ctx.Stats->UnhelpedShardedSims.fetch_add(1, std::memory_order_relaxed);
  }
  return Grant;
}

void releaseShardGrant(const SimContext &Ctx, const ShardGrant &Grant) {
  if (Ctx.Budget && Grant.Helpers > 0)
    Ctx.Budget->release(Grant.Helpers);
}

/// Shards the full reference stream through caches of \p Geometry and
/// \returns the globally-ordered sequence numbers of every missing
/// access (loads and stores alike — callers filter). The partition is
/// served from Ctx.Partitions when the context carries a registered
/// trace — the "route once, replay many" path a config sweep hits —
/// and routed on the spot otherwise (block-parallel with helpers,
/// sequential two-pass fill in the degraded explicit-shards mode).
std::vector<uint64_t> shardedMissSeqs(std::span<const MemoryRecord> Records,
                                      const CacheGeometry &Geometry,
                                      ReplacementKind Policy,
                                      const SimContext &Ctx,
                                      const ShardGrant &Grant) {
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(),
                                                Grant.Shards);
  const PartitionCache::PartitionPtr Parts =
      routeOrReuse(Records, Geometry, Plan, Ctx, Grant.Helpers);

  std::vector<std::vector<uint64_t>> PerShard(Plan.size());
  Ctx.Pool->parallelFor(Plan.size(), Grant.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool ? Ctx.CachePool->acquire(Geometry, Policy, Plan[S])
                      : std::make_unique<Cache>(Geometry, Plan[S], Policy);
    simulateShard(*ShardCache, Parts->shard(S), PerShard[S]);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  return mergeMissSeqs(PerShard, Ctx.Pool, Grant.Helpers);
}

/// Aggregate-only sharded replay: per-shard counters and per-set miss
/// counts combine without ever reconstructing global order — the merge
/// is elided outright.
MissStreamAggregates
shardedMissAggregates(std::span<const MemoryRecord> Records,
                      const CacheGeometry &Geometry, ReplacementKind Policy,
                      MissStreamOptions Options, const SimContext &Ctx,
                      const ShardGrant &Grant) {
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(),
                                                Grant.Shards);
  const PartitionCache::PartitionPtr Parts =
      routeOrReuse(Records, Geometry, Plan, Ctx, Grant.Helpers);

  MissStreamAggregates Agg;
  Agg.Accesses = Records.size();
  Agg.PerSetMisses.assign(Geometry.numSets(), 0);
  std::vector<ShardAggregates> PerShard(Plan.size());
  Ctx.Pool->parallelFor(Plan.size(), Grant.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool ? Ctx.CachePool->acquire(Geometry, Policy, Plan[S])
                      : std::make_unique<Cache>(Geometry, Plan[S], Policy);
    PerShard[S] = simulateShardAggregates(*ShardCache, Parts->shard(S));
    // Shard windows are disjoint set ranges, so these writes never
    // overlap across workers.
    std::copy(ShardCache->perSetMisses().begin(),
              ShardCache->perSetMisses().end(),
              Agg.PerSetMisses.begin() + Plan[S].Begin);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  for (const ShardAggregates &Shard : PerShard) {
    Agg.Misses += Shard.Misses;
    Agg.LoadMisses += Shard.LoadMisses;
    Agg.StoreMisses += Shard.StoreMisses;
  }
  Agg.Events = Agg.LoadMisses + (Options.IncludeStores ? Agg.StoreMisses : 0);
  if (Ctx.Stats)
    Ctx.Stats->ElidedMerges.fetch_add(1, std::memory_order_relaxed);
  return Agg;
}

/// Rebuilds a MissEvent stream from merged miss indices. The tail is
/// proportional to the miss count, so it gets the same count / prefix
/// / scatter treatment as the partition instead of running serially:
/// chunks count their kept events, a prefix sum assigns disjoint
/// output slices, and the scatter fills them. The chunk grid never
/// changes the bytes produced — only who writes them — so the stream
/// stays identical at every helper count. \p KeepAll short-circuits
/// the count pass when every index yields an event; \p KeepsEvent and
/// \p EventOf map a merged index to its filter decision and event.
template <typename KeepFn, typename EventFn>
std::vector<MissEvent> rebuildEvents(std::span<const uint64_t> Seqs,
                                     bool KeepAll, KeepFn KeepsEvent,
                                     EventFn EventOf, const SimContext &Ctx,
                                     unsigned Helpers) {
  std::vector<MissEvent> Stream;
  if (Helpers > 0 && !Seqs.empty()) {
    const std::vector<size_t> Chunks =
        planChunks(Seqs.size(), Helpers + 1, size_t{1} << 15);
    const size_t NumChunks = Chunks.size() - 1;
    std::vector<size_t> Offsets(NumChunks + 1, 0);
    if (KeepAll) {
      // Every miss becomes an event: offsets are the chunk bounds.
      Offsets = Chunks;
    } else {
      Ctx.Pool->parallelFor(NumChunks, Helpers, [&](size_t C) {
        size_t Kept = 0;
        for (size_t I = Chunks[C]; I < Chunks[C + 1]; ++I)
          Kept += KeepsEvent(Seqs[I]) ? 1 : 0;
        Offsets[C + 1] = Kept;
      });
      for (size_t C = 0; C < NumChunks; ++C)
        Offsets[C + 1] += Offsets[C];
    }
    Stream.resize(Offsets.back());
    Ctx.Pool->parallelFor(NumChunks, Helpers, [&](size_t C) {
      size_t Out = Offsets[C];
      for (size_t I = Chunks[C]; I < Chunks[C + 1]; ++I) {
        if (!KeepsEvent(Seqs[I]))
          continue;
        Stream[Out++] = EventOf(Seqs[I]);
      }
      assert(Out == Offsets[C + 1] && "chunk must fill its exact slice");
    });
  } else {
    Stream.reserve(Seqs.size());
    for (uint64_t Seq : Seqs) {
      if (!KeepsEvent(Seq))
        continue;
      Stream.push_back(EventOf(Seq));
    }
  }
  return Stream;
}

/// Sequential aggregate collection: the same replay as
/// collectL1MissStream, counting instead of recording.
MissStreamAggregates
sequentialMissAggregates(const Trace &Execution, const CacheGeometry &Geometry,
                         MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  MissStreamAggregates Agg;
  Agg.Accesses = Execution.size();
  for (const MemoryRecord &Record : Execution.records()) {
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    ++(Record.IsWrite ? Agg.StoreMisses : Agg.LoadMisses);
  }
  Agg.Misses = L1.stats().Misses;
  Agg.PerSetMisses = L1.perSetMisses();
  Agg.Events = Agg.LoadMisses + (Options.IncludeStores ? Agg.StoreMisses : 0);
  return Agg;
}

} // namespace

std::vector<MissEvent>
ccprof::collectL1MissStream(const Trace &Execution,
                            const CacheGeometry &Geometry,
                            MissStreamOptions Options) {
  Cache L1(Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // Sized for a pessimistic miss ratio up front: push_back regrowth is
  // a visible cost in profileImpl profiles on long traces.
  Stream.reserve(Execution.size() / 4 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    CacheAccessResult Access = L1.access(Record.Addr, Record.IsWrite);
    if (Access.Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Record.Addr, Record.Addr});
  }
  return Stream;
}

std::vector<MissEvent>
ccprof::collectL2MissStream(const Trace &Execution,
                            const CacheGeometry &L1Geometry,
                            const CacheGeometry &L2Geometry,
                            PageMapper &Mapper, MissStreamOptions Options) {
  Cache L1(L1Geometry, Options.Policy);
  Cache L2(L2Geometry, Options.Policy);
  std::vector<MissEvent> Stream;
  // L2 misses are rarer than L1 misses; reserve a smaller slab.
  Stream.reserve(Execution.size() / 16 + 16);
  for (const MemoryRecord &Record : Execution.records()) {
    // L1 is virtually indexed; only its misses reach L2, which sees
    // physical addresses.
    if (L1.access(Record.Addr, Record.IsWrite).Hit)
      continue;
    uint64_t Physical = Mapper.translate(Record.Addr);
    if (L2.access(Physical, Record.IsWrite).Hit)
      continue;
    if (Record.IsWrite && !Options.IncludeStores)
      continue;
    Stream.push_back(MissEvent{Record.Site, Physical, Record.Addr});
  }
  return Stream;
}

MissStreamAggregates
ccprof::collectL1MissAggregates(const Trace &Execution,
                                const CacheGeometry &Geometry,
                                MissStreamOptions Options,
                                const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return sequentialMissAggregates(Execution, Geometry, Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return sequentialMissAggregates(Execution, Geometry, Options);
  }
  MissStreamAggregates Agg = shardedMissAggregates(
      Execution.records(), Geometry, Options.Policy, Options, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);
  return Agg;
}

std::vector<MissEvent> ccprof::collectL1MissStreamParallel(
    const Trace &Execution, const CacheGeometry &Geometry,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL1MissStream(Execution, Geometry, Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL1MissStream(Execution, Geometry, Options);
  }

  const std::vector<uint64_t> MissSeqs = shardedMissSeqs(
      Execution.records(), Geometry, Options.Policy, Ctx, Grant);

  // Rebuild the MissEvent stream from the merged sequence numbers.
  const std::span<const MemoryRecord> Records = Execution.records();
  std::vector<MissEvent> Stream = rebuildEvents(
      MissSeqs, Options.IncludeStores,
      [&](uint64_t Seq) {
        return !Records[Seq].IsWrite || Options.IncludeStores;
      },
      [&](uint64_t Seq) {
        const MemoryRecord &Record = Records[Seq];
        return MissEvent{Record.Site, Record.Addr, Record.Addr};
      },
      Ctx, Grant.Helpers);
  releaseShardGrant(Ctx, Grant);
  return Stream;
}

std::vector<MissEvent> ccprof::collectL2MissStreamParallel(
    const Trace &Execution, const CacheGeometry &L1Geometry,
    const CacheGeometry &L2Geometry, PageMapper &Mapper,
    MissStreamOptions Options, const SimContext &Ctx) {
  if (Options.Policy == ReplacementKind::Random)
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  const ShardGrant Grant =
      acquireShardGrant(Ctx, L1Geometry.numSets(), Execution.size());
  if (Grant.Shards <= 1 && Grant.Helpers == 0) {
    releaseShardGrant(Ctx, Grant);
    return collectL2MissStream(Execution, L1Geometry, L2Geometry, Mapper,
                               Options);
  }

  // Stage 1 (sharded): the full-trace L1 replay, by far the dominant
  // cost. Every L1 miss reaches L2 regardless of load/store, so no
  // filtering happens here.
  const std::vector<uint64_t> L1MissSeqs = shardedMissSeqs(
      Execution.records(), L1Geometry, Options.Policy, Ctx, Grant);
  releaseShardGrant(Ctx, Grant);

  // Translation pass (sequential): PageMapper allocates frames at
  // first touch, so the translation *order* is semantic — it must
  // follow the merged global miss order exactly, or physical layouts
  // (and with them L2 set conflicts) would drift across execution
  // shapes. The pass emits one ShardRef per L1 miss whose "sequence"
  // is its index into L1MissSeqs: locally dense, globally ordered, and
  // exactly what the stage-2 merge needs to be deterministic.
  const std::span<const MemoryRecord> Records = Execution.records();
  std::vector<ShardRef> L2Refs(L1MissSeqs.size());
  for (size_t I = 0; I < L1MissSeqs.size(); ++I) {
    const MemoryRecord &Record = Records[L1MissSeqs[I]];
    L2Refs[I] =
        ShardRef::make(I, Mapper.translate(Record.Addr), Record.IsWrite);
  }

  // Stage 2: replay the translated miss stream through L2, sharded by
  // L2 set when the stream is long enough to be worth a second grant
  // (the same per-set independence argument applies — only the
  // addresses now are physical). Sequential otherwise: the merged L1
  // miss list is usually a small fraction of the trace.
  const ShardGrant Grant2 = acquireShardGrant(
      Ctx, L2Geometry.numSets(), L2Refs.size(), /*IsL2Stage2=*/true);
  auto KeepsEvent = [&](uint64_t Idx) {
    return !Records[L1MissSeqs[Idx]].IsWrite || Options.IncludeStores;
  };
  auto EventOf = [&](uint64_t Idx) {
    const MemoryRecord &Record = Records[L1MissSeqs[Idx]];
    return MissEvent{Record.Site, L2Refs[Idx].Addr, Record.Addr};
  };
  if (Grant2.Shards <= 1 && Grant2.Helpers == 0) {
    releaseShardGrant(Ctx, Grant2);
    Cache L2(L2Geometry, Options.Policy);
    std::vector<MissEvent> Stream;
    Stream.reserve(L2Refs.size() / 4 + 16);
    for (const ShardRef &Ref : L2Refs) {
      if (L2.access(Ref.Addr, Ref.isWrite()).Hit)
        continue;
      if (!KeepsEvent(Ref.seq()))
        continue;
      Stream.push_back(EventOf(Ref.seq()));
    }
    return Stream;
  }

  const std::vector<SetRange> L2Plan =
      planShards(L2Geometry.numSets(), Grant2.Shards);
  // No reuse cache here: the stage-2 input is an L1-config-dependent
  // miss stream, not the trace, so no two configs share it.
  const ShardPartition L2Parts =
      Grant2.Helpers > 0
          ? partitionRefsBySetParallel(L2Refs, L2Geometry, L2Plan, *Ctx.Pool,
                                       Grant2.Helpers)
          : partitionRefsBySet(L2Refs, L2Geometry, L2Plan);
  std::vector<std::vector<uint64_t>> PerShard(L2Plan.size());
  Ctx.Pool->parallelFor(L2Plan.size(), Grant2.Helpers, [&](size_t S) {
    std::unique_ptr<Cache> ShardCache =
        Ctx.CachePool
            ? Ctx.CachePool->acquire(L2Geometry, Options.Policy, L2Plan[S])
            : std::make_unique<Cache>(L2Geometry, L2Plan[S], Options.Policy);
    simulateShard(*ShardCache, L2Parts.shard(S), PerShard[S]);
    if (Ctx.CachePool)
      Ctx.CachePool->park(std::move(ShardCache));
  });
  const std::vector<uint64_t> L2MissIdx =
      mergeMissSeqs(PerShard, Ctx.Pool, Grant2.Helpers);

  std::vector<MissEvent> Stream = rebuildEvents(
      L2MissIdx, Options.IncludeStores, KeepsEvent, EventOf, Ctx,
      Grant2.Helpers);
  releaseShardGrant(Ctx, Grant2);
  return Stream;
}
