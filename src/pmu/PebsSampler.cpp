//===- pmu/PebsSampler.cpp - Event-based address sampling ----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/PebsSampler.h"

#include <algorithm>
#include <cassert>

using namespace ccprof;

PebsSampler::PebsSampler(SamplingConfig Config)
    : Config(Config), Rng(Config.Seed) {
  assert(Config.MeanPeriod > 0 && "sampling period must be positive");
  assert(Config.Jitter >= 0.0 && Config.Jitter < 1.0 &&
         "jitter must be a fraction of the mean");
  assert(Config.BurstLen > 0 && "burst length must be positive");
  // Random initial phase, uniform over one mean period: the PMU counter
  // starts at an arbitrary point relative to the workload, and without
  // this, programs with fewer misses than the first gap would never be
  // sampled at all.
  Countdown = 1 + Rng.nextBounded(Config.MeanPeriod);
}

bool PebsSampler::onEvent() {
  ++EventCount;
  assert(Countdown > 0 && "countdown must be armed");
  if (--Countdown > 0)
    return false;
  ++SampleCount;
  Countdown = drawNextGap();
  return true;
}

std::vector<PebsSample>
PebsSampler::sampleStream(std::span<const MissEvent> Stream) {
  std::vector<PebsSample> Samples;
  if (Config.MeanPeriod > 0)
    Samples.reserve(Stream.size() / Config.MeanPeriod + 16);
  for (uint64_t Index = 0; Index < Stream.size(); ++Index)
    if (onEvent())
      Samples.push_back(PebsSample{Stream[Index], Index});
  return Samples;
}

uint64_t PebsSampler::drawNextGap() {
  switch (Config.Kind) {
  case SamplingKind::Fixed:
    return Config.MeanPeriod;

  case SamplingKind::UniformJitter: {
    double Lo = static_cast<double>(Config.MeanPeriod) * (1.0 - Config.Jitter);
    double Hi = static_cast<double>(Config.MeanPeriod) * (1.0 + Config.Jitter);
    uint64_t Span = std::max<uint64_t>(1, static_cast<uint64_t>(Hi - Lo) + 1);
    uint64_t Gap = static_cast<uint64_t>(Lo) + Rng.nextBounded(Span);
    return std::max<uint64_t>(1, Gap);
  }

  case SamplingKind::Bursty: {
    // Within a burst the next sample is the very next event. After the
    // burst, skip a randomized long gap chosen so the mean period over a
    // full burst+gap cycle equals MeanPeriod:
    //   events/cycle = (BurstLen-1)*1 + Gap, samples/cycle = BurstLen.
    if (BurstRemaining > 0) {
      --BurstRemaining;
      return 1;
    }
    BurstRemaining = Config.BurstLen - 1;
    uint64_t MeanGap =
        Config.BurstLen * Config.MeanPeriod - (Config.BurstLen - 1);
    // Randomize within [MeanGap/2, 3*MeanGap/2] to avoid phase-locking
    // with periodic access patterns.
    uint64_t Lo = std::max<uint64_t>(1, MeanGap / 2);
    uint64_t Gap = Lo + Rng.nextBounded(MeanGap + 1);
    return Gap;
  }
  }
  assert(false && "unknown sampling kind");
  return 1;
}
