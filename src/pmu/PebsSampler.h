//===- pmu/PebsSampler.h - Event-based address sampling --------*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event-based sampling of the L1-miss stream. CCProf's sample handler
/// "randomly sets the next sampling period based on a given probability
/// distribution" (paper Sec. 4); the supported distributions are a fixed
/// period, a uniformly jittered period, and a bursty schedule (short
/// runs of back-to-back samples separated by long gaps with the same
/// mean). Bursts make consecutive misses visible, which is what lets
/// the approximated RCD resolve short conflict periods (Sec. 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PMU_PEBSSAMPLER_H
#define CCPROF_PMU_PEBSSAMPLER_H

#include "pmu/PebsEvent.h"
#include "support/Rng.h"

#include <cstdint>
#include <span>
#include <vector>

namespace ccprof {

/// Sampling-period distribution kinds.
enum class SamplingKind {
  Fixed,         ///< Every MeanPeriod-th event.
  UniformJitter, ///< Uniform in [Mean*(1-Jitter), Mean*(1+Jitter)].
  Bursty,        ///< BurstLen back-to-back samples, then a long gap.
};

/// Configuration of the sampling schedule.
struct SamplingConfig {
  SamplingKind Kind = SamplingKind::Bursty;
  /// Mean number of events per sample. The paper's recommended setting
  /// is 1212; its best-accuracy setting is 171 (Sec. 5.3).
  uint64_t MeanPeriod = 1212;
  double Jitter = 0.5;     ///< For UniformJitter; fraction of the mean.
  uint64_t BurstLen = 32;  ///< For Bursty; samples per burst.
  uint64_t Seed = 0xcc9f'5a3e;
};

/// Stateful sampler: feed events one at a time or sample a whole stream.
class PebsSampler {
public:
  explicit PebsSampler(SamplingConfig Config);

  /// Feeds the next event occurrence. \returns true if the PMU takes a
  /// sample on this event.
  bool onEvent();

  /// Samples the whole \p Stream, producing the captured samples in
  /// order.
  std::vector<PebsSample> sampleStream(std::span<const MissEvent> Stream);

  const SamplingConfig &config() const { return Config; }

  /// Events seen so far.
  uint64_t eventCount() const { return EventCount; }

  /// Samples taken so far.
  uint64_t sampleCount() const { return SampleCount; }

private:
  /// Draws the distance (in events) from this sample to the next one.
  uint64_t drawNextGap();

  SamplingConfig Config;
  Xoshiro256 Rng;
  uint64_t Countdown;
  uint64_t BurstRemaining = 0;
  uint64_t EventCount = 0;
  uint64_t SampleCount = 0;
};

} // namespace ccprof

#endif // CCPROF_PMU_PEBSSAMPLER_H
