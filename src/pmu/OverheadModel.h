//===- pmu/OverheadModel.h - Profiling overhead estimation -----*- C++ -*-===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the runtime cost of the two analysis pipelines the paper
/// compares (Sec. 5.3, Table 2, Fig. 8):
///
///  * CCProf: the program runs at native speed; each PEBS sample costs
///    one interrupt plus the handler (order of a microsecond), so
///      T_ccprof = T_plain + N_samples * SampleCost.
///  * Simulation: every memory reference pays an instrumentation
///    callback plus a cache-model update (order of 100ns), so
///      T_sim = T_plain + N_refs * TraceSimCost.
///
/// The per-sample handler cost and the per-reference simulation cost are
/// *measured on this host* by timing the actual handler and simulator
/// code; only the bare hardware-interrupt entry/exit cost — which has no
/// software equivalent to time — is a documented constant.
///
//===----------------------------------------------------------------------===//

#ifndef CCPROF_PMU_OVERHEADMODEL_H
#define CCPROF_PMU_OVERHEADMODEL_H

#include <cstdint>

namespace ccprof {

/// Calibrated per-event costs in nanoseconds.
struct OverheadConstants {
  /// Cost of delivering one PEBS sample: interrupt entry/exit plus the
  /// CCProf sample handler (set attribution + log append).
  double SampleCostNs = 1800.0;
  /// Cost of one traced reference under Pin + Dinero: instrumentation
  /// callback plus the cache-model update.
  double TraceSimCostNs = 180.0;
};

/// PMU interrupt entry/exit cost with no software equivalent to time;
/// folded into calibrated sample costs. Order of magnitude from
/// published PEBS latency studies.
inline constexpr double InterruptEntryExitNs = 1400.0;

/// Pin per-memory-reference instrumentation callback cost (dispatch into
/// the tool, register spill/fill); added to the measured cache-model
/// update cost during calibration.
inline constexpr double PinCallbackNs = 90.0;

/// Measures the handler and simulator costs on this host by timing the
/// real code paths over a large synthetic reference stream, then adds
/// the documented interrupt/callback constants.
OverheadConstants calibrateOverheadConstants();

/// Estimated CCProf whole-program overhead factor (>= 1).
double profilingOverheadFactor(double PlainSeconds, uint64_t NumSamples,
                               const OverheadConstants &Constants);

/// Estimated trace-driven-simulation overhead factor (>= 1).
double simulationOverheadFactor(double PlainSeconds, uint64_t NumTracedRefs,
                                const OverheadConstants &Constants);

} // namespace ccprof

#endif // CCPROF_PMU_OVERHEADMODEL_H
