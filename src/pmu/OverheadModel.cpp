//===- pmu/OverheadModel.cpp - Profiling overhead estimation -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "pmu/OverheadModel.h"

#include "sim/Cache.h"
#include "sim/MachineConfig.h"
#include "support/Rng.h"

#include <cassert>
#include <chrono>

using namespace ccprof;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Times the CCProf sample-handler path: cache-set attribution of the
/// sampled address plus appending to the in-memory sample log.
double measureHandlerCostNs() {
  constexpr uint64_t NumSamples = 200'000;
  CacheGeometry Geometry = paperL1Geometry();
  std::vector<std::pair<uint32_t, uint64_t>> Log;
  Log.reserve(NumSamples);
  Xoshiro256 Rng(0x0ead'cafe);

  Clock::time_point Start = Clock::now();
  uint64_t Guard = 0;
  for (uint64_t I = 0; I < NumSamples; ++I) {
    uint64_t Addr = Rng.next() & 0xffff'ffff;
    uint64_t Set = Geometry.setIndexOf(Addr);
    Guard += Set;
    Log.emplace_back(static_cast<uint32_t>(I & 0xff), Addr);
    if (Log.size() == Log.capacity())
      Log.clear(); // The real handler flushes the buffer to the log file.
  }
  double Elapsed = secondsSince(Start);
  assert(Guard != 0 && "keep the loop alive");
  return Elapsed * 1e9 / static_cast<double>(NumSamples);
}

/// Times the per-reference cache-model update of the trace-driven
/// simulator (the Dinero role).
double measureSimCostNs() {
  constexpr uint64_t NumRefs = 1'000'000;
  Cache L1(paperL1Geometry());
  Xoshiro256 Rng(0x51caffe5);

  Clock::time_point Start = Clock::now();
  uint64_t Hits = 0;
  for (uint64_t I = 0; I < NumRefs; ++I) {
    // A mix of local reuse and fresh lines, like a real reference
    // stream; pure random would overstate the miss path cost.
    uint64_t Addr = (Rng.next() & 0xf'ffff) | ((I & 0xff) << 24);
    Hits += L1.access(Addr).Hit ? 1 : 0;
  }
  double Elapsed = secondsSince(Start);
  assert(Hits <= NumRefs && "keep the loop alive");
  return Elapsed * 1e9 / static_cast<double>(NumRefs);
}

} // namespace

OverheadConstants ccprof::calibrateOverheadConstants() {
  OverheadConstants Constants;
  Constants.SampleCostNs = InterruptEntryExitNs + measureHandlerCostNs();
  Constants.TraceSimCostNs = PinCallbackNs + measureSimCostNs();
  return Constants;
}

double ccprof::profilingOverheadFactor(double PlainSeconds,
                                       uint64_t NumSamples,
                                       const OverheadConstants &Constants) {
  assert(PlainSeconds > 0.0 && "plain runtime must be positive");
  double Extra =
      static_cast<double>(NumSamples) * Constants.SampleCostNs * 1e-9;
  return (PlainSeconds + Extra) / PlainSeconds;
}

double ccprof::simulationOverheadFactor(double PlainSeconds,
                                        uint64_t NumTracedRefs,
                                        const OverheadConstants &Constants) {
  assert(PlainSeconds > 0.0 && "plain runtime must be positive");
  double Extra =
      static_cast<double>(NumTracedRefs) * Constants.TraceSimCostNs * 1e-9;
  return (PlainSeconds + Extra) / PlainSeconds;
}
