# Empty dependencies file for fig9_optimized_cdf.
# This may be replaced when dependencies are built.
