file(REMOVE_RECURSE
  "CMakeFiles/fig9_optimized_cdf.dir/bench/fig9_optimized_cdf.cpp.o"
  "CMakeFiles/fig9_optimized_cdf.dir/bench/fig9_optimized_cdf.cpp.o.d"
  "bench/fig9_optimized_cdf"
  "bench/fig9_optimized_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_optimized_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
