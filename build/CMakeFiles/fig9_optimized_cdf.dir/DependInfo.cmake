
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_optimized_cdf.cpp" "CMakeFiles/fig9_optimized_cdf.dir/bench/fig9_optimized_cdf.cpp.o" "gcc" "CMakeFiles/fig9_optimized_cdf.dir/bench/fig9_optimized_cdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ccprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ccprof_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
