file(REMOVE_RECURSE
  "CMakeFiles/micro_ccprof.dir/bench/micro_ccprof.cpp.o"
  "CMakeFiles/micro_ccprof.dir/bench/micro_ccprof.cpp.o.d"
  "bench/micro_ccprof"
  "bench/micro_ccprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ccprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
