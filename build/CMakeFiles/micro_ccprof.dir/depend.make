# Empty dependencies file for micro_ccprof.
# This may be replaced when dependencies are built.
