# Empty compiler generated dependencies file for fig2_symmetrization.
# This may be replaced when dependencies are built.
