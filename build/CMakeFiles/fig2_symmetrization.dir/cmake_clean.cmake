file(REMOVE_RECURSE
  "CMakeFiles/fig2_symmetrization.dir/bench/fig2_symmetrization.cpp.o"
  "CMakeFiles/fig2_symmetrization.dir/bench/fig2_symmetrization.cpp.o.d"
  "bench/fig2_symmetrization"
  "bench/fig2_symmetrization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_symmetrization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
