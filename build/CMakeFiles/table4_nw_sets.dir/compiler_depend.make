# Empty compiler generated dependencies file for table4_nw_sets.
# This may be replaced when dependencies are built.
