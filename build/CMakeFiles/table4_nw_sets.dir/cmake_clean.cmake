file(REMOVE_RECURSE
  "CMakeFiles/table4_nw_sets.dir/bench/table4_nw_sets.cpp.o"
  "CMakeFiles/table4_nw_sets.dir/bench/table4_nw_sets.cpp.o.d"
  "bench/table4_nw_sets"
  "bench/table4_nw_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nw_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
