file(REMOVE_RECURSE
  "CMakeFiles/table2_overhead.dir/bench/table2_overhead.cpp.o"
  "CMakeFiles/table2_overhead.dir/bench/table2_overhead.cpp.o.d"
  "bench/table2_overhead"
  "bench/table2_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
