# Empty dependencies file for fig7_rodinia_cdf.
# This may be replaced when dependencies are built.
