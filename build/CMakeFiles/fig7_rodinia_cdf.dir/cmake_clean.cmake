file(REMOVE_RECURSE
  "CMakeFiles/fig7_rodinia_cdf.dir/bench/fig7_rodinia_cdf.cpp.o"
  "CMakeFiles/fig7_rodinia_cdf.dir/bench/fig7_rodinia_cdf.cpp.o.d"
  "bench/fig7_rodinia_cdf"
  "bench/fig7_rodinia_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rodinia_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
