# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3456_rcd_concepts.
