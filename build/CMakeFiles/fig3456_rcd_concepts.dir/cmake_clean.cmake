file(REMOVE_RECURSE
  "CMakeFiles/fig3456_rcd_concepts.dir/bench/fig3456_rcd_concepts.cpp.o"
  "CMakeFiles/fig3456_rcd_concepts.dir/bench/fig3456_rcd_concepts.cpp.o.d"
  "bench/fig3456_rcd_concepts"
  "bench/fig3456_rcd_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3456_rcd_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
