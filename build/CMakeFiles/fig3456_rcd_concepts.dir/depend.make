# Empty dependencies file for fig3456_rcd_concepts.
# This may be replaced when dependencies are built.
