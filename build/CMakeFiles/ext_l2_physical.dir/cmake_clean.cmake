file(REMOVE_RECURSE
  "CMakeFiles/ext_l2_physical.dir/bench/ext_l2_physical.cpp.o"
  "CMakeFiles/ext_l2_physical.dir/bench/ext_l2_physical.cpp.o.d"
  "bench/ext_l2_physical"
  "bench/ext_l2_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_l2_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
