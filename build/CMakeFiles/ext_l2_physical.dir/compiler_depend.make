# Empty compiler generated dependencies file for ext_l2_physical.
# This may be replaced when dependencies are built.
