# Empty dependencies file for fig8_accuracy_overhead.
# This may be replaced when dependencies are built.
