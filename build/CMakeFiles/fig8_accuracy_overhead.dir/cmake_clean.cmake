file(REMOVE_RECURSE
  "CMakeFiles/fig8_accuracy_overhead.dir/bench/fig8_accuracy_overhead.cpp.o"
  "CMakeFiles/fig8_accuracy_overhead.dir/bench/fig8_accuracy_overhead.cpp.o.d"
  "bench/fig8_accuracy_overhead"
  "bench/fig8_accuracy_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_accuracy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
