file(REMOVE_RECURSE
  "CMakeFiles/cfg_test.dir/CfgTest.cpp.o"
  "CMakeFiles/cfg_test.dir/CfgTest.cpp.o.d"
  "CMakeFiles/cfg_test.dir/DominatorsTest.cpp.o"
  "CMakeFiles/cfg_test.dir/DominatorsTest.cpp.o.d"
  "CMakeFiles/cfg_test.dir/LoopNestTest.cpp.o"
  "CMakeFiles/cfg_test.dir/LoopNestTest.cpp.o.d"
  "CMakeFiles/cfg_test.dir/SyntheticCodeGenTest.cpp.o"
  "CMakeFiles/cfg_test.dir/SyntheticCodeGenTest.cpp.o.d"
  "cfg_test"
  "cfg_test.pdb"
  "cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
