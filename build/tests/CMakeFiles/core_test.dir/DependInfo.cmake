
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ConflictClassifierTest.cpp" "tests/CMakeFiles/core_test.dir/ConflictClassifierTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/ConflictClassifierTest.cpp.o.d"
  "/root/repo/tests/CrossValidationTest.cpp" "tests/CMakeFiles/core_test.dir/CrossValidationTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/CrossValidationTest.cpp.o.d"
  "/root/repo/tests/LogisticRegressionTest.cpp" "tests/CMakeFiles/core_test.dir/LogisticRegressionTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/LogisticRegressionTest.cpp.o.d"
  "/root/repo/tests/PaddingAdvisorTest.cpp" "tests/CMakeFiles/core_test.dir/PaddingAdvisorTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/PaddingAdvisorTest.cpp.o.d"
  "/root/repo/tests/ProfilerTest.cpp" "tests/CMakeFiles/core_test.dir/ProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/ProfilerTest.cpp.o.d"
  "/root/repo/tests/ProgramStructureTest.cpp" "tests/CMakeFiles/core_test.dir/ProgramStructureTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/ProgramStructureTest.cpp.o.d"
  "/root/repo/tests/RcdAnalyzerTest.cpp" "tests/CMakeFiles/core_test.dir/RcdAnalyzerTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/RcdAnalyzerTest.cpp.o.d"
  "/root/repo/tests/ReportTest.cpp" "tests/CMakeFiles/core_test.dir/ReportTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/ReportTest.cpp.o.d"
  "/root/repo/tests/SetImbalanceBaselineTest.cpp" "tests/CMakeFiles/core_test.dir/SetImbalanceBaselineTest.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/SetImbalanceBaselineTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ccprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ccprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ccprof_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
