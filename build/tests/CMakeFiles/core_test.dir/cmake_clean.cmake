file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/ConflictClassifierTest.cpp.o"
  "CMakeFiles/core_test.dir/ConflictClassifierTest.cpp.o.d"
  "CMakeFiles/core_test.dir/CrossValidationTest.cpp.o"
  "CMakeFiles/core_test.dir/CrossValidationTest.cpp.o.d"
  "CMakeFiles/core_test.dir/LogisticRegressionTest.cpp.o"
  "CMakeFiles/core_test.dir/LogisticRegressionTest.cpp.o.d"
  "CMakeFiles/core_test.dir/PaddingAdvisorTest.cpp.o"
  "CMakeFiles/core_test.dir/PaddingAdvisorTest.cpp.o.d"
  "CMakeFiles/core_test.dir/ProfilerTest.cpp.o"
  "CMakeFiles/core_test.dir/ProfilerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/ProgramStructureTest.cpp.o"
  "CMakeFiles/core_test.dir/ProgramStructureTest.cpp.o.d"
  "CMakeFiles/core_test.dir/RcdAnalyzerTest.cpp.o"
  "CMakeFiles/core_test.dir/RcdAnalyzerTest.cpp.o.d"
  "CMakeFiles/core_test.dir/ReportTest.cpp.o"
  "CMakeFiles/core_test.dir/ReportTest.cpp.o.d"
  "CMakeFiles/core_test.dir/SetImbalanceBaselineTest.cpp.o"
  "CMakeFiles/core_test.dir/SetImbalanceBaselineTest.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
