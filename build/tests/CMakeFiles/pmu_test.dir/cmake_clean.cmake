file(REMOVE_RECURSE
  "CMakeFiles/pmu_test.dir/OverheadModelTest.cpp.o"
  "CMakeFiles/pmu_test.dir/OverheadModelTest.cpp.o.d"
  "CMakeFiles/pmu_test.dir/PageMapperTest.cpp.o"
  "CMakeFiles/pmu_test.dir/PageMapperTest.cpp.o.d"
  "CMakeFiles/pmu_test.dir/PebsSamplerTest.cpp.o"
  "CMakeFiles/pmu_test.dir/PebsSamplerTest.cpp.o.d"
  "CMakeFiles/pmu_test.dir/SamplingApproximationTest.cpp.o"
  "CMakeFiles/pmu_test.dir/SamplingApproximationTest.cpp.o.d"
  "pmu_test"
  "pmu_test.pdb"
  "pmu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
