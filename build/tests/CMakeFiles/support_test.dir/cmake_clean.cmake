file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/HistogramTest.cpp.o"
  "CMakeFiles/support_test.dir/HistogramTest.cpp.o.d"
  "CMakeFiles/support_test.dir/IntervalMapTest.cpp.o"
  "CMakeFiles/support_test.dir/IntervalMapTest.cpp.o.d"
  "CMakeFiles/support_test.dir/RngTest.cpp.o"
  "CMakeFiles/support_test.dir/RngTest.cpp.o.d"
  "CMakeFiles/support_test.dir/StatisticsTest.cpp.o"
  "CMakeFiles/support_test.dir/StatisticsTest.cpp.o.d"
  "CMakeFiles/support_test.dir/TableTest.cpp.o"
  "CMakeFiles/support_test.dir/TableTest.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
