file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/CacheGeometryTest.cpp.o"
  "CMakeFiles/sim_test.dir/CacheGeometryTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/CacheHierarchyTest.cpp.o"
  "CMakeFiles/sim_test.dir/CacheHierarchyTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/CacheReferenceTest.cpp.o"
  "CMakeFiles/sim_test.dir/CacheReferenceTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/CacheTest.cpp.o"
  "CMakeFiles/sim_test.dir/CacheTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/MissClassifierTest.cpp.o"
  "CMakeFiles/sim_test.dir/MissClassifierTest.cpp.o.d"
  "CMakeFiles/sim_test.dir/ReuseDistanceTest.cpp.o"
  "CMakeFiles/sim_test.dir/ReuseDistanceTest.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
