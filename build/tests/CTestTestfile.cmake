# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/pmu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
