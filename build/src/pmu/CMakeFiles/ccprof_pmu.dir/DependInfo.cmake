
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmu/OverheadModel.cpp" "src/pmu/CMakeFiles/ccprof_pmu.dir/OverheadModel.cpp.o" "gcc" "src/pmu/CMakeFiles/ccprof_pmu.dir/OverheadModel.cpp.o.d"
  "/root/repo/src/pmu/PebsEvent.cpp" "src/pmu/CMakeFiles/ccprof_pmu.dir/PebsEvent.cpp.o" "gcc" "src/pmu/CMakeFiles/ccprof_pmu.dir/PebsEvent.cpp.o.d"
  "/root/repo/src/pmu/PebsSampler.cpp" "src/pmu/CMakeFiles/ccprof_pmu.dir/PebsSampler.cpp.o" "gcc" "src/pmu/CMakeFiles/ccprof_pmu.dir/PebsSampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
