file(REMOVE_RECURSE
  "CMakeFiles/ccprof_pmu.dir/OverheadModel.cpp.o"
  "CMakeFiles/ccprof_pmu.dir/OverheadModel.cpp.o.d"
  "CMakeFiles/ccprof_pmu.dir/PebsEvent.cpp.o"
  "CMakeFiles/ccprof_pmu.dir/PebsEvent.cpp.o.d"
  "CMakeFiles/ccprof_pmu.dir/PebsSampler.cpp.o"
  "CMakeFiles/ccprof_pmu.dir/PebsSampler.cpp.o.d"
  "libccprof_pmu.a"
  "libccprof_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
