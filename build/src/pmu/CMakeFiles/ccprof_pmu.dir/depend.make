# Empty dependencies file for ccprof_pmu.
# This may be replaced when dependencies are built.
