file(REMOVE_RECURSE
  "libccprof_pmu.a"
)
