
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ConflictClassifier.cpp" "src/core/CMakeFiles/ccprof_core.dir/ConflictClassifier.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/ConflictClassifier.cpp.o.d"
  "/root/repo/src/core/CrossValidation.cpp" "src/core/CMakeFiles/ccprof_core.dir/CrossValidation.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/CrossValidation.cpp.o.d"
  "/root/repo/src/core/LogisticRegression.cpp" "src/core/CMakeFiles/ccprof_core.dir/LogisticRegression.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/LogisticRegression.cpp.o.d"
  "/root/repo/src/core/PaddingAdvisor.cpp" "src/core/CMakeFiles/ccprof_core.dir/PaddingAdvisor.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/PaddingAdvisor.cpp.o.d"
  "/root/repo/src/core/Profiler.cpp" "src/core/CMakeFiles/ccprof_core.dir/Profiler.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/Profiler.cpp.o.d"
  "/root/repo/src/core/ProgramStructure.cpp" "src/core/CMakeFiles/ccprof_core.dir/ProgramStructure.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/ProgramStructure.cpp.o.d"
  "/root/repo/src/core/RcdAnalyzer.cpp" "src/core/CMakeFiles/ccprof_core.dir/RcdAnalyzer.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/RcdAnalyzer.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/ccprof_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/Report.cpp.o.d"
  "/root/repo/src/core/SetImbalanceBaseline.cpp" "src/core/CMakeFiles/ccprof_core.dir/SetImbalanceBaseline.cpp.o" "gcc" "src/core/CMakeFiles/ccprof_core.dir/SetImbalanceBaseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/ccprof_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/ccprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
