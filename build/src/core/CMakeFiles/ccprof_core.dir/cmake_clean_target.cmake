file(REMOVE_RECURSE
  "libccprof_core.a"
)
