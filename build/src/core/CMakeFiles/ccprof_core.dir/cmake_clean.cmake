file(REMOVE_RECURSE
  "CMakeFiles/ccprof_core.dir/ConflictClassifier.cpp.o"
  "CMakeFiles/ccprof_core.dir/ConflictClassifier.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/CrossValidation.cpp.o"
  "CMakeFiles/ccprof_core.dir/CrossValidation.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/LogisticRegression.cpp.o"
  "CMakeFiles/ccprof_core.dir/LogisticRegression.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/PaddingAdvisor.cpp.o"
  "CMakeFiles/ccprof_core.dir/PaddingAdvisor.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/Profiler.cpp.o"
  "CMakeFiles/ccprof_core.dir/Profiler.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/ProgramStructure.cpp.o"
  "CMakeFiles/ccprof_core.dir/ProgramStructure.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/RcdAnalyzer.cpp.o"
  "CMakeFiles/ccprof_core.dir/RcdAnalyzer.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/Report.cpp.o"
  "CMakeFiles/ccprof_core.dir/Report.cpp.o.d"
  "CMakeFiles/ccprof_core.dir/SetImbalanceBaseline.cpp.o"
  "CMakeFiles/ccprof_core.dir/SetImbalanceBaseline.cpp.o.d"
  "libccprof_core.a"
  "libccprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
