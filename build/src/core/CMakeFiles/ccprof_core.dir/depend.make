# Empty dependencies file for ccprof_core.
# This may be replaced when dependencies are built.
