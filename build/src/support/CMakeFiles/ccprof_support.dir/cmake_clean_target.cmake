file(REMOVE_RECURSE
  "libccprof_support.a"
)
