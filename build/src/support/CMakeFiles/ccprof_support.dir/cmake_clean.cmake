file(REMOVE_RECURSE
  "CMakeFiles/ccprof_support.dir/Histogram.cpp.o"
  "CMakeFiles/ccprof_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/ccprof_support.dir/Statistics.cpp.o"
  "CMakeFiles/ccprof_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/ccprof_support.dir/Table.cpp.o"
  "CMakeFiles/ccprof_support.dir/Table.cpp.o.d"
  "libccprof_support.a"
  "libccprof_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
