# Empty compiler generated dependencies file for ccprof_support.
# This may be replaced when dependencies are built.
