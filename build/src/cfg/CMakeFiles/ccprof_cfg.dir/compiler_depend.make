# Empty compiler generated dependencies file for ccprof_cfg.
# This may be replaced when dependencies are built.
