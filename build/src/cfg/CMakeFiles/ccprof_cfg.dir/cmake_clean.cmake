file(REMOVE_RECURSE
  "CMakeFiles/ccprof_cfg.dir/BinaryImage.cpp.o"
  "CMakeFiles/ccprof_cfg.dir/BinaryImage.cpp.o.d"
  "CMakeFiles/ccprof_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/ccprof_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/ccprof_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/ccprof_cfg.dir/Dominators.cpp.o.d"
  "CMakeFiles/ccprof_cfg.dir/LoopNest.cpp.o"
  "CMakeFiles/ccprof_cfg.dir/LoopNest.cpp.o.d"
  "CMakeFiles/ccprof_cfg.dir/SyntheticCodeGen.cpp.o"
  "CMakeFiles/ccprof_cfg.dir/SyntheticCodeGen.cpp.o.d"
  "libccprof_cfg.a"
  "libccprof_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
