file(REMOVE_RECURSE
  "libccprof_cfg.a"
)
