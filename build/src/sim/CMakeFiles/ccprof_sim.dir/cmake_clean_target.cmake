file(REMOVE_RECURSE
  "libccprof_sim.a"
)
