file(REMOVE_RECURSE
  "CMakeFiles/ccprof_sim.dir/Cache.cpp.o"
  "CMakeFiles/ccprof_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/ccprof_sim.dir/CacheGeometry.cpp.o"
  "CMakeFiles/ccprof_sim.dir/CacheGeometry.cpp.o.d"
  "CMakeFiles/ccprof_sim.dir/CacheHierarchy.cpp.o"
  "CMakeFiles/ccprof_sim.dir/CacheHierarchy.cpp.o.d"
  "CMakeFiles/ccprof_sim.dir/MachineConfig.cpp.o"
  "CMakeFiles/ccprof_sim.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/ccprof_sim.dir/MissClassifier.cpp.o"
  "CMakeFiles/ccprof_sim.dir/MissClassifier.cpp.o.d"
  "CMakeFiles/ccprof_sim.dir/ReuseDistance.cpp.o"
  "CMakeFiles/ccprof_sim.dir/ReuseDistance.cpp.o.d"
  "libccprof_sim.a"
  "libccprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
