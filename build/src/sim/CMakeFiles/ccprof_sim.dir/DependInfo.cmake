
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cache.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/Cache.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/Cache.cpp.o.d"
  "/root/repo/src/sim/CacheGeometry.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/CacheGeometry.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/CacheGeometry.cpp.o.d"
  "/root/repo/src/sim/CacheHierarchy.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/CacheHierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/CacheHierarchy.cpp.o.d"
  "/root/repo/src/sim/MachineConfig.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/MachineConfig.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/MachineConfig.cpp.o.d"
  "/root/repo/src/sim/MissClassifier.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/MissClassifier.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/MissClassifier.cpp.o.d"
  "/root/repo/src/sim/ReuseDistance.cpp" "src/sim/CMakeFiles/ccprof_sim.dir/ReuseDistance.cpp.o" "gcc" "src/sim/CMakeFiles/ccprof_sim.dir/ReuseDistance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
