# Empty compiler generated dependencies file for ccprof_sim.
# This may be replaced when dependencies are built.
