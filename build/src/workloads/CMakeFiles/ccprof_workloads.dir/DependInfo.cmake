
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Adi.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Adi.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Adi.cpp.o.d"
  "/root/repo/src/workloads/Fft2d.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Fft2d.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Fft2d.cpp.o.d"
  "/root/repo/src/workloads/Himeno.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Himeno.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Himeno.cpp.o.d"
  "/root/repo/src/workloads/Kripke.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Kripke.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Kripke.cpp.o.d"
  "/root/repo/src/workloads/MiniKernels.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/MiniKernels.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/MiniKernels.cpp.o.d"
  "/root/repo/src/workloads/NeedlemanWunsch.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/NeedlemanWunsch.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/NeedlemanWunsch.cpp.o.d"
  "/root/repo/src/workloads/Symmetrization.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Symmetrization.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Symmetrization.cpp.o.d"
  "/root/repo/src/workloads/TinyDnnFc.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/TinyDnnFc.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/TinyDnnFc.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/ccprof_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/ccprof_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/ccprof_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ccprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
