file(REMOVE_RECURSE
  "CMakeFiles/ccprof_workloads.dir/Adi.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Adi.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/Fft2d.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Fft2d.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/Himeno.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Himeno.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/Kripke.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Kripke.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/MiniKernels.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/MiniKernels.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/NeedlemanWunsch.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/NeedlemanWunsch.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/Symmetrization.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Symmetrization.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/TinyDnnFc.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/TinyDnnFc.cpp.o.d"
  "CMakeFiles/ccprof_workloads.dir/Workload.cpp.o"
  "CMakeFiles/ccprof_workloads.dir/Workload.cpp.o.d"
  "libccprof_workloads.a"
  "libccprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
