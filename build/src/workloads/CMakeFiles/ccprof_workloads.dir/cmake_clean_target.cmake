file(REMOVE_RECURSE
  "libccprof_workloads.a"
)
