# Empty dependencies file for ccprof_workloads.
# This may be replaced when dependencies are built.
