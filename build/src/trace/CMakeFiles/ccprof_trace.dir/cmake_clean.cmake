file(REMOVE_RECURSE
  "CMakeFiles/ccprof_trace.dir/AllocationRegistry.cpp.o"
  "CMakeFiles/ccprof_trace.dir/AllocationRegistry.cpp.o.d"
  "CMakeFiles/ccprof_trace.dir/SiteRegistry.cpp.o"
  "CMakeFiles/ccprof_trace.dir/SiteRegistry.cpp.o.d"
  "CMakeFiles/ccprof_trace.dir/Trace.cpp.o"
  "CMakeFiles/ccprof_trace.dir/Trace.cpp.o.d"
  "libccprof_trace.a"
  "libccprof_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
