# Empty dependencies file for ccprof_trace.
# This may be replaced when dependencies are built.
