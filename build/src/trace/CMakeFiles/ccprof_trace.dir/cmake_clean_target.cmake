file(REMOVE_RECURSE
  "libccprof_trace.a"
)
