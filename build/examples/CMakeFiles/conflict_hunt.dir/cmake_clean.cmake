file(REMOVE_RECURSE
  "CMakeFiles/conflict_hunt.dir/conflict_hunt.cpp.o"
  "CMakeFiles/conflict_hunt.dir/conflict_hunt.cpp.o.d"
  "conflict_hunt"
  "conflict_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
