# Empty compiler generated dependencies file for conflict_hunt.
# This may be replaced when dependencies are built.
