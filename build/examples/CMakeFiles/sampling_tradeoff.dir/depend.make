# Empty dependencies file for sampling_tradeoff.
# This may be replaced when dependencies are built.
