# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.list "/root/repo/build/tools/ccprof" "list")
set_tests_properties(cli.list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.help "/root/repo/build/tools/ccprof" "help")
set_tests_properties(cli.help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.profile_exact "/root/repo/build/tools/ccprof" "profile" "Symmetrization" "--exact")
set_tests_properties(cli.profile_exact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.profile_csv "/root/repo/build/tools/ccprof" "profile" "hotspot" "--period" "171" "--csv")
set_tests_properties(cli.profile_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.compare "/root/repo/build/tools/ccprof" "compare" "ADI" "--exact")
set_tests_properties(cli.compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.l2 "/root/repo/build/tools/ccprof" "profile" "ADI" "--exact" "--level" "l2" "--mapping" "firsttouch" "--threshold" "64")
set_tests_properties(cli.l2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.bad_command "/root/repo/build/tools/ccprof" "frobnicate")
set_tests_properties(cli.bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
