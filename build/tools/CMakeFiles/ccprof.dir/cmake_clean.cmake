file(REMOVE_RECURSE
  "CMakeFiles/ccprof.dir/ccprof.cpp.o"
  "CMakeFiles/ccprof.dir/ccprof.cpp.o.d"
  "ccprof"
  "ccprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
