# Empty compiler generated dependencies file for ccprof.
# This may be replaced when dependencies are built.
