//===- examples/trace_inspector.cpp - Offline trace analysis ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// CCProf's two-step deployment (paper Sec. 4): the online profiler
// serializes per-thread logs to a file; the offline analyzer
// post-processes them later. This example records a trace, writes it to
// disk, reloads it, and runs every analysis the library offers on the
// loaded copy — including the three-C miss breakdown and reuse-distance
// profile the simulator substrate provides.
//
// Usage: trace_inspector [workload-name]   (default: Kripke)
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/Report.h"
#include "support/Table.h"
#include "sim/MissClassifier.h"
#include "sim/ReuseDistance.h"
#include "workloads/Workload.h"

#include <fstream>
#include <iostream>

using namespace ccprof;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "Kripke";
  std::unique_ptr<Workload> App = makeWorkloadByName(Name);
  if (!App) {
    std::cerr << "error: unknown workload '" << Name << "'\n";
    return 1;
  }

  // --- Online phase: record and serialize. -----------------------------
  Trace Recorded;
  App->run(WorkloadVariant::Original, &Recorded);
  const std::string Path = "/tmp/ccprof_" + Name + ".trace";
  {
    std::ofstream Out(Path, std::ios::binary);
    if (!Recorded.writeTo(Out)) {
      std::cerr << "error: failed to write " << Path << '\n';
      return 1;
    }
  }
  std::cout << "wrote " << Recorded.size() << " records to " << Path
            << "\n\n";

  // --- Offline phase: reload and analyze. ------------------------------
  Trace Loaded;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!Trace::readFrom(In, Loaded)) {
      std::cerr << "error: failed to parse " << Path << '\n';
      return 1;
    }
  }

  // Three-C breakdown on the paper's L1 geometry (ground truth the
  // measurement pipeline never sees on real hardware).
  MissClassifier Classifier(paperL1Geometry());
  ReuseDistanceAnalyzer Reuse;
  for (const MemoryRecord &Record : Loaded.records()) {
    Classifier.access(Record.Addr, Record.IsWrite);
    Reuse.access(paperL1Geometry().lineAddrOf(Record.Addr));
  }
  const MissBreakdown &Misses = Classifier.breakdown();
  std::cout << "three-C breakdown (32KiB 8-way L1):\n"
            << "  hits      " << Misses.Hits << '\n'
            << "  cold      " << Misses.ColdMisses << '\n'
            << "  capacity  " << Misses.CapacityMisses << '\n'
            << "  conflict  " << Misses.ConflictMisses << "  ("
            << fmt::percent(Misses.conflictShare())
            << " of all misses)\n\n";
  std::cout << "reuse distances: median "
            << (Reuse.distances().empty()
                    ? 0
                    : Reuse.distances().quantile(0.5))
            << " lines, cold lines " << Reuse.coldCount() << "\n\n";

  // The CCProf measurement view of the same trace.
  BinaryImage Binary = App->makeBinary();
  ProgramStructure Structure(Binary);
  Profiler Ccprof;
  ProfileResult Result = Ccprof.profile(Loaded, Structure);
  std::cout << renderProfileReport(Result, Name);
  return 0;
}
