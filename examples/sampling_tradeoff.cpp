//===- examples/sampling_tradeoff.cpp - Choosing a sampling period ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the accuracy/overhead trade-off of paper Sec. 3.3/5.3 on
// two contrasting applications:
//
//  * ADI's conflicts are stable for the whole run (long conflict
//    periods) — even coarse sampling catches them;
//  * HimenoBMT's conflicts hop sets every few misses (short conflict
//    periods) — only high-frequency sampling resolves them, which is
//    why the paper spent 27x overhead on it.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "support/Table.h"
#include "workloads/Adi.h"
#include "workloads/Himeno.h"

#include <iostream>
#include <memory>

using namespace ccprof;

int main() {
  std::cout << "=== Sampling-period trade-off: stable vs twitchy "
               "conflicts ===\n\n";

  struct AppCase {
    std::unique_ptr<Workload> W;
    Trace T;
    std::unique_ptr<BinaryImage> Image;
    std::unique_ptr<ProgramStructure> S;
  };
  AppCase Cases[2];
  Cases[0].W = std::make_unique<AdiWorkload>();
  Cases[1].W = std::make_unique<HimenoWorkload>();
  for (AppCase &Case : Cases) {
    Case.W->run(WorkloadVariant::Original, &Case.T);
    Case.Image = std::make_unique<BinaryImage>(Case.W->makeBinary());
    Case.S = std::make_unique<ProgramStructure>(*Case.Image);
  }

  // Conflict-period statistics from the exact profile explain why the
  // two applications need different frequencies.
  std::cout << "conflict periods (exact analysis of the hot loop):\n";
  for (AppCase &Case : Cases) {
    Profiler Exact;
    ProfileResult Result = Exact.profileExact(Case.T, *Case.S);
    const LoopConflictReport *Hot =
        Result.byLocation(Case.W->hotLoopLocation());
    if (!Hot)
      Hot = Result.hottest();
    if (Hot)
      std::cout << "  " << Case.W->name() << ": mean CP = "
                << fmt::fixed(Hot->Periods.meanRunLength(), 1)
                << " misses, max CP = " << Hot->Periods.maxRunLength()
                << '\n';
  }
  std::cout << '\n';

  // Contrast the sample-schedule *shapes* at equal mean cost: bursty
  // scheduling takes short runs of back-to-back samples (so true short
  // RCDs are observable inside a burst), while plain jittered sampling
  // never captures two events closer than ~period/2 — it is blind to
  // any RCD below that, no matter how severe the conflict.
  TextTable Table({"mean period", "app", "bursty verdict", "bursty cf",
                   "jittered verdict", "jittered cf"});
  for (uint64_t Period : {64ull, 171ull, 1212ull, 4096ull}) {
    for (AppCase &Case : Cases) {
      std::vector<std::string> Row = {std::to_string(Period),
                                      Case.W->name()};
      for (SamplingKind Kind :
           {SamplingKind::Bursty, SamplingKind::UniformJitter}) {
        ProfileOptions Options;
        Options.Sampling.Kind = Kind;
        Options.Sampling.MeanPeriod = Period;
        Profiler P(Options);
        ProfileResult Result = P.profile(Case.T, *Case.S);
        const LoopConflictReport *Hot =
            Result.byLocation(Case.W->hotLoopLocation());
        if (!Hot)
          Hot = Result.hottest();
        if (!Hot) {
          Row.push_back("(no samples)");
          Row.push_back("-");
        } else {
          Row.push_back(Hot->ConflictPredicted ? "CONFLICT" : "clean");
          Row.push_back(fmt::percent(Hot->ContributionFactor));
        }
      }
      Table.addRow(Row);
    }
  }
  std::cout << Table.render() << '\n';
  std::cout
      << "Bursty scheduling keeps both applications detectable even at "
         "coarse mean periods,\nbecause each burst exposes true "
         "consecutive-miss distances. Plain jittered sampling\ncannot "
         "observe any RCD shorter than its period and misses the "
         "conflicts entirely —\nthis is why CCProf randomizes its "
         "sampling period from a bursty distribution (Sec. 4).\n";
  return 0;
}
