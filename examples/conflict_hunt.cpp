//===- examples/conflict_hunt.cpp - The full optimization workflow ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The workflow of paper Sec. 6.1 on Needleman-Wunsch, end to end:
//
//   profile -> rank hot loops -> code-centric attribution (which loop)
//           -> data-centric attribution (which arrays)
//           -> apply the padding fix -> re-profile -> verify.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "core/Report.h"
#include "support/Table.h"
#include "workloads/NeedlemanWunsch.h"

#include <chrono>
#include <iostream>

using namespace ccprof;

namespace {

ProfileResult profileVariant(const NeedlemanWunschWorkload &App,
                             WorkloadVariant Variant) {
  Trace T;
  App.run(Variant, &T);
  BinaryImage Binary = App.makeBinary();
  ProgramStructure Structure(Binary);
  Profiler Ccprof;
  return Ccprof.profileExact(T, Structure);
}

double timeVariant(const NeedlemanWunschWorkload &App,
                   WorkloadVariant Variant) {
  using Clock = std::chrono::steady_clock;
  double Best = 1e300;
  for (int Rep = 0; Rep < 5; ++Rep) {
    Clock::time_point Start = Clock::now();
    volatile double Sink = App.run(Variant, nullptr);
    (void)Sink;
    Best = std::min(
        Best, std::chrono::duration<double>(Clock::now() - Start).count());
  }
  return Best;
}

} // namespace

int main() {
  NeedlemanWunschWorkload App;
  std::cout << "=== Hunting conflict misses in Needleman-Wunsch ===\n\n";

  // Step 1: profile the original build.
  std::cout << "--- step 1: profile the original build ---\n";
  ProfileResult Before = profileVariant(App, WorkloadVariant::Original);
  std::cout << renderProfileReport(Before, "needle (original)") << '\n';

  // Step 2: the verdicts point at the tile-copy loops; their
  // data-centric attribution names the two matrices. Count flagged
  // loops and collect the blamed arrays.
  std::cout << "--- step 2: what did CCProf find? ---\n";
  size_t Flagged = 0;
  for (const LoopConflictReport &Loop : Before.Loops) {
    if (!Loop.ConflictPredicted)
      continue;
    ++Flagged;
    std::cout << "  " << Loop.Location << " conflicts (cf "
              << fmt::percent(Loop.ContributionFactor) << ", "
              << fmt::percent(Loop.MissContribution)
              << " of all L1 misses)";
    if (!Loop.DataStructures.empty())
      std::cout << " — top structure: " << Loop.DataStructures[0].Name;
    std::cout << '\n';
  }
  std::cout << "  " << Flagged << " loops flagged\n\n";

  // Step 3: apply the fix the attribution suggests (pad the rows of
  // both matrices) and re-profile — this is the Optimized variant.
  std::cout << "--- step 3: pad the matrices and re-profile ---\n";
  ProfileResult After = profileVariant(App, WorkloadVariant::Optimized);
  size_t StillFlagged = 0;
  for (const LoopConflictReport &Loop : After.Loops)
    StillFlagged += Loop.ConflictPredicted ? 1 : 0;
  std::cout << "  flagged loops after padding: " << StillFlagged << '\n';
  if (const LoopConflictReport *Hot = After.byLocation("needle.cpp:189"))
    std::cout << "  needle.cpp:189 cf dropped to "
              << fmt::percent(Hot->ContributionFactor) << '\n';

  // Step 4: confirm with wall-clock time and the correctness checksum.
  std::cout << "\n--- step 4: verify ---\n";
  double OrigSeconds = timeVariant(App, WorkloadVariant::Original);
  double OptSeconds = timeVariant(App, WorkloadVariant::Optimized);
  std::cout << "  runtime " << fmt::fixed(OrigSeconds * 1e3, 2) << "ms -> "
            << fmt::fixed(OptSeconds * 1e3, 2) << "ms ("
            << fmt::times(OrigSeconds / OptSeconds) << " speedup)\n";
  double ChkOrig = App.run(WorkloadVariant::Original, nullptr);
  double ChkOpt = App.run(WorkloadVariant::Optimized, nullptr);
  std::cout << "  alignment score unchanged: "
            << (ChkOrig == ChkOpt ? "yes" : "NO (bug!)") << '\n';
  return 0;
}
