//===- examples/quickstart.cpp - CCProf in five minutes --------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end use of the library:
//
//   1. run an instrumented workload, recording its memory trace;
//   2. recover the program's loop structure from its (synthetic) binary;
//   3. profile: sample L1 misses, compute RCDs, classify each loop;
//   4. print the report and a padding recommendation.
//
// The workload is the paper's Sec. 2.1 example: matrix symmetrization,
// whose transposed access folds each column onto four L1 sets.
//
//===----------------------------------------------------------------------===//

#include "core/PaddingAdvisor.h"
#include "core/Profiler.h"
#include "core/Report.h"
#include "workloads/Symmetrization.h"

#include <iostream>

using namespace ccprof;

int main() {
  // 1. Run the application with tracing on (the Pin role).
  SymmetrizationWorkload App;
  Trace ExecutionTrace;
  App.run(WorkloadVariant::Original, &ExecutionTrace);
  std::cout << "recorded " << ExecutionTrace.size()
            << " memory references\n\n";

  // 2. Offline analysis front-end: CFG recovery + Havlak loop forest.
  BinaryImage Binary = App.makeBinary();
  ProgramStructure Structure(Binary);
  std::cout << "analyzer found " << Structure.numLoops()
            << " loops in " << Structure.numFunctions() << " function(s)\n\n";

  // 3. The profiler: PEBS-style sampling of L1 misses at the paper's
  //    recommended mean period, RCD computation, conflict classification.
  ProfileOptions Options;
  Options.Sampling.Kind = SamplingKind::Bursty;
  Options.Sampling.MeanPeriod = 171;
  Profiler Ccprof(Options);
  ProfileResult Result = Ccprof.profile(ExecutionTrace, Structure);

  // 4. Report.
  std::cout << renderProfileReport(Result, App.name());

  // Bonus: what would fix the flagged loop? Ask the padding advisor.
  const LoopConflictReport *Hot = Result.hottest();
  if (Hot && Hot->ConflictPredicted) {
    uint64_t RowBytes = App.dimension() * sizeof(double);
    PaddingAdvice Advice = adviseRowPadding(
        RowBytes, sizeof(double), App.dimension(), Options.L1);
    std::cout << "padding advice for the " << RowBytes
              << "B rows: pad by " << Advice.PadBytes
              << "B -> column walks touch " << Advice.SetsAfter << "/"
              << Options.L1.numSets() << " sets (was " << Advice.SetsBefore
              << ")\n";
  }
  return 0;
}
