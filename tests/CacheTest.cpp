//===- tests/CacheTest.cpp - Set-associative cache unit tests -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

namespace {

/// Tiny cache for exact eviction-order checks: 2 sets, 2 ways, 64B lines.
CacheGeometry tinyGeometry() { return CacheGeometry(256, 64, 2); }

/// Address of line \p Line within set \p Set of tinyGeometry.
uint64_t tinyAddr(uint64_t Tag, uint64_t Set) {
  return (Tag * 2 + Set) * 64;
}

} // namespace

TEST(CacheTest, ColdMissThenHit) {
  Cache C(tinyGeometry());
  EXPECT_FALSE(C.access(0).Hit);
  EXPECT_TRUE(C.access(0).Hit);
  EXPECT_TRUE(C.access(63).Hit); // same line
  EXPECT_FALSE(C.access(64).Hit); // next line, other set
  EXPECT_EQ(C.stats().Accesses, 4u);
  EXPECT_EQ(C.stats().Hits, 2u);
  EXPECT_EQ(C.stats().Misses, 2u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  Cache C(tinyGeometry(), ReplacementKind::Lru);
  // Fill set 0 with tags 0 and 1.
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  // Touch tag 0 so tag 1 becomes LRU.
  C.access(tinyAddr(0, 0));
  // Insert tag 2: must evict tag 1.
  CacheAccessResult R = C.access(tinyAddr(2, 0));
  EXPECT_FALSE(R.Hit);
  ASSERT_TRUE(R.EvictedLine.has_value());
  EXPECT_EQ(*R.EvictedLine, tinyGeometry().lineAddrOf(tinyAddr(1, 0)));
  EXPECT_TRUE(C.access(tinyAddr(0, 0)).Hit);
  EXPECT_FALSE(C.access(tinyAddr(1, 0)).Hit);
}

TEST(CacheTest, FifoEvictsOldestInsertion) {
  Cache C(tinyGeometry(), ReplacementKind::Fifo);
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  // Touch tag 0 (FIFO ignores recency).
  C.access(tinyAddr(0, 0));
  CacheAccessResult R = C.access(tinyAddr(2, 0));
  ASSERT_TRUE(R.EvictedLine.has_value());
  EXPECT_EQ(*R.EvictedLine, tinyGeometry().lineAddrOf(tinyAddr(0, 0)));
}

TEST(CacheTest, SetsAreIndependent) {
  Cache C(tinyGeometry());
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  C.access(tinyAddr(2, 0)); // set 0 now evicting
  // Set 1 is untouched: its fills must not evict.
  EXPECT_FALSE(C.access(tinyAddr(0, 1)).EvictedLine.has_value());
  EXPECT_FALSE(C.access(tinyAddr(1, 1)).EvictedLine.has_value());
}

TEST(CacheTest, WritebackTracksDirtyLines) {
  Cache C(tinyGeometry());
  C.access(tinyAddr(0, 0), /*IsWrite=*/true);
  C.access(tinyAddr(1, 0));
  // Evicting the dirty tag-0 line must report a write-back.
  C.access(tinyAddr(0, 0)); // refresh LRU: tag1 is victim (clean)
  CacheAccessResult R1 = C.access(tinyAddr(2, 0));
  ASSERT_TRUE(R1.EvictedLine.has_value());
  EXPECT_FALSE(R1.EvictedDirty);
  // Now evict the dirty line.
  CacheAccessResult R2 = C.access(tinyAddr(3, 0));
  ASSERT_TRUE(R2.EvictedLine.has_value());
  EXPECT_TRUE(R2.EvictedDirty);
  EXPECT_EQ(C.stats().Writebacks, 1u);
}

TEST(CacheTest, ProbeDoesNotPerturbState) {
  Cache C(tinyGeometry());
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  // Probing tag 0 must not refresh it in LRU order.
  EXPECT_TRUE(C.probe(tinyAddr(0, 0)));
  EXPECT_FALSE(C.probe(tinyAddr(7, 0)));
  CacheAccessResult R = C.access(tinyAddr(2, 0));
  ASSERT_TRUE(R.EvictedLine.has_value());
  EXPECT_EQ(*R.EvictedLine, tinyGeometry().lineAddrOf(tinyAddr(0, 0)));
}

TEST(CacheTest, FlushInvalidatesEverything) {
  Cache C(tinyGeometry());
  C.access(0);
  C.flush();
  EXPECT_FALSE(C.probe(0));
  EXPECT_FALSE(C.access(0).Hit);
}

TEST(CacheTest, PerSetMissCounters) {
  Cache C(tinyGeometry());
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  C.access(tinyAddr(0, 1));
  EXPECT_EQ(C.missesOnSet(0), 2u);
  EXPECT_EQ(C.missesOnSet(1), 1u);
  EXPECT_EQ(C.setsWithMisses(), 2u);
  C.resetStats();
  EXPECT_EQ(C.missesOnSet(0), 0u);
  EXPECT_EQ(C.stats().Accesses, 0u);
}

TEST(CacheTest, TreePlruApproximatesLru) {
  // For a 2-way cache, tree-PLRU degenerates to exact LRU.
  Cache C(tinyGeometry(), ReplacementKind::TreePlru);
  C.access(tinyAddr(0, 0));
  C.access(tinyAddr(1, 0));
  C.access(tinyAddr(0, 0));
  CacheAccessResult R = C.access(tinyAddr(2, 0));
  ASSERT_TRUE(R.EvictedLine.has_value());
  EXPECT_EQ(*R.EvictedLine, tinyGeometry().lineAddrOf(tinyAddr(1, 0)));
}

TEST(CacheTest, TreePlruNeverEvictsMostRecent) {
  Cache C(CacheGeometry(64 * 8, 64, 8), ReplacementKind::TreePlru);
  // One set, 8 ways. Repeatedly insert new tags; the most recently
  // touched line must survive each eviction.
  uint64_t Previous = 0;
  for (uint64_t Tag = 0; Tag < 64; ++Tag) {
    CacheAccessResult R = C.access(Tag * 64);
    if (R.EvictedLine) {
      EXPECT_NE(*R.EvictedLine, Previous) << "evicted the MRU line";
    }
    Previous = Tag;
  }
}

TEST(CacheTest, RandomPolicyIsDeterministicPerSeed) {
  Cache A(tinyGeometry(), ReplacementKind::Random, /*RngSeed=*/7);
  Cache B(tinyGeometry(), ReplacementKind::Random, /*RngSeed=*/7);
  for (uint64_t Tag = 0; Tag < 100; ++Tag) {
    CacheAccessResult Ra = A.access(tinyAddr(Tag, 0));
    CacheAccessResult Rb = B.access(tinyAddr(Tag, 0));
    EXPECT_EQ(Ra.Hit, Rb.Hit);
    EXPECT_EQ(Ra.EvictedLine, Rb.EvictedLine);
  }
}

TEST(CacheTest, MissRatioComputation) {
  Cache C(tinyGeometry());
  C.access(0);
  C.access(0);
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.stats().missRatio(), 0.25);
  CacheStats Fresh;
  EXPECT_DOUBLE_EQ(Fresh.missRatio(), 0.0);
}

// Property: under LRU, a working set no larger than one set's ways never
// misses after warm-up, for any associativity.
class LruWorkingSetTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LruWorkingSetTest, FittingWorkingSetNeverMisses) {
  uint32_t Assoc = GetParam();
  CacheGeometry G(64ull * Assoc * 4, 64, Assoc); // 4 sets
  Cache C(G);
  std::vector<uint64_t> Lines;
  for (uint32_t W = 0; W < Assoc; ++W)
    Lines.push_back(W * G.setStrideBytes()); // all map to set 0
  for (uint64_t Addr : Lines)
    C.access(Addr);
  for (int Round = 0; Round < 10; ++Round)
    for (uint64_t Addr : Lines)
      EXPECT_TRUE(C.access(Addr).Hit);
}

TEST_P(LruWorkingSetTest, OneExtraLineThrashesRoundRobin) {
  uint32_t Assoc = GetParam();
  CacheGeometry G(64ull * Assoc * 4, 64, Assoc);
  Cache C(G);
  // Assoc+1 lines in one set, accessed cyclically: classic LRU worst
  // case, every access misses after warm-up.
  for (int Round = 0; Round < 5; ++Round)
    for (uint32_t W = 0; W <= Assoc; ++W)
      C.access(W * G.setStrideBytes());
  CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Associativities, LruWorkingSetTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(FullyAssociativeLruTest, BasicHitMiss) {
  FullyAssociativeLru C(2);
  EXPECT_FALSE(C.access(1));
  EXPECT_FALSE(C.access(2));
  EXPECT_TRUE(C.access(1));
  EXPECT_FALSE(C.access(3)); // evicts 2 (LRU)
  EXPECT_TRUE(C.access(1));
  EXPECT_FALSE(C.access(2));
}

TEST(FullyAssociativeLruTest, CapacityOne) {
  FullyAssociativeLru C(1);
  EXPECT_FALSE(C.access(1));
  EXPECT_TRUE(C.access(1));
  EXPECT_FALSE(C.access(2));
  EXPECT_FALSE(C.access(1));
}

TEST(FullyAssociativeLruTest, ProbeAndSize) {
  FullyAssociativeLru C(4);
  C.access(10);
  C.access(20);
  EXPECT_TRUE(C.probe(10));
  EXPECT_FALSE(C.probe(30));
  EXPECT_EQ(C.size(), 2u);
  C.flush();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.probe(10));
}

TEST(FullyAssociativeLruTest, MatchesStackDistanceSemantics) {
  // A line hits iff fewer than Capacity distinct lines intervened.
  FullyAssociativeLru C(3);
  C.access(1);
  C.access(2);
  C.access(3);
  EXPECT_TRUE(C.access(1));  // distance 2 < 3
  C.access(4);               // evicts 2
  EXPECT_FALSE(C.access(2)); // distance 3 >= 3
}

TEST(FullyAssociativeLruTest, LargeChurnStaysBounded) {
  FullyAssociativeLru C(128);
  for (uint64_t I = 0; I < 100000; ++I)
    C.access(I % 1000);
  EXPECT_LE(C.size(), 128u);
}
