//===- tests/CfgTest.cpp - CFG recovery unit tests -------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

/// Builds a function from (Line, Kind, TargetIndex) triples, where
/// TargetIndex is the index of the target instruction within the
/// function (resolved to an address).
struct InsnSpec {
  uint32_t Line;
  InsnKind Kind;
  size_t TargetIndex = 0;
  bool IsAccess = false;
};

BinaryImage buildFunction(const std::vector<InsnSpec> &Specs) {
  BinaryImage Image("test.cpp");
  Image.beginFunction("f");
  uint64_t Base = Image.nextAddr();
  for (const InsnSpec &Spec : Specs) {
    Instruction Insn;
    Insn.Line = Spec.Line;
    Insn.Kind = Spec.Kind;
    Insn.Target = Base + Spec.TargetIndex * BinaryImage::InsnSize;
    Insn.IsMemoryAccess = Spec.IsAccess;
    Image.appendInstruction(Insn);
  }
  Image.endFunction();
  return Image;
}

} // namespace

TEST(CfgTest, StraightLineIsOneBlock) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::Sequential},
      {3, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  ASSERT_EQ(Graph.numBlocks(), 1u);
  const BasicBlock &Block = Graph.block(0);
  EXPECT_EQ(Block.MinLine, 1u);
  EXPECT_EQ(Block.MaxLine, 3u);
  EXPECT_TRUE(Block.Succs.empty());
}

TEST(CfgTest, DiamondHasFourBlocks) {
  // 0: entry; 1: condbr ->4; 2: then; 3: jmp ->5; 4: else; 5: merge; 6: ret
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 4},
      {3, InsnKind::Sequential},
      {3, InsnKind::Jump, 5},
      {4, InsnKind::Sequential},
      {5, InsnKind::Sequential},
      {6, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  ASSERT_EQ(Graph.numBlocks(), 4u);

  const BasicBlock &Entry = Graph.block(0);
  ASSERT_EQ(Entry.Succs.size(), 2u);
  // Then (B1) and else (B2) both reach the merge block (B3).
  EXPECT_EQ(Graph.block(1).Succs, std::vector<BlockId>{3});
  EXPECT_EQ(Graph.block(2).Succs, std::vector<BlockId>{3});
  EXPECT_EQ(Graph.block(3).Preds.size(), 2u);
  EXPECT_TRUE(Graph.block(3).Succs.empty());
}

TEST(CfgTest, SimpleLoopHasBackEdge) {
  // 0: preheader; 1: header condbr ->4; 2: body; 3: jmp ->1; 4: ret
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 4},
      {3, InsnKind::Sequential},
      {4, InsnKind::Jump, 1},
      {5, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  ASSERT_EQ(Graph.numBlocks(), 4u);
  // Latch (B2) loops back to the header (B1).
  EXPECT_EQ(Graph.block(2).Succs, std::vector<BlockId>{1});
  EXPECT_EQ(Graph.block(1).Preds.size(), 2u);
}

TEST(CfgTest, BlockContaining) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 3},
      {3, InsnKind::Sequential},
      {4, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  const BinaryFunction &F = Image.functions()[0];
  uint64_t Entry = F.EntryAddr;
  auto B0 = Graph.blockContaining(Entry);
  ASSERT_TRUE(B0.has_value());
  EXPECT_EQ(*B0, 0u);
  EXPECT_FALSE(Graph.blockContaining(Entry - 4).has_value());
  EXPECT_FALSE(Graph.blockContaining(Entry + 1).has_value()); // unaligned
}

TEST(CfgTest, ReversePostOrderStartsAtEntry) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 4},
      {3, InsnKind::Sequential},
      {4, InsnKind::Jump, 1},
      {5, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  std::vector<BlockId> Rpo = Graph.reversePostOrder();
  ASSERT_FALSE(Rpo.empty());
  EXPECT_EQ(Rpo.front(), Graph.entry());
  EXPECT_EQ(Rpo.size(), Graph.numBlocks());
  // Every block appears exactly once.
  std::vector<bool> Seen(Graph.numBlocks(), false);
  for (BlockId Block : Rpo) {
    EXPECT_FALSE(Seen[Block]);
    Seen[Block] = true;
  }
}

TEST(BinaryImageTest, LineAndFunctionLookup) {
  BinaryImage Image("src.cpp");
  Image.beginFunction("first");
  Image.appendInstruction({0, 10, InsnKind::Sequential, 0, false});
  Image.appendInstruction({0, 11, InsnKind::Return, 0, false});
  Image.endFunction();
  Image.beginFunction("second");
  Image.appendInstruction({0, 20, InsnKind::Return, 0, true});
  Image.endFunction();

  ASSERT_EQ(Image.functions().size(), 2u);
  uint64_t FirstAddr = Image.functions()[0].EntryAddr;
  uint64_t SecondAddr = Image.functions()[1].EntryAddr;

  EXPECT_EQ(Image.lineOf(FirstAddr), 10u);
  EXPECT_EQ(Image.lineOf(SecondAddr), 20u);
  EXPECT_FALSE(Image.lineOf(SecondAddr + 4).has_value());

  ASSERT_NE(Image.functionContaining(FirstAddr + 4), nullptr);
  EXPECT_EQ(Image.functionContaining(FirstAddr + 4)->Name, "first");
  EXPECT_EQ(Image.functionContaining(SecondAddr)->Name, "second");
  EXPECT_TRUE(Image.at(SecondAddr)->IsMemoryAccess);
}
