//===- tests/PartitionReuseTest.cpp - Route-once partition reuse ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The route-once engine claims that retaining a trace's shard
// partition and replaying it across every configuration sharing an
// index geometry changes nothing but the routing cost. This suite
// enforces the claim at three layers:
//
//  * the PartitionCache itself: hit/build attribution through the
//    WasBuilt out-param, LRU eviction under a byte budget that never
//    evicts the most-recently-inserted entry, and trace release;
//
//  * routeOrReuse: byte-identical partitions at every helper count,
//    cache on vs off, and both routers;
//
//  * the collectors and the batch runner: identical miss streams and
//    byte-identical artifacts with reuse on vs off, with exact
//    build/reuse accounting on same-index-geometry sweeps.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "pmu/PebsEvent.h"
#include "sim/PartitionCache.h"
#include "sim/ShardedSim.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

/// Mixed strided/random reference stream with stores, as a Trace.
Trace makeTrace(size_t NumRefs, uint64_t Seed = 0x7e57'5eed) {
  Trace T;
  T.reserve(NumRefs);
  Xoshiro256 Rng(Seed);
  uint64_t Stride = 0;
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Addr;
    if (I % 4 != 0) {
      Stride += 24;
      Addr = Stride % (1 << 18);
    } else {
      Addr = Rng.nextBounded(1 << 18);
    }
    if (Rng.nextBounded(8) < 3)
      T.recordStore(0, Addr, 8);
    else
      T.recordLoad(0, Addr, 8);
  }
  return T;
}

/// A synthetic partition of \p NumRefs arena slots (content is
/// irrelevant to the cache-policy tests; only bytesOf matters).
ShardPartition makePartition(size_t NumRefs) {
  ShardPartition Part;
  Part.Arena.resize(NumRefs, ShardRef::make(0, 0, false));
  Part.Offsets = {0, NumRefs};
  return Part;
}

PartitionKey makeKey(uint64_t TraceId, uint64_t NumSets) {
  PartitionKey Key;
  Key.TraceId = TraceId;
  Key.NumSets = NumSets;
  Key.LineBytes = 64;
  Key.Shards = 2;
  return Key;
}

std::string serializeAll(const std::vector<JobOutcome> &Outcomes) {
  std::stringstream Stream;
  for (const JobOutcome &Outcome : Outcomes)
    if (Outcome.ok())
      Outcome.Artifact.writeTo(Stream);
  return Stream.str();
}

} // namespace

TEST(PartitionReuseTest, GetOrComputeBuildsOnceThenHits) {
  PartitionCache Cache;
  const uint64_t TraceId = Cache.registerTrace();
  const PartitionKey Key = makeKey(TraceId, 64);

  size_t Calls = 0;
  auto Build = [&] {
    ++Calls;
    return makePartition(100);
  };

  bool WasBuilt = false;
  const PartitionCache::PartitionPtr First =
      Cache.getOrCompute(Key, Build, &WasBuilt);
  EXPECT_TRUE(WasBuilt);
  EXPECT_EQ(Calls, 1u);
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->Arena.size(), 100u);

  const PartitionCache::PartitionPtr Second =
      Cache.getOrCompute(Key, Build, &WasBuilt);
  EXPECT_FALSE(WasBuilt);
  EXPECT_EQ(Calls, 1u);
  EXPECT_EQ(Second.get(), First.get());

  // A different index geometry under the same trace is a distinct
  // entry.
  Cache.getOrCompute(makeKey(TraceId, 128), Build, &WasBuilt);
  EXPECT_TRUE(WasBuilt);
  EXPECT_EQ(Calls, 2u);

  const PartitionCache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Builds, 2u);
  EXPECT_EQ(Stats.Evictions, 0u);
  EXPECT_EQ(Stats.ResidentEntries, 2u);
  EXPECT_EQ(Stats.ResidentBytes, 2 * PartitionCache::bytesOf(*First));
}

TEST(PartitionReuseTest, EvictionKeepsMostRecentUnderByteBudget) {
  // Budget below two partitions but above one: every insert evicts the
  // previous entry, never itself — even when a single entry exceeds
  // the whole budget.
  const size_t OneEntry = PartitionCache::bytesOf(makePartition(100));
  PartitionCache Cache(OneEntry + OneEntry / 2);
  const uint64_t TraceId = Cache.registerTrace();

  auto Build = [] { return makePartition(100); };
  bool WasBuilt = false;
  Cache.getOrCompute(makeKey(TraceId, 64), Build, &WasBuilt);
  Cache.getOrCompute(makeKey(TraceId, 128), Build, &WasBuilt);
  EXPECT_TRUE(WasBuilt);

  PartitionCache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.ResidentEntries, 1u);
  EXPECT_LE(Stats.ResidentBytes, OneEntry + OneEntry / 2);

  // The survivor is the most recent insert: re-requesting it hits, and
  // the evicted key rebuilds.
  Cache.getOrCompute(makeKey(TraceId, 128), Build, &WasBuilt);
  EXPECT_FALSE(WasBuilt);
  Cache.getOrCompute(makeKey(TraceId, 64), Build, &WasBuilt);
  EXPECT_TRUE(WasBuilt);

  // An entry larger than the entire budget still resides (the cache
  // never evicts the entry it just admitted).
  PartitionCache Tiny(16);
  const uint64_t TinyId = Tiny.registerTrace();
  Tiny.getOrCompute(makeKey(TinyId, 64), Build, &WasBuilt);
  EXPECT_TRUE(WasBuilt);
  EXPECT_EQ(Tiny.stats().ResidentEntries, 1u);
  Tiny.getOrCompute(makeKey(TinyId, 64), Build, &WasBuilt);
  EXPECT_FALSE(WasBuilt);
}

TEST(PartitionReuseTest, ReleaseTraceDropsOnlyThatTrace) {
  PartitionCache Cache;
  const uint64_t A = Cache.registerTrace();
  const uint64_t B = Cache.registerTrace();
  EXPECT_NE(A, B);
  EXPECT_NE(A, 0u);

  auto Build = [] { return makePartition(50); };
  Cache.getOrCompute(makeKey(A, 64), Build);
  Cache.getOrCompute(makeKey(A, 128), Build);
  Cache.getOrCompute(makeKey(B, 64), Build);
  EXPECT_EQ(Cache.stats().ResidentEntries, 3u);

  // Evicted arenas stay valid for holders of the shared_ptr.
  const PartitionCache::PartitionPtr Held =
      Cache.getOrCompute(makeKey(A, 64), Build);
  Cache.releaseTrace(A);
  EXPECT_EQ(Cache.stats().ResidentEntries, 1u);
  EXPECT_EQ(Held->Arena.size(), 50u);

  bool WasBuilt = false;
  Cache.getOrCompute(makeKey(B, 64), Build, &WasBuilt);
  EXPECT_FALSE(WasBuilt);
}

TEST(PartitionReuseTest, RouteOrReuseIsByteIdenticalAtEveryShape) {
  const Trace T = makeTrace(40'000);
  const CacheGeometry Geometry(8192, 64, 2);
  const std::vector<SetRange> Plan = planShards(Geometry.numSets(), 3);
  const ShardPartition Sequential =
      partitionBySet(T.records(), Geometry, Plan);

  ThreadPool Pool(7);
  PartitionCache Cache;
  for (PartitionRouter Router :
       {PartitionRouter::CountScatter, PartitionRouter::Fused}) {
    for (unsigned Helpers : {0u, 1u, 3u, 7u}) {
      for (bool UseCache : {false, true}) {
        SimContext Ctx;
        Ctx.Pool = &Pool;
        Ctx.Router = Router;
        Ctx.Partitions = UseCache ? &Cache : nullptr;
        // A fresh trace id per shape forces a rebuild even with the
        // cache on, so every (router, helpers) pair routes for real.
        Ctx.TraceId = UseCache ? Cache.registerTrace() : 0;
        const PartitionCache::PartitionPtr Part =
            routeOrReuse(T.records(), Geometry, Plan, Ctx, Helpers);
        ASSERT_NE(Part, nullptr);
        EXPECT_EQ(Part->Arena, Sequential.Arena)
            << "router " << static_cast<int>(Router) << ", helpers "
            << Helpers << ", cache " << UseCache;
        EXPECT_EQ(Part->Offsets, Sequential.Offsets);
        if (UseCache)
          Cache.releaseTrace(Ctx.TraceId);
      }
    }
  }
}

TEST(PartitionReuseTest, SweepAcrossConfigsRoutesOnce) {
  // Four configurations sharing one index geometry (64 sets x 64B):
  // the first sharded collection routes, the rest reuse, and every
  // stream still equals its own sequential oracle.
  const Trace T = makeTrace(60'000);
  struct SweepConfig {
    CacheGeometry Geometry;
    ReplacementKind Policy;
  };
  const std::vector<SweepConfig> Configs = {
      {CacheGeometry(8192, 64, 2), ReplacementKind::Lru},
      {CacheGeometry(16384, 64, 4), ReplacementKind::Lru},
      {CacheGeometry(8192, 64, 2), ReplacementKind::Fifo},
      {CacheGeometry(32768, 64, 8), ReplacementKind::TreePlru},
  };

  ThreadPool Pool(3);
  ThreadBudget Budget(4);
  ShardCachePool CachePool;
  ShardExecStats Stats;
  PartitionCache Partitions;
  SimContext Ctx;
  Ctx.Pool = &Pool;
  Ctx.Budget = &Budget;
  Ctx.CachePool = &CachePool;
  Ctx.Stats = &Stats;
  Ctx.Shards = 4;
  Ctx.MinRefsToShard = 0;
  Ctx.Partitions = &Partitions;
  Ctx.TraceId = Partitions.registerTrace();

  for (const SweepConfig &C : Configs) {
    MissStreamOptions Options;
    Options.Policy = C.Policy;
    EXPECT_EQ(collectL1MissStreamParallel(T, C.Geometry, Options, Ctx),
              collectL1MissStream(T, C.Geometry, Options));
  }
  Partitions.releaseTrace(Ctx.TraceId);

  EXPECT_EQ(Stats.PartitionBuilds.load(), 1u);
  EXPECT_EQ(Stats.PartitionReuses.load(), Configs.size() - 1);
}

TEST(PartitionReuseTest, BatchArtifactsByteIdenticalWithReuseOnOrOff) {
  // An L1 + L2 matrix over one workload: the L2 jobs' stage-1 replay
  // shares the L1 jobs' index geometry, so the reuse run must report
  // at least one cache hit while producing the naive path's bytes.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = {606, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  const std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_GE(Jobs.size(), 4u);

  const std::string Naive = serializeAll(runJobs(Jobs, 1));

  BatchExecOptions Exec;
  Exec.Workers = 1;
  Exec.SimThreads = 4;
  Exec.Shards = 2;
  Exec.MinRefsToShard = 0;

  Exec.PartitionReuse = false;
  SharedBatchStats OffStats;
  EXPECT_EQ(serializeAll(runJobsShared(Jobs, Exec, 0, nullptr, nullptr,
                                       &OffStats)),
            Naive);
  EXPECT_EQ(OffStats.PartitionReuses, 0u);
  EXPECT_GT(OffStats.PartitionBuilds, 0u);

  Exec.PartitionReuse = true;
  SharedBatchStats OnStats;
  EXPECT_EQ(serializeAll(runJobsShared(Jobs, Exec, 0, nullptr, nullptr,
                                       &OnStats)),
            Naive);
  EXPECT_GE(OnStats.PartitionReuses, 1u);
  EXPECT_LT(OnStats.PartitionBuilds, OffStats.PartitionBuilds);
}
