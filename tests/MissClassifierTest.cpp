//===- tests/MissClassifierTest.cpp - Three-C classification tests --------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/MissClassifier.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

/// 2 sets x 2 ways, 64B lines.
CacheGeometry tinyGeometry() { return CacheGeometry(256, 64, 2); }

uint64_t setAddr(uint64_t Tag, uint64_t Set) { return (Tag * 2 + Set) * 64; }

} // namespace

TEST(MissClassifierTest, FirstTouchIsCold) {
  MissClassifier M(tinyGeometry());
  EXPECT_EQ(M.access(0), AccessKind::ColdMiss);
  EXPECT_EQ(M.access(0), AccessKind::Hit);
  EXPECT_EQ(M.breakdown().ColdMisses, 1u);
  EXPECT_EQ(M.breakdown().Hits, 1u);
}

TEST(MissClassifierTest, ConflictMiss) {
  MissClassifier M(tinyGeometry());
  // Three lines in set 0 of a 2-way cache; total capacity is 4 lines,
  // so the fully-associative companion retains all three.
  M.access(setAddr(0, 0));
  M.access(setAddr(1, 0));
  M.access(setAddr(2, 0)); // evicts tag 0 from the SA cache only
  EXPECT_EQ(M.access(setAddr(0, 0)), AccessKind::ConflictMiss);
  EXPECT_EQ(M.breakdown().ConflictMisses, 1u);
  EXPECT_EQ(M.breakdown().CapacityMisses, 0u);
}

TEST(MissClassifierTest, CapacityMiss) {
  MissClassifier M(tinyGeometry()); // 4 lines total
  // Five distinct lines spread over both sets, then re-reference the
  // first: it left both the SA cache and the FA companion.
  for (uint64_t L = 0; L < 5; ++L)
    M.access(L * 64);
  EXPECT_EQ(M.access(0), AccessKind::CapacityMiss);
  EXPECT_EQ(M.breakdown().CapacityMisses, 1u);
}

TEST(MissClassifierTest, BreakdownTotals) {
  MissClassifier M(tinyGeometry());
  for (uint64_t L = 0; L < 10; ++L)
    M.access(L * 64);
  MissBreakdown B = M.breakdown();
  EXPECT_EQ(B.totalAccesses(), 10u);
  EXPECT_EQ(B.ColdMisses, 10u);
  EXPECT_EQ(B.totalMisses(), 10u);
}

TEST(MissClassifierTest, ConflictShare) {
  MissClassifier M(tinyGeometry());
  M.access(setAddr(0, 0));
  M.access(setAddr(1, 0));
  M.access(setAddr(2, 0));
  M.access(setAddr(0, 0)); // conflict
  // 3 cold + 1 conflict.
  EXPECT_DOUBLE_EQ(M.breakdown().conflictShare(), 0.25);
}

TEST(MissClassifierTest, ResetClearsState) {
  MissClassifier M(tinyGeometry());
  M.access(0);
  M.reset();
  EXPECT_EQ(M.breakdown().totalAccesses(), 0u);
  EXPECT_EQ(M.access(0), AccessKind::ColdMiss); // cold again after reset
}

TEST(MissClassifierTest, KindNames) {
  EXPECT_STREQ(accessKindName(AccessKind::Hit), "hit");
  EXPECT_STREQ(accessKindName(AccessKind::ColdMiss), "cold");
  EXPECT_STREQ(accessKindName(AccessKind::CapacityMiss), "capacity");
  EXPECT_STREQ(accessKindName(AccessKind::ConflictMiss), "conflict");
}

TEST(MissClassifierTest, PaddedColumnWalkRemovesConflicts) {
  // The paper's central claim in miniature: a column walk with a
  // set-stride row maps to one set (conflict misses); padding by one
  // line spreads it (no conflict misses on reuse).
  CacheGeometry G(32 * 1024, 64, 8); // 64 sets, stride 4096
  const uint64_t Rows = 64;

  auto SweepTwice = [&](uint64_t RowBytes) {
    MissClassifier M(G);
    for (int Round = 0; Round < 2; ++Round)
      for (uint64_t Row = 0; Row < Rows; ++Row)
        M.access(Row * RowBytes);
    return M.breakdown();
  };

  MissBreakdown Conflicting = SweepTwice(4096);
  EXPECT_GT(Conflicting.ConflictMisses, Rows / 2)
      << "unpadded walk must conflict on reuse";

  MissBreakdown Padded = SweepTwice(4096 + 64);
  EXPECT_EQ(Padded.ConflictMisses, 0u);
  EXPECT_EQ(Padded.Hits, Rows); // second sweep hits entirely
}

// Property: classified counts always sum to accesses, and conflicts can
// only occur on lines seen before.
class ClassifierSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClassifierSweepTest, CountsAreConsistent) {
  CacheGeometry G(4096, 64, GetParam());
  MissClassifier M(G);
  SplitMix64 Rng(GetParam());
  for (int I = 0; I < 20000; ++I)
    M.access((Rng.next() % 512) * 64);
  MissBreakdown B = M.breakdown();
  EXPECT_EQ(B.Hits + B.ColdMisses + B.CapacityMisses + B.ConflictMisses,
            20000u);
  // At most 512 distinct lines were ever touched.
  EXPECT_LE(B.ColdMisses, 512u);
}

INSTANTIATE_TEST_SUITE_P(Associativities, ClassifierSweepTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));
