//===- tests/RcdAnalyzerTest.cpp - Re-Conflict Distance tests -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/RcdAnalyzer.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(RcdProfileTest, FirstMissPerSetHasNoRcd) {
  RcdProfile P(4);
  P.addMiss(0);
  P.addMiss(1);
  EXPECT_EQ(P.totalMisses(), 2u);
  EXPECT_TRUE(P.rcd().empty());
}

TEST(RcdProfileTest, PaperFigure5Sequence) {
  // Fig. 5-a: the RCD of set 1 across the miss sequence
  // S1 S1 S2 S1 S3 S2 S1 S0 S3 S1 -> set-1 distances 1, 2, 3, 3.
  RcdProfile P(4);
  for (uint64_t Set : {1, 1, 2, 1, 3, 2, 1, 0, 3, 1})
    P.addMiss(Set);
  const Histogram &Set1 = P.rcdOfSet(1);
  EXPECT_EQ(Set1.total(), 4u);
  EXPECT_EQ(Set1.count(1), 1u);
  EXPECT_EQ(Set1.count(2), 1u);
  EXPECT_EQ(Set1.count(3), 2u);
}

TEST(RcdProfileTest, BalancedRoundRobinGivesRcdEqualToNumSets) {
  // Observation 2: with no conflicts, RCD of every set equals the
  // number of sets.
  constexpr uint64_t NumSets = 64;
  RcdProfile P(NumSets);
  for (int Round = 0; Round < 10; ++Round)
    for (uint64_t Set = 0; Set < NumSets; ++Set)
      P.addMiss(Set);
  const Histogram &Rcd = P.rcd();
  EXPECT_EQ(Rcd.minKey(), NumSets);
  EXPECT_EQ(Rcd.maxKey(), NumSets);
  EXPECT_DOUBLE_EQ(P.meanRcd(), static_cast<double>(NumSets));
  EXPECT_DOUBLE_EQ(P.contributionFactor(8), 0.0);
}

TEST(RcdProfileTest, SingleVictimSetGivesRcdOne) {
  RcdProfile P(64);
  for (int I = 0; I < 100; ++I)
    P.addMiss(17);
  EXPECT_EQ(P.rcd().count(1), 99u);
  EXPECT_EQ(P.setsUtilized(), 1u);
  // cf = 99/100: one miss (the first) produced no RCD observation.
  EXPECT_DOUBLE_EQ(P.contributionFactor(8), 0.99);
}

TEST(RcdProfileTest, ContributionFactorUsesMissDenominator) {
  // Eq. 1: cf = N_{RCD<T} / N_total where N_total counts all misses.
  RcdProfile P(8);
  P.addMiss(0); // no RCD
  P.addMiss(0); // RCD 1
  P.addMiss(1); // no RCD
  P.addMiss(2); // no RCD
  EXPECT_DOUBLE_EQ(P.contributionFactor(8), 0.25);
}

TEST(RcdProfileTest, SetsUtilizedMatchesTouchedSets) {
  RcdProfile P(64);
  for (uint64_t Set : {0, 5, 5, 63})
    P.addMiss(Set);
  EXPECT_EQ(P.setsUtilized(), 3u);
  EXPECT_EQ(P.missesOnSet(5), 2u);
  EXPECT_EQ(P.missesOnSet(1), 0u);
}

TEST(RcdProfileTest, ConflictPeriodRuns) {
  // Set 0 misses with constant RCD 2 (period of length 4), then the
  // rhythm changes.
  RcdProfile P(4);
  // Sequence: 0 1 0 1 0 1 0 1 0 0 -> set-0 RCDs: 2,2,2,2,1.
  for (uint64_t Set : {0, 1, 0, 1, 0, 1, 0, 1, 0, 0})
    P.addMiss(Set);
  const ConflictPeriodStats &Periods = P.conflictPeriods();
  // The run of four RCD-2 observations closed when the RCD-1 arrived.
  EXPECT_EQ(Periods.RunLengths.count(4), 1u);
  EXPECT_EQ(Periods.maxRunLength(), 4u);
}

TEST(RcdProfileTest, MeanRcdMixesSets) {
  RcdProfile P(4);
  // Set 0: distances 2, 2. Set 1: distances 2, 2.
  for (uint64_t Set : {0, 1, 0, 1, 0, 1})
    P.addMiss(Set);
  EXPECT_DOUBLE_EQ(P.meanRcd(), 2.0);
}

TEST(RcdAnalyzerTest, ContextsAreIndependent) {
  RcdAnalyzer A(64);
  // Context 1 hammers one set; context 2 round-robins. Event ordinals
  // come from one shared global miss stream.
  uint64_t Event = 0;
  for (int I = 0; I < 50; ++I)
    A.addMiss(1, 7, ++Event);
  for (int Round = 0; Round < 3; ++Round)
    for (uint64_t Set = 0; Set < 64; ++Set)
      A.addMiss(2, Set, ++Event);

  const RcdProfile *P1 = A.profile(1);
  const RcdProfile *P2 = A.profile(2);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_GT(P1->contributionFactor(8), 0.9);
  EXPECT_DOUBLE_EQ(P2->contributionFactor(8), 0.0);
  EXPECT_EQ(A.totalMisses(), 50u + 192u);
  EXPECT_EQ(A.profiles().size(), 2u);
}

TEST(RcdAnalyzerTest, InterleavedContextsUseGlobalDistances) {
  // Two contexts alternate misses on set 0. The event distance between
  // context 1's consecutive set-0 misses is 2 (one context-2 miss in
  // between) — the simulator's view of the global miss sequence.
  RcdAnalyzer A(64);
  uint64_t Event = 0;
  for (int I = 0; I < 10; ++I) {
    A.addMiss(1, 0, ++Event);
    A.addMiss(2, 0, ++Event);
  }
  EXPECT_EQ(A.profile(1)->rcd().count(2), 9u);
  EXPECT_EQ(A.profile(2)->rcd().count(2), 9u);
}

TEST(RcdProfileTest, SparseEventOrdinalsMeasureTrueDistance) {
  // Sampling: only every 100th miss observed, but the PMU still knows
  // the exact event positions. Two observed set-3 misses 200 events
  // apart yield RCD 200, not 2.
  RcdProfile P(64);
  P.addMiss(3, 100);
  P.addMiss(5, 200);
  P.addMiss(3, 300);
  EXPECT_EQ(P.rcd().count(200), 1u);
  EXPECT_DOUBLE_EQ(P.contributionFactor(8), 0.0);
}

TEST(RcdAnalyzerTest, UnknownContextReturnsNull) {
  RcdAnalyzer A(64);
  EXPECT_EQ(A.profile(42), nullptr);
}

// Property: for any interleaving, the RCD observations of a set count
// exactly its misses minus one.
class RcdCountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RcdCountingTest, ObservationCountInvariant) {
  const uint64_t NumSets = GetParam();
  RcdProfile P(NumSets);
  SplitMix64 Rng(NumSets * 17);
  constexpr int Misses = 5000;
  for (int I = 0; I < Misses; ++I)
    P.addMiss(Rng.next() % NumSets);
  uint64_t TotalObservations = 0;
  for (uint64_t Set = 0; Set < NumSets; ++Set) {
    uint64_t OnSet = P.missesOnSet(Set);
    EXPECT_EQ(P.rcdOfSet(Set).total(), OnSet == 0 ? 0 : OnSet - 1);
    TotalObservations += P.rcdOfSet(Set).total();
  }
  EXPECT_EQ(P.rcd().total(), TotalObservations);
  EXPECT_EQ(P.totalMisses(), static_cast<uint64_t>(Misses));
}

INSTANTIATE_TEST_SUITE_P(SetCounts, RcdCountingTest,
                         ::testing::Values(1, 2, 8, 64, 100));
