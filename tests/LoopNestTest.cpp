//===- tests/LoopNestTest.cpp - Havlak interval analysis tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"
#include "cfg/LoopNest.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

struct InsnSpec {
  uint32_t Line;
  InsnKind Kind;
  size_t TargetIndex = 0;
};

BinaryImage buildFunction(const std::vector<InsnSpec> &Specs) {
  BinaryImage Image("loops.cpp");
  Image.beginFunction("f");
  uint64_t Base = Image.nextAddr();
  for (const InsnSpec &Spec : Specs) {
    Instruction Insn;
    Insn.Line = Spec.Line;
    Insn.Kind = Spec.Kind;
    Insn.Target = Base + Spec.TargetIndex * BinaryImage::InsnSize;
    Image.appendInstruction(Insn);
  }
  Image.endFunction();
  return Image;
}

} // namespace

TEST(LoopNestTest, AcyclicGraphHasNoLoops) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 3},
      {3, InsnKind::Sequential},
      {4, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  EXPECT_EQ(Nest.numLoops(), 0u);
  for (BlockId B = 0; B < Graph.numBlocks(); ++B)
    EXPECT_FALSE(Nest.innermostLoopOf(B).has_value());
}

TEST(LoopNestTest, SingleLoop) {
  // B0 -> B1(header, lines 2) <-> B2(body, lines 3-4); B1 -> B3.
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},     // B0
      {2, InsnKind::CondBranch, 4},  // B1 header
      {3, InsnKind::Sequential},     // B2
      {4, InsnKind::Jump, 1},        // B2 latch
      {5, InsnKind::Return},         // B3
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 1u);
  const LoopInfo &Loop = Nest.loop(0);
  EXPECT_EQ(Loop.Header, 1u);
  EXPECT_TRUE(Loop.IsReducible);
  EXPECT_EQ(Loop.Depth, 1u);
  EXPECT_FALSE(Loop.Parent.has_value());
  EXPECT_EQ(Loop.MinLine, 2u);
  EXPECT_EQ(Loop.MaxLine, 4u);

  EXPECT_EQ(Nest.innermostLoopOf(1), 0u);
  EXPECT_EQ(Nest.innermostLoopOf(2), 0u);
  EXPECT_FALSE(Nest.innermostLoopOf(0).has_value());
  EXPECT_FALSE(Nest.innermostLoopOf(3).has_value());
}

TEST(LoopNestTest, SelfLoop) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 1}, // branches to itself
      {3, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 1u);
  EXPECT_EQ(Nest.loop(0).OwnBlocks.size(), 1u);
}

TEST(LoopNestTest, NestedLoops) {
  // for (...) { for (...) { body } }
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},     // 0 B0 preheader
      {2, InsnKind::CondBranch, 8},  // 1 B1 outer header -> exit
      {3, InsnKind::Sequential},     // 2 B2 inner preheader
      {4, InsnKind::CondBranch, 7},  // 3 B3 inner header -> outer latch
      {5, InsnKind::Sequential},     // 4 B4 inner body
      {5, InsnKind::Jump, 3},        // 5 B4 inner latch
      {6, InsnKind::Sequential},     // 6 (unreachable padding)
      {6, InsnKind::Jump, 1},        // 7 B5 outer latch
      {7, InsnKind::Return},         // 8 B6 exit
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 2u);

  // Inner loops are materialized before outer ones.
  const LoopInfo &Inner = Nest.loop(0);
  const LoopInfo &Outer = Nest.loop(1);
  EXPECT_EQ(Inner.Depth, 2u);
  EXPECT_EQ(Outer.Depth, 1u);
  ASSERT_TRUE(Inner.Parent.has_value());
  EXPECT_EQ(*Inner.Parent, Outer.Id);
  EXPECT_FALSE(Outer.Parent.has_value());
  EXPECT_TRUE(Inner.IsReducible);
  EXPECT_TRUE(Outer.IsReducible);

  // Line spans: the outer loop covers the inner loop's lines.
  EXPECT_LE(Outer.MinLine, Inner.MinLine);
  EXPECT_GE(Outer.MaxLine, Inner.MaxLine);

  // The header of each loop dominates its blocks (sanity vs CHK).
  DominatorTree Dom(Graph);
  for (BlockId Block : Nest.allBlocksOf(Outer.Id))
    EXPECT_TRUE(Dom.dominates(Outer.Header, Block));
}

TEST(LoopNestTest, IrreducibleRegionDetected) {
  // Entry branches into the middle of a cycle: B1 <-> B2 with two entry
  // edges (B0 -> B1, B0 -> B2).
  BinaryImage Image = buildFunction({
      {1, InsnKind::CondBranch, 3}, // 0 B0 -> B2 / fall to B1
      {2, InsnKind::Sequential},    // 1 B1
      {2, InsnKind::Jump, 3},       // 2 B1 -> B2
      {3, InsnKind::Sequential},    // 3 B2
      {3, InsnKind::CondBranch, 1}, // 4 B2 -> B1 / fall
      {4, InsnKind::Return},        // 5 B3
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 1u);
  EXPECT_FALSE(Nest.loop(0).IsReducible);
}

TEST(LoopNestTest, IrreducibleBodyResolvesToOneHavlakLoop) {
  // Two-entry cycle on distinct lines: B1 (line 20) <-> B2 (line 30),
  // entered at both blocks. Havlak still forms exactly one loop; every
  // block and line of the cycle must resolve to it, so code-centric
  // attribution gives samples in an irreducible region one stable
  // context instead of dropping them.
  BinaryImage Image = buildFunction({
      {10, InsnKind::CondBranch, 3}, // 0 B0 -> B2 / fall to B1
      {20, InsnKind::Sequential},    // 1 B1
      {21, InsnKind::Jump, 3},       // 2 B1 -> B2
      {30, InsnKind::Sequential},    // 3 B2
      {31, InsnKind::CondBranch, 1}, // 4 B2 -> B1 / fall
      {40, InsnKind::Return},        // 5 B3
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 1u);
  const LoopInfo &Loop = Nest.loop(0);
  EXPECT_FALSE(Loop.IsReducible);
  // Blocks: B0 entry, B1 {20,21}, B2 {30,31}, B3 return. The Havlak
  // header is one of the two cycle blocks, and the loop's line span
  // covers the whole cycle.
  EXPECT_TRUE(Loop.Header == 1u || Loop.Header == 2u);
  EXPECT_EQ(Loop.MinLine, 20u);
  EXPECT_EQ(Loop.MaxLine, 31u);

  std::optional<LoopId> AtB1 = Nest.innermostLoopOf(1);
  std::optional<LoopId> AtB2 = Nest.innermostLoopOf(2);
  ASSERT_TRUE(AtB1.has_value());
  ASSERT_TRUE(AtB2.has_value());
  EXPECT_EQ(*AtB1, Loop.Id);
  EXPECT_EQ(*AtB2, Loop.Id);
  for (uint32_t Line : {20u, 21u, 30u, 31u}) {
    std::optional<LoopId> ForLine = Nest.innermostLoopForLine(Line);
    ASSERT_TRUE(ForLine.has_value()) << "line " << Line;
    EXPECT_EQ(*ForLine, Loop.Id) << "line " << Line;
  }
  EXPECT_FALSE(Nest.innermostLoopForLine(40).has_value());
}

TEST(LoopNestTest, InnermostLoopForLinePrefersDeepest) {
  BinaryImage Image = buildFunction({
      {10, InsnKind::Sequential},     // B0
      {10, InsnKind::CondBranch, 8},  // B1 outer header
      {11, InsnKind::Sequential},     // B2
      {12, InsnKind::CondBranch, 7},  // B3 inner header
      {13, InsnKind::Sequential},     // B4 inner body
      {14, InsnKind::Jump, 3},        // B4
      {15, InsnKind::Sequential},     // unreachable
      {16, InsnKind::Jump, 1},        // B5 outer latch
      {17, InsnKind::Return},         // B6
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 2u);

  auto Inner = Nest.innermostLoopForLine(13);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(Nest.loop(*Inner).Depth, 2u);

  auto Outer = Nest.innermostLoopForLine(16);
  ASSERT_TRUE(Outer.has_value());
  EXPECT_EQ(Nest.loop(*Outer).Depth, 1u);

  EXPECT_FALSE(Nest.innermostLoopForLine(99).has_value());
}

TEST(LoopNestTest, AllBlocksIncludesNestedLoops) {
  BinaryImage Image = buildFunction({
      {1, InsnKind::Sequential},
      {2, InsnKind::CondBranch, 8},
      {3, InsnKind::Sequential},
      {4, InsnKind::CondBranch, 7},
      {5, InsnKind::Sequential},
      {5, InsnKind::Jump, 3},
      {6, InsnKind::Sequential},
      {6, InsnKind::Jump, 1},
      {7, InsnKind::Return},
  });
  Cfg Graph = Cfg::build(Image, Image.functions()[0]);
  LoopNest Nest = LoopNest::analyze(Graph);
  ASSERT_EQ(Nest.numLoops(), 2u);
  const LoopInfo &Outer = Nest.loop(1);
  std::vector<BlockId> All = Nest.allBlocksOf(Outer.Id);
  std::vector<BlockId> Own = Outer.OwnBlocks;
  EXPECT_GT(All.size(), Own.size())
      << "transitive blocks must include the inner loop's blocks";
}
