//===- tests/PageMapperTest.cpp - V2P mapping and L2 stream tests ---------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/PageMapper.h"

#include "pmu/PebsEvent.h"
#include "sim/MachineConfig.h"

#include "gtest/gtest.h"

#include <set>

using namespace ccprof;

TEST(PageMapperTest, IdentityIsTransparent) {
  PageMapper M(PagePolicy::Identity);
  for (uint64_t Addr : {0ull, 4095ull, 4096ull, 0xdeadbeefull})
    EXPECT_EQ(M.translate(Addr), Addr);
}

TEST(PageMapperTest, OffsetsWithinPagePreserved) {
  for (PagePolicy Policy :
       {PagePolicy::FirstTouch, PagePolicy::Shuffled}) {
    PageMapper M(Policy);
    uint64_t Base = M.translate(0x10000);
    EXPECT_EQ(M.translate(0x10000 + 123), Base + 123);
    EXPECT_EQ(M.translate(0x10000 + 4095), Base + 4095);
    EXPECT_EQ(Base % 4096, 0u) << "frames are page-aligned";
  }
}

TEST(PageMapperTest, TranslationIsStable) {
  PageMapper M(PagePolicy::Shuffled);
  uint64_t First = M.translate(0x123456);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(M.translate(0x123456), First);
}

TEST(PageMapperTest, DistinctPagesGetDistinctFrames) {
  for (PagePolicy Policy :
       {PagePolicy::FirstTouch, PagePolicy::Shuffled}) {
    PageMapper M(Policy);
    std::set<uint64_t> Frames;
    for (uint64_t Page = 0; Page < 2000; ++Page)
      Frames.insert(M.translate(Page * 4096 + 17) / 4096);
    EXPECT_EQ(Frames.size(), 2000u)
        << "policy " << static_cast<int>(Policy);
    EXPECT_EQ(M.mappedPages(), 2000u);
  }
}

TEST(PageMapperTest, FirstTouchIsSequential) {
  PageMapper M(PagePolicy::FirstTouch);
  // Touch pages out of order; frames follow touch order.
  uint64_t F1 = M.translate(700 * 4096) / 4096;
  uint64_t F2 = M.translate(3 * 4096) / 4096;
  uint64_t F3 = M.translate(9000 * 4096) / 4096;
  EXPECT_EQ(F2, F1 + 1);
  EXPECT_EQ(F3, F2 + 1);
}

TEST(PageMapperTest, ShuffledScattersConsecutivePages) {
  PageMapper M(PagePolicy::Shuffled);
  // Consecutive virtual pages should not land on consecutive frames.
  uint64_t Consecutive = 0;
  uint64_t Previous = M.translate(0) / 4096;
  for (uint64_t Page = 1; Page < 100; ++Page) {
    uint64_t Frame = M.translate(Page * 4096) / 4096;
    if (Frame == Previous + 1)
      ++Consecutive;
    Previous = Frame;
  }
  EXPECT_LT(Consecutive, 5u);
}

TEST(PageMapperTest, SeedChangesShuffle) {
  PageMapper A(PagePolicy::Shuffled, 4096, 1);
  PageMapper B(PagePolicy::Shuffled, 4096, 2);
  int Different = 0;
  for (uint64_t Page = 0; Page < 50; ++Page)
    if (A.translate(Page * 4096) != B.translate(Page * 4096))
      ++Different;
  EXPECT_GT(Different, 40);
}

TEST(L2MissStreamTest, OnlyDoubleMissesBecomeEvents) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  // One line accessed twice: first access misses L1+L2 (one event),
  // second hits L1 (no event).
  T.recordLoad(S, 0x5000, 4);
  T.recordLoad(S, 0x5000, 4);
  PageMapper M(PagePolicy::Identity);
  auto Stream = collectL2MissStream(T, paperL1Geometry(),
                                    CacheGeometry(256 * 1024, 64, 8), M);
  ASSERT_EQ(Stream.size(), 1u);
  EXPECT_EQ(Stream[0].VirtualAddr, 0x5000u);
}

TEST(L2MissStreamTest, L1VictimCaughtByL2) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  CacheGeometry L1 = paperL1Geometry(); // set stride 4096
  // 16 lines conflicting in one L1 set, twice. The second sweep misses
  // L1 every time but hits L2 (32 sets there under identity mapping,
  // large enough associativity): no second-round L2 events.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t Row = 0; Row < 16; ++Row)
      T.recordLoad(S, Row * L1.setStrideBytes(), 4);
  PageMapper M(PagePolicy::Identity);
  CacheGeometry L2(256 * 1024, 64, 8); // set stride 32KiB
  auto Stream = collectL2MissStream(T, L1, L2, M);
  EXPECT_EQ(Stream.size(), 16u) << "only the cold pass misses L2";
}

TEST(L2MissStreamTest, EventsCarryPhysicalAddresses) {
  Trace T;
  SiteId S = T.site("x.cpp", 1, "");
  T.recordLoad(S, 0x80000, 4);
  PageMapper M(PagePolicy::Shuffled);
  auto Stream = collectL2MissStream(T, paperL1Geometry(),
                                    CacheGeometry(256 * 1024, 64, 8), M);
  ASSERT_EQ(Stream.size(), 1u);
  EXPECT_EQ(Stream[0].VirtualAddr, 0x80000u);
  EXPECT_NE(Stream[0].Addr, Stream[0].VirtualAddr)
      << "shuffled mapping must relocate the page";
  EXPECT_EQ(Stream[0].Addr % 4096, 0x80000u % 4096)
      << "page offset preserved";
}
