//===- tests/SiteRegistryTest.cpp - Site registry unit tests --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/SiteRegistry.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(SiteRegistryTest, IdsStartAtOne) {
  SiteRegistry R;
  SiteId Id = R.registerSite("a.cpp", 10, "f");
  EXPECT_EQ(Id, 1u);
  EXPECT_NE(Id, UnknownSite);
}

TEST(SiteRegistryTest, DuplicateRegistrationReturnsSameId) {
  SiteRegistry R;
  SiteId A = R.registerSite("a.cpp", 10, "f");
  SiteId B = R.registerSite("a.cpp", 10, "f");
  EXPECT_EQ(A, B);
  EXPECT_EQ(R.size(), 1u);
}

TEST(SiteRegistryTest, DistinctTriplesGetDistinctIds) {
  SiteRegistry R;
  SiteId A = R.registerSite("a.cpp", 10, "f");
  SiteId B = R.registerSite("a.cpp", 11, "f");
  SiteId C = R.registerSite("b.cpp", 10, "f");
  SiteId D = R.registerSite("a.cpp", 10, "g");
  EXPECT_NE(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  EXPECT_EQ(R.size(), 4u);
}

TEST(SiteRegistryTest, LookupRoundTrips) {
  SiteRegistry R;
  SiteId Id = R.registerSite("needle.cpp", 189, "needle_cpu");
  const SourceSite *Site = R.lookup(Id);
  ASSERT_NE(Site, nullptr);
  EXPECT_EQ(Site->File, "needle.cpp");
  EXPECT_EQ(Site->Line, 189u);
  EXPECT_EQ(Site->Function, "needle_cpu");
}

TEST(SiteRegistryTest, UnknownAndOutOfRangeLookups) {
  SiteRegistry R;
  EXPECT_EQ(R.lookup(UnknownSite), nullptr);
  EXPECT_EQ(R.lookup(42), nullptr);
}

TEST(SiteRegistryTest, DescribeFormatsLocation) {
  SourceSite Site{"adi.c", 40, "kernel_adi"};
  EXPECT_EQ(Site.describe(), "adi.c:40 (kernel_adi)");
  SourceSite NoFunction{"adi.c", 40, ""};
  EXPECT_EQ(NoFunction.describe(), "adi.c:40");
}

TEST(SiteRegistryTest, SitesVectorInIdOrder) {
  SiteRegistry R;
  R.registerSite("x.cpp", 1, "");
  R.registerSite("y.cpp", 2, "");
  ASSERT_EQ(R.sites().size(), 2u);
  EXPECT_EQ(R.sites()[0].File, "x.cpp");
  EXPECT_EQ(R.sites()[1].File, "y.cpp");
}
