//===- tests/ThreadPoolTest.cpp - Worker pool and thread budget ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

using namespace ccprof;

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t Count = 10'000;
  std::vector<std::atomic<int>> Hits(Count);
  Pool.parallelFor(Count, 3, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Count; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, HelperCapZeroRunsInCaller) {
  ThreadPool Pool(2);
  const std::thread::id Caller = std::this_thread::get_id();
  std::atomic<size_t> Ran{0};
  std::atomic<bool> OffThread{false};
  Pool.parallelFor(64, 0, [&](size_t) {
    Ran.fetch_add(1);
    if (std::this_thread::get_id() != Caller)
      OffThread = true;
  });
  EXPECT_EQ(Ran.load(), 64u);
  EXPECT_FALSE(OffThread.load());
}

TEST(ThreadPoolTest, HelperCapAboveWorkerCountIsClamped) {
  ThreadPool Pool(2);
  std::atomic<size_t> Ran{0};
  Pool.parallelFor(1000, 100, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 1000u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolStillCompletes) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 0u);
  std::atomic<size_t> Ran{0};
  Pool.parallelFor(128, 4, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 128u);
}

TEST(ThreadPoolTest, EmptyAndSingleCounts) {
  ThreadPool Pool(2);
  std::atomic<size_t> Ran{0};
  Pool.parallelFor(0, 2, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 0u);
  Pool.parallelFor(1, 2, [&](size_t I) { Ran.fetch_add(I + 1); });
  EXPECT_EQ(Ran.load(), 1u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool Pool(2);
  uint64_t Total = 0;
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(100, 2, [&](size_t I) { Sum.fetch_add(I); });
    Total += Sum.load();
  }
  EXPECT_EQ(Total, 50u * (99u * 100u / 2));
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool Pool(3);
  constexpr size_t Callers = 4;
  constexpr size_t Count = 2'000;
  std::vector<std::atomic<uint64_t>> Sums(Callers);
  std::vector<std::thread> Threads;
  for (size_t C = 0; C < Callers; ++C)
    Threads.emplace_back([&, C] {
      Pool.parallelFor(Count, 2, [&, C](size_t I) { Sums[C].fetch_add(I); });
    });
  for (std::thread &T : Threads)
    T.join();
  const uint64_t Expected = (Count - 1) * Count / 2;
  for (size_t C = 0; C < Callers; ++C)
    EXPECT_EQ(Sums[C].load(), Expected) << "caller " << C;
}

TEST(ThreadBudgetTest, AcquireGrantsOnlyWhatIsAvailable) {
  ThreadBudget Budget(4);
  EXPECT_EQ(Budget.total(), 4u);
  EXPECT_EQ(Budget.available(), 4u);
  EXPECT_EQ(Budget.tryAcquire(3), 3u);
  EXPECT_EQ(Budget.available(), 1u);
  EXPECT_EQ(Budget.tryAcquire(3), 1u); // partial grant
  EXPECT_EQ(Budget.tryAcquire(1), 0u); // exhausted
  Budget.release(4);
  EXPECT_EQ(Budget.available(), 4u);
}

TEST(ThreadBudgetTest, ZeroTotalClampsToOne) {
  ThreadBudget Budget(0);
  EXPECT_EQ(Budget.total(), 1u);
  EXPECT_EQ(Budget.tryAcquire(5), 1u);
  EXPECT_EQ(Budget.tryAcquire(1), 0u);
}

TEST(ThreadBudgetTest, ReleaseClampsToTotal) {
  ThreadBudget Budget(2);
  EXPECT_EQ(Budget.tryAcquire(1), 1u);
  Budget.release(10); // over-release never inflates the budget
  EXPECT_EQ(Budget.available(), 2u);
}

TEST(ThreadBudgetTest, ConcurrentAcquireReleaseNeverExceedsTotal) {
  ThreadBudget Budget(3);
  std::atomic<int> InFlight{0};
  std::atomic<bool> Violated{false};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 6; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 500; ++I) {
        unsigned Got = Budget.tryAcquire(2);
        int Now = InFlight.fetch_add(static_cast<int>(Got)) +
                  static_cast<int>(Got);
        if (Now > 3)
          Violated = true;
        InFlight.fetch_sub(static_cast<int>(Got));
        if (Got)
          Budget.release(Got);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_FALSE(Violated.load());
  EXPECT_EQ(Budget.available(), 3u);
}

TEST(ThreadPoolTest, PlanChunksCoversItemsWithBalancedWidths) {
  for (size_t Items : {size_t{0}, size_t{1}, size_t{999}, size_t{32'768},
                       size_t{100'000}, size_t{1'000'001}}) {
    for (unsigned Threads : {1u, 2u, 4u, 7u}) {
      const size_t MinItems = 1 << 15;
      const std::vector<size_t> Cuts = planChunks(Items, Threads, MinItems);
      ASSERT_GE(Cuts.size(), 2u);
      EXPECT_EQ(Cuts.front(), 0u);
      EXPECT_EQ(Cuts.back(), Items);
      // The grid is a function of the arguments alone (determinism
      // across runs), caps the chunk count at four per thread, and
      // never cuts chunks smaller than the floor.
      EXPECT_EQ(Cuts, planChunks(Items, Threads, MinItems));
      EXPECT_LE(Cuts.size() - 1, std::max<size_t>(1, 4 * Threads));
      size_t MinWidth = Items, MaxWidth = 0;
      for (size_t C = 1; C < Cuts.size(); ++C) {
        ASSERT_LE(Cuts[C - 1], Cuts[C]) << "boundaries must ascend";
        MinWidth = std::min(MinWidth, Cuts[C] - Cuts[C - 1]);
        MaxWidth = std::max(MaxWidth, Cuts[C] - Cuts[C - 1]);
      }
      EXPECT_LE(MaxWidth - MinWidth, 1u) << "chunks must be near-equal";
      if (Cuts.size() > 2) {
        EXPECT_GE(MinWidth, MinItems);
      }
    }
  }
}
