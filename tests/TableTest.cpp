//===- tests/TableTest.cpp - Text table unit tests -------------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "gtest/gtest.h"

#include <sstream>

using namespace ccprof;

TEST(TextTableTest, RenderAlignsColumns) {
  TextTable Table({"name", "value"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "22"});
  std::string Out = Table.render();
  // Both data rows start their second column at the same offset.
  size_t Line1 = Out.find("alpha");
  size_t Line2 = Out.find("\nb");
  ASSERT_NE(Line1, std::string::npos);
  ASSERT_NE(Line2, std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(TextTableTest, HeaderlessTableHasNoSeparator) {
  TextTable Table;
  Table.addRow({"x", "y"});
  std::string Out = Table.render();
  EXPECT_EQ(Out.find("---"), std::string::npos);
}

TEST(TextTableTest, ExplicitSeparators) {
  TextTable Table;
  Table.addRow({"a"});
  Table.addSeparator();
  Table.addRow({"b"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TextTableTest, RaggedRowsSupported) {
  TextTable Table({"c1", "c2", "c3"});
  Table.addRow({"only-one"});
  Table.addRow({"a", "b", "c"});
  EXPECT_NE(Table.render().find("only-one"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable Table({"name", "note"});
  Table.addRow({"plain", "with,comma"});
  Table.addRow({"quoted", "say \"hi\""});
  std::string Csv = Table.renderCsv();
  EXPECT_NE(Csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(Csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(Csv.find("name,note"), std::string::npos);
}

TEST(TextTableTest, StreamOperator) {
  TextTable Table({"h"});
  Table.addRow({"v"});
  std::ostringstream Out;
  Out << Table;
  EXPECT_EQ(Out.str(), Table.render());
}

TEST(FormatTest, Fixed) {
  EXPECT_EQ(fmt::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt::fixed(2.0, 0), "2");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(fmt::percent(0.525), "52.5%");
  EXPECT_EQ(fmt::percent(1.0, 0), "100%");
}

TEST(FormatTest, Times) {
  EXPECT_EQ(fmt::times(2.9), "2.90x");
  EXPECT_EQ(fmt::times(94.6, 1), "94.6x");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(fmt::bytes(512), "512B");
  EXPECT_EQ(fmt::bytes(32 * 1024), "32KiB");
  EXPECT_EQ(fmt::bytes(35 * 1024 * 1024), "35MiB");
  // Non-multiples stay in the largest exact unit.
  EXPECT_EQ(fmt::bytes(1536), "1536B");
}

TEST(FormatTest, Grouped) {
  EXPECT_EQ(fmt::grouped(0), "0");
  EXPECT_EQ(fmt::grouped(999), "999");
  EXPECT_EQ(fmt::grouped(1000), "1,000");
  EXPECT_EQ(fmt::grouped(1234567), "1,234,567");
}
