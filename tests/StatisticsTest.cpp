//===- tests/StatisticsTest.cpp - Statistics unit tests -------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "gtest/gtest.h"

#include <vector>

using namespace ccprof;

TEST(StatisticsTest, MeanVarianceStddev) {
  std::vector<double> V = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(V), 5.0);
  EXPECT_DOUBLE_EQ(variance(V), 4.0);
  EXPECT_DOUBLE_EQ(stddev(V), 2.0);
}

TEST(StatisticsTest, EmptyInputs) {
  std::vector<double> Empty;
  EXPECT_DOUBLE_EQ(mean(Empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(Empty), 0.0);
  EXPECT_DOUBLE_EQ(median(Empty), 0.0);
  EXPECT_DOUBLE_EQ(geomean(Empty), 0.0);
}

TEST(StatisticsTest, Geomean) {
  std::vector<double> V = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(V), 4.0, 1e-12);
}

TEST(StatisticsTest, MedianOddAndEven) {
  std::vector<double> Odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(Odd), 3.0);
  std::vector<double> Even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(Even), 2.5);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> V = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(V, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(V, 62.5), 35.0);
}

TEST(StatisticsTest, RunningStatsMatchesBatch) {
  std::vector<double> V = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats Stats;
  for (double X : V)
    Stats.add(X);
  EXPECT_EQ(Stats.count(), V.size());
  EXPECT_NEAR(Stats.mean(), mean(V), 1e-12);
  EXPECT_NEAR(Stats.variance(), variance(V), 1e-12);
  EXPECT_DOUBLE_EQ(Stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(Stats.max(), 9.0);
}

TEST(BinaryConfusionTest, PerfectClassifier) {
  BinaryConfusion C;
  for (int I = 0; I < 8; ++I)
    C.record(/*Predicted=*/I % 2 == 0, /*Actual=*/I % 2 == 0);
  EXPECT_DOUBLE_EQ(C.precision(), 1.0);
  EXPECT_DOUBLE_EQ(C.recall(), 1.0);
  EXPECT_DOUBLE_EQ(C.f1(), 1.0);
  EXPECT_DOUBLE_EQ(C.accuracy(), 1.0);
}

TEST(BinaryConfusionTest, KnownConfusionMatrix) {
  BinaryConfusion C;
  C.TruePositives = 6;
  C.FalsePositives = 2;
  C.FalseNegatives = 2;
  C.TrueNegatives = 6;
  EXPECT_DOUBLE_EQ(C.precision(), 0.75);
  EXPECT_DOUBLE_EQ(C.recall(), 0.75);
  EXPECT_DOUBLE_EQ(C.f1(), 0.75);
  EXPECT_DOUBLE_EQ(C.accuracy(), 0.75);
}

TEST(BinaryConfusionTest, DegenerateCasesReturnZero) {
  BinaryConfusion C;
  EXPECT_DOUBLE_EQ(C.precision(), 0.0);
  EXPECT_DOUBLE_EQ(C.recall(), 0.0);
  EXPECT_DOUBLE_EQ(C.f1(), 0.0);
  EXPECT_DOUBLE_EQ(C.accuracy(), 0.0);

  // All-negative predictions on all-negative data: no F1, full accuracy.
  C.record(false, false);
  EXPECT_DOUBLE_EQ(C.f1(), 0.0);
  EXPECT_DOUBLE_EQ(C.accuracy(), 1.0);
}

TEST(BinaryConfusionTest, MergePoolsCounts) {
  BinaryConfusion A, B;
  A.record(true, true);
  B.record(false, true);
  B.record(true, false);
  A.merge(B);
  EXPECT_EQ(A.TruePositives, 1u);
  EXPECT_EQ(A.FalseNegatives, 1u);
  EXPECT_EQ(A.FalsePositives, 1u);
  EXPECT_EQ(A.total(), 3u);
}
