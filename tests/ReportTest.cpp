//===- tests/ReportTest.cpp - Report rendering tests -----------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

LoopConflictReport sampleReport() {
  LoopConflictReport R;
  R.Location = "needle.cpp:189";
  R.Samples = 100;
  R.MissContribution = 0.2951;
  R.SetsUtilized = 41;
  R.ContributionFactor = 0.88;
  R.MeanRcd = 5.5;
  R.ConflictProbability = 0.97;
  R.ConflictPredicted = true;
  R.Rcd.add(1, 44);
  R.Rcd.add(4, 44);
  R.Rcd.add(64, 12);
  R.DataStructures.push_back(DataStructureReport{"reference[]", 70, 0.7});
  R.DataStructures.push_back(
      DataStructureReport{"input_itemsets[]", 30, 0.3});
  return R;
}

ProfileResult sampleResult() {
  ProfileResult Result;
  Result.TraceRefs = 1000000;
  Result.L1Misses = 50000;
  Result.Samples = 100;
  Result.L1MissRatio = 0.05;
  Result.NumSets = 64;
  Result.RcdThreshold = 8;
  Result.Loops.push_back(sampleReport());
  return Result;
}

} // namespace

TEST(ReportTest, FullReportMentionsEverything) {
  std::string Text = renderProfileReport(sampleResult(), "needle");
  EXPECT_NE(Text.find("needle"), std::string::npos);
  EXPECT_NE(Text.find("needle.cpp:189"), std::string::npos);
  EXPECT_NE(Text.find("CONFLICT"), std::string::npos);
  EXPECT_NE(Text.find("reference[]"), std::string::npos);
  EXPECT_NE(Text.find("input_itemsets[]"), std::string::npos);
  EXPECT_NE(Text.find("padding"), std::string::npos);
  EXPECT_NE(Text.find("1,000,000"), std::string::npos);
}

TEST(ReportTest, LoopTableHasPaperColumns) {
  std::string Table = renderLoopTable(sampleResult());
  EXPECT_NE(Table.find("Loop with line number"), std::string::npos);
  EXPECT_NE(Table.find("L1 cache miss contribution"), std::string::npos);
  EXPECT_NE(Table.find("# of Cache Sets utilized"), std::string::npos);
  EXPECT_NE(Table.find("needle.cpp:189"), std::string::npos);
  EXPECT_NE(Table.find("41"), std::string::npos);
}

TEST(ReportTest, CleanLoopOmittedFromGuidance) {
  ProfileResult Result = sampleResult();
  Result.Loops[0].ConflictPredicted = false;
  std::string Text = renderProfileReport(Result, "clean");
  EXPECT_EQ(Text.find("responsible data structures"), std::string::npos);
  EXPECT_NE(Text.find("clean"), std::string::npos);
}

TEST(ReportTest, RcdCdfSeriesMatchesHistogram) {
  LoopConflictReport R = sampleReport();
  auto Series = rcdCdfSeries(R);
  ASSERT_EQ(Series.size(), 3u);
  EXPECT_EQ(Series[0].first, 1u);
  EXPECT_DOUBLE_EQ(Series[0].second, 0.44);
  EXPECT_DOUBLE_EQ(Series[1].second, 0.88);
  EXPECT_DOUBLE_EQ(Series[2].second, 1.0);
}

TEST(ReportTest, CdfAtThresholdMatchesPaperExample) {
  // "RCD of shorter than eight accounts for 88% of the L1 cache misses"
  // (Sec. 5.1, NW).
  LoopConflictReport R = sampleReport();
  EXPECT_DOUBLE_EQ(cdfAtThreshold(R, 8), 0.88);
  EXPECT_DOUBLE_EQ(cdfAtThreshold(R, 1), 0.0);
  EXPECT_DOUBLE_EQ(cdfAtThreshold(R, 65), 1.0);
}

TEST(ReportTest, VictimSetChartShowsBusySets) {
  LoopConflictReport R = sampleReport();
  R.PerSetMisses.assign(64, 1);
  R.PerSetMisses[5] = 90;
  R.SetsUtilized = 64;
  std::string Chart = renderVictimSets(R, 4);
  EXPECT_NE(Chart.find("needle.cpp:189"), std::string::npos);
  EXPECT_NE(Chart.find("64/64"), std::string::npos);
  EXPECT_NE(Chart.find("90"), std::string::npos);
}

TEST(ReportTest, EmptyResultRendersWithoutCrashing) {
  ProfileResult Empty;
  std::string Text = renderProfileReport(Empty, "empty");
  EXPECT_NE(Text.find("empty"), std::string::npos);
  EXPECT_FALSE(renderLoopTable(Empty).empty());
}
