//===- tests/CacheHierarchyTest.cpp - Multi-level cache tests -------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/CacheHierarchy.h"
#include "sim/MachineConfig.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

CacheHierarchy tinyHierarchy() {
  return CacheHierarchy({
      CacheLevelConfig{"L1", CacheGeometry(256, 64, 2)},    // 4 lines
      CacheLevelConfig{"L2", CacheGeometry(1024, 64, 2)},   // 16 lines
  });
}

} // namespace

TEST(CacheHierarchyTest, ColdMissReachesMemory) {
  CacheHierarchy H = tinyHierarchy();
  HierarchyAccessResult R = H.access(0);
  EXPECT_TRUE(R.MissedL1);
  EXPECT_EQ(R.HitLevel, 2u); // past both levels
  EXPECT_EQ(H.memoryAccesses(), 1u);
}

TEST(CacheHierarchyTest, SecondAccessHitsL1) {
  CacheHierarchy H = tinyHierarchy();
  H.access(0);
  HierarchyAccessResult R = H.access(0);
  EXPECT_FALSE(R.MissedL1);
  EXPECT_EQ(R.HitLevel, 0u);
}

TEST(CacheHierarchyTest, L1VictimStillHitsL2) {
  CacheHierarchy H = tinyHierarchy();
  // Three lines conflicting in L1 set 0 (stride = L1 set stride 128B),
  // but mapping to distinct L2 sets (L2 stride 512B).
  H.access(0);
  H.access(128);
  H.access(256); // L1 evicts line 0
  HierarchyAccessResult R = H.access(0);
  EXPECT_TRUE(R.MissedL1);
  EXPECT_EQ(R.HitLevel, 1u); // served from L2
}

TEST(CacheHierarchyTest, LevelNamesAndCount) {
  CacheHierarchy H = tinyHierarchy();
  ASSERT_EQ(H.numLevels(), 2u);
  EXPECT_EQ(H.levelName(0), "L1");
  EXPECT_EQ(H.levelName(1), "L2");
}

TEST(CacheHierarchyTest, MissCountersPerLevel) {
  CacheHierarchy H = tinyHierarchy();
  for (uint64_t L = 0; L < 8; ++L)
    H.access(L * 64);
  EXPECT_EQ(H.missesAt(0), 8u);
  EXPECT_EQ(H.missesAt(1), 8u);
  for (uint64_t L = 0; L < 8; ++L)
    H.access(L * 64); // L1 holds only 4 lines; L2 holds all 8
  EXPECT_EQ(H.missesAt(1), 8u) << "second sweep must be served by L2";
}

TEST(CacheHierarchyTest, DirtyEvictionWritesBack) {
  CacheHierarchy H = tinyHierarchy();
  H.access(0, /*IsWrite=*/true);
  H.access(128);
  H.access(256); // evicts dirty line 0 from L1 -> write to L2
  // L2 saw: fills for 0, 128, 256 plus the writeback of 0.
  EXPECT_EQ(H.level(1).stats().Accesses, 4u);
  EXPECT_EQ(H.level(1).stats().Hits, 1u); // the writeback hits
}

TEST(CacheHierarchyTest, ResetClearsEverything) {
  CacheHierarchy H = tinyHierarchy();
  H.access(0);
  H.reset();
  EXPECT_EQ(H.memoryAccesses(), 0u);
  EXPECT_EQ(H.missesAt(0), 0u);
  EXPECT_TRUE(H.access(0).MissedL1);
}

TEST(MachineConfigTest, BroadwellShape) {
  MachineConfig M = broadwellConfig();
  ASSERT_EQ(M.Levels.size(), 3u);
  EXPECT_EQ(M.l1Geometry().sizeBytes(), 32u * 1024);
  EXPECT_EQ(M.l1Geometry().numSets(), 64u);
  EXPECT_EQ(M.Levels[1].Geometry.sizeBytes(), 256u * 1024);
  EXPECT_EQ(M.Levels[2].Geometry.sizeBytes(), 35ull * 1024 * 1024);
  EXPECT_NE(M.Name.find("Broadwell"), std::string::npos);
}

TEST(MachineConfigTest, SkylakeShape) {
  MachineConfig M = skylakeConfig();
  ASSERT_EQ(M.Levels.size(), 3u);
  EXPECT_EQ(M.Levels[1].Geometry.associativity(), 4u);
  EXPECT_EQ(M.Levels[2].Geometry.sizeBytes(), 8ull * 1024 * 1024);
  EXPECT_NE(M.Name.find("Skylake"), std::string::npos);
}

TEST(MachineConfigTest, HierarchiesAreRunnable) {
  for (const MachineConfig &M : {broadwellConfig(), skylakeConfig()}) {
    CacheHierarchy H = M.makeHierarchy();
    for (uint64_t I = 0; I < 1000; ++I)
      H.access(I * 64);
    EXPECT_EQ(H.level(0).stats().Accesses, 1000u);
  }
}
