//===- tests/IntervalMapTest.cpp - IntervalMap unit tests -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/IntervalMap.h"

#include "gtest/gtest.h"

#include <string>

using namespace ccprof;

TEST(IntervalMapTest, InsertAndLookup) {
  IntervalMap<std::string> Map;
  EXPECT_TRUE(Map.insert(100, 200, "a"));
  EXPECT_TRUE(Map.insert(300, 400, "b"));

  EXPECT_EQ(Map.lookup(100), "a");
  EXPECT_EQ(Map.lookup(199), "a");
  EXPECT_EQ(Map.lookup(350), "b");
  EXPECT_FALSE(Map.lookup(200).has_value()); // End is exclusive.
  EXPECT_FALSE(Map.lookup(99).has_value());
  EXPECT_FALSE(Map.lookup(250).has_value());
}

TEST(IntervalMapTest, EmptyIntervalRejected) {
  IntervalMap<int> Map;
  EXPECT_FALSE(Map.insert(10, 10, 1));
  EXPECT_FALSE(Map.insert(10, 5, 1));
  EXPECT_TRUE(Map.empty());
}

TEST(IntervalMapTest, OverlapRejected) {
  IntervalMap<int> Map;
  ASSERT_TRUE(Map.insert(100, 200, 1));
  EXPECT_FALSE(Map.insert(150, 250, 2)); // overlaps middle
  EXPECT_FALSE(Map.insert(50, 101, 2));  // overlaps start
  EXPECT_FALSE(Map.insert(199, 300, 2)); // overlaps end
  EXPECT_FALSE(Map.insert(100, 200, 2)); // exact duplicate
  EXPECT_FALSE(Map.insert(120, 130, 2)); // contained
  EXPECT_EQ(Map.size(), 1u);
  EXPECT_EQ(Map.lookup(150), 1);
}

TEST(IntervalMapTest, AdjacentIntervalsAllowed) {
  IntervalMap<int> Map;
  EXPECT_TRUE(Map.insert(0, 10, 1));
  EXPECT_TRUE(Map.insert(10, 20, 2));
  EXPECT_EQ(Map.lookup(9), 1);
  EXPECT_EQ(Map.lookup(10), 2);
}

TEST(IntervalMapTest, EraseAtAndReuse) {
  IntervalMap<int> Map;
  ASSERT_TRUE(Map.insert(100, 200, 1));
  EXPECT_TRUE(Map.eraseAt(100));
  EXPECT_FALSE(Map.eraseAt(100));
  EXPECT_FALSE(Map.contains(150));
  // The freed range can be reused, as after free()+malloc().
  EXPECT_TRUE(Map.insert(100, 300, 2));
  EXPECT_EQ(Map.lookup(250), 2);
}

TEST(IntervalMapTest, EraseContaining) {
  IntervalMap<int> Map;
  ASSERT_TRUE(Map.insert(100, 200, 1));
  EXPECT_TRUE(Map.eraseContaining(150));
  EXPECT_TRUE(Map.empty());
  EXPECT_FALSE(Map.eraseContaining(150));
}

TEST(IntervalMapTest, Bounds) {
  IntervalMap<int> Map;
  ASSERT_TRUE(Map.insert(100, 200, 1));
  auto B = Map.bounds(150);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->first, 100u);
  EXPECT_EQ(B->second, 200u);
  EXPECT_FALSE(Map.bounds(200).has_value());
}

TEST(IntervalMapTest, LookupPtrAvoidsCopy) {
  IntervalMap<std::string> Map;
  ASSERT_TRUE(Map.insert(0, 10, "value"));
  const std::string *Ptr = Map.lookupPtr(5);
  ASSERT_NE(Ptr, nullptr);
  EXPECT_EQ(*Ptr, "value");
  EXPECT_EQ(Map.lookupPtr(10), nullptr);
}

TEST(IntervalMapTest, ForEachVisitsInAddressOrder) {
  IntervalMap<int> Map;
  ASSERT_TRUE(Map.insert(300, 400, 3));
  ASSERT_TRUE(Map.insert(100, 200, 1));
  std::vector<uint64_t> Starts;
  Map.forEach([&](uint64_t Start, uint64_t End, int Value) {
    Starts.push_back(Start);
    EXPECT_LT(Start, End);
    EXPECT_TRUE(Value == 1 || Value == 3);
  });
  ASSERT_EQ(Starts.size(), 2u);
  EXPECT_EQ(Starts[0], 100u);
  EXPECT_EQ(Starts[1], 300u);
}

TEST(IntervalMapTest, ManyIntervalsStressLookup) {
  IntervalMap<uint64_t> Map;
  for (uint64_t I = 0; I < 1000; ++I)
    ASSERT_TRUE(Map.insert(I * 100, I * 100 + 50, I));
  for (uint64_t I = 0; I < 1000; ++I) {
    EXPECT_EQ(Map.lookup(I * 100 + 25), I);
    EXPECT_FALSE(Map.lookup(I * 100 + 75).has_value());
  }
}
