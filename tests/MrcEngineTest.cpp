//===- tests/MrcEngineTest.cpp - Single-pass MRC unit tests --------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Oracle tests of the single-pass miss-ratio curve engine:
//
//  * the exact fully-associative curve must equal a FullyAssociativeLru
//    replay at every capacity (Mattson's theorem, cold-inclusive);
//  * the exact per-set curve must equal a set-associative Cache replay
//    at every associativity sharing the reference set count;
//  * SHARDS-sampled curves must land within the documented 0.05 bound
//    of the exact curve on all six case-study workloads;
//  * the computed curve must be identical at every execution shape
//    (sequential, pooled, any shard count);
//  * batch --mrc routing must answer L1 LRU jobs from one curve while
//    leaving everything else simulated.
//
//===----------------------------------------------------------------------===//

#include "pipeline/JobRunner.h"
#include "sim/Cache.h"
#include "sim/MrcEngine.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "trace/Canonicalize.h"
#include "trace/Trace.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

using namespace ccprof;

namespace {

/// A random-ish trace with a skewed working set: hot lines plus a cold
/// scan tail, enough lines that every tested capacity sees both hits
/// and misses.
Trace makeTrace(size_t NumRefs, uint64_t Seed = 0x5eed) {
  Trace T;
  Xoshiro256 Rng(Seed);
  for (size_t I = 0; I < NumRefs; ++I) {
    uint64_t Line = Rng.nextBounded(4) == 0 ? Rng.nextBounded(4096)
                                            : Rng.nextBounded(256);
    T.recordLoad(1, 0x10000 + Line * 64, 8);
  }
  return T;
}

Trace workloadTrace(const std::string &Name) {
  std::unique_ptr<Workload> W = makeWorkloadByName(Name);
  EXPECT_NE(W, nullptr) << Name;
  Trace Recorded;
  W->run(WorkloadVariant::Original, &Recorded);
  return canonicalizeTrace(Recorded);
}

double simulatedMissRatio(const Trace &T, const CacheGeometry &Geometry) {
  Cache Sim(Geometry, ReplacementKind::Lru);
  for (const MemoryRecord &R : T.records())
    Sim.access(R.Addr, R.IsWrite);
  return Sim.stats().missRatio();
}

} // namespace

TEST(MrcEngineTest, ExactCurveMatchesFullyAssociativeLruReplay) {
  const Trace T = makeTrace(60'000);
  MrcOptions Opts;
  const MissRatioCurve Curve = MrcEngine::compute(T, Opts);
  EXPECT_EQ(Curve.TotalRefs, T.size());
  EXPECT_EQ(Curve.scaledRefs(), T.size());

  for (uint64_t Lines : {1u, 2u, 16u, 100u, 256u, 300u, 4096u, 1u << 20}) {
    FullyAssociativeLru Replay(Lines);
    uint64_t Misses = 0;
    for (const MemoryRecord &R : T.records())
      Misses += Replay.access(Opts.Reference.lineAddrOf(R.Addr)) ? 0 : 1;
    EXPECT_EQ(Curve.missWeightAtLines(Lines), Misses) << "lines " << Lines;
    EXPECT_DOUBLE_EQ(Curve.missRatioAtLines(Lines),
                     static_cast<double>(Misses) /
                         static_cast<double>(T.size()));
  }
}

TEST(MrcEngineTest, FullyAssociativeGeometryResolvesExactly) {
  const Trace T = makeTrace(30'000);
  MrcOptions Opts;
  Opts.MaxWays = 64;
  const MissRatioCurve Curve = MrcEngine::compute(T, Opts);
  // One-set geometries take the fully-associative path no matter how
  // many ways they have — even above MaxWays.
  const CacheGeometry OneSet(64 * 32, 64, 32);
  ASSERT_EQ(OneSet.numSets(), 1u);
  EXPECT_TRUE(Curve.isExactAt(OneSet));
  EXPECT_DOUBLE_EQ(Curve.missRatioAt(OneSet), Curve.missRatioAtLines(32));
  EXPECT_NEAR(Curve.missRatioAt(OneSet), simulatedMissRatio(T, OneSet),
              1e-12);
}

TEST(MrcEngineTest, PerSetCurveMatchesSetAssociativeReplay) {
  const Trace T = makeTrace(60'000);
  MrcOptions Opts;
  Opts.Reference = CacheGeometry(32 * 1024, 64, 8); // 64 sets
  const MissRatioCurve Curve = MrcEngine::compute(T, Opts);
  ASSERT_TRUE(Curve.HasPerSet);

  // Every associativity at the reference set count and line size is on
  // the exact per-set path; the prediction must match a real replay to
  // floating-point noise.
  for (uint32_t Ways : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const CacheGeometry G(64ull * 64 * Ways, 64, Ways);
    ASSERT_EQ(G.numSets(), Opts.Reference.numSets());
    EXPECT_TRUE(Curve.isExactAt(G)) << "ways " << Ways;
    EXPECT_NEAR(Curve.missRatioAt(G), simulatedMissRatio(T, G), 1e-12)
        << "ways " << Ways;
  }

  // A different set count with the same line size falls back to the
  // binomial model (never advertised as exact).
  const CacheGeometry OtherSets(16 * 1024, 64, 8);
  ASSERT_NE(OtherSets.numSets(), Opts.Reference.numSets());
  EXPECT_FALSE(Curve.isExactAt(OtherSets));
}

TEST(MrcEngineTest, BinomialModelDegeneratesGracefully) {
  const Trace T = makeTrace(20'000);
  const MissRatioCurve Curve = MrcEngine::compute(T, MrcOptions{});
  // Model prediction is a valid probability everywhere and shrinks (or
  // holds) as the cache grows at fixed associativity.
  double Prev = 1.0;
  for (uint64_t SizeKb : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const CacheGeometry G(SizeKb * 1024, 64, 4);
    const double Ratio = Curve.missRatioAt(G);
    EXPECT_GE(Ratio, 0.0);
    EXPECT_LE(Ratio, 1.0);
    EXPECT_LE(Ratio, Prev + 1e-9) << SizeKb << "K";
    Prev = Ratio;
  }
}

TEST(MrcEngineTest, CurveIsIdenticalAtEveryExecutionShape) {
  const Trace T = makeTrace(120'000);
  MrcOptions Opts;
  const MissRatioCurve Sequential = MrcEngine::compute(T, Opts);

  ThreadPool Pool(4);
  ThreadBudget Budget(4);
  ShardExecStats Stats;
  for (unsigned Shards : {0u, 1u, 2u, 3u, 7u, 64u}) {
    SimContext Ctx;
    Ctx.Pool = &Pool;
    Ctx.Budget = &Budget;
    Ctx.Stats = &Stats;
    Ctx.Shards = Shards;
    Ctx.MinRefsToShard = 0;
    const MissRatioCurve Parallel = MrcEngine::compute(T, Opts, Ctx);
    EXPECT_EQ(Parallel.TotalRefs, Sequential.TotalRefs);
    EXPECT_EQ(Parallel.ColdWeight, Sequential.ColdWeight);
    EXPECT_EQ(Parallel.PerSetCold, Sequential.PerSetCold);
    EXPECT_EQ(Parallel.StackDistances.cdfSeries(),
              Sequential.StackDistances.cdfSeries())
        << "shards " << Shards;
    EXPECT_EQ(Parallel.PerSetDistances.cdfSeries(),
              Sequential.PerSetDistances.cdfSeries())
        << "shards " << Shards;
  }
  EXPECT_GT(Stats.ShardedSims, 0u);
}

TEST(MrcEngineTest, SampledCurveScalesAndStaysExactOnTotals) {
  const Trace T = makeTrace(100'000);
  MrcOptions Opts;
  Opts.Sampled = true;
  Opts.SampleRate = 0.1;
  const MissRatioCurve Curve = MrcEngine::compute(T, Opts);
  EXPECT_TRUE(Curve.Sampled);
  EXPECT_FALSE(Curve.HasPerSet);
  // TotalRefs stays exact; the scaled weight self-normalizes to the
  // same order of magnitude.
  EXPECT_EQ(Curve.TotalRefs, T.size());
  EXPECT_GT(Curve.scaledRefs(), T.size() / 2);
  EXPECT_LT(Curve.scaledRefs(), T.size() * 2);
  EXPECT_LE(Curve.FinalRate, 0.1 + 1e-12);
  EXPECT_GT(Curve.FinalRate, 0.0);
}

TEST(MrcEngineTest, ReservoirBoundsTrackedFootprint) {
  // A huge working set with a tiny reservoir: the adaptive threshold
  // must drop the rate below its initial value and the curve must stay
  // close to exact.
  Trace T;
  Xoshiro256 Rng(0xabc);
  for (size_t I = 0; I < 200'000; ++I)
    T.recordLoad(1, 0x100000 + Rng.nextBounded(1 << 15) * 64, 8);
  MrcOptions Opts;
  Opts.Sampled = true;
  Opts.SampleRate = 1.0;
  Opts.MaxSampledLines = 512;
  const MissRatioCurve Sampled = MrcEngine::compute(T, Opts);
  EXPECT_LT(Sampled.FinalRate, 1.0);

  MrcOptions ExactOpts;
  const MissRatioCurve Exact = MrcEngine::compute(T, ExactOpts);
  for (uint64_t Lines : {64u, 512u, 4096u, 32768u})
    EXPECT_NEAR(Sampled.missRatioAtLines(Lines),
                Exact.missRatioAtLines(Lines), 0.05)
        << "lines " << Lines;
}

TEST(MrcEngineTest, SampleShardsParallelMatchesStreaming) {
  // Hash-prefix sample shards own disjoint slices of line space, so
  // running them concurrently must reproduce the streaming curve
  // bit-for-bit at every helper count and shard count.
  const Trace T = makeTrace(120'000);
  for (uint32_t Shards : {2u, 4u, 16u}) {
    MrcOptions Opts;
    Opts.Sampled = true;
    Opts.SampleRate = 0.3;
    Opts.SampleShards = Shards;
    const MissRatioCurve Streaming = MrcEngine::compute(T, Opts);

    ThreadPool Pool(3);
    for (unsigned Helpers : {0u, 1u, 3u}) {
      ThreadBudget Budget(Helpers + 1);
      SimContext Ctx;
      Ctx.Pool = &Pool;
      Ctx.Budget = &Budget;
      Ctx.MinRefsToShard = 0;
      const MissRatioCurve Parallel = MrcEngine::compute(T, Opts, Ctx);
      EXPECT_EQ(Parallel.TotalRefs, Streaming.TotalRefs);
      EXPECT_EQ(Parallel.ColdWeight, Streaming.ColdWeight);
      EXPECT_EQ(Parallel.FinalRate, Streaming.FinalRate);
      EXPECT_EQ(Parallel.StackDistances.cdfSeries(),
                Streaming.StackDistances.cdfSeries())
          << Shards << " sample shard(s), " << Helpers << " helper(s)";
      EXPECT_EQ(Budget.available(), Helpers + 1);
    }
  }
}

TEST(MrcEngineTest, SampleShardsNormalizeAndStayWithinBound) {
  const Trace T = makeTrace(100'000);

  // Non-power-of-two requests round down; 1 is the legacy single
  // filter (the default), so its curve defines the baseline.
  MrcOptions Base;
  Base.Sampled = true;
  Base.SampleRate = 0.25;
  const MissRatioCurve Legacy = MrcEngine::compute(T, Base);

  MrcOptions One = Base;
  One.SampleShards = 1;
  const MissRatioCurve AtOne = MrcEngine::compute(T, One);
  EXPECT_EQ(AtOne.ColdWeight, Legacy.ColdWeight);
  EXPECT_EQ(AtOne.FinalRate, Legacy.FinalRate);
  EXPECT_EQ(AtOne.StackDistances.cdfSeries(),
            Legacy.StackDistances.cdfSeries());

  MrcOptions Five = Base;
  Five.SampleShards = 5; // rounds down to 4
  MrcOptions Four = Base;
  Four.SampleShards = 4;
  const MissRatioCurve AtFive = MrcEngine::compute(T, Five);
  const MissRatioCurve AtFour = MrcEngine::compute(T, Four);
  EXPECT_EQ(AtFive.ColdWeight, AtFour.ColdWeight);
  EXPECT_EQ(AtFive.StackDistances.cdfSeries(),
            AtFour.StackDistances.cdfSeries());

  // Splitting the filter re-partitions the sample but keeps the
  // estimator: the sharded curve stays within the documented bound of
  // the exact curve at the model readout.
  const MissRatioCurve Exact = MrcEngine::compute(T, MrcOptions{});
  EXPECT_LE(AtFour.FinalRate, 0.25 + 1e-12);
  EXPECT_GT(AtFour.FinalRate, 0.0);
  for (uint64_t SizeKb : {8u, 16u, 32u, 64u, 128u}) {
    const CacheGeometry G(SizeKb * 1024, 64, 8);
    EXPECT_NEAR(AtFour.missRatioAt(G), Exact.modelMissRatioAt(G), 0.05)
        << SizeKb << "K";
  }
}

TEST(MrcEngineTest, ShardsWithinBoundOnAllCaseStudyWorkloads) {
  // The documented accuracy contract (DESIGN.md §10): at rate 0.25 on
  // the case-study traces, the SHARDS curve sits within 0.05 of the
  // exact curve at every default sweep point. Both sides read through
  // the histogram (modelMissRatioAt): the gap between the exact
  // per-set readout and the model is the conflict signal itself, which
  // no sampling bound covers. The rate is high because these traces
  // have small distinct-line counts (hundreds to a few thousand) —
  // spatial-sampling error scales with 1/sqrt(R * distinct lines), so
  // SHARDS' canonical R = 0.01 regime needs millions of lines (see
  // ReservoirBoundsTrackedFootprint for the low-rate large-set case).
  const std::vector<std::string> Names = {"NW",       "MKL-FFT", "ADI",
                                          "Tiny-DNN", "Kripke",  "HimenoBMT"};
  for (const std::string &Name : Names) {
    const Trace T = workloadTrace(Name);
    MrcOptions Exact;
    const MissRatioCurve ExactCurve = MrcEngine::compute(T, Exact);
    MrcOptions Sampled;
    Sampled.Sampled = true;
    Sampled.SampleRate = 0.25;
    const MissRatioCurve SampledCurve = MrcEngine::compute(T, Sampled);
    // The bound covers the queryable curve (missRatioAt — what batch
    // --mrc and the CLI report). Raw step readouts at a single exact
    // line capacity (missRatioAtLines) are quantization-sensitive when
    // a trace's distance cliff coincides with the capacity — sampled
    // distances land on multiples of 1/R lines — and are gated on the
    // large-working-set synthetic instead.
    for (uint64_t SizeKb : {8u, 16u, 32u, 64u, 128u}) {
      const CacheGeometry G(SizeKb * 1024, 64, 8);
      EXPECT_NEAR(SampledCurve.missRatioAt(G),
                  ExactCurve.modelMissRatioAt(G), 0.05)
          << Name << " @ " << SizeKb << "K";
    }
  }
}

TEST(MrcEngineTest, BatchMrcRoutesL1LruJobsThroughOneCurve) {
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Periods = {606, 1212};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  const std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_EQ(Jobs.size(), 4u);

  BatchExecOptions Exec;
  Exec.Workers = 1;
  Exec.Mrc = true;
  Exec.MrcSweep = {CacheGeometry(8 * 1024, 64, 8),
                   CacheGeometry(64 * 1024, 64, 8)};
  SharedBatchStats Stats;
  std::vector<MrcGroupCurve> Curves;
  const std::vector<JobOutcome> Outcomes =
      runJobsShared(Jobs, Exec, 0, nullptr, nullptr, &Stats, &Curves);

  size_t Predicted = 0, Simulated = 0;
  for (const JobOutcome &Outcome : Outcomes) {
    EXPECT_TRUE(Outcome.ok());
    if (Outcome.MrcPredicted)
      ++Predicted;
    else
      ++Simulated;
  }
  // Both L1 LRU jobs route through the curve; both L2 jobs simulate.
  EXPECT_EQ(Predicted, 2u);
  EXPECT_EQ(Simulated, 2u);
  EXPECT_EQ(Stats.MrcGroups, 1u);
  EXPECT_EQ(Stats.MrcRoutedJobs, 2u);

  ASSERT_EQ(Curves.size(), 1u);
  const MrcGroupCurve &Curve = Curves.front();
  EXPECT_EQ(Curve.WorkloadName, "Symmetrization");
  EXPECT_EQ(Curve.RoutedJobs, 2u);
  // Points: the routed jobs' own L1 geometry plus the two sweep
  // points, sorted ascending and deduplicated.
  ASSERT_EQ(Curve.Points.size(), 3u);
  EXPECT_EQ(Curve.Points[0].Geometry.sizeBytes(), 8u * 1024);
  EXPECT_EQ(Curve.Points[1].Geometry.sizeBytes(), 32u * 1024);
  EXPECT_EQ(Curve.Points[2].Geometry.sizeBytes(), 64u * 1024);
  // The routed geometry is the per-set reference: exact, and matching
  // a real simulation of the group's canonical trace.
  EXPECT_TRUE(Curve.Points[1].Exact);
  const Trace T = workloadTrace("Symmetrization");
  EXPECT_NEAR(Curve.Points[1].MissRatio,
              simulatedMissRatio(T, Curve.Points[1].Geometry), 1e-12);
}

TEST(MrcEngineTest, BatchMrcLeavesSimulatedJobsByteIdentical) {
  // Jobs the curve cannot answer (here: L2) must produce artifacts
  // byte-identical to a run without --mrc — routing is a pure subset
  // optimization, never a behavior change for what still simulates.
  BatchMatrix Matrix;
  Matrix.Workloads = {"Symmetrization"};
  Matrix.Levels = {ProfileLevel::L1, ProfileLevel::L2};
  const std::vector<JobSpec> Jobs = expandMatrix(Matrix);
  ASSERT_EQ(Jobs.size(), 2u);

  BatchExecOptions Plain;
  Plain.Workers = 1;
  const std::vector<JobOutcome> Baseline = runJobsShared(Jobs, Plain);

  BatchExecOptions Mrc;
  Mrc.Workers = 1;
  Mrc.Mrc = true;
  std::vector<MrcGroupCurve> Curves;
  const std::vector<JobOutcome> Routed =
      runJobsShared(Jobs, Mrc, 0, nullptr, nullptr, nullptr, &Curves);

  ASSERT_EQ(Baseline.size(), Routed.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (Routed[I].MrcPredicted)
      continue;
    std::ostringstream A, B;
    ASSERT_TRUE(Baseline[I].Artifact.writeTo(A));
    ASSERT_TRUE(Routed[I].Artifact.writeTo(B));
    EXPECT_EQ(A.str(), B.str()) << Jobs[I].key();
  }
  // And the curve's prediction at the routed L1 geometry agrees with
  // the simulation the baseline ran for that very job.
  ASSERT_EQ(Curves.size(), 1u);
  const CacheGeometry L1 = Jobs[0].toProfileOptions().L1;
  bool FoundRoutedPoint = false;
  for (const MrcPoint &Point : Curves.front().Points)
    if (Point.Geometry == L1) {
      FoundRoutedPoint = true;
      EXPECT_TRUE(Point.Exact);
    }
  EXPECT_TRUE(FoundRoutedPoint);
}
