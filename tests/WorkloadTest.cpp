//===- tests/WorkloadTest.cpp - Workload correctness tests -----------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Validates the benchmark kernels themselves: the Optimized rewrite must
// compute the same result (padding and loop order change layout, never
// mathematics), traces must be populated and attributable, and the
// synthetic binaries must be analyzable.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "core/ProgramStructure.h"
#include "workloads/NeedlemanWunsch.h"
#include "workloads/Symmetrization.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace ccprof;

TEST(WorkloadSuiteTest, CaseStudyRoster) {
  auto Suite = makeCaseStudySuite();
  ASSERT_EQ(Suite.size(), 6u);
  std::vector<std::string> Names;
  for (const auto &W : Suite)
    Names.push_back(W->name());
  EXPECT_EQ(Names, (std::vector<std::string>{"NW", "MKL-FFT", "ADI",
                                             "Tiny-DNN", "Kripke",
                                             "HimenoBMT"}));
  for (const auto &W : Suite)
    EXPECT_TRUE(W->expectConflicts()) << W->name();
}

TEST(WorkloadSuiteTest, RodiniaRosterHasEighteenApps) {
  auto Suite = makeRodiniaSuite();
  ASSERT_EQ(Suite.size(), 18u);
  size_t Conflicting = 0;
  for (const auto &W : Suite)
    Conflicting += W->expectConflicts() ? 1 : 0;
  EXPECT_EQ(Conflicting, 1u) << "only NW conflicts in Fig. 7";
}

TEST(WorkloadSuiteTest, LookupByName) {
  EXPECT_NE(makeWorkloadByName("NW"), nullptr);
  EXPECT_NE(makeWorkloadByName("hotspot"), nullptr);
  EXPECT_NE(makeWorkloadByName("Symmetrization"), nullptr);
  EXPECT_EQ(makeWorkloadByName("no-such-app"), nullptr);
}

namespace {

/// Small-instance workloads where available keep this test fast; the
/// checksum-identity property must hold at any size.
void expectVariantsAgree(const Workload &W, double Tolerance) {
  double Original = W.run(WorkloadVariant::Original, nullptr);
  double Optimized = W.run(WorkloadVariant::Optimized, nullptr);
  if (Tolerance == 0.0)
    EXPECT_DOUBLE_EQ(Original, Optimized) << W.name();
  else
    EXPECT_NEAR(Original, Optimized,
                Tolerance * (std::abs(Original) + 1e-12))
        << W.name();
}

} // namespace

TEST(WorkloadCorrectnessTest, OptimizationPreservesResults) {
  for (const auto &W : makeCaseStudySuite()) {
    // Kripke's loop-order fix reassociates the floating-point
    // reduction; everything else is bit-identical.
    double Tolerance = W->name() == "Kripke" ? 1e-9 : 0.0;
    expectVariantsAgree(*W, Tolerance);
  }
  expectVariantsAgree(*makeSymmetrization(), 0.0);
}

TEST(WorkloadCorrectnessTest, DeterministicAcrossRuns) {
  auto W = makeWorkloadByName("ADI");
  ASSERT_NE(W, nullptr);
  EXPECT_DOUBLE_EQ(W->run(WorkloadVariant::Original, nullptr),
                   W->run(WorkloadVariant::Original, nullptr));
}

TEST(WorkloadCorrectnessTest, NwAlignmentScoreIsLayoutIndependent) {
  NeedlemanWunschWorkload Small(4); // 65x65 matrix
  double A = Small.run(WorkloadVariant::Original, nullptr);
  double B = Small.run(WorkloadVariant::Optimized, nullptr);
  EXPECT_DOUBLE_EQ(A, B);
  EXPECT_EQ(Small.dim(), 65u);
}

TEST(WorkloadTraceTest, TracesCarrySitesAndAllocations) {
  for (const auto &W : makeCaseStudySuite()) {
    Trace T;
    W->run(WorkloadVariant::Original, &T);
    EXPECT_GT(T.size(), 10000u) << W->name();
    EXPECT_GT(T.sites().size(), 0u) << W->name();
    EXPECT_GT(T.allocations().liveCount(), 0u) << W->name();

    // Every record's site resolves, or is UnknownSite.
    size_t Checked = 0;
    for (const MemoryRecord &Record : T.records()) {
      if (Record.Site != UnknownSite)
        EXPECT_NE(T.sites().lookup(Record.Site), nullptr);
      if (++Checked > 1000)
        break;
    }
  }
}

TEST(WorkloadTraceTest, RecordedAddressesFallInAllocations) {
  auto W = makeWorkloadByName("Tiny-DNN");
  ASSERT_NE(W, nullptr);
  Trace T;
  W->run(WorkloadVariant::Original, &T);
  size_t Attributed = 0, Checked = 0;
  for (const MemoryRecord &Record : T.records()) {
    if (T.allocations().findByAddress(Record.Addr))
      ++Attributed;
    if (++Checked == 20000)
      break;
  }
  // Nearly all references target the registered heap structures (the
  // kernels have no unregistered globals).
  EXPECT_GT(Attributed, Checked * 9 / 10);
}

TEST(WorkloadBinaryTest, BinariesAreAnalyzable) {
  auto All = makeRodiniaSuite();
  for (const auto &W : makeCaseStudySuite())
    All.push_back(makeWorkloadByName(W->name()));
  All.push_back(makeSymmetrization());
  for (const auto &W : All) {
    ASSERT_NE(W, nullptr);
    BinaryImage Image = W->makeBinary();
    EXPECT_FALSE(Image.functions().empty()) << W->name();
    ProgramStructure S(Image);
    EXPECT_GT(S.numLoops(), 0u) << W->name();
  }
}

TEST(WorkloadBinaryTest, HotLoopLocationExistsInStructure) {
  for (const auto &W : makeCaseStudySuite()) {
    std::string Hot = W->hotLoopLocation();
    ASSERT_FALSE(Hot.empty()) << W->name();
    BinaryImage Image = W->makeBinary();
    ProgramStructure S(Image);
    bool Found = false;
    for (LoopRef Ref : S.allLoops())
      if (S.describeLoop(Ref) == Hot)
        Found = true;
    EXPECT_TRUE(Found) << W->name() << " hot loop " << Hot
                       << " not discovered by the analyzer";
  }
}

TEST(WorkloadCorrectnessTest, MiniKernelsAreDeterministic) {
  for (const auto &W : makeRodiniaSuite()) {
    double A = W->run(WorkloadVariant::Original, nullptr);
    double B = W->run(WorkloadVariant::Original, nullptr);
    EXPECT_DOUBLE_EQ(A, B) << W->name();
    // The minis have no distinct optimized build: results coincide.
    if (!W->expectConflicts())
      EXPECT_DOUBLE_EQ(A, W->run(WorkloadVariant::Optimized, nullptr))
          << W->name();
  }
}

TEST(WorkloadTraceTest, TracingDoesNotChangeResults) {
  for (const char *Name : {"ADI", "Kripke", "hotspot"}) {
    auto W = makeWorkloadByName(Name);
    ASSERT_NE(W, nullptr) << Name;
    Trace T;
    double Traced = W->run(WorkloadVariant::Original, &T);
    double Plain = W->run(WorkloadVariant::Original, nullptr);
    EXPECT_DOUBLE_EQ(Traced, Plain) << Name;
    EXPECT_FALSE(T.empty()) << Name;
  }
}

TEST(WorkloadTraceTest, SymmetrizationTraceMatchesArithmetic) {
  SymmetrizationWorkload W(/*N=*/16, /*Sweeps=*/2);
  Trace T;
  W.run(WorkloadVariant::Original, &T);
  // 2 sweeps x 16 x 16 cells x 3 recorded references.
  EXPECT_EQ(T.size(), 2u * 16 * 16 * 3);
  EXPECT_EQ(W.rowElems(WorkloadVariant::Original), 16u);
  EXPECT_EQ(W.rowElems(WorkloadVariant::Optimized), 24u);
}
