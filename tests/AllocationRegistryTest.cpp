//===- tests/AllocationRegistryTest.cpp - Allocation tracking tests -------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/AllocationRegistry.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(AllocationRegistryTest, RecordAndFind) {
  AllocationRegistry R;
  auto Id = R.recordAllocation("matrix", 0x1000, 256);
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(R.findByAddress(0x1000), Id);
  EXPECT_EQ(R.findByAddress(0x10ff), Id);
  EXPECT_FALSE(R.findByAddress(0x1100).has_value());
  EXPECT_FALSE(R.findByAddress(0xfff).has_value());
  EXPECT_EQ(R.info(*Id).Name, "matrix");
  EXPECT_EQ(R.info(*Id).SizeBytes, 256u);
}

TEST(AllocationRegistryTest, EmptyAllocationRejected) {
  AllocationRegistry R;
  EXPECT_FALSE(R.recordAllocation("zero", 0x1000, 0).has_value());
  EXPECT_EQ(R.size(), 0u);
}

TEST(AllocationRegistryTest, OverlappingLiveAllocationRejected) {
  AllocationRegistry R;
  ASSERT_TRUE(R.recordAllocation("a", 0x1000, 0x100).has_value());
  EXPECT_FALSE(R.recordAllocation("b", 0x1080, 0x100).has_value());
  EXPECT_EQ(R.liveCount(), 1u);
}

TEST(AllocationRegistryTest, FreeAndReuse) {
  AllocationRegistry R;
  auto A = R.recordAllocation("first", 0x1000, 0x100);
  ASSERT_TRUE(A.has_value());
  EXPECT_TRUE(R.recordFree(0x1000));
  EXPECT_FALSE(R.recordFree(0x1000)); // double free
  EXPECT_FALSE(R.findByAddress(0x1000).has_value());
  EXPECT_FALSE(R.info(*A).Live);

  // A fresh allocation may reuse the address range.
  auto B = R.recordAllocation("second", 0x1000, 0x200);
  ASSERT_TRUE(B.has_value());
  EXPECT_NE(*A, *B);
  EXPECT_EQ(R.findByAddress(0x1010), B);
  EXPECT_EQ(R.size(), 2u);
  EXPECT_EQ(R.liveCount(), 1u);
}

TEST(AllocationRegistryTest, FreeRequiresExactStart) {
  AllocationRegistry R;
  ASSERT_TRUE(R.recordAllocation("a", 0x1000, 0x100).has_value());
  EXPECT_FALSE(R.recordFree(0x1001)); // not a start address
  EXPECT_TRUE(R.recordFree(0x1000));
}

TEST(AllocationRegistryTest, PointerOverload) {
  AllocationRegistry R;
  double Buffer[16];
  auto Id = R.recordAllocation("buffer", Buffer, sizeof(Buffer));
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(R.findByAddress(reinterpret_cast<uint64_t>(&Buffer[7])), Id);
}

TEST(AllocationRegistryTest, ManyAllocations) {
  AllocationRegistry R;
  for (uint64_t I = 0; I < 500; ++I)
    ASSERT_TRUE(
        R.recordAllocation("a" + std::to_string(I), I * 0x1000, 0x800)
            .has_value());
  EXPECT_EQ(R.liveCount(), 500u);
  auto Id = R.findByAddress(250 * 0x1000 + 0x7ff);
  ASSERT_TRUE(Id.has_value());
  EXPECT_EQ(R.info(*Id).Name, "a250");
}
