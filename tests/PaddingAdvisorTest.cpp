//===- tests/PaddingAdvisorTest.cpp - Padding guidance tests ---------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/PaddingAdvisor.h"

#include "sim/MachineConfig.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(PaddingAdvisorTest, SetStrideWalkTouchesOneSet) {
  CacheGeometry G = paperL1Geometry(); // 4096B set stride
  EXPECT_EQ(setsTouchedByColumnSweep(4096, 64, G), 1u);
  EXPECT_EQ(worstWindowSetCoverage(4096, 64, G), 1u);
}

TEST(PaddingAdvisorTest, PaperFigure2Symmetrization) {
  // 128x128 doubles: 1KiB rows. A column walk touches 4 of the 64 sets
  // (Sec. 2.1: "column access will frequently utilize four cache
  // sets"); a 64-byte pad spreads it over all sets.
  CacheGeometry G = paperL1Geometry();
  EXPECT_EQ(setsTouchedByColumnSweep(1024, 128, G), 4u);
  EXPECT_EQ(setsTouchedByColumnSweep(1024 + 64, 128, G), 64u);
}

TEST(PaddingAdvisorTest, OneLinePadSpreadsFully) {
  CacheGeometry G = paperL1Geometry();
  // 4160B = 65 lines: gcd(65, 64) == 1, every row a new set.
  EXPECT_EQ(worstWindowSetCoverage(4160, 64, G), 64u);
}

TEST(PaddingAdvisorTest, HalfLinePadLeavesPairs) {
  CacheGeometry G = paperL1Geometry();
  // 4128B = 64.5 lines: consecutive row pairs share a set, so a window
  // of 64 rows sees only ~32 distinct sets.
  uint64_t Coverage = worstWindowSetCoverage(4128, 128, G);
  EXPECT_LE(Coverage, 33u);
  EXPECT_GE(Coverage, 31u);
}

TEST(PaddingAdvisorTest, AdviceForSetStrideRows) {
  CacheGeometry G = paperL1Geometry();
  PaddingAdvice A = adviseRowPadding(4096, 8, 64, G);
  EXPECT_EQ(A.SetsBefore, 1u);
  EXPECT_EQ(A.SetsAfter, 64u);
  EXPECT_GT(A.PadBytes, 0u);
  EXPECT_EQ(A.PadBytes % 8, 0u) << "pad must be whole elements";
  EXPECT_TRUE(A.improves());
  // The advisor finds the smallest full-coverage pad: one line.
  EXPECT_EQ(A.PadBytes, 64u);
}

TEST(PaddingAdvisorTest, NoPadWhenAlreadySpread) {
  CacheGeometry G = paperL1Geometry();
  // 65-line rows already walk all sets.
  PaddingAdvice A = adviseRowPadding(4160, 8, 64, G);
  EXPECT_EQ(A.PadBytes, 0u);
  EXPECT_EQ(A.NewRowBytes, 4160u);
  EXPECT_FALSE(A.improves());
}

TEST(PaddingAdvisorTest, CatchesTemporalClumpingLikeNw) {
  // The NW shape: 513-int rows (2052B) drift one line every 16 rows,
  // touching every set *eventually* but dwelling 2-3 sets per window.
  CacheGeometry G = paperL1Geometry();
  EXPECT_EQ(setsTouchedByColumnSweep(2052, 512, G), 64u)
      << "total coverage looks fine...";
  EXPECT_LE(worstWindowSetCoverage(2052, 512, G), 12u)
      << "...but the walk dwells on a few sets per window";
  PaddingAdvice A = adviseRowPadding(2052, 4, 512, G);
  EXPECT_GE(A.SetsAfter, 60u);
  EXPECT_TRUE(A.improves());
}

TEST(PaddingAdvisorTest, RespectsElementGranularity) {
  CacheGeometry G = paperL1Geometry();
  for (uint64_t Elem : {2ull, 4ull, 8ull, 16ull}) {
    PaddingAdvice A = adviseRowPadding(4096, Elem, 64, G);
    EXPECT_EQ(A.PadBytes % Elem, 0u) << "element size " << Elem;
  }
}

TEST(PaddingAdvisorTest, FewRowsNeedNoFullCoverage) {
  CacheGeometry G = paperL1Geometry();
  // With only 4 rows the best achievable window coverage is 4.
  PaddingAdvice A = adviseRowPadding(4096, 8, 4, G);
  EXPECT_EQ(A.SetsAfter, 4u);
}

TEST(PaddingAdvisorTest, ZeroStrideAndZeroRowsDegenerates) {
  // RowStrideBytes == 0 (a degenerate "matrix" of coincident rows)
  // touches exactly one set and has window coverage 1; zero rows touch
  // nothing. Neither may divide by zero or loop forever.
  CacheGeometry G = paperL1Geometry();
  EXPECT_EQ(setsTouchedByColumnSweep(0, 64, G), 1u);
  EXPECT_EQ(worstWindowSetCoverage(0, 64, G), 1u);
  EXPECT_EQ(setsTouchedByColumnSweep(4096, 0, G), 0u);
  EXPECT_EQ(setsTouchedByColumnSweep(0, 0, G), 0u);
  // The smallest legal row (one element) is still advisable: its
  // baseline coverage is the measured one, not a division artifact.
  PaddingAdvice A = adviseRowPadding(8, 8, 64, G);
  EXPECT_EQ(A.SetsBefore, worstWindowSetCoverage(8, 64, G));
}

TEST(PaddingAdvisorTest, SubLineStrideSharesLines) {
  // A 16-byte row stride packs 4 rows per line: 64 rows span 16 lines
  // = 16 sets, and a full set-sequence period (256 rows) still covers
  // all 64 sets. Strides below the line size must not be rounded up.
  CacheGeometry G = paperL1Geometry();
  EXPECT_EQ(setsTouchedByColumnSweep(16, 64, G), 16u);
  EXPECT_EQ(setsTouchedByColumnSweep(16, 256, G), 64u);
  EXPECT_EQ(worstWindowSetCoverage(16, 64, G), 16u);
}

TEST(PaddingAdvisorTest, HugeTripCountsCostOnePeriod) {
  // Trip counts far beyond numSets x ways reduce to one set-sequence
  // period: the answers equal the one-period answers and return
  // immediately instead of iterating 2^40 rows.
  CacheGeometry G = paperL1Geometry();
  const uint64_t Huge = uint64_t{1} << 40;
  EXPECT_EQ(setsTouchedByColumnSweep(4096, Huge, G),
            setsTouchedByColumnSweep(4096, 64, G));
  EXPECT_EQ(setsTouchedByColumnSweep(2052, Huge, G), 64u);
  EXPECT_EQ(worstWindowSetCoverage(2052, Huge, G),
            worstWindowSetCoverage(2052, 4096, G));
  PaddingAdvice A = adviseRowPadding(4096, 8, Huge, G);
  EXPECT_EQ(A.SetsAfter, 64u);
  EXPECT_TRUE(A.improves());
}

TEST(PaddingAdvisorTest, WorksForSkylakeL2Geometry) {
  // The analysis is geometry-generic: check a 4-way 256KiB L2
  // (1024 sets, 64KiB set stride).
  CacheGeometry L2(256 * 1024, 64, 4);
  EXPECT_EQ(L2.numSets(), 1024u);
  EXPECT_EQ(setsTouchedByColumnSweep(L2.setStrideBytes(), 100, L2), 1u);
  PaddingAdvice A = adviseRowPadding(L2.setStrideBytes(), 8, 1024, L2);
  EXPECT_EQ(A.SetsAfter, 1024u);
}
