//===- tests/HistogramTest.cpp - Histogram and CDF unit tests ------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include "gtest/gtest.h"

using namespace ccprof;

TEST(HistogramTest, EmptyHistogram) {
  Histogram H;
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.total(), 0u);
  EXPECT_EQ(H.count(5), 0u);
  EXPECT_EQ(H.countBelow(100), 0u);
  EXPECT_DOUBLE_EQ(H.fractionBelow(100), 0.0);
  EXPECT_DOUBLE_EQ(H.cdfAt(100), 0.0);
  EXPECT_DOUBLE_EQ(H.meanKey(), 0.0);
  EXPECT_TRUE(H.keys().empty());
  EXPECT_TRUE(H.cdfSeries().empty());
}

TEST(HistogramTest, AddAndCount) {
  Histogram H;
  H.add(3);
  H.add(3);
  H.add(7, 5);
  EXPECT_EQ(H.total(), 7u);
  EXPECT_EQ(H.count(3), 2u);
  EXPECT_EQ(H.count(7), 5u);
  EXPECT_EQ(H.count(4), 0u);
}

TEST(HistogramTest, ZeroWeightIsIgnored) {
  Histogram H;
  H.add(3, 0);
  EXPECT_TRUE(H.empty());
  EXPECT_EQ(H.count(3), 0u);
}

TEST(HistogramTest, CountBelowAndAtOrBelow) {
  Histogram H;
  H.add(1, 10);
  H.add(8, 20);
  H.add(64, 30);
  EXPECT_EQ(H.countBelow(1), 0u);
  EXPECT_EQ(H.countBelow(8), 10u);
  EXPECT_EQ(H.countAtOrBelow(8), 30u);
  EXPECT_EQ(H.countBelow(65), 60u);
}

TEST(HistogramTest, FractionBelowMatchesContributionFactor) {
  // The paper's cf: N_{RCD < T} / N_total with T = 8.
  Histogram Rcd;
  Rcd.add(1, 88);
  Rcd.add(64, 12);
  EXPECT_DOUBLE_EQ(Rcd.fractionBelow(8), 0.88);
}

TEST(HistogramTest, CdfSeriesIsMonotoneAndEndsAtOne) {
  Histogram H;
  H.add(2, 5);
  H.add(4, 5);
  H.add(9, 10);
  auto Series = H.cdfSeries();
  ASSERT_EQ(Series.size(), 3u);
  EXPECT_EQ(Series[0].first, 2u);
  EXPECT_DOUBLE_EQ(Series[0].second, 0.25);
  EXPECT_DOUBLE_EQ(Series[1].second, 0.5);
  EXPECT_DOUBLE_EQ(Series[2].second, 1.0);
  for (size_t I = 1; I < Series.size(); ++I)
    EXPECT_LE(Series[I - 1].second, Series[I].second);
}

TEST(HistogramTest, QuantileAndMinMax) {
  Histogram H;
  for (uint64_t K = 1; K <= 100; ++K)
    H.add(K);
  EXPECT_EQ(H.minKey(), 1u);
  EXPECT_EQ(H.maxKey(), 100u);
  EXPECT_EQ(H.quantile(0.5), 50u);
  EXPECT_EQ(H.quantile(1.0), 100u);
  EXPECT_EQ(H.quantile(0.01), 1u);
}

TEST(HistogramTest, QuantileRoundsFractionalRankUp) {
  // Regression: the rank target is ceil(Q * total). With 5 observations
  // the median is the rank-3 one — the old truncating target picked
  // rank 2, whose CDF is only 0.4 < 0.5.
  Histogram H;
  for (uint64_t K = 1; K <= 5; ++K)
    H.add(K * 10);
  EXPECT_EQ(H.quantile(0.5), 30u);
  EXPECT_EQ(H.quantile(0.4), 20u);  // exact rank boundary: CDF(20) == 0.4
  EXPECT_EQ(H.quantile(0.41), 30u); // just past it
  EXPECT_EQ(H.quantile(0.2), 10u);
}

TEST(HistogramTest, QuantileOneIsMaxKey) {
  Histogram H;
  H.add(3, 7);
  H.add(11, 2);
  H.add(200, 1);
  EXPECT_EQ(H.quantile(1.0), 200u);
  EXPECT_EQ(H.quantile(1.0), H.maxKey());
}

TEST(HistogramTest, QuantileSingleBucket) {
  // Every quantile of a one-bucket histogram is that bucket, including
  // Q values whose raw target rounds to rank 0 (Q = 0 itself is outside
  // the documented (0, 1] contract).
  Histogram H;
  H.add(42, 3);
  EXPECT_EQ(H.quantile(0.001), 42u);
  EXPECT_EQ(H.quantile(0.1), 42u);
  EXPECT_EQ(H.quantile(0.5), 42u);
  EXPECT_EQ(H.quantile(1.0), 42u);
}

TEST(HistogramTest, MeanKey) {
  Histogram H;
  H.add(10, 3);
  H.add(20, 1);
  EXPECT_DOUBLE_EQ(H.meanKey(), 12.5);
}

TEST(HistogramTest, Merge) {
  Histogram A, B;
  A.add(1, 2);
  B.add(1, 3);
  B.add(9, 4);
  A.merge(B);
  EXPECT_EQ(A.total(), 9u);
  EXPECT_EQ(A.count(1), 5u);
  EXPECT_EQ(A.count(9), 4u);
}

TEST(HistogramTest, AsciiChartMentionsKeys) {
  Histogram H;
  H.add(42, 7);
  std::string Chart = H.toAsciiChart();
  EXPECT_NE(Chart.find("42"), std::string::npos);
  EXPECT_NE(Chart.find('#'), std::string::npos);
}

TEST(HistogramTest, AsciiChartCapsRows) {
  Histogram H;
  for (uint64_t K = 0; K < 100; ++K)
    H.add(K, K + 1);
  std::string Chart = H.toAsciiChart(5);
  size_t Lines = std::count(Chart.begin(), Chart.end(), '\n');
  EXPECT_EQ(Lines, 5u);
}
