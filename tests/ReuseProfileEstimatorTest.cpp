//===- tests/ReuseProfileEstimatorTest.cpp - Analytic profile tests ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Validates the trace-free reuse-profile estimator against exact
// traced curves. Both sides read out through the same Hill–Smith
// model (sim/MrcModel), so any error measured here is purely the
// analytic histogram's — the documented 0.05 bound of DESIGN.md §11.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReuseProfileEstimator.h"
#include "sim/MrcEngine.h"
#include "trace/Canonicalize.h"
#include "trace/Trace.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

using namespace ccprof;

namespace {

/// The default analyze --mrc sweep: L1-dense capacities plus the L2
/// point, all at the paper's 64 B / 8-way shape.
std::vector<CacheGeometry> sweepGeometries() {
  std::vector<CacheGeometry> Geoms;
  for (uint64_t Kb : {8, 16, 32, 64, 128})
    Geoms.emplace_back(Kb * 1024, 64, 8);
  Geoms.emplace_back(256 * 1024, 64, 8);
  return Geoms;
}

struct WorkloadCase {
  const char *Name;
  WorkloadVariant Variant;
};

std::string caseLabel(const WorkloadCase &C) {
  return std::string(C.Name) + "/" +
         (C.Variant == WorkloadVariant::Original ? "orig" : "opt");
}

} // namespace

TEST(ReuseProfileEstimatorTest, EmptyModelIsInvalid) {
  const ReuseProfileEstimate E =
      ReuseProfileEstimator().estimate(StaticAccessModel{});
  EXPECT_FALSE(E.Valid);
  EXPECT_EQ(E.Program.TotalRefs, 0u);
}

TEST(ReuseProfileEstimatorTest, TotalsMatchModelExactly) {
  // A Complete model describes every recorded access, so the analytic
  // profile's denominator must equal the descriptor totals exactly.
  for (const char *Name : {"Symmetrization", "NW", "MKL-FFT", "ADI",
                           "Tiny-DNN", "Kripke", "HimenoBMT"}) {
    const std::unique_ptr<Workload> W = makeWorkloadByName(Name);
    ASSERT_NE(W, nullptr) << Name;
    const StaticAccessModel Model =
        W->accessModel(WorkloadVariant::Original);
    if (Model.empty())
      continue;
    uint64_t Expected = 0;
    for (const AccessDescriptor &D : Model.Accesses)
      Expected += D.totalAccesses();
    const ReuseProfileEstimate E = ReuseProfileEstimator().estimate(Model);
    EXPECT_TRUE(E.Valid) << Name;
    EXPECT_EQ(E.Program.TotalRefs, Expected) << Name;
    uint64_t PerLineSum = 0;
    for (const auto &[Line, Profile] : E.PerLine)
      PerLineSum += Profile.TotalRefs;
    EXPECT_EQ(PerLineSum, Expected) << Name;
  }
}

TEST(ReuseProfileEstimatorTest, DeterministicAcrossRuns) {
  const std::unique_ptr<Workload> W = makeWorkloadByName("HimenoBMT");
  ASSERT_NE(W, nullptr);
  const StaticAccessModel Model = W->accessModel(WorkloadVariant::Original);
  ASSERT_FALSE(Model.empty());
  const ReuseProfileEstimate A = ReuseProfileEstimator().estimate(Model);
  const ReuseProfileEstimate B = ReuseProfileEstimator().estimate(Model);
  ASSERT_EQ(A.PerLine.size(), B.PerLine.size());
  EXPECT_EQ(A.Program.ColdRefs, B.Program.ColdRefs);
  EXPECT_EQ(A.Program.Stack.buckets(), B.Program.Stack.buckets());
}

TEST(ReuseProfileEstimatorTest, ProgramCurveWithinBoundOfExact) {
  const std::vector<CacheGeometry> Geoms = sweepGeometries();
  const WorkloadCase Cases[] = {
      {"Symmetrization", WorkloadVariant::Original},
      {"Symmetrization", WorkloadVariant::Optimized},
      {"NW", WorkloadVariant::Original},
      {"NW", WorkloadVariant::Optimized},
      {"MKL-FFT", WorkloadVariant::Original},
      {"MKL-FFT", WorkloadVariant::Optimized},
      {"ADI", WorkloadVariant::Original},
      {"ADI", WorkloadVariant::Optimized},
      {"Tiny-DNN", WorkloadVariant::Original},
      {"Tiny-DNN", WorkloadVariant::Optimized},
      {"Kripke", WorkloadVariant::Original},
      {"Kripke", WorkloadVariant::Optimized},
      {"HimenoBMT", WorkloadVariant::Original},
      {"HimenoBMT", WorkloadVariant::Optimized},
  };
  for (const WorkloadCase &C : Cases) {
    const std::unique_ptr<Workload> W = makeWorkloadByName(C.Name);
    ASSERT_NE(W, nullptr) << C.Name;
    const StaticAccessModel Model = W->accessModel(C.Variant);
    if (Model.empty())
      continue;

    Trace Recorded;
    W->run(C.Variant, &Recorded);
    const Trace T = canonicalizeTrace(Recorded);
    const MissRatioCurve Exact = MrcEngine::compute(T, MrcOptions{});

    const ReuseProfileEstimate E = ReuseProfileEstimator().estimate(Model);
    ASSERT_TRUE(E.Valid) << caseLabel(C);
    // Complete models are count-faithful to within the models'
    // documented small-term elisions (boundary iterations).
    if (Model.Complete)
      EXPECT_NEAR(static_cast<double>(E.Program.TotalRefs),
                  static_cast<double>(T.size()),
                  0.01 * static_cast<double>(T.size()))
          << caseLabel(C);

    for (const CacheGeometry &G : Geoms) {
      const double Predicted = E.Program.missRatioAt(G);
      const double Measured = Exact.modelMissRatioAt(G);
      EXPECT_NEAR(Predicted, Measured, 0.05)
          << caseLabel(C) << " at " << G.describe();
    }
  }
}
