//===- tests/StaticConflictAnalyzerTest.cpp - Static prediction ----------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Validates the static conflict-prediction engine against ground truth:
// the simulator run over canonicalized traces of the very workloads the
// models describe. Predictions and measurements share the canonical
// allocation layout, so they must agree not just on verdicts but on
// which sets are victimized.
//
//===----------------------------------------------------------------------===//

#include "analysis/ConsistencyChecker.h"
#include "analysis/StaticConflictAnalyzer.h"
#include "core/Profiler.h"
#include "core/SetFootprint.h"
#include "trace/Canonicalize.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

namespace {

using namespace ccprof;

/// Exact profile of the canonicalized trace — the same view the batch
/// pipeline's --exact artifacts hold, and the layout the static
/// analyzer predicts against.
ProfileResult measureCanonically(const Workload &W, WorkloadVariant Variant) {
  Trace T;
  W.run(Variant, &T);
  Trace Canonical = canonicalizeTrace(T);
  BinaryImage Image = W.makeBinary();
  ProgramStructure Structure(Image);
  Profiler P;
  return P.profileExact(Canonical, Structure);
}

StaticAnalysisResult predictStatically(const Workload &W,
                                       WorkloadVariant Variant) {
  BinaryImage Image = W.makeBinary();
  ProgramStructure Structure(Image);
  return StaticConflictAnalyzer().analyze(W.accessModel(Variant), &Structure);
}

/// Acceptance criterion of the analysis engine: on every pre-padding
/// case-study variant, the predicted victim sets equal the measured
/// ones under the shared imbalance-bar rule, loop by loop, and the
/// classifier verdicts agree.
TEST(StaticConflictAnalyzerTest, VictimSetsMatchSimulationOnEveryOriginal) {
  ConsistencyChecker Checker;
  for (const auto &W : makeCaseStudySuite()) {
    StaticAnalysisResult Static =
        predictStatically(*W, WorkloadVariant::Original);
    ASSERT_TRUE(Static.ModelComplete) << W->name();
    EXPECT_FALSE(Static.conflictFree())
        << W->name() << " original must be predicted conflicting";
    ProfileResult Measured = measureCanonically(*W, WorkloadVariant::Original);
    for (const LoopConflictReport &Report : Measured.Loops) {
      if (!Report.Significant)
        continue;
      const LoopPrediction *Prediction = Static.byLocation(Report.Location);
      ASSERT_NE(Prediction, nullptr) << W->name() << " " << Report.Location;
      EXPECT_EQ(Checker.victimSetsFromMisses(Prediction->PredictedMissesPerSet),
                Checker.measuredVictimSets(Report))
          << W->name() << " " << Report.Location;
      EXPECT_EQ(Prediction->ConflictPredicted, Report.ConflictPredicted)
          << W->name() << " " << Report.Location;
    }
  }
}

/// Soundness of --static-screen: whenever the model proves a variant
/// conflict-free, the skipped simulation would indeed have found no
/// conflicting loop. Most optimized variants screen out; HimenoBMT's
/// does not — canonical page alignment erases the malloc stagger its
/// padding relies on, and simulation of the canonical trace agrees.
TEST(StaticConflictAnalyzerTest, StaticScreeningIsSound) {
  uint64_t Screened = 0;
  for (const auto &W : makeCaseStudySuite()) {
    StaticAnalysisResult Static =
        predictStatically(*W, WorkloadVariant::Optimized);
    if (!Static.conflictFree())
      continue;
    ++Screened;
    ProfileResult Measured = measureCanonically(*W, WorkloadVariant::Optimized);
    for (const LoopConflictReport &Report : Measured.Loops)
      EXPECT_FALSE(Report.ConflictPredicted)
          << W->name() << " " << Report.Location
          << " screened out yet measured conflicting";
  }
  // The screen must have teeth: most optimized variants are provably
  // clean under the canonical layout.
  EXPECT_GE(Screened, 5u);
}

/// A hand-written model needs no workload: a set-stride column walk
/// piles 500 lines onto set 0 and must be flagged with set 0 as the
/// victim; the contiguous walk of the same footprint spreads at most 8
/// lines per set — the associativity — and must be clean. (500 rows,
/// not 512: re-accesses at exactly the window period fall just outside
/// the sliding window and would be classed capacity, not thrash.)
TEST(StaticConflictAnalyzerTest, ColumnWalkFlaggedRowWalkClean) {
  auto MakeModel = [](int64_t StrideBytes) {
    StaticAccessModel Model;
    Model.SourceFile = "model.cpp";
    Model.Complete = true;
    Model.Allocations = {{"m[]", 512 * 4096, true}};
    AccessDescriptor D;
    D.Array = "m[]";
    D.Line = 11;
    D.ElementBytes = 8;
    D.Levels = {{64, 0}, {500, StrideBytes}};
    Model.Accesses = {D};
    return Model;
  };
  StaticConflictAnalyzer Analyzer;

  StaticAnalysisResult Column = Analyzer.analyze(MakeModel(4096), nullptr);
  ASSERT_FALSE(Column.Loops.empty());
  EXPECT_FALSE(Column.conflictFree());
  EXPECT_TRUE(Column.Loops[0].ConflictPredicted);
  EXPECT_EQ(Column.Loops[0].VictimSets, std::vector<uint32_t>{0});
  EXPECT_GT(Column.Loops[0].PredictedContributionFactor, 0.9);

  StaticAnalysisResult Row = Analyzer.analyze(MakeModel(64), nullptr);
  ASSERT_FALSE(Row.Loops.empty());
  EXPECT_TRUE(Row.conflictFree());
  // Only the 500 compulsory line fetches miss; re-sweeps hit.
  EXPECT_EQ(Row.PredictedMisses, 500u);
}

/// Residency is a per-set LRU stack of depth `ways`; the sliding
/// window only classifies misses, never creates them.
TEST(SetOccupancyTrackerTest, ResidencyIsPerSetLru) {
  CacheGeometry G(256, 64, 2); // 2 sets, 2 ways; set stride 128 B.
  SetOccupancyTracker T(G, /*WindowAccesses=*/64);

  EXPECT_EQ(T.access(0), 0u); // A -> set 0
  EXPECT_TRUE(T.lastAccessWasNewLine());
  EXPECT_FALSE(T.lastAccessWasResident());

  T.access(128); // B -> set 0
  EXPECT_FALSE(T.lastAccessWasResident());

  T.access(0); // A again: within the 2 most recent lines of set 0.
  EXPECT_TRUE(T.lastAccessWasResident());
  EXPECT_FALSE(T.lastAccessWasNewLine());

  T.access(256); // C -> set 0: evicts B (LRU).
  EXPECT_FALSE(T.lastAccessWasResident());

  T.access(64); // set 1 traffic must not disturb set 0's stack.
  EXPECT_EQ(T.occupancy(1), 1u);
  T.access(0); // A survived C's arrival.
  EXPECT_TRUE(T.lastAccessWasResident());

  T.access(128); // B was evicted -> miss, but still in the window:
  EXPECT_FALSE(T.lastAccessWasResident());
  EXPECT_FALSE(T.lastAccessWasNewLine());
  EXPECT_TRUE(T.lastAccessWasInWindow()); // ... classified as thrash.
}

} // namespace
