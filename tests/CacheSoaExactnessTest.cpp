//===- tests/CacheSoaExactnessTest.cpp - SoA vs scalar bit-exactness ------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Locks the structure-of-arrays Cache to the preserved scalar model
// (ReferenceCache) bit for bit: every access of a randomized load/store
// stream must agree on hit/miss, set index, evicted line, and eviction
// dirtiness, across all four replacement policies, and the final
// counters must be equal. Random replacement shares the RNG seed, so
// even victim draws must line up; this is what lets the production
// simulator evolve for speed without moving the ground truth.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "sim/ReferenceCache.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

#include <tuple>

using namespace ccprof;

namespace {

const char *policyName(ReplacementKind Policy) {
  switch (Policy) {
  case ReplacementKind::Lru:
    return "LRU";
  case ReplacementKind::Fifo:
    return "FIFO";
  case ReplacementKind::TreePlru:
    return "TreePLRU";
  case ReplacementKind::Random:
    return "Random";
  }
  return "?";
}

/// Runs the same randomized reference stream through both models and
/// asserts access-by-access equality.
void expectBitExact(CacheGeometry G, ReplacementKind Policy,
                    uint64_t StreamSeed, int Locality, int NumAccesses) {
  const uint64_t RngSeed = 0x5eedcafe ^ StreamSeed;
  Cache Soa(G, Policy, RngSeed);
  ReferenceCache Scalar(G, Policy, RngSeed);

  Xoshiro256 Rng(StreamSeed);
  for (int I = 0; I < NumAccesses; ++I) {
    // Mix of strided sweeps and random pointers, with writes sprinkled
    // in so dirty/writeback state is exercised.
    uint64_t Addr;
    if (Rng.nextBounded(4) == 0)
      Addr = (static_cast<uint64_t>(I) * 24) % (uint64_t{1} << Locality);
    else
      Addr = Rng.nextBounded(uint64_t{1} << Locality);
    const bool IsWrite = Rng.nextBounded(8) < 3;

    CacheAccessResult A = Soa.access(Addr, IsWrite);
    CacheAccessResult B = Scalar.access(Addr, IsWrite);
    ASSERT_EQ(A.Hit, B.Hit)
        << policyName(Policy) << " access " << I << " addr " << Addr;
    ASSERT_EQ(A.SetIndex, B.SetIndex) << policyName(Policy) << " access " << I;
    ASSERT_EQ(A.EvictedLine.has_value(), B.EvictedLine.has_value())
        << policyName(Policy) << " access " << I;
    if (A.EvictedLine) {
      ASSERT_EQ(*A.EvictedLine, *B.EvictedLine)
          << policyName(Policy) << " access " << I;
      ASSERT_EQ(A.EvictedDirty, B.EvictedDirty)
          << policyName(Policy) << " access " << I;
    }
    // probe() must agree with the scalar model on residency too.
    ASSERT_EQ(Soa.probe(Addr), Scalar.probe(Addr))
        << policyName(Policy) << " access " << I;
  }

  EXPECT_EQ(Soa.stats().Accesses, Scalar.stats().Accesses);
  EXPECT_EQ(Soa.stats().Hits, Scalar.stats().Hits);
  EXPECT_EQ(Soa.stats().Misses, Scalar.stats().Misses);
  EXPECT_EQ(Soa.stats().Evictions, Scalar.stats().Evictions);
  EXPECT_EQ(Soa.stats().Writebacks, Scalar.stats().Writebacks);
  EXPECT_EQ(Soa.perSetMisses(), Scalar.perSetMisses());
}

} // namespace

class CacheSoaExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, uint32_t, int>> {};

TEST_P(CacheSoaExactnessTest, AllPoliciesMatchScalarModel) {
  auto [Size, Line, Assoc, Locality] = GetParam();
  CacheGeometry G(Size, Line, Assoc);
  for (ReplacementKind Policy :
       {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::TreePlru,
        ReplacementKind::Random}) {
    if (Policy == ReplacementKind::TreePlru && (Assoc & (Assoc - 1)) != 0)
      continue; // tree-PLRU needs power-of-two associativity
    expectBitExact(G, Policy, Size * 131 + Assoc * 7 + Locality, Locality,
                   40000);
  }
}

TEST(CacheSoaExactnessTest, FlushResetsBothModelsIdentically) {
  CacheGeometry G(32768, 64, 8);
  Cache Soa(G, ReplacementKind::Lru);
  ReferenceCache Scalar(G, ReplacementKind::Lru);
  Xoshiro256 Rng(42);
  for (int I = 0; I < 5000; ++I) {
    uint64_t Addr = Rng.nextBounded(1 << 18);
    Soa.access(Addr, I % 3 == 0);
    Scalar.access(Addr, I % 3 == 0);
  }
  Soa.flush();
  Scalar.flush();
  for (int I = 0; I < 5000; ++I) {
    uint64_t Addr = Rng.nextBounded(1 << 18);
    ASSERT_EQ(Soa.access(Addr).Hit, Scalar.access(Addr).Hit) << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeometryAndLocality, CacheSoaExactnessTest,
    ::testing::Values(
        std::make_tuple(uint64_t{4096}, 64u, 1u, 14),  // direct-mapped
        std::make_tuple(uint64_t{4096}, 64u, 2u, 14),
        std::make_tuple(uint64_t{32768}, 64u, 8u, 16), // the paper's L1
        std::make_tuple(uint64_t{32768}, 64u, 8u, 20), // low locality
        std::make_tuple(uint64_t{8192}, 32u, 4u, 15),
        std::make_tuple(uint64_t{2048}, 64u, 16u, 13), // 2 fat sets
        std::make_tuple(uint64_t{12288}, 64u, 3u, 14), // non-pow2 ways
        std::make_tuple(uint64_t{65536}, 128u, 4u, 18)));
