//===- tests/ServiceTest.cpp - ccprofd service tests ----------------------===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Covers the ingest service: queue FIFO order and backpressure, the
// content-addressed ServiceStore (dedup, concurrent multi-writer
// safety, arrival-order-independent rolling aggregates, restart
// recovery), the regression monitor's alert policy, the age-gated
// stale-temp reaper, deterministic store listings, and the daemon end
// to end over its drop directory and Unix-domain socket.
//
//===----------------------------------------------------------------------===//

#include "service/Ccprofd.h"
#include "service/IngestQueue.h"
#include "service/RegressionMonitor.h"
#include "service/ServiceClient.h"
#include "service/ServiceStore.h"
#include "trace/BinaryIO.h"
#include "trace/Trace.h"
#include "workloads/Workload.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace ccprof;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory under the system temp root, removed on
/// destruction.
struct TempDir {
  fs::path Path;

  explicit TempDir(const std::string &Name)
      : Path(fs::temp_directory_path() /
             ("ccprof-service-" + Name + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

/// A compatible artifact family: same config, varying repeat/seed and
/// per-loop evidence, so any subset merges.
ProfileArtifact makeArtifact(uint32_t Repeat, uint64_t LoopSamples = 1000,
                             bool Conflict = false,
                             WorkloadVariant Variant =
                                 WorkloadVariant::Original,
                             double MissRatio = 0.2) {
  ProfileArtifact A;
  A.Provenance.Job.WorkloadName = "Synthetic";
  A.Provenance.Job.Variant = Variant;
  A.Provenance.Job.Repeat = Repeat;
  A.Provenance.Job.Seed = 1000 + Repeat;
  A.Result.TraceRefs = 100000;
  A.Result.L1Misses = static_cast<uint64_t>(100000 * MissRatio);
  A.Result.Samples = LoopSamples;
  A.Result.L1MissRatio = MissRatio;
  A.Result.NumSets = 64;
  A.Result.RcdThreshold = 8;
  LoopConflictReport Loop;
  Loop.Location = "synthetic.cpp:42";
  Loop.Samples = LoopSamples;
  Loop.MissContribution = 1.0;
  Loop.ContributionFactor = Conflict ? 0.9 : 0.1;
  Loop.ConflictPredicted = Conflict;
  Loop.Significant = true;
  Loop.PerSetMisses.assign(64, 1);
  A.Result.Loops.push_back(std::move(Loop));
  return A;
}

std::string serialize(const ProfileArtifact &Artifact) {
  std::stringstream Stream;
  EXPECT_TRUE(Artifact.writeTo(Stream));
  return Stream.str();
}

std::string fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return bio::readAll(In);
}

} // namespace

//===----------------------------------------------------------------------===//
// IngestQueue
//===----------------------------------------------------------------------===//

TEST(IngestQueueTest, PopsInFifoOrder) {
  IngestQueue Queue(8);
  for (int I = 0; I < 5; ++I) {
    IngestRequest Req;
    Req.Name = std::to_string(I);
    ASSERT_TRUE(Queue.push(std::move(Req)));
  }
  for (int I = 0; I < 5; ++I) {
    std::optional<IngestRequest> Req = Queue.pop();
    ASSERT_TRUE(Req.has_value());
    EXPECT_EQ(Req->Name, std::to_string(I));
  }
  EXPECT_EQ(Queue.depth(), 0u);
}

TEST(IngestQueueTest, TryPushRefusesWhenFull) {
  IngestQueue Queue(2);
  EXPECT_TRUE(Queue.tryPush({}));
  EXPECT_TRUE(Queue.tryPush({}));
  EXPECT_FALSE(Queue.tryPush({}));
  const IngestQueueStats Stats = Queue.stats();
  EXPECT_EQ(Stats.Enqueued, 2u);
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.Depth, 2u);
  EXPECT_EQ(Stats.Capacity, 2u);
}

TEST(IngestQueueTest, PushBlocksUntilConsumerMakesRoom) {
  IngestQueue Queue(1);
  ASSERT_TRUE(Queue.push({}));
  std::thread Producer([&Queue] {
    IngestRequest Req;
    Req.Name = "second";
    EXPECT_TRUE(Queue.push(std::move(Req)));
  });
  // Let the producer reach the full-queue wait, then drain one slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(Queue.pop().has_value());
  Producer.join();
  const std::optional<IngestRequest> Second = Queue.pop();
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(Second->Name, "second");
  EXPECT_GE(Queue.stats().Stalls, 1u);
}

TEST(IngestQueueTest, CloseDrainsRemainingThenSignalsExit) {
  IngestQueue Queue(4);
  ASSERT_TRUE(Queue.push({}));
  ASSERT_TRUE(Queue.push({}));
  Queue.close();
  EXPECT_FALSE(Queue.push({}));
  EXPECT_TRUE(Queue.pop().has_value());
  EXPECT_TRUE(Queue.pop().has_value());
  EXPECT_FALSE(Queue.pop().has_value());
}

//===----------------------------------------------------------------------===//
// ServiceStore
//===----------------------------------------------------------------------===//

TEST(ServiceStoreTest, PutStoresFreshContentAndDedupsRepeats) {
  TempDir Dir("store-dedup");
  ServiceStore Store(Dir.str());
  std::string Error;
  ASSERT_TRUE(Store.open(&Error)) << Error;

  const ProfileArtifact Artifact = makeArtifact(0);
  const ServicePutResult First = Store.put(Artifact);
  ASSERT_TRUE(First.Ok) << First.Error;
  EXPECT_TRUE(First.Fresh);
  EXPECT_TRUE(fs::exists(First.Path));

  const ServicePutResult Second = Store.put(Artifact);
  ASSERT_TRUE(Second.Ok) << Second.Error;
  EXPECT_FALSE(Second.Fresh);
  EXPECT_EQ(First.Hash, Second.Hash);

  const ServiceStoreStats Stats = Store.stats();
  EXPECT_EQ(Stats.Puts, 2u);
  EXPECT_EQ(Stats.Stored, 1u);
  EXPECT_EQ(Stats.DedupHits, 1u);
  EXPECT_EQ(Stats.Objects, 1u);
  EXPECT_EQ(Stats.Aggregates, 1u);
}

TEST(ServiceStoreTest, AggregateBytesIndependentOfArrivalOrder) {
  // Four runs with distinct repeats, seeds, and evidence weights; the
  // rolling aggregate's serialized bytes must not depend on the order
  // they arrive in.
  std::vector<ProfileArtifact> Family;
  for (uint32_t R = 0; R < 4; ++R)
    Family.push_back(makeArtifact(R, 500 + 250 * R));

  std::vector<std::vector<size_t>> Orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  std::string Reference;
  for (size_t O = 0; O < Orders.size(); ++O) {
    TempDir Dir("store-order-" + std::to_string(O));
    ServiceStore Store(Dir.str());
    std::string Error;
    ASSERT_TRUE(Store.open(&Error)) << Error;
    for (size_t I : Orders[O]) {
      const ServicePutResult Put = Store.put(Family[I]);
      ASSERT_TRUE(Put.Ok) << Put.Error;
      ASSERT_TRUE(Put.Fresh);
    }
    const std::vector<std::string> Keys = Store.aggregateKeys();
    ASSERT_EQ(Keys.size(), 1u);
    ProfileArtifact Aggregate;
    ASSERT_TRUE(Store.aggregateFor(Keys[0], Aggregate));
    EXPECT_EQ(Aggregate.Provenance.MergedRuns, 4u);
    // Canonical provenance: min seed, repeat struck, service tool tag.
    EXPECT_EQ(Aggregate.Provenance.Job.Seed, 1000u);
    EXPECT_EQ(Aggregate.Provenance.Job.Repeat, 0u);
    EXPECT_EQ(Aggregate.Provenance.Tool, "ccprofd-1");

    const std::string Bytes =
        fileBytes((fs::path(Store.aggregatesDirectory()) /
                   (Keys[0] + ArtifactExtension))
                      .string());
    if (O == 0)
      Reference = Bytes;
    else
      EXPECT_EQ(Bytes, Reference) << "order " << O;
  }
  ASSERT_FALSE(Reference.empty());
}

TEST(ServiceStoreTest, ConcurrentWritersLoseNothingAndAggreeByteForByte) {
  // N threads hammer one store with disjoint slices of a 48-artifact
  // family, in per-thread shuffled order. Afterwards: every object
  // present exactly once, the store validates clean, and the rolling
  // aggregate is byte-identical to a single-threaded sequential ingest.
  constexpr unsigned NumThreads = 6;
  constexpr unsigned PerThread = 8;
  std::vector<ProfileArtifact> Family;
  for (uint32_t I = 0; I < NumThreads * PerThread; ++I)
    Family.push_back(makeArtifact(I, 100 + 7 * I));

  TempDir SeqDir("store-seq");
  ServiceStore Sequential(SeqDir.str());
  std::string Error;
  ASSERT_TRUE(Sequential.open(&Error)) << Error;
  for (const ProfileArtifact &A : Family)
    ASSERT_TRUE(Sequential.put(A).Ok);
  const std::vector<std::string> SeqKeys = Sequential.aggregateKeys();
  ASSERT_EQ(SeqKeys.size(), 1u);
  const std::string SeqBytes =
      fileBytes((fs::path(Sequential.aggregatesDirectory()) /
                 (SeqKeys[0] + ArtifactExtension))
                    .string());

  TempDir ParDir("store-par");
  ServiceStore Parallel(ParDir.str());
  ASSERT_TRUE(Parallel.open(&Error)) << Error;
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Writers.emplace_back([&Parallel, &Family, T] {
      std::vector<size_t> Indices(PerThread);
      std::iota(Indices.begin(), Indices.end(), T * PerThread);
      std::mt19937 Rng(T + 1);
      std::shuffle(Indices.begin(), Indices.end(), Rng);
      for (size_t I : Indices) {
        const ServicePutResult Put = Parallel.put(Family[I]);
        EXPECT_TRUE(Put.Ok) << Put.Error;
        EXPECT_TRUE(Put.Fresh);
      }
    });
  for (std::thread &T : Writers)
    T.join();

  const ServiceStoreStats Stats = Parallel.stats();
  EXPECT_EQ(Stats.Objects, static_cast<uint64_t>(NumThreads * PerThread));
  EXPECT_EQ(Stats.DedupHits, 0u);
  const ArtifactValidationReport Report = Parallel.validateAll(&Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_TRUE(Report.ok());
  EXPECT_TRUE(Report.StaleTemporaries.empty());

  const std::vector<std::string> ParKeys = Parallel.aggregateKeys();
  ASSERT_EQ(ParKeys.size(), 1u);
  EXPECT_EQ(fileBytes((fs::path(Parallel.aggregatesDirectory()) /
                       (ParKeys[0] + ArtifactExtension))
                          .string()),
            SeqBytes);
}

TEST(ServiceStoreTest, ReopenRebuildsIndexAndContinuesAggregates) {
  TempDir Dir("store-reopen");
  std::string Error;
  {
    ServiceStore Store(Dir.str());
    ASSERT_TRUE(Store.open(&Error)) << Error;
    ASSERT_TRUE(Store.put(makeArtifact(0)).Ok);
    ASSERT_TRUE(Store.put(makeArtifact(1)).Ok);
  }
  ServiceStore Reopened(Dir.str());
  ASSERT_TRUE(Reopened.open(&Error)) << Error;
  EXPECT_EQ(Reopened.stats().Objects, 2u);
  EXPECT_EQ(Reopened.stats().IndexRebuilt, 0u); // Hash came from names.

  // Identical content dedups across the restart...
  EXPECT_FALSE(Reopened.put(makeArtifact(0)).Fresh);
  // ...and a new run merges into the *reloaded* aggregate.
  ASSERT_TRUE(Reopened.put(makeArtifact(2)).Ok);
  ProfileArtifact Aggregate;
  ASSERT_EQ(Reopened.aggregateKeys().size(), 1u);
  ASSERT_TRUE(Reopened.aggregateFor(Reopened.aggregateKeys()[0], Aggregate));
  EXPECT_EQ(Aggregate.Provenance.MergedRuns, 3u);
}

TEST(ServiceStoreTest, StaleAggregateIsRebuiltFromObjectsOnOpen) {
  // Aggregates are checkpointed without fsync, so a crash can roll the
  // aggregate file back while the objects stayed durable. Simulate the
  // rollback and verify open() re-merges the group byte-identically.
  TempDir Dir("store-recovery");
  std::string Error;
  std::string HealthyBytes;
  std::string AggregatePath;
  {
    ServiceStore Store(Dir.str());
    ASSERT_TRUE(Store.open(&Error)) << Error;
    ASSERT_TRUE(Store.put(makeArtifact(0)).Ok);
    const ServicePutResult Second = Store.put(makeArtifact(1));
    ASSERT_TRUE(Second.Ok);
    AggregatePath = (fs::path(Store.aggregatesDirectory()) /
                     (Second.AggregateKey + ArtifactExtension))
                        .string();
    HealthyBytes = fileBytes(AggregatePath);
    // "Crash": the aggregate loses the second run; its object remains.
    ProfileArtifact RolledBack = makeArtifact(0);
    canonicalizeAggregate(RolledBack);
    ASSERT_TRUE(RolledBack.saveToFile(AggregatePath));
  }
  {
    ServiceStore Reopened(Dir.str());
    ASSERT_TRUE(Reopened.open(&Error)) << Error;
    EXPECT_EQ(Reopened.stats().AggregatesRebuilt, 1u);
    EXPECT_EQ(fileBytes(AggregatePath), HealthyBytes);
  }
  {
    // A lost aggregate *file* recovers too.
    fs::remove(AggregatePath);
    ServiceStore Reopened(Dir.str());
    ASSERT_TRUE(Reopened.open(&Error)) << Error;
    EXPECT_EQ(Reopened.stats().AggregatesRebuilt, 1u);
    EXPECT_EQ(fileBytes(AggregatePath), HealthyBytes);
  }
}

//===----------------------------------------------------------------------===//
// ArtifactStore listing determinism and error surfacing
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreListTest, ListingIsSortedByPath) {
  TempDir Dir("list-sorted");
  for (const char *Name : {"zeta.ccpa", "alpha.ccpa", "mid.ccpa"})
    std::ofstream(Dir.Path / Name) << "x";
  ArtifactStore Store(Dir.str());
  std::string Error;
  const std::vector<std::string> Paths = Store.list(&Error);
  ASSERT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Paths.size(), 3u);
  EXPECT_TRUE(std::is_sorted(Paths.begin(), Paths.end()));
  EXPECT_EQ(fs::path(Paths.front()).filename(), "alpha.ccpa");
}

TEST(ArtifactStoreListTest, UnexaminableEntriesAreSurfacedNotSkipped) {
  TempDir Dir("list-broken");
  std::ofstream(Dir.Path / "good.ccpa") << "x";
  std::error_code Ec;
  fs::create_symlink(Dir.Path / "no-such-target.ccpa",
                     Dir.Path / "broken.ccpa", Ec);
  if (Ec)
    GTEST_SKIP() << "filesystem does not support symlinks: " << Ec.message();

  ArtifactStore Store(Dir.str());
  std::string Error;
  const std::vector<ArtifactListEntry> Entries = Store.listEntries(&Error);
  ASSERT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Entries.size(), 2u);
  // Sorted: broken before good; the broken one carries a diagnostic.
  EXPECT_FALSE(Entries[0].ok());
  EXPECT_FALSE(Entries[0].Error.empty());
  EXPECT_TRUE(Entries[1].ok());

  // list() exposes only what it can vouch for; validate() reports the
  // rest as issues instead of pretending the store is clean.
  EXPECT_EQ(Store.list(&Error).size(), 1u);
  const ArtifactValidationReport Report = Store.validate(&Error);
  EXPECT_EQ(Report.Checked, 2u);
  ASSERT_GE(Report.Issues.size(), 1u);
  EXPECT_EQ(fs::path(Report.Issues[0].Path).filename(), "broken.ccpa");
}

//===----------------------------------------------------------------------===//
// Age-gated stale-temp reaping
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTempReapTest, FreshTempsSurviveTheDefaultGate) {
  TempDir Dir("temp-age");
  const fs::path Fresh = Dir.Path / "inflight.ccpa.tmp";
  std::ofstream(Fresh) << "partial";
  ArtifactStore Store(Dir.str());

  // A just-created temp looks exactly like a live writer's in-flight
  // save; the default gate must leave it alone.
  EXPECT_TRUE(Store.cleanStaleTemporaries().empty());
  EXPECT_TRUE(fs::exists(Fresh));

  // An unconditional sweep (offline cleanup) still removes it.
  const std::vector<std::string> Removed =
      Store.cleanStaleTemporaries(nullptr, 0);
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_FALSE(fs::exists(Fresh));
}

TEST(ArtifactStoreTempReapTest, AgedTempsAreReapedByTheDefaultGate) {
  TempDir Dir("temp-old");
  const fs::path Old = Dir.Path / "orphan.ccpa.tmp";
  std::ofstream(Old) << "partial";
  std::error_code Ec;
  fs::last_write_time(Old,
                      fs::file_time_type::clock::now() -
                          std::chrono::seconds(
                              2 * ArtifactStore::DefaultTempReapAgeSeconds),
                      Ec);
  ASSERT_FALSE(Ec) << Ec.message();

  ArtifactStore Store(Dir.str());
  const std::vector<std::string> Removed = Store.cleanStaleTemporaries();
  ASSERT_EQ(Removed.size(), 1u);
  EXPECT_FALSE(fs::exists(Old));
}

//===----------------------------------------------------------------------===//
// RegressionMonitor
//===----------------------------------------------------------------------===//

TEST(RegressionMonitorTest, FirstSightingSeedsBaselineSilently) {
  RegressionMonitor Monitor;
  EXPECT_TRUE(Monitor.observe(makeArtifact(0), "ci").empty());
  const RegressionMonitorStats Stats = Monitor.stats();
  EXPECT_EQ(Stats.Baselines, 1u);
  EXPECT_EQ(Stats.AlertsRaised, 0u);
}

TEST(RegressionMonitorTest, LoopFlippingToConflictRaisesAlert) {
  RegressionMonitor Monitor;
  ASSERT_TRUE(Monitor.observe(makeArtifact(0, 1000, false), "ci").empty());
  const std::vector<RegressionAlert> Alerts =
      Monitor.observe(makeArtifact(1, 1000, true), "ci");
  ASSERT_EQ(Alerts.size(), 1u);
  EXPECT_EQ(Alerts[0].Kind, AlertKind::NewConflictLoop);
  EXPECT_EQ(Alerts[0].Location, "synthetic.cpp:42");
  EXPECT_EQ(Alerts[0].Client, "ci");
  // The alerting ingest must NOT become the baseline: a retry alerts
  // again instead of regressing the fleet's reference state.
  EXPECT_EQ(Monitor.stats().BaselineUpdates, 1u);
  EXPECT_FALSE(Monitor.observe(makeArtifact(2, 1000, true), "ci").empty());
}

TEST(RegressionMonitorTest, VariantsShareOneBaselineLineage) {
  // The whole point of striking the variant from the baseline key: the
  // optimized build seeds the lineage, and the original (conflicting)
  // build diffs against it — a before/after pair across code versions.
  RegressionMonitor Monitor;
  ASSERT_TRUE(Monitor
                  .observe(makeArtifact(0, 1000, false,
                                        WorkloadVariant::Optimized),
                           "ci")
                  .empty());
  const std::vector<RegressionAlert> Alerts = Monitor.observe(
      makeArtifact(0, 1000, true, WorkloadVariant::Original), "ci");
  ASSERT_EQ(Alerts.size(), 1u);
  EXPECT_EQ(Alerts[0].Kind, AlertKind::NewConflictLoop);
  EXPECT_EQ(Monitor.stats().Baselines, 1u);
}

TEST(RegressionMonitorTest, GlobalMissRatioGrowthRaisesAlert) {
  RegressionMonitor Monitor;
  ASSERT_TRUE(
      Monitor.observe(makeArtifact(0, 1000, false, WorkloadVariant::Original,
                                   0.20),
                      "ci")
          .empty());
  const std::vector<RegressionAlert> Alerts = Monitor.observe(
      makeArtifact(1, 1000, false, WorkloadVariant::Original, 0.30), "ci");
  ASSERT_EQ(Alerts.size(), 1u);
  EXPECT_EQ(Alerts[0].Kind, AlertKind::MissRatioDegraded);
  EXPECT_TRUE(Alerts[0].Location.empty()) << "profile-global alert";
  EXPECT_DOUBLE_EQ(Alerts[0].Before, 0.20);
  EXPECT_DOUBLE_EQ(Alerts[0].After, 0.30);
}

TEST(RegressionMonitorTest, CleanIngestsAreAbsorbedIntoTheBaseline) {
  RegressionMonitor Monitor;
  ASSERT_TRUE(Monitor.observe(makeArtifact(0), "ci").empty());
  ASSERT_TRUE(Monitor.observe(makeArtifact(1), "ci").empty());
  ProfileArtifact Baseline;
  ASSERT_TRUE(Monitor.baselineFor(
      baselineKeyOf(makeArtifact(0).Provenance.Job), Baseline));
  EXPECT_EQ(Baseline.Provenance.MergedRuns, 2u);
}

TEST(RegressionMonitorTest, AlertJsonCarriesTheMachineStableKind) {
  RegressionAlert Alert;
  Alert.Kind = AlertKind::NewConflictLoop;
  Alert.BaselineKey = "K";
  Alert.Location = "a.cpp:1";
  const std::string Json = renderAlertJson(Alert);
  EXPECT_NE(Json.find("\"kind\":\"new_conflict_loop\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"loop\":\"a.cpp:1\""), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Ccprofd end to end
//===----------------------------------------------------------------------===//

TEST(CcprofdTest, RunOnceDrainsDropDirectoryAndRaisesSeededAlert) {
  TempDir Root("daemon-once");
  const fs::path Drop = Root.Path / "drop";
  fs::create_directories(Drop);
  // Filenames force ingest order: the clean optimized run seeds the
  // baseline, then the conflicting original run regresses against it.
  {
    std::ofstream A(Drop / "a-baseline.ccpa", std::ios::binary);
    A << serialize(makeArtifact(0, 1000, false, WorkloadVariant::Optimized));
    std::ofstream B(Drop / "b-regression.ccpa", std::ios::binary);
    B << serialize(makeArtifact(0, 1000, true, WorkloadVariant::Original));
  }

  ServiceConfig Config;
  Config.StoreDir = (Root.Path / "store").string();
  Config.WatchDir = Drop.string();
  Config.Once = true;
  Ccprofd Daemon(Config);
  std::string Error;
  ASSERT_TRUE(Daemon.runOnce(&Error)) << Error;

  EXPECT_EQ(Daemon.processed(), 2u);
  EXPECT_EQ(Daemon.store().stats().Objects, 2u);
  EXPECT_TRUE(fs::is_empty(Drop)) << "ingested drops must be removed";
  const std::vector<RegressionAlert> Alerts = Daemon.recentAlerts();
  ASSERT_FALSE(Alerts.empty());
  EXPECT_EQ(Alerts[0].Kind, AlertKind::NewConflictLoop);
  EXPECT_NE(Daemon.statsJson().find("\"alerts\":1"), std::string::npos);
}

TEST(CcprofdTest, RedroppedContentDedupsAcrossDaemonRestarts) {
  TempDir Root("daemon-redrop");
  const fs::path Drop = Root.Path / "drop";
  fs::create_directories(Drop);
  const std::string Capsule = serialize(makeArtifact(0));

  ServiceConfig Config;
  Config.StoreDir = (Root.Path / "store").string();
  Config.WatchDir = Drop.string();
  Config.Once = true;
  for (int Round = 0; Round < 2; ++Round) {
    std::ofstream(Drop / "run.ccpa", std::ios::binary) << Capsule;
    Ccprofd Daemon(Config);
    std::string Error;
    ASSERT_TRUE(Daemon.runOnce(&Error)) << Error;
    const ServiceStoreStats Stats = Daemon.store().stats();
    EXPECT_EQ(Stats.Objects, 1u) << "round " << Round;
    EXPECT_EQ(Stats.DedupHits, Round == 0 ? 0u : 1u) << "round " << Round;
  }
}

TEST(CcprofdTest, TraceUploadsAreProfiledOnArrival) {
  std::unique_ptr<Workload> W = makeWorkloadByName("Symmetrization");
  ASSERT_NE(W, nullptr);
  Trace Recorded;
  W->run(WorkloadVariant::Original, &Recorded);
  std::stringstream TraceBytes;
  ASSERT_TRUE(Recorded.writeTo(TraceBytes));

  TempDir Root("daemon-trace");
  ServiceConfig Config;
  Config.StoreDir = (Root.Path / "store").string();
  Config.Once = true;
  Ccprofd Daemon(Config);
  IngestRequest Request;
  Request.Kind = IngestKind::Trace;
  Request.Name = "Symmetrization";
  Request.Client = "trace-test";
  Request.Bytes = TraceBytes.str();
  ASSERT_TRUE(Daemon.submit(std::move(Request)));
  std::string Error;
  ASSERT_TRUE(Daemon.runOnce(&Error)) << Error;

  EXPECT_EQ(Daemon.store().stats().Objects, 1u);
  const std::vector<std::string> Keys = Daemon.store().aggregateKeys();
  ASSERT_EQ(Keys.size(), 1u);
  EXPECT_EQ(Keys[0].rfind("Symmetrization", 0), 0u) << Keys[0];
  EXPECT_NE(Daemon.statsJson().find("\"trace-test\""), std::string::npos);
}

TEST(CcprofdTest, SocketRoundTripSubmitStatsAndPing) {
  TempDir Root("daemon-sock");
  const std::string Socket =
      "/tmp/ccprof-test-" + std::to_string(::getpid()) + ".sock";

  ServiceConfig Config;
  Config.StoreDir = (Root.Path / "store").string();
  Config.SocketPath = Socket;
  Ccprofd Daemon(Config);
  std::string Error;
  ASSERT_TRUE(Daemon.start(&Error)) << Error;

  EXPECT_TRUE(servicePing(Socket).Ok);

  const ServiceReply Submitted = serviceSubmitBytes(
      Socket, "sock-test", "ccpa", "synthetic", serialize(makeArtifact(0)));
  ASSERT_TRUE(Submitted.Error.empty()) << Submitted.Error;
  EXPECT_EQ(Submitted.Line, "OK queued");

  // Garbage bytes are accepted into the queue (the protocol frames
  // them fine) and surface as an ingest error, not a crash.
  const ServiceReply Garbage =
      serviceSubmitBytes(Socket, "sock-test", "ccpa", "junk", "not a capsule");
  EXPECT_EQ(Garbage.Line, "OK queued");

  for (int Spin = 0; Spin < 200 && Daemon.processed() < 2; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Daemon.processed(), 2u);

  const ServiceReply Stats = serviceQueryStats(Socket);
  ASSERT_TRUE(Stats.Error.empty()) << Stats.Error;
  EXPECT_NE(Stats.Line.find("\"processed\":2"), std::string::npos)
      << Stats.Line;
  EXPECT_NE(Stats.Line.find("\"errors\":1"), std::string::npos) << Stats.Line;
  EXPECT_NE(Stats.Line.find("\"sock-test\""), std::string::npos);

  Daemon.stop();
  EXPECT_FALSE(fs::exists(Socket)) << "socket file must be removed on stop";
  EXPECT_EQ(Daemon.store().stats().Objects, 1u);
}
