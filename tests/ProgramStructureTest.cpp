//===- tests/ProgramStructureTest.cpp - Binary analysis front-end tests ---===//
//
// Part of the CCProf reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "core/ProgramStructure.h"

#include "cfg/SyntheticCodeGen.h"

#include "gtest/gtest.h"

using namespace ccprof;

namespace {

BinaryImage twoFunctionImage() {
  LoopSpec Inner;
  Inner.HeaderLine = 12;
  Inner.EndLine = 15;
  Inner.AccessLines = {13, 14};
  LoopSpec Outer;
  Outer.HeaderLine = 10;
  Outer.EndLine = 16;
  Outer.Children = {Inner};
  FunctionSpec Hot;
  Hot.Name = "hot";
  Hot.StartLine = 8;
  Hot.EndLine = 20;
  Hot.Loops = {Outer};

  LoopSpec Flat;
  Flat.HeaderLine = 40;
  Flat.EndLine = 44;
  Flat.AccessLines = {42};
  FunctionSpec Cold;
  Cold.Name = "cold";
  Cold.StartLine = 38;
  Cold.EndLine = 48;
  Cold.Loops = {Flat};

  return lowerToBinary("prog.cpp", {Hot, Cold});
}

} // namespace

TEST(ProgramStructureTest, DiscoversAllLoops) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  EXPECT_EQ(S.numFunctions(), 2u);
  EXPECT_EQ(S.numLoops(), 3u);
  EXPECT_EQ(S.allLoops().size(), 3u);
}

TEST(ProgramStructureTest, InnermostLoopAcrossFunctions) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);

  auto Inner = S.innermostLoopForLine(13);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(Inner->FunctionIndex, 0u);
  EXPECT_EQ(S.headerLine(*Inner), 12u);
  EXPECT_EQ(S.depth(*Inner), 2u);

  auto Flat = S.innermostLoopForLine(42);
  ASSERT_TRUE(Flat.has_value());
  EXPECT_EQ(Flat->FunctionIndex, 1u);
  EXPECT_EQ(S.headerLine(*Flat), 40u);
  EXPECT_EQ(S.depth(*Flat), 1u);

  EXPECT_FALSE(S.innermostLoopForLine(30).has_value());
  EXPECT_FALSE(S.innermostLoopForLine(999).has_value());
}

TEST(ProgramStructureTest, DescribeLoopUsesHeaderLine) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  auto Inner = S.innermostLoopForLine(13);
  ASSERT_TRUE(Inner.has_value());
  EXPECT_EQ(S.describeLoop(*Inner), "prog.cpp:12");
}

TEST(ProgramStructureTest, OuterLoopLineFallsToOuter) {
  BinaryImage Image = twoFunctionImage();
  ProgramStructure S(Image);
  // Line 16 is the outer loop's latch, outside the inner loop's span.
  auto Loop = S.innermostLoopForLine(16);
  ASSERT_TRUE(Loop.has_value());
  EXPECT_EQ(S.headerLine(*Loop), 10u);
}

TEST(ProgramStructureTest, LoopFreeImage) {
  FunctionSpec Plain;
  Plain.Name = "plain";
  Plain.StartLine = 1;
  Plain.EndLine = 5;
  Plain.AccessLines = {3};
  BinaryImage Image = lowerToBinary("plain.cpp", {Plain});
  ProgramStructure S(Image);
  EXPECT_EQ(S.numLoops(), 0u);
  EXPECT_FALSE(S.innermostLoopForLine(3).has_value());
}

TEST(ProgramStructureTest, LoopRefOrdering) {
  LoopRef A{0, 1};
  LoopRef B{0, 2};
  LoopRef C{1, 0};
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(A, (LoopRef{0, 1}));
}

TEST(ProgramStructureTest, IrreducibleRegionAttributesToHavlakHeader) {
  // lowerToBinary can only emit reducible loops, so hand-assemble a
  // two-entry cycle B1 (line 20) <-> B2 (line 30). Samples on any line
  // of the cycle must attribute to the same loop, and the loop's
  // "file:headerLine" name is derived from the Havlak-chosen header —
  // the stable context measured and static reports join on.
  BinaryImage Image("irr.cpp");
  Image.beginFunction("tangle");
  uint64_t Base = Image.nextAddr();
  auto Emit = [&](uint32_t Line, InsnKind Kind, size_t TargetIndex) {
    Instruction Insn;
    Insn.Line = Line;
    Insn.Kind = Kind;
    Insn.Target = Base + TargetIndex * BinaryImage::InsnSize;
    Image.appendInstruction(Insn);
  };
  Emit(10, InsnKind::CondBranch, 3); // B0 -> B2 / fall to B1
  Emit(20, InsnKind::Sequential, 0); // B1
  Emit(21, InsnKind::Jump, 3);       // B1 -> B2
  Emit(30, InsnKind::Sequential, 0); // B2
  Emit(31, InsnKind::CondBranch, 1); // B2 -> B1 / fall
  Emit(40, InsnKind::Return, 0);     // B3
  Image.endFunction();

  ProgramStructure S(Image);
  ASSERT_EQ(S.numLoops(), 1u);

  std::optional<LoopRef> First;
  for (uint32_t Line : {20u, 21u, 30u, 31u}) {
    std::optional<LoopRef> Ref = S.innermostLoopForLine(Line);
    ASSERT_TRUE(Ref.has_value()) << "line " << Line;
    if (!First)
      First = Ref;
    EXPECT_EQ(*Ref, *First) << "line " << Line;
  }
  uint32_t Header = S.headerLine(*First);
  EXPECT_TRUE(Header == 20u || Header == 30u)
      << "header line " << Header << " must be a cycle block";
  EXPECT_EQ(S.describeLoop(*First), "irr.cpp:" + std::to_string(Header));
  EXPECT_EQ(S.depth(*First), 1u);
  EXPECT_FALSE(S.innermostLoopForLine(40).has_value());
}
